/// \file pkifmm_report.cpp
/// \brief Human-readable report over a "pkifmm.summary.v1" document
/// (the cross-rank summary written by any bench's --summary-out or by
/// obs::write_summary_json).
///
/// Sections:
///   1. a paper-style per-phase breakdown (Table II layout: Max/Avg
///      wall time, Max/Avg flops, plus the overlap efficiency the
///      summary derives from cross-rank span timelines),
///   1b. a setup breakdown (sort/tree, 2:1 balance, LET+ghost
///      exchange, repartition sub-phases) plus the `setup.incr.*`
///      counters — amortized per update step — when the run used
///      incremental repair (ParallelFmm::update_points),
///   1c. numerical health (only when the summary carries a "health"
///      section, i.e. the run set FmmOptions::health / --health): the
///      sampled relative error against direct summation, sentinel hit
///      counts (non-finite values, moment-invariant violations,
///      injected corruptions), digest match verdicts (ghost transit,
///      message payload transit), and the drift monitor's step/warning
///      counters. Any sentinel hit or digest mismatch prints a
///      WARNING line,
///   2. a roofline classification: per-phase achieved GFLOP/s,
///      arithmetic intensity (flops / estimated bytes moved, where
///      bytes = LLC misses x 64B lines), IPC and miss rates from the
///      `hw.<phase>.*` counters, and a compute- vs bandwidth-bound
///      verdict against the --peak-gflops / --peak-gbs machine model.
///      On fallback-source runs (no perf access) the hw-derived
///      columns print "-" and a note explains why,
///   3. the top-k phases by wall-time imbalance (max/avg across
///      ranks) — where to look first when scaling stalls,
///   4. the intra-rank scheduler (only when `sched.*` counters are
///      present, i.e. the run drove a util::TaskPool): per-worker-lane
///      busy fraction over the pool lifetime plus the ULI overlap
///      efficiency — what fraction of the U-list direct work executed
///      concurrently with the far-field pipeline; when the summary
///      carries `sched.dag.*` counters (--exec-mode=dag runs) a DAG
///      subsection adds graph shape, mean ready-queue depth, and the
///      top dependency stalls by release wait,
///   5. message-flow waits (only when the summary carries a "flow"
///      section, i.e. the run used --flow-trace): per-phase wall-time
///      decomposition into compute / comm-wait / pool-idle with a wait
///      fraction bar, the graph-based critical path vs the makespan
///      heuristic, the top-k late-sender ranks by inflicted wait, and
///      a per-(src,dst) message latency table (p50/p95/max),
///   6. an ASCII heatmap of the per-phase communication matrix
///      (row = sender, column = receiver), the traffic-shape evidence
///      behind the paper's Algorithm 2/3 claims.
///
///   pkifmm_report --summary=<summary.json>
///       [--top=5]                  # rows in the imbalance section
///       [--matrix-phase=<phase>]   # default: every phase with traffic
///       [--matrix-metric=bytes]    # or msgs
///       [--peak-gflops=8]          # per-rank peak for the roofline
///       [--peak-gbs=20]            # per-rank memory bandwidth
///
/// Exit status: 0 on success, 2 on bad input (missing/malformed JSON
/// included — schema violations print a one-line error, never crash).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/aggregate.hpp"
#include "obs/json.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pkifmm;

namespace {

double stat(const obs::Json& phase, const std::string& metric,
            const std::string& field) {
  return phase.at(metric).at(field).as_double();
}

/// Stats field that summaries omit when undefined ("imbalance" for
/// zero-wall phases, "overlap_efficiency" for span-less phases):
/// returns `fallback` instead of throwing on older/degenerate docs.
double opt_field(const obs::Json& obj, const std::string& field,
                 double fallback) {
  return obj.contains(field) ? obj.at(field).as_double() : fallback;
}

/// Ten-step density ramp used for the heatmap cells.
char shade(double value, double vmax) {
  static const char kRamp[] = " .:-=+*#%@";
  if (vmax <= 0.0 || value <= 0.0) return kRamp[0];
  const double frac = value / vmax;
  int idx = 1 + static_cast<int>(frac * 8.999);
  idx = std::min(idx, 9);
  return kRamp[idx];
}

double matrix_total(const obs::Json& mat) {
  double total = 0.0;
  for (const obs::Json& row : mat.items())
    for (const obs::Json& cell : row.items()) total += cell.as_double();
  return total;
}

void print_heatmap(const std::string& phase, const std::string& metric,
                   const obs::Json& mat) {
  const auto& rows = mat.items();
  const int p = static_cast<int>(rows.size());
  double vmax = 0.0;
  for (const obs::Json& row : rows)
    for (const obs::Json& cell : row.items())
      vmax = std::max(vmax, cell.as_double());

  std::printf("  %s (%s, row=src, col=dst, max cell %s)\n", phase.c_str(),
              metric.c_str(), sci(vmax).c_str());
  std::printf("      ");
  for (int c = 0; c < p; ++c) std::printf("%d", c % 10);
  std::printf("\n");
  for (int r = 0; r < p; ++r) {
    std::printf("  %3d ", r);
    for (int c = 0; c < p; ++c)
      std::putchar(shade(rows[r].items()[c].as_double(), vmax));
    std::printf("\n");
  }
}

/// Cross-rank sum of a flat summary metric, or -1 when no rank
/// recorded it (hw counters are absent, not zero, under fallback).
double metric_sum(const obs::Json& metrics, const std::string& name) {
  return metrics.contains(name) ? metrics.at(name).at("sum").as_double()
                                : -1.0;
}

}  // namespace

static int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string path = cli.get("summary", "");
  if (path.empty()) {
    std::fprintf(stderr, "usage: pkifmm_report --summary=<summary.json>\n");
    return 2;
  }
  const auto top_k = static_cast<std::size_t>(cli.get_int("top", 5));
  const std::string want_phase = cli.get("matrix-phase", "");
  const std::string matrix_metric = cli.get("matrix-metric", "bytes");
  const double peak_gflops = cli.get_double("peak-gflops", 8.0);
  const double peak_gbs = cli.get_double("peak-gbs", 20.0);
  if (matrix_metric != "bytes" && matrix_metric != "msgs") {
    std::fprintf(stderr, "pkifmm_report: --matrix-metric must be bytes|msgs\n");
    return 2;
  }
  if (peak_gflops <= 0.0 || peak_gbs <= 0.0) {
    std::fprintf(stderr,
                 "pkifmm_report: --peak-gflops/--peak-gbs must be > 0\n");
    return 2;
  }

  const obs::Json doc = obs::read_json_file(path);
  obs::validate_summary_json(doc);

  const std::string bench = doc.at("bench").as_string();
  std::printf("pkifmm summary report: %s\n", path.c_str());
  std::printf("schema %s | bench %s | %lld rank(s) | %lld run(s)\n\n",
              doc.at("schema").as_string().c_str(),
              bench.empty() ? "-" : bench.c_str(),
              static_cast<long long>(doc.at("nranks").as_int()),
              static_cast<long long>(doc.at("nruns").as_int()));

  // --- 1. Paper-style breakdown (Table II layout), sorted by max wall.
  const obs::Json& phases = doc.at("phases");
  std::vector<std::string> names = phases.keys();
  std::sort(names.begin(), names.end(),
            [&](const std::string& a, const std::string& b) {
              return stat(phases.at(a), "wall", "max") >
                     stat(phases.at(b), "wall", "max");
            });

  Table breakdown({"Phase", "Max Wall", "Avg Wall", "Max Flops", "Avg Flops",
                   "Msgs", "Bytes", "Overlap"});
  for (const std::string& name : names) {
    const obs::Json& ph = phases.at(name);
    breakdown.add_row({name, sci(stat(ph, "wall", "max")),
                       sci(stat(ph, "wall", "avg")),
                       sci(stat(ph, "flops", "max")),
                       sci(stat(ph, "flops", "avg")),
                       sci(stat(ph, "msgs_sent", "sum")),
                       sci(stat(ph, "bytes_sent", "sum")),
                       ph.contains("overlap_efficiency")
                           ? fixed(ph.at("overlap_efficiency").as_double())
                           : std::string("-")});
  }
  std::printf("Per-phase breakdown (sorted by max wall time):\n%s\n",
              breakdown.str().c_str());

  const obs::Json& metrics = doc.at("metrics");

  // --- 1b. Setup breakdown: where tree construction spends its time
  // (sort+tree build / 2:1 balance / LET+ghost exchange / repartition),
  // plus the incremental-repair counters when the run drove
  // update_points (time-stepping workloads). Phase names: the full
  // rebuild records setup.tree/.b21/.let/.balance, the incremental
  // path setup.incr.tree/.let/.balance.
  {
    std::vector<std::string> setup_phases;
    for (const std::string& name : names)
      if (name.rfind("setup.", 0) == 0) setup_phases.push_back(name);
    std::sort(setup_phases.begin(), setup_phases.end());
    if (!setup_phases.empty()) {
      Table st({"Setup phase", "Max Wall", "Avg Wall", "Imbalance", "Msgs",
                "Bytes"});
      for (const std::string& name : setup_phases) {
        const obs::Json& ph = phases.at(name);
        st.add_row({name, sci(stat(ph, "wall", "max")),
                    sci(stat(ph, "wall", "avg")),
                    fixed(opt_field(ph.at("wall"), "imbalance", 1.0)),
                    sci(stat(ph, "msgs_sent", "sum")),
                    sci(stat(ph, "bytes_sent", "sum"))});
      }
      std::printf("Setup breakdown (sort/tree | 2:1 balance | LET+ghost | "
                  "partition):\n%s\n",
                  st.str().c_str());
    }
    // Incremental-repair counters, amortized per update step. Absent
    // on pure setup()+evaluate() runs.
    const double steps = metric_sum(metrics, "setup.incr.steps");
    if (steps > 0.0) {
      std::printf(
          "Incremental setup: %s update step(s), %s full rebuild(s), "
          "%s repartition(s)\n",
          sci(steps).c_str(),
          sci(std::max(0.0, metric_sum(metrics, "setup.incr.full_rebuilds")))
              .c_str(),
          sci(std::max(0.0, metric_sum(metrics, "setup.incr.repartitions")))
              .c_str());
      Table incr({"Counter", "Sum", "Per step"});
      for (const std::string& key : metrics.keys()) {
        if (key.rfind("setup.incr.", 0) != 0 || key == "setup.incr.steps")
          continue;
        const double sum = metric_sum(metrics, key);
        incr.add_row({key.substr(11), sci(sum), sci(sum / steps)});
      }
      std::printf("%s\n", incr.str().c_str());
    }
  }

  // --- 1c. Numerical health (FmmOptions::health runs only).
  if (doc.contains("health")) {
    const obs::Json& h = doc.at("health");
    const obs::Json& sample = h.at("sample");
    const obs::Json& sent = h.at("sentinels");
    const obs::Json& dig = h.at("digests");
    const obs::Json& drift = h.at("drift");
    std::printf("Numerical health (%s evaluation(s)):\n",
                sci(h.at("steps").as_double()).c_str());
    const double count = sample.at("count").as_double();
    if (count > 0.0)
      std::printf("  sampled accuracy: rel l2 err %s over %s target(s) "
                  "(vs direct summation)\n",
                  sci(sample.at("rel_err").as_double()).c_str(),
                  sci(count).c_str());
    else
      std::printf("  sampled accuracy: no targets sampled "
                  "(health_sample_rate 0 or tiny)\n");
    const double nonfinite = sent.at("nonfinite").as_double();
    const double violations = sent.at("moment_violations").as_double();
    const double injected = sent.at("injected").as_double();
    std::printf("  sentinels: %s non-finite, %s moment violation(s) "
                "(max rel %s), %s injected\n",
                sci(nonfinite).c_str(), sci(violations).c_str(),
                sci(sent.at("moment_max_rel").as_double()).c_str(),
                sci(injected).c_str());
    const bool ghost_ok = dig.at("ghost_match").as_bool();
    const bool payload_ok = dig.at("payload_match").as_bool();
    std::printf("  digests: ghost transit %s | payload transit %s\n",
                ghost_ok ? "MATCH" : "MISMATCH",
                payload_ok ? "MATCH" : "MISMATCH");
    const double dsteps = drift.at("steps").as_double();
    const double dwarn = drift.at("warnings").as_double();
    if (dsteps > 0.0)
      std::printf("  drift: %s step(s), %s warning(s), max step err %s\n",
                  sci(dsteps).c_str(), sci(dwarn).c_str(),
                  sci(drift.at("err_max").as_double()).c_str());
    if (nonfinite > 0.0)
      std::printf("  WARNING: non-finite values detected in equivalent "
                  "densities / potentials\n");
    if (violations > 0.0)
      std::printf("  WARNING: root-moment invariant violated — multipole "
                  "moments disagree\n  with summed source densities\n");
    if (!ghost_ok)
      std::printf("  WARNING: ghost-density digests disagree between owner "
                  "and consumer ranks\n");
    if (!payload_ok)
      std::printf("  WARNING: message payload digests disagree between "
                  "send and receive sides\n");
    if (dwarn > 0.0)
      std::printf("  WARNING: sampled error drifted past "
                  "health_drift_ratio x the early-step baseline\n");
    if (injected > 0.0)
      std::printf("  note: %s corruption(s) were fault-injected "
                  "(PKIFMM_INJECT_CORRUPTION)\n",
                  sci(injected).c_str());
    std::printf("\n");
  }

  // --- 2. Roofline classification. Rates are cluster-level: summed
  // flops over the phase's max wall across ranks. Bytes moved are
  // estimated as LLC misses x 64B cache lines — an undercount with
  // hardware prefetching, so the printed intensity is an upper bound.
  // The ridge point peak_gflops/peak_gbs splits bandwidth- from
  // compute-bound; "roof util" is achieved / roofline(AI).
  {
    const double ranks_perf = metric_sum(metrics, "hw.ranks_perf");
    const double ranks_fb = metric_sum(metrics, "hw.ranks_fallback");
    const double ridge = peak_gflops / peak_gbs;  // flop/byte
    Table roof({"Phase", "GFLOP/s", "AI (F/B)", "IPC", "L1d/KI", "LLC/KI",
                "Br/KI", "Bound", "Roof util"});
    for (const std::string& name : names) {
      const obs::Json& ph = phases.at(name);
      const double flops = stat(ph, "flops", "sum");
      const double wall = stat(ph, "wall", "max");
      if (wall <= 1e-9) continue;  // rates over ~zero time are noise
      const double cycles = metric_sum(metrics, "hw." + name + ".cycles");
      const double instr =
          metric_sum(metrics, "hw." + name + ".instructions");
      const double l1d = metric_sum(metrics, "hw." + name + ".l1d_misses");
      const double llc = metric_sum(metrics, "hw." + name + ".llc_misses");
      const double br =
          metric_sum(metrics, "hw." + name + ".branch_misses");
      // Flopless phases (comm, bookkeeping) only earn a row when hw
      // counters give them content; their flop-derived columns are "-"
      // rather than 0.00/inf garbage.
      if (flops <= 0.0 && instr <= 0.0) continue;
      std::string gfs_s = "-", ai = "-", ipc = "-", l1dki = "-",
                  llcki = "-", brki = "-", bound = "-", util = "-";
      if (instr > 0.0 && cycles > 0.0) ipc = fixed(instr / cycles);
      if (instr > 0.0) {
        if (l1d >= 0.0) l1dki = fixed(1e3 * l1d / instr);
        if (llc >= 0.0) llcki = fixed(1e3 * llc / instr);
        if (br >= 0.0) brki = fixed(1e3 * br / instr);
      }
      if (flops > 0.0) {
        const double gfs = flops / wall / 1e9;
        gfs_s = fixed(gfs);
        if (llc > 0.0) {
          const double intensity = flops / (llc * 64.0);
          ai = fixed(intensity);
          bound = intensity < ridge ? "bandwidth" : "compute";
          const double roofline =
              std::min(peak_gflops, intensity * peak_gbs);
          util = bar(gfs / roofline, 1.0, 12);
        }
      }
      roof.add_row({name, gfs_s, ai, ipc, l1dki, llcki, brki, bound,
                    util});
    }
    std::printf(
        "Roofline (peak %.1f GFLOP/s, %.1f GB/s, ridge %.2f flop/byte):\n%s",
        peak_gflops, peak_gbs, ridge, roof.str().c_str());
    if (ranks_perf <= 0.0)
      std::printf(
          "note: no rank had perf_event_open access (%d/%d fallback) — "
          "hw-derived\ncolumns are '-'; GFLOP/s uses analytic flop counts "
          "over wall time.\n",
          static_cast<int>(ranks_fb < 0.0 ? 0.0 : ranks_fb),
          static_cast<int>((ranks_perf < 0.0 ? 0.0 : ranks_perf) +
                           (ranks_fb < 0.0 ? 0.0 : ranks_fb)));
    else if (metrics.contains("sched.workers") &&
             metric_sum(metrics, "sched.workers") > 0.0)
      std::printf(
          "note: hw counters cover rank threads only — TaskPool worker "
          "lanes are\nuncounted, so hw-derived columns understate "
          "multi-lane phases.\n");
    std::printf("\n");
  }

  // --- 3. Top-k phases by wall-time imbalance. Phases with negligible
  // time are skipped: max/avg over microseconds is noise, not signal.
  std::vector<std::string> ranked;
  for (const std::string& name : names)
    if (stat(phases.at(name), "wall", "max") > 1e-6) ranked.push_back(name);
  std::sort(ranked.begin(), ranked.end(),
            [&](const std::string& a, const std::string& b) {
              return opt_field(phases.at(a).at("wall"), "imbalance", 1.0) >
                     opt_field(phases.at(b).at("wall"), "imbalance", 1.0);
            });
  if (ranked.size() > top_k) ranked.resize(top_k);

  Table imbalance({"Phase", "Imbalance", "Max Wall", "Avg Wall", "Bar"});
  for (const std::string& name : ranked) {
    const obs::Json& ph = phases.at(name);
    const double imb = opt_field(ph.at("wall"), "imbalance", 1.0);
    imbalance.add_row({name, fixed(imb), sci(stat(ph, "wall", "max")),
                       sci(stat(ph, "wall", "avg")), bar(imb, 4.0, 16)});
  }
  std::printf("Top-%zu phases by wall-time imbalance (max/avg):\n%s\n",
              ranked.size(), imbalance.str().c_str());

  // --- 4. Intra-rank scheduler, when the run drove a task pool.
  std::vector<std::string> lanes;  // "sched.busy.w<k>" keys, lane order
  for (const std::string& key : metrics.keys())
    if (key.rfind("sched.busy.w", 0) == 0) lanes.push_back(key);
  std::sort(lanes.begin(), lanes.end(),
            [](const std::string& a, const std::string& b) {
              return std::stoi(a.substr(12)) < std::stoi(b.substr(12));
            });
  if (!lanes.empty()) {
    const double lifetime =
        metrics.at("sched.lifetime_seconds").at("sum").as_double();
    std::printf(
        "Intra-rank scheduler (%s tasks, %s steals across ranks):\n",
        sci(metrics.at("sched.tasks").at("sum").as_double()).c_str(),
        sci(metrics.at("sched.steals").at("sum").as_double()).c_str());
    Table sched({"Lane", "Busy (s)", "Busy frac", "Bar"});
    for (const std::string& key : lanes) {
      const double busy = metrics.at(key).at("sum").as_double();
      const double frac = lifetime > 0.0 ? busy / lifetime : 0.0;
      const std::string lane = key.substr(12);
      sched.add_row({lane == "0" ? "0 (rank thread)" : lane, sci(busy),
                     fixed(frac), bar(frac, 1.0, 16)});
    }
    std::printf("%s", sched.str().c_str());
    if (metrics.contains("sched.uli.busy_seconds")) {
      const double uli_busy =
          metrics.at("sched.uli.busy_seconds").at("sum").as_double();
      const double uli_overlap =
          metrics.at("sched.uli.overlap_seconds").at("sum").as_double();
      std::printf(
          "ULI overlap efficiency: %.2f (%s of %s ULI-busy seconds ran\n"
          "concurrently with the far-field V/X/W + downward pipeline)\n",
          uli_busy > 0.0 ? uli_overlap / uli_busy : 0.0, sci(uli_overlap).c_str(),
          sci(uli_busy).c_str());
    }
    std::printf("\n");
  }

  // --- 4b. DAG executor (--exec-mode=dag runs only): graph shape,
  // ready-queue depth, and the phases whose tasks waited longest
  // between dependency release and execution start. Keyed on the
  // sched.dag.* counters, so pre-DAG metrics files (or bulk-sync runs)
  // simply skip the section.
  if (metrics.contains("sched.dag.graphs")) {
    const double depth_sum = metric_sum(metrics, "sched.dag.ready_depth_sum");
    const double depth_n =
        metric_sum(metrics, "sched.dag.ready_depth_samples");
    std::printf(
        "DAG executor: %s graph(s) | %s nodes, %s edges, %s pool tasks, "
        "%s external signals\n",
        sci(metric_sum(metrics, "sched.dag.graphs")).c_str(),
        sci(metric_sum(metrics, "sched.dag.nodes")).c_str(),
        sci(metric_sum(metrics, "sched.dag.edges")).c_str(),
        sci(metric_sum(metrics, "sched.dag.tasks")).c_str(),
        sci(metric_sum(metrics, "sched.dag.signals")).c_str());
    std::printf(
        "mean ready-queue depth %.2f over %s samples | release-wait "
        "total %s s\n",
        depth_n > 0.0 ? depth_sum / depth_n : 0.0, sci(depth_n).c_str(),
        sci(metric_sum(metrics, "sched.dag.release_wait_seconds")).c_str());

    // Top dependency stalls: DAG phases ranked by total release wait —
    // where ready work sat longest behind busy lanes or late releases.
    const std::string pre = "sched.dag.phase.";
    const std::string suf = ".release_wait_seconds";
    std::vector<std::string> dag_phases;
    for (const std::string& key : metrics.keys())
      if (key.rfind(pre, 0) == 0 && key.size() > pre.size() + suf.size() &&
          key.compare(key.size() - suf.size(), suf.size(), suf) == 0)
        dag_phases.push_back(
            key.substr(pre.size(), key.size() - pre.size() - suf.size()));
    std::sort(dag_phases.begin(), dag_phases.end(),
              [&](const std::string& a, const std::string& b) {
                return metric_sum(metrics, pre + a + suf) >
                       metric_sum(metrics, pre + b + suf);
              });
    if (dag_phases.size() > top_k) dag_phases.resize(top_k);
    Table stalls({"DAG phase", "Tasks", "Busy (s)", "Release wait (s)",
                  "Overlap (s)"});
    for (const std::string& dp : dag_phases)
      stalls.add_row(
          {dp, sci(metric_sum(metrics, pre + dp + ".tasks")),
           sci(metric_sum(metrics, pre + dp + ".busy_seconds")),
           sci(metric_sum(metrics, pre + dp + suf)),
           sci(metric_sum(metrics, pre + dp + ".overlap_seconds"))});
    if (!dag_phases.empty())
      std::printf("Top-%zu dependency stalls (by release wait):\n%s",
                  dag_phases.size(), stalls.str().c_str());
    std::printf("\n");
  }

  // --- 5. Message-flow waits (--flow-trace runs only).
  if (doc.contains("flow")) {
    const obs::Json& flow = doc.at("flow");
    std::printf(
        "Message-flow waits: %s matched msgs (%s late-sender, %s "
        "late-receiver),\n%s unmatched, %s ring-dropped, %s probes\n",
        sci(flow.at("matched").as_double()).c_str(),
        sci(flow.at("late_sender").as_double()).c_str(),
        sci(flow.at("late_receiver").as_double()).c_str(),
        sci(flow.at("unmatched_sends").as_double() +
            flow.at("unmatched_recvs").as_double())
            .c_str(),
        sci(flow.at("dropped").as_double()).c_str(),
        sci(flow.at("probes").as_double()).c_str());
    // Ring overflow silently biases every wait figure below: dropped
    // events mean unmatched sends/recvs whose wait time is simply
    // missing. Make that loud instead of one number in the line above.
    const double dropped = flow.at("dropped").as_double();
    if (dropped > 0.0)
      std::printf(
          "  WARNING: %s flow event(s) dropped (ring full) — wait/latency "
          "figures\n  below UNDERCOUNT; re-run with a larger "
          "--flow-capacity.\n",
          sci(dropped).c_str());

    Table waits({"Phase", "Wall (s)", "Compute", "Comm wait", "Pool idle",
                 "Wait frac", "Bar"});
    for (const std::string& name : names) {
      const obs::Json& ph = phases.at(name);
      if (!ph.contains("decomp")) continue;
      const obs::Json& d = ph.at("decomp");
      const double wall = d.at("wall").as_double();
      if (wall <= 1e-6) continue;
      const double wait = d.at("comm_wait").as_double();
      const double frac = wait / wall;
      waits.add_row({name, sci(wall), sci(d.at("compute").as_double()),
                     sci(wait), sci(d.at("pool_idle").as_double()),
                     fixed(frac), bar(frac, 1.0, 16)});
    }
    std::printf("Per-phase wall decomposition (summed across ranks):\n%s",
                waits.str().c_str());

    Table cpath({"Phase", "Makespan", "Graph path", "Compute leg",
                 "Transfer leg"});
    bool any_graph = false;
    for (const std::string& name : names) {
      const obs::Json& ph = phases.at(name);
      if (!ph.contains("critical_path_graph")) continue;
      any_graph = true;
      cpath.add_row(
          {name, sci(ph.at("critical_path").as_double()),
           sci(ph.at("critical_path_graph").as_double()),
           sci(ph.at("critical_path_graph_compute").as_double()),
           sci(ph.at("critical_path_graph_transfer").as_double())});
    }
    if (any_graph)
      std::printf(
          "Critical path, graph-based (dependency chain through binding "
          "receives):\n%s",
          cpath.str().c_str());

    // Late senders, aggregated over destinations: who to look at first
    // when a phase is wait-bound.
    struct SrcAgg {
      int src;
      double late_msgs, wait_s;
    };
    std::vector<SrcAgg> senders;
    const obs::Json& pairs = flow.at("pairs");
    for (const obs::Json& p : pairs.items()) {
      const int src = static_cast<int>(p.at("src").as_int());
      auto it = std::find_if(senders.begin(), senders.end(),
                             [&](const SrcAgg& s) { return s.src == src; });
      if (it == senders.end()) {
        senders.push_back({src, 0.0, 0.0});
        it = senders.end() - 1;
      }
      it->late_msgs += p.at("late_sender_msgs").as_double();
      it->wait_s += p.at("wait_seconds").as_double();
    }
    std::sort(senders.begin(), senders.end(),
              [](const SrcAgg& a, const SrcAgg& b) {
                return a.wait_s > b.wait_s;
              });
    if (senders.size() > top_k) senders.resize(top_k);
    double wait_max = senders.empty() ? 0.0 : senders.front().wait_s;
    Table late({"Src rank", "Late msgs", "Wait inflicted (s)", "Bar"});
    for (const SrcAgg& s : senders)
      late.add_row({std::to_string(s.src), sci(s.late_msgs), sci(s.wait_s),
                    bar(wait_max > 0.0 ? s.wait_s / wait_max : 0.0, 1.0,
                        16)});
    std::printf("Top-%zu late-sender ranks (by blocked time inflicted):\n%s",
                senders.size(), late.str().c_str());

    // Per-pair latency table, worst (by inflicted wait) first.
    std::vector<const obs::Json*> plist;
    for (const obs::Json& p : pairs.items()) plist.push_back(&p);
    std::sort(plist.begin(), plist.end(),
              [](const obs::Json* a, const obs::Json* b) {
                return a->at("wait_seconds").as_double() >
                       b->at("wait_seconds").as_double();
              });
    if (plist.size() > top_k) plist.resize(top_k);
    Table lat({"Src->Dst", "Msgs", "Bytes", "Lat p50 (s)", "Lat p95 (s)",
               "Lat max (s)", "Wait (s)"});
    for (const obs::Json* p : plist)
      lat.add_row({std::to_string(p->at("src").as_int()) + "->" +
                       std::to_string(p->at("dst").as_int()),
                   sci(p->at("msgs").as_double()),
                   sci(p->at("bytes").as_double()),
                   sci(p->at("latency_p50").as_double()),
                   sci(p->at("latency_p95").as_double()),
                   sci(p->at("latency_max").as_double()),
                   sci(p->at("wait_seconds").as_double())});
    std::printf("Message latency by (src, dst) pair:\n%s\n",
                lat.str().c_str());
  }

  // --- 6. Communication-matrix heatmaps.
  const obs::Json& matrices = doc.at("comm_matrix");
  std::printf("Communication matrices:\n");
  bool printed = false;
  for (const std::string& phase : matrices.keys()) {
    if (!want_phase.empty() && phase != want_phase) continue;
    const obs::Json& mat = matrices.at(phase).at(matrix_metric);
    if (want_phase.empty() && matrix_total(mat) <= 0.0) continue;
    print_heatmap(phase, matrix_metric, mat);
    printed = true;
  }
  if (!printed) {
    if (!want_phase.empty() && !matrices.contains(want_phase)) {
      std::fprintf(stderr, "pkifmm_report: no comm matrix for phase '%s'\n",
                   want_phase.c_str());
      return 2;
    }
    std::printf("  (no point-to-point traffic recorded)\n");
  }
  return 0;
}

int main(int argc, char** argv) {
  // Missing files and schema violations surface as CheckFailure (a
  // std::logic_error) from read_json_file/validate_summary_json; an
  // uncaught throw would std::terminate with no actionable message.
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pkifmm_report: error: %s\n", e.what());
    return 2;
  }
}
