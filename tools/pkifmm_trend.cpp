/// \file pkifmm_trend.cpp
/// \brief Bench-trajectory diff over a BENCH_history.jsonl file of
/// "pkifmm.run.v1" records (appended by every bench's --history-out).
///
/// Records are grouped by bench name; within each group the newest
/// record is compared against the median of the preceding --window
/// records (obs::trend_analyze). Wall/cpu/flops/msgs/bytes regressions
/// beyond the gate ratios are hard failures; hardware-counter and
/// memory metrics only warn — they move whenever CI lands on a
/// different machine, and perf access comes and goes with the
/// container.
///
///   pkifmm_trend --history=<BENCH_history.jsonl>
///       [--bench=<name>]      # analyze only this bench's records
///       [--window=8]          # reference = median of last K records
///       [--time-ratio=1.6] [--work-ratio=1.25] [--hw-ratio=1.5]
///       [--err-ratio=4]       # WARN bound for the sampled relative
///                             # error of health-enabled runs
///       [--min-seconds=5e-2] [--min-flops=1e4]
///       [--report-out=<trend_report.json>]
///       [--warn-only]         # exit 0 even on hard regressions
///       [--strict]            # promote hw/mem/wait warnings to hard
///                             # failures (exit 1)
///
/// Exit status: 0 = no regressions (including the first-run case of an
/// empty history or a single record — nothing to gate against yet),
/// 1 = regression detected, 2 = bad input (missing/unparseable
/// history, unknown bench). --strict is for CI lanes pinned to one
/// machine class, where hw counters ARE comparable; --warn-only wins
/// if both are given.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trend.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pkifmm;

namespace {

double phase_total(const obs::Json& rec, const char* metric) {
  double total = 0.0;
  const obs::Json& phases = rec.at("phases");
  for (const std::string& name : phases.keys()) {
    // Roots ("setup", "eval") include their children; summing only
    // top-level names avoids double counting.
    if (name.find('.') != std::string::npos) continue;
    const obs::Json& p = phases.at(name);
    if (p.contains(metric)) total += p.at(metric).as_double();
  }
  return total;
}

void print_findings(const char* label, const obs::Json& findings) {
  if (findings.size() == 0) return;
  Table t({"Phase", "Metric", "Reference", "Fresh", "Ratio", "Limit"});
  for (const obs::Json& f : findings.items())
    t.add_row({f.at("phase").as_string(), f.at("metric").as_string(),
               sci(f.at("reference").as_double()),
               sci(f.at("fresh").as_double()),
               fixed(f.at("ratio").as_double()),
               fixed(f.at("limit").as_double())});
  std::printf("%s:\n%s", label, t.str().c_str());
}

}  // namespace

static int run(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string history = cli.get("history", "");
  if (history.empty()) {
    std::fprintf(stderr,
                 "usage: pkifmm_trend --history=<BENCH_history.jsonl>\n");
    return 2;
  }
  const std::string want_bench = cli.get("bench", "");
  const bool warn_only = cli.has("warn-only");
  obs::TrendOptions opt;
  opt.window = cli.get_int("window", opt.window);
  opt.time_ratio = cli.get_double("time-ratio", opt.time_ratio);
  opt.work_ratio = cli.get_double("work-ratio", opt.work_ratio);
  opt.hw_ratio = cli.get_double("hw-ratio", opt.hw_ratio);
  opt.err_ratio = cli.get_double("err-ratio", opt.err_ratio);
  opt.min_seconds = cli.get_double("min-seconds", opt.min_seconds);
  opt.min_flops = cli.get_double("min-flops", opt.min_flops);
  opt.strict = cli.has("strict");

  const std::vector<obs::Json> records = obs::read_run_history(history);

  // An empty history is the normal first-run state (the file is
  // created by the first --history-out append): there is nothing to
  // gate against, which is not an error. A MISSING or unparseable file
  // still exits 2 (read_run_history throws), as does naming a bench
  // that has records for other benches only — that is a typo, not a
  // first run.
  if (records.empty()) {
    std::printf("pkifmm_trend: no run records yet in %s — no reference "
                "window to gate against (first run): OK\n",
                history.c_str());
    return 0;
  }

  // Group by bench, preserving file (= chronological) order per group.
  std::vector<std::string> bench_order;
  std::map<std::string, std::vector<obs::Json>> groups;
  for (const obs::Json& rec : records) {
    const std::string& bench = rec.at("bench").as_string();
    if (!want_bench.empty() && bench != want_bench) continue;
    if (!groups.count(bench)) bench_order.push_back(bench);
    groups[bench].push_back(rec);
  }
  if (groups.empty()) {
    std::fprintf(stderr, "pkifmm_trend: no records for bench %s in %s\n",
                 want_bench.c_str(), history.c_str());
    return 2;
  }

  bool all_ok = true;
  obs::Json report = obs::Json::object();
  report.set("schema", "pkifmm.trend.v1");
  obs::Json benches = obs::Json::object();

  for (const std::string& bench : bench_order) {
    const std::vector<obs::Json>& recs = groups[bench];
    std::printf("bench %s: %zu record(s)\n", bench.c_str(), recs.size());

    // Trajectory: the window the analysis actually references.
    const std::size_t first =
        recs.size() > static_cast<std::size_t>(opt.window) + 1
            ? recs.size() - static_cast<std::size_t>(opt.window) - 1
            : 0;
    Table traj({"#", "git sha", "hw", "Wall (s)", "CPU (s)", "Flops",
                "Peak RSS"});
    for (std::size_t i = first; i < recs.size(); ++i) {
      const obs::Json& r = recs[i];
      const double rss =
          r.contains("mem") && r.at("mem").contains("peak_rss_bytes")
              ? r.at("mem").at("peak_rss_bytes").as_double()
              : 0.0;
      traj.add_row({std::to_string(i) + (i + 1 == recs.size() ? "*" : ""),
                    r.at("git_sha").as_string().substr(0, 12),
                    r.at("hw_source").as_string(),
                    fixed(phase_total(r, "wall"), 3),
                    fixed(phase_total(r, "cpu"), 3),
                    sci(phase_total(r, "flops")), sci(rss)});
    }
    std::printf("%s", traj.str().c_str());

    const obs::Json analysis = obs::trend_analyze(recs, opt);
    const bool ok = analysis.at("ok").as_bool();
    all_ok = all_ok && ok;
    if (analysis.at("window").as_int() == 0) {
      // A single record has no prior window — say so instead of the
      // baffling "median of 0 prior: OK (0 checks)".
      std::printf("only one record — no reference window to gate against "
                  "(first run): OK\n");
    } else {
      std::printf("newest vs median of %lld prior: %s (%lld checks, "
                  "%zu regression(s), %zu warning(s))\n",
                  static_cast<long long>(analysis.at("window").as_int()),
                  ok ? "OK" : "REGRESSION",
                  static_cast<long long>(analysis.at("checked").as_int()),
                  analysis.at("regressions").size(),
                  analysis.at("warnings").size());
    }
    print_findings("Regressions (hard)", analysis.at("regressions"));
    print_findings("Warnings (hw/mem/health, advisory)",
                   analysis.at("warnings"));
    std::printf("\n");
    benches.set(bench, analysis);
  }

  report.set("ok", all_ok);
  report.set("benches", std::move(benches));
  const std::string report_out = cli.get("report-out", "");
  if (!report_out.empty()) obs::write_json_file(report_out, report);

  if (!all_ok && warn_only)
    std::printf("regressions found, but --warn-only requested: exit 0\n");
  return all_ok || warn_only ? 0 : 1;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pkifmm_trend: error: %s\n", e.what());
    return 2;
  }
}
