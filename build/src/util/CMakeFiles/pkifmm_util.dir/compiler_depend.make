# Empty compiler generated dependencies file for pkifmm_util.
# This may be replaced when dependencies are built.
