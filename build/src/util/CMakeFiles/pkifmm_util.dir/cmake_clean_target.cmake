file(REMOVE_RECURSE
  "libpkifmm_util.a"
)
