file(REMOVE_RECURSE
  "CMakeFiles/pkifmm_util.dir/cli.cpp.o"
  "CMakeFiles/pkifmm_util.dir/cli.cpp.o.d"
  "CMakeFiles/pkifmm_util.dir/table.cpp.o"
  "CMakeFiles/pkifmm_util.dir/table.cpp.o.d"
  "CMakeFiles/pkifmm_util.dir/timer.cpp.o"
  "CMakeFiles/pkifmm_util.dir/timer.cpp.o.d"
  "libpkifmm_util.a"
  "libpkifmm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkifmm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
