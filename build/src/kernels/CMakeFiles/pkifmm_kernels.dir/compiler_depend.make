# Empty compiler generated dependencies file for pkifmm_kernels.
# This may be replaced when dependencies are built.
