file(REMOVE_RECURSE
  "CMakeFiles/pkifmm_kernels.dir/kernel.cpp.o"
  "CMakeFiles/pkifmm_kernels.dir/kernel.cpp.o.d"
  "libpkifmm_kernels.a"
  "libpkifmm_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkifmm_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
