file(REMOVE_RECURSE
  "libpkifmm_kernels.a"
)
