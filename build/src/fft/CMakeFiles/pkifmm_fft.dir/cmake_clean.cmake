file(REMOVE_RECURSE
  "CMakeFiles/pkifmm_fft.dir/fft.cpp.o"
  "CMakeFiles/pkifmm_fft.dir/fft.cpp.o.d"
  "libpkifmm_fft.a"
  "libpkifmm_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkifmm_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
