# Empty dependencies file for pkifmm_fft.
# This may be replaced when dependencies are built.
