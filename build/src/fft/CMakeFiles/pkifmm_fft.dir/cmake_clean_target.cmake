file(REMOVE_RECURSE
  "libpkifmm_fft.a"
)
