file(REMOVE_RECURSE
  "CMakeFiles/pkifmm_octree.dir/balance.cpp.o"
  "CMakeFiles/pkifmm_octree.dir/balance.cpp.o.d"
  "CMakeFiles/pkifmm_octree.dir/build.cpp.o"
  "CMakeFiles/pkifmm_octree.dir/build.cpp.o.d"
  "CMakeFiles/pkifmm_octree.dir/let.cpp.o"
  "CMakeFiles/pkifmm_octree.dir/let.cpp.o.d"
  "CMakeFiles/pkifmm_octree.dir/partition.cpp.o"
  "CMakeFiles/pkifmm_octree.dir/partition.cpp.o.d"
  "CMakeFiles/pkifmm_octree.dir/points.cpp.o"
  "CMakeFiles/pkifmm_octree.dir/points.cpp.o.d"
  "libpkifmm_octree.a"
  "libpkifmm_octree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkifmm_octree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
