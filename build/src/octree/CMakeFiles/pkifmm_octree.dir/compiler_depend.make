# Empty compiler generated dependencies file for pkifmm_octree.
# This may be replaced when dependencies are built.
