
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/octree/balance.cpp" "src/octree/CMakeFiles/pkifmm_octree.dir/balance.cpp.o" "gcc" "src/octree/CMakeFiles/pkifmm_octree.dir/balance.cpp.o.d"
  "/root/repo/src/octree/build.cpp" "src/octree/CMakeFiles/pkifmm_octree.dir/build.cpp.o" "gcc" "src/octree/CMakeFiles/pkifmm_octree.dir/build.cpp.o.d"
  "/root/repo/src/octree/let.cpp" "src/octree/CMakeFiles/pkifmm_octree.dir/let.cpp.o" "gcc" "src/octree/CMakeFiles/pkifmm_octree.dir/let.cpp.o.d"
  "/root/repo/src/octree/partition.cpp" "src/octree/CMakeFiles/pkifmm_octree.dir/partition.cpp.o" "gcc" "src/octree/CMakeFiles/pkifmm_octree.dir/partition.cpp.o.d"
  "/root/repo/src/octree/points.cpp" "src/octree/CMakeFiles/pkifmm_octree.dir/points.cpp.o" "gcc" "src/octree/CMakeFiles/pkifmm_octree.dir/points.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pkifmm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/morton/CMakeFiles/pkifmm_morton.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/pkifmm_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
