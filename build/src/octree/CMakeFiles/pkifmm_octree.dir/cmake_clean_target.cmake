file(REMOVE_RECURSE
  "libpkifmm_octree.a"
)
