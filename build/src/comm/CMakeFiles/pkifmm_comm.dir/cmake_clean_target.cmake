file(REMOVE_RECURSE
  "libpkifmm_comm.a"
)
