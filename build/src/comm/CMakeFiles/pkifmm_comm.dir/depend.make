# Empty dependencies file for pkifmm_comm.
# This may be replaced when dependencies are built.
