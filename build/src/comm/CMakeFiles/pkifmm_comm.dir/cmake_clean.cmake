file(REMOVE_RECURSE
  "CMakeFiles/pkifmm_comm.dir/comm.cpp.o"
  "CMakeFiles/pkifmm_comm.dir/comm.cpp.o.d"
  "CMakeFiles/pkifmm_comm.dir/fabric.cpp.o"
  "CMakeFiles/pkifmm_comm.dir/fabric.cpp.o.d"
  "libpkifmm_comm.a"
  "libpkifmm_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkifmm_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
