file(REMOVE_RECURSE
  "libpkifmm_la.a"
)
