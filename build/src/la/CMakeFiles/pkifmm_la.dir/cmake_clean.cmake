file(REMOVE_RECURSE
  "CMakeFiles/pkifmm_la.dir/matrix.cpp.o"
  "CMakeFiles/pkifmm_la.dir/matrix.cpp.o.d"
  "CMakeFiles/pkifmm_la.dir/svd.cpp.o"
  "CMakeFiles/pkifmm_la.dir/svd.cpp.o.d"
  "libpkifmm_la.a"
  "libpkifmm_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkifmm_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
