# Empty compiler generated dependencies file for pkifmm_la.
# This may be replaced when dependencies are built.
