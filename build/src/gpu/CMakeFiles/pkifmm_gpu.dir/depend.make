# Empty dependencies file for pkifmm_gpu.
# This may be replaced when dependencies are built.
