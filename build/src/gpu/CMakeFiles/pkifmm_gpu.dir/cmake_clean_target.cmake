file(REMOVE_RECURSE
  "libpkifmm_gpu.a"
)
