file(REMOVE_RECURSE
  "CMakeFiles/pkifmm_gpu.dir/autotune.cpp.o"
  "CMakeFiles/pkifmm_gpu.dir/autotune.cpp.o.d"
  "CMakeFiles/pkifmm_gpu.dir/device.cpp.o"
  "CMakeFiles/pkifmm_gpu.dir/device.cpp.o.d"
  "CMakeFiles/pkifmm_gpu.dir/evaluator.cpp.o"
  "CMakeFiles/pkifmm_gpu.dir/evaluator.cpp.o.d"
  "CMakeFiles/pkifmm_gpu.dir/kernels.cpp.o"
  "CMakeFiles/pkifmm_gpu.dir/kernels.cpp.o.d"
  "CMakeFiles/pkifmm_gpu.dir/soa.cpp.o"
  "CMakeFiles/pkifmm_gpu.dir/soa.cpp.o.d"
  "libpkifmm_gpu.a"
  "libpkifmm_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkifmm_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
