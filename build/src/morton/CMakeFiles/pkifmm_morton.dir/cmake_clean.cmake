file(REMOVE_RECURSE
  "CMakeFiles/pkifmm_morton.dir/key.cpp.o"
  "CMakeFiles/pkifmm_morton.dir/key.cpp.o.d"
  "libpkifmm_morton.a"
  "libpkifmm_morton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkifmm_morton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
