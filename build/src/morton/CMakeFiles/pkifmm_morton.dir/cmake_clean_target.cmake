file(REMOVE_RECURSE
  "libpkifmm_morton.a"
)
