# Empty dependencies file for pkifmm_morton.
# This may be replaced when dependencies are built.
