file(REMOVE_RECURSE
  "CMakeFiles/pkifmm_core.dir/direct.cpp.o"
  "CMakeFiles/pkifmm_core.dir/direct.cpp.o.d"
  "CMakeFiles/pkifmm_core.dir/evaluator.cpp.o"
  "CMakeFiles/pkifmm_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/pkifmm_core.dir/fmm.cpp.o"
  "CMakeFiles/pkifmm_core.dir/fmm.cpp.o.d"
  "CMakeFiles/pkifmm_core.dir/reduce.cpp.o"
  "CMakeFiles/pkifmm_core.dir/reduce.cpp.o.d"
  "CMakeFiles/pkifmm_core.dir/surface.cpp.o"
  "CMakeFiles/pkifmm_core.dir/surface.cpp.o.d"
  "CMakeFiles/pkifmm_core.dir/tables.cpp.o"
  "CMakeFiles/pkifmm_core.dir/tables.cpp.o.d"
  "libpkifmm_core.a"
  "libpkifmm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkifmm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
