file(REMOVE_RECURSE
  "libpkifmm_core.a"
)
