# Empty compiler generated dependencies file for pkifmm_core.
# This may be replaced when dependencies are built.
