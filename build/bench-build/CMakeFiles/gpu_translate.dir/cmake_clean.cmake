file(REMOVE_RECURSE
  "../bench/gpu_translate"
  "../bench/gpu_translate.pdb"
  "CMakeFiles/gpu_translate.dir/gpu_translate.cpp.o"
  "CMakeFiles/gpu_translate.dir/gpu_translate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
