# Empty compiler generated dependencies file for gpu_translate.
# This may be replaced when dependencies are built.
