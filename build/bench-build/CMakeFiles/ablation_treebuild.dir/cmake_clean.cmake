file(REMOVE_RECURSE
  "../bench/ablation_treebuild"
  "../bench/ablation_treebuild.pdb"
  "CMakeFiles/ablation_treebuild.dir/ablation_treebuild.cpp.o"
  "CMakeFiles/ablation_treebuild.dir/ablation_treebuild.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_treebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
