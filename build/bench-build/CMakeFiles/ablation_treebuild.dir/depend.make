# Empty dependencies file for ablation_treebuild.
# This may be replaced when dependencies are built.
