# Empty compiler generated dependencies file for fig4_weak.
# This may be replaced when dependencies are built.
