
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_weak.cpp" "bench-build/CMakeFiles/fig4_weak.dir/fig4_weak.cpp.o" "gcc" "bench-build/CMakeFiles/fig4_weak.dir/fig4_weak.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/pkifmm_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/pkifmm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pkifmm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/pkifmm_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/pkifmm_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/pkifmm_la.dir/DependInfo.cmake"
  "/root/repo/build/src/octree/CMakeFiles/pkifmm_octree.dir/DependInfo.cmake"
  "/root/repo/build/src/morton/CMakeFiles/pkifmm_morton.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/pkifmm_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pkifmm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
