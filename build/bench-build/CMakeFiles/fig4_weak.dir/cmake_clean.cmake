file(REMOVE_RECURSE
  "../bench/fig4_weak"
  "../bench/fig4_weak.pdb"
  "CMakeFiles/fig4_weak.dir/fig4_weak.cpp.o"
  "CMakeFiles/fig4_weak.dir/fig4_weak.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
