file(REMOVE_RECURSE
  "../bench/fig3_strong"
  "../bench/fig3_strong.pdb"
  "CMakeFiles/fig3_strong.dir/fig3_strong.cpp.o"
  "CMakeFiles/fig3_strong.dir/fig3_strong.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
