# Empty compiler generated dependencies file for fig3_strong.
# This may be replaced when dependencies are built.
