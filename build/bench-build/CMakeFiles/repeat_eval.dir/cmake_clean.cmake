file(REMOVE_RECURSE
  "../bench/repeat_eval"
  "../bench/repeat_eval.pdb"
  "CMakeFiles/repeat_eval.dir/repeat_eval.cpp.o"
  "CMakeFiles/repeat_eval.dir/repeat_eval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repeat_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
