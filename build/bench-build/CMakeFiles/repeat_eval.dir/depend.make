# Empty dependencies file for repeat_eval.
# This may be replaced when dependencies are built.
