# Empty dependencies file for ablation_gpu_wx.
# This may be replaced when dependencies are built.
