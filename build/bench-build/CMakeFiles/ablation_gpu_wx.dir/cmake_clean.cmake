file(REMOVE_RECURSE
  "../bench/ablation_gpu_wx"
  "../bench/ablation_gpu_wx.pdb"
  "CMakeFiles/ablation_gpu_wx.dir/ablation_gpu_wx.cpp.o"
  "CMakeFiles/ablation_gpu_wx.dir/ablation_gpu_wx.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gpu_wx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
