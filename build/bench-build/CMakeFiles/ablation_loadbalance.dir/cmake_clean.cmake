file(REMOVE_RECURSE
  "../bench/ablation_loadbalance"
  "../bench/ablation_loadbalance.pdb"
  "CMakeFiles/ablation_loadbalance.dir/ablation_loadbalance.cpp.o"
  "CMakeFiles/ablation_loadbalance.dir/ablation_loadbalance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
