# Empty dependencies file for ablation_vlist.
# This may be replaced when dependencies are built.
