file(REMOVE_RECURSE
  "../bench/ablation_vlist"
  "../bench/ablation_vlist.pdb"
  "CMakeFiles/ablation_vlist.dir/ablation_vlist.cpp.o"
  "CMakeFiles/ablation_vlist.dir/ablation_vlist.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
