# Empty dependencies file for table3_gpu_q.
# This may be replaced when dependencies are built.
