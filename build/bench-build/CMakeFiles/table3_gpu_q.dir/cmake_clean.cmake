file(REMOVE_RECURSE
  "../bench/table3_gpu_q"
  "../bench/table3_gpu_q.pdb"
  "CMakeFiles/table3_gpu_q.dir/table3_gpu_q.cpp.o"
  "CMakeFiles/table3_gpu_q.dir/table3_gpu_q.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_gpu_q.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
