# Empty dependencies file for fig6_gpu_weak.
# This may be replaced when dependencies are built.
