file(REMOVE_RECURSE
  "../bench/fig6_gpu_weak"
  "../bench/fig6_gpu_weak.pdb"
  "CMakeFiles/fig6_gpu_weak.dir/fig6_gpu_weak.cpp.o"
  "CMakeFiles/fig6_gpu_weak.dir/fig6_gpu_weak.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gpu_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
