file(REMOVE_RECURSE
  "../lib/libpkifmm_bench_common.a"
)
