file(REMOVE_RECURSE
  "../lib/libpkifmm_bench_common.a"
  "../lib/libpkifmm_bench_common.pdb"
  "CMakeFiles/pkifmm_bench_common.dir/common.cpp.o"
  "CMakeFiles/pkifmm_bench_common.dir/common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkifmm_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
