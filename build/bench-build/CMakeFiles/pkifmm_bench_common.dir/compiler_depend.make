# Empty compiler generated dependencies file for pkifmm_bench_common.
# This may be replaced when dependencies are built.
