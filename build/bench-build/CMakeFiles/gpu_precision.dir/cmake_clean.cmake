file(REMOVE_RECURSE
  "../bench/gpu_precision"
  "../bench/gpu_precision.pdb"
  "CMakeFiles/gpu_precision.dir/gpu_precision.cpp.o"
  "CMakeFiles/gpu_precision.dir/gpu_precision.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
