# Empty dependencies file for gpu_precision.
# This may be replaced when dependencies are built.
