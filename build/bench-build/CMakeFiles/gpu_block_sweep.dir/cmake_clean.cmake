file(REMOVE_RECURSE
  "../bench/gpu_block_sweep"
  "../bench/gpu_block_sweep.pdb"
  "CMakeFiles/gpu_block_sweep.dir/gpu_block_sweep.cpp.o"
  "CMakeFiles/gpu_block_sweep.dir/gpu_block_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_block_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
