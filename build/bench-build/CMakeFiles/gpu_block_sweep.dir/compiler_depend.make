# Empty compiler generated dependencies file for gpu_block_sweep.
# This may be replaced when dependencies are built.
