file(REMOVE_RECURSE
  "../bench/table2_breakdown"
  "../bench/table2_breakdown.pdb"
  "CMakeFiles/table2_breakdown.dir/table2_breakdown.cpp.o"
  "CMakeFiles/table2_breakdown.dir/table2_breakdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
