# Empty compiler generated dependencies file for fig5_flops_variance.
# This may be replaced when dependencies are built.
