file(REMOVE_RECURSE
  "../bench/fig5_flops_variance"
  "../bench/fig5_flops_variance.pdb"
  "CMakeFiles/fig5_flops_variance.dir/fig5_flops_variance.cpp.o"
  "CMakeFiles/fig5_flops_variance.dir/fig5_flops_variance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_flops_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
