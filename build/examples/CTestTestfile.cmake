# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--n=4000" "--ranks=2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stokes_ellipsoid "/root/repo/build/examples/stokes_ellipsoid" "--n=3000" "--ranks=2")
set_tests_properties(example_stokes_ellipsoid PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_galaxy_gravity "/root/repo/build/examples/galaxy_gravity" "--n=5000" "--ranks=2")
set_tests_properties(example_galaxy_gravity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_gpu_offload "/root/repo/build/examples/gpu_offload" "--n=6000" "--q=100")
set_tests_properties(example_gpu_offload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_field_probe "/root/repo/build/examples/field_probe" "--n=4000" "--grid=12" "--ranks=2")
set_tests_properties(example_field_probe PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli "/root/repo/build/examples/pkifmm_cli" "--n=3000" "--ranks=2" "--accuracy=4" "--check=40")
set_tests_properties(example_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
