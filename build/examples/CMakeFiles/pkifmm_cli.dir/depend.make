# Empty dependencies file for pkifmm_cli.
# This may be replaced when dependencies are built.
