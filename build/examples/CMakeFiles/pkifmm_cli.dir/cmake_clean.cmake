file(REMOVE_RECURSE
  "CMakeFiles/pkifmm_cli.dir/pkifmm_cli.cpp.o"
  "CMakeFiles/pkifmm_cli.dir/pkifmm_cli.cpp.o.d"
  "pkifmm_cli"
  "pkifmm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pkifmm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
