# Empty compiler generated dependencies file for pkifmm_cli.
# This may be replaced when dependencies are built.
