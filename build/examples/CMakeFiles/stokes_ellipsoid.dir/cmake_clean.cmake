file(REMOVE_RECURSE
  "CMakeFiles/stokes_ellipsoid.dir/stokes_ellipsoid.cpp.o"
  "CMakeFiles/stokes_ellipsoid.dir/stokes_ellipsoid.cpp.o.d"
  "stokes_ellipsoid"
  "stokes_ellipsoid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stokes_ellipsoid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
