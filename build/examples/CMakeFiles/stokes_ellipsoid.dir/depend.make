# Empty dependencies file for stokes_ellipsoid.
# This may be replaced when dependencies are built.
