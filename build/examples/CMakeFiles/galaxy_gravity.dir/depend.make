# Empty dependencies file for galaxy_gravity.
# This may be replaced when dependencies are built.
