file(REMOVE_RECURSE
  "CMakeFiles/galaxy_gravity.dir/galaxy_gravity.cpp.o"
  "CMakeFiles/galaxy_gravity.dir/galaxy_gravity.cpp.o.d"
  "galaxy_gravity"
  "galaxy_gravity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/galaxy_gravity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
