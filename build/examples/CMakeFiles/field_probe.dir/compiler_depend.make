# Empty compiler generated dependencies file for field_probe.
# This may be replaced when dependencies are built.
