file(REMOVE_RECURSE
  "CMakeFiles/field_probe.dir/field_probe.cpp.o"
  "CMakeFiles/field_probe.dir/field_probe.cpp.o.d"
  "field_probe"
  "field_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
