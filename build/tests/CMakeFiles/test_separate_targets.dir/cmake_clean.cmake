file(REMOVE_RECURSE
  "CMakeFiles/test_separate_targets.dir/test_separate_targets.cpp.o"
  "CMakeFiles/test_separate_targets.dir/test_separate_targets.cpp.o.d"
  "test_separate_targets"
  "test_separate_targets.pdb"
  "test_separate_targets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_separate_targets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
