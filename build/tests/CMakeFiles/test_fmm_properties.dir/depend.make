# Empty dependencies file for test_fmm_properties.
# This may be replaced when dependencies are built.
