file(REMOVE_RECURSE
  "CMakeFiles/test_fmm_properties.dir/test_fmm_properties.cpp.o"
  "CMakeFiles/test_fmm_properties.dir/test_fmm_properties.cpp.o.d"
  "test_fmm_properties"
  "test_fmm_properties.pdb"
  "test_fmm_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fmm_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
