# Empty dependencies file for test_gpu_kernels.
# This may be replaced when dependencies are built.
