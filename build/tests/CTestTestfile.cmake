# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_morton[1]_include.cmake")
include("/root/repo/build/tests/test_la[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_octree[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_gpu[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_fmm_properties[1]_include.cmake")
include("/root/repo/build/tests/test_gradient[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_separate_targets[1]_include.cmake")
include("/root/repo/build/tests/test_balance[1]_include.cmake")
