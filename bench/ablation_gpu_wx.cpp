/// \file ablation_gpu_wx.cpp
/// \brief Extension experiment: W/X-lists on the GPU.
///
/// §IV of the paper: "Our ongoing work includes transferring the W,X-
/// lists on the GPU." pkifmm implements that extension; this bench
/// quantifies what it buys on a nonuniform problem (uniform trees have
/// nearly empty W/X lists, so the win only exists for adaptive trees,
/// which is exactly why the paper's uniform GPU runs could defer it).

#include <cstdio>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

namespace {

struct Outcome {
  double eval_modeled;
  double wx_host_flops;
  double wx_dev_seconds;
};

Outcome run_once(bool offload_wx, octree::Distribution dist, std::uint64_t n,
                 int q) {
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = q;
  opts.load_balance = false;
  const core::Tables& base = tables_for("laplace", opts);
  const core::Tables tables = base.with_options(opts);
  const comm::CostModel model;

  Outcome out{};
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(dist, n, 0, 1, 1, 21);
    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    gpu::StreamDevice dev;
    gpu::GpuEvaluator eval(tables, fmm.let(), ctx, dev, 64, offload_wx);
    eval.run();

    // Modeled evaluation time: device kernels + transfers + CPU-side
    // phases at the paper core rate.
    double host_flops = 0.0, wx_flops = 0.0;
    for (const auto& [name, f] : ctx.flops.phases()) {
      const bool wx = name == "eval.wli" || name == "eval.xli";
      const bool dev_phase =
          name == "eval.uli" || name == "eval.s2u" || name == "eval.d2t" ||
          name == "eval.vli" || (wx && offload_wx);
      if (!dev_phase) host_flops += static_cast<double>(f);
      if (wx && !offload_wx) wx_flops += static_cast<double>(f);
    }
    out.eval_modeled = model.compute_time(static_cast<std::uint64_t>(host_flops)) +
                       dev.modeled_seconds();
    out.wx_host_flops = wx_flops;
    for (const char* k : {"wli", "xli"}) {
      auto it = dev.kernels().find(k);
      if (it != dev.kernels().end())
        out.wx_dev_seconds += it->second.modeled_seconds;
    }
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "ablation_gpu_wx");
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 20000));
  const int q = static_cast<int>(cli.get_int("q", 60));

  print_header("Extension", "W/X-lists on the GPU (the paper's ongoing work)");
  Table table({"distribution", "W/X placement", "eval modeled (s)",
               "W/X cost (s)", "speedup"});

  for (auto dist : {octree::Distribution::kUniform,
                    octree::Distribution::kEllipsoid}) {
    const char* dname =
        dist == octree::Distribution::kUniform ? "uniform" : "nonuniform";
    const Outcome cpu = run_once(false, dist, n, q);
    const Outcome gpu = run_once(true, dist, n, q);
    const comm::CostModel model;
    table.add_row({dname, "CPU (paper)", sci(cpu.eval_modeled),
                   sci(model.compute_time(
                       static_cast<std::uint64_t>(cpu.wx_host_flops))),
                   "1.0x"});
    table.add_row({dname, "GPU (extension)", sci(gpu.eval_modeled),
                   sci(gpu.wx_dev_seconds),
                   fixed(cpu.eval_modeled / gpu.eval_modeled, 1) + "x"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Expected shape: no effect on the uniform tree (W/X nearly empty),\n"
      "a clear end-to-end win on the adaptive (nonuniform) tree where the\n"
      "CPU-resident W/X work sits on the critical path.\n");
  return 0;
}
