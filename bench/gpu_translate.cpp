/// \file gpu_translate.cpp
/// \brief Micro-experiment: cost of the CPU->GPU data-structure
/// translation (paper abstract: "the translation has a somewhat high
/// memory footprint, but we show that it can be accomplished
/// efficiently").
///
/// Reports the wall time of the LET -> padded-SoA translation plus
/// host->device upload against the evaluation time, and the memory
/// footprint of the translated structure, across problem sizes.

#include <cstdio>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "gpu_translate");

  print_header("GPU translate", "LET -> streaming SoA translation cost");
  Table table({"N", "translate (s)", "eval cpu (s)", "fraction",
               "SoA footprint"});

  for (std::uint64_t n : {5000ull, 20000ull, 50000ull}) {
    kernels::LaplaceKernel kern;
    core::FmmOptions opts;
    opts.surface_n = 6;
    opts.max_points_per_leaf = 100;
    const core::Tables& base = tables_for("laplace", opts);
    const core::Tables tables = base.with_options(opts);

    double translate = 0, eval = 0;
    std::size_t footprint = 0;
    comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
      auto pts = octree::generate_points(octree::Distribution::kUniform, n, 0,
                                         1, 1, 9);
      core::ParallelFmm fmm(ctx, tables);
      fmm.setup(std::move(pts));
      gpu::StreamDevice dev;
      gpu::GpuEvaluator ge(tables, fmm.let(), ctx, dev, 64);
      ge.run();
      footprint = ge.gpu_let().footprint_bytes();
      translate = ctx.timer.get_cpu("gpu.translate");
      for (const auto& [name, secs] : ctx.timer.cpu_phases())
        if (name.rfind("eval.", 0) == 0) eval += secs;
    });
    table.add_row({with_commas(n), sci(translate), sci(eval),
                   fixed(100.0 * translate / eval, 1) + "%",
                   with_commas(footprint) + " B"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Expected shape: translation remains a minor fraction of the\n"
              "evaluation work at every size.\n");
  return 0;
}
