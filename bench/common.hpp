#pragma once
/// \file common.hpp
/// \brief Shared experiment harness for the paper-reproduction benches.
///
/// Timing methodology (see DESIGN.md §2): simulated ranks run as
/// threads of one process, so wall-clock time is contended and
/// meaningless per rank. Instead, each rank's "cluster time" for a
/// phase is
///     t(rank, phase) = thread_cpu_seconds(phase)      [measured work]
///                    + t_s * msgs + t_w * bytes        [modeled comm]
/// with the alpha-beta constants of comm::CostModel. Max/Avg across
/// ranks are then reported exactly the way the paper's Table II and
/// Figs. 3-4 report them.

#include <functional>
#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "core/direct.hpp"
#include "core/fmm.hpp"
#include "gpu/evaluator.hpp"
#include "obs/export.hpp"
#include "octree/points.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace pkifmm::bench {

struct ExperimentConfig {
  int p = 1;
  octree::Distribution dist = octree::Distribution::kUniform;
  std::uint64_t n_points = 10000;
  std::uint64_t seed = 42;
  core::FmmOptions opts;
};

struct Experiment {
  std::vector<comm::RankReport> reports;
  comm::CostModel model;

  /// Per-rank modeled time summed over all phases whose name starts
  /// with `prefix` ("eval." -> whole evaluation, "setup." -> setup,
  /// "eval.uli" -> one phase).
  std::vector<double> phase_times(const std::string& prefix) const;

  /// Per-rank flops summed over matching phases.
  std::vector<double> phase_flops(const std::string& prefix) const;

  Summary time_summary(const std::string& prefix) const {
    auto t = phase_times(prefix);
    return Summary::of(t);
  }
  Summary flop_summary(const std::string& prefix) const {
    auto f = phase_flops(prefix);
    return Summary::of(f);
  }

  /// Per-rank measured thread-CPU seconds over matching phases (no
  /// modeled comm term — the denominator for achieved-flop-rate math).
  std::vector<double> phase_cpu(const std::string& prefix) const;

  /// Per-rank value of an obs counter by EXACT name (0 where a rank
  /// never recorded it). Use for the `hw.<phase>.*` / `mem.<phase>.*`
  /// counters, which are inclusive per span name and must not be
  /// prefix-summed (obs/export.hpp).
  std::vector<double> obs_counter(const std::string& name) const;

  /// Per-rank modeled communication time over matching phases.
  std::vector<double> comm_times(const std::string& prefix) const;

  /// Total messages / bytes sent across ranks for matching phases.
  std::uint64_t total_msgs(const std::string& prefix) const;
  std::uint64_t total_bytes(const std::string& prefix) const;
  /// Max over ranks of messages sent in matching phases.
  std::uint64_t max_msgs(const std::string& prefix) const;

  /// Per-rank time at the *paper's* CPU rate: science flops / 500 MF/s
  /// plus modeled communication. Used where the paper compares against
  /// Kraken/Lincoln CPU cores (Fig. 6 CPU baseline, Table III).
  std::vector<double> paper_times(const std::string& prefix) const;
};

/// Runs setup + evaluate with a shared Tables instance and returns the
/// per-rank reports. The same kernel/options Tables are cached across
/// calls so repeated sweep points do not redo the SVD precomputation.
Experiment run_fmm(const ExperimentConfig& cfg, const std::string& kernel);

/// Enables `--metrics-out=<path>` (flat "pkifmm.bench-metrics.v1"
/// JSON), `--trace-out=<path>` (Chrome trace_event JSON; multi-run
/// sweeps are merged with obs::merge_chrome_traces, so flow arrows and
/// pid blocks stay separable per repetition),
/// `--summary-out=<path>` (cross-rank "pkifmm.summary.v1", see
/// obs/aggregate.hpp) and `--history-out=<path>` (one compact
/// "pkifmm.run.v1" line APPENDED per bench process to a
/// BENCH_history.jsonl trajectory file, see obs/trend.hpp) for this
/// bench. The history record's git sha comes from `--git-sha`, else
/// the PKIFMM_GIT_SHA or GITHUB_SHA environment, else "unknown". Call
/// once right after constructing the Cli; every subsequent
/// run_fmm/run_gpu_fmm is recorded and the files are written when the
/// bench exits. The per-phase summaries in the metrics file are
/// computed from the same RankReports and CostModel as the stdout
/// tables, so the numbers agree to within formatting; each run also
/// carries the process peak RSS and per-phase peak-RSS deltas. The
/// summary merges all recorded runs (per-phase accumulators folded
/// with Accumulator::merge); it is what `bench/baseline_check`
/// compares against a checked-in BENCH_baseline.json and what the
/// history record condenses for `tools/pkifmm_trend`.
/// Also parses `--flow-trace` / `--flow-capacity=<events>`
/// (obs/flow.hpp message-flow tracing, off by default) and
/// `--exec-mode=bulk|dag` (FmmOptions::exec_mode — bulk-synchronous
/// reference vs util::TaskGraph data-driven execution); apply_flow_flags
/// copies them onto an FmmOptions, and run_fmm / run_gpu_fmm apply them
/// automatically. Recorded runs carry `config.exec_mode`, and history
/// records from a `--exec-mode=dag` process append under the bench name
/// `<bench>+dag` so pkifmm_trend keeps the two modes' trajectories (and
/// regression gates) separate.
/// Also parses `--health` / `--health-sample-rate=<frac in [0,1]>`
/// (FmmOptions::health numerical-health layer, DESIGN.md §5g): health
/// runs carry `config.health` (+ rate) and an extra `health` object in
/// their run.v1 history records.
void metrics_init(const Cli& cli, const std::string& bench_name);

/// Copies the --flow-trace / --flow-capacity / --exec-mode /
/// --health / --health-sample-rate flags captured by metrics_init onto
/// `opts`. Benches that drive comm::Runtime directly (instead of via
/// run_fmm) call this on their own FmmOptions.
void apply_flow_flags(core::FmmOptions& opts);

/// Internal: appends one run's reports to the metrics log (no-op when
/// metrics_init was not called or no output was requested).
void record_run(const std::string& kind, const ExperimentConfig& cfg,
                const std::string& kernel,
                const std::vector<comm::RankReport>& reports,
                const comm::CostModel& model);

/// Cached Tables lookup (geometry fields only drive the cache; other
/// options are rebound per call via Tables::with_options).
const core::Tables& tables_for(const std::string& kernel,
                               const core::FmmOptions& opts);

/// Prints a headline for a bench, echoing the paper artifact it
/// regenerates.
void print_header(const std::string& artifact, const std::string& what);

/// A GPU-configuration run: every rank owns one streaming device
/// (paper: one GPU per MPI process). Laplace kernel only.
struct GpuRun {
  std::vector<comm::RankReport> reports;
  std::vector<std::map<std::string, gpu::KernelStats>> dev_kernels;
  std::vector<double> dev_transfer_seconds;
  comm::CostModel model;

  /// Per-rank modeled device time of one kernel ("uli", "s2u", "d2t",
  /// "vli").
  std::vector<double> device_times(const std::string& kernel) const;

  /// Per-rank modeled time of the CPU-resident phases (flops at the
  /// paper CPU rate + modeled communication).
  std::vector<double> host_times() const;

  /// Per-rank total modeled evaluation time in the GPU configuration:
  /// device kernels + transfers + host phases.
  std::vector<double> eval_times() const;
};

GpuRun run_gpu_fmm(const ExperimentConfig& cfg, int block = 64);

}  // namespace pkifmm::bench
