/// \file repeat_eval.cpp
/// \brief Setup amortization over repeated evaluations — the paper's
/// target applications (fluid mechanics time-steppers) call the
/// evaluation every step on a slowly changing particle set, which is
/// why the setup/evaluation split of Figs. 3-4 matters. This bench
/// times one setup plus a sequence of evaluations with refreshed
/// densities (exercising the ghost-density exchange, the paper's first
/// evaluation-phase communication step).
///
/// `--threads=K` enables the intra-rank task pool (K threads per rank,
/// util::TaskPool); wall-clock columns show the speedup. CPU-seconds
/// columns stay roughly constant — the same arithmetic runs, spread
/// over workers — which is itself a useful sanity check. `--clamp=0`
/// bypasses the oversubscription guard (for measuring on boxes whose
/// core count is below p * K). `--exec-mode=dag` runs the evaluation
/// as one dependency-counted task graph (DESIGN.md "DAG executor") —
/// with identical outputs, so the wall-clock delta against the default
/// bulk-synchronous mode is the scheduling win itself.
///
/// `--health` enables the numerical-health layer (DESIGN.md §5g);
/// `--health-overhead-check` measures its cost: the bench runs the
/// same workload twice — health off, then health on at the requested
/// (or default) sample rate — prints the evaluate-wall overhead
/// percentage, and exits nonzero when it exceeds
/// `--max-overhead-pct` (default 2). Only the health-ON run is fed to
/// --metrics-out/--summary-out so the recorded summary carries the
/// health section the check is about.

#include <cstdio>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

namespace {

/// One full bench pass: setup + `steps` evaluations with refreshed
/// densities under the given options.
struct PassResult {
  std::vector<double> setup_cpu;
  std::vector<std::vector<double>> step_cpu;
  std::vector<std::vector<double>> step_wall;
  double setup_rss = 0.0;           ///< rank-0 VmHWM after setup
  std::vector<double> step_rss;     ///< rank-0 VmHWM after each step
  std::vector<comm::RankReport> reports;

  /// Mean across steps of the max-across-ranks evaluate wall.
  double mean_eval_wall() const {
    double sum = 0.0;
    for (const auto& w : step_wall) sum += Summary::of(w).max;
    return step_wall.empty() ? 0.0 : sum / double(step_wall.size());
  }
};

PassResult run_pass(const core::Tables& tables, int p, int threads,
                    bool clamp, octree::Distribution dist, std::uint64_t n,
                    int steps) {
  PassResult r;
  r.setup_cpu.assign(p, 0.0);
  r.step_cpu.assign(steps, std::vector<double>(p));
  r.step_wall.assign(steps, std::vector<double>(p));
  r.step_rss.assign(steps, 0.0);
  r.reports = comm::Runtime::run(p, threads, clamp, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(dist, n, ctx.rank(), p, 1, 77);
    core::ParallelFmm fmm(ctx, tables);
    {
      const double t0 = thread_cpu_seconds();
      fmm.setup(std::move(pts));
      r.setup_cpu[ctx.rank()] = thread_cpu_seconds() - t0;
      if (ctx.rank() == 0)
        r.setup_rss = static_cast<double>(obs::peak_rss_bytes());
    }

    std::vector<std::uint64_t> gids;
    for (const auto& node : fmm.let().nodes) {
      if (!node.owned) continue;
      for (const auto& pt : fmm.let().points_of(node)) gids.push_back(pt.gid);
    }
    Rng rng(5, ctx.rank());
    for (int s = 0; s < steps; ++s) {
      // New densities each "time step".
      std::vector<double> den(gids.size());
      for (auto& v : den) v = rng.uniform(-1, 1);
      fmm.set_densities(gids, den);
      const double t0 = thread_cpu_seconds();
      const double w0 = obs::wall_seconds();
      (void)fmm.evaluate();
      r.step_cpu[s][ctx.rank()] = thread_cpu_seconds() - t0;
      r.step_wall[s][ctx.rank()] = obs::wall_seconds() - w0;
      if (ctx.rank() == 0)
        r.step_rss[s] = static_cast<double>(obs::peak_rss_bytes());
    }
  });
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "repeat_eval");
  const int p = static_cast<int>(cli.get_int("p", 4));
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 20000));
  const int steps = static_cast<int>(cli.get_int("steps", 5));
  const int threads = static_cast<int>(cli.get_int("threads", 1));
  const bool clamp = cli.get_bool("clamp", true);
  const bool overhead_check = cli.has("health-overhead-check");
  const double max_overhead_pct =
      cli.get_double("max-overhead-pct", 2.0);
  const auto dist =
      octree::distribution_from_name(cli.get("dist", "ellipsoid"));

  print_header("Repeated evaluation",
               "setup amortization over time-stepper-style calls");

  const core::Tables& base = tables_for("laplace", core::FmmOptions{});
  core::FmmOptions opts = base.options();
  opts.max_points_per_leaf = static_cast<int>(cli.get_int("q", 60));
  opts.threads_per_rank = threads;
  opts.clamp_threads = clamp;
  apply_flow_flags(opts);  // drives Runtime directly, not via run_fmm
  if (overhead_check) opts.health = true;  // the thing being measured
  const core::Tables tables = base.with_options(opts);

  // Baseline pass for the overhead check: identical options with the
  // health layer off.
  double off_wall = 0.0;
  if (overhead_check) {
    core::FmmOptions off_opts = opts;
    off_opts.health = false;
    off_opts.health_fatal = false;
    const core::Tables off_tables = base.with_options(off_opts);
    off_wall = run_pass(off_tables, p, threads, clamp, dist, n, steps)
                   .mean_eval_wall();
  }

  const PassResult r = run_pass(tables, p, threads, clamp, dist, n, steps);

  // Feed --metrics-out/--summary-out/--history-out: this bench drives
  // the Runtime directly, so it must hand its reports to the log.
  ExperimentConfig cfg;
  cfg.p = p;
  cfg.dist = dist;
  cfg.n_points = n;
  cfg.seed = 77;
  cfg.opts = opts;
  record_run("fmm", cfg, "laplace", r.reports, comm::CostModel{});

  std::printf("threads per rank: %d (clamp %s) | exec mode: %s\n\n", threads,
              clamp ? "on" : "off",
              opts.exec_mode == core::ExecMode::kDag ? "dag" : "bulk");
  Table table({"phase", "max cpu (s)", "avg cpu (s)", "max wall (s)",
               "peak RSS (MiB)"});
  const auto mib = [](double b) { return fixed(b / (1024.0 * 1024.0), 1); };
  const Summary s0 = Summary::of(r.setup_cpu);
  table.add_row({"setup (once)", sci(s0.max), sci(s0.avg), "-",
                 mib(r.setup_rss)});
  double eval_sum = 0.0, wall_sum = 0.0;
  for (int s = 0; s < steps; ++s) {
    const Summary ss = Summary::of(r.step_cpu[s]);
    const Summary sw = Summary::of(r.step_wall[s]);
    table.add_row({"evaluate step " + std::to_string(s + 1), sci(ss.max),
                   sci(ss.avg), sci(sw.max), mib(r.step_rss[s])});
    eval_sum += ss.max;
    wall_sum += sw.max;
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Setup is %.1f%% of one evaluation; amortized over %d steps it is\n"
      "%.1f%% of total time. Evaluations after the first cost the same\n"
      "(the tree, LET and lists are reused; only densities move).\n",
      100.0 * s0.max / (eval_sum / steps), steps,
      100.0 * s0.max / (s0.max + eval_sum));
  std::printf("Mean evaluate wall: %.3e s/step over %d step(s).\n",
              wall_sum / steps, steps);

  if (overhead_check) {
    const double on_wall = r.mean_eval_wall();
    const double overhead_pct =
        off_wall > 0.0 ? 100.0 * (on_wall - off_wall) / off_wall : 0.0;
    std::printf(
        "\nHealth overhead: off %.3e s/step, on %.3e s/step "
        "(rate %.2e) -> %+.2f%% (limit %.1f%%)\n",
        off_wall, on_wall, opts.health_sample_rate, overhead_pct,
        max_overhead_pct);
    if (overhead_pct > max_overhead_pct) {
      std::fprintf(stderr,
                   "repeat_eval: health overhead %.2f%% exceeds limit "
                   "%.1f%%\n",
                   overhead_pct, max_overhead_pct);
      return 1;
    }
  }
  return 0;
}
