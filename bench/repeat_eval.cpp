/// \file repeat_eval.cpp
/// \brief Setup amortization over repeated evaluations — the paper's
/// target applications (fluid mechanics time-steppers) call the
/// evaluation every step on a slowly changing particle set, which is
/// why the setup/evaluation split of Figs. 3-4 matters. This bench
/// times one setup plus a sequence of evaluations with refreshed
/// densities (exercising the ghost-density exchange, the paper's first
/// evaluation-phase communication step).
///
/// `--threads=K` enables the intra-rank task pool (K threads per rank,
/// util::TaskPool); wall-clock columns show the speedup. CPU-seconds
/// columns stay roughly constant — the same arithmetic runs, spread
/// over workers — which is itself a useful sanity check. `--clamp=0`
/// bypasses the oversubscription guard (for measuring on boxes whose
/// core count is below p * K). `--exec-mode=dag` runs the evaluation
/// as one dependency-counted task graph (DESIGN.md "DAG executor") —
/// with identical outputs, so the wall-clock delta against the default
/// bulk-synchronous mode is the scheduling win itself.

#include <cstdio>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "repeat_eval");
  const int p = static_cast<int>(cli.get_int("p", 4));
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 20000));
  const int steps = static_cast<int>(cli.get_int("steps", 5));
  const int threads = static_cast<int>(cli.get_int("threads", 1));
  const bool clamp = cli.get_bool("clamp", true);
  const auto dist =
      octree::distribution_from_name(cli.get("dist", "ellipsoid"));

  print_header("Repeated evaluation",
               "setup amortization over time-stepper-style calls");

  const core::Tables& base = tables_for("laplace", core::FmmOptions{});
  core::FmmOptions opts = base.options();
  opts.max_points_per_leaf = static_cast<int>(cli.get_int("q", 60));
  opts.threads_per_rank = threads;
  opts.clamp_threads = clamp;
  apply_flow_flags(opts);  // drives Runtime directly, not via run_fmm
  const core::Tables tables = base.with_options(opts);

  std::vector<double> setup_cpu(p, 0.0);
  std::vector<std::vector<double>> step_cpu(steps, std::vector<double>(p));
  std::vector<std::vector<double>> step_wall(steps, std::vector<double>(p));
  // Process-wide VmHWM snapshots (rank 0 samples after its own phase
  // completes — a good proxy since ranks step in near-lockstep).
  double setup_rss = 0.0;
  std::vector<double> step_rss(steps, 0.0);
  const auto reports = comm::Runtime::run(p, threads, clamp, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(dist, n, ctx.rank(), p, 1, 77);
    core::ParallelFmm fmm(ctx, tables);
    {
      const double t0 = thread_cpu_seconds();
      fmm.setup(std::move(pts));
      setup_cpu[ctx.rank()] = thread_cpu_seconds() - t0;
      if (ctx.rank() == 0) setup_rss = static_cast<double>(obs::peak_rss_bytes());
    }

    std::vector<std::uint64_t> gids;
    for (const auto& node : fmm.let().nodes) {
      if (!node.owned) continue;
      for (const auto& pt : fmm.let().points_of(node)) gids.push_back(pt.gid);
    }
    Rng rng(5, ctx.rank());
    for (int s = 0; s < steps; ++s) {
      // New densities each "time step".
      std::vector<double> den(gids.size());
      for (auto& v : den) v = rng.uniform(-1, 1);
      fmm.set_densities(gids, den);
      const double t0 = thread_cpu_seconds();
      const double w0 = obs::wall_seconds();
      (void)fmm.evaluate();
      step_cpu[s][ctx.rank()] = thread_cpu_seconds() - t0;
      step_wall[s][ctx.rank()] = obs::wall_seconds() - w0;
      if (ctx.rank() == 0)
        step_rss[s] = static_cast<double>(obs::peak_rss_bytes());
    }
  });

  // Feed --metrics-out/--summary-out/--history-out: this bench drives
  // the Runtime directly, so it must hand its reports to the log.
  ExperimentConfig cfg;
  cfg.p = p;
  cfg.dist = dist;
  cfg.n_points = n;
  cfg.seed = 77;
  cfg.opts = opts;
  record_run("fmm", cfg, "laplace", reports, comm::CostModel{});

  std::printf("threads per rank: %d (clamp %s) | exec mode: %s\n\n", threads,
              clamp ? "on" : "off",
              opts.exec_mode == core::ExecMode::kDag ? "dag" : "bulk");
  Table table({"phase", "max cpu (s)", "avg cpu (s)", "max wall (s)",
               "peak RSS (MiB)"});
  const auto mib = [](double b) { return fixed(b / (1024.0 * 1024.0), 1); };
  const Summary s0 = Summary::of(setup_cpu);
  table.add_row({"setup (once)", sci(s0.max), sci(s0.avg), "-",
                 mib(setup_rss)});
  double eval_sum = 0.0, wall_sum = 0.0;
  for (int s = 0; s < steps; ++s) {
    const Summary ss = Summary::of(step_cpu[s]);
    const Summary sw = Summary::of(step_wall[s]);
    table.add_row({"evaluate step " + std::to_string(s + 1), sci(ss.max),
                   sci(ss.avg), sci(sw.max), mib(step_rss[s])});
    eval_sum += ss.max;
    wall_sum += sw.max;
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Setup is %.1f%% of one evaluation; amortized over %d steps it is\n"
      "%.1f%% of total time. Evaluations after the first cost the same\n"
      "(the tree, LET and lists are reused; only densities move).\n",
      100.0 * s0.max / (eval_sum / steps), steps,
      100.0 * s0.max / (s0.max + eval_sum));
  std::printf("Mean evaluate wall: %.3e s/step over %d step(s).\n",
              wall_sum / steps, steps);
  return 0;
}
