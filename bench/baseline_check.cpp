/// \file baseline_check.cpp
/// \brief Perf-regression gate: compares a freshly produced
/// "pkifmm.summary.v1" document (any bench's --summary-out) against a
/// checked-in baseline (BENCH_baseline.json) and exits nonzero when a
/// phase regressed past its threshold.
///
/// Two threshold classes (see obs::GateOptions): work metrics (flops,
/// messages, bytes) are exactly reproducible, so their default bound
/// is tight; wall/cpu time depends on the machine, so its bound is
/// loose and phases under the absolute floors are skipped — the
/// machine-tolerance envelope that lets the gate run on shared CI
/// runners without flaking.
///
///   baseline_check --summary=fresh.json --baseline=BENCH_baseline.json
///       [--time-ratio=1.6] [--work-ratio=1.25] [--min-seconds=5e-2]
///       [--min-flops=1e4] [--min-msgs=16] [--min-bytes=4096]
///       [--report-out=gate_report.json]
///
/// Exit status: 0 = no regression, 1 = regression (violations listed
/// on stdout), other nonzero = bad input.

#include <cstdio>

#include "obs/aggregate.hpp"
#include "obs/json.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace pkifmm;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const std::string summary_path = cli.get("summary", "");
  const std::string baseline_path = cli.get("baseline", "");
  if (summary_path.empty() || baseline_path.empty()) {
    std::fprintf(stderr,
                 "usage: baseline_check --summary=<fresh.json> "
                 "--baseline=<BENCH_baseline.json>\n");
    return 2;
  }

  obs::GateOptions opt;
  opt.time_ratio = cli.get_double("time-ratio", opt.time_ratio);
  opt.work_ratio = cli.get_double("work-ratio", opt.work_ratio);
  opt.min_seconds = cli.get_double("min-seconds", opt.min_seconds);
  opt.min_flops = cli.get_double("min-flops", opt.min_flops);
  opt.min_msgs = cli.get_double("min-msgs", opt.min_msgs);
  opt.min_bytes = cli.get_double("min-bytes", opt.min_bytes);

  const obs::Json fresh = obs::read_json_file(summary_path);
  const obs::Json baseline = obs::read_json_file(baseline_path);
  const obs::Json report = obs::compare_summaries(fresh, baseline, opt);

  const std::string report_path = cli.get("report-out", "");
  if (!report_path.empty()) obs::write_json_file(report_path, report);

  const auto& violations = report.at("violations").items();
  std::printf("baseline_check: %lld checks against %s\n",
              static_cast<long long>(report.at("checked").as_int()),
              baseline_path.c_str());
  if (violations.empty()) {
    std::printf("OK: no phase regressed past its threshold\n");
    return 0;
  }

  Table table({"Phase", "Metric", "Baseline", "Fresh", "Ratio", "Limit"});
  for (const obs::Json& v : violations) {
    table.add_row({v.at("phase").as_string(), v.at("metric").as_string(),
                   sci(v.at("baseline").as_double()),
                   sci(v.at("fresh").as_double()),
                   sci(v.at("ratio").as_double()),
                   sci(v.at("limit").as_double())});
  }
  std::printf("REGRESSION: %zu violation(s)\n%s\n", violations.size(),
              table.str().c_str());
  return 1;
}
