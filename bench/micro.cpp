/// \file micro.cpp
/// \brief google-benchmark micro-benchmarks of the pkifmm substrates:
/// Morton algebra, FFTs, the pseudo-inverse precomputation, kernel
/// inner loops (the paper's "500 MFlop/s single-core" context), and
/// the in-process communication fabric.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "comm/comm.hpp"
#include "comm/sort.hpp"
#include "core/surface.hpp"
#include "core/tables.hpp"
#include "fft/fft.hpp"
#include "kernels/kernel.hpp"
#include "la/matrix.hpp"
#include "la/svd.hpp"
#include "morton/key.hpp"
#include "obs/json.hpp"
#include "obs/trend.hpp"
#include "octree/build.hpp"
#include "util/rng.hpp"
#include "util/task_pool.hpp"

namespace {

using namespace pkifmm;

void BM_MortonCellOfPoint(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> xs(3000);
  for (auto& x : xs) x = rng.uniform();
  for (auto _ : state) {
    morton::Bits acc = 0;
    for (std::size_t i = 0; i + 2 < xs.size(); i += 3)
      acc ^= morton::cell_of_point(xs[i], xs[i + 1], xs[i + 2]).bits;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MortonCellOfPoint);

void BM_MortonColleagues(benchmark::State& state) {
  const auto k = morton::ancestor_at(morton::cell_of_point(0.37, 0.52, 0.81),
                                     static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto c = morton::colleagues(k);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MortonColleagues)->Arg(3)->Arg(10)->Arg(20);

void BM_MortonAdjacent(benchmark::State& state) {
  Rng rng(2);
  std::vector<morton::Key> keys;
  for (int i = 0; i < 256; ++i)
    keys.push_back(morton::ancestor_at(
        morton::cell_of_point(rng.uniform(), rng.uniform(), rng.uniform()),
        2 + static_cast<int>(rng.uniform_u64(8))));
  for (auto _ : state) {
    int count = 0;
    for (std::size_t i = 0; i + 1 < keys.size(); ++i)
      count += morton::adjacent(keys[i], keys[i + 1]);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 255);
}
BENCHMARK(BM_MortonAdjacent);

void BM_Fft3d(benchmark::State& state) {
  const std::size_t n = state.range(0);
  fft::Fft3d plan(n);
  Rng rng(3);
  std::vector<fft::Complex> vol(plan.volume());
  for (auto& v : vol) v = fft::Complex(rng.uniform(), rng.uniform());
  for (auto _ : state) {
    plan.forward(vol);
    plan.inverse(vol);
    benchmark::DoNotOptimize(vol.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * plan.transform_flops());
}
BENCHMARK(BM_Fft3d)->Arg(8)->Arg(16);

void BM_LaGemmAcc(benchmark::State& state) {
  // One surface-operator application batched over nb octant columns
  // (n=6 surfaces have m=152 points; Laplace operators are 152x152).
  const std::size_t nb = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  la::Matrix a(152, 152);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) a(r, c) = rng.uniform(-1, 1);
  std::vector<double> b(a.cols() * nb), acc(a.rows() * nb);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    std::fill(acc.begin(), acc.end(), 0.0);
    la::gemm_acc(a, b, acc, nb, 0.5);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(la::gemm_flops(a, nb)));
}
BENCHMARK(BM_LaGemmAcc)->Arg(32)->Arg(256);

void BM_FftPointwiseMacMany(benchmark::State& state) {
  // One translation spectrum applied to a run of source/accumulator
  // volumes, as in the offset-sorted V-list (grid 16 = surface n 6).
  const std::size_t npairs = static_cast<std::size_t>(state.range(0));
  const std::size_t vol = fft::Fft3d(16).volume();
  Rng rng(8);
  std::vector<fft::Complex> g(vol), f(npairs * vol), acc(npairs * vol);
  for (auto& v : g) v = fft::Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  for (auto& v : f) v = fft::Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  std::vector<const fft::Complex*> fs(npairs);
  std::vector<fft::Complex*> accs(npairs);
  for (std::size_t p = 0; p < npairs; ++p) {
    fs[p] = f.data() + p * vol;
    accs[p] = acc.data() + p * vol;
  }
  for (auto _ : state) {
    fft::pointwise_mac_many(g, fs, accs);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(8 * vol * npairs));
}
BENCHMARK(BM_FftPointwiseMacMany)->Arg(1)->Arg(32);

void BM_FftPointwiseMacChunked(benchmark::State& state) {
  // One frequency chunk of the chunk-major V-list sweep: nentries
  // (source, accumulator) slot pairs under one operator slice.
  const std::size_t nentries = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kChunk = 16;
  const std::size_t nslots = 256;
  Rng rng(9);
  std::vector<fft::Complex> g(kChunk), f(nslots * kChunk),
      acc(nslots * kChunk);
  for (auto& v : g) v = fft::Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  for (auto& v : f) v = fft::Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  std::vector<std::int32_t> fidx(nentries), aidx(nentries);
  for (std::size_t e = 0; e < nentries; ++e) {
    fidx[e] = static_cast<std::int32_t>(rng.uniform_u64(nslots));
    aidx[e] = static_cast<std::int32_t>(rng.uniform_u64(nslots));
  }
  for (auto _ : state) {
    fft::pointwise_mac_chunked(g.data(), kChunk, f.data(), acc.data(), fidx,
                               aidx);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(8 * kChunk * nentries));
}
BENCHMARK(BM_FftPointwiseMacChunked)->Arg(64)->Arg(1024);

void BM_PinvPrecompute(benchmark::State& state) {
  // The S2U/D2D conversion operator build for surface order n.
  const int n = static_cast<int>(state.range(0));
  kernels::LaplaceKernel kern;
  const std::array<double, 3> c = {0, 0, 0};
  const auto ue = core::surface_points(n, 1.05, c, 0.5);
  const auto uc = core::surface_points(n, 2.95, c, 0.5);
  for (auto _ : state) {
    auto p = la::pinv(kern.assemble(uc, ue));
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_PinvPrecompute)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_KernelDirect(benchmark::State& state) {
  auto kern = kernels::make_kernel(state.range(0) == 0 ? "laplace" : "stokes");
  Rng rng(4);
  const int n = 512;
  std::vector<double> tgt(3 * n), src(3 * n),
      den(n * kern->source_dim());
  for (auto& v : tgt) v = rng.uniform();
  for (auto& v : src) v = rng.uniform();
  for (auto& v : den) v = rng.uniform(-1, 1);
  std::vector<double> pot(n * kern->target_dim());
  for (auto _ : state) {
    std::fill(pot.begin(), pot.end(), 0.0);
    kern->direct(tgt, src, den, pot);
    benchmark::DoNotOptimize(pot.data());
  }
  // Report sustained model-flops (compare with the paper's 500 MFlop/s).
  state.SetItemsProcessed(state.iterations() * n * n *
                          kern->flops_per_interaction());
}
BENCHMARK(BM_KernelDirect)->Arg(0)->Arg(1);

void BM_SampleSort(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    comm::Runtime::run(p, [](comm::RankCtx& ctx) {
      Rng rng(5, ctx.rank());
      std::vector<std::uint64_t> data(20000);
      for (auto& v : data) v = rng.next_u64();
      comm::sample_sort(ctx.comm, data, std::less<>{});
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * 20000 * p);
}
BENCHMARK(BM_SampleSort)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_TreeConstruction(benchmark::State& state) {
  const auto dist = state.range(0) == 0 ? octree::Distribution::kUniform
                                        : octree::Distribution::kEllipsoid;
  auto pts = octree::generate_points(dist, 20000, 0, 1, 1, 6);
  for (auto _ : state) {
    comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
      octree::BuildParams bp;
      bp.max_points_per_leaf = 100;
      auto copy = pts;
      auto tree = octree::build_distributed_tree(ctx.comm, std::move(copy), bp);
      benchmark::DoNotOptimize(tree.leaves.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_TreeConstruction)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_TaskPoolParallelFor(benchmark::State& state) {
  // Scaling of the evaluator's workhorse primitive over worker counts
  // (arg 0 = pool workers; the caller lane always participates, so
  // "0 workers" is the inline serial baseline). Registered for the
  // worker counts implied by --threads=K: {0, 1, K-1}.
  const int workers = static_cast<int>(state.range(0));
  util::TaskPool pool(workers);
  const std::size_t n = 1 << 16;
  std::vector<double> out(n, 0.0);
  for (auto _ : state) {
    pool.parallel_for(n, 1024,
                      [&](std::size_t b, std::size_t e, int) {
                        for (std::size_t i = b; i < e; ++i)
                          out[i] = std::sqrt(static_cast<double>(i) + 1.5);
                      });
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["workers"] = workers;
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_GemmBatchParallel(benchmark::State& state) {
  // The evaluator's gemm_batched shape: one surface operator applied to
  // a column batch, the columns split across pool lanes exactly as
  // core::Evaluator splits them (gemm_acc_cols windows of 64 columns).
  // Bitwise identical to the serial gemm_acc for every worker count.
  const int workers = static_cast<int>(state.range(0));
  const std::size_t nb = 256;
  util::TaskPool pool(workers);
  Rng rng(11);
  la::Matrix a(152, 152);
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) a(r, c) = rng.uniform(-1, 1);
  std::vector<double> b(a.cols() * nb), acc(a.rows() * nb);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    std::fill(acc.begin(), acc.end(), 0.0);
    pool.parallel_for(nb, 64, [&](std::size_t c0, std::size_t c1, int) {
      la::gemm_acc_cols(a, b, acc, nb, c0, c1, 0.5);
    });
    benchmark::DoNotOptimize(acc.data());
  }
  state.counters["workers"] = workers;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(la::gemm_flops(a, nb)));
}

void BM_DagGraphThroughput(benchmark::State& state) {
  // Pure scheduling overhead of the DAG executor: a layered graph of
  // EMPTY nodes (kLayers x kWidth, fan-in 2 per node), rebuilt and
  // drained every iteration. Per-node cost = graph construction +
  // dependency counting + ready-enqueue + pool dispatch, with zero
  // useful work to hide behind — the upper bound on what kDag can cost
  // over kBulkSync per scheduled chunk.
  const int workers = static_cast<int>(state.range(0));
  util::TaskPool pool(workers);
  constexpr int kLayers = 32;
  constexpr int kWidth = 16;
  for (auto _ : state) {
    util::TaskGraph g(pool, "micro.dag");
    std::array<util::TaskGraph::NodeId, kWidth> prev;
    for (int i = 0; i < kWidth; ++i) prev[i] = g.node("layer", [](int) {});
    for (int l = 1; l < kLayers; ++l) {
      std::array<util::TaskGraph::NodeId, kWidth> cur;
      for (int i = 0; i < kWidth; ++i) {
        cur[i] = g.node("layer", [](int) {});
        g.edge(prev[i], cur[i]);
        g.edge(prev[(i + 1) % kWidth], cur[i]);
      }
      prev = cur;
    }
    g.launch();
    g.wait();
  }
  state.counters["workers"] = workers;
  state.SetItemsProcessed(state.iterations() * kLayers * kWidth);
}

void BM_DagReleaseLatency(benchmark::State& state) {
  // Dependency-release latency: a strict chain of empty nodes, so each
  // hop is complete() -> successor counter hits zero -> enqueue ->
  // dequeue -> run, with no available parallelism. Per-item time IS
  // the release handoff (on workers > 0 it includes the cross-thread
  // wake; at 0 workers it is the inline help-drain path).
  const int workers = static_cast<int>(state.range(0));
  util::TaskPool pool(workers);
  constexpr int kChain = 256;
  for (auto _ : state) {
    util::TaskGraph g(pool, "micro.dag");
    util::TaskGraph::NodeId prev = g.node("chain", [](int) {});
    for (int i = 1; i < kChain; ++i) {
      const util::TaskGraph::NodeId n = g.node("chain", [](int) {});
      g.edge(prev, n);
      prev = n;
    }
    g.launch();
    g.wait();
  }
  state.counters["workers"] = workers;
  state.SetItemsProcessed(state.iterations() * kChain);
}

/// Console reporting plus machine-readable capture for the perf-gate
/// artifacts (the other benches' --metrics-out analog; google-benchmark
/// owns the timing loop here, so the capture rides on the reporter).
class MetricsReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& r : runs) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      obs::Json o = obs::Json::object();
      o.set("name", r.benchmark_name());
      o.set("time_unit", benchmark::GetTimeUnitString(r.time_unit));
      o.set("real_time", r.GetAdjustedRealTime());
      o.set("cpu_time", r.GetAdjustedCPUTime());
      o.set("iterations", static_cast<std::int64_t>(r.iterations));
      for (const auto& [name, counter] : r.counters)
        o.set(name, static_cast<double>(counter));
      runs_.push_back(std::move(o));
    }
  }
  obs::Json take_runs() { return std::move(runs_); }

 private:
  obs::Json runs_ = obs::Json::array();
};

}  // namespace

int main(int argc, char** argv) {
  // google-benchmark rejects flags it does not know, so peel off
  // --metrics-out / --history-out / --git-sha / --threads before
  // handing argv over.
  std::string metrics_path, history_path, git_sha;
  int threads = 4;
  std::vector<char*> args;
  constexpr std::string_view kFlag = "--metrics-out=";
  constexpr std::string_view kHistory = "--history-out=";
  constexpr std::string_view kSha = "--git-sha=";
  constexpr std::string_view kThreads = "--threads=";
  for (int i = 0; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a.rfind(kFlag, 0) == 0) {
      metrics_path = std::string(a.substr(kFlag.size()));
      continue;
    }
    if (a.rfind(kHistory, 0) == 0) {
      history_path = std::string(a.substr(kHistory.size()));
      continue;
    }
    if (a.rfind(kSha, 0) == 0) {
      git_sha = std::string(a.substr(kSha.size()));
      continue;
    }
    if (a.rfind(kThreads, 0) == 0) {
      threads = std::max(1, std::atoi(std::string(a.substr(kThreads.size()))
                                          .c_str()));
      continue;
    }
    args.push_back(argv[i]);
  }
  for (const char* env : {"PKIFMM_GIT_SHA", "GITHUB_SHA"}) {
    if (!git_sha.empty()) break;
    if (const char* v = std::getenv(env)) git_sha = v;
  }
  if (git_sha.empty()) git_sha = "unknown";

  // The pool-scaling benches sweep worker counts up to --threads=K
  // (K threads per rank means K-1 pool workers next to the caller).
  std::vector<int> workers = {0, 1, threads - 1};
  std::sort(workers.begin(), workers.end());
  workers.erase(std::unique(workers.begin(), workers.end()), workers.end());
  for (const int w : workers) {
    if (w < 0) continue;
    benchmark::RegisterBenchmark("BM_TaskPoolParallelFor",
                                 BM_TaskPoolParallelFor)
        ->Arg(w);
    benchmark::RegisterBenchmark("BM_GemmBatchParallel", BM_GemmBatchParallel)
        ->Arg(w);
    benchmark::RegisterBenchmark("BM_DagGraphThroughput",
                                 BM_DagGraphThroughput)
        ->Arg(w);
    benchmark::RegisterBenchmark("BM_DagReleaseLatency", BM_DagReleaseLatency)
        ->Arg(w);
  }

  int nargs = static_cast<int>(args.size());
  benchmark::Initialize(&nargs, args.data());
  if (benchmark::ReportUnrecognizedArguments(nargs, args.data())) return 1;

  MetricsReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  const obs::Json runs = reporter.take_runs();
  if (!metrics_path.empty()) {
    obs::Json doc = obs::Json::object();
    doc.set("schema", "pkifmm.micro-metrics.v1");
    doc.set("bench", "micro");
    doc.set("runs", runs);
    obs::write_json_file(metrics_path, doc);
    std::printf("[metrics] wrote %s\n", metrics_path.c_str());
  }
  if (!history_path.empty()) {
    // One compact "pkifmm.run.v1" line for tools/pkifmm_trend: each
    // google-benchmark run becomes a phase whose wall/cpu are the
    // per-iteration adjusted times in seconds. Flops are 0 — the flop
    // gate's floor ignores them; the longitudinal signal here is the
    // per-item time of the scheduling/kernel substrates (e.g. the
    // BM_Dag* overhead benches drifting up).
    auto unit_seconds = [](const std::string& u) {
      if (u == "ns") return 1e-9;
      if (u == "us") return 1e-6;
      if (u == "ms") return 1e-3;
      return 1.0;
    };
    obs::Json rec = obs::Json::object();
    rec.set("schema", obs::kRunSchema);
    rec.set("bench", "micro");
    rec.set("git_sha", git_sha);
    rec.set("nranks", std::int64_t{1});
    rec.set("nruns", static_cast<std::int64_t>(runs.size()));
    rec.set("hw_source", "none");  // no per-phase hw counters here
    obs::Json config = obs::Json::object();
    config.set("threads", std::int64_t{threads});
    rec.set("config", std::move(config));
    obs::Json phases = obs::Json::object();
    for (const obs::Json& r : runs.items()) {
      const double scale = unit_seconds(r.at("time_unit").as_string());
      obs::Json ph = obs::Json::object();
      ph.set("wall", r.at("real_time").as_double() * scale);
      ph.set("cpu", r.at("cpu_time").as_double() * scale);
      ph.set("flops", 0.0);
      phases.set(r.at("name").as_string(), std::move(ph));
    }
    rec.set("phases", std::move(phases));
    obs::append_run_record(history_path, rec);
    std::printf("[metrics] appended run record to %s (sha %s)\n",
                history_path.c_str(), git_sha.c_str());
  }
  return 0;
}
