/// \file micro.cpp
/// \brief google-benchmark micro-benchmarks of the pkifmm substrates:
/// Morton algebra, FFTs, the pseudo-inverse precomputation, kernel
/// inner loops (the paper's "500 MFlop/s single-core" context), and
/// the in-process communication fabric.

#include <benchmark/benchmark.h>

#include "comm/comm.hpp"
#include "comm/sort.hpp"
#include "core/surface.hpp"
#include "core/tables.hpp"
#include "fft/fft.hpp"
#include "kernels/kernel.hpp"
#include "la/svd.hpp"
#include "morton/key.hpp"
#include "octree/build.hpp"
#include "util/rng.hpp"

namespace {

using namespace pkifmm;

void BM_MortonCellOfPoint(benchmark::State& state) {
  Rng rng(1);
  std::vector<double> xs(3000);
  for (auto& x : xs) x = rng.uniform();
  for (auto _ : state) {
    morton::Bits acc = 0;
    for (std::size_t i = 0; i + 2 < xs.size(); i += 3)
      acc ^= morton::cell_of_point(xs[i], xs[i + 1], xs[i + 2]).bits;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MortonCellOfPoint);

void BM_MortonColleagues(benchmark::State& state) {
  const auto k = morton::ancestor_at(morton::cell_of_point(0.37, 0.52, 0.81),
                                     static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto c = morton::colleagues(k);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MortonColleagues)->Arg(3)->Arg(10)->Arg(20);

void BM_MortonAdjacent(benchmark::State& state) {
  Rng rng(2);
  std::vector<morton::Key> keys;
  for (int i = 0; i < 256; ++i)
    keys.push_back(morton::ancestor_at(
        morton::cell_of_point(rng.uniform(), rng.uniform(), rng.uniform()),
        2 + static_cast<int>(rng.uniform_u64(8))));
  for (auto _ : state) {
    int count = 0;
    for (std::size_t i = 0; i + 1 < keys.size(); ++i)
      count += morton::adjacent(keys[i], keys[i + 1]);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 255);
}
BENCHMARK(BM_MortonAdjacent);

void BM_Fft3d(benchmark::State& state) {
  const std::size_t n = state.range(0);
  fft::Fft3d plan(n);
  Rng rng(3);
  std::vector<fft::Complex> vol(plan.volume());
  for (auto& v : vol) v = fft::Complex(rng.uniform(), rng.uniform());
  for (auto _ : state) {
    plan.forward(vol);
    plan.inverse(vol);
    benchmark::DoNotOptimize(vol.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * plan.transform_flops());
}
BENCHMARK(BM_Fft3d)->Arg(8)->Arg(16);

void BM_PinvPrecompute(benchmark::State& state) {
  // The S2U/D2D conversion operator build for surface order n.
  const int n = static_cast<int>(state.range(0));
  kernels::LaplaceKernel kern;
  const std::array<double, 3> c = {0, 0, 0};
  const auto ue = core::surface_points(n, 1.05, c, 0.5);
  const auto uc = core::surface_points(n, 2.95, c, 0.5);
  for (auto _ : state) {
    auto p = la::pinv(kern.assemble(uc, ue));
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_PinvPrecompute)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_KernelDirect(benchmark::State& state) {
  auto kern = kernels::make_kernel(state.range(0) == 0 ? "laplace" : "stokes");
  Rng rng(4);
  const int n = 512;
  std::vector<double> tgt(3 * n), src(3 * n),
      den(n * kern->source_dim());
  for (auto& v : tgt) v = rng.uniform();
  for (auto& v : src) v = rng.uniform();
  for (auto& v : den) v = rng.uniform(-1, 1);
  std::vector<double> pot(n * kern->target_dim());
  for (auto _ : state) {
    std::fill(pot.begin(), pot.end(), 0.0);
    kern->direct(tgt, src, den, pot);
    benchmark::DoNotOptimize(pot.data());
  }
  // Report sustained model-flops (compare with the paper's 500 MFlop/s).
  state.SetItemsProcessed(state.iterations() * n * n *
                          kern->flops_per_interaction());
}
BENCHMARK(BM_KernelDirect)->Arg(0)->Arg(1);

void BM_SampleSort(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    comm::Runtime::run(p, [](comm::RankCtx& ctx) {
      Rng rng(5, ctx.rank());
      std::vector<std::uint64_t> data(20000);
      for (auto& v : data) v = rng.next_u64();
      comm::sample_sort(ctx.comm, data, std::less<>{});
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * 20000 * p);
}
BENCHMARK(BM_SampleSort)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_TreeConstruction(benchmark::State& state) {
  const auto dist = state.range(0) == 0 ? octree::Distribution::kUniform
                                        : octree::Distribution::kEllipsoid;
  auto pts = octree::generate_points(dist, 20000, 0, 1, 1, 6);
  for (auto _ : state) {
    comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
      octree::BuildParams bp;
      bp.max_points_per_leaf = 100;
      auto copy = pts;
      auto tree = octree::build_distributed_tree(ctx.comm, std::move(copy), bp);
      benchmark::DoNotOptimize(tree.leaves.data());
    });
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_TreeConstruction)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
