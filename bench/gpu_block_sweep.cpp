/// \file gpu_block_sweep.cpp
/// \brief Tuning the thread-block size b of Algorithm 4.
///
/// The paper pads each target box to the next multiple of b and tiles
/// sources in chunks of b: large b improves coalescing and amortizes
/// synchronization, small b wastes fewer pad lanes when boxes are
/// small. This bench sweeps b and reports the modeled ULI time, the
/// pad overhead, and the fraction of uncoalesced tiles.

#include <cstdio>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "gpu_block_sweep");
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 20000));
  const int q = static_cast<int>(cli.get_int("q", 100));

  print_header("GPU block sweep", "Algorithm 4 thread-block size b");
  Table table({"b", "padded targets", "pad overhead", "uli modeled (s)",
               "uli flops/byte"});

  kernels::LaplaceKernel kern;
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = q;
  opts.load_balance = false;
  const core::Tables& base = tables_for("laplace", opts);
  const core::Tables tables = base.with_options(opts);

  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(octree::Distribution::kEllipsoid, n, 0,
                                       1, 1, 91);
    octree::BuildParams bp;
    bp.max_points_per_leaf = q;
    auto tree = octree::build_distributed_tree(ctx.comm, pts, bp);
    octree::Let let = octree::build_let(ctx.comm, tree);
    octree::build_interaction_lists(let);

    std::size_t real_targets = 0;
    for (const auto& nd : let.nodes)
      if (nd.owned && nd.global_leaf) real_targets += nd.target_count;

    for (int b : {16, 32, 64, 128, 256}) {
      gpu::StreamDevice dev;
      const gpu::GpuLet g = gpu::build_gpu_let(tables, let, b);
      gpu::Workspace ws = gpu::make_workspace(dev, g);
      gpu::run_uli(dev, g, ws);
      const auto& ks = dev.kernels().at("uli");
      table.add_row(
          {std::to_string(b), with_commas(g.padded_targets()),
           fixed(100.0 * (double(g.padded_targets()) / real_targets - 1.0),
                 1) + "%",
           sci(ks.modeled_seconds),
           fixed(double(ks.flops) / double(ks.gmem_bytes), 2)});
    }
  });
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Expected shape: pad overhead grows with b on the adaptive tree\n"
      "(many small boxes); arithmetic intensity improves with b until\n"
      "padding waste dominates — the b the paper tunes per machine.\n");
  return 0;
}
