/// \file table2_breakdown.cpp
/// \brief Reproduces paper Table II: per-phase timing/flops of the
/// evaluation phase for the nonuniform distribution.
///
/// Paper setup: 65,536 processes, 150K points/process, Stokes kernel
/// (30B unknowns), tree spanning levels 2..27. Rows: Total eval,
/// Upward, Comm, U-list, V-list, W-list, X-list, Downward, Comp, each
/// with Max./Avg. wall time and Max./Avg. flops; plus setup and sort
/// times in the caption. Here the same table is produced at simulator
/// scale (default p = 16, 1500 points/rank). `--exec-mode=dag` runs the
/// pipeline as one dependency-counted task graph (identical numbers in
/// the flops columns, by the bitwise-parity contract).

#include <cstdio>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "table2_breakdown");
  const int p = static_cast<int>(cli.get_int("p", 16));
  const auto per_rank = static_cast<std::uint64_t>(cli.get_int("per-rank", 1500));

  print_header("Table II", "evaluation-phase breakdown, nonuniform, Stokes");

  ExperimentConfig cfg;
  cfg.p = p;
  cfg.dist = octree::Distribution::kEllipsoid;
  cfg.n_points = per_rank * p;
  cfg.opts.surface_n = 4;
  cfg.opts.max_points_per_leaf = 40;
  // Intra-rank task pool (0 extra workers by default so the checked-in
  // BENCH_baseline stays a serial-evaluator record).
  cfg.opts.threads_per_rank = static_cast<int>(cli.get_int("threads", 1));
  cfg.opts.clamp_threads = cli.get_bool("clamp", true);
  Experiment exp = run_fmm(cfg, "stokes");

  Table table({"Event", "Max. Time", "Avg. Time", "Max. Flops", "Avg. Flops",
               "Max RSSd"});
  auto row = [&](const char* name, std::initializer_list<const char*> prefixes) {
    // Per-rank sums over the listed phases, then Max/Avg across ranks.
    // The RSS column is the max across ranks of the process peak-RSS
    // advance while the phase was open (mem.<phase>.peak_rss_delta_bytes
    // is keyed by EXACT span name — "eval." means the inclusive "eval"
    // root span, not a sum over children).
    std::vector<double> t(p, 0.0), f(p, 0.0), rss(p, 0.0);
    for (const char* pre : prefixes) {
      const auto pt = exp.phase_times(pre);
      const auto pf = exp.phase_flops(pre);
      std::string span = pre;
      if (!span.empty() && span.back() == '.') span.pop_back();
      const auto pr = exp.obs_counter("mem." + span + ".peak_rss_delta_bytes");
      for (int r = 0; r < p; ++r) {
        t[r] += pt[r];
        f[r] += pf[r];
        rss[r] += pr[r];
      }
    }
    const Summary st = Summary::of(t), sf = Summary::of(f),
                  sr = Summary::of(rss);
    table.add_row({name, sci(st.max), sci(st.avg), sci(sf.max), sci(sf.avg),
                   sci(sr.max)});
  };

  row("Total eval", {"eval."});
  row("Upward", {"eval.s2u", "eval.u2u"});
  row("Comm.", {"eval.comm"});
  row("U-list", {"eval.uli"});
  row("V-list", {"eval.vli"});
  row("W-list", {"eval.wli"});
  row("X-list", {"eval.xli"});
  row("Downward", {"eval.down", "eval.d2t"});
  // "Comp" = total evaluation minus communication.
  {
    const auto te = exp.phase_times("eval.");
    const auto tc = exp.phase_times("eval.comm");
    const auto fe = exp.phase_flops("eval.");
    std::vector<double> t(p);
    for (int r = 0; r < p; ++r) t[r] = te[r] - tc[r];
    const Summary st = Summary::of(t), sf = Summary::of(fe);
    table.add_row({"Comp", sci(st.max), sci(st.avg), sci(sf.max), sci(sf.avg),
                   "-"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("Process peak RSS: %.1f MiB (RSSd = peak-RSS advance while the\n"
              "phase was open; ranks share one address space, so deltas are\n"
              "attributed to whichever rank's phase the advance landed in).\n\n",
              static_cast<double>(obs::peak_rss_bytes()) / (1024.0 * 1024.0));

  const Summary setup = exp.time_summary("setup.");
  const Summary tree = exp.time_summary("setup.tree");
  std::printf(
      "Setup took %s s (max across ranks), of which %s s in the tree\n"
      "construction incl. the particle sort. p = %d, %llu points/rank,\n"
      "3 unknowns/point (Stokes): %s unknowns total.\n",
      sci(setup.max).c_str(), sci(tree.max).c_str(), p,
      static_cast<unsigned long long>(per_rank),
      with_commas(3 * cfg.n_points).c_str());
  std::printf(
      "\nPaper reference (65,536 cores, 30B unknowns): eval max 1.37e+02 s,\n"
      "avg 1.20e+02 s; U- and V-lists dominate and are comparable; W/X are\n"
      "~4x smaller; comm is a small fraction of total eval.\n");
  return 0;
}
