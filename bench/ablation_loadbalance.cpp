/// \file ablation_loadbalance.cpp
/// \brief Ablation D: leaf partitioning strategies (paper §III-B).
///
/// "Assigning each process an equal chunk of leaves may lead to a
/// substantial load imbalance during the interaction evaluation for
/// nonuniform octrees." Three strategies on the same nonuniform tree:
///   equal-leaves  — each rank gets the same number of leaves (the
///                   naive baseline the paper warns about),
///   equal-points  — each rank gets the same number of points (what
///                   the Morton sort produces),
///   work-weighted — the paper's scheme: leaves weighted by their
///                   U/V/W/X interaction work.
/// Reported: per-rank evaluation flops (max/avg/imbalance).

#include <cstdio>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

namespace {

enum class Strategy { kEqualLeaves, kEqualPoints, kWorkWeighted };

Summary run_strategy(Strategy strat, int p, std::uint64_t per_rank, int q) {
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = q;
  const core::Tables& base = tables_for("stokes", opts);
  const core::Tables tables = base.with_options(opts);

  auto reports = comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    octree::BuildParams bp;
    bp.max_points_per_leaf = q;
    auto pts = octree::generate_points(octree::Distribution::kCluster,
                                       per_rank * p, ctx.rank(), p,
                                       tables.sdim(), 5);
    auto tree = octree::build_distributed_tree(ctx.comm, std::move(pts), bp);

    if (strat == Strategy::kEqualLeaves) {
      std::vector<double> w(tree.leaves.size(), 1.0);
      tree = octree::load_balance(ctx.comm, std::move(tree), w);
    } else if (strat == Strategy::kWorkWeighted) {
      octree::Let let = octree::build_let(ctx.comm, tree);
      octree::build_interaction_lists(let);
      const auto w = core::leaf_work_estimates(tables, let);
      tree = octree::load_balance(ctx.comm, std::move(tree), w);
    }

    octree::Let let = octree::build_let(ctx.comm, tree);
    octree::build_interaction_lists(let);
    core::Evaluator eval(tables, let, ctx);
    eval.run();
  });

  std::vector<double> flops;
  for (const auto& rep : reports) {
    double f = 0.0;
    for (const auto& [name, v] : rep.flop_phases)
      if (name.rfind("eval.", 0) == 0) f += static_cast<double>(v);
    flops.push_back(f);
  }
  return Summary::of(flops);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "ablation_loadbalance");
  const int p = static_cast<int>(cli.get_int("p", 16));
  const auto per_rank = static_cast<std::uint64_t>(cli.get_int("per-rank", 1200));
  const int q = static_cast<int>(cli.get_int("q", 30));

  print_header("Ablation D",
               "leaf partitioning strategies, clustered nonuniform tree");
  Table table({"partitioning", "flops max", "flops avg", "imbalance"});

  const struct {
    Strategy strat;
    const char* name;
  } cases[] = {{Strategy::kEqualLeaves, "equal-leaves"},
               {Strategy::kEqualPoints, "equal-points"},
               {Strategy::kWorkWeighted, "work-weighted"}};
  for (const auto& c : cases) {
    const Summary s = run_strategy(c.strat, p, per_rank, q);
    table.add_row({c.name, sci(s.max), sci(s.avg), fixed(s.imbalance(), 2)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Expected shape: both naive partitions are substantially imbalanced\n"
      "on the clustered tree (leaf populations and list sizes vary\n"
      "wildly); the paper's work-weighted partitioning brings max/avg\n"
      "close to 1, matching the tight max-vs-avg dots of its Fig. 3.\n");
  return 0;
}
