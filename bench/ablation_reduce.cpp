/// \file ablation_reduce.cpp
/// \brief Ablation B: hypercube reduce-scatter (paper Algorithm 3) vs
/// the per-octant owner reduction (the paper's previous scheme).
///
/// The owner scheme "worked well on up to 32K processes, but failed in
/// the 64K case" (§III-C): octants near the root have O(p) users, so
/// the owner rank sends O(p) messages. Algorithm 3 bounds the per-rank
/// communication by O(t_s log p + t_w m (3 sqrt(p) - 2)). This bench
/// sweeps p and reports the evaluation-phase communication: max
/// messages per rank, total volume, and modeled time.

#include <cstdio>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "ablation_reduce");
  const int pmax = static_cast<int>(cli.get_int("pmax", 32));
  const auto per_rank = static_cast<std::uint64_t>(cli.get_int("per-rank", 500));

  print_header("Ablation B",
               "upward-density reduction: hypercube vs owner-based");
  Table table({"p", "scheme", "max msgs/rank", "total MB", "modeled comm max"});

  for (int p = 4; p <= pmax; p *= 2) {
    for (auto mode : {core::ReduceMode::kHypercube, core::ReduceMode::kOwner}) {
      ExperimentConfig cfg;
      cfg.p = p;
      cfg.dist = octree::Distribution::kEllipsoid;
      cfg.n_points = per_rank * p;
      cfg.opts.surface_n = 4;
      cfg.opts.max_points_per_leaf = 30;
      cfg.opts.reduce = mode;
      Experiment exp = run_fmm(cfg, "laplace");
      const auto comm = exp.comm_times("eval.comm");
      table.add_row(
          {std::to_string(p),
           mode == core::ReduceMode::kHypercube ? "hypercube" : "owner",
           std::to_string(exp.max_msgs("eval.comm")),
           fixed(double(exp.total_bytes("eval.comm")) / 1e6, 2),
           sci(Summary::of(comm).max)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Expected shape: hypercube message count per rank stays log2(p)\n"
      "while the owner scheme's max messages grow ~linearly with p (the\n"
      "64K-core failure mode the paper reports).\n");
  return 0;
}
