/// \file ablation_vlist.cpp
/// \brief Ablation A: FFT-diagonal vs dense V-list (M2L) translation.
///
/// The paper's KIFMM diagonalizes the V-list translation with FFTs
/// (§IV). The dense alternative applies a precomputed (m*m) matrix per
/// interaction pair. This bench measures both on the same trees and
/// reports CPU time and flops, across surface orders n.

#include <cstdio>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "ablation_vlist");
  const auto n_points = static_cast<std::uint64_t>(cli.get_int("n", 20000));

  print_header("Ablation A", "V-list translation: FFT-diagonal vs dense");
  Table table({"surface n", "mode", "vli cpu (s)", "vli flops", "speedup"});

  for (int sn : {4, 6, 8}) {
    double dense_time = 0.0;
    for (auto mode : {core::M2lMode::kDense, core::M2lMode::kFft}) {
      ExperimentConfig cfg;
      cfg.p = 1;
      cfg.dist = octree::Distribution::kUniform;
      cfg.n_points = n_points;
      cfg.opts.surface_n = sn;
      cfg.opts.max_points_per_leaf = 50;
      cfg.opts.m2l = mode;
      cfg.opts.load_balance = false;
      // First run warms the lazily built translation tables (dense
      // matrices are assembled on first use); time the second.
      cfg.n_points = 2000;
      (void)run_fmm(cfg, "laplace");
      cfg.n_points = n_points;
      Experiment exp = run_fmm(cfg, "laplace");
      const double t = exp.reports[0].cpu_phases.at("eval.vli");
      const double f = exp.phase_flops("eval.vli")[0];
      const bool is_dense = mode == core::M2lMode::kDense;
      if (is_dense) dense_time = t;
      table.add_row({std::to_string(sn), is_dense ? "dense" : "fft",
                     sci(t), sci(f),
                     is_dense ? "1.0x" : fixed(dense_time / t, 1) + "x"});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Expected shape: per pair the dense form costs ~2 m^2 flops and the\n"
      "diagonal form ~8 N_fft^3; with N_fft = next_pow2(2n-1) they are\n"
      "comparable at n = 4..6 and the FFT form wins decisively at n = 8\n"
      "(high accuracy), which is the regime the paper's KIFMM targets.\n");
  return 0;
}
