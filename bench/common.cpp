#include "common.hpp"

#include <cstdio>
#include <map>
#include <mutex>

namespace pkifmm::bench {

namespace {

template <class Map>
double sum_prefix(const Map& m, const std::string& prefix) {
  double total = 0.0;
  for (const auto& [name, v] : m)
    if (name.rfind(prefix, 0) == 0) total += static_cast<double>(v);
  return total;
}

comm::CostTracker::Counters counters_prefix(const comm::CostTracker& cost,
                                            const std::string& prefix) {
  comm::CostTracker::Counters out;
  for (const auto& [name, c] : cost.phases()) {
    if (name.rfind(prefix, 0) != 0) continue;
    out.msgs_sent += c.msgs_sent;
    out.bytes_sent += c.bytes_sent;
    out.msgs_recv += c.msgs_recv;
    out.bytes_recv += c.bytes_recv;
  }
  return out;
}

}  // namespace

std::vector<double> Experiment::phase_times(const std::string& prefix) const {
  std::vector<double> out;
  out.reserve(reports.size());
  for (const auto& rep : reports) {
    const double cpu = sum_prefix(rep.cpu_phases, prefix);
    const auto c = counters_prefix(rep.cost, prefix);
    out.push_back(cpu + model.comm_time(c));
  }
  return out;
}

std::vector<double> Experiment::phase_flops(const std::string& prefix) const {
  std::vector<double> out;
  out.reserve(reports.size());
  for (const auto& rep : reports)
    out.push_back(sum_prefix(rep.flop_phases, prefix));
  return out;
}

std::vector<double> Experiment::comm_times(const std::string& prefix) const {
  std::vector<double> out;
  out.reserve(reports.size());
  for (const auto& rep : reports)
    out.push_back(model.comm_time(counters_prefix(rep.cost, prefix)));
  return out;
}

std::uint64_t Experiment::total_msgs(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (const auto& rep : reports)
    total += counters_prefix(rep.cost, prefix).msgs_sent;
  return total;
}

std::uint64_t Experiment::total_bytes(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (const auto& rep : reports)
    total += counters_prefix(rep.cost, prefix).bytes_sent;
  return total;
}

std::uint64_t Experiment::max_msgs(const std::string& prefix) const {
  std::uint64_t m = 0;
  for (const auto& rep : reports)
    m = std::max(m, counters_prefix(rep.cost, prefix).msgs_sent);
  return m;
}

std::vector<double> Experiment::paper_times(const std::string& prefix) const {
  std::vector<double> out;
  out.reserve(reports.size());
  for (const auto& rep : reports) {
    const double flops = sum_prefix(rep.flop_phases, prefix);
    const auto c = counters_prefix(rep.cost, prefix);
    out.push_back(model.compute_time(static_cast<std::uint64_t>(flops)) +
                  model.comm_time(c));
  }
  return out;
}

std::vector<double> GpuRun::device_times(const std::string& kernel) const {
  std::vector<double> out;
  out.reserve(dev_kernels.size());
  for (const auto& dk : dev_kernels) {
    auto it = dk.find(kernel);
    out.push_back(it == dk.end() ? 0.0 : it->second.modeled_seconds);
  }
  return out;
}

std::vector<double> GpuRun::host_times() const {
  // CPU-resident phases of the GPU configuration.
  static const char* kHostPhases[] = {"eval.s2u.host", "eval.vli.host",
                                      "eval.u2u", "eval.down", "eval.xli",
                                      "eval.wli"};
  std::vector<double> out;
  out.reserve(reports.size());
  for (const auto& rep : reports) {
    double flops = 0.0;
    for (const char* ph : kHostPhases)
      flops += sum_prefix(rep.flop_phases, ph);
    const auto c = counters_prefix(rep.cost, "eval.comm");
    out.push_back(model.compute_time(static_cast<std::uint64_t>(flops)) +
                  model.comm_time(c));
  }
  return out;
}

std::vector<double> GpuRun::eval_times() const {
  std::vector<double> out = host_times();
  for (std::size_t r = 0; r < out.size(); ++r) {
    for (const auto& [name, ks] : dev_kernels[r])
      out[r] += ks.modeled_seconds;
    out[r] += dev_transfer_seconds[r];
  }
  return out;
}

GpuRun run_gpu_fmm(const ExperimentConfig& cfg, int block) {
  const core::Tables& base = tables_for("laplace", cfg.opts);
  const core::Tables tables = base.with_options(cfg.opts);

  GpuRun run;
  run.dev_kernels.resize(cfg.p);
  run.dev_transfer_seconds.assign(cfg.p, 0.0);
  run.reports = comm::Runtime::run(cfg.p, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(cfg.dist, cfg.n_points, ctx.rank(),
                                       ctx.size(), 1, cfg.seed);
    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));

    gpu::StreamDevice dev;  // one device per rank, as in the paper
    gpu::GpuEvaluator eval(tables, fmm.let(), ctx, dev, block);
    eval.run();
    run.dev_kernels[ctx.rank()] = dev.kernels();
    run.dev_transfer_seconds[ctx.rank()] = dev.transfer_seconds();
  });
  return run;
}

const core::Tables& tables_for(const std::string& kernel,
                               const core::FmmOptions& opts) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<kernels::Kernel>> kernels;
  static std::map<std::pair<std::string, int>, std::unique_ptr<core::Tables>>
      cache;
  std::lock_guard<std::mutex> lock(mu);
  auto& kern = kernels[kernel];
  if (!kern) kern = kernels::make_kernel(kernel);
  auto& t = cache[{kernel, opts.surface_n}];
  if (!t) {
    core::FmmOptions base;
    base.surface_n = opts.surface_n;
    t = std::make_unique<core::Tables>(*kern, base);
    // Warm the lazy M2L spectra so the first experiment's timed phases
    // don't pay the one-time table build.
    if (kern->homogeneous()) {
      for (int dx = -3; dx <= 3; ++dx)
        for (int dy = -3; dy <= 3; ++dy)
          for (int dz = -3; dz <= 3; ++dz)
            if (core::is_vlist_offset(dx, dy, dz))
              (void)t->m2l_spectra(0, core::offset_index(dx, dy, dz));
    }
  }
  return *t;
}

Experiment run_fmm(const ExperimentConfig& cfg, const std::string& kernel) {
  const core::Tables& base = tables_for(kernel, cfg.opts);
  const core::Tables tables = base.with_options(cfg.opts);

  Experiment exp;
  exp.reports = comm::Runtime::run(cfg.p, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(cfg.dist, cfg.n_points, ctx.rank(),
                                       ctx.size(), tables.sdim(), cfg.seed);
    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    (void)fmm.evaluate();
  });
  return exp;
}

void print_header(const std::string& artifact, const std::string& what) {
  std::printf("\n=== %s — %s ===\n", artifact.c_str(), what.c_str());
  std::printf(
      "(per-rank time = measured thread-CPU work + alpha-beta modeled "
      "communication; see DESIGN.md)\n\n");
}

}  // namespace pkifmm::bench
