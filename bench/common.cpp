#include "common.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>

#include "obs/aggregate.hpp"
#include "obs/hw.hpp"
#include "obs/trend.hpp"

namespace pkifmm::bench {

namespace {

/// Process-wide metrics log behind --metrics-out/--trace-out/
/// --summary-out/--history-out. Written at exit so sweeps with many
/// run_fmm calls land in one file (one appended history line).
struct MetricsLog {
  std::string bench;
  std::string metrics_path;
  std::string trace_path;
  std::string summary_path;
  std::string history_path;
  std::string git_sha;
  obs::Json runs = obs::Json::array();
  std::vector<obs::Json> trace_runs;  ///< one chrome doc per run
  obs::Json first_config;  ///< run.v1 config = first recorded run's
  std::vector<std::vector<obs::RankMetrics>> summary_runs;
  int run_index = 0;
  bool flow_trace = false;  ///< --flow-trace: obs/flow.hpp tracing
  int flow_capacity = 0;    ///< --flow-capacity (0 = library default)
  bool exec_dag = false;       ///< --exec-mode=dag: TaskGraph pipeline
  bool exec_mode_set = false;  ///< --exec-mode was given explicitly
  bool health = false;         ///< --health: FmmOptions::health layer
  bool health_rate_set = false;   ///< --health-sample-rate was given
  double health_rate = 0.0;       ///< its value when set
  std::mutex mu;

  bool enabled() const {
    return !metrics_path.empty() || !trace_path.empty() ||
           !summary_path.empty() || !history_path.empty();
  }
};

MetricsLog& metrics_log() {
  static MetricsLog log;
  return log;
}

void flush_metrics() try {
  MetricsLog& log = metrics_log();
  if (!log.metrics_path.empty()) {
    obs::Json doc = obs::Json::object();
    doc.set("schema", "pkifmm.bench-metrics.v1");
    doc.set("bench", log.bench);
    doc.set("nruns", std::int64_t{log.run_index});
    doc.set("runs", std::move(log.runs));
    obs::write_json_file(log.metrics_path, doc);
    std::printf("[metrics] wrote %s (%d runs)\n", log.metrics_path.c_str(),
                log.run_index);
  }
  if (!log.trace_path.empty()) {
    // Merge at flush so the pid stride derives from the actual rank
    // counts across all recorded runs (obs::merge_chrome_traces) —
    // within a run pid = rank, each run gets its own pid block, and
    // flow-arrow ids stay unique per repetition.
    obs::write_json_file(log.trace_path,
                         obs::merge_chrome_traces(log.trace_runs));
    std::printf("[metrics] wrote %s (%zu runs merged)\n",
                log.trace_path.c_str(), log.trace_runs.size());
  }
  if (!log.summary_path.empty() || !log.history_path.empty()) {
    const obs::Json summary =
        obs::summarize_runs(log.bench, log.summary_runs);
    if (!log.summary_path.empty()) {
      obs::write_summary_json(log.summary_path, summary);
      std::printf("[metrics] wrote %s (%zu runs merged)\n",
                  log.summary_path.c_str(), log.summary_runs.size());
    }
    if (!log.history_path.empty()) {
      // DAG runs record under a distinct bench key: pkifmm_trend
      // groups its trajectories by the record's "bench" string, so the
      // "+dag" suffix keeps the two scheduling modes from being
      // trend-gated against each other's history.
      const std::string hist_bench =
          log.exec_dag ? log.bench + "+dag" : log.bench;
      obs::append_run_record(
          log.history_path,
          obs::run_record_from_summary(summary, hist_bench, log.git_sha,
                                       log.first_config));
      std::printf("[metrics] appended run record to %s (sha %s)\n",
                  log.history_path.c_str(), log.git_sha.c_str());
    }
  }
} catch (const std::exception& e) {
  // Runs at exit: an escaping exception would call std::terminate, so
  // report the I/O failure without taking down the bench's results.
  std::fprintf(stderr, "[metrics] write failed: %s\n", e.what());
}

const char* dist_name(octree::Distribution d) {
  switch (d) {
    case octree::Distribution::kUniform: return "uniform";
    case octree::Distribution::kEllipsoid: return "ellipsoid";
    case octree::Distribution::kCluster: return "cluster";
  }
  return "unknown";
}

/// Max/avg/per-rank triple for one per-rank series.
obs::Json series_json(const std::vector<double>& per_rank) {
  const Summary s = Summary::of(per_rank);
  obs::Json out = obs::Json::object();
  out.set("max", s.max);
  out.set("avg", s.avg);
  obs::Json ranks = obs::Json::array();
  for (double v : per_rank) ranks.push_back(obs::Json(v));
  out.set("per_rank", std::move(ranks));
  return out;
}

}  // namespace

void metrics_init(const Cli& cli, const std::string& bench_name) {
  MetricsLog& log = metrics_log();
  log.bench = bench_name;
  log.metrics_path = cli.get("metrics-out", "");
  log.trace_path = cli.get("trace-out", "");
  log.summary_path = cli.get("summary-out", "");
  log.history_path = cli.get("history-out", "");
  std::string sha = cli.get("git-sha", "");
  for (const char* env : {"PKIFMM_GIT_SHA", "GITHUB_SHA"}) {
    if (!sha.empty()) break;
    if (const char* v = std::getenv(env)) sha = v;
  }
  log.git_sha = sha.empty() ? "unknown" : sha;
  log.flow_trace = cli.has("flow-trace");
  log.flow_capacity = cli.get_int("flow-capacity", 0);
  const std::string exec = cli.get("exec-mode", "");
  if (!exec.empty()) {
    if (exec != "bulk" && exec != "dag") {
      std::fprintf(stderr, "%s: --exec-mode must be bulk|dag, got '%s'\n",
                   bench_name.c_str(), exec.c_str());
      std::exit(2);
    }
    log.exec_mode_set = true;
    log.exec_dag = exec == "dag";
  }
  log.health = cli.has("health");
  const std::string rate = cli.get("health-sample-rate", "");
  if (!rate.empty()) {
    char* end = nullptr;
    const double v = std::strtod(rate.c_str(), &end);
    if (end == rate.c_str() || *end != '\0' || !(v >= 0.0 && v <= 1.0)) {
      std::fprintf(stderr,
                   "%s: --health-sample-rate must be in [0, 1], got '%s'\n",
                   bench_name.c_str(), rate.c_str());
      std::exit(2);
    }
    log.health_rate_set = true;
    log.health_rate = v;
  }
  log.first_config = obs::Json::object();
  if (log.enabled()) std::atexit(flush_metrics);
}

void apply_flow_flags(core::FmmOptions& opts) {
  const MetricsLog& log = metrics_log();
  if (log.flow_trace) opts.flow_trace = true;
  if (log.flow_capacity > 0) opts.flow_capacity = log.flow_capacity;
  if (log.exec_mode_set)
    opts.exec_mode = log.exec_dag ? core::ExecMode::kDag
                                  : core::ExecMode::kBulkSync;
  if (log.health) opts.health = true;
  if (log.health_rate_set) opts.health_sample_rate = log.health_rate;
}

void record_run(const std::string& kind, const ExperimentConfig& cfg,
                const std::string& kernel,
                const std::vector<comm::RankReport>& reports,
                const comm::CostModel& model) {
  MetricsLog& log = metrics_log();
  if (!log.enabled()) return;
  std::lock_guard<std::mutex> lock(log.mu);

  obs::Json run = obs::Json::object();
  run.set("kind", kind);
  obs::Json config = obs::Json::object();
  config.set("p", std::int64_t{cfg.p});
  config.set("dist", dist_name(cfg.dist));
  config.set("n_points", static_cast<std::int64_t>(cfg.n_points));
  config.set("seed", static_cast<std::int64_t>(cfg.seed));
  config.set("kernel", kernel);
  config.set("surface_n", std::int64_t{cfg.opts.surface_n});
  config.set("max_points_per_leaf",
             std::int64_t{cfg.opts.max_points_per_leaf});
  // The scheduling mode is part of the run's identity: trend tooling
  // must never regress-compare a DAG run against bulk-sync history.
  // run_fmm applies --exec-mode to a COPY of cfg.opts, so the log flag
  // (when given) is the authoritative source, not cfg.opts.exec_mode.
  const bool dag = log.exec_mode_set
                       ? log.exec_dag
                       : cfg.opts.exec_mode == core::ExecMode::kDag;
  config.set("exec_mode", dag ? "dag" : "bulk");
  // Health runs carry different work (sampling direct sums) and an
  // extra run.v1 field — stamp the config so report/trend tooling can
  // tell health-on and health-off runs apart.
  const bool health = log.health || cfg.opts.health;
  config.set("health", health);
  if (health)
    config.set("health_sample_rate", log.health_rate_set
                                         ? log.health_rate
                                         : cfg.opts.health_sample_rate);
  if (log.run_index == 0) {
    log.first_config = config;
    log.first_config.set("kind", kind);
  }
  run.set("config", std::move(config));

  // Per-phase summary matching the stdout tables: time = measured
  // thread-CPU + alpha-beta modeled comm (DESIGN.md §2), flops from the
  // analytic counters, msgs/bytes from the send ledger. Phase keys are
  // exact phase names; prefix aggregates ("eval.") are sums of these.
  std::set<std::string> names;
  for (const auto& rep : reports) {
    for (const auto& [name, v] : rep.cpu_phases) names.insert(name);
    for (const auto& [name, v] : rep.flop_phases) names.insert(name);
    for (const auto& [name, v] : rep.cost.phases()) names.insert(name);
  }
  obs::Json phases = obs::Json::object();
  for (const std::string& name : names) {
    std::vector<double> time, cpu, comm_time, flops;
    std::uint64_t msgs = 0, bytes = 0;
    for (const auto& rep : reports) {
      const auto cit = rep.cpu_phases.find(name);
      const double c = cit == rep.cpu_phases.end() ? 0.0 : cit->second;
      const auto cnt = rep.cost.get(name);
      time.push_back(c + model.comm_time(cnt));
      cpu.push_back(c);
      comm_time.push_back(model.comm_time(cnt));
      const auto fit = rep.flop_phases.find(name);
      flops.push_back(fit == rep.flop_phases.end()
                          ? 0.0
                          : static_cast<double>(fit->second));
      msgs += cnt.msgs_sent;
      bytes += cnt.bytes_sent;
    }
    obs::Json ph = obs::Json::object();
    ph.set("time", series_json(time));
    ph.set("cpu", series_json(cpu));
    ph.set("comm_time", series_json(comm_time));
    ph.set("flops", series_json(flops));
    ph.set("msgs", static_cast<std::int64_t>(msgs));
    ph.set("bytes", static_cast<std::int64_t>(bytes));
    // Max across ranks of the process VmHWM advance while the phase
    // was open (ranks share one address space, so deltas overlap —
    // max, not sum, is the honest per-phase figure).
    double rss_delta = 0.0;
    for (const auto& rep : reports) {
      const auto it =
          rep.obs.counters.find("mem." + name + ".peak_rss_delta_bytes");
      if (it != rep.obs.counters.end())
        rss_delta = std::max(rss_delta, it->second);
    }
    ph.set("peak_rss_delta_bytes", rss_delta);
    phases.set(name, std::move(ph));
  }
  run.set("phases", std::move(phases));
  obs::Json mem = obs::Json::object();
  mem.set("peak_rss_bytes",
          static_cast<std::int64_t>(obs::peak_rss_bytes()));
  run.set("mem", std::move(mem));

  // Full per-rank snapshot (counters, histograms, span trace) in the
  // flat pkifmm.metrics.v1 schema.
  std::vector<obs::RankMetrics> ranks;
  ranks.reserve(reports.size());
  for (const auto& rep : reports) ranks.push_back(rep.obs);
  run.set("metrics", obs::metrics_to_json(ranks));
  log.runs.push_back(std::move(run));

  // Chrome trace: buffer one per-run document; flush_metrics merges
  // them with a pid stride derived from the actual rank counts.
  if (!log.trace_path.empty())
    log.trace_runs.push_back(obs::chrome_trace_json(ranks));
  if (!log.summary_path.empty() || !log.history_path.empty())
    log.summary_runs.push_back(std::move(ranks));
  ++log.run_index;
}

namespace {

template <class Map>
double sum_prefix(const Map& m, const std::string& prefix) {
  double total = 0.0;
  for (const auto& [name, v] : m)
    if (name.rfind(prefix, 0) == 0) total += static_cast<double>(v);
  return total;
}

comm::CostTracker::Counters counters_prefix(const comm::CostTracker& cost,
                                            const std::string& prefix) {
  comm::CostTracker::Counters out;
  for (const auto& [name, c] : cost.phases()) {
    if (name.rfind(prefix, 0) != 0) continue;
    out.msgs_sent += c.msgs_sent;
    out.bytes_sent += c.bytes_sent;
    out.msgs_recv += c.msgs_recv;
    out.bytes_recv += c.bytes_recv;
  }
  return out;
}

}  // namespace

std::vector<double> Experiment::phase_times(const std::string& prefix) const {
  std::vector<double> out;
  out.reserve(reports.size());
  for (const auto& rep : reports) {
    const double cpu = sum_prefix(rep.cpu_phases, prefix);
    const auto c = counters_prefix(rep.cost, prefix);
    out.push_back(cpu + model.comm_time(c));
  }
  return out;
}

std::vector<double> Experiment::phase_cpu(const std::string& prefix) const {
  std::vector<double> out;
  out.reserve(reports.size());
  for (const auto& rep : reports)
    out.push_back(sum_prefix(rep.cpu_phases, prefix));
  return out;
}

std::vector<double> Experiment::obs_counter(const std::string& name) const {
  std::vector<double> out;
  out.reserve(reports.size());
  for (const auto& rep : reports) {
    const auto it = rep.obs.counters.find(name);
    out.push_back(it == rep.obs.counters.end() ? 0.0 : it->second);
  }
  return out;
}

std::vector<double> Experiment::phase_flops(const std::string& prefix) const {
  std::vector<double> out;
  out.reserve(reports.size());
  for (const auto& rep : reports)
    out.push_back(sum_prefix(rep.flop_phases, prefix));
  return out;
}

std::vector<double> Experiment::comm_times(const std::string& prefix) const {
  std::vector<double> out;
  out.reserve(reports.size());
  for (const auto& rep : reports)
    out.push_back(model.comm_time(counters_prefix(rep.cost, prefix)));
  return out;
}

std::uint64_t Experiment::total_msgs(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (const auto& rep : reports)
    total += counters_prefix(rep.cost, prefix).msgs_sent;
  return total;
}

std::uint64_t Experiment::total_bytes(const std::string& prefix) const {
  std::uint64_t total = 0;
  for (const auto& rep : reports)
    total += counters_prefix(rep.cost, prefix).bytes_sent;
  return total;
}

std::uint64_t Experiment::max_msgs(const std::string& prefix) const {
  std::uint64_t m = 0;
  for (const auto& rep : reports)
    m = std::max(m, counters_prefix(rep.cost, prefix).msgs_sent);
  return m;
}

std::vector<double> Experiment::paper_times(const std::string& prefix) const {
  std::vector<double> out;
  out.reserve(reports.size());
  for (const auto& rep : reports) {
    const double flops = sum_prefix(rep.flop_phases, prefix);
    const auto c = counters_prefix(rep.cost, prefix);
    out.push_back(model.compute_time(static_cast<std::uint64_t>(flops)) +
                  model.comm_time(c));
  }
  return out;
}

std::vector<double> GpuRun::device_times(const std::string& kernel) const {
  std::vector<double> out;
  out.reserve(dev_kernels.size());
  for (const auto& dk : dev_kernels) {
    auto it = dk.find(kernel);
    out.push_back(it == dk.end() ? 0.0 : it->second.modeled_seconds);
  }
  return out;
}

std::vector<double> GpuRun::host_times() const {
  // CPU-resident phases of the GPU configuration.
  static const char* kHostPhases[] = {"eval.s2u.host", "eval.vli.host",
                                      "eval.u2u", "eval.down", "eval.xli",
                                      "eval.wli"};
  std::vector<double> out;
  out.reserve(reports.size());
  for (const auto& rep : reports) {
    double flops = 0.0;
    for (const char* ph : kHostPhases)
      flops += sum_prefix(rep.flop_phases, ph);
    const auto c = counters_prefix(rep.cost, "eval.comm");
    out.push_back(model.compute_time(static_cast<std::uint64_t>(flops)) +
                  model.comm_time(c));
  }
  return out;
}

std::vector<double> GpuRun::eval_times() const {
  std::vector<double> out = host_times();
  for (std::size_t r = 0; r < out.size(); ++r) {
    for (const auto& [name, ks] : dev_kernels[r])
      out[r] += ks.modeled_seconds;
    out[r] += dev_transfer_seconds[r];
  }
  return out;
}

GpuRun run_gpu_fmm(const ExperimentConfig& cfg, int block) {
  core::FmmOptions opts = cfg.opts;
  apply_flow_flags(opts);
  const core::Tables& base = tables_for("laplace", opts);
  const core::Tables tables = base.with_options(opts);

  GpuRun run;
  run.dev_kernels.resize(cfg.p);
  run.dev_transfer_seconds.assign(cfg.p, 0.0);
  run.reports = comm::Runtime::run(cfg.p, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(cfg.dist, cfg.n_points, ctx.rank(),
                                       ctx.size(), 1, cfg.seed);
    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));

    gpu::StreamDevice dev;  // one device per rank, as in the paper
    gpu::GpuEvaluator eval(tables, fmm.let(), ctx, dev, block);
    eval.run();
    run.dev_kernels[ctx.rank()] = dev.kernels();
    run.dev_transfer_seconds[ctx.rank()] = dev.transfer_seconds();
  });
  record_run("gpu_fmm", cfg, "laplace", run.reports, run.model);
  return run;
}

const core::Tables& tables_for(const std::string& kernel,
                               const core::FmmOptions& opts) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<kernels::Kernel>> kernels;
  static std::map<std::pair<std::string, int>, std::unique_ptr<core::Tables>>
      cache;
  std::lock_guard<std::mutex> lock(mu);
  auto& kern = kernels[kernel];
  if (!kern) kern = kernels::make_kernel(kernel);
  auto& t = cache[{kernel, opts.surface_n}];
  if (!t) {
    core::FmmOptions base;
    base.surface_n = opts.surface_n;
    t = std::make_unique<core::Tables>(*kern, base);
    // Warm the lazy M2L spectra so the first experiment's timed phases
    // don't pay the one-time table build.
    if (kern->homogeneous()) {
      for (int dx = -3; dx <= 3; ++dx)
        for (int dy = -3; dy <= 3; ++dy)
          for (int dz = -3; dz <= 3; ++dz)
            if (core::is_vlist_offset(dx, dy, dz))
              (void)t->m2l_spectra(0, core::offset_index(dx, dy, dz));
    }
  }
  return *t;
}

Experiment run_fmm(const ExperimentConfig& cfg, const std::string& kernel) {
  core::FmmOptions opts = cfg.opts;
  apply_flow_flags(opts);
  const core::Tables& base = tables_for(kernel, opts);
  const core::Tables tables = base.with_options(opts);

  Experiment exp;
  exp.reports = comm::Runtime::run(cfg.p, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(cfg.dist, cfg.n_points, ctx.rank(),
                                       ctx.size(), tables.sdim(), cfg.seed);
    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    (void)fmm.evaluate();
  });
  record_run("fmm", cfg, kernel, exp.reports, exp.model);
  return exp;
}

void print_header(const std::string& artifact, const std::string& what) {
  std::printf("\n=== %s — %s ===\n", artifact.c_str(), what.c_str());
  std::printf(
      "(per-rank time = measured thread-CPU work + alpha-beta modeled "
      "communication; see DESIGN.md)\n\n");
}

}  // namespace pkifmm::bench
