/// \file fig6_gpu_weak.cpp
/// \brief Reproduces paper Figure 6: GPU weak scaling on Lincoln.
///
/// Paper setup: 1M uniform points per GPU, Laplace kernel, one GPU per
/// MPI process, p = 1..256; GPU runs use a shallower tree (q ~ 400,
/// favoring the GPU-friendly U-list) while CPU runs use q ~ 100, both
/// tuned for their architecture. Claims: a sustained >=25x speedup over
/// the CPU-only configuration and 1.8-3 s per evaluation. Here: default
/// 2K points/rank, p = 1..16; the CPU baseline is modeled at the
/// paper's 500 MFlop/s sustained core rate, the GPU configuration with
/// the streaming-device cost model.

#include <cstdio>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "fig6_gpu_weak");
  const int pmax = static_cast<int>(cli.get_int("pmax", 8));
  const auto per_rank = static_cast<std::uint64_t>(cli.get_int("per-rank", 3000));
  const int q_gpu = static_cast<int>(cli.get_int("q-gpu", 1050));
  const int q_cpu = static_cast<int>(cli.get_int("q-cpu", 100));

  print_header("Figure 6", "GPU weak scaling, CPU-only vs GPU/CPU");
  std::printf("q(GPU) = %d, q(CPU) = %d — each tuned for its architecture, "
              "as in the paper\n\n", q_gpu, q_cpu);
  Table table({"p (GPUs)", "N total", "CPU-only eval", "GPU eval",
               "speedup", "speedup (bar, 40x scale)"});

  double min_speedup = 1e30;
  for (int p = 1; p <= pmax; p *= 2) {
    ExperimentConfig cfg;
    cfg.dist = octree::Distribution::kUniform;
    cfg.p = p;
    cfg.n_points = per_rank * p;
    cfg.opts.surface_n = 4;
    cfg.opts.load_balance = (p > 1);

    // CPU-only configuration, tuned q for the CPU (deeper tree,
    // V-list-heavy).
    cfg.opts.max_points_per_leaf = q_cpu;
    Experiment cpu = run_fmm(cfg, "laplace");
    const double t_cpu = Summary::of(cpu.paper_times("eval.")).max;

    // GPU configuration: shallower tree favoring the U-list (the paper
    // used ~400 points/box on the GPU vs ~100 on the CPU).
    cfg.opts.max_points_per_leaf = q_gpu;
    GpuRun gpu = run_gpu_fmm(cfg);
    const auto gt = gpu.eval_times();
    const double t_gpu = Summary::of(gt).max;
    min_speedup = std::min(min_speedup, t_cpu / t_gpu);

    table.add_row({std::to_string(p), with_commas(cfg.n_points),
                   sci(t_cpu), sci(t_gpu), fixed(t_cpu / t_gpu, 1) + "x",
                   bar(t_cpu / t_gpu, 40.0)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Paper reference: a sustained >=25x GPU speedup across the whole\n"
      "weak-scaling range (256M points in 2.3 s on 256 GPUs, ~8 TFlop/s).\n"
      "Minimum speedup across the measured range: %.1fx. (At this\n"
      "simulator scale trees are shallow, so level-quantization wobbles\n"
      "the series more than at the paper's 1M points/GPU.)\n",
      min_speedup);
  return 0;
}
