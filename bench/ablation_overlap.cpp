/// \file ablation_overlap.cpp
/// \brief Analysis: how much would communication/computation overlap
/// buy? (Paper §I, limitations: "we do not thoroughly overlap
/// computation and communication; ... do not exploit the possibility of
/// overlapping GPU evaluation with work on the CPU.")
///
/// The ULI (direct) phase has no dependency on the upward reduction
/// (paper §II-A: "The APPROXIMATE INTERACTIONS and DIRECT INTERACTIONS
/// parts can be executed concurrently"), so a perfect schedule hides
/// the reduce-scatter behind the direct sums:
///   serial:    T = comm + uli + rest
///   overlapped T = max(comm, uli) + rest
/// This bench computes both from the measured per-rank phase times and
/// reports the headroom across rank counts.

#include <cstdio>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "ablation_overlap");
  const int pmax = static_cast<int>(cli.get_int("pmax", 32));
  const auto per_rank = static_cast<std::uint64_t>(cli.get_int("per-rank", 800));

  print_header("Overlap analysis",
               "hiding the upward reduction behind the U-list");
  Table table({"p", "comm max", "uli max", "serial eval", "overlapped eval",
               "saving"});

  for (int p = 2; p <= pmax; p *= 2) {
    ExperimentConfig cfg;
    cfg.p = p;
    cfg.dist = octree::Distribution::kEllipsoid;
    cfg.n_points = per_rank * p;
    cfg.opts.surface_n = 4;
    cfg.opts.max_points_per_leaf = 40;
    Experiment exp = run_fmm(cfg, "stokes");

    const auto comm = exp.phase_times("eval.comm");
    const auto uli = exp.phase_times("eval.uli");
    const auto total = exp.phase_times("eval.");
    std::vector<double> serial(p), overlapped(p);
    for (int r = 0; r < p; ++r) {
      serial[r] = total[r];
      overlapped[r] = total[r] - comm[r] - uli[r] + std::max(comm[r], uli[r]);
    }
    const Summary ss = Summary::of(serial), so = Summary::of(overlapped);
    table.add_row({std::to_string(p), sci(Summary::of(comm).max),
                   sci(Summary::of(uli).max), sci(ss.max), sci(so.max),
                   fixed(100.0 * (1.0 - so.max / ss.max), 1) + "%"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Expected shape: savings grow with p as the sqrt(p) reduction term\n"
      "becomes a larger share of the evaluation — quantifying what the\n"
      "paper left on the table by not overlapping.\n");
  return 0;
}
