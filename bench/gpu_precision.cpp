/// \file gpu_precision.cpp
/// \brief Paper limitation #1 (§I): "the GPU acceleration is
/// implemented in single precision (the rest of the code can work in
/// both single and double precision)." This bench quantifies what that
/// costs: the CPU (double) FMM error vs direct summation keeps falling
/// as the surface order n grows, while the GPU (float) path hits the
/// single-precision floor.

#include <cstdio>
#include <unordered_map>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

namespace {

std::pair<double, double> errors_for(int surface_n, std::uint64_t n) {
  kernels::LaplaceKernel kernel;
  core::FmmOptions opts;
  opts.surface_n = surface_n;
  opts.max_points_per_leaf = 60;
  opts.load_balance = false;
  const core::Tables& base = tables_for("laplace", opts);
  const core::Tables tables = base.with_options(opts);

  double cpu_err = 0, gpu_err = 0;
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(octree::Distribution::kUniform, n, 0, 1,
                                       1, 19);
    octree::BuildParams bp;
    bp.max_points_per_leaf = 60;
    auto tree = octree::build_distributed_tree(ctx.comm, pts, bp);
    octree::Let let = octree::build_let(ctx.comm, tree);
    octree::build_interaction_lists(let);

    core::Evaluator cpu(tables, let, ctx);
    cpu.run();
    gpu::StreamDevice dev;
    gpu::GpuEvaluator gpu_eval(tables, let, ctx, dev, 64);
    gpu_eval.run();

    std::vector<octree::PointRec> owned;
    std::vector<double> ac, ag;
    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      const auto& nd = let.nodes[i];
      if (!(nd.owned && nd.global_leaf)) continue;
      for (std::uint32_t k = 0; k < nd.target_count; ++k) {
        owned.push_back(let.points[nd.point_begin + k]);
        ac.push_back(cpu.potential()[nd.point_begin + k]);
        ag.push_back(gpu_eval.potential()[nd.point_begin + k]);
      }
    }
    const auto exact = core::direct_reference(ctx.comm, kernel, owned);
    cpu_err = rel_l2_error(ac, exact);
    gpu_err = rel_l2_error(ag, exact);
  });
  return {cpu_err, gpu_err};
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "gpu_precision");
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 4000));

  print_header("GPU precision", "double (CPU) vs single (GPU) accuracy floor");
  Table table({"surface n", "CPU (double) rel err", "GPU (float) rel err"});
  for (int sn : {4, 6, 8}) {
    const auto [c, g] = errors_for(sn, n);
    table.add_row({std::to_string(sn), sci(c), sci(g)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Expected shape: the double path keeps improving with n while the\n"
      "float path stalls — and at n = 8 it DEGRADES, because the\n"
      "equivalent-density solve grows more ill-conditioned with the\n"
      "surface order and amplifies the single-precision noise in the\n"
      "device-computed check potentials. This is why the paper flags\n"
      "single precision as a limitation and runs its GPU experiments at\n"
      "moderate accuracy.\n");
  return 0;
}
