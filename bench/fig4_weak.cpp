/// \file fig4_weak.cpp
/// \brief Reproduces paper Figure 4: MPI weak scaling on Kraken.
///
/// Paper setup: fixed points per process (25K uniform / 100K
/// nonuniform), p = 16..64K, Stokes kernel. Two headline claims: (1)
/// unlike the SC'03 implementation, tree construction is only a small
/// fraction of the total (about 10% of evaluation at 64K cores, per
/// §I); (2) total time grows mildly (~1.5x over a 4096x rank range) due
/// to the sqrt(p) communication term and load imbalance.

#include <cstdio>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

namespace {

void run_series(octree::Distribution dist, const char* label,
                std::uint64_t per_rank, int pmax, int q) {
  std::printf("-- %s distribution, %llu points/rank (Stokes kernel)\n", label,
              static_cast<unsigned long long>(per_rank));
  Table table({"p", "N total", "tree", "let+balance", "setup", "eval avg",
               "eval max", "tree/eval", "growth"});
  double t1 = -1.0;
  for (int p = 1; p <= pmax; p *= 2) {
    ExperimentConfig cfg;
    cfg.p = p;
    cfg.dist = dist;
    cfg.n_points = per_rank * p;
    cfg.opts.surface_n = 4;
    cfg.opts.max_points_per_leaf = q;
    if (p == 1) cfg.opts.load_balance = false;
    Experiment exp = run_fmm(cfg, "stokes");

    const Summary eval = exp.time_summary("eval.");
    const Summary tree = exp.time_summary("setup.tree");
    const Summary setup = exp.time_summary("setup.");
    const double let_bal = exp.time_summary("setup.let").avg +
                           exp.time_summary("setup.balance").avg;
    if (t1 < 0) t1 = eval.max;
    table.add_row({std::to_string(p), with_commas(cfg.n_points),
                   sci(tree.avg), sci(let_bal), sci(setup.avg),
                   sci(eval.avg), sci(eval.max),
                   fixed(100.0 * tree.avg / std::max(eval.avg, 1e-12), 1) + "%",
                   fixed(eval.max / t1, 2) + "x"});
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "fig4_weak");
  const int pmax = static_cast<int>(cli.get_int("pmax", 16));
  const auto uni = static_cast<std::uint64_t>(cli.get_int("uniform-per-rank", 1500));
  const auto non =
      static_cast<std::uint64_t>(cli.get_int("nonuniform-per-rank", 1500));

  print_header("Figure 4", "MPI weak scaling (fixed N/p, growing p)");
  run_series(octree::Distribution::kUniform, "uniform", uni, pmax, 60);
  run_series(octree::Distribution::kEllipsoid, "nonuniform", non, pmax, 40);
  std::printf(
      "Paper reference: tree construction stays a small fraction of the\n"
      "evaluation (vs 15x slower in the SC'03 code), and total time grows\n"
      "~1.5x across the full weak-scaling range.\n");
  return 0;
}
