/// \file fig3_strong.cpp
/// \brief Reproduces paper Figure 3: MPI strong scaling on Kraken.
///
/// Paper setup: fixed problem size (200M uniform / 100M nonuniform
/// points, Stokes kernel), p = 512..8K processes; reported as per-phase
/// average bars plus a max-across-ranks dot; observed efficiency
/// 80-90%. Here the same experiment runs at simulator scale (defaults:
/// 16K uniform / 8K nonuniform points, p = 1..16) with per-rank time =
/// measured thread-CPU work + alpha-beta modeled communication.

#include <cstdio>
#include <algorithm>
#include <vector>
#include <string>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

namespace {

void run_series(octree::Distribution dist, const char* label,
                std::uint64_t n, int pmax, int q) {
  std::printf("-- %s distribution, N = %llu (Stokes kernel, %d pts/leaf)\n",
              label, static_cast<unsigned long long>(n), q);
  Table table({"p", "setup", "eval.up", "eval.comm", "U-list", "V-list",
               "W+X", "down", "eval avg", "eval max", "efficiency",
               "eval avg (bar; x = max)"});

  double t1 = -1.0;
  std::vector<std::vector<std::string>> rows;
  std::vector<double> avgs, maxs;
  for (int p = 1; p <= pmax; p *= 2) {
    ExperimentConfig cfg;
    cfg.p = p;
    cfg.dist = dist;
    cfg.n_points = n;
    cfg.opts.surface_n = 4;
    cfg.opts.max_points_per_leaf = q;
    if (p == 1) cfg.opts.load_balance = false;
    Experiment exp = run_fmm(cfg, "stokes");

    const Summary eval = exp.time_summary("eval.");
    const Summary setup = exp.time_summary("setup.");
    auto up = exp.time_summary("eval.s2u").avg + exp.time_summary("eval.u2u").avg;
    auto wx = exp.time_summary("eval.wli").avg + exp.time_summary("eval.xli").avg;
    auto down = exp.time_summary("eval.down").avg + exp.time_summary("eval.d2t").avg;
    if (t1 < 0) t1 = eval.max;
    const double eff = t1 / (eval.max * p);

    rows.push_back({std::to_string(p), sci(setup.avg), sci(up),
                    sci(exp.time_summary("eval.comm").avg),
                    sci(exp.time_summary("eval.uli").avg),
                    sci(exp.time_summary("eval.vli").avg), sci(wx), sci(down),
                    sci(eval.avg), sci(eval.max),
                    fixed(100.0 * eff, 1) + "%"});
    avgs.push_back(eval.avg);
    maxs.push_back(eval.max);
  }
  // Bars in the paper's style: average as the bar, max as the dot.
  const double vmax = *std::max_element(maxs.begin(), maxs.end());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::string b = bar(avgs[i], vmax);
    const int dot = std::min<int>(int(maxs[i] / vmax * 24 + 0.5), 23);
    b[dot] = 'x';
    rows[i].push_back(b);
    table.add_row(rows[i]);
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "fig3_strong");
  const int pmax = static_cast<int>(cli.get_int("pmax", 16));
  const auto n_uniform =
      static_cast<std::uint64_t>(cli.get_int("n-uniform", 16000));
  const auto n_nonuniform =
      static_cast<std::uint64_t>(cli.get_int("n-nonuniform", 8000));

  print_header("Figure 3", "MPI strong scaling (fixed N, growing p)");
  run_series(octree::Distribution::kUniform, "uniform", n_uniform, pmax, 60);
  run_series(octree::Distribution::kEllipsoid, "nonuniform", n_nonuniform,
             pmax, 40);
  std::printf(
      "Paper reference: 80-90%% parallel efficiency over a 16x rank "
      "range,\nwith good load balance (max close to avg).\n");
  return 0;
}
