/// \file ablation_treebuild.cpp
/// \brief Ablation C: distributed LET construction vs the SC'03
/// replicated-global-tree approach.
///
/// The paper's previous implementation kept "a lightweight copy of the
/// entire global tree on each process", which "became problematic above
/// 2048 MPI-processes" (§III-A). This bench builds both on the same
/// point sets and reports per-rank tree memory (node counts) and
/// construction cost as p grows: the replicated tree's per-rank size is
/// the global tree, the LET's stays near the local share plus a
/// surface term.

#include <cstdio>
#include <set>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "ablation_treebuild");
  const int pmax = static_cast<int>(cli.get_int("pmax", 32));
  const auto per_rank = static_cast<std::uint64_t>(cli.get_int("per-rank", 800));

  print_header("Ablation C",
               "tree setup: distributed LET vs replicated global tree");
  Table table({"p", "global octants", "LET octants/rank (max)",
               "replicated octants/rank", "LET fraction", "repl. bytes/rank"});

  for (int p = 2; p <= pmax; p *= 2) {
    struct Out {
      std::uint64_t let_nodes = 0;
      std::uint64_t repl_nodes = 0;
      std::uint64_t global_leaves = 0;
    };
    std::vector<Out> outs(p);

    comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
      octree::BuildParams bp;
      bp.max_points_per_leaf = 30;
      auto pts = octree::generate_points(octree::Distribution::kEllipsoid,
                                         per_rank * p, ctx.rank(), p, 1, 7);
      auto tree = octree::build_distributed_tree(ctx.comm, std::move(pts), bp);

      // New scheme: local essential tree.
      octree::Let let = octree::build_let(ctx.comm, tree);

      // Old scheme: every rank gathers every leaf and materializes the
      // full tree (leaves + all ancestors).
      auto all_leaves = ctx.comm.allgatherv_concat(
          std::span<const morton::Key>(tree.leaves));
      std::set<morton::Key> full(all_leaves.begin(), all_leaves.end());
      for (const morton::Key& l : all_leaves)
        for (const morton::Key& a : morton::ancestors(l)) full.insert(a);

      outs[ctx.rank()] = {let.nodes.size(), full.size(), all_leaves.size()};
    });

    std::uint64_t let_max = 0, repl = outs[0].repl_nodes;
    for (const Out& o : outs) let_max = std::max(let_max, o.let_nodes);
    table.add_row(
        {std::to_string(p), with_commas(outs[0].global_leaves),
         with_commas(let_max), with_commas(repl),
         fixed(100.0 * double(let_max) / double(repl), 1) + "%",
         with_commas(repl * sizeof(octree::LetNode))});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Expected shape: replicated per-rank octant count equals the global\n"
      "tree and grows linearly in p under weak scaling, while the LET\n"
      "per-rank count stays near the local share — the reason the SC'03\n"
      "approach died beyond ~2-3K processes.\n");
  return 0;
}
