/// \file timestep.cpp
/// \brief Amortized setup cost under time-stepping — the incremental
/// repair path (ROADMAP item 3) against the full-rebuild baseline.
///
/// A core::TimeStepper advects a churn-controlled fraction of the
/// points through a swirl velocity field each step and calls
/// ParallelFmm::update_points. With --incremental (default) the tree
/// and LET are repaired in place, so per-step setup cost tracks the
/// churn; the baseline (FmmOptions::incremental_setup = off) re-runs
/// the whole setup pipeline every step. Both paths produce bitwise
/// identical potentials (tests/test_incremental.cpp), so the CPU-
/// seconds-per-step ratio printed here is pure setup amortization.
///
/// CI runs this under the distinct bench key "timestep" with
/// --history-out, so tools/pkifmm_trend gates the amortized
/// cost-per-step trajectory separately from the evaluation benches.
///
/// `--health --eval=1` additionally runs the numerical-health layer
/// (DESIGN.md §5g) every evaluation: the TimeStepper then diffs the
/// sampled accuracy step-over-step and raises health.drift.* warnings
/// when the error grows past FmmOptions::health_drift_ratio times the
/// early-step baseline.

#include <cstdio>
#include <sstream>

#include "common.hpp"
#include "core/timestep.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

namespace {

std::vector<double> parse_churns(const std::string& s) {
  std::vector<double> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stod(tok));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "timestep");
  const int p = static_cast<int>(cli.get_int("p", 4));
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 20000));
  const int steps = static_cast<int>(cli.get_int("steps", 4));
  const bool do_eval = cli.get_bool("eval", false);
  const auto dist =
      octree::distribution_from_name(cli.get("dist", "ellipsoid"));
  const auto churns = parse_churns(cli.get("churn", "0.001,0.01,0.1,0.5"));

  print_header("Time-stepping setup amortization",
               "incremental tree/LET repair vs full rebuild per step");

  const core::Tables& base = tables_for("laplace", core::FmmOptions{});
  core::FmmOptions opts = base.options();
  opts.max_points_per_leaf = static_cast<int>(cli.get_int("q", 60));
  apply_flow_flags(opts);

  // The swirl: rotation about the vertical axis through the cube
  // center plus a z-dependent drift, so points cross leaf boundaries
  // at every depth.
  const core::VelocityFn swirl = [](std::uint64_t, const std::array<double, 3>& x,
                                    double) {
    return std::array<double, 3>{-(x[1] - 0.5), x[0] - 0.5,
                                 0.3 * (x[0] - 0.5)};
  };

  Table table({"churn", "mode", "setup0 cpu (s)", "step setup cpu (s)",
               "moved/step", "speedup"});
  bool ok_3x = true;
  for (const double churn : churns) {
    double per_step[2] = {0.0, 0.0};  // [0]=full, [1]=incremental
    for (const int incremental : {0, 1}) {
      core::FmmOptions o = opts;
      o.incremental_setup = incremental != 0;
      const core::Tables tables = base.with_options(o);

      std::vector<double> setup_cpu(p, 0.0);
      std::vector<double> steps_cpu(p, 0.0);  // all update_points calls
      std::vector<std::size_t> moved(p, 0);
      const auto reports = comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
        auto pts = octree::generate_points(dist, n, ctx.rank(), p, 1, 77);
        core::ParallelFmm fmm(ctx, tables);
        {
          const double t0 = thread_cpu_seconds();
          fmm.setup(std::move(pts));
          setup_cpu[ctx.rank()] = thread_cpu_seconds() - t0;
        }
        core::TimeStepOptions ts_opts;
        ts_opts.dt = 0.02;
        ts_opts.move_fraction = churn;
        core::TimeStepper ts(fmm, swirl, ts_opts);
        for (int s = 0; s < steps; ++s) {
          const double t0 = thread_cpu_seconds();
          moved[ctx.rank()] += ts.step();
          steps_cpu[ctx.rank()] += thread_cpu_seconds() - t0;
          if (do_eval) (void)fmm.evaluate();
        }
      });

      ExperimentConfig cfg;
      cfg.p = p;
      cfg.dist = dist;
      cfg.n_points = n;
      cfg.seed = 77;
      cfg.opts = o;
      record_run("fmm", cfg, "laplace", reports, comm::CostModel{});

      const Summary s0 = Summary::of(setup_cpu);
      const Summary ss = Summary::of(steps_cpu);
      std::uint64_t moved_total = 0;
      for (const std::size_t m : moved) moved_total += m;
      per_step[incremental] = ss.max / steps;
      table.add_row({fixed(100.0 * churn, 1) + "%",
                     incremental ? "incremental" : "full rebuild",
                     sci(s0.max), sci(per_step[incremental]),
                     std::to_string(moved_total / steps),
                     incremental ? fixed(per_step[0] / per_step[1], 1) + "x"
                                 : "1.0x"});
    }
    if (churn <= 0.01 && per_step[1] > 0.0 &&
        per_step[0] / per_step[1] < 3.0)
      ok_3x = false;
  }

  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Per-step setup cost: the incremental path repairs only dirty\n"
      "leaves and their LET neighborhoods, the baseline re-runs the\n"
      "full sample-sort + tree + LET pipeline. Both produce bitwise\n"
      "identical potentials.\n");
  std::printf("amortization at <=1%% churn: %s (target >= 3x)\n",
              ok_3x ? "ok" : "BELOW TARGET");
  return 0;
}
