/// \file fig5_flops_variance.cpp
/// \brief Reproduces paper Figure 5: variance of flops across processes.
///
/// Paper setup: 64K-core run, per-process total flops plotted for the
/// uniform and the nonuniform distribution — the nonuniform case shows
/// far larger spread (note the different y-scales in the paper's
/// figure). Here: p = 16 simulated ranks, work-weighted partitioning
/// on, per-rank science flops from the analytic counters.

#include <algorithm>
#include <cstdio>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

namespace {

Summary run_series(octree::Distribution dist, const char* label, int p,
                   std::uint64_t per_rank) {
  ExperimentConfig cfg;
  cfg.p = p;
  cfg.dist = dist;
  cfg.n_points = per_rank * p;
  cfg.opts.surface_n = 4;
  cfg.opts.max_points_per_leaf = 40;
  Experiment exp = run_fmm(cfg, "stokes");

  std::printf("-- %s: per-rank evaluation flops\n", label);
  const auto flops = exp.phase_flops("eval.");
  const auto cpu = exp.phase_cpu("eval.");
  // hw.eval.cycles is recorded only when perf counters are live on the
  // rank's thread (all-zero under the getrusage fallback).
  const auto cycles = exp.obs_counter("hw.eval.cycles");
  const bool have_cycles =
      std::any_of(cycles.begin(), cycles.end(), [](double c) { return c > 0; });
  const double vmax = *std::max_element(flops.begin(), flops.end());
  std::vector<double> gfs(p, 0.0);
  for (int r = 0; r < p; ++r) {
    gfs[r] = cpu[r] > 0 ? flops[r] / cpu[r] / 1e9 : 0.0;
    std::string hw;
    if (have_cycles && cycles[r] > 0)
      hw = "  " + fixed(flops[r] / cycles[r], 2) + " F/cyc";
    std::printf("  rank %2d : %s  %s GF/s%s  %s\n", r, sci(flops[r]).c_str(),
                fixed(gfs[r], 2).c_str(), hw.c_str(),
                bar(flops[r], vmax, 32).c_str());
  }
  const Summary s = Summary::of(flops);
  const Summary sg = Summary::of(gfs);
  std::printf("  max %s  avg %s  stddev %s  imbalance %.2f\n",
              sci(s.max).c_str(), sci(s.avg).c_str(), sci(s.stddev).c_str(),
              s.imbalance());
  std::printf(
      "  achieved GFLOP/s (flops / measured eval CPU-s): max %.2f  avg %.2f%s\n\n",
      sg.max, sg.avg,
      have_cycles ? "" : "  [no perf counters: F/cyc unavailable]");
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "fig5_flops_variance");
  const int p = static_cast<int>(cli.get_int("p", 16));
  const auto per_rank = static_cast<std::uint64_t>(cli.get_int("per-rank", 1500));

  print_header("Figure 5", "per-process flop variance, uniform vs nonuniform");
  const Summary uni =
      run_series(octree::Distribution::kUniform, "uniform", p, per_rank);
  const Summary non =
      run_series(octree::Distribution::kEllipsoid, "nonuniform", p, per_rank);

  std::printf(
      "Paper reference: the nonuniform distribution shows much larger\n"
      "flop variability than the uniform one (different y-scales in the\n"
      "paper's plots). Measured stddev/avg: uniform %.3f, nonuniform %.3f\n",
      uni.stddev / uni.avg, non.stddev / non.avg);
  return 0;
}
