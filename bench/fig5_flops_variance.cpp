/// \file fig5_flops_variance.cpp
/// \brief Reproduces paper Figure 5: variance of flops across processes.
///
/// Paper setup: 64K-core run, per-process total flops plotted for the
/// uniform and the nonuniform distribution — the nonuniform case shows
/// far larger spread (note the different y-scales in the paper's
/// figure). Here: p = 16 simulated ranks, work-weighted partitioning
/// on, per-rank science flops from the analytic counters.

#include <algorithm>
#include <cstdio>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

namespace {

Summary run_series(octree::Distribution dist, const char* label, int p,
                   std::uint64_t per_rank) {
  ExperimentConfig cfg;
  cfg.p = p;
  cfg.dist = dist;
  cfg.n_points = per_rank * p;
  cfg.opts.surface_n = 4;
  cfg.opts.max_points_per_leaf = 40;
  Experiment exp = run_fmm(cfg, "stokes");

  std::printf("-- %s: per-rank evaluation flops\n", label);
  const auto flops = exp.phase_flops("eval.");
  const double vmax = *std::max_element(flops.begin(), flops.end());
  for (int r = 0; r < p; ++r)
    std::printf("  rank %2d : %s  %s\n", r, sci(flops[r]).c_str(),
                bar(flops[r], vmax, 32).c_str());
  const Summary s = Summary::of(flops);
  std::printf("  max %s  avg %s  stddev %s  imbalance %.2f\n\n",
              sci(s.max).c_str(), sci(s.avg).c_str(), sci(s.stddev).c_str(),
              s.imbalance());
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "fig5_flops_variance");
  const int p = static_cast<int>(cli.get_int("p", 16));
  const auto per_rank = static_cast<std::uint64_t>(cli.get_int("per-rank", 1500));

  print_header("Figure 5", "per-process flop variance, uniform vs nonuniform");
  const Summary uni =
      run_series(octree::Distribution::kUniform, "uniform", p, per_rank);
  const Summary non =
      run_series(octree::Distribution::kEllipsoid, "nonuniform", p, per_rank);

  std::printf(
      "Paper reference: the nonuniform distribution shows much larger\n"
      "flop variability than the uniform one (different y-scales in the\n"
      "paper's plots). Measured stddev/avg: uniform %.3f, nonuniform %.3f\n",
      uni.stddev / uni.avg, non.stddev / non.avg);
  return 0;
}
