/// \file table3_gpu_q.cpp
/// \brief Reproduces paper Table III: single-GPU points-per-box sweep.
///
/// Paper setup: 1M uniform points, Laplace kernel, one GPU, q in
/// {30, 244, 1953}. Reported seconds: Total evaluation / Upward Pass /
/// U list / V list / Downward Pass. The point: small q makes the
/// V-list (bandwidth-bound on the GPU) dominate, huge q makes the
/// U-list (direct sums) dominate, and the optimum sits in between —
/// "this resembles the tuning phase and can be part of an autotuning
/// algorithm". Here the same sweep at simulator scale (default 20K
/// points), with device times from the streaming cost model and host
/// times at the paper's 500 MFlop/s core rate.

#include <cstdio>

#include "common.hpp"

using namespace pkifmm;
using namespace pkifmm::bench;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  metrics_init(cli, "table3_gpu_q");
  // The paper's q values are exactly 1M/8^5, 1M/8^4, 1M/8^3 — each q
  // puts the uniform tree one level shallower. We scale N to 15360 and
  // keep the same level semantics: q = N/8^3, N/8^2, N/8^1.
  const auto n = static_cast<std::uint64_t>(cli.get_int("n", 15360));

  print_header("Table III",
               "single GPU, effect of points-per-box q (uniform, Laplace)");
  std::printf("N = %llu; q chosen per tree level like the paper's "
              "{30, 244, 1953} at N = 1M\n\n",
              static_cast<unsigned long long>(n));

  // 1.4x above each level's mean occupancy so Poisson fluctuation does
  // not push boxes over the threshold (giving clean one-level trees,
  // like the paper's 1M-point sweep).
  const int qs[] = {static_cast<int>(n * 14 / (512 * 10)),
                    static_cast<int>(n * 14 / (64 * 10)),
                    static_cast<int>(n * 14 / (8 * 10))};
  Table table({"q", std::to_string(qs[0]), std::to_string(qs[1]),
               std::to_string(qs[2])});
  std::vector<std::array<double, 3>> rows(7);  // + host, transfers

  for (int qi = 0; qi < 3; ++qi) {
    ExperimentConfig cfg;
    cfg.p = 1;
    cfg.dist = octree::Distribution::kUniform;
    cfg.n_points = n;
    cfg.opts.surface_n = 4;
    cfg.opts.max_points_per_leaf = qs[qi];
    cfg.opts.load_balance = false;
    GpuRun run = run_gpu_fmm(cfg);

    const comm::CostModel model = run.model;
    auto host_flops = [&](const char* phase) {
      double f = 0.0;
      for (const auto& [name, v] : run.reports[0].flop_phases)
        if (name.rfind(phase, 0) == 0) f += static_cast<double>(v);
      return model.compute_time(static_cast<std::uint64_t>(f));
    };
    const double up = run.device_times("s2u")[0] + host_flops("eval.s2u.host") +
                      host_flops("eval.u2u");
    const double ul = run.device_times("uli")[0];
    const double vl = run.device_times("vli")[0] + host_flops("eval.vli.host");
    const double down = run.device_times("d2t")[0] + host_flops("eval.down");
    const double total = run.eval_times()[0];
    rows[0][qi] = total;
    rows[1][qi] = up;
    rows[2][qi] = ul;
    rows[3][qi] = vl;
    rows[4][qi] = down;
    rows[5][qi] = run.host_times()[0];
    rows[6][qi] = run.dev_transfer_seconds[0];
  }

  const char* names[] = {"Total evaluation", "Upward Pass", "U list", "V list",
                         "Downward Pass",    "(host phases)", "(transfers)"};
  for (int r = 0; r < 7; ++r)
    table.add_row({names[r], fixed(rows[r][0], 3), fixed(rows[r][1], 3),
                   fixed(rows[r][2], 3)});
  std::printf("%s\n", table.str().c_str());

  std::printf(
      "Paper reference (1M points): total 5.13 / 1.17 / 2.15 s for q =\n"
      "30 / 244 / 1953 — V list dominates at small q (3.76 s), U list at\n"
      "large q (1.9 s), interior optimum at q = 244.\n");
  const bool interior_opt =
      rows[0][1] < rows[0][0] && rows[0][1] < rows[0][2];
  std::printf("Measured shape: V dominates at q=30: %s; U dominates at "
              "q=1953: %s; interior optimum: %s\n",
              rows[3][0] > rows[2][0] ? "yes" : "NO",
              rows[2][2] > rows[3][2] ? "yes" : "NO",
              interior_opt ? "yes" : "NO");
  return 0;
}
