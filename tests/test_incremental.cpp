/// Property tests for the incremental setup path (ROADMAP item 3, see
/// octree/update.hpp and DESIGN.md "Incremental tree/LET repair").
///
/// The contract is strict: after any sequence of update_points calls,
/// the tree, the LET (nodes, points, splitters, interaction lists,
/// ghost subscriptions) and the evaluated potentials must be BITWISE
/// identical to a from-scratch setup() on the same global point set,
/// and the evaluation must account exactly the same model flops. The
/// sweep pins this across kernels x distributions x churn rates x rank
/// counts; further tests cover the repartition threshold policy, its
/// hysteresis, and the incremental_setup escape hatch.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "core/fmm.hpp"
#include "core/timestep.hpp"
#include "kernels/kernel.hpp"

namespace pkifmm::core {
namespace {

using octree::Distribution;

void put_bits(std::ostringstream& os, morton::Bits b) {
  os << static_cast<std::uint64_t>(b >> 64) << ':'
     << static_cast<std::uint64_t>(b) << ',';
}

/// Bitwise-faithful serialization of everything a Let holds. Two
/// digests compare equal iff the structures are bitwise identical
/// (doubles go through hexfloat).
std::string let_digest(const octree::Let& let) {
  std::ostringstream os;
  os << std::hexfloat;
  for (const octree::LetNode& n : let.nodes) {
    put_bits(os, n.key.bits);
    os << n.key.level << ',' << n.parent << ',' << n.global_leaf << n.owned
       << n.target << ',' << n.point_begin << ',' << n.point_count << ','
       << n.target_count << ';';
  }
  os << '|';
  for (const octree::PointRec& pt : let.points) {
    os << pt.gid << ',' << int(pt.kind) << ',';
    put_bits(os, pt.key_bits);
    for (double v : pt.pos) os << v << ',';
    for (double v : pt.den) os << v << ',';
    os << ';';
  }
  os << '|';
  for (morton::Bits b : let.splitters) put_bits(os, b);
  for (const octree::ListSet* ls : {&let.u, &let.v, &let.w, &let.x}) {
    os << '|';
    for (std::int32_t o : ls->offset) os << o << ',';
    os << '/';
    for (std::int32_t i : ls->items) os << i << ',';
  }
  os << '|';
  for (const auto& [node, rank] : let.ghost_subscriptions)
    os << node << ':' << rank << ',';
  return os.str();
}

struct PtSnap {
  double pos[3];
  double den[octree::kMaxDensityDim];
  std::uint8_t kind;
};

struct StepSnap {
  std::map<std::uint64_t, std::vector<double>> pot;  ///< gid -> tdim values
  std::map<std::uint64_t, PtSnap> points;            ///< global point set
  std::vector<std::string> let_digest;               ///< per rank
};

struct Case {
  const char* kernel;
  Distribution dist;
  double churn;
  int p;
};

FmmOptions small_opts() {
  FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 20;
  return opts;
}

void snapshot_step(const ParallelFmm& fmm, const ParallelFmm::Result& res,
                   int rank, int td, std::mutex& mu, StepSnap& snap) {
  std::lock_guard<std::mutex> lock(mu);
  for (std::size_t i = 0; i < res.gids.size(); ++i)
    snap.pot[res.gids[i]] =
        std::vector<double>(res.potentials.begin() + i * td,
                            res.potentials.begin() + (i + 1) * td);
  for (const octree::LetNode& node : fmm.let().nodes) {
    if (!(node.owned && node.global_leaf)) continue;
    for (const octree::PointRec& pt : fmm.let().points_of(node)) {
      PtSnap ps;
      std::memcpy(ps.pos, pt.pos, sizeof ps.pos);
      std::memcpy(ps.den, pt.den, sizeof ps.den);
      ps.kind = pt.kind;
      snap.points[pt.gid] = ps;
    }
  }
  snap.let_digest[rank] = let_digest(fmm.let());
}

/// The driver both runs share: a swirl with a vertical shear so moved
/// points cross octant boundaries at several depths.
VelocityFn swirl() {
  return [](std::uint64_t, const std::array<double, 3>& x, double) {
    return std::array<double, 3>{-(x[1] - 0.5), x[0] - 0.5,
                                 0.4 * (x[0] - 0.5)};
  };
}

constexpr int kSteps = 3;

/// Incremental run: one ParallelFmm, kSteps update_points steps, a
/// snapshot (potentials + global points + LET digests) after setup and
/// after every step. Also returns the per-rank eval.* flop totals.
std::vector<StepSnap> run_incremental(
    const kernels::Kernel& kernel, const Case& c, const FmmOptions& opts,
    std::vector<std::map<std::string, std::uint64_t>>* eval_flops,
    std::vector<std::vector<ParallelFmm::UpdateStats>>* stats_out = nullptr) {
  const Tables tables(kernel, opts);
  std::vector<StepSnap> snaps(kSteps + 1);
  for (StepSnap& s : snaps) s.let_digest.resize(c.p);
  if (stats_out) stats_out->assign(c.p, {});
  std::mutex mu;
  auto reports = comm::Runtime::run(c.p, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(c.dist, 800, ctx.rank(), c.p,
                                       tables.sdim(), 91);
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    TimeStepOptions to;
    to.dt = 0.04;
    to.move_fraction = c.churn;
    TimeStepper ts(fmm, swirl(), to);
    for (int s = 0; s <= kSteps; ++s) {
      if (s > 0) {
        ts.step();
        if (stats_out) {
          std::lock_guard<std::mutex> lock(mu);
          (*stats_out)[ctx.rank()].push_back(fmm.last_update_stats());
        }
      }
      const auto res = fmm.evaluate();
      snapshot_step(fmm, res, ctx.rank(), tables.tdim(), mu, snaps[s]);
    }
  });
  if (eval_flops) {
    eval_flops->assign(c.p, {});
    for (int r = 0; r < c.p; ++r)
      for (const auto& [phase, flops] : reports[r].flop_phases)
        if (phase.rfind("eval.", 0) == 0) (*eval_flops)[r][phase] = flops;
  }
  return snaps;
}

/// From-scratch reference for one step: a fresh ParallelFmm setup on
/// the snapshotted global point set (sliced across ranks in gid order —
/// the build sample-sorts, so the feed partition is irrelevant).
StepSnap run_from_scratch(
    const kernels::Kernel& kernel, const Case& c, const FmmOptions& opts,
    const std::map<std::uint64_t, PtSnap>& points,
    std::vector<std::map<std::string, std::uint64_t>>* eval_flops) {
  const Tables tables(kernel, opts);
  std::vector<octree::PointRec> all;
  all.reserve(points.size());
  for (const auto& [gid, ps] : points) {
    octree::PointRec pt{};
    std::memcpy(pt.pos, ps.pos, sizeof pt.pos);
    std::memcpy(pt.den, ps.den, sizeof pt.den);
    pt.gid = gid;
    pt.kind = ps.kind;
    all.push_back(pt);
  }
  StepSnap snap;
  snap.let_digest.resize(c.p);
  std::mutex mu;
  auto reports = comm::Runtime::run(c.p, [&](comm::RankCtx& ctx) {
    const std::size_t lo = all.size() * ctx.rank() / c.p;
    const std::size_t hi = all.size() * (ctx.rank() + 1) / c.p;
    std::vector<octree::PointRec> mine(all.begin() + lo, all.begin() + hi);
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(mine));
    const auto res = fmm.evaluate();
    snapshot_step(fmm, res, ctx.rank(), tables.tdim(), mu, snap);
  });
  if (eval_flops) {
    for (int r = 0; r < c.p; ++r)
      for (const auto& [phase, flops] : reports[r].flop_phases)
        if (phase.rfind("eval.", 0) == 0) (*eval_flops)[r][phase] += flops;
  }
  return snap;
}

void expect_bitwise_equal(const StepSnap& a, const StepSnap& b, int step,
                          int p) {
  ASSERT_EQ(a.pot.size(), b.pot.size()) << "step " << step;
  ASSERT_GT(a.pot.size(), 0u);
  for (const auto& [gid, comps] : a.pot) {
    const auto it = b.pot.find(gid);
    ASSERT_NE(it, b.pot.end()) << "step " << step << " gid " << gid;
    ASSERT_EQ(comps.size(), it->second.size());
    for (std::size_t k = 0; k < comps.size(); ++k)
      EXPECT_EQ(comps[k], it->second[k])
          << "step " << step << " gid " << gid << " component " << k;
  }
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(a.let_digest[r], b.let_digest[r])
        << "step " << step << " rank " << r << ": LET diverged";
}

class IncrementalSetupParity : public ::testing::TestWithParam<Case> {};

TEST_P(IncrementalSetupParity, MatchesFromScratchBitwise) {
  const Case c = GetParam();
  auto kernel = kernels::make_kernel(c.kernel);
  const FmmOptions opts = small_opts();

  std::vector<std::map<std::string, std::uint64_t>> incr_flops;
  const auto snaps = run_incremental(*kernel, c, opts, &incr_flops);

  // Each step's global point set must actually differ from the last
  // (otherwise the sweep tests nothing).
  for (int s = 1; s <= kSteps; ++s) {
    bool any_moved = false;
    for (const auto& [gid, ps] : snaps[s].points) {
      const auto it = snaps[s - 1].points.find(gid);
      ASSERT_NE(it, snaps[s - 1].points.end());
      if (std::memcmp(ps.pos, it->second.pos, sizeof ps.pos) != 0)
        any_moved = true;
    }
    EXPECT_TRUE(any_moved) << "step " << s << ": churn selected no points";
  }

  std::vector<std::map<std::string, std::uint64_t>> ref_flops(c.p);
  for (int s = 0; s <= kSteps; ++s) {
    const StepSnap ref =
        run_from_scratch(*kernel, c, opts, snaps[s].points, &ref_flops);
    expect_bitwise_equal(snaps[s], ref, s, c.p);
  }

  // Exact flop equality, phase by phase and rank by rank, summed over
  // the whole trajectory (each step matched bitwise above, so equal
  // totals pin equal per-step accounting).
  for (int r = 0; r < c.p; ++r) {
    ASSERT_EQ(incr_flops[r].size(), ref_flops[r].size()) << "rank " << r;
    for (const auto& [phase, flops] : incr_flops[r])
      EXPECT_EQ(flops, ref_flops[r][phase]) << "rank " << r << " " << phase;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IncrementalSetupParity,
    ::testing::Values(Case{"laplace", Distribution::kUniform, 0.01, 2},
                      Case{"laplace", Distribution::kEllipsoid, 0.05, 4},
                      Case{"laplace", Distribution::kCluster, 0.5, 2},
                      Case{"laplace", Distribution::kEllipsoid, 0.002, 1},
                      Case{"stokes", Distribution::kEllipsoid, 0.01, 2}),
    [](const ::testing::TestParamInfo<Case>& info) {
      const Case& c = info.param;
      std::string d = c.dist == Distribution::kUniform      ? "uniform"
                      : c.dist == Distribution::kEllipsoid ? "ellipsoid"
                                                           : "cluster";
      return std::string(c.kernel) + "_" + d + "_churn" +
             std::to_string(int(c.churn * 1000)) + "_p" +
             std::to_string(c.p);
    });

/// The escape hatch: with incremental_setup off, every update_points
/// runs the full pipeline (full_rebuild reported), and the trajectory
/// matches the incremental run bitwise.
TEST(IncrementalFallback, EscapeHatchMatchesIncrementalBitwise) {
  const Case c{"laplace", Distribution::kEllipsoid, 0.05, 2};
  auto kernel = kernels::make_kernel(c.kernel);

  std::vector<std::vector<ParallelFmm::UpdateStats>> incr_stats, full_stats;
  const auto incr =
      run_incremental(*kernel, c, small_opts(), nullptr, &incr_stats);
  FmmOptions off = small_opts();
  off.incremental_setup = false;
  const auto full = run_incremental(*kernel, c, off, nullptr, &full_stats);

  for (int s = 0; s <= kSteps; ++s)
    expect_bitwise_equal(incr[s], full[s], s, c.p);
  for (int r = 0; r < c.p; ++r) {
    ASSERT_EQ(full_stats[r].size(), std::size_t(kSteps));
    for (const auto& st : full_stats[r]) EXPECT_TRUE(st.full_rebuild);
    for (const auto& st : incr_stats[r]) EXPECT_FALSE(st.full_rebuild);
  }
}

/// 2:1 refinement: repair reproduces the canonical unbalanced leaf
/// set, so with balance_2to1 on every update must fall back to a full
/// rebuild — and still match a from-scratch trajectory bitwise.
TEST(IncrementalFallback, Balance2to1ForcesFullRebuild) {
  const Case c{"laplace", Distribution::kEllipsoid, 0.05, 2};
  auto kernel = kernels::make_kernel(c.kernel);

  FmmOptions b21 = small_opts();
  b21.balance_2to1 = true;
  std::vector<std::vector<ParallelFmm::UpdateStats>> stats;
  const auto incr = run_incremental(*kernel, c, b21, nullptr, &stats);
  FmmOptions off = b21;
  off.incremental_setup = false;
  const auto full = run_incremental(*kernel, c, off, nullptr, nullptr);

  for (int s = 0; s <= kSteps; ++s)
    expect_bitwise_equal(incr[s], full[s], s, c.p);
  for (int r = 0; r < c.p; ++r)
    for (const auto& st : stats[r]) EXPECT_TRUE(st.full_rebuild);
}

/// Threshold mode: a threshold that any real two-rank imbalance
/// exceeds triggers the full rebuild only after repart_hysteresis
/// consecutive over-threshold calls — and never before the first
/// evaluate (no summary, imbalance reads 0).
TEST(IncrementalRepartition, ThresholdTriggersWithHysteresis) {
  const int p = 2;
  FmmOptions opts = small_opts();
  opts.repart_imbalance_threshold = 1.0 + 1e-12;
  opts.repart_hysteresis = 2;
  auto kernel = kernels::make_kernel("laplace");
  const Tables tables(*kernel, opts);

  std::vector<std::vector<bool>> rebuilds(p);
  std::mutex mu;
  comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(Distribution::kCluster, 600,
                                       ctx.rank(), p, tables.sdim(), 17);
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    std::vector<bool> mine;
    fmm.update_points({});  // before any evaluate: imbalance == 0
    mine.push_back(fmm.last_update_stats().full_rebuild);
    (void)fmm.evaluate();
    fmm.update_points({});  // over threshold, 1st consecutive call
    mine.push_back(fmm.last_update_stats().full_rebuild);
    fmm.update_points({});  // 2nd consecutive call -> rebuild
    mine.push_back(fmm.last_update_stats().full_rebuild);
    fmm.update_points({});  // counter reset by the rebuild
    mine.push_back(fmm.last_update_stats().full_rebuild);
    std::lock_guard<std::mutex> lock(mu);
    rebuilds[ctx.rank()] = mine;
  });
  for (int r = 0; r < p; ++r) {
    ASSERT_EQ(rebuilds[r].size(), 4u) << "rank " << r;
    EXPECT_FALSE(rebuilds[r][0]) << "rank " << r;
    EXPECT_FALSE(rebuilds[r][1]) << "rank " << r;
    EXPECT_TRUE(rebuilds[r][2]) << "rank " << r;
    EXPECT_FALSE(rebuilds[r][3]) << "rank " << r;
  }
}

/// An unreachable threshold never triggers; the incremental path runs
/// every step (and coasts without repartitioning — threshold mode
/// leaves ownership alone below the bar).
TEST(IncrementalRepartition, UnreachableThresholdNeverRebuilds) {
  const Case c{"laplace", Distribution::kCluster, 0.2, 2};
  auto kernel = kernels::make_kernel(c.kernel);
  FmmOptions opts = small_opts();
  opts.repart_imbalance_threshold = 1e9;
  opts.repart_hysteresis = 1;

  std::vector<std::vector<ParallelFmm::UpdateStats>> stats;
  (void)run_incremental(*kernel, c, opts, nullptr, &stats);
  for (int r = 0; r < c.p; ++r) {
    ASSERT_EQ(stats[r].size(), std::size_t(kSteps));
    for (const auto& st : stats[r]) {
      EXPECT_FALSE(st.full_rebuild) << "rank " << r;
      EXPECT_FALSE(st.repartitioned) << "rank " << r;
    }
  }
}

/// Track mode (threshold 0, the default) maintains the canonical
/// partition: under heavy churn at p > 1 the destinations eventually
/// shift and leaves migrate without any full rebuild.
TEST(IncrementalRepartition, TrackModeMigratesWithoutRebuild) {
  const Case c{"laplace", Distribution::kCluster, 0.5, 2};
  auto kernel = kernels::make_kernel(c.kernel);

  std::vector<std::vector<ParallelFmm::UpdateStats>> stats;
  (void)run_incremental(*kernel, c, small_opts(), nullptr, &stats);
  bool any_repart = false;
  for (int r = 0; r < c.p; ++r)
    for (const auto& st : stats[r]) {
      EXPECT_FALSE(st.full_rebuild) << "rank " << r;
      any_repart = any_repart || st.repartitioned;
    }
  EXPECT_TRUE(any_repart)
      << "50% churn on a clustered distribution never moved a leaf "
         "between ranks; the track-mode repartition is not engaging";
}

}  // namespace
}  // namespace pkifmm::core
