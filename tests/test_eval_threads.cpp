/// Thread-count determinism sweep (see util/task_pool.hpp): the
/// evaluation pipeline must produce BITWISE-identical potentials and
/// exactly equal per-phase flop counts for any threads_per_rank, in
/// both eval modes, because every parallel chunk writes a pre-assigned
/// disjoint output range in the serial iteration order and the chunk
/// decomposition never depends on the worker count. clamp_threads is
/// off so the sweep exercises real worker threads even on one-core CI.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/fmm.hpp"
#include "kernels/kernel.hpp"
#include "simd/simd.hpp"

namespace pkifmm::core {
namespace {

using octree::Distribution;

struct ThreadRun {
  std::map<std::uint64_t, std::vector<double>> pot;  // gid -> components
  std::vector<std::map<std::string, std::uint64_t>> eval_flops;  // per rank
  std::vector<std::map<std::string, double>> sched;  // sched.* per rank
};

struct Case {
  std::string kernel;
  Distribution dist;
  EvalMode mode;
  bool runtime_pool;  ///< provide the pool via Runtime::run overload
  M2lMode m2l = M2lMode::kFft;
  ExecMode exec = ExecMode::kBulkSync;
};

ThreadRun run_with_threads(const Case& c, int p, int threads) {
  auto kernel = kernels::make_kernel(c.kernel);
  FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 20;
  opts.eval_mode = c.mode;
  opts.m2l = c.m2l;
  opts.exec_mode = c.exec;
  opts.threads_per_rank = threads;
  opts.clamp_threads = false;
  const Tables tables(*kernel, opts);

  ThreadRun out;
  out.eval_flops.resize(p);
  out.sched.resize(p);
  std::mutex mu;
  auto fn = [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(c.dist, 900, ctx.rank(), p,
                                       tables.sdim(), 91);
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    auto res = fmm.evaluate();
    const int td = tables.tdim();
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = 0; i < res.gids.size(); ++i)
      out.pot[res.gids[i]] =
          std::vector<double>(res.potentials.begin() + i * td,
                              res.potentials.begin() + (i + 1) * td);
  };
  auto reports =
      c.runtime_pool
          ? comm::Runtime::run(p, threads, /*clamp=*/false, fn)
          : comm::Runtime::run(p, fn);
  for (int r = 0; r < p; ++r) {
    for (const auto& [phase, flops] : reports[r].flop_phases)
      if (phase.rfind("eval.", 0) == 0) out.eval_flops[r][phase] = flops;
    for (const auto& [name, v] : reports[r].obs.counters)
      if (name.rfind("sched.", 0) == 0) out.sched[r][name] = v;
    for (const auto& [name, v] : reports[r].obs.gauges)
      if (name.rfind("sched.", 0) == 0) out.sched[r][name] = v;
  }
  return out;
}

class EvalThreadDeterminism : public ::testing::TestWithParam<Case> {};

TEST_P(EvalThreadDeterminism, IdenticalAcrossThreadCounts) {
  const Case c = GetParam();
  const int p = 2;

  const ThreadRun base = run_with_threads(c, p, 1);
  ASSERT_GT(base.pot.size(), 0u);
  std::uint64_t base_total = 0;
  for (const auto& m : base.eval_flops)
    for (const auto& [phase, fl] : m) base_total += fl;
  ASSERT_GT(base_total, 0u);

  for (const int threads : {2, 4}) {
    const ThreadRun run = run_with_threads(c, p, threads);

    // Bitwise-identical potentials (not just within tolerance): the
    // parallel chunks reproduce the serial arithmetic exactly.
    ASSERT_EQ(base.pot.size(), run.pot.size()) << threads << " threads";
    for (const auto& [gid, comps] : base.pot) {
      const auto it = run.pot.find(gid);
      ASSERT_NE(it, run.pot.end()) << "gid " << gid;
      ASSERT_EQ(comps.size(), it->second.size());
      for (std::size_t k = 0; k < comps.size(); ++k)
        EXPECT_EQ(comps[k], it->second[k])
            << "gid " << gid << " comp " << k << " @ " << threads
            << " threads";
    }

    // Exactly equal model flops, phase by phase and rank by rank.
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(base.eval_flops[r], run.eval_flops[r])
          << "rank " << r << " @ " << threads << " threads";
    }

    // The scheduler actually ran: worker counts and ULI accounting are
    // published whenever the evaluator drove a pool.
    for (int r = 0; r < p; ++r) {
      const auto& s = run.sched[r];
      ASSERT_TRUE(s.count("sched.workers")) << "rank " << r;
      EXPECT_EQ(s.at("sched.workers"), threads - 1) << "rank " << r;
      ASSERT_TRUE(s.count("sched.tasks")) << "rank " << r;
      EXPECT_GT(s.at("sched.tasks"), 0.0) << "rank " << r;
      ASSERT_TRUE(s.count("sched.uli.busy_seconds")) << "rank " << r;
    }
  }
}

/// Exec-mode parity sweep (DESIGN.md "DAG executor"): the DAG execution
/// of the batched pipeline must reproduce the bulk-synchronous
/// reference BITWISE — identical potentials and exactly equal per-phase
/// flop counts — for any thread count, because DAG edges preserve every
/// accumulation order of the bulk engine and the node decomposition
/// never depends on the worker count. p=4 for FFT cases so the
/// hypercube reduce's incremental ghost releases are exercised on a
/// multi-round exchange; p=2 for the dense-M2L ablation.
class DagExecParity : public ::testing::TestWithParam<Case> {};

TEST_P(DagExecParity, BitwiseMatchesBulkSyncAcrossThreadCounts) {
  Case c = GetParam();
  const int p = c.m2l == M2lMode::kFft ? 4 : 2;

  c.exec = ExecMode::kBulkSync;
  const ThreadRun base = run_with_threads(c, p, 1);
  ASSERT_GT(base.pot.size(), 0u);
  std::uint64_t base_total = 0;
  for (const auto& m : base.eval_flops)
    for (const auto& [phase, fl] : m) base_total += fl;
  ASSERT_GT(base_total, 0u);

  c.exec = ExecMode::kDag;
  for (const int threads : {1, 2, 4}) {
    const ThreadRun run = run_with_threads(c, p, threads);

    ASSERT_EQ(base.pot.size(), run.pot.size()) << threads << " threads";
    for (const auto& [gid, comps] : base.pot) {
      const auto it = run.pot.find(gid);
      ASSERT_NE(it, run.pot.end()) << "gid " << gid;
      ASSERT_EQ(comps.size(), it->second.size());
      for (std::size_t k = 0; k < comps.size(); ++k)
        EXPECT_EQ(comps[k], it->second[k])
            << "gid " << gid << " comp " << k << " @ " << threads
            << " threads";
    }

    // Exact flop equality: the DAG runs the same model arithmetic,
    // phase by phase and rank by rank.
    for (int r = 0; r < p; ++r) {
      EXPECT_EQ(base.eval_flops[r], run.eval_flops[r])
          << "rank " << r << " @ " << threads << " threads";
    }

    // The DAG scheduler published its counters on every rank.
    for (int r = 0; r < p; ++r) {
      const auto& s = run.sched[r];
      ASSERT_TRUE(s.count("sched.dag.graphs")) << "rank " << r;
      EXPECT_GE(s.at("sched.dag.graphs"), 1.0) << "rank " << r;
      ASSERT_TRUE(s.count("sched.dag.nodes")) << "rank " << r;
      EXPECT_GT(s.at("sched.dag.nodes"), 0.0) << "rank " << r;
      ASSERT_TRUE(s.count("sched.dag.tasks")) << "rank " << r;
      EXPECT_GT(s.at("sched.dag.tasks"), 0.0) << "rank " << r;
      ASSERT_TRUE(s.count("sched.dag.edges")) << "rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndM2lModes, DagExecParity,
    ::testing::Values(
        Case{"laplace", Distribution::kUniform, EvalMode::kBatched, false},
        Case{"stokes", Distribution::kEllipsoid, EvalMode::kBatched, false},
        Case{"laplace", Distribution::kEllipsoid, EvalMode::kBatched, false,
             M2lMode::kDense},
        Case{"yukawa", Distribution::kUniform, EvalMode::kBatched, true}),
    [](const ::testing::TestParamInfo<Case>& info) {
      const Case& c = info.param;
      std::string name = c.kernel;
      name += c.dist == Distribution::kUniform ? "Uniform" : "Ellipsoid";
      name += c.m2l == M2lMode::kFft ? "Fft" : "Dense";
      if (c.runtime_pool) name += "RuntimePool";
      return name;
    });

/// Per-tier thread-determinism sweep: the bitwise contract must hold
/// WITHIN each SIMD tier separately — tier selection changes the
/// arithmetic (FMA, lane folds), but never makes it depend on the
/// worker count, because every parallel chunk's masked tail performs
/// the same per-element operations as the full-width body.
TEST(EvalSimdTierThreads, BitwiseDeterministicWithinEachTier) {
  struct TierGuard {
    ~TierGuard() { simd::clear_forced_tier(); }
  } guard;

  const Case c{"stokes", Distribution::kEllipsoid, EvalMode::kBatched, false};
  const int p = 2;
  for (const simd::Tier t : simd::available_tiers()) {
    simd::force_tier(t);
    const ThreadRun base = run_with_threads(c, p, 1);
    ASSERT_GT(base.pot.size(), 0u) << simd::tier_name(t);
    for (const int threads : {2, 4}) {
      const ThreadRun run = run_with_threads(c, p, threads);
      ASSERT_EQ(base.pot.size(), run.pot.size())
          << simd::tier_name(t) << " @ " << threads;
      for (const auto& [gid, comps] : base.pot) {
        const auto it = run.pot.find(gid);
        ASSERT_NE(it, run.pot.end()) << "gid " << gid;
        ASSERT_EQ(comps.size(), it->second.size());
        for (std::size_t k = 0; k < comps.size(); ++k)
          EXPECT_EQ(comps[k], it->second[k])
              << simd::tier_name(t) << " gid " << gid << " comp " << k
              << " @ " << threads << " threads";
      }
      for (int r = 0; r < p; ++r)
        EXPECT_EQ(base.eval_flops[r], run.eval_flops[r])
            << simd::tier_name(t) << " rank " << r << " @ " << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndModes, EvalThreadDeterminism,
    ::testing::Values(
        Case{"laplace", Distribution::kUniform, EvalMode::kBatched, false},
        Case{"laplace", Distribution::kEllipsoid, EvalMode::kScalar, false},
        Case{"stokes", Distribution::kEllipsoid, EvalMode::kBatched, false},
        Case{"yukawa", Distribution::kUniform, EvalMode::kBatched, true}),
    [](const ::testing::TestParamInfo<Case>& info) {
      const Case& c = info.param;
      std::string name = c.kernel;
      name += c.dist == Distribution::kUniform ? "Uniform" : "Ellipsoid";
      name += c.mode == EvalMode::kBatched ? "Batched" : "Scalar";
      if (c.runtime_pool) name += "RuntimePool";
      return name;
    });

}  // namespace
}  // namespace pkifmm::core
