/// Resource-observability tests: JSON string-escaping edge cases and
/// the non-finite-number policy, HwCounters perf-denial fallback
/// (injected EACCES/ENOSYS openers), Recorder hw/mem span folding,
/// run.v1 record round-trips, and trend_analyze regression/warning
/// semantics against synthetic bench trajectories.

#include <gtest/gtest.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "obs/aggregate.hpp"
#include "obs/hw.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trend.hpp"
#include "util/check.hpp"

namespace pkifmm::obs {
namespace {

// ---------------------------------------------------------------- JSON

TEST(JsonEscaping, ControlCharactersRoundTrip) {
  std::string raw;
  for (char c = 1; c < 0x20; ++c) raw.push_back(c);  // 0x01 .. 0x1f
  Json obj = Json::object();
  obj.set("ctl", raw);
  const std::string text = obj.dump();
  // Everything below 0x20 must be escaped — either the short forms or
  // \u00xx — so the emitted document contains no raw control bytes.
  for (char c : text) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  EXPECT_NE(text.find("\\u0001"), std::string::npos);
  EXPECT_NE(text.find("\\u001f"), std::string::npos);
  EXPECT_EQ(Json::parse(text).at("ctl").as_string(), raw);
}

TEST(JsonEscaping, ShortEscapesRoundTrip) {
  const std::string raw = "b\b f\f n\n r\r t\t q\" s\\";
  Json obj = Json::object();
  obj.set("esc", raw);
  EXPECT_EQ(Json::parse(obj.dump()).at("esc").as_string(), raw);
  EXPECT_EQ(Json::parse(obj.dump(2)).at("esc").as_string(), raw);
}

TEST(JsonEscaping, NonAsciiUtf8PassesThrough) {
  // Multi-byte UTF-8 (2-, 3- and 4-byte sequences) is not escaped —
  // the bytes travel verbatim and survive a dump/parse round-trip.
  const std::string raw = "caf\xc3\xa9 \xe2\x88\x91 \xf0\x9f\x8c\x8d";
  Json obj = Json::object();
  obj.set("text", raw);
  const std::string text = obj.dump();
  EXPECT_NE(text.find(raw), std::string::npos);
  EXPECT_EQ(Json::parse(text).at("text").as_string(), raw);
}

TEST(JsonEscaping, NonFiniteNumbersAreRejected) {
  // JSON has no NaN/Inf literal; the policy is fail-fast at dump()
  // time rather than emitting an unparseable document.
  Json obj = Json::object();
  obj.set("nan", std::nan(""));
  EXPECT_THROW(obj.dump(), CheckFailure);
  obj = Json::object();
  obj.set("inf", std::numeric_limits<double>::infinity());
  EXPECT_THROW(obj.dump(), CheckFailure);
  EXPECT_THROW(obj.dump(2), CheckFailure);
  // Finite values still dump fine.
  obj = Json::object();
  obj.set("ok", 1.5);
  EXPECT_DOUBLE_EQ(Json::parse(obj.dump()).at("ok").as_double(), 1.5);
}

// ---------------------------------------------------------- HwCounters

int open_eacces(std::uint32_t, std::uint64_t) {
  errno = EACCES;
  return -1;
}

int open_enosys(std::uint32_t, std::uint64_t) {
  errno = ENOSYS;
  return -1;
}

TEST(HwCounters, FallsBackOnEacces) {
  // perf_event_paranoid >= 2 without CAP_PERFMON: every open fails
  // with EACCES. The object must degrade, remember why, and still
  // deliver the rusage fields.
  HwCounters hw(true, &open_eacces);
  EXPECT_EQ(hw.source(), HwCounters::Source::kFallback);
  EXPECT_STREQ(hw.source_name(), "fallback");
  EXPECT_EQ(hw.perf_errno(), EACCES);
  EXPECT_EQ(hw.fields() & kHwCycles, 0u);
  EXPECT_NE(hw.fields() & kHwFaults, 0u);

  const HwSample a = hw.read();
  // Touch fresh pages so the fault totals move between reads.
  std::vector<char> pages(1 << 22);
  for (std::size_t i = 0; i < pages.size(); i += 4096) pages[i] = 1;
  const HwSample b = hw.read();
  EXPECT_GE(b.minor_faults, a.minor_faults);
  EXPECT_EQ(b.cycles, 0u);  // unavailable, not measured-zero
}

TEST(HwCounters, FallsBackOnEnosys) {
  // seccomp sandboxes reject the syscall outright.
  HwCounters hw(true, &open_enosys);
  EXPECT_EQ(hw.source(), HwCounters::Source::kFallback);
  EXPECT_EQ(hw.perf_errno(), ENOSYS);
  const HwSample s = hw.read();
  EXPECT_EQ(s.instructions, 0u);
}

TEST(HwCounters, ForcedFallbackNeverAttemptsPerf) {
  HwCounters hw(false);
  EXPECT_EQ(hw.source(), HwCounters::Source::kFallback);
  EXPECT_EQ(hw.perf_errno(), 0);  // never attempted, so no errno
  EXPECT_NE(hw.fields() & kHwFaults, 0u);
}

TEST(HwCounters, RecorderFoldsFallbackSpans) {
  Recorder rec(0);
  HwCounters hw(true, &open_eacces);
  rec.bind_hw(&hw);
  {
    auto s = rec.span("eval");
    std::vector<char> pages(1 << 21);
    for (std::size_t i = 0; i < pages.size(); i += 4096) pages[i] = 1;
  }
  rec.bind_hw(nullptr);

  const RankMetrics m = rec.snapshot();
  // Source bookkeeping reaches the counters/gauges.
  EXPECT_DOUBLE_EQ(rec.counter("hw.ranks_fallback"), 1.0);
  EXPECT_DOUBLE_EQ(rec.counter("hw.ranks_perf"), 0.0);
  EXPECT_DOUBLE_EQ(m.gauges.at("hw.perf_errno"), EACCES);
  // Fault/RSS counters materialize for the span (possibly zero, but
  // present); perf-only counters must NOT appear under fallback.
  EXPECT_NE(m.counters.find("hw.eval.minor_faults"), m.counters.end());
  EXPECT_NE(m.counters.find("hw.eval.ctx_switches"), m.counters.end());
  EXPECT_NE(m.counters.find("mem.eval.peak_rss_delta_bytes"),
            m.counters.end());
  EXPECT_EQ(m.counters.find("hw.eval.cycles"), m.counters.end());
}

TEST(HwCounters, RssReadsAreSane) {
  const std::uint64_t cur = current_rss_bytes();
  const std::uint64_t peak = peak_rss_bytes();
  ASSERT_GT(peak, 0u);
  if (cur > 0) {
    EXPECT_LE(cur, peak + (64u << 20));  // peak is a HWM
  }
  EXPECT_GE(peak_rss_bytes(), peak);  // monotone
}

// ---------------------------------------------------------- run.v1

/// A minimal-but-valid run record with one "eval" phase.
Json make_record(const std::string& sha, double wall, double faults) {
  Json phase = Json::object();
  phase.set("wall", wall);
  phase.set("cpu", wall * 0.9);
  phase.set("flops", 2e8);
  phase.set("msgs_sent", 128.0);
  phase.set("bytes_sent", 1e6);
  phase.set("minor_faults", faults);
  phase.set("peak_rss_delta_bytes", 3e6);
  Json phases = Json::object();
  phases.set("eval", phase);
  Json mem = Json::object();
  mem.set("peak_rss_bytes", 5e8);
  Json rec = Json::object();
  rec.set("schema", kRunSchema);
  rec.set("bench", "synthetic");
  rec.set("git_sha", sha);
  rec.set("nranks", 4);
  rec.set("nruns", 1);
  rec.set("hw_source", "fallback");
  rec.set("config", Json::object());
  rec.set("phases", phases);
  rec.set("mem", mem);
  return rec;
}

TEST(RunRecord, AppendReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "pkifmm_history.jsonl";
  std::remove(path.c_str());
  append_run_record(path, make_record("aaa", 1.0, 2e6));
  append_run_record(path, make_record("bbb", 1.1, 2e6));
  const std::vector<Json> back = read_run_history(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].at("git_sha").as_string(), "aaa");
  EXPECT_EQ(back[1].at("git_sha").as_string(), "bbb");
  EXPECT_EQ(back[1], make_record("bbb", 1.1, 2e6));
  std::remove(path.c_str());
}

TEST(RunRecord, ValidateRejectsBadDocuments) {
  Json wrong = make_record("aaa", 1.0, 2e6);
  wrong.set("schema", "pkifmm.metrics.v1");
  EXPECT_THROW(validate_run_json(wrong), CheckFailure);
  EXPECT_THROW(validate_run_json(Json::parse("{}")), CheckFailure);
  Json no_phases = make_record("aaa", 1.0, 2e6);
  no_phases.set("phases", Json::array());
  EXPECT_THROW(validate_run_json(no_phases), CheckFailure);
}

TEST(RunRecord, FromRealSummaryUnderFallback) {
  // Drive a Recorder the way comm::Runtime does (hw bound, spans
  // closed), summarize, and condense into a run record.
  Recorder rec(0);
  HwCounters hw(false);
  rec.bind_hw(&hw);
  {
    auto eval = rec.span("eval");
    rec.add_flops(1000000);
    rec.add_sent(10, 4096);
  }
  rec.bind_hw(nullptr);
  const Json summary = summarize_runs("mini", {{rec.snapshot()}});

  Json config = Json::object();
  config.set("p", 1);
  const Json record = run_record_from_summary(summary, "mini", "sha1", config);
  validate_run_json(record);
  EXPECT_EQ(record.at("hw_source").as_string(), "fallback");
  EXPECT_EQ(record.at("config").at("p").as_int(), 1);
  const Json& eval = record.at("phases").at("eval");
  EXPECT_DOUBLE_EQ(eval.at("flops").as_double(), 1000000.0);
  EXPECT_TRUE(eval.contains("minor_faults"));
  EXPECT_TRUE(eval.contains("peak_rss_delta_bytes"));
  EXPECT_FALSE(eval.contains("cycles"));  // fallback: absent, not zero
}

// ------------------------------------------------------------- trend

TEST(Trend, TooShortHistoryIsOk) {
  const Json r = trend_analyze({make_record("a", 1.0, 2e6)});
  EXPECT_TRUE(r.at("ok").as_bool());
  EXPECT_EQ(r.at("checked").as_int(), 0);
  EXPECT_EQ(r.at("window").as_int(), 0);
}

TEST(Trend, EmptyHistoryIsOkWithNoWindow) {
  const Json r = trend_analyze({});
  EXPECT_TRUE(r.at("ok").as_bool());
  EXPECT_EQ(r.at("checked").as_int(), 0);
  EXPECT_EQ(r.at("window").as_int(), 0);
  EXPECT_EQ(r.at("newest_sha").as_string(), "");
  EXPECT_EQ(r.at("regressions").size(), 0u);
}

TEST(Trend, StableTrajectoryPasses) {
  std::vector<Json> hist;
  for (int i = 0; i < 5; ++i)
    hist.push_back(make_record("s" + std::to_string(i), 1.0 + 0.01 * i, 2e6));
  const Json r = trend_analyze(hist);
  EXPECT_TRUE(r.at("ok").as_bool());
  EXPECT_EQ(r.at("regressions").size(), 0u);
  EXPECT_EQ(r.at("newest_sha").as_string(), "s4");
}

TEST(Trend, DetectsInjectedWallRegression) {
  // Four steady records, then the newest at 3x the median wall time —
  // well past the 1.6x gate. This is the synthetic-regression
  // acceptance check for tools/pkifmm_trend.
  std::vector<Json> hist;
  for (int i = 0; i < 4; ++i)
    hist.push_back(make_record("base", 1.0, 2e6));
  hist.push_back(make_record("bad", 3.0, 2e6));
  const Json r = trend_analyze(hist);
  EXPECT_FALSE(r.at("ok").as_bool());
  ASSERT_GE(r.at("regressions").size(), 1u);
  bool found = false;
  for (const Json& f : r.at("regressions").items())
    if (f.at("phase").as_string() == "eval" &&
        f.at("metric").as_string() == "wall") {
      found = true;
      EXPECT_NEAR(f.at("ratio").as_double(), 3.0, 0.2);
      EXPECT_DOUBLE_EQ(f.at("limit").as_double(), 1.6);
    }
  EXPECT_TRUE(found);
}

TEST(Trend, HwDriftOnlyWarns) {
  // Minor-fault counts triple, wall stays flat: machine-dependent hw
  // metrics must never hard-fail the trend gate.
  std::vector<Json> hist;
  for (int i = 0; i < 4; ++i)
    hist.push_back(make_record("base", 1.0, 2e6));
  hist.push_back(make_record("drift", 1.0, 6e6));
  const Json r = trend_analyze(hist);
  EXPECT_TRUE(r.at("ok").as_bool());
  EXPECT_EQ(r.at("regressions").size(), 0u);
  ASSERT_GE(r.at("warnings").size(), 1u);
  EXPECT_EQ(r.at("warnings").items()[0].at("metric").as_string(),
            "minor_faults");
}

TEST(Trend, MissingPhaseIsARegression) {
  std::vector<Json> hist;
  for (int i = 0; i < 3; ++i) hist.push_back(make_record("base", 1.0, 2e6));
  Json gutted = make_record("bad", 1.0, 2e6);
  gutted.set("phases", Json::object());  // "eval" vanished
  hist.push_back(gutted);
  const Json r = trend_analyze(hist);
  EXPECT_FALSE(r.at("ok").as_bool());
  ASSERT_EQ(r.at("regressions").size(), 1u);
  EXPECT_EQ(r.at("regressions").items()[0].at("metric").as_string(),
            "missing");
}

TEST(Trend, FloorsSuppressNoiseOnTinyPhases) {
  // Below min_seconds the wall ratio is ignored, however large.
  std::vector<Json> hist;
  for (int i = 0; i < 3; ++i) hist.push_back(make_record("base", 1e-3, 2e6));
  Json fresh = make_record("fresh", 1e-3, 2e6);
  Json phases = fresh.at("phases");
  Json eval = phases.at("eval");
  eval.set("wall", 4e-2);  // 40x, but still under the 5e-2 s floor
  eval.set("flops", 2e8);
  phases.set("eval", eval);
  fresh.set("phases", phases);
  hist.push_back(fresh);
  const Json r = trend_analyze(hist);
  EXPECT_TRUE(r.at("ok").as_bool());
}

}  // namespace
}  // namespace pkifmm::obs
