/// Observability layer tests: JSON round-trips, recorder/span
/// invariants, exporter schemas, the PhaseTimer single-measurement
/// contract, and a Table II-shaped integration run asserting the nine
/// paper phases show up with real work attributed to them.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "comm/comm.hpp"
#include "core/fmm.hpp"
#include "kernels/kernel.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "octree/points.hpp"
#include "util/check.hpp"
#include "util/flops.hpp"
#include "util/timer.hpp"

namespace pkifmm::obs {
namespace {

// ---------------------------------------------------------------- JSON

TEST(Json, ParseDumpRoundTrip) {
  const std::string text = R"({
  "schema": "pkifmm.metrics.v1",
  "pi": 3.141592653589793,
  "n": -42,
  "big": 9007199254740993,
  "flag": true,
  "none": null,
  "esc": "quote\" slash\\ newline\n tab\t",
  "arr": [1, 2.5, "x", [], {}]
})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.at("schema").as_string(), "pkifmm.metrics.v1");
  EXPECT_DOUBLE_EQ(doc.at("pi").as_double(), 3.141592653589793);
  EXPECT_EQ(doc.at("n").as_int(), -42);
  // Above 2^53: must survive as an integer, not a rounded double.
  EXPECT_EQ(doc.at("big").as_int(), 9007199254740993LL);
  EXPECT_TRUE(doc.at("flag").as_bool());
  EXPECT_TRUE(doc.at("none").is_null());
  EXPECT_EQ(doc.at("esc").as_string(), "quote\" slash\\ newline\n tab\t");
  EXPECT_EQ(doc.at("arr").size(), 5u);

  // dump -> parse -> structurally identical, both compact and pretty.
  EXPECT_EQ(Json::parse(doc.dump()), doc);
  EXPECT_EQ(Json::parse(doc.dump(2)), doc);
}

TEST(Json, ObjectKeyOrderIsPreserved) {
  Json obj = Json::object();
  obj.set("zulu", 1);
  obj.set("alpha", 2);
  obj.set("mike", 3);
  obj.set("zulu", 4);  // overwrite keeps position
  ASSERT_EQ(obj.keys().size(), 3u);
  EXPECT_EQ(obj.keys()[0], "zulu");
  EXPECT_EQ(obj.keys()[1], "alpha");
  EXPECT_EQ(obj.keys()[2], "mike");
  EXPECT_EQ(obj.at("zulu").as_int(), 4);
  const Json reparsed = Json::parse(obj.dump());
  EXPECT_EQ(reparsed.keys(), obj.keys());
}

TEST(Json, DoubleRoundTripIsExact) {
  for (double v : {0.0, -0.0, 1e-300, 6.02214076e23, 0.1, 1.0 / 3.0,
                   123456.789012345678}) {
    Json j(v);
    const Json back = Json::parse(j.dump());
    EXPECT_EQ(back.type(), Json::Type::kDouble) << v;
    EXPECT_EQ(back.as_double(), v);
  }
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW(Json::parse("{"), CheckFailure);
  EXPECT_THROW(Json::parse("[1, 2,]"), CheckFailure);
  EXPECT_THROW(Json::parse("\"unterminated"), CheckFailure);
  EXPECT_THROW(Json::parse("{\"a\": 1} trailing"), CheckFailure);
  EXPECT_THROW(Json::parse("nul"), CheckFailure);
}

// ----------------------------------------------------------- Histogram

TEST(Histogram, BucketsAndRoundTrip) {
  Histogram h;
  h.observe(0.5);  // bucket 0
  h.observe(1.0);  // bucket 0
  h.observe(2.0);  // bucket 1
  h.observe(1000.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1003.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[10], 1u);  // 2^9 < 1000 <= 2^10

  Histogram other;
  other.observe(4096.0);
  h.merge(other);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.buckets()[12], 1u);

  std::uint64_t buckets[Histogram::kBuckets];
  for (int i = 0; i < Histogram::kBuckets; ++i) buckets[i] = h.buckets()[i];
  const Histogram rebuilt =
      Histogram::from_parts(h.count(), h.sum(), h.min(), h.max(), buckets);
  EXPECT_TRUE(rebuilt == h);
}

// ------------------------------------------------------------ Recorder

TEST(Recorder, SpanAttributionIsDeltaBased) {
  Recorder rec(3);
  {
    auto outer = rec.span("outer");
    rec.add_flops(100);
    rec.add_sent(2, 64);
    {
      auto inner = rec.span("inner");
      rec.add_flops(40);
      rec.add_sent(1, 32);
    }
    rec.add_flops(5);
  }
  const RankMetrics m = rec.snapshot();
  ASSERT_EQ(m.spans.size(), 2u);
  // Spans are stored in open order; the inner one closed first but
  // keeps its slot.
  const SpanEvent& outer = m.spans[0];
  const SpanEvent& inner = m.spans[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.parent, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(outer.parent, -1);
  EXPECT_EQ(outer.depth, 0);
  // Parent totals are inclusive of the child's.
  EXPECT_EQ(inner.flops, 40u);
  EXPECT_EQ(outer.flops, 145u);
  EXPECT_EQ(inner.msgs, 1u);
  EXPECT_EQ(outer.msgs, 3u);
  EXPECT_EQ(inner.bytes, 32u);
  EXPECT_EQ(outer.bytes, 96u);
  // Wall-clock nesting: children cannot exceed the parent.
  EXPECT_LE(m.child_wall_sum(0), outer.wall + 1e-9);
  EXPECT_GE(inner.start, outer.start);
}

TEST(Recorder, SpansMustCloseInnermostFirst) {
  Recorder rec;
  auto outer = rec.span("outer");
  auto inner = rec.span("inner");
  EXPECT_THROW(outer.close(), CheckFailure);
  (void)inner.close();
  (void)outer.close();
}

TEST(Registry, PerRankScoping) {
  Registry reg;
  reg.recorder(2).counter_add("x", 5.0);
  reg.recorder(0).counter_add("x", 1.0);
  reg.recorder(2).counter_add("x", 5.0);
  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].rank, 0);
  EXPECT_EQ(snaps[1].rank, 2);
  EXPECT_DOUBLE_EQ(snaps[1].counters.at("x"), 10.0);
}

// ----------------------------------------------------------- Exporters

std::vector<RankMetrics> sample_ranks() {
  std::vector<RankMetrics> out;
  for (int r = 0; r < 2; ++r) {
    Recorder rec(r);
    {
      auto eval = rec.span("eval");
      {
        auto s2u = rec.span("eval.s2u");
        rec.add_flops(1000 + 7 * static_cast<std::uint64_t>(r));
      }
      {
        auto comm = rec.span("eval.comm");
        rec.add_sent(3, 4096);
      }
    }
    rec.counter_add("flops.eval.s2u", 1000.0 + 7 * r);
    rec.gauge_set("tree.leaves", 42.0 + r);
    rec.observe("comm.msg_bytes.eval.comm", 4096.0);
    out.push_back(rec.snapshot());
  }
  return out;
}

TEST(Export, MetricsJsonRoundTrip) {
  const auto ranks = sample_ranks();
  const Json doc = metrics_to_json(ranks);
  validate_metrics_json(doc);
  EXPECT_EQ(doc.at("schema").as_string(), kMetricsSchema);
  EXPECT_EQ(doc.at("nranks").as_int(), 2);
  // totals aggregate across ranks.
  EXPECT_DOUBLE_EQ(
      doc.at("totals").at("counters").at("flops.eval.s2u").as_double(),
      2007.0);

  // Serialize -> parse -> rebuild -> serialize: must be identical.
  const Json reparsed = Json::parse(doc.dump(2));
  EXPECT_EQ(reparsed, doc);
  const std::vector<RankMetrics> back = metrics_from_json(reparsed);
  ASSERT_EQ(back.size(), ranks.size());
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    EXPECT_EQ(back[r].rank, ranks[r].rank);
    EXPECT_EQ(back[r].counters, ranks[r].counters);
    EXPECT_EQ(back[r].gauges, ranks[r].gauges);
    EXPECT_TRUE(back[r].histograms.at("comm.msg_bytes.eval.comm") ==
                ranks[r].histograms.at("comm.msg_bytes.eval.comm"));
    ASSERT_EQ(back[r].spans.size(), ranks[r].spans.size());
    for (std::size_t i = 0; i < ranks[r].spans.size(); ++i) {
      EXPECT_EQ(back[r].spans[i].name, ranks[r].spans[i].name);
      EXPECT_EQ(back[r].spans[i].flops, ranks[r].spans[i].flops);
      EXPECT_EQ(back[r].spans[i].parent, ranks[r].spans[i].parent);
      EXPECT_EQ(back[r].spans[i].wall, ranks[r].spans[i].wall);
    }
  }
  EXPECT_EQ(metrics_to_json(back), doc);
}

TEST(Export, FileRoundTrip) {
  const auto ranks = sample_ranks();
  const std::string path = ::testing::TempDir() + "pkifmm_metrics_test.json";
  write_metrics_json(path, ranks);
  const Json doc = read_json_file(path);
  validate_metrics_json(doc);
  EXPECT_EQ(doc, metrics_to_json(ranks));
  std::remove(path.c_str());
}

TEST(Export, ValidatorRejectsBrokenDocuments) {
  const auto ranks = sample_ranks();
  Json doc = metrics_to_json(ranks);
  doc.set("schema", "not.a.schema");
  EXPECT_THROW(validate_metrics_json(doc), CheckFailure);

  Json doc2 = metrics_to_json(ranks);
  doc2.set("nranks", 99);
  EXPECT_THROW(validate_metrics_json(doc2), CheckFailure);

  EXPECT_THROW(validate_metrics_json(Json::parse("{}")), CheckFailure);
}

TEST(Export, ChromeTraceShape) {
  const auto ranks = sample_ranks();
  const Json doc = chrome_trace_json(ranks);
  const auto& events = doc.at("traceEvents").items();
  // 2 ranks x (1 thread_name metadata + 3 spans).
  ASSERT_EQ(events.size(), 8u);
  std::size_t meta = 0, complete = 0;
  for (const Json& ev : events) {
    const std::string ph = ev.at("ph").as_string();
    if (ph == "M") {
      ++meta;
      EXPECT_EQ(ev.at("name").as_string(), "thread_name");
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    EXPECT_GE(ev.at("dur").as_double(), 0.0);
    EXPECT_GE(ev.at("ts").as_double(), 0.0);
    const std::int64_t tid = ev.at("tid").as_int();
    EXPECT_TRUE(tid == 0 || tid == 1);
    EXPECT_TRUE(ev.at("args").contains("flops"));
  }
  EXPECT_EQ(meta, 2u);
  EXPECT_EQ(complete, 6u);
}

// -------------------------------------- PhaseTimer single measurement

/// With a recorder bound, PhaseTimer::Scope must measure through the
/// span tracer only — the flat table and the trace come from ONE clock
/// read, so they can never disagree (the old double-measurement setup
/// let "Comm" time drift between the two reports).
TEST(PhaseTimer, FlatTableEqualsSpanTotals) {
  Recorder rec;
  PhaseTimer timer;
  timer.bind(&rec);
  for (int rep = 0; rep < 3; ++rep) {
    auto outer = timer.scope("eval.uli");
    double sink = 0.0;
    for (int i = 0; i < 20000; ++i) sink += 1.0 / (1.0 + i);
    ASSERT_GT(sink, 0.0);
    auto inner = timer.scope("eval.uli.inner");
  }
  const RankMetrics m = rec.snapshot();
  ASSERT_EQ(m.spans.size(), 6u);

  double span_wall = 0.0, span_cpu = 0.0;
  for (const SpanEvent& e : m.spans)
    if (e.name == "eval.uli") {
      span_wall += e.wall;
      span_cpu += e.cpu;
    }
  // Exact equality: the flat map is fed from the very same span close.
  EXPECT_DOUBLE_EQ(timer.phases().at("eval.uli"), span_wall);
  EXPECT_DOUBLE_EQ(timer.cpu_phases().at("eval.uli"), span_cpu);

  // Child time is contained in parent time.
  for (std::size_t i = 0; i < m.spans.size(); ++i)
    EXPECT_LE(m.child_wall_sum(i), m.spans[i].wall + 1e-9) << m.spans[i].name;
}

TEST(PhaseTimer, UnboundFallbackStillAccumulates) {
  PhaseTimer timer;
  {
    auto t = timer.scope("phase.a");
    double sink = 0.0;
    for (int i = 0; i < 10000; ++i) sink += 1.0 / (1.0 + i);
    ASSERT_GT(sink, 0.0);
  }
  EXPECT_GT(timer.phases().at("phase.a"), 0.0);
  EXPECT_GE(timer.cpu_phases().at("phase.a"), 0.0);
}

// ------------------------------------------------- Table II int. test

/// Table II-shaped integration check: a small nonuniform run at p=4
/// must produce all nine paper phases (S2U, U2U, comm/reduce, VLI,
/// XLI, D2D/down, WLI, D2T, ULI) with real work attributed — the eight
/// compute phases carry nonzero flops and the communication phase
/// carries nonzero message traffic. This pins the whole reporting
/// chain: FlopCounter/CostTracker -> Recorder -> canonical counters.
TEST(Integration, PaperPhasesAllReport) {
  kernels::LaplaceKernel kernel;
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 20;
  const core::Tables tables(kernel, opts);

  auto reports = comm::Runtime::run(4, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(octree::Distribution::kEllipsoid,
                                       2000, ctx.rank(), ctx.size(), 1, 42);
    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    (void)fmm.evaluate();
  });
  ASSERT_EQ(reports.size(), 4u);

  static const char* kComputePhases[] = {"eval.s2u", "eval.u2u", "eval.vli",
                                         "eval.xli", "eval.down", "eval.wli",
                                         "eval.d2t", "eval.uli"};
  // Cross-rank totals: every compute phase did real flops somewhere,
  // and the reduction phase moved real messages.
  for (const char* phase : kComputePhases) {
    double flops = 0.0, wall = 0.0;
    for (const auto& rep : reports) {
      const auto& c = rep.obs.counters;
      auto fit = c.find(std::string("flops.") + phase);
      if (fit != c.end()) flops += fit->second;
      auto wit = c.find(std::string("time.") + phase + ".wall");
      if (wit != c.end()) wall += wit->second;
    }
    EXPECT_GT(flops, 0.0) << phase;
    EXPECT_GT(wall, 0.0) << phase;
  }
  double comm_msgs = 0.0;
  for (const auto& rep : reports)
    comm_msgs += rep.obs.counters.at("comm.eval.comm.msgs_sent");
  EXPECT_GT(comm_msgs, 0.0);

  for (const auto& rep : reports) {
    const auto& m = rep.obs;
    // The canonical counters mirror the legacy flat maps exactly.
    for (const auto& [name, v] : rep.flop_phases)
      EXPECT_DOUBLE_EQ(m.counters.at("flops." + name),
                       static_cast<double>(v))
          << name;
    for (const auto& [name, v] : rep.time_phases)
      EXPECT_DOUBLE_EQ(m.counters.at("time." + name + ".wall"), v) << name;

    // Span tree: "setup" and "eval" roots exist in the trace but NOT in
    // the flat map (prefix sums over "eval." must not double-count).
    std::set<std::string> span_names;
    for (const SpanEvent& e : m.spans) span_names.insert(e.name);
    EXPECT_TRUE(span_names.count("setup"));
    EXPECT_TRUE(span_names.count("eval"));
    EXPECT_EQ(rep.time_phases.count("eval"), 0u);
    EXPECT_EQ(rep.time_phases.count("setup"), 0u);
    for (const char* phase : kComputePhases)
      EXPECT_TRUE(span_names.count(phase)) << phase;
    EXPECT_TRUE(span_names.count("eval.comm"));

    // Tracer invariant: children are contained in their parents.
    for (std::size_t i = 0; i < m.spans.size(); ++i)
      EXPECT_LE(m.child_wall_sum(i), m.spans[i].wall + 1e-6)
          << m.spans[i].name;

    // Collective accounting reached the tagged counters.
    EXPECT_GT(m.counters.at("coll.reduce_scatter.calls"), 0.0);
    EXPECT_GT(m.counters.at("coll.reduce_scatter.msgs"), 0.0);
    EXPECT_GT(m.counters.at("coll.allgatherv.calls"), 0.0);

    // Message-size histogram saw the reduce-scatter traffic.
    const auto hit = m.histograms.find("comm.msg_bytes.eval.comm");
    ASSERT_NE(hit, m.histograms.end());
    EXPECT_GT(hit->second.count(), 0u);
  }

  // The full snapshot set exports as schema-valid metrics JSON.
  std::vector<RankMetrics> ranks;
  for (const auto& rep : reports) ranks.push_back(rep.obs);
  const Json doc = metrics_to_json(ranks);
  validate_metrics_json(doc);
  EXPECT_EQ(metrics_to_json(metrics_from_json(doc)), doc);
}

}  // namespace
}  // namespace pkifmm::obs
