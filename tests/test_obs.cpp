/// Observability layer tests: JSON round-trips, recorder/span
/// invariants, exporter schemas, the PhaseTimer single-measurement
/// contract, and a Table II-shaped integration run asserting the nine
/// paper phases show up with real work attributed to them.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "comm/comm.hpp"
#include "core/fmm.hpp"
#include "kernels/kernel.hpp"
#include "obs/aggregate.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "octree/points.hpp"
#include "util/check.hpp"
#include "util/flops.hpp"
#include "util/timer.hpp"

namespace pkifmm::obs {
namespace {

// ---------------------------------------------------------------- JSON

TEST(Json, ParseDumpRoundTrip) {
  const std::string text = R"({
  "schema": "pkifmm.metrics.v1",
  "pi": 3.141592653589793,
  "n": -42,
  "big": 9007199254740993,
  "flag": true,
  "none": null,
  "esc": "quote\" slash\\ newline\n tab\t",
  "arr": [1, 2.5, "x", [], {}]
})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.at("schema").as_string(), "pkifmm.metrics.v1");
  EXPECT_DOUBLE_EQ(doc.at("pi").as_double(), 3.141592653589793);
  EXPECT_EQ(doc.at("n").as_int(), -42);
  // Above 2^53: must survive as an integer, not a rounded double.
  EXPECT_EQ(doc.at("big").as_int(), 9007199254740993LL);
  EXPECT_TRUE(doc.at("flag").as_bool());
  EXPECT_TRUE(doc.at("none").is_null());
  EXPECT_EQ(doc.at("esc").as_string(), "quote\" slash\\ newline\n tab\t");
  EXPECT_EQ(doc.at("arr").size(), 5u);

  // dump -> parse -> structurally identical, both compact and pretty.
  EXPECT_EQ(Json::parse(doc.dump()), doc);
  EXPECT_EQ(Json::parse(doc.dump(2)), doc);
}

TEST(Json, ObjectKeyOrderIsPreserved) {
  Json obj = Json::object();
  obj.set("zulu", 1);
  obj.set("alpha", 2);
  obj.set("mike", 3);
  obj.set("zulu", 4);  // overwrite keeps position
  ASSERT_EQ(obj.keys().size(), 3u);
  EXPECT_EQ(obj.keys()[0], "zulu");
  EXPECT_EQ(obj.keys()[1], "alpha");
  EXPECT_EQ(obj.keys()[2], "mike");
  EXPECT_EQ(obj.at("zulu").as_int(), 4);
  const Json reparsed = Json::parse(obj.dump());
  EXPECT_EQ(reparsed.keys(), obj.keys());
}

TEST(Json, DoubleRoundTripIsExact) {
  for (double v : {0.0, -0.0, 1e-300, 6.02214076e23, 0.1, 1.0 / 3.0,
                   123456.789012345678}) {
    Json j(v);
    const Json back = Json::parse(j.dump());
    EXPECT_EQ(back.type(), Json::Type::kDouble) << v;
    EXPECT_EQ(back.as_double(), v);
  }
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW(Json::parse("{"), CheckFailure);
  EXPECT_THROW(Json::parse("[1, 2,]"), CheckFailure);
  EXPECT_THROW(Json::parse("\"unterminated"), CheckFailure);
  EXPECT_THROW(Json::parse("{\"a\": 1} trailing"), CheckFailure);
  EXPECT_THROW(Json::parse("nul"), CheckFailure);
}

// ----------------------------------------------------------- Histogram

TEST(Histogram, BucketsAndRoundTrip) {
  Histogram h;
  h.observe(0.5);  // bucket 0
  h.observe(1.0);  // bucket 0
  h.observe(2.0);  // bucket 1
  h.observe(1000.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 1003.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[10], 1u);  // 2^9 < 1000 <= 2^10

  Histogram other;
  other.observe(4096.0);
  h.merge(other);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.buckets()[12], 1u);

  std::uint64_t buckets[Histogram::kBuckets];
  for (int i = 0; i < Histogram::kBuckets; ++i) buckets[i] = h.buckets()[i];
  const Histogram rebuilt =
      Histogram::from_parts(h.count(), h.sum(), h.min(), h.max(), buckets);
  EXPECT_TRUE(rebuilt == h);
}

// ------------------------------------------------------------ Recorder

TEST(Recorder, SpanAttributionIsDeltaBased) {
  Recorder rec(3);
  {
    auto outer = rec.span("outer");
    rec.add_flops(100);
    rec.add_sent(2, 64);
    {
      auto inner = rec.span("inner");
      rec.add_flops(40);
      rec.add_sent(1, 32);
    }
    rec.add_flops(5);
  }
  const RankMetrics m = rec.snapshot();
  ASSERT_EQ(m.spans.size(), 2u);
  // Spans are stored in open order; the inner one closed first but
  // keeps its slot.
  const SpanEvent& outer = m.spans[0];
  const SpanEvent& inner = m.spans[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.parent, 0);
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(outer.parent, -1);
  EXPECT_EQ(outer.depth, 0);
  // Parent totals are inclusive of the child's.
  EXPECT_EQ(inner.flops, 40u);
  EXPECT_EQ(outer.flops, 145u);
  EXPECT_EQ(inner.msgs, 1u);
  EXPECT_EQ(outer.msgs, 3u);
  EXPECT_EQ(inner.bytes, 32u);
  EXPECT_EQ(outer.bytes, 96u);
  // Wall-clock nesting: children cannot exceed the parent.
  EXPECT_LE(m.child_wall_sum(0), outer.wall + 1e-9);
  EXPECT_GE(inner.start, outer.start);
}

TEST(Recorder, SpansMustCloseInnermostFirst) {
  Recorder rec;
  auto outer = rec.span("outer");
  auto inner = rec.span("inner");
  EXPECT_THROW(outer.close(), CheckFailure);
  (void)inner.close();
  (void)outer.close();
}

TEST(Registry, PerRankScoping) {
  Registry reg;
  reg.recorder(2).counter_add("x", 5.0);
  reg.recorder(0).counter_add("x", 1.0);
  reg.recorder(2).counter_add("x", 5.0);
  const auto snaps = reg.snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].rank, 0);
  EXPECT_EQ(snaps[1].rank, 2);
  EXPECT_DOUBLE_EQ(snaps[1].counters.at("x"), 10.0);
}

// ----------------------------------------------------------- Exporters

std::vector<RankMetrics> sample_ranks() {
  std::vector<RankMetrics> out;
  for (int r = 0; r < 2; ++r) {
    Recorder rec(r);
    {
      auto eval = rec.span("eval");
      {
        auto s2u = rec.span("eval.s2u");
        rec.add_flops(1000 + 7 * static_cast<std::uint64_t>(r));
      }
      {
        auto comm = rec.span("eval.comm");
        rec.add_sent(3, 4096);
      }
    }
    rec.counter_add("flops.eval.s2u", 1000.0 + 7 * r);
    rec.gauge_set("tree.leaves", 42.0 + r);
    rec.observe("comm.msg_bytes.eval.comm", 4096.0);
    out.push_back(rec.snapshot());
  }
  return out;
}

TEST(Export, MetricsJsonRoundTrip) {
  const auto ranks = sample_ranks();
  const Json doc = metrics_to_json(ranks);
  validate_metrics_json(doc);
  EXPECT_EQ(doc.at("schema").as_string(), kMetricsSchema);
  EXPECT_EQ(doc.at("nranks").as_int(), 2);
  // totals aggregate across ranks.
  EXPECT_DOUBLE_EQ(
      doc.at("totals").at("counters").at("flops.eval.s2u").as_double(),
      2007.0);

  // Serialize -> parse -> rebuild -> serialize: must be identical.
  const Json reparsed = Json::parse(doc.dump(2));
  EXPECT_EQ(reparsed, doc);
  const std::vector<RankMetrics> back = metrics_from_json(reparsed);
  ASSERT_EQ(back.size(), ranks.size());
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    EXPECT_EQ(back[r].rank, ranks[r].rank);
    EXPECT_EQ(back[r].counters, ranks[r].counters);
    EXPECT_EQ(back[r].gauges, ranks[r].gauges);
    EXPECT_TRUE(back[r].histograms.at("comm.msg_bytes.eval.comm") ==
                ranks[r].histograms.at("comm.msg_bytes.eval.comm"));
    ASSERT_EQ(back[r].spans.size(), ranks[r].spans.size());
    for (std::size_t i = 0; i < ranks[r].spans.size(); ++i) {
      EXPECT_EQ(back[r].spans[i].name, ranks[r].spans[i].name);
      EXPECT_EQ(back[r].spans[i].flops, ranks[r].spans[i].flops);
      EXPECT_EQ(back[r].spans[i].parent, ranks[r].spans[i].parent);
      EXPECT_EQ(back[r].spans[i].wall, ranks[r].spans[i].wall);
    }
  }
  EXPECT_EQ(metrics_to_json(back), doc);
}

TEST(Export, FileRoundTrip) {
  const auto ranks = sample_ranks();
  const std::string path = ::testing::TempDir() + "pkifmm_metrics_test.json";
  write_metrics_json(path, ranks);
  const Json doc = read_json_file(path);
  validate_metrics_json(doc);
  EXPECT_EQ(doc, metrics_to_json(ranks));
  std::remove(path.c_str());
}

TEST(Export, ValidatorRejectsBrokenDocuments) {
  const auto ranks = sample_ranks();
  Json doc = metrics_to_json(ranks);
  doc.set("schema", "not.a.schema");
  EXPECT_THROW(validate_metrics_json(doc), CheckFailure);

  Json doc2 = metrics_to_json(ranks);
  doc2.set("nranks", 99);
  EXPECT_THROW(validate_metrics_json(doc2), CheckFailure);

  EXPECT_THROW(validate_metrics_json(Json::parse("{}")), CheckFailure);
}

TEST(Export, ChromeTraceShape) {
  const auto ranks = sample_ranks();
  const Json doc = chrome_trace_json(ranks);
  const auto& events = doc.at("traceEvents").items();
  // Merged-timeline scheme: one *process* per rank, so 2 ranks x
  // (process_name + thread_name metadata + 3 spans).
  ASSERT_EQ(events.size(), 10u);
  std::size_t process_meta = 0, thread_meta = 0, complete = 0;
  for (const Json& ev : events) {
    const std::string ph = ev.at("ph").as_string();
    const std::int64_t pid = ev.at("pid").as_int();
    // pid IS the rank; everything lives on that rank's single thread.
    EXPECT_TRUE(pid == 0 || pid == 1);
    EXPECT_EQ(ev.at("tid").as_int(), 0);
    if (ph == "M") {
      const std::string name = ev.at("name").as_string();
      if (name == "process_name") {
        ++process_meta;
        EXPECT_EQ(ev.at("args").at("name").as_string(),
                  "rank " + std::to_string(pid));
      } else {
        EXPECT_EQ(name, "thread_name");
        ++thread_meta;
      }
      continue;
    }
    ASSERT_EQ(ph, "X");
    ++complete;
    EXPECT_GE(ev.at("dur").as_double(), 0.0);
    EXPECT_GE(ev.at("ts").as_double(), 0.0);
    EXPECT_TRUE(ev.at("args").contains("flops"));
  }
  EXPECT_EQ(process_meta, 2u);
  EXPECT_EQ(thread_meta, 2u);
  EXPECT_EQ(complete, 6u);
}

/// With the "obs.epoch" gauge set, span timestamps move onto the
/// process-wide clock: two ranks whose recorders started at different
/// epochs must come out time-aligned in the merged trace.
TEST(Export, ChromeTraceAlignsRankEpochs) {
  std::vector<RankMetrics> ranks;
  for (int r = 0; r < 2; ++r) {
    RankMetrics rm;
    rm.rank = r;
    rm.gauges["obs.epoch"] = 100.0 + 50.0 * r;  // rank 1 started later
    SpanEvent e;
    e.name = "eval";
    e.start = 2.0;  // same recorder-relative start on both ranks
    e.wall = 1.0;
    rm.spans.push_back(e);
    ranks.push_back(std::move(rm));
  }
  const Json doc = chrome_trace_json(ranks);
  std::map<std::int64_t, double> ts_by_pid;
  for (const Json& ev : doc.at("traceEvents").items())
    if (ev.at("ph").as_string() == "X")
      ts_by_pid[ev.at("pid").as_int()] = ev.at("ts").as_double();
  ASSERT_EQ(ts_by_pid.size(), 2u);
  EXPECT_DOUBLE_EQ(ts_by_pid[0], (100.0 + 2.0) * 1e6);
  EXPECT_DOUBLE_EQ(ts_by_pid[1], (150.0 + 2.0) * 1e6);
}

// -------------------------------------- PhaseTimer single measurement

/// With a recorder bound, PhaseTimer::Scope must measure through the
/// span tracer only — the flat table and the trace come from ONE clock
/// read, so they can never disagree (the old double-measurement setup
/// let "Comm" time drift between the two reports).
TEST(PhaseTimer, FlatTableEqualsSpanTotals) {
  Recorder rec;
  PhaseTimer timer;
  timer.bind(&rec);
  for (int rep = 0; rep < 3; ++rep) {
    auto outer = timer.scope("eval.uli");
    double sink = 0.0;
    for (int i = 0; i < 20000; ++i) sink += 1.0 / (1.0 + i);
    ASSERT_GT(sink, 0.0);
    auto inner = timer.scope("eval.uli.inner");
  }
  const RankMetrics m = rec.snapshot();
  ASSERT_EQ(m.spans.size(), 6u);

  double span_wall = 0.0, span_cpu = 0.0;
  for (const SpanEvent& e : m.spans)
    if (e.name == "eval.uli") {
      span_wall += e.wall;
      span_cpu += e.cpu;
    }
  // Exact equality: the flat map is fed from the very same span close.
  EXPECT_DOUBLE_EQ(timer.phases().at("eval.uli"), span_wall);
  EXPECT_DOUBLE_EQ(timer.cpu_phases().at("eval.uli"), span_cpu);

  // Child time is contained in parent time.
  for (std::size_t i = 0; i < m.spans.size(); ++i)
    EXPECT_LE(m.child_wall_sum(i), m.spans[i].wall + 1e-9) << m.spans[i].name;
}

TEST(PhaseTimer, UnboundFallbackStillAccumulates) {
  PhaseTimer timer;
  {
    auto t = timer.scope("phase.a");
    double sink = 0.0;
    for (int i = 0; i < 10000; ++i) sink += 1.0 / (1.0 + i);
    ASSERT_GT(sink, 0.0);
  }
  EXPECT_GT(timer.phases().at("phase.a"), 0.0);
  EXPECT_GE(timer.cpu_phases().at("phase.a"), 0.0);
}

// --------------------------------------------- Cross-rank aggregation

/// Synthetic rank with the canonical counters of one phase, scaled.
RankMetrics synth_rank(int rank, double scale) {
  RankMetrics rm;
  rm.rank = rank;
  rm.counters["time.eval.uli.wall"] = 1.0 * scale;
  rm.counters["time.eval.uli.cpu"] = 0.5 * scale;
  rm.counters["flops.eval.uli"] = 1.0e5 * scale;
  rm.counters["comm.eval.uli.msgs_sent"] = 50.0 * scale;
  rm.counters["comm.eval.uli.bytes_sent"] = 5.0e4 * scale;
  return rm;
}

TEST(Aggregate, SummaryStatsMatchHandComputedValues) {
  // rank 0 all-ones scale, rank 1 three times the work.
  const Json doc = summarize_metrics({synth_rank(0, 1.0), synth_rank(1, 3.0)});
  validate_summary_json(doc);
  EXPECT_EQ(doc.at("schema").as_string(), kSummarySchema);
  EXPECT_EQ(doc.at("nranks").as_int(), 2);
  EXPECT_EQ(doc.at("nruns").as_int(), 1);

  // Flat metric stats: wall samples are {1, 3}.
  const Json& wall = doc.at("metrics").at("time.eval.uli.wall");
  EXPECT_DOUBLE_EQ(wall.at("min").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(wall.at("max").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(wall.at("avg").as_double(), 2.0);
  EXPECT_DOUBLE_EQ(wall.at("stddev").as_double(), std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(wall.at("sum").as_double(), 4.0);
  EXPECT_EQ(wall.at("count").as_int(), 2);
  EXPECT_DOUBLE_EQ(wall.at("imbalance").as_double(), 1.5);

  // Per-phase breakdown agrees with the counters feeding it.
  const Json& ph = doc.at("phases").at("eval.uli");
  EXPECT_DOUBLE_EQ(ph.at("wall").at("max").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(ph.at("flops").at("sum").as_double(), 4.0e5);
  EXPECT_DOUBLE_EQ(ph.at("msgs_sent").at("sum").as_double(), 200.0);
  EXPECT_DOUBLE_EQ(ph.at("bytes_sent").at("sum").as_double(), 2.0e5);
  EXPECT_DOUBLE_EQ(ph.at("wall").at("imbalance").as_double(), 1.5);
}

TEST(Aggregate, RankMissingACounterContributesZero) {
  RankMetrics a = synth_rank(0, 1.0);
  RankMetrics b = synth_rank(1, 1.0);
  b.counters["flops.eval.wli"] = 10.0;  // only rank 1 entered this phase
  const Json doc = summarize_metrics({a, b});
  const Json& m = doc.at("metrics").at("flops.eval.wli");
  EXPECT_DOUBLE_EQ(m.at("min").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(m.at("max").as_double(), 10.0);
  EXPECT_DOUBLE_EQ(m.at("avg").as_double(), 5.0);
  EXPECT_DOUBLE_EQ(m.at("imbalance").as_double(), 2.0);
  EXPECT_EQ(m.at("count").as_int(), 2);
}

TEST(Aggregate, SpanFallbackGivesPhaseTotalsAndOverlap) {
  // Trace-only phase (no canonical counters): rank 1's recorder was
  // created 1 s after rank 0's, both spend 2 s in "eval" starting at
  // their local zero. Absolute window is [10, 13] -> makespan 3,
  // busy 4, overlap 4 / (2 * 3).
  std::vector<RankMetrics> ranks;
  for (int r = 0; r < 2; ++r) {
    RankMetrics rm;
    rm.rank = r;
    rm.gauges["obs.epoch"] = 10.0 + 1.0 * r;
    SpanEvent e;
    e.name = "eval";
    e.start = 0.0;
    e.wall = 2.0;
    e.cpu = 1.5;
    rm.spans.push_back(e);
    ranks.push_back(std::move(rm));
  }
  const Json doc = summarize_metrics(ranks);
  const Json& ph = doc.at("phases").at("eval");
  EXPECT_DOUBLE_EQ(ph.at("wall").at("avg").as_double(), 2.0);
  EXPECT_DOUBLE_EQ(ph.at("cpu").at("sum").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(ph.at("critical_path").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(ph.at("overlap_efficiency").as_double(), 4.0 / 6.0);
}

TEST(Aggregate, ZeroWallPhaseOmitsImbalanceAndOverlap) {
  // A phase whose canonical wall counters are all zero (declared but
  // never entered) and an all-zero metric: max/avg is undefined, so
  // the summary must OMIT "imbalance" and "overlap_efficiency" rather
  // than emit NaN/Inf or a fabricated 1.0 — and still validate.
  std::vector<RankMetrics> ranks;
  for (int r = 0; r < 2; ++r) {
    RankMetrics rm;
    rm.rank = r;
    rm.counters["time.eval.wli.wall"] = 0.0;
    rm.counters["time.eval.wli.cpu"] = 0.0;
    rm.counters["flops.eval.wli"] = 0.0;
    ranks.push_back(std::move(rm));
  }
  const Json doc = summarize_metrics(ranks);
  validate_summary_json(doc);

  const Json& m = doc.at("metrics").at("time.eval.wli.wall");
  EXPECT_EQ(m.at("count").as_int(), 2);
  EXPECT_DOUBLE_EQ(m.at("avg").as_double(), 0.0);
  EXPECT_FALSE(m.contains("imbalance"));

  const Json& ph = doc.at("phases").at("eval.wli");
  EXPECT_DOUBLE_EQ(ph.at("wall").at("sum").as_double(), 0.0);
  EXPECT_FALSE(ph.at("wall").contains("imbalance"));
  // Counter-only phase, no spans: no makespan window exists.
  EXPECT_FALSE(ph.contains("overlap_efficiency"));

  // JSON round-trip revalidates (the optional fields stay optional).
  validate_summary_json(Json::parse(doc.dump()));

  // Nondegenerate phases still carry both fields (guard against the
  // omission being overeager): reuse the synthetic two-rank setup.
  const Json live = summarize_metrics({synth_rank(0, 1.0), synth_rank(1, 3.0)});
  EXPECT_TRUE(
      live.at("phases").at("eval.uli").at("wall").contains("imbalance"));
}

TEST(Aggregate, MultiRunMergeAccumulates) {
  std::vector<RankMetrics> run1 = {synth_rank(0, 1.0), synth_rank(1, 3.0)};
  std::vector<RankMetrics> run2 = {synth_rank(0, 2.0), synth_rank(1, 4.0)};
  run1[0].counters["commx.eval.uli.dst1.msgs"] = 5.0;
  run2[0].counters["commx.eval.uli.dst1.msgs"] = 7.0;
  const Json doc = summarize_runs("bench_x", {run1, run2});
  validate_summary_json(doc);
  EXPECT_EQ(doc.at("nruns").as_int(), 2);
  EXPECT_EQ(doc.at("bench").as_string(), "bench_x");

  // Welford-merged across runs: wall samples {1, 3, 2, 4}.
  const Json& wall = doc.at("metrics").at("time.eval.uli.wall");
  EXPECT_EQ(wall.at("count").as_int(), 4);
  EXPECT_DOUBLE_EQ(wall.at("min").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(wall.at("max").as_double(), 4.0);
  EXPECT_DOUBLE_EQ(wall.at("avg").as_double(), 2.5);
  EXPECT_NEAR(wall.at("sum").as_double(), 10.0, 1e-12);

  // Traffic matrices sum across runs.
  const Json& mat = doc.at("comm_matrix").at("eval.uli").at("msgs");
  EXPECT_DOUBLE_EQ(mat.items()[0].items()[1].as_double(), 12.0);
  EXPECT_DOUBLE_EQ(mat.items()[1].items()[0].as_double(), 0.0);
}

TEST(Aggregate, ValidatorRejectsBrokenSummary) {
  Json doc = summarize_metrics({synth_rank(0, 1.0)});
  doc.set("schema", "not.a.schema");
  EXPECT_THROW(validate_summary_json(doc), CheckFailure);
  EXPECT_THROW(validate_summary_json(Json::parse("{}")), CheckFailure);

  // commx traffic must stay inside the rank range.
  RankMetrics bad = synth_rank(0, 1.0);
  bad.counters["commx.eval.uli.dst7.msgs"] = 1.0;  // only 1 rank exists
  EXPECT_THROW(summarize_metrics({bad}), CheckFailure);
}

/// Multi-rank end-to-end: a deterministic exchange (ring send-right
/// plus an XOR pairing, distinct phases) whose summary stats and
/// comm-matrix entries are hand-computable, and whose matrix marginals
/// must equal the tagged comm.* counters of every rank.
TEST(Aggregate, CommMatrixMarginalsMatchCounters) {
  constexpr int kP = 4;
  auto reports = comm::Runtime::run(kP, [&](comm::RankCtx& ctx) {
    const int r = ctx.rank();
    // Phase 1: ring. Rank r sends 100*(r+1) bytes to its right peer.
    ctx.comm.cost().set_phase("x.ring");
    std::vector<char> ring(static_cast<std::size_t>(100 * (r + 1)), 'a');
    ctx.comm.send<char>((r + 1) % kP, 7, ring);
    (void)ctx.comm.recv<char>((r - 1 + kP) % kP, 7);
    // Phase 2: XOR pairing, fixed 64-byte payload.
    ctx.comm.cost().set_phase("x.pair");
    std::vector<char> pair(64, 'b');
    ctx.comm.send<char>(r ^ 1, 8, pair);
    (void)ctx.comm.recv<char>(r ^ 1, 8);
  });

  std::vector<RankMetrics> ranks;
  for (const auto& rep : reports) ranks.push_back(rep.obs);
  const Json doc = summarize_metrics(ranks);
  validate_summary_json(doc);

  // Hand-computed stats: per-rank ring bytes are {100, 200, 300, 400}.
  const Json& sent = doc.at("metrics").at("comm.x.ring.bytes_sent");
  EXPECT_DOUBLE_EQ(sent.at("min").as_double(), 100.0);
  EXPECT_DOUBLE_EQ(sent.at("max").as_double(), 400.0);
  EXPECT_DOUBLE_EQ(sent.at("avg").as_double(), 250.0);
  EXPECT_DOUBLE_EQ(sent.at("imbalance").as_double(), 1.6);
  EXPECT_NEAR(sent.at("stddev").as_double(), std::sqrt(50000.0 / 3.0), 1e-9);

  // Hand-computed matrix cells; diagonals stay empty.
  const Json& ring = doc.at("comm_matrix").at("x.ring");
  const Json& pair = doc.at("comm_matrix").at("x.pair");
  for (int r = 0; r < kP; ++r) {
    const auto& ring_msgs = ring.at("msgs").items()[r].items();
    const auto& ring_bytes = ring.at("bytes").items()[r].items();
    const auto& pair_bytes = pair.at("bytes").items()[r].items();
    for (int c = 0; c < kP; ++c) {
      EXPECT_DOUBLE_EQ(ring_msgs[c].as_double(), c == (r + 1) % kP ? 1.0 : 0.0)
          << r << "->" << c;
      EXPECT_DOUBLE_EQ(ring_bytes[c].as_double(),
                       c == (r + 1) % kP ? 100.0 * (r + 1) : 0.0)
          << r << "->" << c;
      EXPECT_DOUBLE_EQ(pair_bytes[c].as_double(), c == (r ^ 1) ? 64.0 : 0.0)
          << r << "->" << c;
    }
  }

  // Marginals: row sums equal each rank's send counters, column sums
  // equal each rank's recv counters, for both phases and both units.
  for (const char* phase : {"x.ring", "x.pair"}) {
    const Json& mat = doc.at("comm_matrix").at(phase);
    for (const char* unit : {"msgs", "bytes"}) {
      const auto& rows = mat.at(unit).items();
      for (int r = 0; r < kP; ++r) {
        double row_sum = 0.0, col_sum = 0.0;
        for (int k = 0; k < kP; ++k) {
          row_sum += rows[r].items()[k].as_double();
          col_sum += rows[k].items()[r].as_double();
        }
        const auto& c = reports[r].obs.counters;
        const std::string base = std::string("comm.") + phase + ".";
        EXPECT_DOUBLE_EQ(row_sum,
                         c.at(base + unit + "_sent"))
            << phase << " " << unit << " row " << r;
        EXPECT_DOUBLE_EQ(col_sum,
                         c.at(base + unit + "_recv"))
            << phase << " " << unit << " col " << r;
      }
    }
  }
}

TEST(Aggregate, GatherMetricsDeliversEveryRankSnapshot) {
  constexpr int kP = 3;
  std::vector<std::vector<RankMetrics>> gathered(kP);
  comm::Runtime::run(kP, [&](comm::RankCtx& ctx) {
    ctx.rec.counter_add("test.marker", 10.0 + ctx.rank());
    gathered[static_cast<std::size_t>(ctx.rank())] =
        gather_metrics(ctx.comm, comm::snapshot_with_counters(ctx));
  });
  for (int r = 0; r < kP; ++r) {
    const auto& mine = gathered[static_cast<std::size_t>(r)];
    ASSERT_EQ(mine.size(), static_cast<std::size_t>(kP));
    for (int k = 0; k < kP; ++k) {
      EXPECT_EQ(mine[static_cast<std::size_t>(k)].rank, k);
      EXPECT_DOUBLE_EQ(
          mine[static_cast<std::size_t>(k)].counters.at("test.marker"),
          10.0 + k);
    }
  }
}

// ------------------------------------------------- Regression gate

TEST(Gate, IdenticalSummariesPass) {
  const Json base = summarize_metrics({synth_rank(0, 1.0), synth_rank(1, 1.0)});
  const Json report = compare_summaries(base, base);
  EXPECT_TRUE(report.at("ok").as_bool());
  EXPECT_GT(report.at("checked").as_int(), 0);
  EXPECT_EQ(report.at("violations").size(), 0u);
}

TEST(Gate, InflatedSummaryFails) {
  const Json base = summarize_metrics({synth_rank(0, 1.0), synth_rank(1, 1.0)});
  // Everything doubled: wall/cpu blow the 1.6x time bound, flops/msgs/
  // bytes blow the 1.25x work bound -> all five checks violated.
  const Json slow = summarize_metrics({synth_rank(0, 2.0), synth_rank(1, 2.0)});
  const Json report = compare_summaries(slow, base);
  EXPECT_FALSE(report.at("ok").as_bool());
  const auto& violations = report.at("violations").items();
  ASSERT_EQ(violations.size(), 5u);
  std::set<std::string> metrics;
  for (const Json& v : violations) {
    EXPECT_EQ(v.at("phase").as_string(), "eval.uli");
    EXPECT_DOUBLE_EQ(v.at("ratio").as_double(), 2.0);
    metrics.insert(v.at("metric").as_string());
  }
  EXPECT_EQ(metrics, (std::set<std::string>{"wall", "cpu", "flops",
                                            "msgs_sent", "bytes_sent"}));
}

TEST(Gate, PhasesBelowTheFloorAreSkipped) {
  // All values far below the absolute floors: a 10x blowup of pure
  // noise must not trip the gate (machine-tolerance envelope).
  RankMetrics tiny;
  tiny.rank = 0;
  tiny.counters["time.eval.grad.wall"] = 1e-6;
  tiny.counters["flops.eval.grad"] = 100.0;
  tiny.counters["comm.eval.grad.msgs_sent"] = 1.0;
  tiny.counters["comm.eval.grad.bytes_sent"] = 32.0;
  RankMetrics tiny10 = tiny;
  for (auto& [name, v] : tiny10.counters) v *= 10.0;
  const Json report = compare_summaries(summarize_metrics({tiny10}),
                                        summarize_metrics({tiny}));
  EXPECT_TRUE(report.at("ok").as_bool());
  EXPECT_EQ(report.at("checked").as_int(), 0);
}

TEST(Gate, MissingPhaseIsAViolation) {
  RankMetrics other;
  other.rank = 0;
  other.counters["time.eval.other.wall"] = 1.0;
  const Json base = summarize_metrics({synth_rank(0, 1.0)});
  const Json report = compare_summaries(summarize_metrics({other}), base);
  EXPECT_FALSE(report.at("ok").as_bool());
  ASSERT_EQ(report.at("violations").size(), 1u);
  const Json& v = report.at("violations").items()[0];
  EXPECT_EQ(v.at("phase").as_string(), "eval.uli");
  EXPECT_EQ(v.at("metric").as_string(), "missing");
}

TEST(Gate, DifferentRankCountsAreNotComparable) {
  const Json two = summarize_metrics({synth_rank(0, 1.0), synth_rank(1, 1.0)});
  const Json one = summarize_metrics({synth_rank(0, 1.0)});
  EXPECT_THROW(compare_summaries(two, one), CheckFailure);
}

// ------------------------------------------------- Table II int. test

/// Table II-shaped integration check: a small nonuniform run at p=4
/// must produce all nine paper phases (S2U, U2U, comm/reduce, VLI,
/// XLI, D2D/down, WLI, D2T, ULI) with real work attributed — the eight
/// compute phases carry nonzero flops and the communication phase
/// carries nonzero message traffic. This pins the whole reporting
/// chain: FlopCounter/CostTracker -> Recorder -> canonical counters.
TEST(Integration, PaperPhasesAllReport) {
  kernels::LaplaceKernel kernel;
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 20;
  const core::Tables tables(kernel, opts);

  auto reports = comm::Runtime::run(4, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(octree::Distribution::kEllipsoid,
                                       2000, ctx.rank(), ctx.size(), 1, 42);
    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    (void)fmm.evaluate();
  });
  ASSERT_EQ(reports.size(), 4u);

  static const char* kComputePhases[] = {"eval.s2u", "eval.u2u", "eval.vli",
                                         "eval.xli", "eval.down", "eval.wli",
                                         "eval.d2t", "eval.uli"};
  // Cross-rank totals: every compute phase did real flops somewhere,
  // and the reduction phase moved real messages.
  for (const char* phase : kComputePhases) {
    double flops = 0.0, wall = 0.0;
    for (const auto& rep : reports) {
      const auto& c = rep.obs.counters;
      auto fit = c.find(std::string("flops.") + phase);
      if (fit != c.end()) flops += fit->second;
      auto wit = c.find(std::string("time.") + phase + ".wall");
      if (wit != c.end()) wall += wit->second;
    }
    EXPECT_GT(flops, 0.0) << phase;
    EXPECT_GT(wall, 0.0) << phase;
  }
  double comm_msgs = 0.0;
  for (const auto& rep : reports)
    comm_msgs += rep.obs.counters.at("comm.eval.comm.msgs_sent");
  EXPECT_GT(comm_msgs, 0.0);

  for (const auto& rep : reports) {
    const auto& m = rep.obs;
    // The canonical counters mirror the legacy flat maps exactly.
    for (const auto& [name, v] : rep.flop_phases)
      EXPECT_DOUBLE_EQ(m.counters.at("flops." + name),
                       static_cast<double>(v))
          << name;
    for (const auto& [name, v] : rep.time_phases)
      EXPECT_DOUBLE_EQ(m.counters.at("time." + name + ".wall"), v) << name;

    // Span tree: "setup" and "eval" roots exist in the trace but NOT in
    // the flat map (prefix sums over "eval." must not double-count).
    std::set<std::string> span_names;
    for (const SpanEvent& e : m.spans) span_names.insert(e.name);
    EXPECT_TRUE(span_names.count("setup"));
    EXPECT_TRUE(span_names.count("eval"));
    EXPECT_EQ(rep.time_phases.count("eval"), 0u);
    EXPECT_EQ(rep.time_phases.count("setup"), 0u);
    for (const char* phase : kComputePhases)
      EXPECT_TRUE(span_names.count(phase)) << phase;
    EXPECT_TRUE(span_names.count("eval.comm"));

    // Tracer invariant: children are contained in their parents.
    for (std::size_t i = 0; i < m.spans.size(); ++i)
      EXPECT_LE(m.child_wall_sum(i), m.spans[i].wall + 1e-6)
          << m.spans[i].name;

    // Collective accounting reached the tagged counters.
    EXPECT_GT(m.counters.at("coll.reduce_scatter.calls"), 0.0);
    EXPECT_GT(m.counters.at("coll.reduce_scatter.msgs"), 0.0);
    EXPECT_GT(m.counters.at("coll.allgatherv.calls"), 0.0);

    // Message-size histogram saw the reduce-scatter traffic.
    const auto hit = m.histograms.find("comm.msg_bytes.eval.comm");
    ASSERT_NE(hit, m.histograms.end());
    EXPECT_GT(hit->second.count(), 0u);
  }

  // The full snapshot set exports as schema-valid metrics JSON.
  std::vector<RankMetrics> ranks;
  for (const auto& rep : reports) ranks.push_back(rep.obs);
  const Json doc = metrics_to_json(ranks);
  validate_metrics_json(doc);
  EXPECT_EQ(metrics_to_json(metrics_from_json(doc)), doc);
}

/// The acceptance check for the cross-rank summary: a real multi-rank
/// FMM run must leave every rank holding the SAME schema-valid
/// summary, whose per-phase totals equal the sum of the per-rank
/// canonical counters and whose comm-matrix marginals equal the
/// tagged comm.* counters.
TEST(Integration, CrossRankSummaryAgreesWithPerRankMetrics) {
  kernels::LaplaceKernel kernel;
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 20;
  const core::Tables tables(kernel, opts);

  constexpr int kP = 4;
  std::vector<Json> summaries(kP);
  auto reports = comm::Runtime::run(kP, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(octree::Distribution::kEllipsoid,
                                       2000, ctx.rank(), ctx.size(), 1, 42);
    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    (void)fmm.evaluate();
    summaries[static_cast<std::size_t>(ctx.rank())] = fmm.summary();
  });

  // Identical document on every rank (the allgather pattern).
  validate_summary_json(summaries[0]);
  for (int r = 1; r < kP; ++r) EXPECT_EQ(summaries[r], summaries[0]);
  const Json& doc = summaries[0];
  EXPECT_EQ(doc.at("nranks").as_int(), kP);

  // Per-phase totals equal the sum of per-rank counter values. The
  // gather runs after evaluate(), so the eval-phase counters in the
  // end-of-run reports are exactly what was summarized.
  for (const char* phase : {"eval.s2u", "eval.vli", "eval.uli"}) {
    double wall = 0.0, flops = 0.0;
    for (const auto& rep : reports) {
      wall += rep.obs.counters.at(std::string("time.") + phase + ".wall");
      flops += rep.obs.counters.at(std::string("flops.") + phase);
    }
    const Json& ph = doc.at("phases").at(phase);
    EXPECT_NEAR(ph.at("wall").at("sum").as_double(), wall, 1e-9 * wall + 1e-12)
        << phase;
    EXPECT_NEAR(ph.at("flops").at("sum").as_double(), flops, 1e-9 * flops)
        << phase;
    const double eff = ph.at("overlap_efficiency").as_double();
    EXPECT_GT(eff, 0.0) << phase;
    EXPECT_LE(eff, 1.0 + 1e-9) << phase;
  }
  EXPECT_GT(doc.at("phases").at("eval").at("critical_path").as_double(), 0.0);

  // The gather's own traffic is excluded from the summary it builds.
  EXPECT_FALSE(doc.at("phases").contains("obs.gather"));

  // Comm-matrix row sums equal the tagged per-rank send counters; the
  // reduction phase actually moved traffic.
  const Json& mats = doc.at("comm_matrix");
  EXPECT_TRUE(mats.contains("eval.comm"));
  for (const std::string& phase : mats.keys()) {
    for (const char* unit : {"msgs", "bytes"}) {
      const auto& rows = mats.at(phase).at(unit).items();
      double total = 0.0;
      for (int r = 0; r < kP; ++r) {
        double row_sum = 0.0;
        for (const Json& cell : rows[static_cast<std::size_t>(r)].items())
          row_sum += cell.as_double();
        total += row_sum;
        const auto& c = reports[static_cast<std::size_t>(r)].obs.counters;
        auto it = c.find("comm." + phase + "." + unit + "_sent");
        EXPECT_DOUBLE_EQ(row_sum, it == c.end() ? 0.0 : it->second)
            << phase << " " << unit << " row " << r;
      }
      // Same total through the flat-metric path.
      EXPECT_NEAR(doc.at("metrics")
                      .at("comm." + phase + "." + unit + "_sent")
                      .at("sum")
                      .as_double(),
                  total, 1e-9 * total + 1e-12)
          << phase << " " << unit;
    }
  }
  const auto& rmat = mats.at("eval.comm").at("msgs").items();
  double reduce_msgs = 0.0;
  for (const auto& row : rmat)
    for (const Json& cell : row.items()) reduce_msgs += cell.as_double();
  EXPECT_GT(reduce_msgs, 0.0);
}

}  // namespace
}  // namespace pkifmm::obs
