#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <fstream>
#include <map>
#include <mutex>
#include <unordered_map>

#include "core/direct.hpp"
#include "core/fmm.hpp"
#include "core/surface.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pkifmm::core {
namespace {

using octree::Distribution;
using octree::PointRec;

// ---------------------------------------------------------------------
// Surfaces
// ---------------------------------------------------------------------

TEST(Surface, PointCounts) {
  EXPECT_EQ(surface_point_count(2), 8);
  EXPECT_EQ(surface_point_count(4), 56);
  EXPECT_EQ(surface_point_count(6), 152);
  EXPECT_EQ(surface_point_count(8), 296);
}

TEST(Surface, PointsLieOnCubeBoundary) {
  const std::array<double, 3> c = {0.5, 0.25, 0.75};
  const double hw = 0.125;
  const double r = 1.05 * hw;
  auto pts = surface_points(6, 1.05, c, hw);
  ASSERT_EQ(pts.size(), 3u * 152);
  for (std::size_t p = 0; p < pts.size() / 3; ++p) {
    double maxdev = 0;
    for (int d = 0; d < 3; ++d) {
      const double dev = std::abs(pts[3 * p + d] - c[d]);
      EXPECT_LE(dev, r + 1e-12);
      maxdev = std::max(maxdev, dev);
    }
    EXPECT_NEAR(maxdev, r, 1e-12);  // on the boundary, not inside
  }
}

TEST(Surface, SpacingFormula) {
  EXPECT_DOUBLE_EQ(surface_spacing(6, 1.05, 0.5), 1.05 / 5.0);
}

// ---------------------------------------------------------------------
// Translation operators in isolation
// ---------------------------------------------------------------------

/// Random sources in a level-l box; returns (positions, densities).
std::pair<std::vector<double>, std::vector<double>> random_cloud(
    const std::array<double, 3>& center, double hw, int n, int sd,
    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> pos, den;
  for (int i = 0; i < n; ++i) {
    for (int d = 0; d < 3; ++d)
      pos.push_back(center[d] + hw * rng.uniform(-0.95, 0.95));
    for (int c = 0; c < sd; ++c) den.push_back(rng.uniform(-1, 1));
  }
  return {pos, den};
}

/// Computes the upward equivalent density of a cloud in the box at
/// `key` using the tables, mirroring Evaluator::s2u.
std::vector<double> make_equiv_density(const Tables& t, const morton::Key& key,
                                       const std::vector<double>& pos,
                                       const std::vector<double>& den) {
  const auto g = morton::box_geometry(key);
  const auto uc = surface_points(t.n(), t.options().upward_check_radius,
                                 g.center, g.half_width);
  std::vector<double> check(t.check_len(), 0.0);
  t.kernel().direct(uc, pos, den, check);
  const LevelOps ops = t.at(key.level);
  std::vector<double> u(t.eq_len(), 0.0);
  la::gemv_acc(*ops.uc2ue, check, u, ops.uc2ue_scale);
  return u;
}

/// Evaluates the equivalent density at arbitrary points.
std::vector<double> eval_equiv(const Tables& t, const morton::Key& key,
                               double radius_scale,
                               const std::vector<double>& density,
                               const std::vector<double>& targets) {
  const auto g = morton::box_geometry(key);
  const auto surf =
      surface_points(t.n(), radius_scale, g.center, g.half_width);
  std::vector<double> pot(targets.size() / 3 * t.tdim(), 0.0);
  t.kernel().direct(targets, surf, density, pot);
  return pot;
}

class OperatorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(OperatorTest, S2UReproducesFarField) {
  auto kernel = kernels::make_kernel(GetParam());
  FmmOptions opts;
  opts.surface_n = 6;
  const Tables t(*kernel, opts);

  // Box at level 3 somewhere inside the domain.
  const morton::Key box =
      morton::ancestor_at(morton::cell_of_point(0.3, 0.55, 0.42), 3);
  const auto g = morton::box_geometry(box);
  auto [pos, den] = random_cloud(g.center, g.half_width, 40, t.sdim(), 5);
  const auto u = make_equiv_density(t, box, pos, den);

  // Evaluate at points outside the 3x colleague zone.
  std::vector<double> far;
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    for (int d = 0; d < 3; ++d) {
      double v;
      do {
        v = rng.uniform();
      } while (std::abs(v - g.center[d]) < 3.2 * g.half_width);
      far.push_back(v);
    }
  }
  const auto approx =
      eval_equiv(t, box, opts.upward_equiv_radius, u, far);
  std::vector<double> exact(far.size() / 3 * t.tdim(), 0.0);
  kernel->direct(far, pos, den, exact);
  EXPECT_LT(rel_l2_error(approx, exact), 1e-5) << GetParam();
}

TEST_P(OperatorTest, M2MPreservesFarField) {
  auto kernel = kernels::make_kernel(GetParam());
  FmmOptions opts;
  opts.surface_n = 6;
  const Tables t(*kernel, opts);

  const morton::Key parent =
      morton::ancestor_at(morton::cell_of_point(0.6, 0.3, 0.7), 4);
  std::vector<double> u_parent(t.eq_len(), 0.0);
  std::vector<double> all_pos, all_den;
  for (int ci = 0; ci < 8; ++ci) {
    const morton::Key child = morton::child(parent, ci);
    const auto g = morton::box_geometry(child);
    auto [pos, den] = random_cloud(g.center, g.half_width, 10, t.sdim(),
                                   100 + ci);
    const auto u_child = make_equiv_density(t, child, pos, den);
    const LevelOps ops = t.at(parent.level);
    la::gemv_acc((*ops.m2m)[ci], u_child, u_parent);
    all_pos.insert(all_pos.end(), pos.begin(), pos.end());
    all_den.insert(all_den.end(), den.begin(), den.end());
  }

  const auto g = morton::box_geometry(parent);
  std::vector<double> far = {g.center[0] + 8 * g.half_width, g.center[1],
                             g.center[2] - 7 * g.half_width};
  const auto approx =
      eval_equiv(t, parent, opts.upward_equiv_radius, u_parent, far);
  std::vector<double> exact(t.tdim(), 0.0);
  kernel->direct(far, all_pos, all_den, exact);
  EXPECT_LT(rel_l2_error(approx, exact), 1e-5) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Kernels, OperatorTest,
                         ::testing::Values("laplace", "stokes", "yukawa"));

TEST(Operators, FftM2LMatchesDenseM2L) {
  // The diagonal (FFT) translation and the dense matrix must agree on
  // the resulting check potentials for every tested offset.
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  const Tables t(kernel, opts);
  Rng rng(9);
  std::vector<double> u(t.eq_len());
  for (auto& v : u) v = rng.uniform(-1, 1);

  const std::size_t vol = t.fft_volume();
  const auto& embed = t.embed_index();

  for (auto [dx, dy, dz] : std::vector<std::array<int, 3>>{
           {2, 0, 0}, {-2, 1, 0}, {3, -3, 3}, {0, 2, -1}, {-3, 0, 2}}) {
    const int off = offset_index(dx, dy, dz);
    // Dense path.
    const la::Matrix& m = t.m2l_dense(0, off);
    std::vector<double> dense_out(t.check_len(), 0.0);
    la::gemv_acc(m, u, dense_out);

    // FFT path.
    std::vector<fft::Complex> spec(vol, fft::Complex(0, 0));
    for (int k = 0; k < t.m(); ++k) spec[embed[k]] = u[k];
    t.fft().forward(spec);
    std::vector<fft::Complex> acc(vol, fft::Complex(0, 0));
    fft::pointwise_mac(t.m2l_spectra(0, off), spec, acc);
    t.fft().inverse(acc);
    std::vector<double> fft_out(t.check_len());
    // Offset sign convention: dense matrix maps source at origin to
    // target at offset; spectra encode the same displacement.
    for (int k = 0; k < t.m(); ++k) fft_out[k] = acc[embed[k]].real();

    EXPECT_LT(rel_l2_error(fft_out, dense_out), 1e-10)
        << "offset " << dx << "," << dy << "," << dz;
  }
}

TEST(Operators, HomogeneousScalingMatchesRebuiltLevel) {
  // at(level) with scaling must equal tables built directly at that
  // level geometry. Check via the S2U route at two different levels.
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  const Tables t(kernel, opts);

  for (int level : {2, 6}) {
    const morton::Key box =
        morton::ancestor_at(morton::cell_of_point(0.4, 0.4, 0.4), level);
    const auto g = morton::box_geometry(box);
    auto [pos, den] = random_cloud(g.center, g.half_width, 15, 1, 77);
    const auto u = make_equiv_density(t, box, pos, den);
    const std::vector<double> far = {g.center[0], g.center[1] + 5 * g.half_width,
                                     g.center[2]};
    const auto approx = eval_equiv(t, box, opts.upward_equiv_radius, u, far);
    std::vector<double> exact(1, 0.0);
    kernel.direct(far, pos, den, exact);
    // n=4 truncation error is ~1e-4; a scaling bug would be off by
    // factors of 2^level, which this still catches decisively.
    EXPECT_NEAR(approx[0], exact[0], 1e-3 * std::abs(exact[0]))
        << "level " << level;
  }
}

// ---------------------------------------------------------------------
// Reduce/scatter
// ---------------------------------------------------------------------

void check_reduce_mode(ReduceMode mode, int p) {
  comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    octree::BuildParams bp;
    bp.max_points_per_leaf = 15;
    auto tree = octree::build_distributed_tree(
        ctx.comm,
        octree::generate_points(Distribution::kEllipsoid, 1200, ctx.rank(), p,
                                1, 3),
        bp);
    octree::Let let = octree::build_let(ctx.comm, tree);
    octree::build_interaction_lists(let);

    // Synthetic partial densities: a deterministic function of
    // (octant, rank), eq_len = 2 for brevity.
    const int eq_len = 2;
    std::vector<double> u(let.nodes.size() * eq_len, 0.0);
    morton::KeyHash h;
    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      if (!let.nodes[i].target) continue;
      u[i * eq_len] = double(h(let.nodes[i].key) % 1000) + ctx.rank();
      u[i * eq_len + 1] = ctx.rank() + 1.0;
    }

    // Reference: gather everyone's (key, partial) and sum.
    std::vector<double> expected = u;
    {
      struct Entry {
        morton::Bits bits;
        std::uint8_t level;
        double v0, v1;
      };
      std::vector<Entry> mine;
      for (std::size_t i = 0; i < let.nodes.size(); ++i) {
        if (!let.nodes[i].target) continue;
        mine.push_back({let.nodes[i].key.bits, let.nodes[i].key.level,
                        u[i * eq_len], u[i * eq_len + 1]});
      }
      auto per_rank = ctx.comm.allgatherv(std::span<const Entry>(mine));
      std::map<morton::Key, std::array<double, 2>> sums;
      for (int r = 0; r < p; ++r)
        for (const Entry& e : per_rank[r]) {
          auto& s = sums[morton::Key{e.bits, e.level}];
          s[0] += e.v0;
          s[1] += e.v1;
        }
      for (std::size_t i = 0; i < let.nodes.size(); ++i) {
        auto it = sums.find(let.nodes[i].key);
        if (it == sums.end()) continue;
        expected[i * eq_len] = it->second[0];
        expected[i * eq_len + 1] = it->second[1];
      }
    }

    reduce_upward_densities(ctx.comm, let, eq_len, u, mode);

    // Every node this rank USES (V or W member of a target, or a target
    // itself) must hold the complete sum.
    std::vector<bool> used(let.nodes.size(), false);
    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      if (!let.nodes[i].target) continue;
      used[i] = true;
      for (auto j : let.v.of(i)) used[j] = true;
      for (auto j : let.w.of(i)) used[j] = true;
    }
    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      if (!used[i]) continue;
      EXPECT_NEAR(u[i * eq_len], expected[i * eq_len], 1e-9)
          << morton::to_string(let.nodes[i].key) << " rank " << ctx.rank();
      EXPECT_NEAR(u[i * eq_len + 1], expected[i * eq_len + 1], 1e-9);
    }
  });
}

TEST(Reduce, HypercubeMatchesReferenceP2) {
  check_reduce_mode(ReduceMode::kHypercube, 2);
}
TEST(Reduce, HypercubeMatchesReferenceP4) {
  check_reduce_mode(ReduceMode::kHypercube, 4);
}
TEST(Reduce, HypercubeMatchesReferenceP8) {
  check_reduce_mode(ReduceMode::kHypercube, 8);
}
TEST(Reduce, OwnerMatchesReferenceP4) {
  check_reduce_mode(ReduceMode::kOwner, 4);
}
TEST(Reduce, OwnerMatchesReferenceP6NonPow2) {
  check_reduce_mode(ReduceMode::kOwner, 6);
}

TEST(Reduce, HypercubeRejectsNonPowerOfTwo) {
  comm::Runtime::run(1, [](comm::RankCtx&) {});  // warm-up no-op
  EXPECT_THROW(check_reduce_mode(ReduceMode::kHypercube, 3), CheckFailure);
}

// ---------------------------------------------------------------------
// End-to-end FMM vs direct summation
// ---------------------------------------------------------------------

struct E2eCase {
  const char* kernel;
  Distribution dist;
  int surface_n;
  int q;
  int p;
  M2lMode m2l;
  double tol;
};

void run_e2e(const E2eCase& cse, std::uint64_t n_points,
             bool balance = true) {
  auto kernel = kernels::make_kernel(cse.kernel);
  FmmOptions opts;
  opts.surface_n = cse.surface_n;
  opts.max_points_per_leaf = cse.q;
  opts.m2l = cse.m2l;
  opts.load_balance = balance;
  if ((cse.p & (cse.p - 1)) != 0) opts.reduce = ReduceMode::kOwner;
  const Tables tables(*kernel, opts);

  comm::Runtime::run(cse.p, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(cse.dist, n_points, ctx.rank(), cse.p,
                                       kernel->source_dim(), 17);
    const auto my_points = pts;  // keep a copy for the reference

    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    auto result = fmm.evaluate();

    // Exact potentials for the originally generated points.
    const auto exact = direct_reference(ctx.comm, *kernel, my_points);

    // Our result is keyed by gid; the owned set differs from the
    // generated set, so gather (gid, potential) pairs and pick ours.
    const int td = kernel->target_dim();
    struct GP {
      std::uint64_t gid;
      double v[3];
    };
    std::vector<GP> mine(result.gids.size());
    for (std::size_t i = 0; i < result.gids.size(); ++i) {
      mine[i].gid = result.gids[i];
      for (int c = 0; c < td; ++c)
        mine[i].v[c] = result.potentials[i * td + c];
    }
    auto all = ctx.comm.allgatherv_concat(std::span<const GP>(mine));
    std::unordered_map<std::uint64_t, const GP*> by_gid;
    for (const GP& g : all) by_gid.emplace(g.gid, &g);

    std::vector<double> approx(exact.size());
    for (std::size_t i = 0; i < my_points.size(); ++i) {
      auto it = by_gid.find(my_points[i].gid);
      ASSERT_NE(it, by_gid.end()) << "missing potential for gid "
                                  << my_points[i].gid;
      for (int c = 0; c < td; ++c)
        approx[i * td + c] = it->second->v[c];
    }
    const double err = rel_l2_error(approx, exact);
    EXPECT_LT(err, cse.tol) << cse.kernel << " p=" << cse.p
                            << " n=" << cse.surface_n << " q=" << cse.q;
  });
}

TEST(Fmm, LaplaceUniformSequentialMedium) {
  run_e2e({"laplace", Distribution::kUniform, 6, 40, 1, M2lMode::kFft, 1e-4},
          3000);
}

TEST(Fmm, LaplaceUniformSequentialLowAccuracy) {
  run_e2e({"laplace", Distribution::kUniform, 4, 40, 1, M2lMode::kFft, 5e-3},
          3000);
}

TEST(Fmm, LaplaceNonuniformSequential) {
  run_e2e({"laplace", Distribution::kEllipsoid, 6, 30, 1, M2lMode::kFft, 1e-4},
          2500);
}

TEST(Fmm, LaplaceDenseM2LMatchesAccuracy) {
  run_e2e({"laplace", Distribution::kUniform, 4, 40, 1, M2lMode::kDense, 5e-3},
          2000);
}

TEST(Fmm, LaplaceParallel4Uniform) {
  run_e2e({"laplace", Distribution::kUniform, 6, 30, 4, M2lMode::kFft, 1e-4},
          3000);
}

TEST(Fmm, LaplaceParallel4Nonuniform) {
  run_e2e({"laplace", Distribution::kEllipsoid, 6, 20, 4, M2lMode::kFft, 1e-4},
          2500);
}

TEST(Fmm, LaplaceParallel8DeepTree) {
  run_e2e({"laplace", Distribution::kEllipsoid, 4, 8, 8, M2lMode::kFft, 5e-3},
          1500);
}

TEST(Fmm, StokesSequential) {
  run_e2e({"stokes", Distribution::kUniform, 4, 40, 1, M2lMode::kFft, 5e-3},
          1500);
}

TEST(Fmm, StokesParallel4) {
  run_e2e({"stokes", Distribution::kEllipsoid, 4, 25, 4, M2lMode::kFft, 5e-3},
          1200);
}

TEST(Fmm, YukawaNonHomogeneousKernel) {
  run_e2e({"yukawa", Distribution::kUniform, 6, 40, 2, M2lMode::kFft, 1e-4},
          2000);
}

TEST(Fmm, RegularizedStokesNonHomogeneousVectorKernel) {
  // Non-homogeneous AND vector-valued: per-level tables with 3
  // components per surface point. The mollified self-interaction is
  // kept by both the FMM's U-list and the direct reference.
  run_e2e({"stokes-reg", Distribution::kUniform, 4, 40, 2, M2lMode::kFft,
           5e-3},
          1200);
}

TEST(Fmm, OwnerReduceNonPowerOfTwoRanks) {
  run_e2e({"laplace", Distribution::kUniform, 4, 30, 3, M2lMode::kFft, 5e-3},
          1500);
}

TEST(Fmm, NoLoadBalanceStillCorrect) {
  run_e2e({"laplace", Distribution::kEllipsoid, 4, 20, 4, M2lMode::kFft, 5e-3},
          1500, /*balance=*/false);
}

TEST(Fmm, HigherOrderIsMoreAccurate) {
  // Sweep surface_n and verify the error drops monotonically.
  kernels::LaplaceKernel kernel;
  std::vector<double> errs;
  for (int n : {4, 6, 8}) {
    FmmOptions opts;
    opts.surface_n = n;
    opts.max_points_per_leaf = 40;
    const Tables tables(kernel, opts);
    comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
      auto pts = octree::generate_points(Distribution::kUniform, 2000, 0, 1, 1,
                                         23);
      const auto my_points = pts;
      ParallelFmm fmm(ctx, tables);
      fmm.setup(std::move(pts));
      auto result = fmm.evaluate();
      const auto exact = direct_reference(ctx.comm, kernel, my_points);
      std::vector<double> approx(exact.size());
      std::unordered_map<std::uint64_t, double> by_gid;
      for (std::size_t i = 0; i < result.gids.size(); ++i)
        by_gid[result.gids[i]] = result.potentials[i];
      for (std::size_t i = 0; i < my_points.size(); ++i)
        approx[i] = by_gid.at(my_points[i].gid);
      errs.push_back(rel_l2_error(approx, exact));
    });
  }
  EXPECT_LT(errs[1], errs[0]);
  EXPECT_LT(errs[2], errs[1]);
  EXPECT_LT(errs[2], 1e-5);
}

TEST(Fmm, RepeatedEvaluationWithNewDensities) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 6;
  opts.max_points_per_leaf = 30;
  const Tables tables(kernel, opts);
  comm::Runtime::run(2, [&](comm::RankCtx& ctx) {
    auto pts =
        octree::generate_points(Distribution::kUniform, 1500, ctx.rank(), 2, 1,
                                31);
    auto my_points = pts;
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    (void)fmm.evaluate();

    // Second evaluation with doubled densities must double the result.
    auto first = fmm.evaluate();
    std::vector<std::uint64_t> gids;
    std::vector<double> newden;
    for (const auto& node : fmm.let().nodes) {
      if (!node.owned) continue;
      for (const auto& pt : fmm.let().points_of(node)) {
        gids.push_back(pt.gid);
        newden.push_back(pt.den[0] * 2.0);
      }
    }
    fmm.set_densities(gids, newden);
    auto second = fmm.evaluate();
    ASSERT_EQ(first.potentials.size(), second.potentials.size());
    for (std::size_t i = 0; i < first.potentials.size(); ++i)
      EXPECT_NEAR(second.potentials[i], 2.0 * first.potentials[i],
                  1e-9 * std::abs(first.potentials[i]) + 1e-12);
  });
}

/// (gid, density) pairs covering every point this rank owns, in LET
/// iteration order.
void collect_owned_densities(const ParallelFmm& fmm, int sdim,
                             std::vector<std::uint64_t>* gids,
                             std::vector<double>* den) {
  for (const auto& node : fmm.let().nodes) {
    if (!node.owned) continue;
    for (const auto& pt : fmm.let().points_of(node)) {
      gids->push_back(pt.gid);
      for (int c = 0; c < sdim; ++c) den->push_back(pt.den[c]);
    }
  }
}

TEST(Fmm, SetDensitiesRejectsBadGidSets) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 30;
  const Tables tables(kernel, opts);
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    auto pts =
        octree::generate_points(Distribution::kUniform, 400, 0, 1, 1, 7);
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));

    std::vector<std::uint64_t> gids;
    std::vector<double> den;
    collect_owned_densities(fmm, 1, &gids, &den);
    ASSERT_GE(gids.size(), 2u);

    // Duplicate gid in the input.
    auto dup_gids = gids;
    auto dup_den = den;
    dup_gids.push_back(gids.front());
    dup_den.push_back(den.front());
    EXPECT_THROW(fmm.set_densities(dup_gids, dup_den), CheckFailure);

    // A gid this rank does not own (full cover plus a stranger).
    auto extra_gids = gids;
    auto extra_den = den;
    extra_gids.push_back(1u << 30);  // gids are < n_global = 400
    extra_den.push_back(0.0);
    EXPECT_THROW(fmm.set_densities(extra_gids, extra_den), CheckFailure);

    // Partial coverage: an owned gid is missing from the input.
    auto part_gids = gids;
    auto part_den = den;
    part_gids.pop_back();
    part_den.pop_back();
    EXPECT_THROW(fmm.set_densities(part_gids, part_den), CheckFailure);

    // Mismatched density count for the gid list.
    auto short_den = den;
    short_den.pop_back();
    EXPECT_THROW(fmm.set_densities(gids, short_den), CheckFailure);

    // A valid full cover still succeeds after the rejected calls, and
    // evaluation reflects it (rejections must not corrupt state).
    auto first = fmm.evaluate();
    std::vector<double> doubled(den.size());
    for (std::size_t i = 0; i < den.size(); ++i) doubled[i] = 2.0 * den[i];
    fmm.set_densities(gids, doubled);
    auto second = fmm.evaluate();
    ASSERT_EQ(first.potentials.size(), second.potentials.size());
    for (std::size_t i = 0; i < first.potentials.size(); ++i)
      EXPECT_NEAR(second.potentials[i], 2.0 * first.potentials[i],
                  1e-9 * std::abs(first.potentials[i]) + 1e-12);
  });
}

TEST(Fmm, RepeatedSetupOnSameInstanceMatchesFreshInstance) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 30;
  opts.flow_trace = true;  // exercise flow-recorder lifetime across setups
  const Tables tables(kernel, opts);
  const int p = 2;

  std::mutex mu;
  std::map<int, std::map<std::uint64_t, double>> reused, fresh;
  auto reports = comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    auto pts_a = octree::generate_points(Distribution::kUniform, 900,
                                         ctx.rank(), p, 1, 11);
    auto pts_b = octree::generate_points(Distribution::kEllipsoid, 900,
                                         ctx.rank(), p, 1, 12);
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts_a));
    (void)fmm.evaluate();
    fmm.setup(std::move(pts_b));  // second setup on the same instance
    auto out = fmm.evaluate();
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = 0; i < out.gids.size(); ++i)
      reused[ctx.rank()][out.gids[i]] = out.potentials[i];
  });
  comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    auto pts_b = octree::generate_points(Distribution::kEllipsoid, 900,
                                         ctx.rank(), p, 1, 12);
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts_b));
    auto out = fmm.evaluate();
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = 0; i < out.gids.size(); ++i)
      fresh[ctx.rank()][out.gids[i]] = out.potentials[i];
  });

  // The second setup must leave no residue: bitwise-identical output to
  // a fresh instance fed the same points.
  ASSERT_EQ(reused.size(), fresh.size());
  for (const auto& [rank, by_gid] : reused) {
    ASSERT_EQ(by_gid.size(), fresh.at(rank).size());
    for (const auto& [gid, pot] : by_gid)
      EXPECT_EQ(pot, fresh.at(rank).at(gid)) << "rank " << rank << " gid "
                                             << gid;
  }
  // mem.let.* gauges must reflect the latest setup, not the first.
  for (const auto& rep : reports) {
    const auto& g = rep.obs.gauges;
    ASSERT_TRUE(g.count("mem.let.total_bytes"));
    ASSERT_TRUE(g.count("mem.let.ghost_bytes"));
    EXPECT_GT(g.at("mem.let.total_bytes"), 0.0);
    EXPECT_GE(g.at("mem.let.total_bytes"), g.at("mem.let.ghost_bytes"));
  }
}

/// Sequential e2e accuracy check against direct summation with the
/// given (possibly cache-loaded) tables.
void run_e2e_with_tables(const Tables& tables, std::uint64_t n) {
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(Distribution::kUniform, n, 0, 1,
                                       tables.sdim(), 17);
    const auto mine = pts;
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    auto result = fmm.evaluate();
    const auto exact = direct_reference(ctx.comm, tables.kernel(), mine);
    std::unordered_map<std::uint64_t, double> by_gid;
    for (std::size_t i = 0; i < result.gids.size(); ++i)
      by_gid[result.gids[i]] = result.potentials[i];
    std::vector<double> approx(mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i)
      approx[i] = by_gid.at(mine[i].gid);
    EXPECT_LT(rel_l2_error(approx, exact), 5e-3);
  });
}

TEST(TablesCache, SaveLoadRoundTripsBitwise) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  const Tables a(kernel, opts);
  // Populate a level and one spectrum.
  const LevelOps ops_a = a.at(0);
  const auto spec_a = a.m2l_spectra(0, offset_index(2, -1, 0));
  const std::string path = ::testing::TempDir() + "/pkifmm_tables.bin";
  EXPECT_GT(a.save_cache(path), 0u);

  Tables b(kernel, opts);
  ASSERT_TRUE(b.load_cache(path));
  const LevelOps ops_b = b.at(0);
  ASSERT_EQ(ops_b.uc2ue->rows(), ops_a.uc2ue->rows());
  for (std::size_t i = 0; i < ops_a.uc2ue->rows(); ++i)
    for (std::size_t j = 0; j < ops_a.uc2ue->cols(); ++j)
      EXPECT_EQ((*ops_b.uc2ue)(i, j), (*ops_a.uc2ue)(i, j));
  const auto spec_b = b.m2l_spectra(0, offset_index(2, -1, 0));
  ASSERT_EQ(spec_b.size(), spec_a.size());
  for (std::size_t i = 0; i < spec_a.size(); ++i)
    EXPECT_EQ(spec_b[i], spec_a[i]);
}

TEST(TablesCache, LoadedTablesGiveAccurateFmm) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 40;
  const std::string path = ::testing::TempDir() + "/pkifmm_tables2.bin";
  {
    const Tables t(kernel, opts);
    (void)t.at(0);
    t.save_cache(path);
  }
  Tables t(kernel, opts);
  ASSERT_TRUE(t.load_cache(path));
  run_e2e_with_tables(t, 1500);
}

TEST(TablesCache, RejectsMismatchedGeometry) {
  kernels::LaplaceKernel kernel;
  FmmOptions a4;
  a4.surface_n = 4;
  const Tables t4(kernel, a4);
  const std::string path = ::testing::TempDir() + "/pkifmm_tables3.bin";
  t4.save_cache(path);

  FmmOptions a6;
  a6.surface_n = 6;
  Tables t6(kernel, a6);
  EXPECT_FALSE(t6.load_cache(path));

  kernels::StokesKernel stokes;
  Tables ts(stokes, a4);
  EXPECT_FALSE(ts.load_cache(path));
}

TEST(TablesCache, MissingOrCorruptFileReturnsFalse) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  Tables t(kernel, opts);
  EXPECT_FALSE(t.load_cache("/nonexistent/path/tables.bin"));
  const std::string path = ::testing::TempDir() + "/pkifmm_garbage.bin";
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a table cache at all";
  }
  EXPECT_FALSE(t.load_cache(path));
}

TEST(Fmm, FlopAndTimePhasesAreRecorded) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 30;
  const Tables tables(kernel, opts);
  auto reports = comm::Runtime::run(2, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(Distribution::kUniform, 1000,
                                       ctx.rank(), 2, 1, 37);
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    (void)fmm.evaluate();
  });
  for (const auto& rep : reports) {
    EXPECT_GT(rep.flop_phases.at("eval.uli"), 0u);
    EXPECT_GT(rep.flop_phases.at("eval.vli"), 0u);
    EXPECT_GT(rep.flop_phases.at("eval.s2u"), 0u);
    EXPECT_GT(rep.time_phases.at("setup.tree"), 0.0);
    EXPECT_GT(rep.time_phases.at("eval.uli"), 0.0);
    EXPECT_GT(rep.cost.get("eval.comm").msgs_sent, 0u);
  }
}

}  // namespace
}  // namespace pkifmm::core
