#include <gtest/gtest.h>

#include <cmath>

#include "la/matrix.hpp"
#include "la/svd.hpp"
#include "util/rng.hpp"

namespace pkifmm::la {
namespace {

Matrix random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  return a;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

TEST(Matrix, TransposeRoundTrip) {
  const Matrix a = random_matrix(7, 4, 1);
  EXPECT_EQ(max_abs_diff(a.transposed().transposed(), a), 0.0);
}

TEST(Matrix, GemvMatchesManual) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const double x[] = {1.0, -1.0, 2.0};
  double y[2] = {0.0, 0.0};
  gemv(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 11.0);
}

TEST(Matrix, GemvAccAccumulatesWithAlpha) {
  Matrix a = identity(3);
  const double x[] = {1.0, 2.0, 3.0};
  double y[3] = {10.0, 10.0, 10.0};
  gemv_acc(a, x, y, 2.0);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 16.0);
}

TEST(Matrix, GemmAssociatesWithIdentity) {
  const Matrix a = random_matrix(5, 5, 2);
  EXPECT_LT(max_abs_diff(gemm(a, identity(5)), a), 1e-14);
  EXPECT_LT(max_abs_diff(gemm(identity(5), a), a), 1e-14);
}

TEST(Matrix, GemmTnMatchesExplicitTranspose) {
  const Matrix a = random_matrix(6, 4, 3);
  const Matrix b = random_matrix(6, 5, 4);
  EXPECT_LT(max_abs_diff(gemm_tn(a, b), gemm(a.transposed(), b)), 1e-13);
}

TEST(Matrix, GemvFlopsFormula) {
  const Matrix a(10, 20);
  EXPECT_EQ(gemv_flops(a), 400u);
}

TEST(Matrix, GemmAccMatchesColumnwiseGemvAcc) {
  // gemm_acc over a node-major batch must agree with applying gemv_acc
  // to every column; sizes straddle the internal k/j tile boundaries.
  const std::size_t m = 152, n = 152, nb = 150;
  const Matrix a = random_matrix(m, n, 31);
  Rng rng(32);
  std::vector<double> b(n * nb), c(m * nb, 0.5), ref(m * nb, 0.5);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const double alpha = 0.75;

  gemm_acc(a, b, c, nb, alpha);

  std::vector<double> x(n), y(m);
  for (std::size_t j = 0; j < nb; ++j) {
    for (std::size_t r = 0; r < n; ++r) x[r] = b[r * nb + j];
    std::fill(y.begin(), y.end(), 0.0);
    gemv_acc(a, x, y, alpha);
    for (std::size_t r = 0; r < m; ++r) ref[r * nb + j] += y[r];
  }
  double err = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i)
    err = std::max(err, std::abs(c[i] - ref[i]));
  EXPECT_LT(err, 1e-12);
}

TEST(Matrix, GemmAccEmptyBatchIsNoOp) {
  const Matrix a = random_matrix(4, 4, 33);
  std::vector<double> c;
  gemm_acc(a, {}, c, 0);  // must not touch memory or throw
}

TEST(Matrix, GemmFlopsCountsBatchColumns) {
  const Matrix a(10, 20);
  EXPECT_EQ(gemm_flops(a, 7), 7u * gemv_flops(a));
}

TEST(Matrix, GatherScatterColumnsRoundTrip) {
  // Node-major storage (slot-strided) -> batch columns -> back.
  const std::size_t len = 5, nslots = 8;
  Rng rng(34);
  std::vector<double> storage(len * nslots);
  for (auto& v : storage) v = rng.uniform(-1.0, 1.0);
  const std::vector<std::int32_t> slots = {6, 0, 3};

  std::vector<double> batch(len * slots.size());
  gather_columns(storage, slots, len, batch);
  for (std::size_t j = 0; j < slots.size(); ++j)
    for (std::size_t r = 0; r < len; ++r)
      EXPECT_EQ(batch[r * slots.size() + j],
                storage[std::size_t(slots[j]) * len + r]);

  auto acc = storage;
  scatter_columns_acc(batch, slots, len, acc);
  for (std::size_t s = 0; s < nslots; ++s) {
    const bool picked = s == 6 || s == 0 || s == 3;
    for (std::size_t r = 0; r < len; ++r)
      EXPECT_DOUBLE_EQ(acc[s * len + r],
                       (picked ? 2.0 : 1.0) * storage[s * len + r]);
  }
}

TEST(Matrix, ScatterColumnsAccDuplicateSlotsAccumulate) {
  const std::size_t len = 3;
  const std::vector<std::int32_t> slots = {1, 1};
  const std::vector<double> batch = {1.0, 10.0,   // row 0 of both columns
                                     2.0, 20.0,   // row 1
                                     3.0, 30.0};  // row 2
  std::vector<double> dst(len * 2, 0.0);
  scatter_columns_acc(batch, slots, len, dst);
  EXPECT_DOUBLE_EQ(dst[3], 11.0);
  EXPECT_DOUBLE_EQ(dst[4], 22.0);
  EXPECT_DOUBLE_EQ(dst[5], 33.0);
}

TEST(Svd, ReconstructsSquareMatrix) {
  const Matrix a = random_matrix(12, 12, 5);
  const Svd s = svd(a);
  // A = U diag(sigma) V^T
  Matrix us = s.u;
  for (std::size_t i = 0; i < us.rows(); ++i)
    for (std::size_t j = 0; j < us.cols(); ++j) us(i, j) *= s.sigma[j];
  EXPECT_LT(max_abs_diff(gemm(us, s.v.transposed()), a), 1e-10);
}

TEST(Svd, ReconstructsTallMatrix) {
  const Matrix a = random_matrix(20, 8, 6);
  const Svd s = svd(a);
  Matrix us = s.u;
  for (std::size_t i = 0; i < us.rows(); ++i)
    for (std::size_t j = 0; j < us.cols(); ++j) us(i, j) *= s.sigma[j];
  EXPECT_LT(max_abs_diff(gemm(us, s.v.transposed()), a), 1e-10);
}

TEST(Svd, ReconstructsWideMatrix) {
  const Matrix a = random_matrix(8, 20, 7);
  const Svd s = svd(a);
  Matrix us = s.u;
  for (std::size_t i = 0; i < us.rows(); ++i)
    for (std::size_t j = 0; j < us.cols(); ++j) us(i, j) *= s.sigma[j];
  EXPECT_LT(max_abs_diff(gemm(us, s.v.transposed()), a), 1e-10);
}

TEST(Svd, SingularValuesSortedDescending) {
  const Svd s = svd(random_matrix(15, 10, 8));
  for (std::size_t i = 0; i + 1 < s.sigma.size(); ++i)
    EXPECT_GE(s.sigma[i], s.sigma[i + 1]);
}

TEST(Svd, OrthonormalFactors) {
  const Svd s = svd(random_matrix(14, 9, 9));
  const Matrix utu = gemm_tn(s.u, s.u);
  const Matrix vtv = gemm_tn(s.v, s.v);
  EXPECT_LT(max_abs_diff(utu, identity(9)), 1e-10);
  EXPECT_LT(max_abs_diff(vtv, identity(9)), 1e-10);
}

TEST(Svd, DiagonalMatrixSingularValues) {
  Matrix a(3, 3);
  a(0, 0) = 3.0;
  a(1, 1) = -5.0;  // singular value is 5
  a(2, 2) = 1.0;
  const Svd s = svd(a);
  EXPECT_NEAR(s.sigma[0], 5.0, 1e-12);
  EXPECT_NEAR(s.sigma[1], 3.0, 1e-12);
  EXPECT_NEAR(s.sigma[2], 1.0, 1e-12);
}

TEST(Pinv, InvertsWellConditionedSquare) {
  Matrix a = random_matrix(10, 10, 10);
  for (std::size_t i = 0; i < 10; ++i) a(i, i) += 5.0;  // well-conditioned
  const Matrix p = pinv(a);
  EXPECT_LT(max_abs_diff(gemm(p, a), identity(10)), 1e-9);
}

TEST(Pinv, LeastSquaresPropertyTall) {
  // For tall full-rank A, pinv(A) * A = I.
  const Matrix a = random_matrix(25, 7, 11);
  const Matrix p = pinv(a);
  EXPECT_LT(max_abs_diff(gemm(p, a), identity(7)), 1e-9);
}

TEST(Pinv, MoorePenroseConditions) {
  const Matrix a = random_matrix(9, 6, 12);
  const Matrix p = pinv(a);
  // A p A = A and p A p = p.
  EXPECT_LT(max_abs_diff(gemm(gemm(a, p), a), a), 1e-9);
  EXPECT_LT(max_abs_diff(gemm(gemm(p, a), p), p), 1e-9);
}

TEST(Pinv, TruncatesTinySingularValues) {
  // Rank-1 matrix: pinv must not blow up.
  Matrix a(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = (i + 1.0) * (j + 1.0);
  const Matrix p = pinv(a, 1e-10);
  EXPECT_LT(p.frobenius_norm(), 1.0);  // 1/sigma_1 of this matrix is small
  EXPECT_LT(max_abs_diff(gemm(gemm(a, p), a), a), 1e-9);
}

TEST(Svd, IdentityHasUnitSingularValues) {
  const Svd s = svd(identity(6));
  for (double v : s.sigma) EXPECT_NEAR(v, 1.0, 1e-13);
}

TEST(Pinv, OrthogonalMatrixInverseIsTranspose) {
  // Build an orthogonal Q from the SVD of a random matrix.
  const Svd s = svd(random_matrix(8, 8, 21));
  const Matrix& q = s.u;
  const Matrix p = pinv(q);
  EXPECT_LT(max_abs_diff(p, q.transposed()), 1e-10);
}

TEST(Pinv, ScalesInverselyWithMatrixScale) {
  Matrix a = random_matrix(6, 6, 22);
  for (std::size_t i = 0; i < 6; ++i) a(i, i) += 4.0;
  Matrix a2 = a;
  a2.scale(8.0);
  const Matrix p = pinv(a), p2 = pinv(a2);
  Matrix p_scaled = p;
  p_scaled.scale(1.0 / 8.0);
  EXPECT_LT(max_abs_diff(p2, p_scaled), 1e-10);
}

TEST(Pinv, IllConditionedSolveStaysBounded) {
  // Hilbert-like matrix: classic ill-conditioning.
  const std::size_t n = 12;
  Matrix h(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      h(i, j) = 1.0 / static_cast<double>(i + j + 1);
  const Matrix p = pinv(h, 1e-12);
  // A pinv(A) A = A still holds to good accuracy under truncation.
  EXPECT_LT(max_abs_diff(gemm(gemm(h, p), h), h), 1e-6);
}

}  // namespace
}  // namespace pkifmm::la
