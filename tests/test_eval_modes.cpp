/// Property test for the two evaluation engines (see DESIGN.md
/// "Batched evaluation engine"): for every kernel/distribution pair the
/// kScalar reference and the kBatched level/operator-blocked engine
/// must produce the same potentials to rounding (1e-12 relative) AND
/// account the exact same model flops into every eval.* phase — the
/// batched engine is a reordering of the same arithmetic, not a
/// different algorithm.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/fmm.hpp"
#include "kernels/kernel.hpp"
#include "simd/simd.hpp"
#include "util/stats.hpp"

namespace pkifmm::core {
namespace {

using octree::Distribution;

struct ModeRun {
  std::map<std::uint64_t, std::vector<double>> pot;  // gid -> components
  std::vector<std::map<std::string, std::uint64_t>> eval_flops;  // per rank
};

struct Case {
  std::string kernel;
  Distribution dist;
  bool fft_vlist;
};

ModeRun run_mode(const kernels::Kernel& kernel, const Case& c, int p,
                 EvalMode mode) {
  FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 20;
  opts.m2l = c.fft_vlist ? M2lMode::kFft : M2lMode::kDense;
  opts.eval_mode = mode;
  const Tables tables(kernel, opts);

  ModeRun out;
  out.eval_flops.resize(p);
  std::mutex mu;
  auto reports = comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(c.dist, 900, ctx.rank(), p,
                                       tables.sdim(), 91);
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    auto res = fmm.evaluate();
    const int td = tables.tdim();
    std::lock_guard<std::mutex> lock(mu);
    for (std::size_t i = 0; i < res.gids.size(); ++i)
      out.pot[res.gids[i]] =
          std::vector<double>(res.potentials.begin() + i * td,
                              res.potentials.begin() + (i + 1) * td);
  });
  for (int r = 0; r < p; ++r)
    for (const auto& [phase, flops] : reports[r].flop_phases)
      if (phase.rfind("eval.", 0) == 0) out.eval_flops[r][phase] = flops;
  return out;
}

class EvalModeParity : public ::testing::TestWithParam<Case> {};

TEST_P(EvalModeParity, BatchedMatchesScalar) {
  const Case c = GetParam();
  auto kernel = kernels::make_kernel(c.kernel);
  const int p = 2;

  const ModeRun scalar = run_mode(*kernel, c, p, EvalMode::kScalar);
  const ModeRun batched = run_mode(*kernel, c, p, EvalMode::kBatched);

  // Same owned targets on both runs (the tree build is deterministic).
  ASSERT_EQ(scalar.pot.size(), batched.pot.size());
  ASSERT_GT(scalar.pot.size(), 0u);

  std::vector<double> a, b;
  for (const auto& [gid, comps] : scalar.pot) {
    const auto it = batched.pot.find(gid);
    ASSERT_NE(it, batched.pot.end()) << "gid " << gid;
    a.insert(a.end(), comps.begin(), comps.end());
    b.insert(b.end(), it->second.begin(), it->second.end());
  }
  EXPECT_LT(rel_l2_error(b, a), 1e-12);

  // Identical model-flop accounting, phase by phase and rank by rank.
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(scalar.eval_flops[r].size(), batched.eval_flops[r].size())
        << "rank " << r;
    for (const auto& [phase, flops] : scalar.eval_flops[r]) {
      const auto it = batched.eval_flops[r].find(phase);
      ASSERT_NE(it, batched.eval_flops[r].end())
          << "rank " << r << " phase " << phase;
      EXPECT_EQ(flops, it->second) << "rank " << r << " phase " << phase;
    }
  }
}

/// Forced-tier sweep of the full pipeline: every available SIMD tier
/// must reproduce the scalar tier's potentials with EXACTLY equal
/// per-phase model flops (tiers change instruction selection, never
/// the flop model), in both eval modes. The per-operation cross-tier
/// contract is 1e-12 (asserted in test_simd); end-to-end the
/// translation chain amplifies those last-bit FMA differences by a
/// small condition factor (observed ~1.1e-12 for Stokes), so the
/// pipeline bound carries a 4x allowance.
TEST(EvalSimdTierParity, AllTiersMatchScalarTier) {
  struct TierGuard {
    ~TierGuard() { simd::clear_forced_tier(); }
  } guard;

  const int p = 2;
  for (const Case& c : {Case{"stokes", Distribution::kUniform, true},
                        Case{"laplace", Distribution::kEllipsoid, true}}) {
    auto kernel = kernels::make_kernel(c.kernel);
    for (const EvalMode mode : {EvalMode::kScalar, EvalMode::kBatched}) {
      simd::force_tier(simd::Tier::kScalar);
      const ModeRun ref = run_mode(*kernel, c, p, mode);
      ASSERT_GT(ref.pot.size(), 0u);

      for (const simd::Tier t : simd::available_tiers()) {
        simd::force_tier(t);
        const ModeRun run = run_mode(*kernel, c, p, mode);

        ASSERT_EQ(ref.pot.size(), run.pot.size()) << simd::tier_name(t);
        std::vector<double> a, b;
        for (const auto& [gid, comps] : ref.pot) {
          const auto it = run.pot.find(gid);
          ASSERT_NE(it, run.pot.end()) << "gid " << gid;
          a.insert(a.end(), comps.begin(), comps.end());
          b.insert(b.end(), it->second.begin(), it->second.end());
        }
        EXPECT_LT(rel_l2_error(b, a), 4e-12)
            << c.kernel << " tier " << simd::tier_name(t);

        for (int r = 0; r < p; ++r)
          EXPECT_EQ(ref.eval_flops[r], run.eval_flops[r])
              << c.kernel << " rank " << r << " tier " << simd::tier_name(t);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndDistributions, EvalModeParity,
    ::testing::Values(
        Case{"laplace", Distribution::kUniform, true},
        Case{"laplace", Distribution::kEllipsoid, true},
        Case{"stokes", Distribution::kUniform, true},
        Case{"stokes", Distribution::kEllipsoid, true},
        Case{"yukawa", Distribution::kUniform, true},
        Case{"yukawa", Distribution::kEllipsoid, true},
        // Dense (non-FFT) M2L ablation path.
        Case{"laplace", Distribution::kEllipsoid, false}),
    [](const ::testing::TestParamInfo<Case>& info) {
      const Case& c = info.param;
      std::string name = c.kernel;
      name += c.dist == Distribution::kUniform ? "Uniform" : "Ellipsoid";
      name += c.fft_vlist ? "Fft" : "Dense";
      return name;
    });

}  // namespace
}  // namespace pkifmm::core
