#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>

#include "fft/fft.hpp"
#include "util/rng.hpp"

namespace pkifmm::fft {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& x : v) x = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return v;
}

double max_err(std::span<const Complex> a, std::span<const Complex> b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

/// O(n^2) reference DFT.
std::vector<Complex> dft(std::span<const Complex> a, bool inverse) {
  const std::size_t n = a.size();
  std::vector<Complex> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = sign * 2.0 * std::numbers::pi *
                         static_cast<double>(k * j) / static_cast<double>(n);
      acc += a[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

TEST(Fft, SizeOneIsIdentity) {
  std::vector<Complex> a = {Complex(3.0, -2.0)};
  fft_inplace(a, false);
  EXPECT_EQ(a[0], Complex(3.0, -2.0));
}

TEST(Fft, MatchesReferenceDft) {
  for (std::size_t n : {2u, 4u, 8u, 16u, 64u}) {
    auto a = random_signal(n, n);
    auto ref = dft(a, false);
    fft_inplace(a, false);
    EXPECT_LT(max_err(a, ref), 1e-10) << "n=" << n;
  }
}

TEST(Fft, InverseMatchesReferenceDft) {
  auto a = random_signal(32, 77);
  auto ref = dft(a, true);
  fft_inplace(a, true);
  EXPECT_LT(max_err(a, ref), 1e-10);
}

TEST(Fft, RoundTripIsIdentity) {
  for (std::size_t n : {8u, 128u, 1024u}) {
    auto a = random_signal(n, 100 + n);
    auto orig = a;
    fft_inplace(a, false);
    fft_inplace(a, true);
    EXPECT_LT(max_err(a, orig), 1e-11) << "n=" << n;
  }
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> a(12);
  EXPECT_ANY_THROW(fft_inplace(a, false));
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> a(16, Complex(0.0, 0.0));
  a[0] = 1.0;
  fft_inplace(a, false);
  for (const auto& x : a) EXPECT_NEAR(std::abs(x - Complex(1.0, 0.0)), 0.0, 1e-12);
}

TEST(Fft, LinearityHolds) {
  auto a = random_signal(64, 1);
  auto b = random_signal(64, 2);
  std::vector<Complex> sum(64);
  for (int i = 0; i < 64; ++i) sum[i] = 2.0 * a[i] + 3.0 * b[i];
  fft_inplace(a, false);
  fft_inplace(b, false);
  fft_inplace(sum, false);
  for (int i = 0; i < 64; ++i)
    EXPECT_LT(std::abs(sum[i] - (2.0 * a[i] + 3.0 * b[i])), 1e-10);
}

TEST(Fft3d, RoundTrip) {
  Fft3d plan(8);
  auto vol = random_signal(plan.volume(), 9);
  auto orig = vol;
  plan.forward(vol);
  plan.inverse(vol);
  EXPECT_LT(max_err(vol, orig), 1e-11);
}

TEST(Fft3d, SeparableProductTransform) {
  // FFT of a separable function f(x,y,z) = gx(x) gy(y) gz(z) is the
  // tensor product of 1-D FFTs.
  const std::size_t n = 8;
  auto gx = random_signal(n, 11), gy = random_signal(n, 12),
       gz = random_signal(n, 13);
  Fft3d plan(n);
  std::vector<Complex> vol(plan.volume());
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      for (std::size_t x = 0; x < n; ++x)
        vol[(z * n + y) * n + x] = gx[x] * gy[y] * gz[z];
  plan.forward(vol);
  auto fx = gx, fy = gy, fz = gz;
  fft_inplace(fx, false);
  fft_inplace(fy, false);
  fft_inplace(fz, false);
  double err = 0.0;
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      for (std::size_t x = 0; x < n; ++x)
        err = std::max(err, std::abs(vol[(z * n + y) * n + x] -
                                     fx[x] * fy[y] * fz[z]));
  EXPECT_LT(err, 1e-10);
}

TEST(Fft3d, CircularConvolutionViaFrequencyProduct) {
  // IFFT(FFT(f) .* FFT(g)) equals the circular convolution of f and g.
  const std::size_t n = 4;
  Fft3d plan(n);
  auto f = random_signal(plan.volume(), 21);
  auto g = random_signal(plan.volume(), 22);

  // Direct circular convolution.
  std::vector<Complex> direct(plan.volume(), Complex(0, 0));
  auto idx = [&](std::size_t x, std::size_t y, std::size_t z) {
    return (z * n + y) * n + x;
  };
  for (std::size_t az = 0; az < n; ++az)
    for (std::size_t ay = 0; ay < n; ++ay)
      for (std::size_t ax = 0; ax < n; ++ax)
        for (std::size_t bz = 0; bz < n; ++bz)
          for (std::size_t by = 0; by < n; ++by)
            for (std::size_t bx = 0; bx < n; ++bx)
              direct[idx(ax, ay, az)] +=
                  f[idx(bx, by, bz)] *
                  g[idx((ax - bx + n) % n, (ay - by + n) % n,
                        (az - bz + n) % n)];

  auto fh = f, gh = g;
  plan.forward(fh);
  plan.forward(gh);
  std::vector<Complex> prod(plan.volume(), Complex(0, 0));
  pointwise_mac(gh, fh, prod);
  plan.inverse(prod);
  EXPECT_LT(max_err(prod, direct), 1e-10);
}

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(7), 8u);
  EXPECT_EQ(next_pow2(8), 8u);
  EXPECT_EQ(next_pow2(11), 16u);
  EXPECT_EQ(next_pow2(15), 16u);
}

TEST(NextPow2, LargestPowerOfTwoIsFixpoint) {
  constexpr std::size_t kMaxPow2 =
      std::numeric_limits<std::size_t>::max() / 2 + 1;
  EXPECT_EQ(next_pow2(kMaxPow2), kMaxPow2);
  EXPECT_EQ(next_pow2(kMaxPow2 - 1), kMaxPow2);
}

TEST(NextPow2, RejectsUnrepresentableRequest) {
  // Above the top power of two the doubling loop used to overflow p to
  // zero and spin forever; it must throw instead.
  constexpr std::size_t kMaxPow2 =
      std::numeric_limits<std::size_t>::max() / 2 + 1;
  EXPECT_ANY_THROW(next_pow2(kMaxPow2 + 1));
  EXPECT_ANY_THROW(next_pow2(std::numeric_limits<std::size_t>::max()));
}

TEST(PointwiseMac, Accumulates) {
  std::vector<Complex> g = {Complex(1, 1), Complex(2, 0)};
  std::vector<Complex> f = {Complex(0, 1), Complex(3, 0)};
  std::vector<Complex> acc = {Complex(1, 0), Complex(0, 0)};
  pointwise_mac(g, f, acc);
  EXPECT_EQ(acc[0], Complex(1, 0) + Complex(1, 1) * Complex(0, 1));
  EXPECT_EQ(acc[1], Complex(6, 0));
}

TEST(PointwiseMacMany, MatchesRepeatedPointwiseMac) {
  const std::size_t n = 64, npairs = 5;
  const auto g = random_signal(n, 201);
  std::vector<std::vector<Complex>> fs, accs, ref;
  for (std::size_t p = 0; p < npairs; ++p) {
    fs.push_back(random_signal(n, 300 + p));
    accs.push_back(random_signal(n, 400 + p));
    ref.push_back(accs.back());
    pointwise_mac(g, fs.back(), ref.back());
  }
  std::vector<const Complex*> fptr;
  std::vector<Complex*> aptr;
  for (std::size_t p = 0; p < npairs; ++p) {
    fptr.push_back(fs[p].data());
    aptr.push_back(accs[p].data());
  }
  pointwise_mac_many(g, fptr, aptr);
  for (std::size_t p = 0; p < npairs; ++p)
    EXPECT_LT(max_err(accs[p], ref[p]), 1e-14) << "pair " << p;
}

TEST(PointwiseMacMany, WindowTouchesOnlyRange) {
  const std::size_t n = 32;
  const auto g = random_signal(n, 210);
  auto f = random_signal(n, 211);
  auto acc = random_signal(n, 212);
  const auto before = acc;
  const Complex* fp = f.data();
  Complex* ap = acc.data();
  const std::size_t begin = 8, end = 24;
  pointwise_mac_many(g, {&fp, 1}, {&ap, 1}, begin, end);
  for (std::size_t i = 0; i < n; ++i) {
    const Complex want = (i >= begin && i < end)
                             ? before[i] + g[i] * f[i]
                             : before[i];
    EXPECT_LT(std::abs(acc[i] - want), 1e-14) << i;
  }
}

TEST(PointwiseMacMany, RejectsWindowPastSpectrum) {
  // The old code clamped end to g.size(), silently truncating the
  // product; an out-of-range window is a caller bug and must throw.
  const std::size_t n = 16;
  const auto g = random_signal(n, 230);
  auto f = random_signal(n, 231);
  auto acc = random_signal(n, 232);
  const Complex* fp = f.data();
  Complex* ap = acc.data();
  EXPECT_ANY_THROW(pointwise_mac_many(g, {&fp, 1}, {&ap, 1}, 0, n + 1));
  EXPECT_ANY_THROW(pointwise_mac_many(g, {&fp, 1}, {&ap, 1}, 8, 4));
  // In-range windows (including empty and the npos default) are fine.
  EXPECT_NO_THROW(pointwise_mac_many(g, {&fp, 1}, {&ap, 1}, 4, 4));
  EXPECT_NO_THROW(pointwise_mac_many(g, {&fp, 1}, {&ap, 1}, 0, n));
  EXPECT_NO_THROW(pointwise_mac_many(g, {&fp, 1}, {&ap, 1}));
}

TEST(PointwiseMacChunked, MatchesPerEntryMac) {
  // Chunk-major layout: slot s's frequencies [q0, q0+c) live at
  // base + s*c. Each (fidx, aidx) entry is one translation applied to
  // one chunk; duplicates must accumulate.
  const std::size_t c = 16, nf = 6, na = 4;
  const auto g = random_signal(c, 220);
  const auto f = random_signal(c * nf, 221);
  auto acc = random_signal(c * na, 222);
  auto ref = acc;
  const std::vector<std::int32_t> fidx = {0, 5, 2, 5};
  const std::vector<std::int32_t> aidx = {3, 0, 3, 1};
  for (std::size_t e = 0; e < fidx.size(); ++e)
    for (std::size_t i = 0; i < c; ++i)
      ref[std::size_t(aidx[e]) * c + i] +=
          g[i] * f[std::size_t(fidx[e]) * c + i];
  pointwise_mac_chunked(g.data(), c, f.data(), acc.data(), fidx, aidx);
  EXPECT_LT(max_err(acc, ref), 1e-14);
}

TEST(Fft3d, TransformFlopsPositiveAndScales) {
  Fft3d a(8), b(16);
  EXPECT_GT(a.transform_flops(), 0u);
  EXPECT_GT(b.transform_flops(), a.transform_flops());
}

TEST(Fft, ParsevalIdentityHolds) {
  auto a = random_signal(256, 55);
  double time_energy = 0.0;
  for (const auto& x : a) time_energy += std::norm(x);
  fft_inplace(a, false);
  double freq_energy = 0.0;
  for (const auto& x : a) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy / 256.0, time_energy, 1e-10 * time_energy);
}

TEST(Fft, RealSignalHasConjugateSymmetricSpectrum) {
  Rng rng(66);
  std::vector<Complex> a(64);
  for (auto& x : a) x = Complex(rng.uniform(-1, 1), 0.0);
  fft_inplace(a, false);
  for (std::size_t k = 1; k < a.size(); ++k)
    EXPECT_LT(std::abs(a[k] - std::conj(a[a.size() - k])), 1e-10);
}

TEST(Fft, ShiftTheoremPhaseRamp) {
  // FFT of a cyclically shifted signal = phase-ramped spectrum.
  auto a = random_signal(32, 67);
  std::vector<Complex> shifted(32);
  for (int i = 0; i < 32; ++i) shifted[i] = a[(i + 31) % 32];  // shift by 1
  auto fa = a, fs = shifted;
  fft_inplace(fa, false);
  fft_inplace(fs, false);
  for (int k = 0; k < 32; ++k) {
    const double ang = -2.0 * std::numbers::pi * k / 32.0;
    const Complex ramp(std::cos(ang), std::sin(ang));
    EXPECT_LT(std::abs(fs[k] - fa[k] * ramp), 1e-10) << k;
  }
}

}  // namespace
}  // namespace pkifmm::fft
