/// Unit tests for util::TaskPool (see the determinism contract in
/// util/task_pool.hpp): parallel_for chunk coverage for any worker
/// count, work stealing, exception propagation, background groups,
/// scheduler-stat folding, and the oversubscription guard.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/task_pool.hpp"

namespace pkifmm::util {
namespace {

TEST(RecommendedWorkers, ClampsToHardwareBudget) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // Within budget: the request passes through.
  EXPECT_EQ(recommended_workers(1, 1), 1);
  // Way past any machine's budget: clamped to >= 1, <= hw.
  const int clamped = recommended_workers(16 * static_cast<int>(hw), 2);
  EXPECT_GE(clamped, 1);
  EXPECT_LE(clamped, static_cast<int>(hw));
  // enforce=false bypasses the guard entirely.
  EXPECT_EQ(recommended_workers(64, 8, /*enforce=*/false), 64);
  // Degenerate requests are raised to one thread.
  EXPECT_EQ(recommended_workers(0, 1, false), 1);
  EXPECT_EQ(recommended_workers(-3, 1), 1);
}

class TaskPoolWorkers : public ::testing::TestWithParam<int> {};

TEST_P(TaskPoolWorkers, ParallelForCoversEveryIndexOnce) {
  TaskPool pool(GetParam());
  EXPECT_EQ(pool.workers(), GetParam());
  EXPECT_EQ(pool.lanes(), GetParam() + 1);

  const std::size_t n = 1013;  // prime: chunks are ragged at the end
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, 7, [&](std::size_t b, std::size_t e, int lane) {
    EXPECT_GE(lane, 0);
    EXPECT_LT(lane, pool.lanes());
    EXPECT_LT(b, e);
    EXPECT_LE(e, n);
    // Chunk shape depends only on (n, grain): aligned to the grain.
    EXPECT_EQ(b % 7, 0u);
    EXPECT_TRUE(e == n || e - b == 7);
    for (std::size_t i = b; i < e; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(TaskPoolWorkers, DisjointRangeSumIsExact) {
  TaskPool pool(GetParam());
  const std::size_t n = 4096;
  std::vector<double> out(n, 0.0);
  pool.parallel_for(n, 64, [&](std::size_t b, std::size_t e, int) {
    for (std::size_t i = b; i < e; ++i) out[i] = static_cast<double>(i) * 0.5;
  });
  double sum = 0.0;
  for (double v : out) sum += v;
  EXPECT_EQ(sum, 0.5 * (n * (n - 1) / 2));
}

TEST_P(TaskPoolWorkers, ExceptionPropagatesFromAnyChunk) {
  TaskPool pool(GetParam());
  EXPECT_THROW(
      pool.parallel_for(100, 3,
                        [&](std::size_t b, std::size_t, int) {
                          if (b == 42) throw std::runtime_error("chunk 42");
                        }),
      std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> ran{0};
  pool.parallel_for(10, 1, [&](std::size_t, std::size_t, int) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 10);
}

TEST_P(TaskPoolWorkers, BackgroundGroupJoinsWithSubmittedWork) {
  TaskPool pool(GetParam());
  TaskPool::Group g;
  std::atomic<int> done{0};
  for (int t = 0; t < 32; ++t)
    pool.submit(g, "bg", [&](int) { done.fetch_add(1); });
  // Foreground work interleaves with the background group.
  pool.parallel_for(64, 4, [](std::size_t, std::size_t, int) {});
  pool.wait(g);
  EXPECT_EQ(done.load(), 32);
  EXPECT_TRUE(g.done());
}

TEST_P(TaskPoolWorkers, FoldStatsPublishesAndResets) {
  obs::Recorder rec(0);
  TaskPool pool(GetParam());
  pool.parallel_for(256, 8, [](std::size_t, std::size_t, int) {});
  pool.fold_stats(rec);
  EXPECT_EQ(rec.metrics().gauges.at("sched.workers"), GetParam());
  EXPECT_EQ(rec.counter("sched.tasks"), 256 / 8);
  EXPECT_GT(rec.counter("sched.lifetime_seconds"), 0.0);
  // Worker-lane bursts became spans with tid = lane; lane 0 never does.
  for (const obs::SpanEvent& e : rec.metrics().spans) {
    EXPECT_GE(e.tid, 1);
    EXPECT_LE(e.tid, pool.workers());
    EXPECT_EQ(e.name, "par_for");
  }
  // A second fold right away covers an empty window.
  obs::Recorder rec2(0);
  pool.fold_stats(rec2);
  EXPECT_EQ(rec2.counter("sched.tasks"), 0.0);
  EXPECT_EQ(rec2.metrics().spans.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, TaskPoolWorkers,
                         ::testing::Values(0, 1, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(TaskPool, StealingMovesQueuedWorkAcrossLanes) {
  // Force a steal deterministically with one worker: H keeps the
  // worker busy until B and A are both queued on its deque; the worker
  // then pops A (owner pops newest-first), which spins until `flag` —
  // and only the setter task B, sitting at the FRONT of the worker's
  // deque, can set it. The caller's wait() must steal B to make
  // progress, so sched.steals >= 1 or the test would hang.
  TaskPool pool(1);
  std::atomic<bool> queued{false}, flag{false};
  TaskPool::Group g;
  pool.submit(g, "steal", [&](int) {  // H: parks the worker
    while (!queued.load(std::memory_order_relaxed)) std::this_thread::yield();
  });
  pool.submit(g, "steal", [&](int) {  // B: the steal target
    flag.store(true, std::memory_order_relaxed);
  });
  pool.submit(g, "steal", [&](int) {  // A: popped by the worker first
    while (!flag.load(std::memory_order_relaxed)) std::this_thread::yield();
  });
  queued.store(true, std::memory_order_relaxed);
  pool.wait(g);
  obs::Recorder rec(0);
  pool.fold_stats(rec);
  EXPECT_EQ(rec.counter("sched.tasks"), 3.0);
  EXPECT_GE(rec.counter("sched.steals"), 1.0);
}

TEST(TaskPool, BusyOverlapMeasuresNamedBurstsInWindow) {
  TaskPool pool(1);
  const double w0 = obs::wall_seconds();
  TaskPool::Group g;
  pool.submit(g, "uli", [](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  pool.wait(g);
  const double w1 = obs::wall_seconds();
  const double busy = pool.busy_overlap("uli", w0, w1);
  EXPECT_GT(busy, 0.010);
  EXPECT_LE(busy, w1 - w0 + 1e-9);
  EXPECT_EQ(pool.busy_overlap("other", w0, w1), 0.0);
}

// ---------------------------------------------------------------------------
// TaskGraph: dependency-counted DAG execution on the pool (see the
// build/run/determinism contract in util/task_pool.hpp).

class TaskGraphWorkers : public ::testing::TestWithParam<int> {};

TEST_P(TaskGraphWorkers, DiamondRespectsEveryOrdering) {
  TaskPool pool(GetParam());
  TaskGraph g(pool, "diamond");
  std::atomic<int> step{0};
  int at_a = -1, at_b = -1, at_c = -1, at_d = -1;
  const auto a = g.node("ph", [&](int) { at_a = step.fetch_add(1); });
  const auto b = g.node("ph", [&](int) { at_b = step.fetch_add(1); });
  const auto c = g.node("ph", [&](int) { at_c = step.fetch_add(1); });
  const auto d = g.node("ph", [&](int) { at_d = step.fetch_add(1); });
  g.edge(a, b);
  g.edge(a, c);
  g.edge(b, d);
  g.edge(c, d);
  EXPECT_EQ(g.nodes(), 4u);
  EXPECT_EQ(g.edges(), 4u);
  g.launch();
  g.wait();
  EXPECT_EQ(at_a, 0);
  EXPECT_EQ(at_d, 3);
  EXPECT_TRUE((at_b == 1 && at_c == 2) || (at_b == 2 && at_c == 1))
      << at_b << " " << at_c;
  EXPECT_TRUE(g.completed(d));
}

TEST_P(TaskGraphWorkers, FanOutFanInThroughEvent) {
  TaskPool pool(GetParam());
  TaskGraph g(pool, "fan");
  constexpr int kWide = 32;
  std::atomic<int> ran{0};
  bool root_done = false;
  const auto root = g.node("ph", [&](int) { root_done = true; });
  const auto barrier = g.event("ph");
  for (int i = 0; i < kWide; ++i) {
    const auto mid = g.node("ph", [&](int) {
      EXPECT_TRUE(root_done);  // edge ordering makes the write visible
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    g.edge(root, mid);
    g.edge(mid, barrier);
  }
  int after = -1;
  const auto sink = g.node("ph", [&](int) { after = ran.load(); });
  g.edge(barrier, sink);
  g.launch();
  g.wait();
  EXPECT_EQ(after, kWide);  // the event fired only after every mid task
}

TEST_P(TaskGraphWorkers, ExternalSignalsGateAndRelease) {
  TaskPool pool(GetParam());
  TaskGraph g(pool, "ext");
  std::atomic<bool> ran{false};
  const auto gated = g.node("ph", [&](int) { ran.store(true); });
  g.external(gated, 2);
  g.signal(gated);  // signalling BEFORE launch is legal
  g.launch();
  // One of two signals delivered: the node must not have started (no
  // worker can pop what was never enqueued).
  EXPECT_FALSE(g.completed(gated));
  EXPECT_FALSE(ran.load());
  g.signal(gated);
  g.wait();
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(g.completed(gated));
}

TEST_P(TaskGraphWorkers, WaitNodeHelpsUntilTargetCompletes) {
  TaskPool pool(GetParam());
  TaskGraph g(pool, "waitnode");
  std::atomic<int> order{0};
  int at_a = -1, at_b = -1;
  const auto a = g.node("ph", [&](int) { at_a = order.fetch_add(1); });
  const auto b = g.node("ph", [&](int) { at_b = order.fetch_add(1); });
  g.edge(a, b);
  const auto tail = g.node("ph", [&](int) { order.fetch_add(1); });
  g.edge(b, tail);
  g.launch();
  g.wait_node(b);  // must make progress even with zero workers
  EXPECT_TRUE(g.completed(a));
  EXPECT_TRUE(g.completed(b));
  EXPECT_EQ(at_a, 0);
  EXPECT_EQ(at_b, 1);
  g.wait();
  EXPECT_TRUE(g.completed(tail));
}

TEST_P(TaskGraphWorkers, ErrorPropagatesButGraphDrains) {
  TaskPool pool(GetParam());
  TaskGraph g(pool, "err");
  std::atomic<int> ran{0};
  const auto bad = g.node("ph", [&](int) -> void {
    throw std::runtime_error("dag task failed");
  });
  const auto succ = g.node("ph", [&](int) { ran.fetch_add(1); });
  g.edge(bad, succ);  // successors of a failed node still run (drain)
  g.node("ph", [&](int) { ran.fetch_add(1); });
  g.launch();
  EXPECT_THROW(g.wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 2);
  EXPECT_TRUE(g.completed(bad));  // completed = done, not succeeded
}

TEST_P(TaskGraphWorkers, DestructorDrainsLaunchedGraph) {
  TaskPool pool(GetParam());
  std::atomic<int> ran{0};
  {
    TaskGraph g(pool, "dtor");
    for (int i = 0; i < 16; ++i) g.node("ph", [&](int) { ran.fetch_add(1); });
    g.launch();
    // No wait(): the destructor must block until all 16 executed (they
    // capture `ran`, which dies right after the graph).
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST_P(TaskGraphWorkers, FoldStatsPublishesDagCounters) {
  obs::Recorder rec(0);
  TaskPool pool(GetParam());
  TaskGraph g(pool, "stats");
  const auto a = g.node("alpha", [](int) {});
  const auto b = g.node("beta", [](int) {});
  const auto ev = g.event("beta");
  g.edge(a, b);
  g.edge(b, ev);
  g.external(ev, 1);
  g.launch();
  g.signal(ev);
  g.wait();
  g.fold_stats(rec);
  EXPECT_EQ(rec.counter("sched.dag.graphs"), 1.0);
  EXPECT_EQ(rec.counter("sched.dag.nodes"), 3.0);
  EXPECT_EQ(rec.counter("sched.dag.edges"), 2.0);
  EXPECT_EQ(rec.counter("sched.dag.signals"), 1.0);
  EXPECT_EQ(rec.counter("sched.dag.tasks"), 2.0);  // events are not tasks
  EXPECT_EQ(rec.counter("sched.dag.phase.alpha.tasks"), 1.0);
  EXPECT_EQ(rec.counter("sched.dag.phase.beta.tasks"), 1.0);
  EXPECT_GE(rec.counter("sched.dag.phase.alpha.busy_seconds"), 0.0);
  EXPECT_GE(rec.counter("sched.dag.release_wait_seconds"), 0.0);
  EXPECT_GE(rec.metrics().gauges.at("sched.dag.ready_depth_peak"), 1.0);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, TaskGraphWorkers,
                         ::testing::Values(0, 1, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(TaskGraph, ConcurrentReleaseRaceIsClean) {
  // Many predecessors finishing at once all decrement the same sink's
  // dependency counter, while the main thread concurrently delivers an
  // external signal — the exact hot path TSan must see as clean, and
  // exactly-once semantics must hold (the sink runs once, after every
  // contribution is visible).
  for (int round = 0; round < 20; ++round) {
    TaskPool pool(3);
    TaskGraph g(pool, "race");
    constexpr int kWide = 64;
    std::vector<std::uint64_t> cell(kWide, 0);
    const auto sink_gate = g.event("race");
    for (int i = 0; i < kWide; ++i) {
      const auto t = g.node("race", [&cell, i](int) {
        cell[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(i) + 1;
      });
      g.edge(t, sink_gate);
    }
    std::uint64_t sum = 0;
    std::atomic<int> sink_runs{0};
    const auto sink = g.node("race", [&](int) {
      sink_runs.fetch_add(1);
      for (std::uint64_t v : cell) sum += v;
    });
    g.edge(sink_gate, sink);
    g.external(sink, 1);
    g.launch();
    g.signal(sink);  // races against the predecessor completions
    g.wait();
    EXPECT_EQ(sink_runs.load(), 1);
    EXPECT_EQ(sum, std::uint64_t(kWide) * (kWide + 1) / 2);
  }
}

TEST(TaskPool, ZeroWorkersRunsInlineDeterministically) {
  // The inline executor and a 2-worker pool must produce identical
  // chunk decompositions (the contract behind thread-count-invariant
  // results).
  auto chunks_of = [](int workers) {
    TaskPool pool(workers);
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for(777, 13, [&](std::size_t b, std::size_t e, int) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace(b, e);
    });
    return chunks;
  };
  EXPECT_EQ(chunks_of(0), chunks_of(2));
}

}  // namespace
}  // namespace pkifmm::util
