/// Unit tests for util::TaskPool (see the determinism contract in
/// util/task_pool.hpp): parallel_for chunk coverage for any worker
/// count, work stealing, exception propagation, background groups,
/// scheduler-stat folding, and the oversubscription guard.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/task_pool.hpp"

namespace pkifmm::util {
namespace {

TEST(RecommendedWorkers, ClampsToHardwareBudget) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  // Within budget: the request passes through.
  EXPECT_EQ(recommended_workers(1, 1), 1);
  // Way past any machine's budget: clamped to >= 1, <= hw.
  const int clamped = recommended_workers(16 * static_cast<int>(hw), 2);
  EXPECT_GE(clamped, 1);
  EXPECT_LE(clamped, static_cast<int>(hw));
  // enforce=false bypasses the guard entirely.
  EXPECT_EQ(recommended_workers(64, 8, /*enforce=*/false), 64);
  // Degenerate requests are raised to one thread.
  EXPECT_EQ(recommended_workers(0, 1, false), 1);
  EXPECT_EQ(recommended_workers(-3, 1), 1);
}

class TaskPoolWorkers : public ::testing::TestWithParam<int> {};

TEST_P(TaskPoolWorkers, ParallelForCoversEveryIndexOnce) {
  TaskPool pool(GetParam());
  EXPECT_EQ(pool.workers(), GetParam());
  EXPECT_EQ(pool.lanes(), GetParam() + 1);

  const std::size_t n = 1013;  // prime: chunks are ragged at the end
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, 7, [&](std::size_t b, std::size_t e, int lane) {
    EXPECT_GE(lane, 0);
    EXPECT_LT(lane, pool.lanes());
    EXPECT_LT(b, e);
    EXPECT_LE(e, n);
    // Chunk shape depends only on (n, grain): aligned to the grain.
    EXPECT_EQ(b % 7, 0u);
    EXPECT_TRUE(e == n || e - b == 7);
    for (std::size_t i = b; i < e; ++i)
      hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_P(TaskPoolWorkers, DisjointRangeSumIsExact) {
  TaskPool pool(GetParam());
  const std::size_t n = 4096;
  std::vector<double> out(n, 0.0);
  pool.parallel_for(n, 64, [&](std::size_t b, std::size_t e, int) {
    for (std::size_t i = b; i < e; ++i) out[i] = static_cast<double>(i) * 0.5;
  });
  double sum = 0.0;
  for (double v : out) sum += v;
  EXPECT_EQ(sum, 0.5 * (n * (n - 1) / 2));
}

TEST_P(TaskPoolWorkers, ExceptionPropagatesFromAnyChunk) {
  TaskPool pool(GetParam());
  EXPECT_THROW(
      pool.parallel_for(100, 3,
                        [&](std::size_t b, std::size_t, int) {
                          if (b == 42) throw std::runtime_error("chunk 42");
                        }),
      std::runtime_error);
  // The pool stays usable after an exception.
  std::atomic<int> ran{0};
  pool.parallel_for(10, 1, [&](std::size_t, std::size_t, int) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 10);
}

TEST_P(TaskPoolWorkers, BackgroundGroupJoinsWithSubmittedWork) {
  TaskPool pool(GetParam());
  TaskPool::Group g;
  std::atomic<int> done{0};
  for (int t = 0; t < 32; ++t)
    pool.submit(g, "bg", [&](int) { done.fetch_add(1); });
  // Foreground work interleaves with the background group.
  pool.parallel_for(64, 4, [](std::size_t, std::size_t, int) {});
  pool.wait(g);
  EXPECT_EQ(done.load(), 32);
  EXPECT_TRUE(g.done());
}

TEST_P(TaskPoolWorkers, FoldStatsPublishesAndResets) {
  obs::Recorder rec(0);
  TaskPool pool(GetParam());
  pool.parallel_for(256, 8, [](std::size_t, std::size_t, int) {});
  pool.fold_stats(rec);
  EXPECT_EQ(rec.metrics().gauges.at("sched.workers"), GetParam());
  EXPECT_EQ(rec.counter("sched.tasks"), 256 / 8);
  EXPECT_GT(rec.counter("sched.lifetime_seconds"), 0.0);
  // Worker-lane bursts became spans with tid = lane; lane 0 never does.
  for (const obs::SpanEvent& e : rec.metrics().spans) {
    EXPECT_GE(e.tid, 1);
    EXPECT_LE(e.tid, pool.workers());
    EXPECT_EQ(e.name, "par_for");
  }
  // A second fold right away covers an empty window.
  obs::Recorder rec2(0);
  pool.fold_stats(rec2);
  EXPECT_EQ(rec2.counter("sched.tasks"), 0.0);
  EXPECT_EQ(rec2.metrics().spans.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, TaskPoolWorkers,
                         ::testing::Values(0, 1, 3),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(TaskPool, StealingMovesQueuedWorkAcrossLanes) {
  // Force a steal deterministically with one worker: H keeps the
  // worker busy until B and A are both queued on its deque; the worker
  // then pops A (owner pops newest-first), which spins until `flag` —
  // and only the setter task B, sitting at the FRONT of the worker's
  // deque, can set it. The caller's wait() must steal B to make
  // progress, so sched.steals >= 1 or the test would hang.
  TaskPool pool(1);
  std::atomic<bool> queued{false}, flag{false};
  TaskPool::Group g;
  pool.submit(g, "steal", [&](int) {  // H: parks the worker
    while (!queued.load(std::memory_order_relaxed)) std::this_thread::yield();
  });
  pool.submit(g, "steal", [&](int) {  // B: the steal target
    flag.store(true, std::memory_order_relaxed);
  });
  pool.submit(g, "steal", [&](int) {  // A: popped by the worker first
    while (!flag.load(std::memory_order_relaxed)) std::this_thread::yield();
  });
  queued.store(true, std::memory_order_relaxed);
  pool.wait(g);
  obs::Recorder rec(0);
  pool.fold_stats(rec);
  EXPECT_EQ(rec.counter("sched.tasks"), 3.0);
  EXPECT_GE(rec.counter("sched.steals"), 1.0);
}

TEST(TaskPool, BusyOverlapMeasuresNamedBurstsInWindow) {
  TaskPool pool(1);
  const double w0 = obs::wall_seconds();
  TaskPool::Group g;
  pool.submit(g, "uli", [](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  pool.wait(g);
  const double w1 = obs::wall_seconds();
  const double busy = pool.busy_overlap("uli", w0, w1);
  EXPECT_GT(busy, 0.010);
  EXPECT_LE(busy, w1 - w0 + 1e-9);
  EXPECT_EQ(pool.busy_overlap("other", w0, w1), 0.0);
}

TEST(TaskPool, ZeroWorkersRunsInlineDeterministically) {
  // The inline executor and a 2-worker pool must produce identical
  // chunk decompositions (the contract behind thread-count-invariant
  // results).
  auto chunks_of = [](int workers) {
    TaskPool pool(workers);
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for(777, 13, [&](std::size_t b, std::size_t e, int) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace(b, e);
    });
    return chunks;
  };
  EXPECT_EQ(chunks_of(0), chunks_of(2));
}

}  // namespace
}  // namespace pkifmm::util
