#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>

#include "kernels/kernel.hpp"
#include "util/rng.hpp"

namespace pkifmm::kernels {
namespace {

TEST(Laplace, PointValueMatchesFormula) {
  LaplaceKernel k;
  const double d[3] = {3.0, 0.0, 4.0};  // r = 5
  double v;
  k.block(d, &v);
  EXPECT_NEAR(v, 1.0 / (4.0 * std::numbers::pi * 5.0), 1e-15);
}

TEST(Laplace, SelfInteractionIsZero) {
  LaplaceKernel k;
  const double d[3] = {0.0, 0.0, 0.0};
  double v = 99.0;
  k.block(d, &v);
  EXPECT_EQ(v, 0.0);
}

TEST(Laplace, EvenSymmetry) {
  LaplaceKernel k;
  const double d[3] = {0.1, -0.2, 0.3};
  const double nd[3] = {-0.1, 0.2, -0.3};
  double a, b;
  k.block(d, &a);
  k.block(nd, &b);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Laplace, HomogeneityDegreeMinusOne) {
  LaplaceKernel k;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    double d[3] = {rng.uniform(0.1, 1), rng.uniform(0.1, 1), rng.uniform(0.1, 1)};
    double s[3] = {2.0 * d[0], 2.0 * d[1], 2.0 * d[2]};
    double v1, v2;
    k.block(d, &v1);
    k.block(s, &v2);
    EXPECT_NEAR(v2, 0.5 * v1, 1e-14);
  }
}

TEST(Stokes, BlockIsSymmetricTensor) {
  StokesKernel k;
  const double d[3] = {0.2, -0.4, 0.7};
  double b[9];
  k.block(d, b);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(b[i * 3 + j], b[j * 3 + i]);
}

TEST(Stokes, MatchesOseenFormula) {
  StokesKernel k;
  const double d[3] = {1.0, 2.0, 2.0};  // r = 3
  double b[9];
  k.block(d, b);
  const double c = 1.0 / (8.0 * std::numbers::pi);
  EXPECT_NEAR(b[0], c * (1.0 / 3.0 + 1.0 / 27.0), 1e-14);       // ii with d_i=1
  EXPECT_NEAR(b[1], c * (1.0 * 2.0 / 27.0), 1e-14);             // ij
}

TEST(Stokes, SelfInteractionIsZeroBlock) {
  StokesKernel k;
  const double d[3] = {0, 0, 0};
  double b[9];
  k.block(d, b);
  for (double v : b) EXPECT_EQ(v, 0.0);
}

TEST(Stokes, HomogeneityDegreeMinusOne) {
  StokesKernel k;
  const double d[3] = {0.3, 0.1, -0.2};
  const double s[3] = {0.9, 0.3, -0.6};
  double b1[9], b3[9];
  k.block(d, b1);
  k.block(s, b3);
  for (int i = 0; i < 9; ++i) EXPECT_NEAR(b3[i], b1[i] / 3.0, 1e-13);
}

TEST(Yukawa, DecaysFasterThanLaplace) {
  YukawaKernel y(5.0);
  LaplaceKernel l;
  const double d[3] = {0.5, 0.0, 0.0};
  double vy, vl;
  y.block(d, &vy);
  l.block(d, &vl);
  EXPECT_LT(vy, vl);
  EXPECT_NEAR(vy, vl * std::exp(-2.5), 1e-14);
}

TEST(Yukawa, IsNotHomogeneous) {
  YukawaKernel y;
  EXPECT_FALSE(y.homogeneous());
}

TEST(Direct, MatchesManualSumLaplace) {
  LaplaceKernel k;
  const std::vector<double> tgt = {0.0, 0.0, 0.0};
  const std::vector<double> src = {1.0, 0.0, 0.0, 0.0, 2.0, 0.0};
  const std::vector<double> den = {2.0, 4.0};
  std::vector<double> pot(1, 0.0);
  k.direct(tgt, src, den, pot);
  const double expect = (2.0 / 1.0 + 4.0 / 2.0) / (4.0 * std::numbers::pi);
  EXPECT_NEAR(pot[0], expect, 1e-14);
}

TEST(Direct, AccumulatesIntoExistingPotential) {
  LaplaceKernel k;
  const std::vector<double> tgt = {0.0, 0.0, 0.0};
  const std::vector<double> src = {1.0, 0.0, 0.0};
  const std::vector<double> den = {4.0 * std::numbers::pi};
  std::vector<double> pot(1, 10.0);
  k.direct(tgt, src, den, pot);
  EXPECT_NEAR(pot[0], 11.0, 1e-13);
}

TEST(Direct, SkipsCoincidentPoints) {
  LaplaceKernel k;
  const std::vector<double> pts = {0.5, 0.5, 0.5};
  const std::vector<double> den = {1.0};
  std::vector<double> pot(1, 0.0);
  k.direct(pts, pts, den, pot);
  EXPECT_EQ(pot[0], 0.0);
}

TEST(Block, CoincidentGuardUnifiedAcrossKernels) {
  // Every singular kernel uses the same r2 == 0.0 predicate. A
  // negative-zero displacement squares to +0.0 and must hit the guard;
  // a NaN displacement must propagate (NaN compares false against
  // zero) instead of being silently mapped to 0, which the old
  // `r2 > 0.0` ordering in LaplaceKernel did.
  const double zero[3] = {0.0, 0.0, 0.0};
  const double nzero[3] = {-0.0, -0.0, -0.0};
  const double dnan[3] = {std::numeric_limits<double>::quiet_NaN(), 0.0, 0.0};

  LaplaceKernel lap;
  LaplaceGradKernel grad;
  StokesKernel stk;
  YukawaKernel yuk(5.0);

  double v;
  lap.block(zero, &v);
  EXPECT_EQ(v, 0.0);
  lap.block(nzero, &v);
  EXPECT_EQ(v, 0.0);
  lap.block(dnan, &v);
  EXPECT_TRUE(std::isnan(v));

  double g3[3];
  grad.block(nzero, g3);
  for (double x : g3) EXPECT_EQ(x, 0.0);
  grad.block(dnan, g3);
  EXPECT_TRUE(std::isnan(g3[0]));

  double b9[9];
  stk.block(nzero, b9);
  for (double x : b9) EXPECT_EQ(x, 0.0);
  stk.block(dnan, b9);
  EXPECT_TRUE(std::isnan(b9[0]));

  yuk.block(nzero, &v);
  EXPECT_EQ(v, 0.0);
  yuk.block(dnan, &v);
  EXPECT_TRUE(std::isnan(v));
}

TEST(Direct, NegativeZeroCoordinatesStillSkipSelfPair) {
  // Target at (-0.0, -0.0, -0.0) against a source at (0.0, 0.0, 0.0):
  // the displacement is -0.0 per axis, r2 == +0.0, so the pair is a
  // self-interaction and must contribute exactly zero.
  LaplaceKernel k;
  const std::vector<double> tgt = {-0.0, -0.0, -0.0};
  const std::vector<double> src = {0.0, 0.0, 0.0};
  const std::vector<double> den = {3.0};
  std::vector<double> pot(1, 0.0);
  k.direct(tgt, src, den, pot);
  EXPECT_EQ(pot[0], 0.0);
}

TEST(Direct, StokesVectorPotentialShape) {
  StokesKernel k;
  Rng rng(4);
  std::vector<double> tgt(3 * 5), src(3 * 7), den(3 * 7);
  for (auto& v : tgt) v = rng.uniform();
  for (auto& v : src) v = rng.uniform();
  for (auto& v : den) v = rng.uniform(-1, 1);
  std::vector<double> pot(3 * 5, 0.0);
  const auto flops = k.direct(tgt, src, den, pot);
  EXPECT_EQ(flops, 5u * 7u * k.flops_per_interaction());
  // Compare one target against a manual block sum.
  double manual[3] = {0, 0, 0};
  double blk[9];
  for (int s = 0; s < 7; ++s) {
    const double d[3] = {tgt[0] - src[3 * s], tgt[1] - src[3 * s + 1],
                         tgt[2] - src[3 * s + 2]};
    k.block(d, blk);
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) manual[i] += blk[i * 3 + j] * den[3 * s + j];
  }
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(pot[i], manual[i], 1e-13);
}

TEST(Assemble, MatrixActionEqualsDirect) {
  for (const char* name : {"laplace", "stokes", "yukawa"}) {
    auto k = make_kernel(name);
    Rng rng(8);
    std::vector<double> tgt(3 * 4), src(3 * 6);
    for (auto& v : tgt) v = rng.uniform();
    for (auto& v : src) v = rng.uniform(1.5, 2.5);  // disjoint from targets
    std::vector<double> den(6 * k->source_dim());
    for (auto& v : den) v = rng.uniform(-1, 1);

    std::vector<double> pot_direct(4 * k->target_dim(), 0.0);
    k->direct(tgt, src, den, pot_direct);

    const la::Matrix m = k->assemble(tgt, src);
    std::vector<double> pot_mat(4 * k->target_dim(), 0.0);
    la::gemv(m, den, pot_mat);

    for (std::size_t i = 0; i < pot_direct.size(); ++i)
      EXPECT_NEAR(pot_mat[i], pot_direct[i], 1e-12) << name;
  }
}

TEST(Factory, KnownNames) {
  EXPECT_EQ(make_kernel("laplace")->source_dim(), 1);
  EXPECT_EQ(make_kernel("stokes")->source_dim(), 3);
  EXPECT_EQ(make_kernel("yukawa")->target_dim(), 1);
  EXPECT_EQ(make_kernel("stokes-reg")->target_dim(), 3);
}

TEST(RegularizedStokes, ConvergesToStokesAwayFromOrigin) {
  // At distances >> epsilon, the mollified kernel matches Stokes.
  RegularizedStokesKernel reg(1e-4);
  StokesKernel exact;
  const double d[3] = {0.3, -0.2, 0.5};
  double br[9], be[9];
  reg.block(d, br);
  exact.block(d, be);
  for (int i = 0; i < 9; ++i)
    EXPECT_NEAR(br[i], be[i], 1e-6 * (std::abs(be[i]) + 1.0));
}

TEST(RegularizedStokes, FiniteAndIsotropicAtOrigin) {
  RegularizedStokesKernel reg(0.05);
  const double d[3] = {0, 0, 0};
  double b[9];
  reg.block(d, b);
  // Self-interaction finite: diag = 2 eps^2 / (8 pi eps^3) = 1/(4 pi eps).
  const double expect = 1.0 / (4.0 * std::numbers::pi * 0.05);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(b[4 * i], expect, 1e-12);
  EXPECT_EQ(b[1], 0.0);
}

TEST(RegularizedStokes, SymmetricTensor) {
  RegularizedStokesKernel reg(0.02);
  const double d[3] = {0.11, 0.07, -0.05};
  double b[9];
  reg.block(d, b);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(b[3 * i + j], b[3 * j + i]);
}

TEST(Factory, UnknownNameThrows) {
  EXPECT_ANY_THROW(make_kernel("biharmonic"));
}

/// Laplace satisfies the mean value property: the average of 1/(4 pi r)
/// over a sphere centered at c with radius a equals the value at the
/// sphere's center when the source is outside — sanity for the
/// equivalent-density idea underlying KIFMM.
TEST(Laplace, MeanValuePropertyOnSphere) {
  LaplaceKernel k;
  const double src[3] = {2.0, 0.0, 0.0};
  const double a = 0.5;
  double sum = 0.0;
  const int n = 4000;
  Rng rng(17);
  for (int i = 0; i < n; ++i) {
    // Uniform point on the sphere via normalized gaussian-ish rejection.
    double p[3];
    double norm2;
    do {
      for (double& c : p) c = rng.uniform(-1, 1);
      norm2 = p[0] * p[0] + p[1] * p[1] + p[2] * p[2];
    } while (norm2 > 1.0 || norm2 < 1e-8);
    const double inv = a / std::sqrt(norm2);
    const double d[3] = {p[0] * inv - src[0], p[1] * inv - src[1],
                         p[2] * inv - src[2]};
    double v;
    k.block(d, &v);
    sum += v;
  }
  double center;
  const double dc[3] = {-src[0], -src[1], -src[2]};
  k.block(dc, &center);
  EXPECT_NEAR(sum / n, center, 0.02 * center);
}

}  // namespace
}  // namespace pkifmm::kernels
