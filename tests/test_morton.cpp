#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "morton/key.hpp"
#include "util/rng.hpp"

namespace pkifmm::morton {
namespace {

TEST(Interleave, RoundTrips) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const Coord x = static_cast<Coord>(rng.uniform_u64(kGridSize));
    const Coord y = static_cast<Coord>(rng.uniform_u64(kGridSize));
    const Coord z = static_cast<Coord>(rng.uniform_u64(kGridSize));
    Coord x2, y2, z2;
    deinterleave(interleave(x, y, z), x2, y2, z2);
    EXPECT_EQ(x, x2);
    EXPECT_EQ(y, y2);
    EXPECT_EQ(z, z2);
  }
}

TEST(Interleave, KnownSmallValues) {
  // x=1 -> bit 0, y=1 -> bit 1, z=1 -> bit 2.
  EXPECT_EQ(interleave(1, 0, 0), Bits{1});
  EXPECT_EQ(interleave(0, 1, 0), Bits{2});
  EXPECT_EQ(interleave(0, 0, 1), Bits{4});
  EXPECT_EQ(interleave(1, 1, 1), Bits{7});
  EXPECT_EQ(interleave(2, 0, 0), Bits{8});
}

TEST(Key, RootProperties) {
  const Key r = root();
  EXPECT_EQ(r.level, 0);
  EXPECT_EQ(range_begin(r), Bits{0});
  EXPECT_EQ(range_end(r), Bits{1} << (3 * kMaxDepth));
}

TEST(Key, ParentChildRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Key cell = cell_of_point(rng.uniform(), rng.uniform(), rng.uniform());
    for (int level = 1; level <= kMaxDepth; ++level) {
      const Key k = ancestor_at(cell, level);
      const Key p = parent(k);
      EXPECT_EQ(p.level, level - 1);
      EXPECT_EQ(child(p, child_index(k)), k);
      EXPECT_TRUE(is_ancestor(p, k));
      EXPECT_TRUE(contains(p, k));
      EXPECT_FALSE(contains(k, p));
    }
  }
}

TEST(Key, ChildrenAreDisjointAndCoverParent) {
  const Key p = ancestor_at(cell_of_point(0.3, 0.7, 0.2), 5);
  auto kids = children(p);
  Bits covered = 0;
  std::set<Bits> begins;
  for (const Key& k : kids) {
    EXPECT_EQ(k.level, p.level + 1);
    EXPECT_TRUE(is_ancestor(p, k));
    covered += cell_volume(k);
    begins.insert(range_begin(k));
  }
  EXPECT_EQ(begins.size(), 8u);
  EXPECT_EQ(covered, cell_volume(p));
}

TEST(Key, OrderingPutsAncestorFirst) {
  const Key cell = cell_of_point(0.5, 0.5, 0.5);
  const Key a = ancestor_at(cell, 3);
  const Key d = ancestor_at(cell, 9);
  EXPECT_LT(a, d);
}

TEST(Key, MortonOrderMatchesBitsOrder) {
  Rng rng(19);
  std::vector<Key> keys;
  for (int i = 0; i < 100; ++i) {
    const Key cell = cell_of_point(rng.uniform(), rng.uniform(), rng.uniform());
    keys.push_back(ancestor_at(cell, 1 + static_cast<int>(rng.uniform_u64(kMaxDepth))));
  }
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 0; i + 1 < keys.size(); ++i)
    EXPECT_LE(range_begin(keys[i]), range_begin(keys[i + 1]));
}

TEST(Key, AncestorsListUpToRoot) {
  const Key cell = cell_of_point(0.1, 0.9, 0.4);
  const Key k = ancestor_at(cell, 6);
  auto anc = ancestors(k);
  ASSERT_EQ(anc.size(), 6u);
  EXPECT_EQ(anc.front().level, 5);
  EXPECT_EQ(anc.back(), root());
  for (const Key& a : anc) EXPECT_TRUE(is_ancestor(a, k));
}

TEST(CellOfPoint, ClampsOutOfRange) {
  const Key lo = cell_of_point(-1.0, -0.5, 0.0);
  const auto a = anchor(lo);
  EXPECT_EQ(a[0], 0u);
  EXPECT_EQ(a[1], 0u);
  const Key hi = cell_of_point(2.0, 1.0, 0.9999999999);
  const auto b = anchor(hi);
  EXPECT_EQ(b[0], kGridSize - 1);
  EXPECT_EQ(b[1], kGridSize - 1);
}

TEST(Neighbor, InteriorOctantHas26Colleagues) {
  // Center octant at level 2 (grid 4x4x4), position (1,1,1): interior.
  const Coord s = kGridSize / 4;
  const Key k = make_key(s, s, s, 2);
  EXPECT_EQ(colleagues(k).size(), 26u);
  EXPECT_EQ(neighborhood(k).size(), 27u);
}

TEST(Neighbor, CornerOctantHas7Colleagues) {
  const Key k = make_key(0, 0, 0, 2);
  EXPECT_EQ(colleagues(k).size(), 7u);
}

TEST(Neighbor, OutsideDomainIsNullopt) {
  const Key k = make_key(0, 0, 0, 2);
  EXPECT_FALSE(neighbor(k, -1, 0, 0).has_value());
  EXPECT_TRUE(neighbor(k, 1, 0, 0).has_value());
}

TEST(Neighbor, IsSymmetric) {
  const Coord s = kGridSize / 8;
  const Key k = make_key(2 * s, 3 * s, 4 * s, 3);
  for (int dx = -1; dx <= 1; ++dx)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dz = -1; dz <= 1; ++dz) {
        auto n = neighbor(k, dx, dy, dz);
        if (!n) continue;
        auto back = neighbor(*n, -dx, -dy, -dz);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, k);
      }
}

TEST(Adjacent, SameLevelFaceNeighbors) {
  const Coord s = kGridSize / 4;
  const Key a = make_key(s, s, s, 2);
  const Key b = make_key(2 * s, s, s, 2);   // face neighbor
  const Key c = make_key(2 * s, 2 * s, 2 * s, 2);  // vertex neighbor
  const Key d = make_key(3 * s, s, s, 2);   // one apart
  EXPECT_TRUE(adjacent(a, b));
  EXPECT_TRUE(adjacent(b, a));
  EXPECT_TRUE(adjacent(a, c));
  EXPECT_FALSE(adjacent(a, d));
}

TEST(Adjacent, NotAdjacentToSelfOrAncestor) {
  const Key cell = cell_of_point(0.3, 0.3, 0.3);
  const Key k = ancestor_at(cell, 4);
  EXPECT_FALSE(adjacent(k, k));
  EXPECT_FALSE(adjacent(parent(k), k));
  EXPECT_FALSE(adjacent(k, parent(k)));
}

TEST(Adjacent, AcrossLevels) {
  // Coarse box [0,0.5)^3 at level 1 and a fine box just across x=0.5.
  const Key coarse = make_key(0, 0, 0, 1);
  const Coord half = kGridSize / 2;
  const Key fine = make_key(half, 0, 0, 4);
  EXPECT_TRUE(adjacent(coarse, fine));
  // A fine box strictly inside the far half is not adjacent.
  const Key far = make_key(half + (kGridSize / 16), 0, 0, 4);
  EXPECT_FALSE(adjacent(coarse, far));
}

TEST(Adjacent, MatchesBruteForceOnLevel3Grid) {
  // Exhaustive check at level 3 (8^3 octants): adjacency by coordinate
  // arithmetic must match the extent-based predicate.
  const Coord s = kGridSize / 8;
  std::vector<Key> all;
  for (Coord x = 0; x < 8; ++x)
    for (Coord y = 0; y < 8; ++y)
      for (Coord z = 0; z < 8; ++z)
        all.push_back(make_key(x * s, y * s, z * s, 3));
  Rng rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    const Key& a = all[rng.uniform_u64(all.size())];
    const Key& b = all[rng.uniform_u64(all.size())];
    const auto pa = anchor(a), pb = anchor(b);
    int maxd = 0;
    for (int d = 0; d < 3; ++d)
      maxd = std::max(maxd, std::abs(static_cast<int>(pa[d] / s) -
                                     static_cast<int>(pb[d] / s)));
    const bool expect = (maxd == 1);  // same-level: adjacent iff chebyshev == 1
    EXPECT_EQ(adjacent(a, b), expect);
  }
}

TEST(Geometry, RootBoxIsUnitCube) {
  const auto g = box_geometry(root());
  EXPECT_DOUBLE_EQ(g.half_width, 0.5);
  EXPECT_DOUBLE_EQ(g.center[0], 0.5);
}

TEST(Geometry, ChildBoxesHalve) {
  const Key k = child(child(root(), 5), 2);
  const auto g = box_geometry(k);
  EXPECT_DOUBLE_EQ(g.half_width, 0.125);
}

TEST(Geometry, CellContainsItsPoint) {
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(), y = rng.uniform(), z = rng.uniform();
    for (int level : {2, 5, 9}) {
      const Key k = ancestor_at(cell_of_point(x, y, z), level);
      const auto g = box_geometry(k);
      EXPECT_LE(std::abs(x - g.center[0]), g.half_width + 1e-12);
      EXPECT_LE(std::abs(y - g.center[1]), g.half_width + 1e-12);
      EXPECT_LE(std::abs(z - g.center[2]), g.half_width + 1e-12);
    }
  }
}

TEST(Overlaps, NestedAndDisjoint) {
  const Key cell = cell_of_point(0.6, 0.6, 0.6);
  const Key a = ancestor_at(cell, 2);
  const Key b = ancestor_at(cell, 7);
  EXPECT_TRUE(overlaps(a, b));
  EXPECT_TRUE(overlaps(b, a));
  const Key other = make_key(0, 0, 0, 2);
  EXPECT_FALSE(overlaps(a, other));
}

TEST(KeyHash, DistinguishesLevels) {
  const Key cell = cell_of_point(0.5, 0.25, 0.125);
  KeyHash h;
  EXPECT_NE(h(ancestor_at(cell, 5)), h(ancestor_at(cell, 6)));
}

TEST(ToString, Readable) {
  const Key k = make_key(kGridSize / 2, 0, kGridSize / 4, 2);
  EXPECT_EQ(to_string(k), "L2:(2,0,1)");
}

// Parameterized sweep: structural invariants must hold at every level.
class LevelSweep : public ::testing::TestWithParam<int> {};

TEST_P(LevelSweep, ChildRangesPartitionParentRange) {
  const int level = GetParam();
  const Key k = ancestor_at(cell_of_point(0.61, 0.37, 0.83), level);
  Bits expect_begin = range_begin(k);
  for (const Key& c : children(k)) {
    EXPECT_EQ(range_begin(c), expect_begin);
    expect_begin = range_end(c);
  }
  EXPECT_EQ(expect_begin, range_end(k));
}

TEST_P(LevelSweep, AncestorRangeContainsDescendantRange) {
  const int level = GetParam();
  const Key cell = cell_of_point(0.11, 0.92, 0.45);
  const Key k = ancestor_at(cell, level);
  const Key deep = ancestor_at(cell, std::min(level + 5, kMaxDepth));
  EXPECT_LE(range_begin(k), range_begin(deep));
  EXPECT_GE(range_end(k), range_end(deep));
}

TEST_P(LevelSweep, ColleaguesAreAdjacentAndSameLevel) {
  const int level = GetParam();
  const Key k = ancestor_at(cell_of_point(0.5, 0.5, 0.5), level);
  for (const Key& c : colleagues(k)) {
    EXPECT_EQ(c.level, k.level);
    EXPECT_TRUE(adjacent(c, k));
    EXPECT_NE(c, k);
  }
}

TEST_P(LevelSweep, CellSideTimesGridMatches) {
  const int level = GetParam();
  const Key k = ancestor_at(cell_of_point(0.3, 0.3, 0.3), level);
  EXPECT_EQ(static_cast<std::uint64_t>(cell_side(k)) << level, kGridSize);
}

INSTANTIATE_TEST_SUITE_P(Levels, LevelSweep,
                         ::testing::Values(1, 2, 5, 10, 20, 25));

TEST(KeyRanges, PreorderSortEqualsRangeOrderForDisjointOctants) {
  // For non-overlapping octants, Morton order == order of key ranges.
  Rng rng(77);
  std::vector<Key> keys;
  for (int i = 0; i < 64; ++i) {
    const Key cell =
        cell_of_point(rng.uniform(), rng.uniform(), rng.uniform());
    keys.push_back(ancestor_at(cell, 6));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (std::size_t i = 0; i + 1 < keys.size(); ++i)
    EXPECT_LE(range_end(keys[i]), range_begin(keys[i + 1]));
}

}  // namespace
}  // namespace pkifmm::morton
