#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "core/direct.hpp"
#include "core/fmm.hpp"
#include "gpu/evaluator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pkifmm::gpu {
namespace {

using octree::Distribution;

// ---------------------------------------------------------------------
// Device emulator
// ---------------------------------------------------------------------

TEST(Device, TransfersAreChargedBothWays) {
  StreamDevice dev;
  std::vector<float> host(1000, 1.0f);
  auto buf = dev.to_device(std::span<const float>(host));
  EXPECT_EQ(dev.transfer_bytes(), 4000u);
  auto back = dev.to_host(buf);
  EXPECT_EQ(dev.transfer_bytes(), 8000u);
  EXPECT_EQ(back, host);
  EXPECT_GT(dev.transfer_seconds(), 0.0);
}

TEST(Device, LaunchRecordsRooflineTime) {
  DeviceSpec spec;
  spec.flop_rate = 1e9;
  spec.gmem_bandwidth = 1e9;
  spec.kernel_launch_s = 1e-6;
  StreamDevice dev(spec);
  dev.launch("k", 10, 32, [](BlockCtx& ctx) {
    ctx.flops(100);       // 1000 flops over 10 blocks
    ctx.load_global(10);  // 100 bytes
  });
  const auto& ks = dev.kernels().at("k");
  EXPECT_EQ(ks.launches, 1u);
  EXPECT_EQ(ks.flops, 1000u);
  EXPECT_EQ(ks.gmem_bytes, 100u);
  // compute-bound: 1e-6 launch + 1000/1e9.
  EXPECT_NEAR(ks.modeled_seconds, 1e-6 + 1e-6, 1e-12);
}

TEST(Device, UncoalescedAccessesArePenalized) {
  StreamDevice dev;
  dev.launch("k", 1, 32, [&](BlockCtx& ctx) {
    ctx.load_global(100, /*coalesced=*/false);
  });
  EXPECT_EQ(dev.kernels().at("k").gmem_bytes,
            static_cast<std::uint64_t>(100 * dev.spec().uncoalesced_penalty));
}

TEST(Device, SharedMemoryIsFreeInTheModel) {
  StreamDevice dev;
  dev.launch("k", 4, 16, [](BlockCtx& ctx) {
    auto s = ctx.shared(64);
    s[0] = 1.0f;
  });
  EXPECT_EQ(dev.kernels().at("k").gmem_bytes, 0u);
}

TEST(Device, ResetClearsStats) {
  StreamDevice dev;
  dev.launch("k", 1, 1, [](BlockCtx& ctx) { ctx.flops(5); });
  dev.reset_stats();
  EXPECT_TRUE(dev.kernels().empty());
  EXPECT_EQ(dev.transfer_bytes(), 0u);
}

TEST(Device, NanMaxTrickZeroesSelfInteraction) {
  // The exact float sequence from the paper: inf -> NaN -> max() -> 0.
  const float inv = 1.0f / std::sqrt(0.0f);
  EXPECT_TRUE(std::isinf(inv));
  const float cleaned = inv + (inv - inv);
  EXPECT_TRUE(std::isnan(cleaned));
  EXPECT_EQ(std::fmax(cleaned, 0.0f), 0.0f);
}

// ---------------------------------------------------------------------
// SoA translation
// ---------------------------------------------------------------------

struct SeqLet {
  octree::Let let;
  core::Tables* tables;
};

octree::Let make_let(comm::RankCtx& ctx, Distribution dist, std::uint64_t n,
                     int q) {
  octree::BuildParams bp;
  bp.max_points_per_leaf = q;
  auto tree = octree::build_distributed_tree(
      ctx.comm,
      octree::generate_points(dist, n, ctx.rank(), ctx.size(), 1, 11), bp);
  octree::Let let = octree::build_let(ctx.comm, tree);
  octree::build_interaction_lists(let);
  return let;
}

TEST(Soa, TargetsPaddedToBlockMultiples) {
  kernels::LaplaceKernel kern;
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 50;
  const core::Tables tables(kern, opts);
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    auto let = make_let(ctx, Distribution::kUniform, 2000, 50);
    const GpuLet g = build_gpu_let(tables, let, 64);
    EXPECT_EQ(g.padded_targets() % 64, 0u);
    EXPECT_EQ(g.chunks(), g.padded_targets() / 64);
    // Every real point appears exactly once as a source.
    EXPECT_EQ(g.sx.size(), let.points.size());
    std::size_t total_targets = 0;
    for (const auto& box : g.boxes) total_targets += box.count;
    std::size_t owned = 0;
    for (const auto& nd : let.nodes)
      if (nd.owned && nd.global_leaf) owned += nd.point_count;
    EXPECT_EQ(total_targets, owned);
    EXPECT_GT(g.footprint_bytes(), 0u);
  });
}

TEST(Soa, SegmentsMatchUlists) {
  kernels::LaplaceKernel kern;
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 30;
  const core::Tables tables(kern, opts);
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    auto let = make_let(ctx, Distribution::kEllipsoid, 1500, 30);
    const GpuLet g = build_gpu_let(tables, let, 32);
    for (const auto& box : g.boxes) {
      std::size_t seg_points = 0;
      for (auto s = box.seg_begin; s < box.seg_end; ++s)
        seg_points += g.seg_src_count[s];
      std::size_t list_points = 0;
      for (auto ui : let.u.of(box.let_node))
        list_points += let.nodes[ui].point_count;
      EXPECT_EQ(seg_points, list_points);
    }
  });
}

TEST(Soa, RejectsVectorKernels) {
  kernels::StokesKernel kern;
  core::FmmOptions opts;
  opts.surface_n = 4;
  const core::Tables tables(kern, opts);
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    auto let = make_let(ctx, Distribution::kUniform, 300, 30);
    EXPECT_THROW(build_gpu_let(tables, let, 64), CheckFailure);
  });
}

// ---------------------------------------------------------------------
// GPU vs CPU numerical agreement
// ---------------------------------------------------------------------

void run_gpu_vs_cpu(Distribution dist, int q, int p, int surface_n,
                    std::uint64_t n_points, int block) {
  kernels::LaplaceKernel kern;
  core::FmmOptions opts;
  opts.surface_n = surface_n;
  opts.max_points_per_leaf = q;
  const core::Tables tables(kern, opts);

  comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    auto let = make_let(ctx, dist, n_points, q);

    core::Evaluator cpu(tables, let, ctx);
    cpu.run();

    StreamDevice dev;
    GpuEvaluator gpu(tables, let, ctx, dev, block);
    gpu.run();

    // Compare potentials for owned points; single precision on the
    // device bounds the agreement to ~1e-5 relative.
    std::vector<double> pc, pg;
    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      const auto& nd = let.nodes[i];
      if (!(nd.owned && nd.global_leaf)) continue;
      for (std::uint32_t k = 0; k < nd.point_count; ++k) {
        pc.push_back(cpu.potential()[nd.point_begin + k]);
        pg.push_back(gpu.potential()[nd.point_begin + k]);
      }
    }
    ASSERT_FALSE(pc.empty());
    EXPECT_LT(rel_l2_error(pg, pc), 2e-4);

    // Device stats exist for every offloaded kernel.
    EXPECT_GT(dev.kernels().at("uli").flops, 0u);
    EXPECT_GT(dev.kernels().at("s2u").flops, 0u);
    EXPECT_GT(dev.kernels().at("d2t").flops, 0u);
    EXPECT_GT(dev.kernels().at("vli").flops, 0u);
    EXPECT_GT(dev.modeled_seconds(), 0.0);
  });
}

TEST(GpuFmm, MatchesCpuUniformSequential) {
  run_gpu_vs_cpu(Distribution::kUniform, 60, 1, 4, 3000, 64);
}

TEST(GpuFmm, MatchesCpuNonuniform) {
  run_gpu_vs_cpu(Distribution::kEllipsoid, 30, 1, 4, 2000, 64);
}

TEST(GpuFmm, MatchesCpuParallel4) {
  run_gpu_vs_cpu(Distribution::kUniform, 40, 4, 4, 2500, 64);
}

TEST(GpuFmm, SmallBlockSize) {
  run_gpu_vs_cpu(Distribution::kUniform, 50, 1, 4, 1500, 16);
}

TEST(GpuFmm, HighAccuracySurfaces) {
  run_gpu_vs_cpu(Distribution::kUniform, 60, 1, 6, 2000, 64);
}

TEST(GpuFmm, AgreesWithDirectSummation) {
  // End-to-end: GPU-evaluated FMM against the O(N^2) reference.
  kernels::LaplaceKernel kern;
  core::FmmOptions opts;
  opts.surface_n = 6;
  opts.max_points_per_leaf = 50;
  const core::Tables tables(kern, opts);
  comm::Runtime::run(2, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(Distribution::kUniform, 2000,
                                       ctx.rank(), 2, 1, 13);
    octree::BuildParams bp;
    bp.max_points_per_leaf = 50;
    auto tree = octree::build_distributed_tree(ctx.comm, pts, bp);
    octree::Let let = octree::build_let(ctx.comm, tree);
    octree::build_interaction_lists(let);

    StreamDevice dev;
    GpuEvaluator gpu(tables, let, ctx, dev, 64);
    gpu.run();

    // Exact potentials for owned points.
    std::vector<octree::PointRec> owned;
    std::vector<double> approx;
    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      const auto& nd = let.nodes[i];
      if (!(nd.owned && nd.global_leaf)) continue;
      for (std::uint32_t k = 0; k < nd.point_count; ++k) {
        owned.push_back(let.points[nd.point_begin + k]);
        approx.push_back(gpu.potential()[nd.point_begin + k]);
      }
    }
    const auto exact = core::direct_reference(ctx.comm, kern, owned);
    EXPECT_LT(rel_l2_error(approx, exact), 1e-4);
  });
}

TEST(GpuFmm, UlistArithmeticIntensityBeatsVlist) {
  // The paper's tuning argument (Table III / Fig. 6): ULI performs
  // O(b^2) flops per O(b) loads while the diagonal VLI is ~1 flop/byte.
  kernels::LaplaceKernel kern;
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 100;
  const core::Tables tables(kern, opts);
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    auto let = make_let(ctx, Distribution::kUniform, 4000, 100);
    StreamDevice dev;
    GpuEvaluator gpu(tables, let, ctx, dev, 64);
    gpu.run();
    const auto& uli = dev.kernels().at("uli");
    const auto& vli = dev.kernels().at("vli");
    const double uli_intensity = double(uli.flops) / double(uli.gmem_bytes);
    const double vli_intensity = double(vli.flops) / double(vli.gmem_bytes);
    EXPECT_GT(uli_intensity, 4.0 * vli_intensity);
  });
}

TEST(GpuFmm, TranslationCostIsMinor) {
  // Paper abstract: the data-structure translation "can be accomplished
  // efficiently". Check it against evaluation wall time.
  kernels::LaplaceKernel kern;
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 100;
  const core::Tables tables(kern, opts);
  auto reports = comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    auto let = make_let(ctx, Distribution::kUniform, 20000, 100);
    StreamDevice dev;
    GpuEvaluator gpu(tables, let, ctx, dev, 64);
    gpu.run();
  });
  const auto& tp = reports[0].time_phases;
  double eval = 0.0;
  for (const auto& [name, secs] : tp)
    if (name.rfind("eval.", 0) == 0) eval += secs;
  EXPECT_LT(tp.at("gpu.translate"), 0.5 * eval);
}

}  // namespace
}  // namespace pkifmm::gpu
