#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>

#include "comm/comm.hpp"
#include "comm/sort.hpp"
#include "util/rng.hpp"

namespace pkifmm::comm {
namespace {

TEST(Bytes, PackReadRoundTrip) {
  Bytes b;
  pack(b, 42);
  pack(b, 3.5);
  pack(b, std::vector<int>{1, 2, 3});
  Reader r(b);
  EXPECT_EQ(r.read<int>(), 42);
  EXPECT_DOUBLE_EQ(r.read<double>(), 3.5);
  EXPECT_EQ(r.read_vector<int>(), (std::vector<int>{1, 2, 3}));
  EXPECT_TRUE(r.done());
}

TEST(Bytes, UnderrunThrows) {
  Bytes b;
  pack(b, 1);
  Reader r(b);
  r.read<int>();
  EXPECT_ANY_THROW(r.read<double>());
}

TEST(Bytes, SpanRoundTrip) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  auto b = to_bytes(std::span<const double>(v));
  EXPECT_EQ(from_bytes<double>(b), v);
}

TEST(Runtime, SingleRankRuns) {
  auto reports = Runtime::run(1, [](RankCtx& ctx) {
    EXPECT_EQ(ctx.rank(), 0);
    EXPECT_EQ(ctx.size(), 1);
    ctx.flops.add("work", 10);
  });
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].total_flops, 10u);
}

TEST(Runtime, ExceptionsPropagateWithoutDeadlock) {
  EXPECT_THROW(Runtime::run(4,
                            [](RankCtx& ctx) {
                              if (ctx.rank() == 2)
                                throw std::runtime_error("rank 2 failed");
                              // Other ranks block; poison must wake them.
                              ctx.comm.recv_bytes((ctx.rank() + 1) % 4, 7);
                            }),
               std::runtime_error);
}

TEST(PointToPoint, RingExchange) {
  for (int p : {2, 3, 5, 8}) {
    Runtime::run(p, [p](RankCtx& ctx) {
      const int r = ctx.rank();
      std::vector<int> payload = {r, r * r};
      ctx.comm.send((r + 1) % p, 3, std::span<const int>(payload));
      auto got = ctx.comm.recv<int>((r - 1 + p) % p, 3);
      const int prev = (r - 1 + p) % p;
      EXPECT_EQ(got, (std::vector<int>{prev, prev * prev}));
    });
  }
}

TEST(PointToPoint, NonOvertakingPerTag) {
  Runtime::run(2, [](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        std::vector<int> m = {i};
        ctx.comm.send(1, 5, std::span<const int>(m));
      }
    } else {
      for (int i = 0; i < 10; ++i)
        EXPECT_EQ(ctx.comm.recv<int>(0, 5).at(0), i);
    }
  });
}

TEST(Barrier, CompletesForVariousSizes) {
  for (int p : {1, 2, 3, 4, 7, 16}) {
    Runtime::run(p, [](RankCtx& ctx) {
      for (int i = 0; i < 3; ++i) ctx.comm.barrier();
    });
  }
}

TEST(Allgather, GathersInRankOrder) {
  for (int p : {1, 2, 5, 8}) {
    Runtime::run(p, [p](RankCtx& ctx) {
      auto all = ctx.comm.allgather(ctx.rank() * 10);
      ASSERT_EQ(static_cast<int>(all.size()), p);
      for (int k = 0; k < p; ++k) EXPECT_EQ(all[k], k * 10);
    });
  }
}

TEST(Allgatherv, VariableSizes) {
  Runtime::run(4, [](RankCtx& ctx) {
    std::vector<int> mine(ctx.rank(), ctx.rank());  // rank r sends r copies of r
    auto all = ctx.comm.allgatherv(std::span<const int>(mine));
    ASSERT_EQ(all.size(), 4u);
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(all[k].size(), static_cast<std::size_t>(k));
      for (int v : all[k]) EXPECT_EQ(v, k);
    }
  });
}

TEST(AllgathervConcat, OrderedConcatenation) {
  Runtime::run(3, [](RankCtx& ctx) {
    std::vector<int> mine = {ctx.rank()};
    auto cat = ctx.comm.allgatherv_concat(std::span<const int>(mine));
    EXPECT_EQ(cat, (std::vector<int>{0, 1, 2}));
  });
}

TEST(Alltoallv, PersonalizedExchange) {
  Runtime::run(4, [](RankCtx& ctx) {
    std::vector<std::vector<int>> out(4);
    for (int k = 0; k < 4; ++k) out[k] = {ctx.rank() * 100 + k};
    auto in = ctx.comm.alltoallv(std::move(out));
    for (int k = 0; k < 4; ++k) {
      ASSERT_EQ(in[k].size(), 1u);
      EXPECT_EQ(in[k][0], k * 100 + ctx.rank());
    }
  });
}

TEST(Allreduce, SumAndMax) {
  Runtime::run(6, [](RankCtx& ctx) {
    EXPECT_EQ(ctx.comm.allreduce_sum(ctx.rank()), 15);
    EXPECT_EQ(ctx.comm.allreduce_max(ctx.rank() % 4), 3);
  });
}

TEST(Allreduce, Vectors) {
  Runtime::run(3, [](RankCtx& ctx) {
    std::vector<std::uint64_t> mine = {1u, static_cast<std::uint64_t>(ctx.rank())};
    auto sum = ctx.comm.allreduce(std::span<const std::uint64_t>(mine),
                                  [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(sum[0], 3u);
    EXPECT_EQ(sum[1], 3u);
  });
}

TEST(Exscan, ExclusivePrefixSum) {
  Runtime::run(5, [](RankCtx& ctx) {
    const int got = ctx.comm.exscan_sum(ctx.rank() + 1);
    // exscan of [1,2,3,4,5]: rank r gets sum of first r values.
    int expect = 0;
    for (int k = 0; k < ctx.rank(); ++k) expect += k + 1;
    EXPECT_EQ(got, expect);
  });
}

TEST(Cost, SendsAreCountedPerPhase) {
  auto reports = Runtime::run(2, [](RankCtx& ctx) {
    ctx.comm.cost().set_phase("alpha");
    std::vector<int> m = {1, 2, 3};
    if (ctx.rank() == 0) ctx.comm.send(1, 9, std::span<const int>(m));
    else ctx.comm.recv<int>(0, 9);
    ctx.comm.cost().set_phase("beta");
    ctx.comm.barrier();
  });
  const auto a0 = reports[0].cost.get("alpha");
  EXPECT_EQ(a0.msgs_sent, 1u);
  EXPECT_EQ(a0.bytes_sent, 3 * sizeof(int));
  EXPECT_EQ(reports[1].cost.get("alpha").bytes_recv, 3 * sizeof(int));
  EXPECT_GT(reports[0].cost.get("beta").msgs_sent, 0u);  // barrier traffic
}

TEST(Cost, AlltoallvBytesMatchPayloads) {
  auto reports = Runtime::run(3, [](RankCtx& ctx) {
    ctx.comm.cost().set_phase("x");
    std::vector<std::vector<std::uint64_t>> out(3);
    for (int k = 0; k < 3; ++k)
      if (k != ctx.rank()) out[k].assign(10 * (k + 1), 7);
    (void)ctx.comm.alltoallv(std::move(out));
  });
  // Rank 0 sends 20 u64 to rank 1 and 30 to rank 2 = 400 bytes.
  EXPECT_EQ(reports[0].cost.get("x").bytes_sent, 50 * sizeof(std::uint64_t));
  EXPECT_EQ(reports[0].cost.get("x").msgs_sent, 2u);
  // Received: 10 from each of ranks 1 and 2.
  EXPECT_EQ(reports[0].cost.get("x").bytes_recv, 20 * sizeof(std::uint64_t));
}

TEST(Cost, SendVolumeEqualsRecvVolumeGlobally) {
  auto reports = Runtime::run(4, [](RankCtx& ctx) {
    Rng rng(3, ctx.rank());
    std::vector<std::uint64_t> data(500);
    for (auto& v : data) v = rng.next_u64();
    sample_sort(ctx.comm, data, std::less<>{});
    ctx.comm.barrier();
  });
  std::uint64_t sent = 0, recv = 0;
  for (const auto& rep : reports) {
    sent += rep.cost.total().bytes_sent;
    recv += rep.cost.total().bytes_recv;
  }
  EXPECT_EQ(sent, recv);  // conservation on the fabric
  EXPECT_GT(sent, 0u);
}

TEST(CostModel, AlphaBetaFormula) {
  CostModel m;
  m.latency_s = 1e-6;
  m.inv_bandwidth_s = 1e-9;
  EXPECT_DOUBLE_EQ(m.comm_time(10, 1000), 10e-6 + 1e-6);
  EXPECT_DOUBLE_EQ(m.compute_time(500e6), 1.0);
}

struct Rec {
  std::uint64_t key;
  int origin;
};

TEST(SampleSort, GloballySortsRandomData) {
  for (int p : {1, 2, 4, 7}) {
    Runtime::run(p, [](RankCtx& ctx) {
      Rng rng(1234, ctx.rank());
      std::vector<Rec> data(500);
      for (auto& r : data) r = {rng.next_u64(), ctx.rank()};
      const auto total_before = ctx.comm.allreduce_sum(
          static_cast<std::uint64_t>(data.size()));

      sample_sort(ctx.comm, data,
                  [](const Rec& a, const Rec& b) { return a.key < b.key; });

      // Locally sorted.
      EXPECT_TRUE(std::is_sorted(data.begin(), data.end(),
                                 [](const Rec& a, const Rec& b) {
                                   return a.key < b.key;
                                 }));
      // Globally sorted across rank boundaries.
      const std::uint64_t my_first = data.empty() ? 0 : data.front().key;
      const std::uint64_t my_last = data.empty() ? 0 : data.back().key;
      auto firsts = ctx.comm.allgather(my_first);
      auto lasts = ctx.comm.allgather(my_last);
      auto sizes = ctx.comm.allgather(static_cast<std::uint64_t>(data.size()));
      std::uint64_t prev_last = 0;
      for (int k = 0; k < ctx.size(); ++k) {
        if (sizes[k] == 0) continue;
        EXPECT_GE(firsts[k], prev_last);
        prev_last = lasts[k];
      }
      // No elements lost or duplicated.
      const auto total_after = ctx.comm.allreduce_sum(
          static_cast<std::uint64_t>(data.size()));
      EXPECT_EQ(total_before, total_after);
    });
  }
}

TEST(SampleSort, BalancedWithinFactor) {
  const int p = 4;
  Runtime::run(p, [p](RankCtx& ctx) {
    Rng rng(99, ctx.rank());
    std::vector<Rec> data(2000);
    for (auto& r : data) r = {rng.next_u64(), 0};
    sample_sort(ctx.comm, data,
                [](const Rec& a, const Rec& b) { return a.key < b.key; });
    auto sizes = ctx.comm.allgather(static_cast<std::uint64_t>(data.size()));
    const std::uint64_t total = std::accumulate(sizes.begin(), sizes.end(), 0ull);
    for (auto s : sizes) EXPECT_LT(s, 3 * total / p);  // loose balance bound
  });
}

TEST(BitonicSort, SortsEqualChunksGlobally) {
  for (int p : {2, 4, 8}) {
    Runtime::run(p, [](RankCtx& ctx) {
      Rng rng(17, ctx.rank());
      std::vector<std::uint64_t> data(256);
      for (auto& v : data) v = rng.next_u64();
      bitonic_sort_equal(ctx.comm, data,
                         std::less<std::uint64_t>{});
      EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
      EXPECT_EQ(data.size(), 256u);
      // Cross-rank boundaries sorted.
      auto firsts = ctx.comm.allgather(data.front());
      auto lasts = ctx.comm.allgather(data.back());
      for (int k = 0; k + 1 < ctx.size(); ++k)
        EXPECT_LE(lasts[k], firsts[k + 1]);
    });
  }
}

TEST(BitonicSort, PreservesMultiset) {
  Runtime::run(4, [](RankCtx& ctx) {
    std::vector<std::uint64_t> data(64);
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = (ctx.rank() * 64 + i) % 17;  // many duplicates
    std::uint64_t sum_before = 0;
    for (auto v : data) sum_before += v;
    sum_before = ctx.comm.allreduce_sum(sum_before);
    bitonic_sort_equal(ctx.comm, data, std::less<std::uint64_t>{});
    std::uint64_t sum_after = 0;
    for (auto v : data) sum_after += v;
    EXPECT_EQ(ctx.comm.allreduce_sum(sum_after), sum_before);
  });
}

TEST(BitonicSort, RejectsNonPowerOfTwo) {
  EXPECT_THROW(Runtime::run(3,
                            [](RankCtx& ctx) {
                              std::vector<int> d(8, ctx.rank());
                              bitonic_sort_equal(ctx.comm, d, std::less<>{});
                            }),
               CheckFailure);
}

TEST(BitonicSort, RejectsUnequalChunks) {
  EXPECT_THROW(Runtime::run(2,
                            [](RankCtx& ctx) {
                              std::vector<int> d(ctx.rank() + 1, 0);
                              bitonic_sort_equal(ctx.comm, d, std::less<>{});
                            }),
               CheckFailure);
}

TEST(RepartitionBySplitters, ExactIntervals) {
  Runtime::run(4, [](RankCtx& ctx) {
    // Global data 0..399, initially spread by rank; splitters at 0,100,200,300.
    std::vector<Rec> data;
    for (int i = 0; i < 100; ++i)
      data.push_back({static_cast<std::uint64_t>(ctx.rank() + 4 * i), 0});
    std::sort(data.begin(), data.end(),
              [](const Rec& a, const Rec& b) { return a.key < b.key; });
    std::vector<std::uint64_t> splitters = {0, 100, 200, 300};
    repartition_by_splitters(
        ctx.comm, data, splitters, [](const Rec& r) { return r.key; },
        [](std::uint64_t a, std::uint64_t b) { return a < b; });
    EXPECT_EQ(data.size(), 100u);
    for (const Rec& r : data) {
      EXPECT_GE(r.key, static_cast<std::uint64_t>(ctx.rank()) * 100);
      EXPECT_LT(r.key, static_cast<std::uint64_t>(ctx.rank() + 1) * 100);
    }
  });
}

TEST(RebalanceEqual, EvensOutSkewedCounts) {
  Runtime::run(4, [](RankCtx& ctx) {
    // Rank 0 has everything.
    std::vector<Rec> data;
    if (ctx.rank() == 0)
      for (int i = 0; i < 400; ++i)
        data.push_back({static_cast<std::uint64_t>(i), 0});
    rebalance_equal(ctx.comm, data);
    EXPECT_EQ(data.size(), 100u);
    // Order preserved: rank k holds [100k, 100k+100).
    for (std::size_t i = 0; i < data.size(); ++i)
      EXPECT_EQ(data[i].key, static_cast<std::uint64_t>(ctx.rank()) * 100 + i);
  });
}

TEST(WeightedPartition, BalancesSkewedWeights) {
  Runtime::run(4, [](RankCtx& ctx) {
    // Element weights: the first half of the global order is 10x heavier.
    std::vector<Rec> data;
    for (int i = 0; i < 250; ++i) {
      const std::uint64_t gid = ctx.rank() * 250 + i;
      data.push_back({gid, 0});
    }
    auto weight = [](const Rec& r) { return r.key < 500 ? 10.0 : 1.0; };
    weighted_partition(ctx.comm, data, weight);

    double my_w = 0.0;
    for (const auto& r : data) my_w += weight(r);
    const double total = ctx.comm.allreduce_sum(my_w);
    // Each rank within 50% of the ideal share.
    EXPECT_LT(my_w, 1.5 * total / 4);
    EXPECT_GT(my_w, 0.5 * total / 4);
    // Order preserved.
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end(),
                               [](const Rec& a, const Rec& b) {
                                 return a.key < b.key;
                               }));
  });
}

TEST(PointToPoint, LargePayloadSurvives) {
  Runtime::run(2, [](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      std::vector<double> big(1 << 18);  // 2 MB
      for (std::size_t i = 0; i < big.size(); ++i) big[i] = double(i);
      ctx.comm.send(1, 2, std::span<const double>(big));
    } else {
      auto got = ctx.comm.recv<double>(0, 2);
      ASSERT_EQ(got.size(), std::size_t(1) << 18);
      EXPECT_EQ(got[12345], 12345.0);
      EXPECT_EQ(got.back(), double(got.size() - 1));
    }
  });
}

TEST(PointToPoint, InterleavedTagsDoNotCross) {
  Runtime::run(2, [](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      for (int i = 0; i < 5; ++i) {
        std::vector<int> a = {i}, b = {100 + i};
        ctx.comm.send(1, 10, std::span<const int>(a));
        ctx.comm.send(1, 11, std::span<const int>(b));
      }
    } else {
      // Drain tag 11 first, then tag 10: no cross-talk allowed.
      for (int i = 0; i < 5; ++i)
        EXPECT_EQ(ctx.comm.recv<int>(0, 11).at(0), 100 + i);
      for (int i = 0; i < 5; ++i)
        EXPECT_EQ(ctx.comm.recv<int>(0, 10).at(0), i);
    }
  });
}

TEST(Alltoallv, EmptyVectorsAreDelivered) {
  Runtime::run(4, [](RankCtx& ctx) {
    std::vector<std::vector<int>> out(4);  // everything empty
    auto in = ctx.comm.alltoallv(std::move(out));
    for (const auto& v : in) EXPECT_TRUE(v.empty());
  });
}

TEST(Collectives, ManySmallRoundsStayInLockstep) {
  // Collective tag sequencing must survive many mixed collectives.
  Runtime::run(3, [](RankCtx& ctx) {
    for (int i = 0; i < 50; ++i) {
      auto all = ctx.comm.allgather(ctx.rank() + i);
      EXPECT_EQ(all[1], 1 + i);
      ctx.comm.barrier();
      EXPECT_EQ(ctx.comm.allreduce_sum(1), 3);
    }
  });
}

TEST(SampleSort, HandlesMassiveDuplicates) {
  Runtime::run(4, [](RankCtx& ctx) {
    // Only three distinct keys across the whole dataset.
    Rng rng(31, ctx.rank());
    std::vector<std::uint64_t> data(3000);
    for (auto& v : data) v = rng.uniform_u64(3);
    sample_sort(ctx.comm, data, std::less<>{});
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
    const auto total =
        ctx.comm.allreduce_sum(static_cast<std::uint64_t>(data.size()));
    EXPECT_EQ(total, 12000u);
  });
}

TEST(SampleSort, AlreadySortedInputIsStable) {
  Runtime::run(2, [](RankCtx& ctx) {
    std::vector<std::uint64_t> data;
    for (int i = 0; i < 1000; ++i)
      data.push_back(static_cast<std::uint64_t>(ctx.rank()) * 1000 + i);
    sample_sort(ctx.comm, data, std::less<>{});
    EXPECT_TRUE(std::is_sorted(data.begin(), data.end()));
    const auto total =
        ctx.comm.allreduce_sum(static_cast<std::uint64_t>(data.size()));
    EXPECT_EQ(total, 2000u);
  });
}

TEST(RebalanceEqual, NoOpWhenAlreadyBalanced) {
  Runtime::run(4, [](RankCtx& ctx) {
    std::vector<std::uint64_t> data(100, ctx.rank());
    rebalance_equal(ctx.comm, data);
    EXPECT_EQ(data.size(), 100u);
    for (auto v : data) EXPECT_EQ(v, static_cast<std::uint64_t>(ctx.rank()));
  });
}

TEST(Fabric, PoisonWakesEveryConcurrentBlockedRecv) {
  // All waiters block on messages that will never arrive; poison() must
  // wake each one with FabricPoisoned — none may return a payload, none
  // may stay parked (a hung waiter would deadlock the join below).
  constexpr int kWaiters = 8;
  Fabric fabric(kWaiters + 1);
  std::atomic<int> poisoned{0};
  std::atomic<int> started{0};
  std::vector<std::thread> waiters;
  for (int r = 0; r < kWaiters; ++r)
    waiters.emplace_back([&, r] {
      started.fetch_add(1);
      try {
        (void)fabric.recv(r, kWaiters, /*tag=*/7);
        ADD_FAILURE() << "recv on rank " << r << " returned a payload";
      } catch (const FabricPoisoned&) {
        poisoned.fetch_add(1);
      }
    });
  while (started.load() < kWaiters) std::this_thread::yield();
  fabric.poison();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(poisoned.load(), kWaiters);

  // Poison is sticky: a recv entered after the fact throws immediately
  // instead of parking forever.
  EXPECT_THROW((void)fabric.recv(0, 1, 7), FabricPoisoned);
}

TEST(Fabric, RecvReportsWhetherItActuallyBlocked) {
  Fabric fabric(2);
  const std::vector<int> payload = {11};
  // Message already queued: the receive must report blocked = false.
  fabric.send(0, 1, 3, to_bytes(std::span<const int>(payload)));
  bool blocked = true;
  (void)fabric.recv(1, 0, 3, &blocked);
  EXPECT_FALSE(blocked);

  // Queue empty on entry: the receive waits and reports blocked = true.
  std::thread sender(
      [&] { fabric.send(0, 1, 4, to_bytes(std::span<const int>(payload))); });
  blocked = false;
  (void)fabric.recv(1, 0, 4, &blocked);
  sender.join();
  // Racy in one direction only: the sender may win, making blocked
  // false — but a pre-queued message can never report true, which is
  // the classification-correctness half that matters. Assert the
  // deterministic case above; here just exercise the path.
  SUCCEED();
}

TEST(PointToPoint, ProbeSeesQueuedMessageWithoutConsuming) {
  Runtime::run(2, [](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      std::vector<int> v = {11};
      ctx.comm.send(1, 9, std::span<const int>(v));
      ctx.comm.barrier();
    } else {
      EXPECT_FALSE(ctx.comm.probe(0, 8));  // wrong tag: nothing queued
      ctx.comm.barrier();  // sender has definitely enqueued by now
      EXPECT_TRUE(ctx.comm.probe(0, 9));
      EXPECT_TRUE(ctx.comm.probe(0, 9));  // probe must not consume
      EXPECT_EQ(ctx.comm.recv<int>(0, 9), std::vector<int>{11});
      EXPECT_FALSE(ctx.comm.probe(0, 9));
    }
  });
}

TEST(WeightedPartition, ZeroWeightsFallBackToEqualCounts) {
  Runtime::run(3, [](RankCtx& ctx) {
    std::vector<Rec> data;
    if (ctx.rank() == 1)
      for (int i = 0; i < 300; ++i)
        data.push_back({static_cast<std::uint64_t>(i), 0});
    weighted_partition(ctx.comm, data, [](const Rec&) { return 0.0; });
    EXPECT_EQ(data.size(), 100u);
  });
}

}  // namespace
}  // namespace pkifmm::comm
