#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <thread>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/flops.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace pkifmm {
namespace {

TEST(Check, PassingCheckIsSilent) { EXPECT_NO_THROW(PKIFMM_CHECK(1 + 1 == 2)); }

TEST(Check, FailingCheckThrowsWithLocation) {
  try {
    PKIFMM_CHECK_MSG(false, "context " << 42);
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, RankStreamsAreIndependent) {
  Rng a(7, 0), b(7, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

/// Regression for the weak (seed, rank) derivation: the old
/// `seed ^ (c * (rank+1))` mix was linear, so adjacent ranks could
/// produce correlated or colliding streams for adversarial seeds. With
/// the SplitMix64 avalanche, adjacent-rank streams must differ in every
/// one of the first 64 draws, for a spread of seeds including the ones
/// the benches use.
TEST(Rng, AdjacentRankStreamsFullyDiverge) {
  for (std::uint64_t seed : {0ull, 1ull, 7ull, 42ull, 61ull,
                             0x9e3779b97f4a7c15ull, ~0ull}) {
    for (int rank = 0; rank < 8; ++rank) {
      Rng a(seed, rank), b(seed, rank + 1);
      for (int i = 0; i < 64; ++i)
        ASSERT_NE(a.next_u64(), b.next_u64())
            << "seed=" << seed << " rank=" << rank << " draw=" << i;
    }
  }
}

/// (seed, rank) must also not collide with plain seeds or other pairs
/// in trivial ways: spot-check a small grid for distinct first draws.
TEST(Rng, SeedRankPairsAreDistinct) {
  std::set<std::uint64_t> first_draws;
  for (std::uint64_t seed = 0; seed < 16; ++seed)
    for (int rank = 0; rank < 16; ++rank)
      first_draws.insert(Rng(seed, rank).next_u64());
  EXPECT_EQ(first_draws.size(), 256u);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(5);
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(r.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
}

TEST(Rng, BoundedIntegerIsInRange) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.uniform_u64(37), 37u);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.seconds(), 0.015);
}

TEST(PhaseTimer, AccumulatesNamedPhases) {
  PhaseTimer pt;
  pt.add("a", 1.5);
  pt.add("a", 0.5);
  pt.add("b", 3.0);
  EXPECT_DOUBLE_EQ(pt.get("a"), 2.0);
  EXPECT_DOUBLE_EQ(pt.get("b"), 3.0);
  EXPECT_DOUBLE_EQ(pt.get("missing"), 0.0);
}

TEST(PhaseTimer, ScopeAddsOnDestruction) {
  PhaseTimer pt;
  {
    auto s = pt.scope("x");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(pt.get("x"), 0.0);
}

TEST(FlopCounter, TracksPerPhaseAndTotal) {
  FlopCounter fc;
  fc.add("uli", 100);
  fc.add("vli", 50);
  fc.add("uli", 10);
  EXPECT_EQ(fc.get("uli"), 110u);
  EXPECT_EQ(fc.get("vli"), 50u);
  EXPECT_EQ(fc.total(), 160u);
}

TEST(Summary, ComputesMaxAvgMin) {
  const double xs[] = {1.0, 2.0, 3.0, 6.0};
  auto s = Summary::of(xs);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.avg, 3.0);
  EXPECT_DOUBLE_EQ(s.imbalance(), 2.0);
}

TEST(Summary, EmptyIsZero) {
  auto s = Summary::of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

/// imbalance() is max/avg ONLY when the mean is finite and nonzero;
/// every degenerate case reports 1.0 ("balanced") instead of a
/// meaningless or infinite quotient.
TEST(Summary, ImbalanceEdgeCases) {
  // Empty sample set.
  EXPECT_DOUBLE_EQ(Summary::of({}).imbalance(), 1.0);
  // All-zero metric (phase nobody entered).
  const double zeros[] = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(Summary::of(zeros).imbalance(), 1.0);
  // Signed samples cancelling to a zero mean: max/avg would be inf.
  const double cancel[] = {-2.0, 2.0};
  EXPECT_DOUBLE_EQ(Summary::of(cancel).imbalance(), 1.0);
  // Non-finite mean (a sample overflowed): no information either.
  const double inf[] = {1.0, std::numeric_limits<double>::infinity()};
  EXPECT_DOUBLE_EQ(Summary::of(inf).imbalance(), 1.0);
  // Single sample is perfectly balanced by definition.
  const double one[] = {3.5};
  EXPECT_DOUBLE_EQ(Summary::of(one).imbalance(), 1.0);
  // Signed samples with a nonzero mean keep the raw quotient.
  const double skew[] = {-1.0, 3.0};  // avg 1.0, max 3.0
  EXPECT_DOUBLE_EQ(Summary::of(skew).imbalance(), 3.0);
}

/// Accumulator::merge (Chan et al.) must agree with a single
/// accumulator that saw the concatenated stream — this is what lets
/// cross-rank aggregation fold per-run accumulators without revisiting
/// samples.
TEST(Accumulator, MergeMatchesSingleStream) {
  Rng r(17);
  Accumulator whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform() * 10.0 - 3.0;
    whole.add(x);
    (i < 640 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Accumulator, MergeWithEmptySides) {
  Accumulator filled;
  filled.add(1.0);
  filled.add(5.0);

  Accumulator lhs_empty;
  lhs_empty.merge(filled);  // empty <- filled adopts the other side
  EXPECT_EQ(lhs_empty.count(), 2u);
  EXPECT_DOUBLE_EQ(lhs_empty.mean(), 3.0);
  EXPECT_DOUBLE_EQ(lhs_empty.min(), 1.0);
  EXPECT_DOUBLE_EQ(lhs_empty.max(), 5.0);

  Accumulator rhs_empty = filled;
  rhs_empty.merge(Accumulator{});  // filled <- empty is a no-op
  EXPECT_EQ(rhs_empty.count(), 2u);
  EXPECT_DOUBLE_EQ(rhs_empty.mean(), 3.0);
  EXPECT_DOUBLE_EQ(rhs_empty.variance(), filled.variance());
}

TEST(Stats, RelL2ErrorOfIdenticalVectorsIsZero) {
  const double a[] = {1.0, -2.0, 3.0};
  EXPECT_DOUBLE_EQ(rel_l2_error(a, a), 0.0);
}

TEST(Stats, RelL2ErrorScales) {
  const double r[] = {3.0, 4.0};     // norm 5
  const double a[] = {3.0, 4.5};     // diff norm 0.5
  EXPECT_NEAR(rel_l2_error(a, r), 0.1, 1e-12);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"Event", "Max"});
  t.add_row({"Total", "1.37e+02"});
  const std::string s = t.str();
  EXPECT_NE(s.find("Event"), std::string::npos);
  EXPECT_NE(s.find("1.37e+02"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckFailure);
}

TEST(Format, SciMatchesPaperStyle) {
  EXPECT_EQ(sci(137.0), "1.37e+02");
  EXPECT_EQ(sci(0.00883, 2), "8.83e-03");
}

TEST(Format, WithCommas) {
  EXPECT_EQ(with_commas(1048576), "1,048,576");
  EXPECT_EQ(with_commas(7), "7");
}

TEST(Cli, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--n=100", "--verbose", "--rate=2.5"};
  Cli cli(4, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 0), 100);
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(cli.get_int("missing", 7), 7);
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(Cli(2, const_cast<char**>(argv)), CheckFailure);
}

}  // namespace
}  // namespace pkifmm
