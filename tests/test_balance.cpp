/// 2:1 balance refinement (the DENDRO substrate of the paper's
/// reference [16]).

#include <gtest/gtest.h>

#include <set>

#include "core/direct.hpp"
#include "core/fmm.hpp"
#include "octree/balance.hpp"
#include "util/stats.hpp"

namespace pkifmm::octree {
namespace {

using morton::Key;

OwnedTree build_tree(comm::RankCtx& ctx, Distribution dist, std::uint64_t n,
                     int q, std::uint64_t seed = 41) {
  BuildParams bp;
  bp.max_points_per_leaf = q;
  return build_distributed_tree(
      ctx.comm, generate_points(dist, n, ctx.rank(), ctx.size(), 1, seed),
      bp);
}

std::vector<Key> gather_leaves(comm::Comm& c, const OwnedTree& t) {
  return c.allgatherv_concat(std::span<const Key>(t.leaves));
}

TEST(Balance, DetectorAcceptsUniformGrid) {
  // A full level-3 grid is trivially balanced.
  std::vector<Key> leaves;
  const morton::Coord s = morton::kGridSize / 8;
  for (morton::Coord x = 0; x < 8; ++x)
    for (morton::Coord y = 0; y < 8; ++y)
      for (morton::Coord z = 0; z < 8; ++z)
        leaves.push_back(morton::make_key(x * s, y * s, z * s, 3));
  EXPECT_TRUE(is_2to1_balanced(leaves));
}

TEST(Balance, DetectorRejectsSharpContrast) {
  // A level-1 leaf sharing a face with level-3 leaves violates 2:1.
  std::vector<Key> leaves = {morton::make_key(0, 0, 0, 1)};
  const morton::Coord h = morton::kGridSize / 2;
  const morton::Coord s = morton::kGridSize / 8;
  leaves.push_back(morton::make_key(h, 0, 0, 3));
  EXPECT_FALSE(is_2to1_balanced(leaves));
  // ...while a level-2 neighbor is fine.
  leaves.back() = morton::make_key(h, 0, 0, 2);
  EXPECT_TRUE(is_2to1_balanced(leaves));
  (void)s;
}

void expect_balances(Distribution dist, int p, int q, std::uint64_t n) {
  comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    OwnedTree tree = build_tree(ctx, dist, n, q);
    const auto before = gather_leaves(ctx.comm, tree);
    const std::size_t pts_before = ctx.comm.allreduce_sum(
        static_cast<std::uint64_t>(tree.points.size()));

    const auto splits = balance_2to1(ctx.comm, tree);
    const auto after = gather_leaves(ctx.comm, tree);

    EXPECT_TRUE(is_2to1_balanced(after)) << "p=" << p;
    if (!is_2to1_balanced(before)) {
      EXPECT_GT(splits, 0u);
    }
    // Points preserved.
    EXPECT_EQ(ctx.comm.allreduce_sum(
                  static_cast<std::uint64_t>(tree.points.size())),
              pts_before);
    // Refinement only: every old leaf is covered by new leaves.
    std::set<Key> after_set(after.begin(), after.end());
    for (const Key& old : before) {
      bool covered = after_set.count(old) > 0;
      if (!covered) {
        // Must be replaced by descendants.
        covered = true;
        bool any = false;
        for (const Key& nk : after)
          if (morton::is_ancestor(old, nk)) any = true;
        covered = any;
      }
      EXPECT_TRUE(covered) << morton::to_string(old);
    }
    // CSR still valid and sorted.
    EXPECT_TRUE(std::is_sorted(tree.leaves.begin(), tree.leaves.end()));
    EXPECT_EQ(tree.leaf_point_offset.back(), tree.points.size());

    // Idempotent: a second pass performs no splits.
    EXPECT_EQ(balance_2to1(ctx.comm, tree), 0u);
  });
}

TEST(Balance, NonuniformSequential) {
  expect_balances(Distribution::kEllipsoid, 1, 8, 1500);
}

TEST(Balance, NonuniformParallel4) {
  expect_balances(Distribution::kEllipsoid, 4, 8, 2000);
}

TEST(Balance, ClusterParallel4) {
  expect_balances(Distribution::kCluster, 4, 10, 2000);
}

TEST(Balance, UniformNeedsFewSplits) {
  comm::Runtime::run(2, [&](comm::RankCtx& ctx) {
    OwnedTree tree = build_tree(ctx, Distribution::kUniform, 2000, 30);
    const auto splits = balance_2to1(ctx.comm, tree);
    // A uniform tree is already near-balanced.
    const auto nleaves = ctx.comm.allreduce_sum(
        static_cast<std::uint64_t>(tree.leaves.size()));
    EXPECT_LT(splits, nleaves / 4);
  });
}

TEST(Balance, BoundsLevelContrastInWLists) {
  // With 2:1 balance, a W-list member's parent is adjacent to the leaf
  // and at most one level finer, so W members are at most 2 levels
  // finer than their target.
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 6;
  opts.balance_2to1 = true;
  kernels::LaplaceKernel kern;
  const core::Tables tables(kern, opts);
  comm::Runtime::run(2, [&](comm::RankCtx& ctx) {
    auto pts = generate_points(Distribution::kCluster, 2000, ctx.rank(), 2, 1,
                               47);
    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    const auto& let = fmm.let();
    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      if (!(let.nodes[i].owned && let.nodes[i].global_leaf)) continue;
      for (auto wi : let.w.of(i))
        EXPECT_LE(let.nodes[wi].key.level, let.nodes[i].key.level + 2);
    }
  });
}

TEST(Balance, EmptyLeavesFlowThroughLetAndLists) {
  comm::Runtime::run(2, [&](comm::RankCtx& ctx) {
    OwnedTree tree = build_tree(ctx, Distribution::kCluster, 1500, 10);
    balance_2to1(ctx.comm, tree);

    // Balancing a clustered tree must have produced empty leaves.
    std::uint64_t empty = 0;
    for (std::size_t i = 0; i < tree.leaves.size(); ++i)
      if (tree.leaf_point_offset[i + 1] == tree.leaf_point_offset[i]) ++empty;
    EXPECT_GT(ctx.comm.allreduce_sum(empty), 0u);

    Let let = build_let(ctx.comm, tree);
    build_interaction_lists(let);

    // Empty leaves participate in U-lists as zero-point sources.
    bool empty_in_ulist = false;
    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      if (!(let.nodes[i].owned && let.nodes[i].global_leaf)) continue;
      for (auto ui : let.u.of(i))
        if (let.nodes[ui].point_count == 0) empty_in_ulist = true;
    }
    EXPECT_TRUE(ctx.comm.allreduce_max(empty_in_ulist ? 1 : 0) == 1);

    // U-list symmetry still holds on the balanced tree (within the
    // locally visible part).
    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      if (!(let.nodes[i].owned && let.nodes[i].global_leaf)) continue;
      for (auto ui : let.u.of(i)) {
        if (!let.nodes[ui].owned) continue;
        const auto back = let.u.of(ui);
        EXPECT_TRUE(std::find(back.begin(), back.end(),
                              static_cast<std::int32_t>(i)) != back.end());
      }
    }
  });
}

TEST(Balance, FmmStaysAccurateOnBalancedTree) {
  kernels::LaplaceKernel kern;
  core::FmmOptions opts;
  opts.surface_n = 6;
  opts.max_points_per_leaf = 10;
  opts.balance_2to1 = true;
  const core::Tables tables(kern, opts);
  comm::Runtime::run(4, [&](comm::RankCtx& ctx) {
    auto pts = generate_points(Distribution::kCluster, 2000, ctx.rank(), 4, 1,
                               49);
    const auto mine = pts;
    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    auto result = fmm.evaluate();

    const auto exact = core::direct_reference(ctx.comm, kern, mine);
    struct GP {
      std::uint64_t gid;
      double v;
    };
    std::vector<GP> out(result.gids.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = {result.gids[i], result.potentials[i]};
    auto all = ctx.comm.allgatherv_concat(std::span<const GP>(out));
    std::unordered_map<std::uint64_t, double> by_gid;
    for (const auto& g : all) by_gid.emplace(g.gid, g.v);
    std::vector<double> approx(mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i)
      approx[i] = by_gid.at(mine[i].gid);
    EXPECT_LT(rel_l2_error(approx, exact), 1e-4);
  });
}

}  // namespace
}  // namespace pkifmm::octree
