/// \file test_simd.cpp
/// \brief Contract tests for the runtime-dispatched SIMD tiers:
/// dispatch/override plumbing, cross-tier numerical parity (<= 1e-12),
/// bitwise invariance to caller window splits within a tier, and the
/// unified coincident-point guard (including negative-zero
/// coordinates).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <span>
#include <vector>

#include "kernels/kernel.hpp"
#include "simd/simd.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace pkifmm::simd {
namespace {

double rel_err(std::span<const double> a, std::span<const double> b) {
  EXPECT_EQ(a.size(), b.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - b[i]) * (a[i] - b[i]);
    den += b[i] * b[i];
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

std::vector<double> random_vec(std::size_t n, std::uint64_t seed, double lo,
                               double hi) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

/// Restores the pre-test dispatch state after every forced-tier test.
class SimdTest : public ::testing::Test {
 protected:
  void TearDown() override { clear_forced_tier(); }
};

TEST(SimdTier, NamesRoundTrip) {
  for (Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512})
    EXPECT_EQ(parse_tier(tier_name(t)), t);
}

TEST(SimdTier, ParseRejectsJunk) {
  EXPECT_THROW(parse_tier("sse9"), CheckFailure);
  EXPECT_THROW(parse_tier(""), CheckFailure);
  EXPECT_THROW(parse_tier("AVX2"), CheckFailure);  // case-sensitive
}

TEST(SimdTier, ScalarAlwaysAvailable) {
  EXPECT_TRUE(tier_compiled(Tier::kScalar));
  EXPECT_TRUE(tier_supported(Tier::kScalar));
  const auto tiers = available_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), Tier::kScalar);
  // Ascending, no duplicates.
  for (std::size_t i = 1; i < tiers.size(); ++i)
    EXPECT_LT(tiers[i - 1], tiers[i]);
}

TEST(SimdTier, DetectedTierIsSupported) {
  const Tier t = detect_tier();
  EXPECT_TRUE(tier_supported(t));
  const Ops& o = ops_for_tier(t);
  EXPECT_EQ(o.tier, t);
  EXPECT_GE(o.width, 1u);
}

TEST(SimdTier, TableShapePerTier) {
  for (Tier t : available_tiers()) {
    const Ops& o = ops_for_tier(t);
    EXPECT_EQ(o.tier, t);
    EXPECT_STREQ(o.name, tier_name(t));
    const std::size_t want =
        t == Tier::kScalar ? 1u : (t == Tier::kAvx2 ? 4u : 8u);
    EXPECT_EQ(o.width, want);
    EXPECT_NE(o.axpyn, nullptr);
    EXPECT_NE(o.cmac, nullptr);
    EXPECT_NE(o.fft_bfly, nullptr);
    EXPECT_NE(o.laplace, nullptr);
    EXPECT_NE(o.laplace_grad, nullptr);
    EXPECT_NE(o.stokes, nullptr);
    EXPECT_NE(o.stokes_reg, nullptr);
  }
}

TEST_F(SimdTest, ForceTierSticksAndClears) {
  for (Tier t : available_tiers()) {
    force_tier(t);
    EXPECT_EQ(active_tier(), t);
    EXPECT_EQ(ops().tier, t);
  }
  clear_forced_tier();
  // Re-resolves from CPUID (no PKIFMM_SIMD set under ctest by default;
  // if it is set it can only lower the tier, which is still supported).
  EXPECT_TRUE(tier_supported(active_tier()));
}

// ---------------------------------------------------------------------------
// axpyn
// ---------------------------------------------------------------------------

/// Sequential reference: nk single-row passes, ascending r.
void axpyn_ref(const double* a, const double* const* xs, std::size_t nk,
               double* y, std::size_t n) {
  for (std::size_t r = 0; r < nk; ++r)
    for (std::size_t j = 0; j < n; ++j) y[j] += a[r] * xs[r][j];
}

TEST_F(SimdTest, AxpynMatchesSequentialPasses) {
  // Sizes straddle every tier's vector width to exercise masked tails.
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 15u, 16u, 17u,
                              31u, 33u, 128u}) {
    for (std::size_t nk = 1; nk <= kAxpynMaxK; ++nk) {
      const auto a = random_vec(nk, 10 * n + nk, -2.0, 2.0);
      std::vector<std::vector<double>> xs;
      std::vector<const double*> xp;
      for (std::size_t r = 0; r < nk; ++r) {
        xs.push_back(random_vec(n, 100 * n + r, -1.0, 1.0));
        xp.push_back(xs.back().data());
      }
      const auto y0 = random_vec(n, 7 * n + nk, -1.0, 1.0);

      auto ref = y0;
      axpyn_ref(a.data(), xp.data(), nk, ref.data(), n);

      for (Tier t : available_tiers()) {
        auto y = y0;
        ops_for_tier(t).axpyn(a.data(), xp.data(), nk, y.data(), n);
        EXPECT_LT(rel_err(y, ref), 1e-12)
            << tier_name(t) << " n=" << n << " nk=" << nk;
        if (t == Tier::kScalar) {
          // The scalar tier folds k terms in the same association as
          // the sequential passes and cannot contract (its TU has no
          // FMA): bitwise equal.
          for (std::size_t j = 0; j < n; ++j)
            EXPECT_EQ(y[j], ref[j]) << "n=" << n << " nk=" << nk;
        }
      }
    }
  }
}

TEST_F(SimdTest, AxpynBitwiseInvariantToWindowSplit) {
  // y[j] depends only on index j, so computing [0, n) in one call or as
  // [0, cut) + [cut, n) must agree BITWISE — this is what makes the
  // deterministic column-window chunking of gemm_acc_cols tier-safe.
  const std::size_t n = 67;
  const std::size_t nk = 3;
  const auto a = random_vec(nk, 1, -2.0, 2.0);
  std::vector<std::vector<double>> xs;
  std::vector<const double*> xp;
  for (std::size_t r = 0; r < nk; ++r) {
    xs.push_back(random_vec(n, 2 + r, -1.0, 1.0));
    xp.push_back(xs.back().data());
  }
  const auto y0 = random_vec(n, 9, -1.0, 1.0);

  for (Tier t : available_tiers()) {
    const Ops& o = ops_for_tier(t);
    auto whole = y0;
    o.axpyn(a.data(), xp.data(), nk, whole.data(), n);
    for (const std::size_t cut : {1u, 3u, 8u, 13u, 32u, 66u}) {
      auto split = y0;
      std::vector<const double*> xhi;
      for (std::size_t r = 0; r < nk; ++r) xhi.push_back(xp[r] + cut);
      o.axpyn(a.data(), xp.data(), nk, split.data(), cut);
      o.axpyn(a.data(), xhi.data(), nk, split.data() + cut, n - cut);
      for (std::size_t j = 0; j < n; ++j)
        EXPECT_EQ(split[j], whole[j])
            << tier_name(t) << " cut=" << cut << " j=" << j;
    }
  }
}

// ---------------------------------------------------------------------------
// cmac
// ---------------------------------------------------------------------------

/// Hand-rolled two-product reference (the pre-SIMD pointwise_mac body).
void cmac_ref(const double* g, const double* f, double* acc, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double gr = g[2 * i], gi = g[2 * i + 1];
    const double fr = f[2 * i], fi = f[2 * i + 1];
    acc[2 * i] += gr * fr - gi * fi;
    acc[2 * i + 1] += gr * fi + gi * fr;
  }
}

TEST_F(SimdTest, CmacMatchesReference) {
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 31u,
                              1024u}) {
    const auto g = random_vec(2 * n, 3 * n, -1.0, 1.0);
    const auto f = random_vec(2 * n, 5 * n, -1.0, 1.0);
    const auto a0 = random_vec(2 * n, 7 * n, -1.0, 1.0);

    auto ref = a0;
    cmac_ref(g.data(), f.data(), ref.data(), n);

    for (Tier t : available_tiers()) {
      auto acc = a0;
      ops_for_tier(t).cmac(g.data(), f.data(), acc.data(), n);
      EXPECT_LT(rel_err(acc, ref), 1e-12) << tier_name(t) << " n=" << n;
      if (t == Tier::kScalar) {
        for (std::size_t i = 0; i < 2 * n; ++i)
          EXPECT_EQ(acc[i], ref[i]) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST_F(SimdTest, CmacBitwiseInvariantToChunking) {
  const std::size_t n = 53;  // odd complex count -> tails everywhere
  const auto g = random_vec(2 * n, 41, -1.0, 1.0);
  const auto f = random_vec(2 * n, 42, -1.0, 1.0);
  const auto a0 = random_vec(2 * n, 43, -1.0, 1.0);

  for (Tier t : available_tiers()) {
    const Ops& o = ops_for_tier(t);
    auto whole = a0;
    o.cmac(g.data(), f.data(), whole.data(), n);
    for (const std::size_t cut : {1u, 2u, 5u, 13u, 26u, 52u}) {
      auto split = a0;
      o.cmac(g.data(), f.data(), split.data(), cut);
      o.cmac(g.data() + 2 * cut, f.data() + 2 * cut, split.data() + 2 * cut,
             n - cut);
      for (std::size_t i = 0; i < 2 * n; ++i)
        EXPECT_EQ(split[i], whole[i])
            << tier_name(t) << " cut=" << cut << " i=" << i;
    }
  }
}

// ---------------------------------------------------------------------------
// fft_bfly
// ---------------------------------------------------------------------------

// Reference: the scalar radix-2 butterfly block, same association as
// the pre-SIMD Fft3d::line_fft inner loop.
void fft_bfly_ref(double* u, double* b, const double* tw, double sgn,
                  std::size_t half) {
  for (std::size_t j = 0; j < half; ++j) {
    const double wr = tw[2 * j];
    const double wi = sgn * tw[2 * j + 1];
    const double br = b[2 * j], bi = b[2 * j + 1];
    const double vr = br * wr - bi * wi;
    const double vi = br * wi + bi * wr;
    const double ur = u[2 * j], ui = u[2 * j + 1];
    u[2 * j] = ur + vr;
    u[2 * j + 1] = ui + vi;
    b[2 * j] = ur - vr;
    b[2 * j + 1] = ui - vi;
  }
}

TEST_F(SimdTest, FftBflyMatchesScalarButterflies) {
  // half values straddle every vector width, including non-powers of
  // two (the op's contract is any half; Fft3d only uses powers of two).
  for (const std::size_t half : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 31u}) {
    for (const double sgn : {1.0, -1.0}) {
      const auto u0 = random_vec(2 * half, 11 * half, -1.0, 1.0);
      const auto b0 = random_vec(2 * half, 13 * half, -1.0, 1.0);
      // Unit-magnitude twiddles like the real table.
      auto tw = random_vec(2 * half, 17 * half, -1.0, 1.0);
      for (std::size_t j = 0; j < half; ++j) {
        const double norm =
            std::sqrt(tw[2 * j] * tw[2 * j] + tw[2 * j + 1] * tw[2 * j + 1]);
        tw[2 * j] /= norm;
        tw[2 * j + 1] /= norm;
      }

      auto uref = u0, bref = b0;
      fft_bfly_ref(uref.data(), bref.data(), tw.data(), sgn, half);

      for (Tier t : available_tiers()) {
        auto u = u0, b = b0;
        ops_for_tier(t).fft_bfly(u.data(), b.data(), tw.data(), sgn, half);
        EXPECT_LT(rel_err(u, uref), 1e-12)
            << tier_name(t) << " half=" << half << " sgn=" << sgn;
        EXPECT_LT(rel_err(b, bref), 1e-12)
            << tier_name(t) << " half=" << half << " sgn=" << sgn;
        if (t == Tier::kScalar) {
          for (std::size_t i = 0; i < 2 * half; ++i) {
            EXPECT_EQ(u[i], uref[i]) << "half=" << half << " i=" << i;
            EXPECT_EQ(b[i], bref[i]) << "half=" << half << " i=" << i;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Direct kernels
// ---------------------------------------------------------------------------

struct DirectCase {
  const char* name;
  int sd, td;
};

const DirectCase kDirectCases[] = {
    {"laplace", 1, 1}, {"stokes", 3, 3}, {"stokes-reg", 3, 3}};

TEST_F(SimdTest, DirectKernelsCrossTierParityAndFlops) {
  for (const DirectCase& dc : kDirectCases) {
    const auto k = kernels::make_kernel(dc.name);
    // nt values straddle vector widths (tails of every size up to 8).
    for (const std::size_t nt : {1u, 2u, 3u, 5u, 7u, 8u, 9u, 13u, 64u}) {
      const std::size_t ns = 2 * nt + 3;
      const auto tgt = random_vec(3 * nt, 1000 + nt, 0.0, 1.0);
      const auto src = random_vec(3 * ns, 2000 + nt, 0.0, 1.0);
      const auto den = random_vec(ns * dc.sd, 3000 + nt, -1.0, 1.0);

      force_tier(Tier::kScalar);
      std::vector<double> pot_scalar(nt * dc.td, 0.0);
      const auto flops_scalar = k->direct(tgt, src, den, pot_scalar);
      EXPECT_EQ(flops_scalar, nt * ns * k->flops_per_interaction());

      for (Tier t : available_tiers()) {
        force_tier(t);
        std::vector<double> pot(nt * dc.td, 0.0);
        const auto flops = k->direct(tgt, src, den, pot);
        EXPECT_EQ(flops, flops_scalar) << dc.name << " " << tier_name(t);
        EXPECT_LT(rel_err(pot, pot_scalar), 1e-12)
            << dc.name << " " << tier_name(t) << " nt=" << nt;
      }
    }
  }
}

TEST_F(SimdTest, LaplaceGradCrossTierParity) {
  auto base = kernels::make_kernel("laplace");
  const auto k = base->gradient();
  ASSERT_NE(k, nullptr);
  for (const std::size_t nt : {1u, 3u, 7u, 9u, 33u}) {
    const std::size_t ns = nt + 5;
    const auto tgt = random_vec(3 * nt, 50 + nt, 0.0, 1.0);
    const auto src = random_vec(3 * ns, 60 + nt, 0.0, 1.0);
    const auto den = random_vec(ns, 70 + nt, -1.0, 1.0);

    force_tier(Tier::kScalar);
    std::vector<double> ref(3 * nt, 0.0);
    const auto flops_ref = k->direct(tgt, src, den, ref);

    for (Tier t : available_tiers()) {
      force_tier(t);
      std::vector<double> pot(3 * nt, 0.0);
      EXPECT_EQ(k->direct(tgt, src, den, pot), flops_ref);
      EXPECT_LT(rel_err(pot, ref), 1e-12) << tier_name(t) << " nt=" << nt;
    }
  }
}

TEST_F(SimdTest, DirectBitwiseInvariantToTargetSplit) {
  // Splitting the target range (as the threaded ULI tiles do) must be
  // bitwise invisible within a tier: each target's source accumulation
  // is independent and runs in source order.
  const auto k = kernels::make_kernel("stokes");
  const std::size_t nt = 29, ns = 17;
  const auto tgt = random_vec(3 * nt, 81, 0.0, 1.0);
  const auto src = random_vec(3 * ns, 82, 0.0, 1.0);
  const auto den = random_vec(3 * ns, 83, -1.0, 1.0);

  for (Tier t : available_tiers()) {
    force_tier(t);
    std::vector<double> whole(3 * nt, 0.0);
    k->direct(tgt, src, den, whole);
    for (const std::size_t cut : {1u, 4u, 7u, 16u, 28u}) {
      std::vector<double> split(3 * nt, 0.0);
      std::span<const double> ts(tgt);
      std::span<double> ps(split);
      k->direct(ts.subspan(0, 3 * cut), src, den, ps.subspan(0, 3 * cut));
      k->direct(ts.subspan(3 * cut), src, den, ps.subspan(3 * cut));
      for (std::size_t i = 0; i < split.size(); ++i)
        EXPECT_EQ(split[i], whole[i])
            << tier_name(t) << " cut=" << cut << " i=" << i;
    }
  }
}

TEST_F(SimdTest, CoincidentPointsSuppressedOnEveryTier) {
  // targets == sources: the diagonal pair has r2 == 0 and must
  // contribute exactly zero on every tier (lane mask == scalar guard);
  // off-diagonal pairs still contribute. Point 2 is stored with
  // negative-zero coordinates: (-0.0)^2 == +0.0, so it must hit the
  // guard exactly like +0.0.
  std::vector<double> pts = {0.25, 0.5,  0.75,  //
                             0.5,  0.25, 0.5,   //
                             -0.0, -0.0, -0.0,  //
                             0.75, 0.75, 0.25,  //
                             0.1,  0.9,  0.4};
  const std::size_t n = pts.size() / 3;

  for (const char* name : {"laplace", "stokes"}) {
    const auto k = kernels::make_kernel(name);
    const int sd = k->source_dim(), td = k->target_dim();
    const auto den = random_vec(n * sd, 91, -1.0, 1.0);

    // Reference from the scalar block() path (shares the guard).
    std::vector<double> ref(n * td, 0.0);
    std::vector<double> blk(td * sd);
    for (std::size_t t = 0; t < n; ++t)
      for (std::size_t s = 0; s < n; ++s) {
        const double d[3] = {pts[3 * t] - pts[3 * s],
                             pts[3 * t + 1] - pts[3 * s + 1],
                             pts[3 * t + 2] - pts[3 * s + 2]};
        k->block(d, blk.data());
        for (int i = 0; i < td; ++i)
          for (int j = 0; j < sd; ++j)
            ref[t * td + i] += blk[i * sd + j] * den[s * sd + j];
      }
    for (double v : ref) ASSERT_TRUE(std::isfinite(v));

    for (Tier t : available_tiers()) {
      force_tier(t);
      std::vector<double> pot(n * td, 0.0);
      k->direct(pts, pts, den, pot);
      for (double v : pot) EXPECT_TRUE(std::isfinite(v)) << name;
      EXPECT_LT(rel_err(pot, ref), 1e-12) << name << " " << tier_name(t);
    }
  }
}

TEST_F(SimdTest, SinglePointSelfInteractionIsExactlyZero) {
  // One coincident pair and nothing else: every tier must produce an
  // exact 0.0 potential (not merely something small).
  for (const char* name : {"laplace", "stokes"}) {
    const auto k = kernels::make_kernel(name);
    const std::vector<double> pt = {0.5, 0.5, 0.5};
    const auto den =
        random_vec(static_cast<std::size_t>(k->source_dim()), 17, 1.0, 2.0);
    for (Tier t : available_tiers()) {
      force_tier(t);
      std::vector<double> pot(k->target_dim(), 0.0);
      k->direct(pt, pt, den, pot);
      for (double v : pot) EXPECT_EQ(v, 0.0) << name << " " << tier_name(t);
    }
  }
}

TEST_F(SimdTest, RegularizedStokesKeepsSelfInteractionOnEveryTier) {
  // stokes-reg is smooth at r = 0: the self term is finite and KEPT.
  const kernels::RegularizedStokesKernel k(0.05);
  const std::vector<double> pt = {0.5, 0.5, 0.5};
  const std::vector<double> den = {1.0, 0.0, 0.0};
  // diag = 1/(4 pi eps) (see test_kernels RegularizedStokes).
  const double expect = 1.0 / (4.0 * std::numbers::pi * 0.05);
  for (Tier t : available_tiers()) {
    force_tier(t);
    std::vector<double> pot(3, 0.0);
    k.direct(pt, pt, den, pot);
    EXPECT_NEAR(pot[0], expect, 1e-12) << tier_name(t);
    EXPECT_NEAR(pot[1], 0.0, 1e-15) << tier_name(t);
  }
}

}  // namespace
}  // namespace pkifmm::simd
