#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "comm/comm.hpp"
#include "octree/build.hpp"
#include "octree/let.hpp"
#include "octree/partition.hpp"
#include "octree/points.hpp"

namespace pkifmm::octree {
namespace {

using morton::Key;

// ---------------------------------------------------------------------
// Brute-force reference implementation of the global tree and the
// U/V/W/X list definitions straight from Table I of the paper. Used to
// validate the production (search-based) list construction.
// ---------------------------------------------------------------------

struct RefTree {
  std::vector<Key> nodes;  // leaves + all ancestors, sorted
  std::set<Key> leaves;

  static RefTree from_leaves(std::vector<Key> leaf_list) {
    RefTree t;
    std::set<Key> all;
    for (const Key& l : leaf_list) {
      t.leaves.insert(l);
      all.insert(l);
      for (const Key& a : morton::ancestors(l)) all.insert(a);
    }
    t.nodes.assign(all.begin(), all.end());
    return t;
  }

  bool is_leaf(const Key& k) const { return leaves.count(k) != 0; }
};

std::set<Key> ref_u(const RefTree& t, const Key& beta) {
  std::set<Key> out = {beta};
  for (const Key& alpha : t.nodes)
    if (t.is_leaf(alpha) && morton::adjacent(alpha, beta)) out.insert(alpha);
  return out;
}

std::set<Key> ref_v(const RefTree& t, const Key& beta) {
  std::set<Key> out;
  if (beta.level == 0) return out;
  const Key pb = morton::parent(beta);
  for (const Key& alpha : t.nodes) {
    if (alpha.level != beta.level || alpha == beta) continue;
    const Key pa = morton::parent(alpha);
    if (pa == pb) continue;                       // siblings are not in V
    if (!morton::adjacent(pa, pb)) continue;      // parent not a colleague
    if (morton::adjacent(alpha, beta)) continue;  // adjacent excluded
    out.insert(alpha);
  }
  return out;
}

std::set<Key> ref_w(const RefTree& t, const Key& beta) {
  std::set<Key> out;
  for (const Key& alpha : t.nodes) {
    if (alpha.level <= beta.level) continue;
    const Key a_at = morton::ancestor_at(alpha, beta.level);
    if (a_at == beta || !morton::adjacent(a_at, beta)) continue;
    if (!morton::adjacent(morton::parent(alpha), beta)) continue;
    if (morton::adjacent(alpha, beta)) continue;
    out.insert(alpha);
  }
  return out;
}

/// X by the literal dual: alpha in X(beta) iff beta in W(alpha).
std::set<Key> ref_x(const RefTree& t, const Key& beta) {
  std::set<Key> out;
  for (const Key& alpha : t.nodes) {
    if (!t.is_leaf(alpha)) continue;
    if (ref_w(t, alpha).count(beta)) out.insert(alpha);
  }
  return out;
}

std::set<Key> keys_of(const Let& let, std::span<const std::int32_t> idx) {
  std::set<Key> out;
  for (auto i : idx) out.insert(let.nodes[i].key);
  return out;
}

std::vector<PointRec> make_points(Distribution dist, std::uint64_t n, int rank,
                                  int p, std::uint64_t seed = 42) {
  return generate_points(dist, n, rank, p, 1, seed);
}

// ---------------------------------------------------------------------
// Point generation
// ---------------------------------------------------------------------

TEST(Points, RankSlicesCoverAllGids) {
  const int p = 5;
  std::set<std::uint64_t> gids;
  for (int r = 0; r < p; ++r)
    for (const auto& pt : make_points(Distribution::kUniform, 103, r, p))
      EXPECT_TRUE(gids.insert(pt.gid).second);
  EXPECT_EQ(gids.size(), 103u);
}

TEST(Points, Deterministic) {
  auto a = make_points(Distribution::kEllipsoid, 100, 1, 4);
  auto b = make_points(Distribution::kEllipsoid, 100, 1, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].pos[0], b[i].pos[0]);
}

TEST(Points, InsideUnitCube) {
  for (auto dist : {Distribution::kUniform, Distribution::kEllipsoid}) {
    for (const auto& pt : make_points(dist, 2000, 0, 1))
      for (double c : pt.pos) {
        EXPECT_GE(c, 0.0);
        EXPECT_LT(c, 1.0);
      }
  }
}

TEST(Points, EllipsoidIsNonuniform) {
  // The nonuniform distribution must produce a much deeper tree than
  // the uniform one for the same N and q (the paper's motivation).
  auto run = [](Distribution dist) {
    comm::Fabric f(1);
    comm::CostTracker cost;
    comm::Comm c(f, 0, 1, cost);
    BuildParams bp;
    bp.max_points_per_leaf = 20;
    auto tree = build_distributed_tree(c, make_points(dist, 4000, 0, 1), bp);
    int maxl = 0;
    for (const Key& l : tree.leaves) maxl = std::max(maxl, int(l.level));
    return maxl;
  };
  EXPECT_GE(run(Distribution::kEllipsoid), run(Distribution::kUniform) + 2);
}

// ---------------------------------------------------------------------
// Distributed tree construction
// ---------------------------------------------------------------------

void check_tree_invariants(const OwnedTree& tree, int q) {
  EXPECT_TRUE(std::is_sorted(tree.leaves.begin(), tree.leaves.end()));
  for (std::size_t i = 0; i + 1 < tree.leaves.size(); ++i)
    EXPECT_FALSE(morton::overlaps(tree.leaves[i], tree.leaves[i + 1]));
  ASSERT_EQ(tree.leaf_point_offset.size(), tree.leaves.size() + 1);
  for (std::size_t i = 0; i < tree.leaves.size(); ++i) {
    const auto count = tree.leaf_point_offset[i + 1] - tree.leaf_point_offset[i];
    EXPECT_GT(count, 0u);  // empty leaves are never materialized
    if (tree.leaves[i].level < morton::kMaxDepth) {
      EXPECT_LE(count, static_cast<std::size_t>(q));
    }
    for (std::size_t j = tree.leaf_point_offset[i];
         j < tree.leaf_point_offset[i + 1]; ++j)
      EXPECT_TRUE(morton::contains(
          tree.leaves[i], Key{tree.points[j].key_bits, morton::kMaxDepth}));
  }
}

TEST(Build, SingleRankInvariants) {
  comm::Runtime::run(1, [](comm::RankCtx& ctx) {
    BuildParams bp;
    bp.max_points_per_leaf = 25;
    auto tree = build_distributed_tree(
        ctx.comm, make_points(Distribution::kUniform, 3000, 0, 1), bp);
    check_tree_invariants(tree, 25);
    std::size_t total = 0;
    for (std::size_t i = 0; i < tree.leaves.size(); ++i)
      total += tree.leaf_point_offset[i + 1] - tree.leaf_point_offset[i];
    EXPECT_EQ(total, 3000u);
  });
}

/// The distributed construction must produce exactly the same global
/// leaf set as the sequential one — the leaf set is a function of the
/// global point multiset only.
void expect_same_tree_as_sequential(Distribution dist, int p, int q,
                                    std::uint64_t n) {
  std::vector<Key> seq_leaves;
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    BuildParams bp;
    bp.max_points_per_leaf = q;
    auto tree = build_distributed_tree(ctx.comm, make_points(dist, n, 0, 1), bp);
    seq_leaves = tree.leaves;
  });

  comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    BuildParams bp;
    bp.max_points_per_leaf = q;
    auto tree = build_distributed_tree(
        ctx.comm, make_points(dist, n, ctx.rank(), p), bp);
    check_tree_invariants(tree, q);
    auto all = ctx.comm.allgatherv_concat(std::span<const Key>(tree.leaves));
    ASSERT_EQ(all.size(), seq_leaves.size());
    EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
    for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], seq_leaves[i]);
  });
}

TEST(Build, DistributedMatchesSequentialUniform) {
  expect_same_tree_as_sequential(Distribution::kUniform, 4, 30, 2000);
}

TEST(Build, DistributedMatchesSequentialNonuniform) {
  expect_same_tree_as_sequential(Distribution::kEllipsoid, 4, 30, 2000);
}

TEST(Build, DistributedMatchesSequentialManyRanksSmallLeaves) {
  expect_same_tree_as_sequential(Distribution::kEllipsoid, 8, 5, 1500);
}

TEST(Build, DistributedMatchesSequentialCluster) {
  expect_same_tree_as_sequential(Distribution::kCluster, 4, 20, 2000);
}

TEST(Build, ClusterTreeIsDeeplyAdaptive) {
  comm::Runtime::run(1, [](comm::RankCtx& ctx) {
    BuildParams bp;
    bp.max_points_per_leaf = 10;
    auto tree = build_distributed_tree(
        ctx.comm, make_points(Distribution::kCluster, 4000, 0, 1), bp);
    int minl = morton::kMaxDepth, maxl = 0;
    for (const Key& l : tree.leaves) {
      minl = std::min(minl, static_cast<int>(l.level));
      maxl = std::max(maxl, static_cast<int>(l.level));
    }
    // Dense core forces deep refinement; sparse halo stays coarse.
    EXPECT_GE(maxl - minl, 4);
  });
}

TEST(Build, AllPointsIdenticalForcesMaxLevelLeaf) {
  comm::Runtime::run(2, [](comm::RankCtx& ctx) {
    std::vector<PointRec> pts(50);
    for (std::size_t i = 0; i < pts.size(); ++i) {
      pts[i].pos[0] = pts[i].pos[1] = pts[i].pos[2] = 0.3;
      pts[i].gid = ctx.rank() * 50 + i;
    }
    BuildParams bp;
    bp.max_points_per_leaf = 4;
    bp.max_level = 6;
    auto tree = build_distributed_tree(ctx.comm, pts, bp);
    const auto nleaves = ctx.comm.allreduce_sum(
        static_cast<std::uint64_t>(tree.leaves.size()));
    EXPECT_EQ(nleaves, 1u);  // one forced leaf containing all duplicates
    if (!tree.leaves.empty()) {
      EXPECT_EQ(tree.leaves[0].level, 6);
      EXPECT_EQ(tree.points.size(), 100u);
    }
  });
}

TEST(Build, FewPointsManyRanks) {
  // More ranks than points: some ranks own nothing; must not crash.
  comm::Runtime::run(8, [](comm::RankCtx& ctx) {
    auto pts = make_points(Distribution::kUniform, 5, ctx.rank(), 8);
    BuildParams bp;
    bp.max_points_per_leaf = 1;
    auto tree = build_distributed_tree(ctx.comm, pts, bp);
    const auto total = ctx.comm.allreduce_sum(
        static_cast<std::uint64_t>(tree.points.size()));
    EXPECT_EQ(total, 5u);
  });
}

TEST(Build, SplittersPartitionLeaves) {
  comm::Runtime::run(4, [](comm::RankCtx& ctx) {
    BuildParams bp;
    bp.max_points_per_leaf = 20;
    auto tree = build_distributed_tree(
        ctx.comm, make_points(Distribution::kUniform, 2000, ctx.rank(), 4), bp);
    ASSERT_EQ(tree.splitters.size(), 4u);
    EXPECT_EQ(tree.splitters[0], morton::Bits{0});
    for (const Key& l : tree.leaves) {
      EXPECT_GE(morton::range_begin(l), tree.splitters[ctx.rank()]);
      if (ctx.rank() + 1 < 4) {
        EXPECT_LT(morton::range_begin(l), tree.splitters[ctx.rank() + 1]);
      }
    }
  });
}

TEST(Build, OverlappingRanksLookup) {
  std::vector<morton::Bits> s = {0, 100, 100, 500};
  const Key probe{50, morton::kMaxDepth};
  auto [lo, hi] = overlapping_ranks(probe, s);
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 0);
  // An octant spanning [0, end) overlaps all ranks.
  auto [l2, h2] = overlapping_ranks(morton::root(), s);
  EXPECT_EQ(l2, 0);
  EXPECT_EQ(h2, 3);
}

// ---------------------------------------------------------------------
// LET + interaction lists
// ---------------------------------------------------------------------

struct LetFixture {
  Let let;
  RefTree ref;
};

LetFixture build_sequential_let(Distribution dist, std::uint64_t n, int q) {
  LetFixture fx;
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    BuildParams bp;
    bp.max_points_per_leaf = q;
    auto tree =
        build_distributed_tree(ctx.comm, make_points(dist, n, 0, 1), bp);
    fx.ref = RefTree::from_leaves(tree.leaves);
    fx.let = build_let(ctx.comm, tree);
    build_interaction_lists(fx.let);
  });
  return fx;
}

TEST(Let, SequentialLetIsWholeTree) {
  auto fx = build_sequential_let(Distribution::kUniform, 800, 20);
  EXPECT_EQ(fx.let.nodes.size(), fx.ref.nodes.size());
  for (const LetNode& n : fx.let.nodes) {
    EXPECT_TRUE(n.target);
    EXPECT_EQ(n.global_leaf, fx.ref.is_leaf(n.key));
  }
}

TEST(Let, TreeLinksAreConsistent) {
  auto fx = build_sequential_let(Distribution::kEllipsoid, 800, 20);
  const Let& let = fx.let;
  for (std::size_t i = 0; i < let.nodes.size(); ++i) {
    const LetNode& n = let.nodes[i];
    if (n.parent >= 0) {
      EXPECT_EQ(let.nodes[n.parent].key, morton::parent(n.key));
      EXPECT_EQ(let.nodes[n.parent].child[morton::child_index(n.key)],
                static_cast<std::int32_t>(i));
    } else {
      EXPECT_EQ(n.key.level, 0);
    }
  }
}

void expect_lists_match_reference(const LetFixture& fx) {
  const Let& let = fx.let;
  for (std::size_t i = 0; i < let.nodes.size(); ++i) {
    const LetNode& n = let.nodes[i];
    if (n.global_leaf) {
      EXPECT_EQ(keys_of(let, let.u.of(i)), ref_u(fx.ref, n.key))
          << "U mismatch at " << morton::to_string(n.key);
      EXPECT_EQ(keys_of(let, let.w.of(i)), ref_w(fx.ref, n.key))
          << "W mismatch at " << morton::to_string(n.key);
    }
    EXPECT_EQ(keys_of(let, let.v.of(i)), ref_v(fx.ref, n.key))
        << "V mismatch at " << morton::to_string(n.key);
    EXPECT_EQ(keys_of(let, let.x.of(i)), ref_x(fx.ref, n.key))
        << "X mismatch at " << morton::to_string(n.key);
  }
}

TEST(Lists, MatchBruteForceUniform) {
  expect_lists_match_reference(
      build_sequential_let(Distribution::kUniform, 600, 20));
}

TEST(Lists, MatchBruteForceNonuniform) {
  expect_lists_match_reference(
      build_sequential_let(Distribution::kEllipsoid, 600, 10));
}

TEST(Lists, MatchBruteForceTinyLeaves) {
  expect_lists_match_reference(
      build_sequential_let(Distribution::kEllipsoid, 200, 1));
}

TEST(Lists, UAndVAreSymmetricSequential) {
  auto fx = build_sequential_let(Distribution::kUniform, 600, 15);
  const Let& let = fx.let;
  for (std::size_t i = 0; i < let.nodes.size(); ++i) {
    for (auto j : let.v.of(i)) {
      const auto back = let.v.of(j);
      EXPECT_TRUE(std::find(back.begin(), back.end(),
                            static_cast<std::int32_t>(i)) != back.end());
    }
    if (!let.nodes[i].global_leaf) continue;
    for (auto j : let.u.of(i)) {
      const auto back = let.u.of(j);
      EXPECT_TRUE(std::find(back.begin(), back.end(),
                            static_cast<std::int32_t>(i)) != back.end());
    }
  }
}

TEST(Lists, WXDuality) {
  auto fx = build_sequential_let(Distribution::kEllipsoid, 500, 8);
  const Let& let = fx.let;
  for (std::size_t i = 0; i < let.nodes.size(); ++i) {
    if (!let.nodes[i].global_leaf) continue;
    for (auto j : let.w.of(i)) {
      const auto back = let.x.of(j);
      EXPECT_TRUE(std::find(back.begin(), back.end(),
                            static_cast<std::int32_t>(i)) != back.end())
          << "alpha in W(beta) must imply beta in X(alpha)";
    }
  }
}

/// THE core FMM-lists invariant: for every target leaf beta, every
/// source leaf gamma is covered exactly once by the decomposition
///   gamma in U(beta)
///   OR gamma under some alpha in W(beta)
///   OR gamma in X(A) for some A in {beta}+ancestors
///   OR gamma under some alpha in V(A) for some A in {beta}+ancestors.
void expect_exact_source_coverage(const LetFixture& fx) {
  const Let& let = fx.let;
  std::vector<std::int32_t> leaf_nodes;
  for (std::size_t i = 0; i < let.nodes.size(); ++i)
    if (let.nodes[i].global_leaf) leaf_nodes.push_back(i);

  for (auto bi : leaf_nodes) {
    std::map<Key, int> cover;
    for (auto li : leaf_nodes) cover[let.nodes[li].key] = 0;

    for (auto ui : let.u.of(bi)) cover[let.nodes[ui].key] += 1;
    for (auto wi : let.w.of(bi)) {
      const Key& alpha = let.nodes[wi].key;
      for (auto li : leaf_nodes)
        if (morton::contains(alpha, let.nodes[li].key))
          cover[let.nodes[li].key] += 1;
    }
    for (std::int32_t a = bi; a >= 0; a = let.nodes[a].parent) {
      for (auto xi : let.x.of(a)) cover[let.nodes[xi].key] += 1;
      for (auto vi : let.v.of(a)) {
        const Key& alpha = let.nodes[vi].key;
        for (auto li : leaf_nodes)
          if (morton::contains(alpha, let.nodes[li].key))
            cover[let.nodes[li].key] += 1;
      }
    }
    for (const auto& [gamma, count] : cover)
      ASSERT_EQ(count, 1) << "target " << morton::to_string(let.nodes[bi].key)
                          << " covers source " << morton::to_string(gamma)
                          << " " << count << " times";
  }
}

TEST(Lists, ExactSourceCoverageUniform) {
  expect_exact_source_coverage(
      build_sequential_let(Distribution::kUniform, 400, 15));
}

TEST(Lists, ExactSourceCoverageNonuniform) {
  expect_exact_source_coverage(
      build_sequential_let(Distribution::kEllipsoid, 400, 6));
}

TEST(Lists, ExactSourceCoverageDeepTree) {
  expect_exact_source_coverage(
      build_sequential_let(Distribution::kEllipsoid, 150, 1));
}

/// Distributed LET must contain, for every owned target, the exact
/// interaction lists that the full (gathered) tree implies.
void expect_distributed_let_complete(Distribution dist, int p, int q,
                                     std::uint64_t n) {
  comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    BuildParams bp;
    bp.max_points_per_leaf = q;
    auto tree = build_distributed_tree(
        ctx.comm, make_points(dist, n, ctx.rank(), p), bp);
    auto global_leaves =
        ctx.comm.allgatherv_concat(std::span<const Key>(tree.leaves));
    const RefTree ref = RefTree::from_leaves(global_leaves);

    Let let = build_let(ctx.comm, tree);
    build_interaction_lists(let);

    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      const LetNode& node = let.nodes[i];
      if (!node.target) continue;
      if (node.owned && node.global_leaf) {
        EXPECT_EQ(keys_of(let, let.u.of(i)), ref_u(ref, node.key));
        EXPECT_EQ(keys_of(let, let.w.of(i)), ref_w(ref, node.key));
        // Ghost U leaves must carry their points.
        for (auto ui : let.u.of(i))
          EXPECT_GT(let.nodes[ui].point_count, 0u);
      }
      EXPECT_EQ(keys_of(let, let.v.of(i)), ref_v(ref, node.key));
      EXPECT_EQ(keys_of(let, let.x.of(i)), ref_x(ref, node.key));
      for (auto xi : let.x.of(i))
        EXPECT_GT(let.nodes[xi].point_count, 0u);
    }
  });
}

TEST(Let, DistributedCompleteUniform4) {
  expect_distributed_let_complete(Distribution::kUniform, 4, 20, 1200);
}

TEST(Let, DistributedCompleteNonuniform4) {
  expect_distributed_let_complete(Distribution::kEllipsoid, 4, 10, 1000);
}

TEST(Let, DistributedCompleteNonuniform8) {
  expect_distributed_let_complete(Distribution::kEllipsoid, 8, 6, 800);
}

TEST(Let, DistributedCompleteCluster4) {
  expect_distributed_let_complete(Distribution::kCluster, 4, 12, 1000);
}

TEST(Lists, ExactSourceCoverageCluster) {
  expect_exact_source_coverage(
      build_sequential_let(Distribution::kCluster, 300, 4));
}

TEST(Let, OwnedPointTotalsPreserved) {
  comm::Runtime::run(4, [](comm::RankCtx& ctx) {
    BuildParams bp;
    bp.max_points_per_leaf = 20;
    auto tree = build_distributed_tree(
        ctx.comm, make_points(Distribution::kUniform, 2000, ctx.rank(), 4), bp);
    Let let = build_let(ctx.comm, tree);
    std::uint64_t owned_pts = 0;
    for (const LetNode& n : let.nodes)
      if (n.owned) owned_pts += n.point_count;
    EXPECT_EQ(ctx.comm.allreduce_sum(owned_pts), 2000u);
  });
}

TEST(Let, RefreshGhostDensitiesPropagates) {
  comm::Runtime::run(4, [](comm::RankCtx& ctx) {
    BuildParams bp;
    bp.max_points_per_leaf = 10;
    auto tree = build_distributed_tree(
        ctx.comm, make_points(Distribution::kUniform, 800, ctx.rank(), 4), bp);
    Let let = build_let(ctx.comm, tree);

    // New densities: a function of gid, applied to owned points only.
    for (LetNode& n : let.nodes) {
      if (!n.owned) continue;
      for (PointRec& pt : let.points_of(n))
        pt.den[0] = static_cast<double>(pt.gid) * 2.0 + 1.0;
    }
    refresh_ghost_densities(ctx.comm, let);

    // Every point copy (ghost or owned) now reflects the function.
    for (const LetNode& n : let.nodes) {
      if (!n.global_leaf) continue;
      for (const PointRec& pt : let.points_of(n))
        EXPECT_DOUBLE_EQ(pt.den[0], static_cast<double>(pt.gid) * 2.0 + 1.0);
    }
  });
}

// ---------------------------------------------------------------------
// Load balancing
// ---------------------------------------------------------------------

TEST(LoadBalance, EqualizesSkewedWeights) {
  comm::Runtime::run(4, [](comm::RankCtx& ctx) {
    BuildParams bp;
    bp.max_points_per_leaf = 10;
    auto tree = build_distributed_tree(
        ctx.comm,
        make_points(Distribution::kEllipsoid, 2000, ctx.rank(), 4), bp);

    // Synthetic skew: leaves in the lower half of the cube are 20x
    // heavier.
    std::vector<double> w(tree.leaves.size());
    for (std::size_t i = 0; i < w.size(); ++i) {
      const auto g = morton::box_geometry(tree.leaves[i]);
      w[i] = g.center[2] < 0.5 ? 20.0 : 1.0;
    }
    double my_w = 0;
    for (double x : w) my_w += x;
    const double total = ctx.comm.allreduce_sum(my_w);

    auto balanced = load_balance(ctx.comm, tree, w);

    double new_w = 0;
    for (const Key& l : balanced.leaves) {
      const auto g = morton::box_geometry(l);
      new_w += g.center[2] < 0.5 ? 20.0 : 1.0;
    }
    EXPECT_LT(new_w, 1.6 * total / 4);
    check_tree_invariants(balanced, 10);

    // Global leaf set unchanged.
    auto before = ctx.comm.allgatherv_concat(std::span<const Key>(tree.leaves));
    auto after =
        ctx.comm.allgatherv_concat(std::span<const Key>(balanced.leaves));
    EXPECT_EQ(before, after);
  });
}

TEST(LoadBalance, LetRebuildAfterMigrationIsComplete) {
  comm::Runtime::run(4, [](comm::RankCtx& ctx) {
    BuildParams bp;
    bp.max_points_per_leaf = 10;
    auto tree = build_distributed_tree(
        ctx.comm,
        make_points(Distribution::kEllipsoid, 1000, ctx.rank(), 4), bp);
    std::vector<double> w(tree.leaves.size(), 1.0);
    // Weight by point count (a realistic proxy).
    for (std::size_t i = 0; i < w.size(); ++i)
      w[i] = static_cast<double>(tree.leaf_point_offset[i + 1] -
                                 tree.leaf_point_offset[i]);
    auto balanced = load_balance(ctx.comm, tree, w);
    auto global_leaves =
        ctx.comm.allgatherv_concat(std::span<const Key>(balanced.leaves));
    const RefTree ref = RefTree::from_leaves(global_leaves);

    Let let = build_let(ctx.comm, balanced);
    build_interaction_lists(let);
    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      const LetNode& node = let.nodes[i];
      if (!(node.owned && node.global_leaf)) continue;
      EXPECT_EQ(keys_of(let, let.u.of(i)), ref_u(ref, node.key));
    }
  });
}

}  // namespace
}  // namespace pkifmm::octree
