/// Separate source/target point sets — the generalization the paper
/// sets aside ("for simplicity in this paper we assume that source and
/// target points coincide", §II). Typical use: a measurement grid
/// (targets only) immersed in a charge cloud (sources only).

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_map>

#include "core/direct.hpp"
#include "core/fmm.hpp"
#include "gpu/evaluator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pkifmm::core {
namespace {

using octree::Distribution;
using octree::PointRec;

/// Sources: random cloud in [0.1,0.9]^3 (gids 0..nsrc). Targets: a
/// plane z = 0.55 grid (gids nsrc..nsrc+ntrg), no densities.
std::vector<PointRec> make_mixed(std::uint64_t nsrc, int grid, int rank,
                                 int p) {
  std::vector<PointRec> pts;
  const std::uint64_t total = nsrc + std::uint64_t(grid) * grid;
  const std::uint64_t b = total * rank / p, e = total * (rank + 1) / p;
  for (std::uint64_t g = b; g < e; ++g) {
    PointRec r{};
    r.gid = g;
    if (g < nsrc) {
      Rng rng(500 + g);
      for (double& c : r.pos) c = rng.uniform(0.1, 0.9);
      r.den[0] = rng.uniform(-1, 1);
      r.kind = octree::kSource;
    } else {
      const std::uint64_t k = g - nsrc;
      r.pos[0] = 0.1 + 0.8 * double(k % grid) / (grid - 1);
      r.pos[1] = 0.1 + 0.8 * double(k / grid) / (grid - 1);
      r.pos[2] = 0.55;
      r.kind = octree::kTarget;
    }
    pts.push_back(r);
  }
  octree::assign_morton_ids(pts);
  return pts;
}

TEST(SeparateTargets, PointKindDefaults) {
  PointRec r{};
  EXPECT_TRUE(r.is_source());
  EXPECT_TRUE(r.is_target());
}

TEST(SeparateTargets, LetPutsTargetsFirstInEachLeaf) {
  comm::Runtime::run(2, [&](comm::RankCtx& ctx) {
    octree::BuildParams bp;
    bp.max_points_per_leaf = 12;
    auto tree = octree::build_distributed_tree(
        ctx.comm, make_mixed(600, 20, ctx.rank(), 2), bp);
    octree::Let let = octree::build_let(ctx.comm, tree);
    for (const auto& nd : let.nodes) {
      if (!nd.global_leaf) continue;
      const auto pts = let.points_of(nd);
      for (std::uint32_t k = 0; k < nd.point_count; ++k)
        EXPECT_EQ(pts[k].is_target(), k < nd.target_count)
            << morton::to_string(nd.key);
    }
  });
}

void expect_plane_accurate(int p, int q, int surface_n, double tol) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = surface_n;
  opts.max_points_per_leaf = q;
  if ((p & (p - 1)) != 0) opts.reduce = ReduceMode::kOwner;
  const Tables tables(kernel, opts);

  comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    auto pts = make_mixed(1500, 16, ctx.rank(), p);
    const auto mine = pts;
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    auto result = fmm.evaluate();

    // Result gids must be exactly the target gids this rank owns.
    for (auto gid : result.gids) EXPECT_GE(gid, 1500u);
    const auto total_results = ctx.comm.allreduce_sum(
        static_cast<std::uint64_t>(result.gids.size()));
    EXPECT_EQ(total_results, 16u * 16u);

    // Exact reference at the targets.
    auto all = ctx.comm.allgatherv_concat(std::span<const PointRec>(mine));
    std::vector<PointRec> my_targets;
    for (const auto& pt : mine)
      if (pt.is_target()) my_targets.push_back(pt);
    const auto exact = direct_local(kernel, my_targets, all);

    struct GP {
      std::uint64_t gid;
      double v;
    };
    std::vector<GP> out(result.gids.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = {result.gids[i], result.potentials[i]};
    auto gathered = ctx.comm.allgatherv_concat(std::span<const GP>(out));
    std::unordered_map<std::uint64_t, double> by_gid;
    for (const auto& g : gathered) by_gid.emplace(g.gid, g.v);

    std::vector<double> approx(my_targets.size());
    for (std::size_t i = 0; i < my_targets.size(); ++i)
      approx[i] = by_gid.at(my_targets[i].gid);
    if (!my_targets.empty()) {
      EXPECT_LT(rel_l2_error(approx, exact), tol);
    }
  });
}

TEST(SeparateTargets, MeasurementPlaneSequential) {
  expect_plane_accurate(1, 30, 6, 1e-4);
}

TEST(SeparateTargets, MeasurementPlaneParallel4) {
  expect_plane_accurate(4, 20, 6, 1e-4);
}

TEST(SeparateTargets, MeasurementPlaneParallel3OwnerReduce) {
  expect_plane_accurate(3, 25, 4, 5e-3);
}

TEST(SeparateTargets, OverlappingKindsMixture) {
  // A mix of pure sources, pure targets, and both: potentials at
  // target-capable points must match direct summation over
  // source-capable points.
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 6;
  opts.max_points_per_leaf = 25;
  const Tables tables(kernel, opts);
  comm::Runtime::run(2, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(Distribution::kUniform, 1200,
                                       ctx.rank(), 2, 1, 71);
    for (auto& pt : pts) {
      switch (pt.gid % 3) {
        case 0: pt.kind = octree::kSource; break;
        case 1: pt.kind = octree::kTarget; break;
        default: pt.kind = octree::kBoth; break;
      }
    }
    const auto mine = pts;
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    auto result = fmm.evaluate();

    auto all = ctx.comm.allgatherv_concat(std::span<const PointRec>(mine));
    std::vector<PointRec> my_targets;
    for (const auto& pt : mine)
      if (pt.is_target()) my_targets.push_back(pt);
    const auto exact = direct_local(kernel, my_targets, all);

    struct GP {
      std::uint64_t gid;
      double v;
    };
    std::vector<GP> out(result.gids.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = {result.gids[i], result.potentials[i]};
    auto gathered = ctx.comm.allgatherv_concat(std::span<const GP>(out));
    std::unordered_map<std::uint64_t, double> by_gid;
    for (const auto& g : gathered) by_gid.emplace(g.gid, g.v);
    for (const auto& g : gathered) EXPECT_EQ(g.gid % 3 == 0, false);

    std::vector<double> approx(my_targets.size());
    for (std::size_t i = 0; i < my_targets.size(); ++i)
      approx[i] = by_gid.at(my_targets[i].gid);
    EXPECT_LT(rel_l2_error(approx, exact), 1e-4);
  });
}

TEST(SeparateTargets, GradientAtTargetsOnlyPoints) {
  kernels::LaplaceKernel kernel;
  auto gradk = kernel.gradient();
  FmmOptions opts;
  opts.surface_n = 6;
  opts.max_points_per_leaf = 30;
  const Tables tables(kernel, opts);
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    auto pts = make_mixed(1200, 12, 0, 1);
    const auto mine = pts;
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    auto result = fmm.evaluate(/*with_gradient=*/true);

    std::vector<PointRec> my_targets;
    for (const auto& pt : mine)
      if (pt.is_target()) my_targets.push_back(pt);
    const auto exact = direct_local(*gradk, my_targets, mine);

    std::unordered_map<std::uint64_t, std::size_t> idx;
    for (std::size_t i = 0; i < result.gids.size(); ++i)
      idx[result.gids[i]] = i;
    std::vector<double> approx(exact.size());
    for (std::size_t i = 0; i < my_targets.size(); ++i) {
      const std::size_t k = idx.at(my_targets[i].gid);
      for (int c = 0; c < 3; ++c)
        approx[3 * i + c] = result.gradients[3 * k + c];
    }
    EXPECT_LT(rel_l2_error(approx, exact), 1e-3);
  });
}

TEST(SeparateTargets, GpuPathHandlesMixedKinds) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 30;
  const Tables tables(kernel, opts);
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    auto pts = make_mixed(1200, 12, 0, 1);
    octree::BuildParams bp;
    bp.max_points_per_leaf = 30;
    auto tree = octree::build_distributed_tree(ctx.comm, pts, bp);
    octree::Let let = octree::build_let(ctx.comm, tree);
    octree::build_interaction_lists(let);

    Evaluator cpu(tables, let, ctx);
    cpu.run();
    gpu::StreamDevice dev;
    gpu::GpuEvaluator gpu_eval(tables, let, ctx, dev, 32,
                               /*offload_wx=*/true);
    gpu_eval.run();

    std::vector<double> pc, pg;
    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      const auto& nd = let.nodes[i];
      if (!(nd.owned && nd.global_leaf)) continue;
      for (std::uint32_t k = 0; k < nd.target_count; ++k) {
        pc.push_back(cpu.potential()[nd.point_begin + k]);
        pg.push_back(gpu_eval.potential()[nd.point_begin + k]);
      }
    }
    ASSERT_FALSE(pc.empty());
    EXPECT_LT(rel_l2_error(pg, pc), 3e-4);
  });
}

}  // namespace
}  // namespace pkifmm::core
