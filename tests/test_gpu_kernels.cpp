/// Unit-level tests of the individual device kernels against hand-built
/// inputs and the double-precision reference, plus the W/X offload
/// extension.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "core/direct.hpp"
#include "core/fmm.hpp"
#include "core/surface.hpp"
#include "gpu/evaluator.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pkifmm::gpu {
namespace {

using octree::Distribution;

/// A tiny hand-built GpuLet: one target box, its own points as the
/// only U-segment.
GpuLet tiny_let(int ntargets, int block, std::uint64_t seed) {
  GpuLet g;
  g.block = block;
  g.m = core::surface_point_count(4);
  Rng rng(seed);
  GpuLet::Box box{};
  box.let_node = 0;
  box.trg_begin = 0;
  box.count = ntargets;
  box.let_point_begin = 0;
  box.cx = box.cy = box.cz = 0.5f;
  box.hw = 0.25f;
  box.src_begin = 0;
  for (int i = 0; i < ntargets; ++i) {
    g.sx.push_back(0.25f + 0.5f * static_cast<float>(rng.uniform()));
    g.sy.push_back(0.25f + 0.5f * static_cast<float>(rng.uniform()));
    g.sz.push_back(0.25f + 0.5f * static_cast<float>(rng.uniform()));
    g.sq.push_back(static_cast<float>(rng.uniform(-1, 1)));
  }
  const int padded = (ntargets + block - 1) / block * block;
  for (int i = 0; i < padded; ++i) {
    const int j = std::min(i, ntargets - 1);
    g.tx.push_back(g.sx[j]);
    g.ty.push_back(g.sy[j]);
    g.tz.push_back(g.sz[j]);
  }
  for (int c = 0; c < padded / block; ++c) {
    g.chunk_box.push_back(0);
    g.chunk_trg.push_back(c * block);
  }
  box.seg_begin = 0;
  g.seg_src_begin.push_back(0);
  g.seg_src_count.push_back(ntargets);
  box.seg_end = 1;
  g.boxes.push_back(box);
  return g;
}

TEST(UliKernel, MatchesDirectSummationWithSelfExclusion) {
  for (int n : {5, 64, 100}) {
    const GpuLet g = tiny_let(n, 32, n);
    StreamDevice dev;
    Workspace ws = make_workspace(dev, g);
    run_uli(dev, g, ws);
    const auto f = dev.to_host(ws.f);

    // Double-precision direct reference with self-interaction skipped.
    for (int t = 0; t < n; ++t) {
      double expect = 0.0;
      for (int s = 0; s < n; ++s) {
        const double dx = double(g.tx[t]) - g.sx[s];
        const double dy = double(g.ty[t]) - g.sy[s];
        const double dz = double(g.tz[t]) - g.sz[s];
        const double r2 = dx * dx + dy * dy + dz * dz;
        if (r2 == 0.0) continue;
        expect += g.sq[s] / (4.0 * std::numbers::pi * std::sqrt(r2));
      }
      EXPECT_NEAR(f[t], expect, 2e-4 * (std::abs(expect) + 1.0)) << t;
    }
  }
}

TEST(UliKernel, PaddedSlotsAreNotWrittenBack) {
  const GpuLet g = tiny_let(5, 32, 3);  // 27 padded slots
  StreamDevice dev;
  Workspace ws = make_workspace(dev, g);
  run_uli(dev, g, ws);
  const auto f = dev.to_host(ws.f);
  for (std::size_t i = 5; i < f.size(); ++i) EXPECT_EQ(f[i], 0.0f);
}

TEST(UliKernel, RecordsTiledTraffic) {
  const GpuLet g = tiny_let(128, 64, 9);
  StreamDevice dev;
  Workspace ws = make_workspace(dev, g);
  const auto flops = run_uli(dev, g, ws);
  EXPECT_EQ(flops, dev.kernels().at("uli").flops);
  // 2 chunks x 64 threads x 128 sources x 10 flops.
  EXPECT_EQ(flops, 10ull * 128 * 128);
  EXPECT_GT(dev.kernels().at("uli").gmem_bytes, 0u);
}

TEST(VliDiagKernel, AccumulatesPointwiseProducts) {
  VliBatch batch;
  batch.vol = 8;
  Rng rng(4);
  // 2 sources, 2 translation spectra, 1 target with both pairs.
  batch.src_spectra.resize(2 * batch.vol);
  batch.g_spectra.resize(2 * batch.vol);
  for (auto& c : batch.src_spectra)
    c = {float(rng.uniform(-1, 1)), float(rng.uniform(-1, 1))};
  for (auto& c : batch.g_spectra)
    c = {float(rng.uniform(-1, 1)), float(rng.uniform(-1, 1))};
  batch.pair_src = {0, 1};
  batch.pair_g = {1, 0};
  batch.target_offset = {0, 2};

  StreamDevice dev;
  std::uint64_t flops = 0;
  const auto out = run_vli_diag(dev, batch, &flops);
  ASSERT_EQ(out.size(), batch.vol);
  for (std::size_t i = 0; i < batch.vol; ++i) {
    const auto expect = batch.g_spectra[batch.vol + i] * batch.src_spectra[i] +
                        batch.g_spectra[i] * batch.src_spectra[batch.vol + i];
    EXPECT_NEAR(std::abs(out[i] - expect), 0.0f, 1e-5);
  }
  EXPECT_EQ(flops, 2ull * 8 * batch.vol);
}

TEST(GpuWx, OffloadMatchesCpuOnNonuniformTree) {
  kernels::LaplaceKernel kern;
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 20;
  const core::Tables tables(kern, opts);
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    octree::BuildParams bp;
    bp.max_points_per_leaf = 20;
    auto tree = octree::build_distributed_tree(
        ctx.comm,
        octree::generate_points(Distribution::kEllipsoid, 2500, 0, 1, 1, 31),
        bp);
    octree::Let let = octree::build_let(ctx.comm, tree);
    octree::build_interaction_lists(let);
    // W/X must actually be exercised.
    EXPECT_GT(let.w.total(), 0u);
    EXPECT_GT(let.x.total(), 0u);

    core::Evaluator cpu(tables, let, ctx);
    cpu.run();

    StreamDevice dev;
    GpuEvaluator gpu(tables, let, ctx, dev, 64, /*offload_wx=*/true);
    gpu.run();

    std::vector<double> pc(cpu.potential().begin(), cpu.potential().end());
    std::vector<double> pg(gpu.potential().begin(), gpu.potential().end());
    EXPECT_LT(rel_l2_error(pg, pc), 2e-4);
    EXPECT_GT(dev.kernels().at("wli").flops, 0u);
    EXPECT_GT(dev.kernels().at("xli").flops, 0u);
  });
}

TEST(GpuWx, OffloadMatchesCpuOnClusterTree) {
  kernels::LaplaceKernel kern;
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 15;
  const core::Tables tables(kern, opts);
  comm::Runtime::run(2, [&](comm::RankCtx& ctx) {
    octree::BuildParams bp;
    bp.max_points_per_leaf = 15;
    auto tree = octree::build_distributed_tree(
        ctx.comm,
        octree::generate_points(Distribution::kCluster, 2000, ctx.rank(), 2, 1,
                                33),
        bp);
    octree::Let let = octree::build_let(ctx.comm, tree);
    octree::build_interaction_lists(let);

    core::Evaluator cpu(tables, let, ctx);
    cpu.run();
    StreamDevice dev;
    GpuEvaluator gpu(tables, let, ctx, dev, 32, /*offload_wx=*/true);
    gpu.run();

    std::vector<double> pc, pg;
    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      const auto& nd = let.nodes[i];
      if (!(nd.owned && nd.global_leaf)) continue;
      for (std::uint32_t k = 0; k < nd.point_count; ++k) {
        pc.push_back(cpu.potential()[nd.point_begin + k]);
        pg.push_back(gpu.potential()[nd.point_begin + k]);
      }
    }
    EXPECT_LT(rel_l2_error(pg, pc), 3e-4);
  });
}

TEST(GpuWx, AgreesWithDirectSummation) {
  kernels::LaplaceKernel kern;
  core::FmmOptions opts;
  opts.surface_n = 6;
  opts.max_points_per_leaf = 25;
  const core::Tables tables(kern, opts);
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(Distribution::kEllipsoid, 1800, 0, 1, 1,
                                       35);
    octree::BuildParams bp;
    bp.max_points_per_leaf = 25;
    auto tree = octree::build_distributed_tree(ctx.comm, pts, bp);
    octree::Let let = octree::build_let(ctx.comm, tree);
    octree::build_interaction_lists(let);

    StreamDevice dev;
    GpuEvaluator gpu(tables, let, ctx, dev, 64, /*offload_wx=*/true);
    gpu.run();

    std::vector<octree::PointRec> owned;
    std::vector<double> approx;
    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      const auto& nd = let.nodes[i];
      if (!(nd.owned && nd.global_leaf)) continue;
      for (std::uint32_t k = 0; k < nd.point_count; ++k) {
        owned.push_back(let.points[nd.point_begin + k]);
        approx.push_back(gpu.potential()[nd.point_begin + k]);
      }
    }
    const auto exact = core::direct_reference(ctx.comm, kern, owned);
    // Single-precision device accumulation bounds the agreement.
    EXPECT_LT(rel_l2_error(approx, exact), 3e-4);
  });
}

TEST(GpuWx, DefaultConfigurationKeepsWxOnCpu) {
  // Without the extension flag, the device must see only the paper's
  // four kernels — W/X stay on the CPU (paper §IV).
  kernels::LaplaceKernel kern;
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 20;
  const core::Tables tables(kern, opts);
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    octree::BuildParams bp;
    bp.max_points_per_leaf = 20;
    auto tree = octree::build_distributed_tree(
        ctx.comm,
        octree::generate_points(Distribution::kEllipsoid, 1500, 0, 1, 1, 39),
        bp);
    octree::Let let = octree::build_let(ctx.comm, tree);
    octree::build_interaction_lists(let);
    StreamDevice dev;
    GpuEvaluator gpu(tables, let, ctx, dev, 64);  // offload_wx defaults off
    gpu.run();
    EXPECT_EQ(dev.kernels().count("wli"), 0u);
    EXPECT_EQ(dev.kernels().count("xli"), 0u);
    EXPECT_EQ(dev.kernels().count("uli"), 1u);
  });
}

TEST(GpuWx, SoaCarriesWxSegments) {
  kernels::LaplaceKernel kern;
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 10;
  const core::Tables tables(kern, opts);
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    octree::BuildParams bp;
    bp.max_points_per_leaf = 10;
    auto tree = octree::build_distributed_tree(
        ctx.comm,
        octree::generate_points(Distribution::kEllipsoid, 1200, 0, 1, 1, 37),
        bp);
    octree::Let let = octree::build_let(ctx.comm, tree);
    octree::build_interaction_lists(let);
    const GpuLet g = build_gpu_let(tables, let, 32);

    std::size_t w_total = 0, x_total = 0;
    for (const auto& box : g.boxes) {
      w_total += box.wseg_end - box.wseg_begin;
      std::size_t xp = 0;
      for (auto s = box.xseg_begin; s < box.xseg_end; ++s)
        xp += g.xseg_src_count[s];
      // X segments must carry the same points as the LET X-list.
      std::size_t expect = 0;
      for (auto xi : let.x.of(box.let_node))
        expect += let.nodes[xi].point_count;
      EXPECT_EQ(xp, expect);
      x_total += xp;
      // W slots reference valid geometry.
      for (auto s = box.wseg_begin; s < box.wseg_end; ++s) {
        const auto slot = g.wseg_slot[s];
        ASSERT_LT(static_cast<std::size_t>(slot), g.wsrc_hw.size());
        EXPECT_GT(g.wsrc_hw[slot], 0.0f);
      }
      // Same W cardinality as the LET list.
      EXPECT_EQ(static_cast<std::size_t>(box.wseg_end - box.wseg_begin),
                let.w.of(box.let_node).size());
    }
    EXPECT_GT(w_total, 0u);
    EXPECT_GT(x_total, 0u);
  });
}

}  // namespace
}  // namespace pkifmm::gpu
