/// Message-flow tracing and wait-state attribution tests: the
/// FlowRecorder ring/seq/wait contracts, the off-by-default zero-cost
/// guarantee (counters ABSENT, not zero), Chrome flow arrows and the
/// derived multi-run pid stride, the summary's compute/comm-wait/
/// pool-idle decomposition and graph-based critical path against
/// hand-computed values, and the trend layer's warn-only (or --strict)
/// wait_seconds gate.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "comm/comm.hpp"
#include "core/fmm.hpp"
#include "kernels/kernel.hpp"
#include "obs/aggregate.hpp"
#include "obs/export.hpp"
#include "obs/flow.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trend.hpp"
#include "octree/points.hpp"

namespace pkifmm::obs {
namespace {

// ---------------------------------------------------- FlowRecorder

TEST(FlowRecorder, RingDropsNewestAndCountsWhenFull) {
  FlowRecorder fr(4);
  for (int i = 0; i < 6; ++i) fr.on_send(1, 7, 100);
  EXPECT_EQ(fr.events(), 4u);
  EXPECT_EQ(fr.capacity(), 4u);
  EXPECT_EQ(fr.dropped(), 2u);
  EXPECT_EQ(fr.sends(), 6u);  // totals keep counting past the drop

  RankMetrics m;
  fr.fold_into(m);
  EXPECT_DOUBLE_EQ(m.counters.at("flow.events"), 4.0);
  EXPECT_DOUBLE_EQ(m.counters.at("flow.dropped"), 2.0);
  EXPECT_DOUBLE_EQ(m.counters.at("flow.sends"), 6.0);
  EXPECT_EQ(m.flows.size(), 4u);
}

TEST(FlowRecorder, SeqIsMonotonicPerDirectionPeerTag) {
  FlowRecorder fr(16);
  fr.on_send(1, 7, 10);
  fr.on_send(2, 7, 10);               // different peer: own stream
  fr.on_send(1, 7, 10);
  fr.on_send(1, 8, 10);               // different tag: own stream
  fr.on_recv(1, 7, 10, 0.0, 0.0, false);  // recvs count independently
  fr.on_recv(1, 7, 10, 0.0, 0.1, true);

  RankMetrics m;
  fr.fold_into(m);
  ASSERT_EQ(m.flows.size(), 6u);
  // Per-(direction, peer, tag) occurrence order, in record order.
  std::map<std::tuple<int, int, int>, std::int32_t> expect_next;
  for (const FlowEvent& e : m.flows) {
    const int dir = e.kind == FlowEvent::kSend ? 0 : 1;
    const std::int32_t want =
        expect_next[std::make_tuple(dir, e.peer, e.tag)]++;
    EXPECT_EQ(e.seq, want);
  }
  // Spot checks: sends to (1,7) got 0,1; the send to (2,7) restarted
  // at 0; recvs from (1,7) restarted at 0 despite the sends.
  EXPECT_EQ(m.flows[0].seq, 0);
  EXPECT_EQ(m.flows[1].seq, 0);
  EXPECT_EQ(m.flows[2].seq, 1);
  EXPECT_EQ(m.flows[3].seq, 0);
  EXPECT_EQ(m.flows[4].seq, 0);
  EXPECT_EQ(m.flows[5].seq, 1);
}

TEST(FlowRecorder, WaitCountersAccumulatePerPhase) {
  FlowRecorder fr(16);
  fr.set_phase("eval.comm");
  fr.on_recv(0, 3, 8, 1.0, 1.5, true);   // 0.5 s blocked
  fr.on_recv(0, 3, 8, 2.0, 2.2, true);   // 0.2 s blocked
  fr.on_recv(0, 3, 8, 3.0, 3.0, false);  // hit, no wait
  fr.set_phase("setup.let");
  fr.on_send(1, 2, 4);  // sends only: phase gets NO wait counters

  RankMetrics m;
  fr.fold_into(m);
  EXPECT_NEAR(m.counters.at("wait.eval.comm.seconds"), 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(m.counters.at("wait.eval.comm.recvs"), 3.0);
  EXPECT_DOUBLE_EQ(m.counters.at("wait.eval.comm.blocked"), 2.0);
  // Worst single wait, not a sum.
  EXPECT_NEAR(m.counters.at("wait.eval.comm.max_seconds"), 0.5, 1e-12);
  EXPECT_EQ(m.counters.count("wait.setup.let.seconds"), 0u);
  EXPECT_EQ(m.counters.count("wait.default.seconds"), 0u);
}

TEST(FlowRecorder, PublishIsOneShotAndMatchesFold) {
  Recorder rec;
  FlowRecorder fr(8, rec.epoch());
  fr.set_phase("eval.comm");
  fr.on_send(1, 2, 64);
  fr.on_recv(1, 2, 32, 0.5, 0.9, true);
  fr.on_probe();

  RankMetrics folded;
  fr.fold_into(folded);
  EXPECT_FALSE(fr.published());

  fr.publish(rec);
  EXPECT_TRUE(fr.published());
  const RankMetrics& m = rec.metrics();
  for (const auto& [name, v] : folded.counters)
    EXPECT_DOUBLE_EQ(m.counters.at(name), v) << name;
  EXPECT_DOUBLE_EQ(m.counters.at("flow.probes"), 1.0);
  ASSERT_EQ(m.flows.size(), 2u);
  EXPECT_GE(m.flows[0].seq, 0);
  ASSERT_EQ(m.flow_phases.size(), 2u);  // "default", "eval.comm"
  EXPECT_EQ(m.flow_phases[1], "eval.comm");

  EXPECT_ANY_THROW(fr.publish(rec));  // double publish is a bug
}

// ------------------------------------------------ export / traces

/// Minimal two-rank snapshot with one matched message: rank 0 sends,
/// rank 1 receives blocked. Times are on each rank's own epoch.
std::vector<RankMetrics> flow_pair_ranks() {
  std::vector<RankMetrics> ranks(2);
  for (int r = 0; r < 2; ++r) {
    RankMetrics& rm = ranks[static_cast<std::size_t>(r)];
    rm.rank = r;
    rm.flow_phases = {"eval.comm"};
    SpanEvent sp;
    sp.name = "eval.comm";
    sp.start = 0.0;
    sp.wall = 2.0;
    sp.cpu = r == 0 ? 1.9 : 0.5;
    rm.spans.push_back(sp);
  }
  ranks[0].gauges["obs.epoch"] = 10.0;
  ranks[1].gauges["obs.epoch"] = 10.5;

  FlowEvent send;
  send.kind = FlowEvent::kSend;
  send.peer = 1;
  send.tag = 5;
  send.seq = 0;
  send.phase = 0;
  send.bytes = 256;
  send.t0 = send.t1 = 1.5;  // abs 11.5
  ranks[0].flows.push_back(send);

  FlowEvent recv;
  recv.kind = FlowEvent::kRecvBlocked;
  recv.peer = 0;
  recv.tag = 5;
  recv.seq = 0;
  recv.phase = 0;
  recv.bytes = 256;
  recv.t0 = 0.2;  // abs 10.7: blocked before the send fired
  recv.t1 = 1.2;  // abs 11.7
  ranks[1].flows.push_back(recv);
  ranks[1].counters["wait.eval.comm.seconds"] = 1.0;
  ranks[1].counters["wait.eval.comm.recvs"] = 1.0;
  ranks[1].counters["wait.eval.comm.blocked"] = 1.0;
  ranks[1].counters["wait.eval.comm.max_seconds"] = 1.0;
  return ranks;
}

TEST(Export, MetricsJsonRoundTripsFlows) {
  const auto ranks = flow_pair_ranks();
  const Json doc = metrics_to_json(ranks);
  validate_metrics_json(doc);
  const auto back = metrics_from_json(doc);
  ASSERT_EQ(back.size(), 2u);
  ASSERT_EQ(back[0].flows.size(), 1u);
  EXPECT_EQ(back[0].flows[0].kind, FlowEvent::kSend);
  EXPECT_EQ(back[0].flows[0].peer, 1);
  EXPECT_EQ(back[0].flows[0].seq, 0);
  EXPECT_EQ(back[0].flow_phases, ranks[0].flow_phases);
  EXPECT_EQ(metrics_to_json(back), doc);

  // The validator rejects out-of-range kinds: rebuild rank 0 with a
  // corrupted flow row appended (Json is a value type — set() swaps
  // whole subtrees).
  Json r0 = doc.at("ranks").at(0);
  Json flows = r0.at("flows");
  Json row = Json::array();
  for (int v : {9, 0, 0, 0, 0, 0, 0, 0}) row.push_back(Json(std::int64_t{v}));
  flows.push_back(std::move(row));
  r0.set("flows", std::move(flows));
  Json ranks_arr = Json::array();
  ranks_arr.push_back(std::move(r0));
  ranks_arr.push_back(doc.at("ranks").at(1));
  Json bad = doc;
  bad.set("ranks", std::move(ranks_arr));
  EXPECT_ANY_THROW(validate_metrics_json(bad));
}

TEST(Export, ChromeTraceDrawsFlowArrowsAndWaitSlices) {
  const Json doc = chrome_trace_json(flow_pair_ranks());
  const Json* s_ev = nullptr;
  const Json* f_ev = nullptr;
  const Json* wait_ev = nullptr;
  for (const Json& ev : doc.at("traceEvents").items()) {
    const std::string ph = ev.at("ph").as_string();
    if (ph == "s") s_ev = &ev;
    if (ph == "f") f_ev = &ev;
    if (ph == "X" && ev.contains("cat") &&
        ev.at("cat").as_string() == "wait")
      wait_ev = &ev;
  }
  ASSERT_NE(s_ev, nullptr);
  ASSERT_NE(f_ev, nullptr);
  ASSERT_NE(wait_ev, nullptr);

  // The arrow's id is rank-symmetric: both endpoints derive the same
  // "f:<src>:<dst>:<tag>:<seq>" without coordination.
  EXPECT_EQ(s_ev->at("id").as_string(), "f:0:1:5:0");
  EXPECT_EQ(f_ev->at("id").as_string(), "f:0:1:5:0");
  EXPECT_EQ(s_ev->at("pid").as_int(), 0);
  EXPECT_EQ(f_ev->at("pid").as_int(), 1);
  EXPECT_EQ(f_ev->at("bp").as_string(), "e");
  // Epoch-aligned: sender stamped at abs 11.5, receiver dequeue 11.7,
  // so the arrow points forward in time.
  EXPECT_DOUBLE_EQ(s_ev->at("ts").as_double(), 11.5 * 1e6);
  EXPECT_DOUBLE_EQ(f_ev->at("ts").as_double(), 11.7 * 1e6);
  EXPECT_LT(s_ev->at("ts").as_double(), f_ev->at("ts").as_double());

  // The blocked receive became a wait.<phase> slice of the block span.
  EXPECT_EQ(wait_ev->at("name").as_string(), "wait.eval.comm");
  EXPECT_DOUBLE_EQ(wait_ev->at("ts").as_double(), 10.7 * 1e6);
  EXPECT_DOUBLE_EQ(wait_ev->at("dur").as_double(), 1.0 * 1e6);
  EXPECT_EQ(wait_ev->at("args").at("src").as_int(), 0);
}

TEST(Export, MergeChromeTracesDerivesStrideFromActualRankCount) {
  // Regression for the fixed 1<<20 stride: a run whose pids reach the
  // old stride must still land in its own block, and a small sweep
  // must not leave 2^20-wide gaps. Stride = max(pid)+1 across runs.
  auto run_doc = [](std::vector<std::int64_t> pids, const std::string& id) {
    Json events = Json::array();
    for (std::int64_t pid : pids) {
      Json meta = Json::object();
      meta.set("ph", "M");
      meta.set("name", "process_name");
      meta.set("pid", pid);
      Json args = Json::object();
      args.set("name", "rank " + std::to_string(pid));
      meta.set("args", std::move(args));
      events.push_back(std::move(meta));

      Json ev = Json::object();
      ev.set("ph", "s");
      ev.set("id", id);
      ev.set("pid", pid);
      ev.set("ts", 1.0);
      events.push_back(std::move(ev));
    }
    Json doc = Json::object();
    doc.set("traceEvents", std::move(events));
    return doc;
  };

  const std::int64_t big = std::int64_t{1} << 20;  // the old fixed stride
  const Json merged = merge_chrome_traces(
      {run_doc({0, 1, big}, "f:0:1:7:0"), run_doc({0, 1}, "f:0:1:7:0")});

  std::set<std::int64_t> run0_pids, run1_pids;
  std::set<std::string> ids;
  std::set<std::string> proc_names;
  for (const Json& ev : merged.at("traceEvents").items()) {
    if (ev.contains("id")) ids.insert(ev.at("id").as_string());
    if (ev.at("ph").as_string() == "M")
      proc_names.insert(ev.at("args").at("name").as_string());
    (ev.at("pid").as_int() > big ? run1_pids : run0_pids)
        .insert(ev.at("pid").as_int());
  }
  // Run 0 keeps its pids; run 1 is shifted by exactly big + 1.
  EXPECT_EQ(run0_pids, (std::set<std::int64_t>{0, 1, big}));
  EXPECT_EQ(run1_pids, (std::set<std::int64_t>{big + 1, big + 2}));
  // Flow ids are disambiguated per run so arrows never cross runs.
  EXPECT_EQ(ids,
            (std::set<std::string>{"r0:f:0:1:7:0", "r1:f:0:1:7:0"}));
  EXPECT_TRUE(proc_names.count("run0 rank 0"));
  EXPECT_TRUE(proc_names.count("run1 rank 1"));
}

// --------------------------------------------------- aggregation

TEST(Aggregate, FlowDecompClassificationAndGraphPath) {
  const Json doc = summarize_metrics(flow_pair_ranks());
  validate_summary_json(doc);

  // Matching + classification: one message, sent at abs 11.5 while the
  // receiver had been blocked since 10.7 — a late sender.
  const Json& flow = doc.at("flow");
  EXPECT_DOUBLE_EQ(flow.at("matched").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(flow.at("unmatched_sends").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(flow.at("unmatched_recvs").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(flow.at("late_sender").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(flow.at("late_receiver").as_double(), 0.0);

  const auto& pairs = flow.at("pairs").items();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].at("src").as_int(), 0);
  EXPECT_EQ(pairs[0].at("dst").as_int(), 1);
  EXPECT_DOUBLE_EQ(pairs[0].at("msgs").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(pairs[0].at("late_sender_msgs").as_double(), 1.0);
  // Latency = dequeue - send = 11.7 - 11.5; wait = dequeue - block.
  EXPECT_NEAR(pairs[0].at("latency_p50").as_double(), 0.2, 1e-12);
  EXPECT_NEAR(pairs[0].at("latency_max").as_double(), 0.2, 1e-12);
  EXPECT_NEAR(pairs[0].at("wait_seconds").as_double(), 1.0, 1e-12);

  // Decomposition, hand-computed: rank 0 contributes compute 1.9 +
  // idle 0.1; rank 1 compute 0.5 + wait 1.0 + idle 0.5; wall 4.0.
  const Json& ph = doc.at("phases").at("eval.comm");
  const Json& d = ph.at("decomp");
  EXPECT_NEAR(d.at("compute").as_double(), 2.4, 1e-12);
  EXPECT_NEAR(d.at("comm_wait").as_double(), 1.0, 1e-12);
  EXPECT_NEAR(d.at("pool_idle").as_double(), 0.6, 1e-12);
  EXPECT_NEAR(d.at("wall").as_double(), 4.0, 1e-12);
  // The acceptance invariant: the three legs sum to wall.
  EXPECT_NEAR(d.at("compute").as_double() + d.at("comm_wait").as_double() +
                  d.at("pool_idle").as_double(),
              d.at("wall").as_double(), 1e-9);

  // Slack vs the [10, 12.5] makespan: both ranks busy 2.0 of 2.5.
  EXPECT_NEAR(ph.at("critical_path").as_double(), 2.5, 1e-12);
  EXPECT_NEAR(ph.at("slack").at("avg").as_double(), 0.5, 1e-12);

  // Graph critical path from the latest-ending rank (rank 1, 12.5):
  // compute back to the binding recv (12.5 - 11.7), transfer across
  // the message (11.7 - 11.5), then rank 0's compute back to its
  // phase start (11.5 - 10.0). Exactly the 2.5 s makespan here.
  EXPECT_NEAR(ph.at("critical_path_graph_compute").as_double(),
              0.8 + 1.5, 1e-12);
  EXPECT_NEAR(ph.at("critical_path_graph_transfer").as_double(), 0.2,
              1e-12);
  EXPECT_NEAR(ph.at("critical_path_graph").as_double(), 2.5, 1e-12);
}

TEST(Aggregate, NoFlowSectionWithoutFlows) {
  std::vector<RankMetrics> ranks(1);
  ranks[0].counters["time.eval.uli.wall"] = 1.0;
  ranks[0].counters["time.eval.uli.cpu"] = 1.0;
  const Json doc = summarize_metrics(ranks);
  validate_summary_json(doc);
  EXPECT_FALSE(doc.contains("flow"));
  EXPECT_FALSE(doc.at("phases").at("eval.uli").contains("decomp"));
  EXPECT_FALSE(doc.at("phases").at("eval.uli").contains("slack"));
}

// -------------------------------------------------------- trend

Json synth_run_record(const std::string& sha, double wall, double wait) {
  Json rec = Json::object();
  rec.set("schema", kRunSchema);
  rec.set("bench", "bench_x");
  rec.set("git_sha", sha);
  rec.set("nranks", std::int64_t{2});
  rec.set("nruns", std::int64_t{1});
  rec.set("hw_source", "none");
  rec.set("config", Json::object());
  Json ph = Json::object();
  ph.set("wall", wall);
  ph.set("cpu", wall);
  ph.set("flops", 1e6);
  ph.set("msgs_sent", 100.0);
  ph.set("bytes_sent", 1e5);
  ph.set("wait_seconds", wait);
  Json phases = Json::object();
  phases.set("eval", std::move(ph));
  rec.set("phases", std::move(phases));
  return rec;
}

TEST(Trend, WaitSecondsRegressionWarnsByDefault) {
  std::vector<Json> recs;
  for (int i = 0; i < 4; ++i)
    recs.push_back(synth_run_record("ref" + std::to_string(i), 1.0, 0.1));
  recs.push_back(synth_run_record("fresh", 1.0, 10.0));  // 100x the wait

  const Json report = trend_analyze(recs, TrendOptions{});
  EXPECT_TRUE(report.at("ok").as_bool());  // warn-only by default
  EXPECT_EQ(report.at("regressions").size(), 0u);
  ASSERT_EQ(report.at("warnings").size(), 1u);
  const Json& w = report.at("warnings").items()[0];
  EXPECT_EQ(w.at("metric").as_string(), "wait_seconds");
  EXPECT_NEAR(w.at("reference").as_double(), 0.1, 1e-12);
  EXPECT_NEAR(w.at("fresh").as_double(), 10.0, 1e-12);
}

TEST(Trend, StrictPromotesWarningsToFailure) {
  std::vector<Json> recs;
  for (int i = 0; i < 4; ++i)
    recs.push_back(synth_run_record("ref" + std::to_string(i), 1.0, 0.1));
  recs.push_back(synth_run_record("fresh", 1.0, 10.0));

  TrendOptions strict;
  strict.strict = true;
  const Json report = trend_analyze(recs, strict);
  EXPECT_FALSE(report.at("ok").as_bool());
  // Still reported as a warning (the finding class does not change —
  // only the verdict does), and hard regressions stay empty.
  EXPECT_EQ(report.at("regressions").size(), 0u);
  EXPECT_EQ(report.at("warnings").size(), 1u);

  // A clean history is ok under strict too.
  std::vector<Json> clean;
  for (int i = 0; i < 5; ++i)
    clean.push_back(synth_run_record("c" + std::to_string(i), 1.0, 0.1));
  EXPECT_TRUE(trend_analyze(clean, strict).at("ok").as_bool());
}

TEST(Trend, RunRecordCarriesWaitSeconds) {
  const Json summary = summarize_metrics(flow_pair_ranks());
  const Json rec =
      run_record_from_summary(summary, "bench_x", "sha", Json::object());
  validate_run_json(rec);
  const Json& ph = rec.at("phases").at("eval.comm");
  ASSERT_TRUE(ph.contains("wait_seconds"));
  // Cross-rank sum of wait.eval.comm.seconds: only rank 1 waited.
  EXPECT_NEAR(ph.at("wait_seconds").as_double(), 1.0, 1e-12);
}

// --------------------------------------------------- integration

core::FmmOptions small_opts(bool flow_trace) {
  core::FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 20;
  opts.flow_trace = flow_trace;
  return opts;
}

std::vector<comm::RankReport> run_small_fmm(const core::Tables& tables,
                                            int p, int threads = 1) {
  return comm::Runtime::run(p, threads, /*clamp=*/true,
                            [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(octree::Distribution::kEllipsoid,
                                       2000, ctx.rank(), ctx.size(), 1, 42);
    core::ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    (void)fmm.evaluate();
  });
}

TEST(FlowIntegration, CountersAbsentWhenFlowTraceOff) {
  kernels::LaplaceKernel kernel;
  const core::Tables tables(kernel, small_opts(false));
  const auto reports = run_small_fmm(tables, 2);
  for (const auto& rep : reports) {
    EXPECT_TRUE(rep.obs.flows.empty());
    EXPECT_TRUE(rep.obs.flow_phases.empty());
    // The zero-overhead contract: no flow.* / wait.* counters AT ALL —
    // absent, not zero.
    for (const auto& [name, v] : rep.obs.counters) {
      EXPECT_FALSE(name.starts_with("flow.")) << name;
      EXPECT_FALSE(name.starts_with("wait.")) << name;
    }
  }
}

TEST(FlowIntegration, TracedRunMatchesAndDecomposes) {
  kernels::LaplaceKernel kernel;
  core::FmmOptions opts = small_opts(true);
  opts.threads_per_rank = 4;  // the acceptance shape: 4 ranks x 4 threads
  const core::Tables tables(kernel, opts);

  constexpr int kP = 4;
  std::vector<Json> summaries(kP);
  const auto reports = comm::Runtime::run(
      kP, opts.threads_per_rank, /*clamp=*/true, [&](comm::RankCtx& ctx) {
        auto pts = octree::generate_points(
            octree::Distribution::kEllipsoid, 2000, ctx.rank(), ctx.size(),
            1, 42);
        core::ParallelFmm fmm(ctx, tables);
        fmm.setup(std::move(pts));
        (void)fmm.evaluate();
        summaries[static_cast<std::size_t>(ctx.rank())] = fmm.summary();
      });
  ASSERT_EQ(reports.size(), static_cast<std::size_t>(kP));

  // Every rank published its ring into the end-of-run snapshot.
  double total_sends = 0.0, total_recvs = 0.0;
  for (const auto& rep : reports) {
    const auto& c = rep.obs.counters;
    ASSERT_TRUE(c.count("flow.sends"));
    total_sends += c.at("flow.sends");
    total_recvs += c.at("flow.recvs");
    EXPECT_DOUBLE_EQ(c.at("flow.dropped"), 0.0);
    EXPECT_FALSE(rep.obs.flows.empty());
    for (const FlowEvent& e : rep.obs.flows) {
      EXPECT_GE(e.seq, 0);
      EXPECT_GE(e.t1, e.t0);
    }
  }
  EXPECT_GT(total_sends, 0.0);
  // Fabric conservation: every receive dequeued exactly one send.
  EXPECT_DOUBLE_EQ(total_sends, total_recvs);

  // Epoch-aligned matching: pair the k-th send to (src, dst, tag) with
  // the k-th receive from (src, tag) at dst; latency must come out
  // non-negative on the shared clock (the send is stamped before the
  // enqueue, the receive after the dequeue).
  std::map<std::array<int, 4>, std::vector<double>> send_ts, recv_ts;
  for (const auto& rep : reports) {
    const double epoch = rep.obs.gauges.at("obs.epoch");
    for (const FlowEvent& e : rep.obs.flows) {
      if (e.kind == FlowEvent::kSend)
        send_ts[{rep.obs.rank, e.peer, e.tag, e.seq}].push_back(epoch +
                                                                e.t0);
      else
        recv_ts[{e.peer, rep.obs.rank, e.tag, e.seq}].push_back(epoch +
                                                                e.t1);
    }
  }
  std::size_t matched = 0;
  for (const auto& [key, st] : send_ts) {
    const auto rit = recv_ts.find(key);
    if (rit == recv_ts.end()) continue;
    ASSERT_EQ(st.size(), 1u);  // (src,dst,tag,seq) is a unique flow id
    ASSERT_EQ(rit->second.size(), 1u);
    EXPECT_GE(rit->second[0], st[0]);
    ++matched;
  }
  EXPECT_GT(matched, 0u);

  // The cross-rank summary decomposes every phase's wall time, and the
  // three legs sum to the wall within 1% (the acceptance bound; exact
  // by construction, the slack is pure float headroom).
  const Json& doc = summaries[0];
  validate_summary_json(doc);
  ASSERT_TRUE(doc.contains("flow"));
  EXPECT_GT(doc.at("flow").at("matched").as_double(), 0.0);
  std::size_t decomposed = 0;
  for (const std::string& name : doc.at("phases").keys()) {
    const Json& ph = doc.at("phases").at(name);
    if (!ph.contains("decomp")) continue;
    ++decomposed;
    const Json& d = ph.at("decomp");
    const double wall = d.at("wall").as_double();
    const double sum = d.at("compute").as_double() +
                       d.at("comm_wait").as_double() +
                       d.at("pool_idle").as_double();
    EXPECT_NEAR(sum, wall, 0.01 * std::max(wall, 1e-12)) << name;
    EXPECT_GE(d.at("compute").as_double(), 0.0) << name;
    EXPECT_GE(d.at("comm_wait").as_double(), 0.0) << name;
    EXPECT_GE(d.at("pool_idle").as_double(), 0.0) << name;
  }
  EXPECT_GT(decomposed, 0u);

  // The merged chrome trace carries flow arrows with matching ids on
  // both endpoints.
  std::vector<RankMetrics> ranks;
  for (const auto& rep : reports) ranks.push_back(rep.obs);
  const Json trace = chrome_trace_json(ranks);
  std::set<std::string> s_ids, f_ids;
  for (const Json& ev : trace.at("traceEvents").items()) {
    const std::string ph = ev.at("ph").as_string();
    if (ph == "s") s_ids.insert(ev.at("id").as_string());
    if (ph == "f") f_ids.insert(ev.at("id").as_string());
  }
  EXPECT_FALSE(s_ids.empty());
  EXPECT_EQ(s_ids, f_ids);

  // And the full snapshot set still round-trips as schema-valid JSON.
  const Json mdoc = metrics_to_json(ranks);
  validate_metrics_json(mdoc);
  EXPECT_EQ(metrics_to_json(metrics_from_json(mdoc)), mdoc);
}

}  // namespace
}  // namespace pkifmm::obs
