/// Phase-level integration tests: each stage of the FMM pipeline is
/// checked against the exact contribution it is supposed to represent,
/// so a regression pinpoints the faulty translation rather than just
/// failing end-to-end.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/direct.hpp"
#include "core/evaluator.hpp"
#include "core/fmm.hpp"
#include "core/surface.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pkifmm::core {
namespace {

using octree::Distribution;
using octree::PointRec;

struct Pipeline {
  octree::Let let;
  std::unique_ptr<Evaluator> eval;
};

/// Potential at probe points from a set of sources (exact).
std::vector<double> direct_at(const kernels::Kernel& k,
                              std::span<const double> probes,
                              std::span<const PointRec> sources) {
  std::vector<double> spos, sden;
  for (const auto& s : sources) {
    spos.insert(spos.end(), s.pos, s.pos + 3);
    sden.push_back(s.den[0]);
  }
  std::vector<double> pot(probes.size() / 3, 0.0);
  k.direct(probes, spos, sden, pot);
  return pot;
}

/// After S2U + U2U + reduce, the upward density of EVERY octant must
/// reproduce the exact field of the points it contains, evaluated
/// outside its colleague zone. Run in parallel so the reduce-scatter
/// completeness is part of what is being checked.
TEST(Upward, DensitiesReproduceFarFieldAtAllLevels) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 6;
  opts.max_points_per_leaf = 15;
  const Tables tables(kernel, opts);

  comm::Runtime::run(4, [&](comm::RankCtx& ctx) {
    octree::BuildParams bp;
    bp.max_points_per_leaf = 15;
    auto pts = octree::generate_points(Distribution::kEllipsoid, 1500,
                                       ctx.rank(), 4, 1, 61);
    auto tree = octree::build_distributed_tree(ctx.comm, pts, bp);
    octree::Let let = octree::build_let(ctx.comm, tree);
    octree::build_interaction_lists(let);

    Evaluator eval(tables, let, ctx);
    eval.s2u();
    eval.u2u();
    eval.comm_reduce();

    // All points, for the exact reference.
    std::vector<PointRec> owned;
    for (const auto& nd : let.nodes)
      if (nd.owned)
        for (const auto& pt : let.points_of(nd)) owned.push_back(pt);
    auto all = ctx.comm.allgatherv_concat(std::span<const PointRec>(owned));

    // Check a sample of octants this rank uses (targets and V members).
    Rng rng(7, ctx.rank());
    int checked = 0;
    for (std::size_t i = 0; i < let.nodes.size() && checked < 25; ++i) {
      const auto& nd = let.nodes[i];
      const bool used = nd.target || !let.v.of(i).empty();
      if (!used || nd.key.level < 2) continue;
      if (rng.uniform() > 0.2) continue;

      const auto geom = morton::box_geometry(nd.key);
      // A probe 4 box-sizes away along a random-ish diagonal, kept in
      // bounds by construction of the offset.
      double probe[3];
      for (int c = 0; c < 3; ++c) {
        const double off = 8.0 * geom.half_width;
        probe[c] = geom.center[c] + (geom.center[c] < 0.5 ? off : -off);
      }

      // u-density field at the probe.
      const auto ue = surface_points(tables.n(), opts.upward_equiv_radius,
                                     geom.center, geom.half_width);
      std::vector<double> approx(1, 0.0);
      kernel.direct(std::span<const double>(probe, 3), ue,
                    eval.u().subspan(i * tables.eq_len(), tables.eq_len()),
                    approx);

      // Exact field of the points contained in this octant.
      std::vector<PointRec> contained;
      for (const auto& pt : all)
        if (pt.key_bits >= morton::range_begin(nd.key) &&
            pt.key_bits < morton::range_end(nd.key))
          contained.push_back(pt);
      const auto exact =
          direct_at(kernel, std::span<const double>(probe, 3), contained);

      if (std::abs(exact[0]) < 1e-10) continue;  // empty/cancelling octant
      EXPECT_NEAR(approx[0], exact[0], 2e-4 * std::abs(exact[0]) + 1e-10)
          << morton::to_string(nd.key) << " rank " << ctx.rank();
      ++checked;
    }
    EXPECT_GT(checked, 4);
  });
}

/// On one rank: the far-field part delivered by D2T must equal the
/// exact potential of all sources except the U-list sources and the
/// W-members' subtrees (which arrive via ULI and WLI respectively).
TEST(Downward, D2TDeliversExactlyTheFarField) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 8;  // high accuracy so the split is crisp
  opts.max_points_per_leaf = 20;
  const Tables tables(kernel, opts);

  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    octree::BuildParams bp;
    bp.max_points_per_leaf = 20;
    auto pts = octree::generate_points(Distribution::kEllipsoid, 1000, 0, 1, 1,
                                       63);
    auto tree = octree::build_distributed_tree(ctx.comm, pts, bp);
    octree::Let let = octree::build_let(ctx.comm, tree);
    octree::build_interaction_lists(let);

    Evaluator eval(tables, let, ctx);
    eval.s2u();
    eval.u2u();
    eval.vli();
    eval.xli();
    eval.downward();
    // Only D2T: potential() then contains the far-field part alone.
    eval.d2t();

    int checked = 0;
    for (std::size_t i = 0; i < let.nodes.size() && checked < 8; ++i) {
      const auto& nd = let.nodes[i];
      if (!(nd.owned && nd.global_leaf) || nd.point_count < 3) continue;

      // Near sources: U-list points + W-member subtree points. W
      // members may be internal, so gather the points of all global
      // leaves they contain.
      std::set<std::uint64_t> near;
      for (auto ui : let.u.of(i))
        for (const auto& pt : let.points_of(let.nodes[ui]))
          near.insert(pt.gid);
      for (auto wi : let.w.of(i)) {
        const auto& wkey = let.nodes[wi].key;
        for (const auto& src : let.nodes) {
          if (!src.global_leaf || !morton::contains(wkey, src.key)) continue;
          for (const auto& pt : let.points_of(src)) near.insert(pt.gid);
        }
      }
      std::vector<PointRec> far;
      for (const auto& pt : let.points)
        if (!near.count(pt.gid)) far.push_back(pt);

      std::vector<double> probes;
      for (const auto& pt : let.points_of(nd))
        probes.insert(probes.end(), pt.pos, pt.pos + 3);
      const auto exact = direct_at(kernel, probes, far);
      std::vector<double> approx(nd.point_count);
      for (std::uint32_t k = 0; k < nd.point_count; ++k)
        approx[k] = eval.potential()[nd.point_begin + k];
      EXPECT_LT(rel_l2_error(approx, exact), 1e-5)
          << morton::to_string(nd.key);
      ++checked;
    }
    EXPECT_GT(checked, 3);
  });
}

/// ULI alone must equal the exact near-field (U-list) contribution —
/// this is exact arithmetic, not an expansion, so the tolerance is
/// machine precision.
TEST(Direct, UliAloneEqualsNearFieldExactly) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 25;
  const Tables tables(kernel, opts);

  comm::Runtime::run(2, [&](comm::RankCtx& ctx) {
    octree::BuildParams bp;
    bp.max_points_per_leaf = 25;
    auto pts = octree::generate_points(Distribution::kUniform, 1000,
                                       ctx.rank(), 2, 1, 65);
    auto tree = octree::build_distributed_tree(ctx.comm, pts, bp);
    octree::Let let = octree::build_let(ctx.comm, tree);
    octree::build_interaction_lists(let);

    Evaluator eval(tables, let, ctx);
    eval.uli();  // nothing else

    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      const auto& nd = let.nodes[i];
      if (!(nd.owned && nd.global_leaf)) continue;
      std::vector<PointRec> near;
      for (auto ui : let.u.of(i))
        for (const auto& pt : let.points_of(let.nodes[ui])) near.push_back(pt);
      std::vector<double> probes;
      for (const auto& pt : let.points_of(nd))
        probes.insert(probes.end(), pt.pos, pt.pos + 3);
      const auto exact = direct_at(kernel, probes, near);
      for (std::uint32_t k = 0; k < nd.point_count; ++k)
        EXPECT_NEAR(eval.potential()[nd.point_begin + k], exact[k],
                    1e-12 * (std::abs(exact[k]) + 1.0));
    }
  });
}

}  // namespace
}  // namespace pkifmm::core
