/// Property-based and failure-injection tests of the full FMM stack:
/// parameterized accuracy sweeps, invariances (rank-count independence,
/// linearity), degenerate geometry, and error paths.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "core/direct.hpp"
#include "core/fmm.hpp"
#include "gpu/autotune.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pkifmm::core {
namespace {

using octree::Distribution;
using octree::PointRec;

/// Gathers per-gid scalar potentials across ranks.
std::unordered_map<std::uint64_t, double> gather_by_gid(
    comm::Comm& c, const ParallelFmm::Result& r) {
  struct GP {
    std::uint64_t gid;
    double v;
  };
  std::vector<GP> mine(r.gids.size());
  for (std::size_t i = 0; i < mine.size(); ++i)
    mine[i] = {r.gids[i], r.potentials[i]};
  auto all = c.allgatherv_concat(std::span<const GP>(mine));
  std::unordered_map<std::uint64_t, double> out;
  for (const auto& g : all) out.emplace(g.gid, g.v);
  return out;
}

double e2e_error(const kernels::Kernel& kernel, const Tables& tables,
                 Distribution dist, std::uint64_t n, int p,
                 std::uint64_t seed = 17) {
  double err = 0.0;
  comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(dist, n, ctx.rank(), p,
                                       kernel.source_dim(), seed);
    const auto mine = pts;
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    auto result = fmm.evaluate();
    const auto exact = direct_reference(ctx.comm, kernel, mine);
    auto by_gid = gather_by_gid(ctx.comm, result);
    std::vector<double> approx(mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i)
      approx[i] = by_gid.at(mine[i].gid);
    if (ctx.rank() == 0) err = rel_l2_error(approx, exact);
  });
  return err;
}

// ---------------------------------------------------------------------
// Parameterized accuracy sweep: distribution x q (Laplace, n = 4).
// ---------------------------------------------------------------------

using SweepParam = std::tuple<int /*dist*/, int /*q*/, int /*p*/>;

class AccuracySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AccuracySweep, FmmMatchesDirect) {
  const auto [d, q, p] = GetParam();
  const auto dist = static_cast<Distribution>(d);
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = q;
  if ((p & (p - 1)) != 0) opts.reduce = ReduceMode::kOwner;
  const Tables tables(kernel, opts);
  EXPECT_LT(e2e_error(kernel, tables, dist, 1200, p), 5e-3);
}

INSTANTIATE_TEST_SUITE_P(
    DistributionsAndLeafSizes, AccuracySweep,
    ::testing::Combine(::testing::Values(0, 1, 2),   // uniform/ellipsoid/cluster
                       ::testing::Values(5, 25, 120),
                       ::testing::Values(1, 2)));

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, FmmMatchesDirectAcrossRankCounts) {
  const int p = GetParam();
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 20;
  if ((p & (p - 1)) != 0) opts.reduce = ReduceMode::kOwner;
  const Tables tables(kernel, opts);
  EXPECT_LT(e2e_error(kernel, tables, Distribution::kEllipsoid, 1500, p), 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 16));

// ---------------------------------------------------------------------
// Invariances
// ---------------------------------------------------------------------

TEST(Invariance, ResultIndependentOfRankCount) {
  // The same points must give (numerically) the same potentials no
  // matter how many ranks computed them.
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 6;
  opts.max_points_per_leaf = 30;
  const Tables tables(kernel, opts);

  std::unordered_map<std::uint64_t, double> pot1, pot4;
  for (int p : {1, 4}) {
    comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
      auto pts = octree::generate_points(Distribution::kEllipsoid, 1500,
                                         ctx.rank(), p, 1, 5);
      ParallelFmm fmm(ctx, tables);
      fmm.setup(std::move(pts));
      auto result = fmm.evaluate();
      auto by_gid = gather_by_gid(ctx.comm, result);
      if (ctx.rank() == 0) (p == 1 ? pot1 : pot4) = by_gid;
    });
  }
  ASSERT_EQ(pot1.size(), pot4.size());
  // Summation order differs across rank counts (reduce-scatter merges
  // partial densities in a different order), so agreement is to
  // floating-point accumulation accuracy, not bitwise.
  for (const auto& [gid, v] : pot1)
    EXPECT_NEAR(pot4.at(gid), v, 1e-7 * (std::abs(v) + 1.0)) << gid;
}

TEST(Invariance, LinearityInDensities) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 40;
  const Tables tables(kernel, opts);
  comm::Runtime::run(2, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(Distribution::kUniform, 1000,
                                       ctx.rank(), 2, 1, 9);
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));

    auto r1 = fmm.evaluate();

    // densities2 = -3 * densities1 (by gid).
    std::vector<std::uint64_t> gids;
    std::vector<double> d2;
    for (const auto& node : fmm.let().nodes) {
      if (!node.owned) continue;
      for (const auto& pt : fmm.let().points_of(node)) {
        gids.push_back(pt.gid);
        d2.push_back(-3.0 * pt.den[0]);
      }
    }
    fmm.set_densities(gids, d2);
    auto r2 = fmm.evaluate();
    ASSERT_EQ(r1.potentials.size(), r2.potentials.size());
    for (std::size_t i = 0; i < r1.potentials.size(); ++i)
      EXPECT_NEAR(r2.potentials[i], -3.0 * r1.potentials[i],
                  1e-10 * (std::abs(r1.potentials[i]) + 1.0));
  });
}

TEST(Invariance, ZeroDensitiesGiveZeroPotential) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 30;
  const Tables tables(kernel, opts);
  comm::Runtime::run(2, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(Distribution::kUniform, 800,
                                       ctx.rank(), 2, 1, 11);
    for (auto& pt : pts) pt.den[0] = 0.0;
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    auto result = fmm.evaluate();
    for (double v : result.potentials) EXPECT_EQ(v, 0.0);
  });
}

// ---------------------------------------------------------------------
// Degenerate geometry
// ---------------------------------------------------------------------

std::vector<PointRec> colinear_points(std::uint64_t n, int rank, int p) {
  std::vector<PointRec> pts;
  const std::uint64_t b = n * rank / p, e = n * (rank + 1) / p;
  for (std::uint64_t g = b; g < e; ++g) {
    Rng rng(1000 + g);
    PointRec r{};
    const double t = static_cast<double>(g) / static_cast<double>(n);
    r.pos[0] = 0.05 + 0.9 * t;
    r.pos[1] = 0.5;
    r.pos[2] = 0.5;
    r.den[0] = rng.uniform(-1, 1);
    r.gid = g;
    pts.push_back(r);
  }
  octree::assign_morton_ids(pts);
  return pts;
}

TEST(Degenerate, ColinearPointsOnAxis) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 6;
  opts.max_points_per_leaf = 10;
  const Tables tables(kernel, opts);
  comm::Runtime::run(2, [&](comm::RankCtx& ctx) {
    auto pts = colinear_points(600, ctx.rank(), 2);
    const auto mine = pts;
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    auto result = fmm.evaluate();
    const auto exact = direct_reference(ctx.comm, kernel, mine);
    auto by_gid = gather_by_gid(ctx.comm, result);
    std::vector<double> approx(mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i)
      approx[i] = by_gid.at(mine[i].gid);
    EXPECT_LT(rel_l2_error(approx, exact), 1e-4);
  });
}

TEST(Degenerate, DuplicatePointsForceMaxLevelAndStayExact) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  opts.max_points_per_leaf = 4;
  opts.max_level = 8;  // duplicates would otherwise refine forever
  const Tables tables(kernel, opts);
  comm::Runtime::run(2, [&](comm::RankCtx& ctx) {
    // 40 distinct positions, each duplicated 10 times.
    std::vector<PointRec> pts;
    for (int i = 0; i < 400; ++i) {
      const int site = i % 40;
      if (static_cast<int>(site % 2) != ctx.rank()) continue;
      Rng rng(site);
      PointRec r{};
      r.pos[0] = rng.uniform();
      r.pos[1] = rng.uniform();
      r.pos[2] = rng.uniform();
      r.den[0] = 0.01 * i;
      r.gid = i;
      pts.push_back(r);
    }
    octree::assign_morton_ids(pts);
    const auto mine = pts;
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    auto result = fmm.evaluate();
    const auto exact = direct_reference(ctx.comm, kernel, mine);
    auto by_gid = gather_by_gid(ctx.comm, result);
    std::vector<double> approx(mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i)
      approx[i] = by_gid.at(mine[i].gid);
    EXPECT_LT(rel_l2_error(approx, exact), 1e-2);
  });
}

// ---------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------

TEST(Failure, EvaluateBeforeSetupThrows) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  const Tables tables(kernel, opts);
  EXPECT_THROW(comm::Runtime::run(1,
                                  [&](comm::RankCtx& ctx) {
                                    ParallelFmm fmm(ctx, tables);
                                    (void)fmm.evaluate();
                                  }),
               CheckFailure);
}

TEST(Failure, SetDensitiesWithMissingGidThrows) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  const Tables tables(kernel, opts);
  EXPECT_THROW(
      comm::Runtime::run(1,
                         [&](comm::RankCtx& ctx) {
                           auto pts = octree::generate_points(
                               Distribution::kUniform, 200, 0, 1, 1, 3);
                           ParallelFmm fmm(ctx, tables);
                           fmm.setup(std::move(pts));
                           fmm.set_densities({9999999}, {1.0});
                         }),
      CheckFailure);
}

TEST(Failure, WithOptionsRejectsGeometryChange) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  const Tables tables(kernel, opts);
  FmmOptions other = opts;
  other.surface_n = 6;
  EXPECT_THROW((void)tables.with_options(other), CheckFailure);
  other = opts;
  other.max_points_per_leaf = 999;  // non-geometric: allowed
  EXPECT_NO_THROW((void)tables.with_options(other));
}

TEST(Failure, BadSurfaceOrderRejected) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 2;
  EXPECT_THROW(Tables(kernel, opts), CheckFailure);
}

// ---------------------------------------------------------------------
// Non-homogeneous kernel tables
// ---------------------------------------------------------------------

TEST(Yukawa, PerLevelTablesDiffer) {
  kernels::YukawaKernel kernel(5.0);
  FmmOptions opts;
  opts.surface_n = 4;
  const Tables tables(kernel, opts);
  const LevelOps a = tables.at(1);
  const LevelOps b = tables.at(4);
  // Scales are unity (non-homogeneous)...
  EXPECT_EQ(a.uc2ue_scale, 1.0);
  EXPECT_EQ(b.uc2ue_scale, 1.0);
  // ...and the matrices themselves must differ across levels.
  EXPECT_NE(a.uc2ue, b.uc2ue);  // distinct storage
  double diff = 0.0;
  for (std::size_t i = 0; i < a.uc2ue->rows(); ++i)
    for (std::size_t j = 0; j < a.uc2ue->cols(); ++j)
      diff = std::max(diff, std::abs((*a.uc2ue)(i, j) - (*b.uc2ue)(i, j)));
  EXPECT_GT(diff, 1e-6);
}

TEST(Laplace, HomogeneousTablesShareStorageAcrossLevels) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  const Tables tables(kernel, opts);
  EXPECT_EQ(tables.at(1).uc2ue, tables.at(7).uc2ue);
  EXPECT_NE(tables.at(1).uc2ue_scale, tables.at(7).uc2ue_scale);
}

// ---------------------------------------------------------------------
// Autotuner (paper §V: Table III "can be part of an autotuning
// algorithm")
// ---------------------------------------------------------------------

TEST(Autotune, PicksInteriorQOnUniformCloud) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  const Tables tables(kernel, opts);
  auto sample =
      octree::generate_points(Distribution::kUniform, 15360, 0, 1, 1, 42);
  const int candidates[] = {42, 336, 2688};
  const auto result = gpu::autotune_q(tables, sample, candidates);
  EXPECT_EQ(result.best_q, 336);  // the Table III interior optimum
  ASSERT_EQ(result.modeled_seconds.size(), 3u);
  EXPECT_LT(result.modeled_seconds.at(336), result.modeled_seconds.at(42));
  EXPECT_LT(result.modeled_seconds.at(336), result.modeled_seconds.at(2688));
}

TEST(Autotune, RejectsEmptyInput) {
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  const Tables tables(kernel, opts);
  auto sample = octree::generate_points(Distribution::kUniform, 10, 0, 1, 1, 1);
  EXPECT_THROW((void)gpu::autotune_q(tables, sample, {}), CheckFailure);
  const int bad_q[] = {0};
  EXPECT_THROW((void)gpu::autotune_q(tables, sample, bad_q), CheckFailure);
}

}  // namespace
}  // namespace pkifmm::core
