/// Numerical-health layer tests (DESIGN.md §5g, obs/health.hpp):
///
///  - options validation: FmmOptions::health_sample_rate /
///    health_fatal / health_drift_ratio combinations are rejected at
///    Tables construction, mirroring the set_densities contract style;
///  - sampler determinism: the accuracy sample is a pure function of
///    (gid, seed, step), so its size, membership digest and error sums
///    are identical for any thread count and its membership for any
///    rank count;
///  - clean-run guarantee: across kernels and distributions a healthy
///    run reports ZERO sentinel hits, matching digests on both global
///    digest pairs, and a sampled relative error within the offline
///    accuracy bound for the tables' surface_n;
///  - fault-injection matrix: a corruption injected into any
///    instrumented phase (s2u, reduce, d2t, ghost) is detected by the
///    digest/sentinel that claims that phase, across forced SIMD tiers
///    and thread counts;
///  - health_fatal: a NaN poisoned into the pipeline makes evaluate()
///    throw CheckFailure instead of silently producing NaN potentials;
///  - drift: DriftMonitor unit behavior plus TimeStepper end-to-end
///    drift-step accounting.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/fmm.hpp"
#include "core/timestep.hpp"
#include "kernels/kernel.hpp"
#include "obs/aggregate.hpp"
#include "obs/health.hpp"
#include "simd/simd.hpp"
#include "util/check.hpp"

namespace pkifmm::core {
namespace {

using obs::InjectPhase;
using obs::Injection;
using octree::Distribution;

/// Clears the process-wide test injection on scope exit so a failing
/// assertion cannot leak a corruption into later tests.
struct InjectionGuard {
  ~InjectionGuard() { obs::set_injection(std::nullopt); }
};

struct TierGuard {
  ~TierGuard() { simd::clear_forced_tier(); }
};

FmmOptions health_opts(double rate, bool fatal, int threads) {
  FmmOptions opts;
  opts.surface_n = 4;
  // q = 60 matches bench/repeat_eval: a healthy near/far split whose
  // end-to-end error sits well inside the offline surface_n = 4 bound
  // (test_fmm_properties gates 5e-3 there; this config measures ~1e-5).
  opts.max_points_per_leaf = 60;
  opts.health = true;
  opts.health_sample_rate = rate;
  opts.health_fatal = fatal;
  opts.threads_per_rank = threads;
  opts.clamp_threads = false;
  return opts;
}

/// Full setup + evaluate under the health layer; returns the
/// cross-rank summary document built from the per-rank reports (the
/// same path --summary-out takes).
obs::Json run_health(const std::string& kernel_name, Distribution dist,
                     int p, int threads, double rate, bool fatal,
                     std::uint64_t n = 1600) {
  auto kernel = kernels::make_kernel(kernel_name);
  const Tables tables(*kernel, health_opts(rate, fatal, threads));
  auto body = [&](comm::RankCtx& ctx) {
    auto pts =
        octree::generate_points(dist, n, ctx.rank(), p, tables.sdim(), 91);
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    (void)fmm.evaluate();
  };
  auto reports = threads > 1 ? comm::Runtime::run(p, threads, false, body)
                             : comm::Runtime::run(p, body);
  std::vector<obs::RankMetrics> ranks;
  ranks.reserve(reports.size());
  for (auto& rep : reports) ranks.push_back(rep.obs);
  return obs::summarize_metrics(ranks);
}

double hfield(const obs::Json& summary, const char* section,
              const char* field) {
  return summary.at("health").at(section).at(field).as_double();
}

// ------------------------------------------------- options validation

TEST(HealthOptions, RejectsInvalidCombinations) {
  auto kernel = kernels::make_kernel("laplace");
  FmmOptions base;
  base.surface_n = 4;

  FmmOptions bad = base;
  bad.health = true;
  bad.health_sample_rate = -0.1;
  EXPECT_THROW(Tables(*kernel, bad), CheckFailure);
  bad.health_sample_rate = 1.5;
  EXPECT_THROW(Tables(*kernel, bad), CheckFailure);
  bad.health_sample_rate = std::nan("");
  EXPECT_THROW(Tables(*kernel, bad), CheckFailure);

  // health_fatal without the health layer is a contradiction: there
  // would be no sentinels to fail on.
  bad = base;
  bad.health_fatal = true;
  EXPECT_THROW(Tables(*kernel, bad), CheckFailure);

  bad = base;
  bad.health = true;
  bad.health_drift_ratio = 1.0;  // must be strictly > 1
  EXPECT_THROW(Tables(*kernel, bad), CheckFailure);

  // with_options revalidates rebound options.
  const Tables tables(*kernel, base);
  FmmOptions rebound = base;
  rebound.health = true;
  rebound.health_sample_rate = 2.0;
  EXPECT_THROW(tables.with_options(rebound), CheckFailure);

  // Boundary values are legal: rate 0 (sentinels/digests only) and
  // rate 1 (sample everything).
  FmmOptions ok = base;
  ok.health = true;
  ok.health_sample_rate = 0.0;
  EXPECT_NO_THROW(tables.with_options(ok));
  ok.health_sample_rate = 1.0;
  ok.health_fatal = true;
  EXPECT_NO_THROW(tables.with_options(ok));
}

// --------------------------------------------------- sampler behavior

TEST(HealthSampler, DeterministicMembership) {
  const std::uint64_t seed = 0x5eed;
  std::set<std::int64_t> first;
  for (std::int64_t gid = 0; gid < 20000; ++gid)
    if (obs::health_sampled(gid, seed, 3, 0.01)) first.insert(gid);
  // Re-evaluation reproduces the same set (pure function).
  for (std::int64_t gid = 0; gid < 20000; ++gid)
    EXPECT_EQ(first.count(gid) == 1,
              obs::health_sampled(gid, seed, 3, 0.01));
  // The rate is honored in expectation: 20000 * 0.01 = 200 expected,
  // binomial stddev ~14 — a 6-sigma band never flakes.
  EXPECT_GT(first.size(), 110u);
  EXPECT_LT(first.size(), 290u);

  // A different step draws a materially different subset.
  std::set<std::int64_t> other;
  for (std::int64_t gid = 0; gid < 20000; ++gid)
    if (obs::health_sampled(gid, seed, 4, 0.01)) other.insert(gid);
  std::size_t common = 0;
  for (std::int64_t gid : first) common += other.count(gid);
  EXPECT_LT(common, first.size() / 4);

  // Edges: rate 0 selects nothing, rate 1 everything.
  EXPECT_FALSE(obs::health_sampled(7, seed, 1, 0.0));
  EXPECT_TRUE(obs::health_sampled(7, seed, 1, 1.0));
}

TEST(HealthSampler, ThreadCountInvariant) {
  const obs::Json t1 =
      run_health("laplace", Distribution::kEllipsoid, 2, 1, 0.05, true);
  const obs::Json t4 =
      run_health("laplace", Distribution::kEllipsoid, 2, 4, 0.05, true);
  ASSERT_GT(hfield(t1, "sample", "count"), 0.0);
  // Same sample set (count + membership digest) and — because the
  // potentials are bitwise identical across thread counts
  // (test_eval_threads) — the same error sums, bit for bit.
  EXPECT_EQ(hfield(t1, "sample", "count"), hfield(t4, "sample", "count"));
  EXPECT_EQ(hfield(t1, "sample", "gid_digest"),
            hfield(t4, "sample", "gid_digest"));
  EXPECT_EQ(hfield(t1, "sample", "err2"), hfield(t4, "sample", "err2"));
  EXPECT_EQ(hfield(t1, "sample", "ref2"), hfield(t4, "sample", "ref2"));
}

TEST(HealthSampler, RankCountInvariantMembership) {
  const obs::Json p1 =
      run_health("laplace", Distribution::kEllipsoid, 1, 1, 0.05, true);
  const obs::Json p2 =
      run_health("laplace", Distribution::kEllipsoid, 2, 1, 0.05, true);
  ASSERT_GT(hfield(p1, "sample", "count"), 0.0);
  // The same gids exist regardless of partition (generate_points
  // splits one global set), so the sampled membership is identical;
  // error sums may differ in the last bits (different reduction
  // orders), so they get a relative band instead of equality.
  EXPECT_EQ(hfield(p1, "sample", "count"), hfield(p2, "sample", "count"));
  EXPECT_EQ(hfield(p1, "sample", "gid_digest"),
            hfield(p2, "sample", "gid_digest"));
  const double e1 = std::sqrt(hfield(p1, "sample", "err2") /
                              hfield(p1, "sample", "ref2"));
  const double e2 = std::sqrt(hfield(p2, "sample", "err2") /
                              hfield(p2, "sample", "ref2"));
  EXPECT_LT(e2, 10.0 * e1 + 1e-12);
  EXPECT_LT(e1, 10.0 * e2 + 1e-12);
}

// ------------------------------------------------ clean-run guarantee

struct CleanCase {
  std::string kernel;
  Distribution dist;
  double err_bound;  ///< sampled rel err bound at surface_n = 4
};

class HealthCleanRun : public ::testing::TestWithParam<CleanCase> {};

TEST_P(HealthCleanRun, NoSentinelHitsAndAccurateSample) {
  const CleanCase c = GetParam();
  // health_fatal on: any sentinel hit would throw out of evaluate()
  // and fail the test via the propagated CheckFailure.
  const obs::Json s = run_health(c.kernel, c.dist, 2, 1, 0.05, true);
  ASSERT_NO_THROW(obs::validate_summary_json(s));
  ASSERT_TRUE(s.contains("health"));

  EXPECT_EQ(hfield(s, "sentinels", "nonfinite"), 0.0);
  EXPECT_EQ(hfield(s, "sentinels", "moment_violations"), 0.0);
  EXPECT_EQ(hfield(s, "sentinels", "injected"), 0.0);
  EXPECT_TRUE(s.at("health").at("digests").at("ghost_match").as_bool());
  EXPECT_TRUE(s.at("health").at("digests").at("payload_match").as_bool());

  EXPECT_GT(hfield(s, "sample", "count"), 0.0);
  EXPECT_GT(hfield(s, "sample", "ref2"), 0.0);
  EXPECT_LT(hfield(s, "sample", "rel_err"), c.err_bound) << c.kernel;
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndDistributions, HealthCleanRun,
    // Bounds: ~5x the observed sampled error per case, all inside the
    // offline surface_n = 4 accuracy gate (5e-3, test_fmm_properties).
    // Uniform clouds see more far-field per target than surface
    // distributions, hence the looser uniform bounds.
    ::testing::Values(
        CleanCase{"laplace", Distribution::kUniform, 1e-3},
        CleanCase{"laplace", Distribution::kEllipsoid, 1e-4},
        CleanCase{"stokes", Distribution::kUniform, 5e-3},
        CleanCase{"stokes", Distribution::kEllipsoid, 1e-3},
        CleanCase{"yukawa", Distribution::kEllipsoid, 1e-3}),
    [](const ::testing::TestParamInfo<CleanCase>& info) {
      const CleanCase& c = info.param;
      return c.kernel + (c.dist == Distribution::kUniform ? "Uniform"
                                                          : "Ellipsoid");
    });

// --------------------------------------------- fault-injection matrix

/// Which summary digest must move when `phase` is corrupted.
double mapped_digest(const obs::Json& s, InjectPhase phase) {
  switch (phase) {
    case InjectPhase::kS2u:
      return hfield(s, "digests", "u");
    case InjectPhase::kReduce:
      return hfield(s, "digests", "reduce");
    case InjectPhase::kD2t:
      return hfield(s, "digests", "pot");
    case InjectPhase::kGhost:
      return hfield(s, "digests", "ghost");
    default:
      return 0.0;
  }
}

TEST(HealthInjection, EveryPhaseDetectedAcrossTiersAndThreads) {
  InjectionGuard inj_guard;
  TierGuard tier_guard;
  const Distribution dist = Distribution::kEllipsoid;
  // rate 0: the digests/sentinels under test don't need sampling, and
  // skipping the direct sums keeps the 16-run matrix fast.
  const double rate = 0.0;

  for (const bool force_scalar : {false, true}) {
    if (force_scalar)
      simd::force_tier(simd::Tier::kScalar);
    else
      simd::clear_forced_tier();
    for (const int threads : {1, 4}) {
      obs::set_injection(std::nullopt);
      const obs::Json clean =
          run_health("laplace", dist, 2, threads, rate, false);
      ASSERT_EQ(hfield(clean, "sentinels", "injected"), 0.0);

      for (const InjectPhase phase :
           {InjectPhase::kS2u, InjectPhase::kReduce, InjectPhase::kD2t,
            InjectPhase::kGhost}) {
        // Bit 40: a mid-mantissa flip — a value-preserving-magnitude
        // corruption that only a bit-exact digest can see.
        obs::set_injection(Injection{phase, /*rank=*/0, /*bit=*/40});
        const obs::Json hurt =
            run_health("laplace", dist, 2, threads, rate, false);
        const std::string label =
            "phase " + std::to_string(static_cast<int>(phase)) + " tier " +
            (force_scalar ? "scalar" : "default") + " threads " +
            std::to_string(threads);
        EXPECT_EQ(hfield(hurt, "sentinels", "injected"), 1.0) << label;
        EXPECT_NE(mapped_digest(hurt, phase), mapped_digest(clean, phase))
            << label;
        if (phase == InjectPhase::kGhost) {
          EXPECT_FALSE(
              hurt.at("health").at("digests").at("ghost_match").as_bool())
              << label;
        }
      }
      obs::set_injection(std::nullopt);
    }
  }
}

TEST(HealthInjection, NanPoisonTripsFatalSentinel) {
  InjectionGuard guard;
  obs::set_injection(Injection{InjectPhase::kS2u, 0, /*bit=*/-1});
  // health_fatal: the post-S2U non-finite scan must throw CheckFailure
  // out of evaluate(), which Runtime::run propagates to the caller.
  EXPECT_THROW(
      run_health("laplace", Distribution::kEllipsoid, 2, 1, 0.0, true),
      CheckFailure);
  // Without health_fatal the same poison is recorded, not thrown.
  const obs::Json s =
      run_health("laplace", Distribution::kEllipsoid, 2, 1, 0.0, false);
  EXPECT_GT(hfield(s, "sentinels", "nonfinite"), 0.0);
  EXPECT_EQ(hfield(s, "sentinels", "injected"), 1.0);
}

TEST(HealthInjection, ParseSpec) {
  const auto inj = obs::parse_injection("s2u:1:40");
  ASSERT_TRUE(inj.has_value());
  EXPECT_EQ(inj->phase, InjectPhase::kS2u);
  EXPECT_EQ(inj->rank, 1);
  EXPECT_EQ(inj->bit, 40);

  const auto nan_inj = obs::parse_injection("ghost:0:nan");
  ASSERT_TRUE(nan_inj.has_value());
  EXPECT_EQ(nan_inj->phase, InjectPhase::kGhost);
  EXPECT_EQ(nan_inj->bit, -1);

  EXPECT_EQ(obs::parse_injection("reduce:2:0")->phase, InjectPhase::kReduce);
  EXPECT_EQ(obs::parse_injection("d2t:0:63")->phase, InjectPhase::kD2t);

  for (const char* bad :
       {"", "s2u", "s2u:0", "bogus:0:1", "s2u:x:1", "s2u:0:64", "s2u:0:-2",
        "s2u:0:", "s2u::1", "s2u:0:1:extra"})
    EXPECT_FALSE(obs::parse_injection(bad).has_value()) << bad;
}

// ----------------------------------------------------- digest algebra

TEST(HealthDigest, OrderIndependentAcrossChunksNotWithin) {
  const std::vector<double> a{1.5, -2.25, 3.0};
  const std::vector<double> b{0.125, 7.75};
  // Summed chunk digests are independent of chunk visit order...
  EXPECT_EQ(obs::chunk_digest(a, 11) + obs::chunk_digest(b, 22),
            obs::chunk_digest(b, 22) + obs::chunk_digest(a, 11));
  // ...but each chunk hash is order-dependent (layout check) and
  // seed-dependent (node identity check).
  const std::vector<double> a_rev{3.0, -2.25, 1.5};
  EXPECT_NE(obs::chunk_digest(a, 11), obs::chunk_digest(a_rev, 11));
  EXPECT_NE(obs::chunk_digest(a, 11), obs::chunk_digest(a, 12));
  // A single-bit change moves the digest.
  std::vector<double> a_flip = a;
  a_flip[1] = std::nextafter(a_flip[1], 0.0);
  EXPECT_NE(obs::chunk_digest(a, 11), obs::chunk_digest(a_flip, 11));
  // Signed zeros that compare equal digest equal.
  EXPECT_EQ(obs::chunk_digest(std::vector<double>{0.0}, 5),
            obs::chunk_digest(std::vector<double>{-0.0}, 5));
}

TEST(HealthDigest, NonfiniteCount) {
  const std::vector<double> v{1.0, std::nan(""), -2.0,
                              std::numeric_limits<double>::infinity()};
  EXPECT_EQ(obs::nonfinite_count(v), 2u);
  EXPECT_EQ(obs::nonfinite_count(std::vector<double>{1.0, 2.0}), 0u);
}

// -------------------------------------------------------------- drift

TEST(HealthDrift, MonitorWarnsPastBaselineRatio) {
  obs::DriftMonitor mon(10.0, /*warmup=*/2, /*floor=*/1e-14);
  EXPECT_FALSE(mon.observe(1e-6));  // warmup
  EXPECT_FALSE(mon.observe(3e-6));  // warmup
  EXPECT_DOUBLE_EQ(mon.baseline(), 2e-6);
  EXPECT_FALSE(mon.observe(1.9e-5));  // 9.5x baseline: under ratio
  EXPECT_TRUE(mon.observe(2.1e-5));   // 10.5x: warns
  EXPECT_FALSE(mon.observe(1e-6));    // recovery is not sticky

  // A ~zero baseline falls back to the floor instead of flagging any
  // nonzero error.
  obs::DriftMonitor zero(10.0, 2, 1e-14);
  EXPECT_FALSE(zero.observe(0.0));
  EXPECT_FALSE(zero.observe(0.0));
  EXPECT_FALSE(zero.observe(5e-14));  // under 10 x floor
  EXPECT_TRUE(zero.observe(2e-13));   // over 10 x floor
}

TEST(HealthDrift, TimeStepperCountsStableSteps) {
  auto kernel = kernels::make_kernel("laplace");
  const Tables tables(*kernel, health_opts(0.05, true, 1));
  const int p = 2, steps = 3;
  auto reports = comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(Distribution::kEllipsoid, 1600,
                                       ctx.rank(), p, tables.sdim(), 91);
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    (void)fmm.evaluate();
    TimeStepOptions ts_opts;
    ts_opts.dt = 0.01;
    ts_opts.move_fraction = 0.05;
    const VelocityFn swirl = [](std::uint64_t,
                                const std::array<double, 3>& x, double) {
      return std::array<double, 3>{-(x[1] - 0.5), x[0] - 0.5, 0.0};
    };
    TimeStepper ts(fmm, swirl, ts_opts);
    for (int s = 0; s < steps; ++s) {
      (void)ts.step();
      (void)fmm.evaluate();
    }
  });
  std::vector<obs::RankMetrics> ranks;
  for (auto& rep : reports) ranks.push_back(rep.obs);
  const obs::Json s = obs::summarize_metrics(ranks);
  ASSERT_TRUE(s.contains("health"));
  // Every step() found fresh cumulative sample sums from the evaluate
  // before it, and a mild advection never drifts past 10x baseline.
  EXPECT_EQ(hfield(s, "drift", "steps"), static_cast<double>(steps));
  EXPECT_EQ(hfield(s, "drift", "warnings"), 0.0);
  EXPECT_GT(hfield(s, "drift", "err_max"), 0.0);
  EXPECT_LT(hfield(s, "drift", "err_max"), 1e-3);
}

}  // namespace
}  // namespace pkifmm::core
