/// Force/gradient evaluation (extension beyond the paper): the
/// gradient companion kernels and Evaluator::target_gradient.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "core/direct.hpp"
#include "core/fmm.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace pkifmm::core {
namespace {

using octree::Distribution;
using octree::PointRec;

// ---------------------------------------------------------------------
// Gradient kernels vs finite differences of the base kernels.
// ---------------------------------------------------------------------

void expect_gradient_matches_fd(const kernels::Kernel& base,
                                const kernels::Kernel& grad) {
  Rng rng(3);
  const double h = 1e-6;
  for (int trial = 0; trial < 50; ++trial) {
    double d[3];
    for (double& c : d) c = rng.uniform(-1.0, 1.0);
    const double r = std::sqrt(d[0] * d[0] + d[1] * d[1] + d[2] * d[2]);
    if (r < 0.1) continue;
    double g[3];
    grad.block(d, g);
    for (int c = 0; c < 3; ++c) {
      double dp[3] = {d[0], d[1], d[2]}, dm[3] = {d[0], d[1], d[2]};
      dp[c] += h;
      dm[c] -= h;
      double vp, vm;
      base.block(dp, &vp);
      base.block(dm, &vm);
      EXPECT_NEAR(g[c], (vp - vm) / (2.0 * h), 1e-5 * (std::abs(g[c]) + 1.0));
    }
  }
}

TEST(GradKernel, LaplaceGradMatchesFiniteDifference) {
  kernels::LaplaceKernel base;
  auto grad = base.gradient();
  ASSERT_NE(grad, nullptr);
  EXPECT_EQ(grad->name(), "laplace-grad");
  EXPECT_EQ(grad->target_dim(), 3);
  expect_gradient_matches_fd(base, *grad);
}

TEST(GradKernel, YukawaGradMatchesFiniteDifference) {
  kernels::YukawaKernel base(4.0);
  auto grad = base.gradient();
  ASSERT_NE(grad, nullptr);
  expect_gradient_matches_fd(base, *grad);
}

TEST(GradKernel, SelfInteractionIsZero) {
  kernels::LaplaceGradKernel g;
  const double d[3] = {0, 0, 0};
  double out[3] = {1, 1, 1};
  g.block(d, out);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[2], 0.0);
}

TEST(GradKernel, LaplaceGradHomogeneityDegreeMinusTwo) {
  kernels::LaplaceGradKernel g;
  const double d[3] = {0.2, -0.1, 0.3};
  const double s[3] = {0.4, -0.2, 0.6};
  double g1[3], g2[3];
  g.block(d, g1);
  g.block(s, g2);
  for (int c = 0; c < 3; ++c) EXPECT_NEAR(g2[c], 0.25 * g1[c], 1e-14);
}

TEST(GradKernel, StokesHasNoGradientCompanion) {
  kernels::StokesKernel base;
  EXPECT_EQ(base.gradient(), nullptr);
}

// ---------------------------------------------------------------------
// End-to-end FMM gradients vs direct gradient summation.
// ---------------------------------------------------------------------

void expect_fmm_gradient_accurate(const char* kernel_name, Distribution dist,
                                  int p, int q, double tol) {
  auto kernel = kernels::make_kernel(kernel_name);
  auto gradk = kernel->gradient();
  FmmOptions opts;
  opts.surface_n = 6;
  opts.max_points_per_leaf = q;
  if ((p & (p - 1)) != 0) opts.reduce = ReduceMode::kOwner;
  const Tables tables(*kernel, opts);

  comm::Runtime::run(p, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(dist, 1500, ctx.rank(), p, 1, 27);
    const auto mine = pts;
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    auto result = fmm.evaluate(/*with_gradient=*/true);
    ASSERT_EQ(result.gradients.size(), 3 * result.gids.size());

    // Exact gradients via direct summation with the gradient kernel.
    auto all = ctx.comm.allgatherv_concat(std::span<const PointRec>(mine));
    const auto exact = direct_local(*gradk, mine, all);

    struct GG {
      std::uint64_t gid;
      double g[3];
    };
    std::vector<GG> out(result.gids.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].gid = result.gids[i];
      for (int c = 0; c < 3; ++c) out[i].g[c] = result.gradients[3 * i + c];
    }
    auto gathered = ctx.comm.allgatherv_concat(std::span<const GG>(out));
    std::unordered_map<std::uint64_t, const GG*> by_gid;
    for (const auto& g : gathered) by_gid.emplace(g.gid, &g);

    std::vector<double> approx(exact.size());
    for (std::size_t i = 0; i < mine.size(); ++i)
      for (int c = 0; c < 3; ++c)
        approx[3 * i + c] = by_gid.at(mine[i].gid)->g[c];
    EXPECT_LT(rel_l2_error(approx, exact), tol) << kernel_name;
  });
}

TEST(FmmGradient, LaplaceUniformSequential) {
  expect_fmm_gradient_accurate("laplace", Distribution::kUniform, 1, 40, 1e-3);
}

TEST(FmmGradient, LaplaceNonuniformParallel) {
  expect_fmm_gradient_accurate("laplace", Distribution::kEllipsoid, 4, 20,
                               1e-3);
}

TEST(FmmGradient, LaplaceClusterParallel) {
  expect_fmm_gradient_accurate("laplace", Distribution::kCluster, 2, 25, 1e-3);
}

TEST(FmmGradient, YukawaSequential) {
  expect_fmm_gradient_accurate("yukawa", Distribution::kUniform, 1, 40, 1e-3);
}

TEST(FmmGradient, StokesRequestThrows) {
  kernels::StokesKernel kernel;
  FmmOptions opts;
  opts.surface_n = 4;
  const Tables tables(kernel, opts);
  EXPECT_THROW(
      comm::Runtime::run(1,
                         [&](comm::RankCtx& ctx) {
                           auto pts = octree::generate_points(
                               Distribution::kUniform, 300, 0, 1, 3, 2);
                           ParallelFmm fmm(ctx, tables);
                           fmm.setup(std::move(pts));
                           (void)fmm.evaluate(/*with_gradient=*/true);
                         }),
      CheckFailure);
}

TEST(FmmGradient, GravityPullsTowardCluster) {
  // Physics sanity: with all-positive masses concentrated in a cluster,
  // -grad(phi)... with phi = sum m/(4 pi r) the field grad(phi) points
  // AWAY from the mass at exterior points (phi decreases outward), so
  // the attractive acceleration is +grad(phi) in this sign convention
  // ... verify directionally: grad(phi) at a far probe points toward
  // the cluster center. d/dx (1/r) = -x/r^3: for a probe at x > 0 with
  // mass at origin, gradient is negative — i.e. toward the mass.
  kernels::LaplaceKernel kernel;
  FmmOptions opts;
  opts.surface_n = 6;
  opts.max_points_per_leaf = 30;
  const Tables tables(kernel, opts);
  comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
    auto pts = octree::generate_points(Distribution::kCluster, 2000, 0, 1, 1,
                                       55);
    for (auto& pt : pts) pt.den[0] = 1.0;  // positive masses
    ParallelFmm fmm(ctx, tables);
    fmm.setup(std::move(pts));
    auto result = fmm.evaluate(true);

    // Find the owned point farthest from the cluster center (0.3^3).
    double best = -1.0;
    std::array<double, 3> probe_dir{};
    std::array<double, 3> probe_grad{};
    std::unordered_map<std::uint64_t, std::size_t> idx;
    for (std::size_t i = 0; i < result.gids.size(); ++i)
      idx[result.gids[i]] = i;
    for (const auto& node : fmm.let().nodes) {
      if (!node.owned) continue;
      for (const auto& pt : fmm.let().points_of(node)) {
        const double dx = pt.pos[0] - 0.3, dy = pt.pos[1] - 0.3,
                     dz = pt.pos[2] - 0.3;
        const double r = std::sqrt(dx * dx + dy * dy + dz * dz);
        if (r > best) {
          best = r;
          probe_dir = {dx / r, dy / r, dz / r};
          const std::size_t k = idx.at(pt.gid);
          probe_grad = {result.gradients[3 * k], result.gradients[3 * k + 1],
                        result.gradients[3 * k + 2]};
        }
      }
    }
    ASSERT_GT(best, 0.3);  // the probe is genuinely outside the core
    const double radial = probe_grad[0] * probe_dir[0] +
                          probe_grad[1] * probe_dir[1] +
                          probe_grad[2] * probe_dir[2];
    EXPECT_LT(radial, 0.0);  // gradient points back toward the mass
    // And it is dominantly radial (Newton's shell intuition).
    const double mag = std::sqrt(probe_grad[0] * probe_grad[0] +
                                 probe_grad[1] * probe_grad[1] +
                                 probe_grad[2] * probe_grad[2]);
    EXPECT_GT(-radial, 0.8 * mag);
  });
}

}  // namespace
}  // namespace pkifmm::core
