#pragma once
/// \file direct.hpp
/// \brief O(N^2) direct summation reference (test/bench baseline).

#include <span>
#include <vector>

#include "comm/comm.hpp"
#include "kernels/kernel.hpp"
#include "octree/points.hpp"

namespace pkifmm::core {

/// Exact potentials at `targets` due to ALL points across all ranks
/// (gathered with an allgather — reference only, not scalable by
/// design). Returns tdim values per target point, in target order.
std::vector<double> direct_reference(comm::Comm& c,
                                     const kernels::Kernel& kernel,
                                     std::span<const octree::PointRec> targets);

/// Purely local exact summation: potentials at `targets` due to
/// `sources` (both local arrays).
std::vector<double> direct_local(const kernels::Kernel& kernel,
                                 std::span<const octree::PointRec> targets,
                                 std::span<const octree::PointRec> sources);

}  // namespace pkifmm::core
