#include "core/surface.hpp"

#include <map>
#include <mutex>

#include "util/check.hpp"

namespace pkifmm::core {

int surface_point_count(int n) {
  PKIFMM_CHECK(n >= 2);
  const int inner = n - 2;
  return n * n * n - inner * inner * inner;
}

const std::vector<std::array<int, 3>>& surface_lattice(int n) {
  static std::mutex mu;
  static std::map<int, std::vector<std::array<int, 3>>> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;

  std::vector<std::array<int, 3>> pts;
  for (int k = 0; k < n; ++k)
    for (int j = 0; j < n; ++j)
      for (int i = 0; i < n; ++i)
        if (i == 0 || i == n - 1 || j == 0 || j == n - 1 || k == 0 ||
            k == n - 1)
          pts.push_back({i, j, k});
  PKIFMM_CHECK(static_cast<int>(pts.size()) == surface_point_count(n));
  return cache.emplace(n, std::move(pts)).first->second;
}

std::vector<double> surface_points(int n, double radius_scale,
                                   const std::array<double, 3>& center,
                                   double half_width) {
  const auto& lattice = surface_lattice(n);
  const double r = radius_scale * half_width;
  std::vector<double> out;
  out.reserve(3 * lattice.size());
  for (const auto& idx : lattice)
    for (int d = 0; d < 3; ++d)
      out.push_back(center[d] +
                    r * (-1.0 + 2.0 * idx[d] / static_cast<double>(n - 1)));
  return out;
}

double surface_spacing(int n, double radius_scale, double half_width) {
  return 2.0 * radius_scale * half_width / static_cast<double>(n - 1);
}

SurfaceCache::SurfaceCache(int n) : count_(surface_point_count(n)) {
  const auto& lattice = surface_lattice(n);
  unit_.reserve(3 * lattice.size());
  for (const auto& idx : lattice)
    for (int d = 0; d < 3; ++d)
      unit_.push_back(-1.0 + 2.0 * idx[d] / static_cast<double>(n - 1));
}

void SurfaceCache::materialize(double radius_scale,
                               const std::array<double, 3>& center,
                               double half_width,
                               std::span<double> out) const {
  PKIFMM_CHECK(out.size() == unit_.size());
  const double r = radius_scale * half_width;
  // center + r * unit matches surface_points bitwise: both compute
  // center[d] + (radius_scale*half_width) * (-1 + 2 i/(n-1)).
  for (std::size_t p = 0; p < unit_.size(); p += 3) {
    out[p] = center[0] + r * unit_[p];
    out[p + 1] = center[1] + r * unit_[p + 1];
    out[p + 2] = center[2] + r * unit_[p + 2];
  }
}

}  // namespace pkifmm::core
