#pragma once
/// \file fmm.hpp
/// \brief The public entry point: distributed adaptive kernel-
/// independent FMM (the paper's full system).
///
/// Usage (SPMD, inside comm::Runtime::run):
///
///   core::FmmOptions opts;
///   core::Tables tables(kernel, opts);        // shared, build once
///   core::ParallelFmm fmm(ctx, tables);
///   fmm.setup(std::move(my_points));          // tree + LET + balance
///   auto result = fmm.evaluate();             // potentials by gid
///
/// setup() performs the paper's setup phase: Morton sample-sort and
/// distributed tree construction (§III-A), LET + interaction lists
/// (Algorithm 2), and optional work-weighted repartitioning followed by
/// an LET rebuild (§III-B). evaluate() runs Algorithm 1 with the
/// hypercube reduce-scatter (Algorithm 3) and can be called repeatedly
/// with updated densities (set_densities).

#include <memory>
#include <vector>

#include "core/evaluator.hpp"
#include "core/tables.hpp"
#include "obs/json.hpp"
#include "octree/partition.hpp"
#include "octree/update.hpp"

namespace pkifmm::core {

class ParallelFmm {
 public:
  /// With options().flow_trace, binds a per-rank obs::FlowRecorder into
  /// the communicator's cost tracker (unless one is already bound) so
  /// every message of setup/evaluate is flow-traced; the destructor
  /// publishes the ring into ctx.rec and unbinds — per the lifetime
  /// contract in obs/flow.hpp, before the rank function returns.
  ParallelFmm(comm::RankCtx& ctx, const Tables& tables);
  ~ParallelFmm();
  ParallelFmm(const ParallelFmm&) = delete;
  ParallelFmm& operator=(const ParallelFmm&) = delete;

  /// Builds the distributed tree, the LET and the interaction lists;
  /// repartitions by work if options().load_balance. Points carry their
  /// initial densities.
  void setup(std::vector<octree::PointRec> points);

  /// Updates the densities of owned points (matched by gid; the map
  /// must cover every owned point). Ghost copies are refreshed lazily
  /// at the next evaluate().
  void set_densities(const std::vector<std::uint64_t>& gids,
                     const std::vector<double>& densities);

  /// Potentials for the points owned by this rank, keyed by gid.
  struct Result {
    std::vector<std::uint64_t> gids;
    std::vector<double> potentials;  ///< tdim values per gid
    std::vector<double> gradients;   ///< 3 values per gid (if requested)
  };

  /// Runs the evaluation phase (Algorithm 1 + Algorithm 3). With
  /// with_gradient, also returns grad(potential) per point — requires a
  /// kernel with a gradient companion (Laplace, Yukawa).
  Result evaluate(bool with_gradient = false);

  /// Moves owned points (each gid must be owned by this rank) and
  /// repairs the tree, the LET and the interaction lists in place —
  /// the per-step cost is proportional to churn, not N. Collective:
  /// every rank calls it each step, with possibly empty moves. The
  /// resulting state is bitwise identical to a from-scratch setup()
  /// on the union of all ranks' updated points (see
  /// FmmOptions::incremental_setup and repart_imbalance_threshold for
  /// the policy and its escape hatches). Densities are preserved;
  /// ghost copies refresh at the next evaluate().
  void update_points(const std::vector<octree::PointMove>& moves);

  /// What the last update_points() did (repair vs rebuild, churn,
  /// traffic) — the per-call view of the `setup.incr.*` counters.
  struct UpdateStats {
    bool full_rebuild = false;   ///< fell back to the full setup pipeline
    bool repartitioned = false;  ///< canonical destinations moved leaves
    std::size_t moved_points = 0;
    std::size_t migrated_points = 0;  ///< points that changed rank
    std::size_t dirty_leaves = 0;     ///< leaves re-bucketed by the repair
    std::size_t kept_leaves = 0;      ///< leaves reused untouched
    std::size_t leaf_migrations = 0;  ///< leaves repartitioned away
    std::size_t ghost_octants_sent = 0;
    std::size_t ghost_ranks = 0;      ///< ranks receiving a LET delta
    std::size_t lists_rebuilt = 0;    ///< targets with recomputed lists
    std::size_t lists_kept = 0;       ///< targets with remapped lists
  };
  const UpdateStats& last_update_stats() const { return update_stats_; }

  const octree::Let& let() const { return *let_; }
  const Tables& tables() const { return tables_; }

  /// Cross-rank summary document ("pkifmm.summary.v1", see
  /// obs/aggregate.hpp). At the end of every evaluate() each rank
  /// snapshots its flat metric table, the snapshots are allgathered
  /// over the communicator (phase "obs.gather" — the gather's own
  /// traffic is excluded from the summary it produces), and every rank
  /// aggregates them, so all ranks hold the identical document — the
  /// MPI-style pattern where any rank can write summary.json. Null
  /// before the first evaluate(). With threads_per_rank > 1 the
  /// evaluator folds its task pool's `sched.*` counters and per-worker
  /// burst spans into the rank snapshot before the gather, so the
  /// summary carries worker busy-fractions and the ULI overlap
  /// accounting (rendered by tools/pkifmm_report).
  const obs::Json& summary() const { return summary_; }

  /// The per-rank recorder the FMM reports into — for callers layering
  /// their own health/diagnostic counters on top (core::TimeStepper's
  /// drift monitor).
  obs::Recorder& recorder() const { return ctx_.rec; }

 private:
  /// Evaluate-phase cpu imbalance (max/avg) from the last summary —
  /// identical on every rank, so the threshold policy's decision is
  /// collectively consistent. 0 before the first evaluate().
  double evaluate_imbalance() const;
  void full_rebuild_with(const std::vector<octree::PointMove>& moves);
  void set_let_gauges();

  /// Health layer (FmmOptions::health, DESIGN.md §5g): the ghost
  /// density transit digests (owner-side per subscription vs
  /// consumer-side per ghost leaf — globally equal sums in a clean
  /// run), and the online accuracy sample (deterministic gid-hash
  /// subset of owned targets re-evaluated against all sources via
  /// Kernel::direct_sample, folded into health.sample.* counters).
  void health_ghost_checks();
  void health_sample(const Result& out);

  comm::RankCtx& ctx_;
  const Tables& tables_;
  std::unique_ptr<obs::FlowRecorder> flow_;  ///< bound iff non-null
  std::unique_ptr<octree::Let> let_;
  /// Retained across calls for the incremental path: the owned tree
  /// (repaired in place by update_points) and the LET staging diffed
  /// against on each delta exchange.
  octree::OwnedTree tree_;
  octree::LetSync let_sync_;
  UpdateStats update_stats_;
  int over_threshold_steps_ = 0;
  obs::Json summary_;
  bool densities_dirty_ = false;
  /// Health bookkeeping: whether this object enabled the cost
  /// tracker's payload digests (disabled again in the destructor,
  /// mirroring the flow-recorder binding), and the evaluate() ordinal
  /// that varies the accuracy-sample selection per step.
  bool payload_digests_bound_ = false;
  std::uint64_t eval_count_ = 0;
};

}  // namespace pkifmm::core
