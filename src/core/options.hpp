#pragma once
/// \file options.hpp
/// \brief User-facing configuration of the parallel KIFMM.

#include <cstdint>

#include "morton/key.hpp"

namespace pkifmm::core {

/// How the V-list (M2L) translation is applied.
enum class M2lMode {
  kFft,    ///< FFT-diagonal translation (the paper's scheme, §IV)
  kDense,  ///< precomputed dense matrices (baseline for the ablation)
};

/// How complete upward densities are assembled across ranks.
enum class ReduceMode {
  kHypercube,  ///< paper Algorithm 3 (requires power-of-two ranks)
  kOwner,      ///< per-octant owner reduction (the paper's *old* scheme)
};

/// How the per-rank evaluation pipeline is executed.
enum class EvalMode {
  kScalar,   ///< one gemv / pointwise_mac per octant or pair (reference)
  kBatched,  ///< level- and operator-blocked GEMM/FFT batches (paper §IV-V)
};

/// How the batched evaluation phases are scheduled on the task pool.
enum class ExecMode {
  /// Phase-by-phase with a barrier between S2U, U2U, reduce, VLI, XLI,
  /// downward, WLI, D2T (the reference shape; only ULI overlaps).
  kBulkSync,
  /// Dependency-counted task DAG (util::TaskGraph): a chunk runs as
  /// soon as its inputs are final, ghost-density arrival from the
  /// Alg. 3 reduce releases dependent V-list work incrementally, and
  /// ULI is just another DAG root. Bitwise-identical results to
  /// kBulkSync for any thread count (tests/test_eval_threads.cpp).
  /// Applies to EvalMode::kBatched; the scalar engine always runs
  /// bulk-synchronous.
  kDag,
};

struct FmmOptions {
  /// Surface lattice parameter n: equivalent/check surfaces carry
  /// n^3 - (n-2)^3 points. 4 = low accuracy, 6 = medium, 8 = high.
  int surface_n = 6;

  /// q — maximum points per leaf octant.
  int max_points_per_leaf = 100;

  /// Refinement cap (duplicate-point safety net).
  int max_level = morton::kMaxDepth;

  M2lMode m2l = M2lMode::kFft;
  ReduceMode reduce = ReduceMode::kHypercube;

  /// Batched (default) vs per-octant reference execution of the
  /// evaluation pipeline. Both produce identical flop totals and agree
  /// to rounding (see tests/test_eval_modes.cpp).
  EvalMode eval_mode = EvalMode::kBatched;

  /// Bulk-synchronous (default) vs data-driven DAG scheduling of the
  /// batched pipeline. Both produce bitwise-identical potentials and
  /// exact flop equality (tests/test_eval_threads.cpp).
  ExecMode exec_mode = ExecMode::kBulkSync;

  /// Intra-rank worker threads for the batched evaluation phases
  /// (paper §V's per-node parallelism, on CPU workers). 1 = serial
  /// (no pool threads, zero synchronization cost). Results are
  /// identical for any value — see util/task_pool.hpp's determinism
  /// contract and tests/test_eval_threads.cpp.
  int threads_per_rank = 1;

  /// Clamp threads_per_rank so threads_per_rank * nranks stays within
  /// hardware_concurrency() (simulated-rank threads and pool workers
  /// would otherwise thrash each other). Tests that need real
  /// interleaving on small CI boxes set this to false.
  bool clamp_threads = true;

  /// Work-weighted leaf repartitioning after the first LET build
  /// (paper §III-B). Disable for the ablation bench.
  bool load_balance = true;

  /// Incremental setup (ROADMAP item 3): ParallelFmm keeps the
  /// distributed tree and the LET staging alive across
  /// update_points() calls and repairs them in place, making per-step
  /// setup cost proportional to churn instead of N. The repaired
  /// state is bitwise identical to a from-scratch setup() on the same
  /// points (tests/test_incremental.cpp). Off = escape hatch: every
  /// update_points() runs the full setup pipeline.
  bool incremental_setup = true;

  /// Repartition policy of the incremental path. 0 (default, "track"):
  /// the canonical work-weighted partition is re-derived after every
  /// update_points() and leaves migrate as soon as their canonical
  /// destination changes — ownership then never drifts from what a
  /// from-scratch setup() would choose, which is what makes the
  /// bitwise-parity contract hold at any rank count. > 1
  /// ("threshold"): ownership is left alone — cheapest per step — until
  /// the measured evaluate-phase cpu imbalance (max/avg from the
  /// cross-rank summary, identical on every rank) has been at or above
  /// this value for repart_hysteresis consecutive update_points()
  /// calls; then one full rebuild re-canonicalizes everything. While
  /// coasting below the threshold the partition may differ from the
  /// canonical one, so cross-rank reduction groupings — and thus the
  /// last bits of the potentials at p > 1 — may drift within rounding;
  /// the tree, leaf set and total flops still match exactly.
  double repart_imbalance_threshold = 0.0;

  /// Consecutive over-threshold update_points() calls required before
  /// the threshold policy triggers its full rebuild (debounce, so one
  /// noisy measurement on some rank count does not thrash).
  int repart_hysteresis = 2;

  /// 2:1 balance refinement of the octree after construction (the
  /// DENDRO substrate feature of the paper's reference [16]). The FMM
  /// does not require it — the paper's trees span 20+ levels of
  /// contrast — but it bounds U/W/X list sizes; off by default to match
  /// the paper's configuration.
  bool balance_2to1 = false;

  /// Surface radii relative to the box half-width (Ying et al. 2004).
  double upward_equiv_radius = 1.05;
  double upward_check_radius = 2.95;
  double down_equiv_radius = 2.95;
  double down_check_radius = 1.05;

  /// Relative singular-value cutoff for the equivalent-density solves.
  double pinv_cutoff = 1e-12;

  /// Per-message flow tracing (obs/flow.hpp): every point-to-point
  /// message gets (src, dst, tag, phase, seq) + timestamps, blocked
  /// receives become first-class `wait.<phase>.*` metrics, and the
  /// summary gains the cross-rank wait/critical-path analysis. Off by
  /// default: the hot path then has zero flow overhead and no `wait.*`
  /// counters exist at all.
  bool flow_trace = false;

  /// Flow ring capacity per rank (events beyond it are dropped and
  /// counted in `flow.dropped`). Preallocated at setup when flow_trace
  /// is on.
  int flow_capacity = 1 << 15;

  /// Runtime numerical-health layer (obs/health.hpp, DESIGN.md §5g):
  /// online accuracy sampling against Kernel::direct, NaN/Inf and
  /// moment sentinels at phase boundaries, order-independent state
  /// digests of equivalent densities / ghost buffers / potentials, and
  /// comm payload-transit digests — all folded into `health.*`
  /// counters and a `health` section of summary.json. Off by default:
  /// evaluate() then runs exactly as before (zero health overhead).
  bool health = false;

  /// Fraction of targets re-evaluated by direct summation per
  /// evaluate() when `health` is on (deterministic gid-hash sample,
  /// identical for any rank/thread count). 0 disables sampling while
  /// keeping sentinels and digests. The default keeps sampling cost
  /// well under the 2% wall-overhead budget on N=100K-class runs.
  double health_sample_rate = 1e-4;

  /// Escalates health sentinel hits (non-finite values, ghost/moment
  /// invariant violations) from counters to hard failures
  /// (util::CheckFailure). Requires `health`.
  bool health_fatal = false;

  /// TimeStepper drift gate: after a 2-step baseline warmup, a step
  /// whose sampled error exceeds `health_drift_ratio ×` the baseline
  /// mean raises a `health.drift.warnings` count. Must be > 1.
  double health_drift_ratio = 10.0;

  /// Seed for the deterministic accuracy-sample selection.
  std::uint64_t health_seed = 0x5eed;
};

}  // namespace pkifmm::core
