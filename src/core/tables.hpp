#pragma once
/// \file tables.hpp
/// \brief Precomputed KIFMM translation operators (paper Table I's
/// S/U/D/E/Q/R/T operators in matrix or FFT-spectrum form).
///
/// For homogeneous kernels (Laplace, Stokes: degree -1) one reference
/// table serves all octree levels through a power-of-two scaling; for
/// non-homogeneous kernels (Yukawa) tables are built lazily per level.
/// A Tables instance is immutable after construction except for the
/// guarded lazy caches, so one instance is shared read-only by all
/// simulated ranks (on a real cluster each process would build its own
/// identical copy — precomputation is embarrassingly replicated).
///
/// Scale conventions (deg = kernel homogeneity degree, -1 for
/// Laplace/Stokes; level-l octant distances are 2^-l of the reference):
///   K_l               = 2^(-l deg) K_ref
///   pinv (uc2ue etc.) = 2^(+l deg) pinv_ref
///   M2M (pinv*K)      = level-independent
///   M2L spectra       = 2^(-l deg) g_ref
///   L2L (child l)     = 2^(-(l-1) deg) K_ref   (reference pair 0->1)

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/options.hpp"
#include "fft/fft.hpp"
#include "kernels/kernel.hpp"
#include "la/matrix.hpp"

namespace pkifmm::core {

/// Flattened index of a V-list offset (dx, dy, dz), each in [-3, 3].
int offset_index(int dx, int dy, int dz);

/// True iff (dx,dy,dz) is a legal V-list offset: Chebyshev distance 2 or
/// 3 (same-level, parents are colleagues, boxes not adjacent).
bool is_vlist_offset(int dx, int dy, int dz);

/// Level-resolved view of the translation operators, with the scale
/// factors already worked out for the requested level.
struct LevelOps {
  const la::Matrix* uc2ue;                 ///< pinv of K(uc, ue)
  double uc2ue_scale;
  const la::Matrix* dc2de;                 ///< pinv of K(dc, de)
  double dc2de_scale;
  const std::array<la::Matrix, 8>* m2m;    ///< child-eq -> parent-eq
  const std::array<la::Matrix, 8>* l2l;    ///< parent-eq -> child check pot
  double l2l_scale;
  double m2l_scale;                        ///< applied to V-list output
};

class Tables {
 public:
  Tables(const kernels::Kernel& kernel, const FmmOptions& opts);

  /// Copy sharing the (expensive) precomputed operator cache but with
  /// different non-geometric options (q, m2l mode, reduce mode, load
  /// balancing). Geometry-affecting fields (surface_n, radii,
  /// pinv_cutoff) must match the original.
  Tables with_options(const FmmOptions& opts) const;

  const kernels::Kernel& kernel() const { return kernel_; }
  const FmmOptions& options() const { return opts_; }

  int n() const { return opts_.surface_n; }
  int m() const { return m_; }                  ///< surface points
  int sdim() const { return sdim_; }
  int tdim() const { return tdim_; }
  /// Length of an equivalent-density vector (m * sdim).
  int eq_len() const { return m_ * sdim_; }
  /// Length of a check-potential vector (m * tdim).
  int check_len() const { return m_ * tdim_; }

  /// FFT grid edge N (power of two >= 2n-1) and plan.
  std::size_t fft_n() const { return fft_->n(); }
  std::size_t fft_volume() const { return fft_->volume(); }
  const fft::Fft3d& fft() const { return *fft_; }

  /// Volume index of each surface lattice point in the N^3 FFT grid.
  const std::vector<int>& embed_index() const { return embed_; }

  /// Level-scaled operator set. Thread-safe.
  LevelOps at(int level) const;

  /// FFT M2L: the td*sd spectra for a given offset index, concatenated
  /// component-major (component c = ti*sdim+si occupies
  /// [c*fft_volume(), (c+1)*fft_volume())). Unscaled reference values;
  /// multiply the *output* by LevelOps::m2l_scale. Thread-safe (lazy).
  std::span<const fft::Complex> m2l_spectra(int level, int off_index) const;

  /// Dense M2L matrix for an offset (ablation path). Thread-safe (lazy).
  const la::Matrix& m2l_dense(int level, int off_index) const;

  /// Persists the precomputed operator cache (level tables + M2L
  /// spectra; the dense ablation matrices are cheap and not saved) so a
  /// later run can skip the SVD/FFT precomputation. Returns bytes
  /// written. Thread-safe.
  std::size_t save_cache(const std::string& path) const;

  /// Loads a cache written by save_cache. Returns false — leaving the
  /// in-memory cache untouched — if the file is missing, corrupt, or
  /// belongs to a different kernel/geometry. Thread-safe.
  bool load_cache(const std::string& path);

 private:
  struct LevelTables {
    la::Matrix uc2ue;
    la::Matrix dc2de;
    std::array<la::Matrix, 8> m2m;
    std::array<la::Matrix, 8> l2l;
  };

  /// Shared, mutex-guarded precompute cache so option-rebound copies
  /// (with_options) and all simulated ranks reuse one set of operators.
  struct Cache {
    std::mutex mu;
    std::map<int, std::unique_ptr<LevelTables>> levels;
    std::map<std::pair<int, int>, std::vector<fft::Complex>> spectra;
    std::map<std::pair<int, int>, std::unique_ptr<la::Matrix>> dense;
  };

  std::unique_ptr<LevelTables> build_level(int level) const;
  std::vector<fft::Complex> build_spectra(int level, int off_index) const;
  la::Matrix build_dense(int level, int off_index) const;

  /// Reference level used for table geometry. Homogeneous kernels use
  /// level 0 for everything; non-homogeneous kernels build per level.
  const LevelTables& level_tables(int level) const;

  const kernels::Kernel& kernel_;
  FmmOptions opts_;
  int m_, sdim_, tdim_;
  std::shared_ptr<fft::Fft3d> fft_;
  std::vector<int> embed_;
  std::shared_ptr<Cache> cache_;
};

}  // namespace pkifmm::core
