#include "core/evaluator.hpp"

#include <unordered_map>

#include "core/surface.hpp"

namespace pkifmm::core {

using morton::Key;
using octree::LetNode;

namespace {

std::vector<double> box_surface(const Tables& t, double radius_scale,
                                const Key& k) {
  const auto g = morton::box_geometry(k);
  return surface_points(t.n(), radius_scale, g.center, g.half_width);
}

}  // namespace

Evaluator::Evaluator(const Tables& tables, const octree::Let& let,
                     comm::RankCtx& ctx)
    : tables_(tables), let_(let), ctx_(ctx) {
  const std::size_t nn = let_.nodes.size();
  u_.assign(nn * tables_.eq_len(), 0.0);
  checkpot_.assign(nn * tables_.check_len(), 0.0);
  d_.assign(nn * tables_.eq_len(), 0.0);

  const int sd = tables_.sdim();
  const int td = tables_.tdim();
  f_.assign(let_.points.size() * td, 0.0);
  pos_.resize(let_.points.size() * 3);
  for (std::size_t i = 0; i < let_.points.size(); ++i)
    for (int c = 0; c < 3; ++c) pos_[3 * i + c] = let_.points[i].pos[c];

  // Per-node source extraction (targets and sources may be disjoint
  // subsets of a leaf's points; see octree::PointRec::kind).
  src_offset_.assign(let_.nodes.size() + 1, 0);
  for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
    src_offset_[i] = src_pos_.size() / 3;
    for (const octree::PointRec& pt : let_.points_of(let_.nodes[i])) {
      if (!pt.is_source()) continue;
      src_pos_.insert(src_pos_.end(), pt.pos, pt.pos + 3);
      src_den_.insert(src_den_.end(), pt.den, pt.den + sd);
    }
  }
  src_offset_[let_.nodes.size()] = src_pos_.size() / 3;
}

std::span<const double> Evaluator::leaf_source_positions(
    std::size_t node) const {
  return {src_pos_.data() + src_offset_[node] * 3,
          (src_offset_[node + 1] - src_offset_[node]) * 3};
}

std::span<const double> Evaluator::leaf_source_densities(
    std::size_t node) const {
  const std::size_t sd = tables_.sdim();
  return {src_den_.data() + src_offset_[node] * sd,
          (src_offset_[node + 1] - src_offset_[node]) * sd};
}

std::span<const double> Evaluator::leaf_target_positions(
    const LetNode& n) const {
  return {pos_.data() + std::size_t(n.point_begin) * 3,
          std::size_t(n.target_count) * 3};
}

std::span<double> Evaluator::leaf_target_potential(const LetNode& n) {
  const int td = tables_.tdim();
  return {f_.data() + std::size_t(n.point_begin) * td,
          std::size_t(n.target_count) * td};
}

void Evaluator::run() {
  {
    auto t = ctx_.timer.scope("eval.s2u");
    s2u();
  }
  {
    auto t = ctx_.timer.scope("eval.u2u");
    u2u();
  }
  {
    auto t = ctx_.timer.scope("eval.comm");
    comm_reduce();
  }
  {
    auto t = ctx_.timer.scope("eval.vli");
    vli();
  }
  {
    auto t = ctx_.timer.scope("eval.xli");
    xli();
  }
  {
    auto t = ctx_.timer.scope("eval.down");
    downward();
  }
  {
    auto t = ctx_.timer.scope("eval.wli");
    wli();
  }
  {
    auto t = ctx_.timer.scope("eval.d2t");
    d2t();
  }
  {
    auto t = ctx_.timer.scope("eval.uli");
    uli();
  }
}

void Evaluator::s2u() {
  const auto& kern = tables_.kernel();
  std::vector<double> check(tables_.check_len());
  for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
    const LetNode& node = let_.nodes[i];
    if (!(node.owned && node.global_leaf)) continue;
    if (leaf_source_positions(i).empty()) continue;
    const auto uc =
        box_surface(tables_, tables_.options().upward_check_radius, node.key);
    std::fill(check.begin(), check.end(), 0.0);
    ctx_.flops.add("eval.s2u", kern.direct(uc, leaf_source_positions(i),
                                           leaf_source_densities(i), check));
    const LevelOps ops = tables_.at(node.key.level);
    la::gemv_acc(*ops.uc2ue, check,
                 std::span<double>(u_.data() + i * tables_.eq_len(),
                                   tables_.eq_len()),
                 ops.uc2ue_scale);
    ctx_.flops.add("eval.s2u", la::gemv_flops(*ops.uc2ue));
  }
}

void Evaluator::u2u() {
  // Reverse preorder = children before parents.
  for (std::size_t ri = let_.nodes.size(); ri-- > 0;) {
    const LetNode& node = let_.nodes[ri];
    if (!node.target || node.parent < 0) continue;
    if (!let_.nodes[node.parent].target) continue;
    const LevelOps ops = tables_.at(node.key.level - 1);
    const la::Matrix& m = (*ops.m2m)[morton::child_index(node.key)];
    la::gemv_acc(m,
                 std::span<const double>(u_.data() + ri * tables_.eq_len(),
                                         tables_.eq_len()),
                 std::span<double>(u_.data() +
                                       std::size_t(node.parent) *
                                           tables_.eq_len(),
                                   tables_.eq_len()));
    ctx_.flops.add("eval.u2u", la::gemv_flops(m));
  }
}

void Evaluator::comm_reduce() {
  ctx_.comm.cost().set_phase("eval.comm");
  reduce_upward_densities(ctx_.comm, let_, tables_.eq_len(), u_,
                          tables_.options().reduce);
}

void Evaluator::vli() {
  if (tables_.options().m2l == M2lMode::kDense) {
    // Dense baseline: one gemv per (target, source) pair.
    for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
      const LetNode& node = let_.nodes[i];
      if (!node.target) continue;
      const auto list = let_.v.of(i);
      if (list.empty()) continue;
      const LevelOps ops = tables_.at(node.key.level);
      const auto ta = morton::anchor(node.key);
      const auto side = morton::cell_side(node.key);
      for (auto si : list) {
        const auto sa = morton::anchor(let_.nodes[si].key);
        const int dx = (static_cast<std::int64_t>(ta[0]) - sa[0]) / side;
        const int dy = (static_cast<std::int64_t>(ta[1]) - sa[1]) / side;
        const int dz = (static_cast<std::int64_t>(ta[2]) - sa[2]) / side;
        const la::Matrix& m =
            tables_.m2l_dense(node.key.level, offset_index(dx, dy, dz));
        la::gemv_acc(m,
                     std::span<const double>(
                         u_.data() + std::size_t(si) * tables_.eq_len(),
                         tables_.eq_len()),
                     std::span<double>(
                         checkpot_.data() + i * tables_.check_len(),
                         tables_.check_len()),
                     ops.m2l_scale);
        ctx_.flops.add("eval.vli", la::gemv_flops(m));
      }
    }
    return;
  }

  // FFT-diagonal translation, batched by level so per-octant spectra are
  // kept only for the level being processed.
  const int sd = tables_.sdim();
  const int td = tables_.tdim();
  const std::size_t vol = tables_.fft_volume();
  const auto& embed = tables_.embed_index();
  const int m = tables_.m();

  int min_level = morton::kMaxDepth + 1, max_level = -1;
  for (const LetNode& n : let_.nodes) {
    min_level = std::min(min_level, static_cast<int>(n.key.level));
    max_level = std::max(max_level, static_cast<int>(n.key.level));
  }

  std::vector<fft::Complex> acc(static_cast<std::size_t>(td) * vol);
  for (int level = min_level; level <= max_level; ++level) {
    // Sources used by some target's V-list at this level.
    std::unordered_map<std::int32_t, std::vector<fft::Complex>> spectra;
    for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
      if (!let_.nodes[i].target || let_.nodes[i].key.level != level) continue;
      for (auto si : let_.v.of(i)) spectra.try_emplace(si);
    }
    if (spectra.empty()) continue;

    // Per-octant forward FFTs of the padded equivalent densities.
    for (auto& [si, spec] : spectra) {
      spec.assign(static_cast<std::size_t>(sd) * vol, fft::Complex(0, 0));
      const double* usrc = u_.data() + std::size_t(si) * tables_.eq_len();
      for (int k = 0; k < m; ++k)
        for (int c = 0; c < sd; ++c)
          spec[static_cast<std::size_t>(c) * vol + embed[k]] =
              usrc[k * sd + c];
      for (int c = 0; c < sd; ++c)
        tables_.fft().forward(
            std::span<fft::Complex>(spec.data() + std::size_t(c) * vol, vol));
      ctx_.flops.add("eval.vli", sd * tables_.fft().transform_flops());
    }

    // Diagonal translation + inverse FFT per target.
    const LevelOps ops = tables_.at(level);
    for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
      const LetNode& node = let_.nodes[i];
      if (!node.target || node.key.level != level) continue;
      const auto list = let_.v.of(i);
      if (list.empty()) continue;

      std::fill(acc.begin(), acc.end(), fft::Complex(0, 0));
      const auto ta = morton::anchor(node.key);
      const auto side = morton::cell_side(node.key);
      for (auto si : list) {
        const auto sa = morton::anchor(let_.nodes[si].key);
        const int dx = (static_cast<std::int64_t>(ta[0]) - sa[0]) / side;
        const int dy = (static_cast<std::int64_t>(ta[1]) - sa[1]) / side;
        const int dz = (static_cast<std::int64_t>(ta[2]) - sa[2]) / side;
        const auto g = tables_.m2l_spectra(level, offset_index(dx, dy, dz));
        const auto& spec = spectra.at(si);
        for (int ti = 0; ti < td; ++ti)
          for (int si_c = 0; si_c < sd; ++si_c)
            fft::pointwise_mac(
                g.subspan(std::size_t(ti * sd + si_c) * vol, vol),
                std::span<const fft::Complex>(
                    spec.data() + std::size_t(si_c) * vol, vol),
                std::span<fft::Complex>(acc.data() + std::size_t(ti) * vol,
                                        vol));
        ctx_.flops.add("eval.vli", 8ull * td * sd * vol);
      }
      for (int ti = 0; ti < td; ++ti)
        tables_.fft().inverse(
            std::span<fft::Complex>(acc.data() + std::size_t(ti) * vol, vol));
      ctx_.flops.add("eval.vli", td * tables_.fft().transform_flops());

      double* out = checkpot_.data() + i * tables_.check_len();
      for (int k = 0; k < m; ++k)
        for (int ti = 0; ti < td; ++ti)
          out[k * td + ti] +=
              ops.m2l_scale *
              acc[static_cast<std::size_t>(ti) * vol + embed[k]].real();
    }
  }
}

void Evaluator::xli(bool include_leaves) {
  const auto& kern = tables_.kernel();
  for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
    const LetNode& node = let_.nodes[i];
    if (!node.target) continue;
    if (!include_leaves && node.global_leaf) continue;
    const auto list = let_.x.of(i);
    if (list.empty()) continue;
    const auto dc =
        box_surface(tables_, tables_.options().down_check_radius, node.key);
    std::span<double> out(checkpot_.data() + i * tables_.check_len(),
                          tables_.check_len());
    for (auto si : list) {
      ctx_.flops.add("eval.xli",
                     kern.direct(dc, leaf_source_positions(si),
                                 leaf_source_densities(si), out));
    }
  }
}

void Evaluator::downward() {
  // Preorder: parents are finalized before their children read them.
  for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
    const LetNode& node = let_.nodes[i];
    if (!node.target) continue;
    std::span<double> check(checkpot_.data() + i * tables_.check_len(),
                            tables_.check_len());
    if (node.parent >= 0 && let_.nodes[node.parent].target) {
      const LevelOps pair_ops = tables_.at(node.key.level - 1);
      const la::Matrix& l2l = (*pair_ops.l2l)[morton::child_index(node.key)];
      la::gemv_acc(l2l,
                   std::span<const double>(
                       d_.data() + std::size_t(node.parent) * tables_.eq_len(),
                       tables_.eq_len()),
                   check, pair_ops.l2l_scale);
      ctx_.flops.add("eval.down", la::gemv_flops(l2l));
    }
    const LevelOps ops = tables_.at(node.key.level);
    la::gemv_acc(*ops.dc2de, check,
                 std::span<double>(d_.data() + i * tables_.eq_len(),
                                   tables_.eq_len()),
                 ops.dc2de_scale);
    ctx_.flops.add("eval.down", la::gemv_flops(*ops.dc2de));
  }
}

void Evaluator::wli() {
  const auto& kern = tables_.kernel();
  for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
    const LetNode& node = let_.nodes[i];
    if (!(node.owned && node.global_leaf) || node.target_count == 0) continue;
    const auto list = let_.w.of(i);
    if (list.empty()) continue;
    const auto trg = leaf_target_positions(node);
    auto out = leaf_target_potential(node);
    for (auto si : list) {
      const auto ue = box_surface(
          tables_, tables_.options().upward_equiv_radius, let_.nodes[si].key);
      ctx_.flops.add(
          "eval.wli",
          kern.direct(trg, ue,
                      std::span<const double>(
                          u_.data() + std::size_t(si) * tables_.eq_len(),
                          tables_.eq_len()),
                      out));
    }
  }
}

void Evaluator::d2t() {
  const auto& kern = tables_.kernel();
  for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
    const LetNode& node = let_.nodes[i];
    if (!(node.owned && node.global_leaf) || node.target_count == 0) continue;
    const auto de =
        box_surface(tables_, tables_.options().down_equiv_radius, node.key);
    ctx_.flops.add(
        "eval.d2t",
        kern.direct(leaf_target_positions(node), de,
                    std::span<const double>(d_.data() + i * tables_.eq_len(),
                                            tables_.eq_len()),
                    leaf_target_potential(node)));
  }
}

void Evaluator::uli() {
  const auto& kern = tables_.kernel();
  for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
    const LetNode& node = let_.nodes[i];
    if (!(node.owned && node.global_leaf) || node.target_count == 0) continue;
    const auto trg = leaf_target_positions(node);
    auto out = leaf_target_potential(node);
    for (auto si : let_.u.of(i)) {
      ctx_.flops.add("eval.uli",
                     kern.direct(trg, leaf_source_positions(si),
                                 leaf_source_densities(si), out));
    }
  }
}

std::vector<double> Evaluator::target_gradient() {
  const auto grad = tables_.kernel().gradient();
  PKIFMM_CHECK_MSG(grad != nullptr,
                   "kernel '" << tables_.kernel().name()
                              << "' has no gradient companion");
  const int gd = grad->target_dim();
  std::vector<double> g(let_.points.size() * gd, 0.0);

  for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
    const LetNode& node = let_.nodes[i];
    if (!(node.owned && node.global_leaf) || node.target_count == 0) continue;
    const auto trg = leaf_target_positions(node);
    std::span<double> out(g.data() + std::size_t(node.point_begin) * gd,
                          std::size_t(node.target_count) * gd);

    // Direct (U-list) gradients.
    for (auto si : let_.u.of(i)) {
      ctx_.flops.add("grad.uli",
                     grad->direct(trg, leaf_source_positions(si),
                                  leaf_source_densities(si), out));
    }
    // W-list: gradients of the members' upward equivalent fields.
    for (auto si : let_.w.of(i)) {
      const auto ue = box_surface(
          tables_, tables_.options().upward_equiv_radius, let_.nodes[si].key);
      ctx_.flops.add(
          "grad.wli",
          grad->direct(trg, ue,
                       std::span<const double>(
                           u_.data() + std::size_t(si) * tables_.eq_len(),
                           tables_.eq_len()),
                       out));
    }
    // Far field (V + X + coarser levels) through the box's downward
    // equivalent density.
    const auto de =
        box_surface(tables_, tables_.options().down_equiv_radius, node.key);
    ctx_.flops.add(
        "grad.d2t",
        grad->direct(trg, de,
                     std::span<const double>(d_.data() + i * tables_.eq_len(),
                                             tables_.eq_len()),
                     out));
  }
  return g;
}

std::vector<double> leaf_work_estimates(const Tables& tables,
                                        const octree::Let& let) {
  const std::uint64_t kflops = tables.kernel().flops_per_interaction();
  const int m = tables.m();

  // Source counts per node (targets and sources may differ per point).
  std::vector<double> nsrc(let.nodes.size(), 0.0);
  for (std::size_t i = 0; i < let.nodes.size(); ++i)
    for (const octree::PointRec& pt : let.points_of(let.nodes[i]))
      if (pt.is_source()) nsrc[i] += 1.0;

  std::vector<double> weights;
  for (std::size_t i = 0; i < let.nodes.size(); ++i) {
    const octree::LetNode& node = let.nodes[i];
    if (!(node.owned && node.global_leaf)) continue;
    const double ntrg = node.target_count;
    double w = 0.0;
    for (auto si : let.u.of(i)) w += ntrg * nsrc[si] * kflops;
    // V: per-pair diagonal multiply on the padded grid.
    w += double(let.v.of(i).size()) * 8.0 * tables.fft_volume() *
         tables.sdim() * tables.tdim();
    w += double(let.w.of(i).size()) * ntrg * m * kflops;
    for (auto si : let.x.of(i)) w += nsrc[si] * m * kflops;
    // S2U + D2T per-leaf work.
    w += (nsrc[i] + ntrg) * m * kflops;
    weights.push_back(w);
  }
  return weights;
}

}  // namespace pkifmm::core
