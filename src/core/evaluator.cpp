#include "core/evaluator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <limits>
#include <numeric>
#include <tuple>
#include <unordered_map>

namespace pkifmm::core {

using morton::Key;
using octree::LetNode;

Evaluator::Evaluator(const Tables& tables, const octree::Let& let,
                     comm::RankCtx& ctx)
    : tables_(tables), let_(let), ctx_(ctx), surf_(tables.n()) {
  const std::size_t nn = let_.nodes.size();
  u_.assign(nn * tables_.eq_len(), 0.0);
  checkpot_.assign(nn * tables_.check_len(), 0.0);
  d_.assign(nn * tables_.eq_len(), 0.0);

  const int sd = tables_.sdim();
  const int td = tables_.tdim();
  f_.assign(let_.points.size() * td, 0.0);
  pos_.resize(let_.points.size() * 3);
  for (std::size_t i = 0; i < let_.points.size(); ++i)
    for (int c = 0; c < 3; ++c) pos_[3 * i + c] = let_.points[i].pos[c];

  // Per-node source extraction (targets and sources may be disjoint
  // subsets of a leaf's points; see octree::PointRec::kind).
  src_offset_.assign(let_.nodes.size() + 1, 0);
  for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
    src_offset_[i] = src_pos_.size() / 3;
    for (const octree::PointRec& pt : let_.points_of(let_.nodes[i])) {
      if (!pt.is_source()) continue;
      src_pos_.insert(src_pos_.end(), pt.pos, pt.pos + 3);
      src_den_.insert(src_den_.end(), pt.den, pt.den + sd);
    }
  }
  src_offset_[let_.nodes.size()] = src_pos_.size() / 3;

  surf_scratch_.resize(std::size_t(3) * surf_.count());

  // Level index for the batched phases (node order within a level).
  if (!let_.nodes.empty()) {
    min_level_ = morton::kMaxDepth + 1;
    max_level_ = -1;
    for (const LetNode& n : let_.nodes) {
      min_level_ = std::min(min_level_, static_cast<int>(n.key.level));
      max_level_ = std::max(max_level_, static_cast<int>(n.key.level));
    }
    level_nodes_.resize(max_level_ + 1);
    for (std::size_t i = 0; i < nn; ++i)
      level_nodes_[let_.nodes[i].key.level].push_back(
          static_cast<std::int32_t>(i));
  }

  // Worker pool: prefer the Runtime-provided per-rank pool; otherwise
  // own one sized from the options (0 workers when threads_per_rank is
  // 1 — an inline executor with no thread or synchronization cost).
  if (ctx.pool != nullptr) {
    pool_ = ctx.pool;
  } else {
    const FmmOptions& opts = tables_.options();
    owned_pool_ = std::make_unique<util::TaskPool>(
        util::recommended_workers(opts.threads_per_rank, ctx.size(),
                                  opts.clamp_threads) -
        1);
    pool_ = owned_pool_.get();
  }
  lane_surf_.resize(std::size_t(pool_->lanes()) * 3 * surf_.count());
}

Evaluator::~Evaluator() {
  if (uli_started_) {
    try {
      pool_->wait(uli_group_);
    } catch (...) {
      // Unwinding already; the wait only exists so no task outlives us.
    }
  }
}

std::span<const double> Evaluator::leaf_source_positions(
    std::size_t node) const {
  return {src_pos_.data() + src_offset_[node] * 3,
          (src_offset_[node + 1] - src_offset_[node]) * 3};
}

std::span<const double> Evaluator::leaf_source_densities(
    std::size_t node) const {
  const std::size_t sd = tables_.sdim();
  return {src_den_.data() + src_offset_[node] * sd,
          (src_offset_[node + 1] - src_offset_[node]) * sd};
}

std::span<const double> Evaluator::leaf_target_positions(
    const LetNode& n) const {
  return {pos_.data() + std::size_t(n.point_begin) * 3,
          std::size_t(n.target_count) * 3};
}

std::span<double> Evaluator::leaf_target_potential(const LetNode& n) {
  const int td = tables_.tdim();
  return {f_.data() + std::size_t(n.point_begin) * td,
          std::size_t(n.target_count) * td};
}

std::span<const double> Evaluator::box_surf(double radius_scale,
                                            const Key& k) {
  const auto g = morton::box_geometry(k);
  surf_.materialize(radius_scale, g.center, g.half_width, surf_scratch_);
  return surf_scratch_;
}

std::span<const double> Evaluator::box_surf(double radius_scale, const Key& k,
                                            int lane) {
  const auto g = morton::box_geometry(k);
  const std::size_t len = std::size_t(3) * surf_.count();
  std::span<double> out(lane_surf_.data() + std::size_t(lane) * len, len);
  surf_.materialize(radius_scale, g.center, g.half_width, out);
  return out;
}

void Evaluator::gemm_batched(const la::Matrix& m, std::size_t ncols,
                             double scale, const char* phase) {
  pool_->parallel_for(
      ncols, kColGrain,
      [&](std::size_t c0, std::size_t c1, int) {
        la::gemm_acc_cols(m, batch_in_, batch_out_, ncols, c0, c1, scale);
      },
      phase);
  ctx_.flops.add(phase, la::gemm_flops(m, ncols));
}

int Evaluator::pair_offset_index(const LetNode& tnode,
                                 const LetNode& snode) const {
  const auto ta = morton::anchor(tnode.key);
  const auto sa = morton::anchor(snode.key);
  const auto side = morton::cell_side(tnode.key);
  const int dx = (static_cast<std::int64_t>(ta[0]) - sa[0]) / side;
  const int dy = (static_cast<std::int64_t>(ta[1]) - sa[1]) / side;
  const int dz = (static_cast<std::int64_t>(ta[2]) - sa[2]) / side;
  return offset_index(dx, dy, dz);
}

void Evaluator::run() {
  // Data-driven execution replaces the whole bulk-synchronous pipeline
  // below (scalar mode has no chunk decomposition to schedule, so it
  // always runs bulk-synchronously).
  if (tables_.options().exec_mode == ExecMode::kDag && batched()) {
    run_dag();
    return;
  }
  // ULI ‖ {S2U, U2U, comm, VLI, XLI, down, WLI, D2T}: the direct
  // interactions depend on nothing upstream, so they start now and the
  // workers execute them whenever no far-field chunk is runnable —
  // including while the rank thread blocks in the reduce-scatter.
  uli_start();
  {
    auto t = ctx_.timer.scope("eval.s2u");
    s2u();
  }
  health_post_s2u();
  {
    auto t = ctx_.timer.scope("eval.u2u");
    u2u();
  }
  {
    auto t = ctx_.timer.scope("eval.comm");
    comm_reduce();
  }
  health_post_reduce();
  {
    auto t = ctx_.timer.scope("eval.vli");
    vli();
  }
  {
    auto t = ctx_.timer.scope("eval.xli");
    xli();
  }
  {
    auto t = ctx_.timer.scope("eval.down");
    downward();
  }
  {
    auto t = ctx_.timer.scope("eval.wli");
    wli();
  }
  {
    auto t = ctx_.timer.scope("eval.d2t");
    d2t();
  }
  {
    auto t = ctx_.timer.scope("eval.uli");
    uli_join();
  }
  health_post_run();
  pool_->fold_stats(ctx_.rec);
  publish_mem_gauges();
}

/// The DAG executor. Same arithmetic as the bulk-synchronous batched
/// engine — every task below is exactly one of its chunks (per-leaf
/// kernel chunks, GEMM column windows, frequency-chunk MACs, FFT slot
/// chunks), every accumulation order is preserved by edges — so the
/// potentials are bitwise identical and the model-flop totals exact.
/// What changes is WHEN chunks run: a chunk starts the moment its
/// inputs are final instead of at a phase barrier, ULI/XLI/WLI chunks
/// fill worker idle time, and the reduce-scatter's per-node write-back
/// callback releases ghost-gated V-list work level by level while the
/// communication is still in flight.
///
/// Timer phases: eval.dag.build (graph construction + launch),
/// eval.dag.up (rank thread helping until local upward densities are
/// final), eval.comm (the reduce, as in bulk mode), eval.dag.run
/// (helping until the graph drains). Flops are folded into the
/// canonical eval.* phases, so flop-based comparisons work across
/// exec modes.
void Evaluator::run_dag() {
  using util::TaskGraph;
  using NodeId = util::TaskGraph::NodeId;
  constexpr NodeId kNoNode = TaskGraph::kNone;

  const auto& kern = tables_.kernel();
  const FmmOptions& opts = tables_.options();
  const bool use_fft = opts.m2l == M2lMode::kFft;
  const std::size_t elen = tables_.eq_len();
  const std::size_t clen = tables_.check_len();
  const int sd = tables_.sdim();
  const int td = tables_.tdim();
  const int m = tables_.m();
  const std::size_t nn = let_.nodes.size();
  const std::size_t vol = tables_.fft_volume();
  static constexpr std::size_t kFreqChunk = 16;  // as in vli_fft_batched

  // Model flops per phase: GEMM/MAC amounts are known while building
  // ("planned"); kernel-direct and FFT amounts are summed by the chunk
  // tasks ("counted"). Folded into ctx_.flops once the graph drained,
  // in the bulk engine's phase order — totals match exactly because
  // both modes sum the same per-chunk integers.
  enum Ph : std::size_t {
    kPhS2u,
    kPhU2u,
    kPhVli,
    kPhXli,
    kPhDown,
    kPhWli,
    kPhD2t,
    kNumPh
  };
  struct PhaseFlops {
    const char* name;
    std::uint64_t planned = 0;
    std::atomic<std::uint64_t> counted{0};
  };
  std::array<PhaseFlops, kNumPh> phf{{{"eval.s2u"},
                                      {"eval.u2u"},
                                      {"eval.vli"},
                                      {"eval.xli"},
                                      {"eval.down"},
                                      {"eval.wli"},
                                      {"eval.d2t"}}};

  // One operator component applied to entries [e0, e1) of fidx/aidx
  // (identical to vli_fft_batched's RunGroup).
  struct RunGroup {
    const fft::Complex* g;
    std::size_t e0, e1;
  };

  // Per-level graph handles and buffers. Everything a task lambda
  // touches lives here or in the Evaluator, so it outlives every task
  // (all tasks complete before run_dag returns).
  struct LevelDag {
    NodeId s2u_done = TaskGraph::kNone;
    NodeId up_final = TaskGraph::kNone;    ///< u_ rows at level locally final
    NodeId ghost_done = TaskGraph::kNone;  ///< + reduce write-backs arrived
    NodeId vli_done = TaskGraph::kNone;
    NodeId xli_done = TaskGraph::kNone;
    NodeId down_done = TaskGraph::kNone;
    int ghost_expected = 0;
    int ghost_signaled = 0;  ///< rank thread only
    std::vector<std::int32_t> s2u_slots, s2u_iota;
    std::vector<double> s2u_tmp;
    std::vector<double> gin, gout;     ///< level-local gather/GEMM buffers
    std::vector<std::int32_t> xnodes;  ///< targets with X-work
    // FFT V-list state (layout as in vli_fft_batched).
    std::vector<std::int32_t> vtgt, vsrc;
    std::size_t n_local_src = 0;  ///< vsrc[0, n) are never ghost-written
    std::vector<fft::Complex> spectra, acc;
    std::vector<RunGroup> groups;
    std::vector<std::int32_t> fidx, aidx;
  };
  std::vector<LevelDag> lv(static_cast<std::size_t>(std::max(max_level_, -1) + 1));

  // Shared-node predicate: the reduce write-back only ever touches
  // is_shared() nodes, so chunks reading only non-shared u_ rows never
  // race the communication and need no ghost gating.
  std::vector<char> shared_node(nn, 0);
  if (ctx_.size() > 1)
    for (std::size_t i = 0; i < nn; ++i)
      if (is_shared(let_.nodes[i].key, let_.splitters, ctx_.rank()))
        shared_node[i] = 1;

  util::TaskGraph graph(*pool_, "eval.dag");

  // A gather -> column-windowed GEMM -> scatter stage, the DAG form of
  // gemm_batched(). Deque keeps stage addresses stable for the lambdas.
  // Stages sharing a bin/bout buffer pair MUST be chained by edges.
  struct GemmStage {
    const la::Matrix* mat;
    double scale;
    std::vector<std::int32_t> in_slots, out_slots;
    const std::vector<double>* src;
    std::vector<double>* dst;
    std::size_t in_len, out_len;
    std::vector<double>* bin;
    std::vector<double>* bout;
  };
  std::deque<GemmStage> stages;
  auto gemm_stage = [&](NodeId entry, Ph ph, const char* phase,
                        const la::Matrix& mat, double scale,
                        std::vector<std::int32_t> in_slots,
                        const std::vector<double>* src, std::size_t in_len,
                        std::vector<std::int32_t> out_slots,
                        std::vector<double>* dst, std::size_t out_len,
                        std::vector<double>* bin,
                        std::vector<double>* bout) -> NodeId {
    stages.push_back(GemmStage{&mat, scale, std::move(in_slots),
                               std::move(out_slots), src, dst, in_len, out_len,
                               bin, bout});
    GemmStage* s = &stages.back();
    const std::size_t nb = s->in_slots.size();
    const NodeId gather = graph.node(phase, [s, nb](int) {
      s->bin->resize(s->in_len * nb);
      la::gather_columns(*s->src, s->in_slots, s->in_len, *s->bin);
      s->bout->assign(s->out_len * nb, 0.0);
    });
    if (entry != TaskGraph::kNone) graph.edge(entry, gather);
    const NodeId scatter = graph.node(phase, [s](int) {
      la::scatter_columns_acc(*s->bout, s->out_slots, s->out_len, *s->dst);
    });
    for (std::size_t c0 = 0; c0 < nb; c0 += kColGrain) {
      const std::size_t c1 = std::min(nb, c0 + kColGrain);
      const NodeId w = graph.node(phase, [s, nb, c0, c1](int) {
        la::gemm_acc_cols(*s->mat, *s->bin, *s->bout, nb, c0, c1, s->scale);
      });
      graph.edge(gather, w);
      graph.edge(w, scatter);
    }
    phf[ph].planned += la::gemm_flops(mat, nb);
    return scatter;
  };

  // Chain buffers for the strictly-sequential u2u and downward stages.
  std::vector<double> uwin, uwout, dwin, dwout;
  double scratch_bytes = 0;  // planned DAG scratch, published as a gauge

  NodeId upward_all = kNoNode;
  NodeId ghosts_all = kNoNode;
  {
    auto bt = ctx_.timer.scope("eval.dag.build");

    // Ghost-arrival latches: one event per level, released by the
    // reduce's write-back callback (or the post-reduce flush) once per
    // shared node of that level. With one rank every count is zero and
    // the latches fire at launch.
    ghosts_all = graph.event("eval.ghost");
    for (int level = min_level_; level <= max_level_; ++level) {
      LevelDag& L = lv[level];
      for (auto i : level_nodes_[level])
        if (shared_node[i]) ++L.ghost_expected;
      L.ghost_done = graph.event("eval.ghost");
      graph.external(L.ghost_done, L.ghost_expected);
      graph.edge(L.ghost_done, ghosts_all);
    }

    // --- S2U: per-leaf check potentials, then one uc2ue stage/level ---
    for (int level = min_level_; level <= max_level_; ++level) {
      LevelDag& L = lv[level];
      for (auto i : level_nodes_[level]) {
        const LetNode& node = let_.nodes[i];
        if (!(node.owned && node.global_leaf)) continue;
        if (leaf_source_positions(i).empty()) continue;
        L.s2u_slots.push_back(i);
      }
      if (L.s2u_slots.empty()) continue;
      const std::size_t nb = L.s2u_slots.size();
      L.s2u_tmp.assign(nb * clen, 0.0);
      L.s2u_iota.resize(nb);
      std::iota(L.s2u_iota.begin(), L.s2u_iota.end(), 0);
      LevelDag* Lp = &L;
      const NodeId directs = graph.event("eval.s2u");
      for (std::size_t b = 0; b < nb; b += kNodeGrain) {
        const std::size_t e = std::min(nb, b + kNodeGrain);
        const NodeId t = graph.node(
            "eval.s2u", [this, Lp, b, e, clen, &kern, &phf](int lane) {
              std::uint64_t local = 0;
              for (std::size_t j = b; j < e; ++j) {
                const std::int32_t i = Lp->s2u_slots[j];
                const auto uc = box_surf(tables_.options().upward_check_radius,
                                         let_.nodes[i].key, lane);
                local += kern.direct(
                    uc, leaf_source_positions(i), leaf_source_densities(i),
                    std::span<double>(Lp->s2u_tmp.data() + j * clen, clen));
              }
              phf[kPhS2u].counted.fetch_add(local, std::memory_order_relaxed);
            });
        graph.edge(t, directs);
      }
      const LevelOps ops = tables_.at(level);
      L.s2u_done =
          gemm_stage(directs, kPhS2u, "eval.s2u", *ops.uc2ue, ops.uc2ue_scale,
                     L.s2u_iota, &L.s2u_tmp, clen, L.s2u_slots, &u_, elen,
                     &L.gin, &L.gout);
    }

    // --- U2U: deepest level first, child indices 7..0, each stage
    // chained (shared uwin/uwout and the same add-order into parents as
    // the bulk engine). up_final[l] = "u_ rows at level l are locally
    // final" — it gates this level's V-list forward work.
    {
      NodeId chain = kNoNode;
      for (int level = max_level_; level >= min_level_; --level) {
        LevelDag& L = lv[level];
        const NodeId fin = graph.event("eval.u2u");
        if (L.s2u_done != kNoNode) graph.edge(L.s2u_done, fin);
        if (chain != kNoNode) graph.edge(chain, fin);
        L.up_final = fin;
        chain = fin;
        if (level > min_level_ && !level_nodes_[level].empty()) {
          const LevelOps ops = tables_.at(level - 1);
          NodeId prev = fin;
          for (int ci = 7; ci >= 0; --ci) {
            std::vector<std::int32_t> children, parents;
            for (auto i : level_nodes_[level]) {
              const LetNode& node = let_.nodes[i];
              if (!node.target || node.parent < 0) continue;
              if (!let_.nodes[node.parent].target) continue;
              if (morton::child_index(node.key) != ci) continue;
              children.push_back(i);
              parents.push_back(node.parent);
            }
            if (children.empty()) continue;
            prev = gemm_stage(prev, kPhU2u, "eval.u2u", (*ops.m2m)[ci], 1.0,
                              std::move(children), &u_, elen,
                              std::move(parents), &u_, elen, &uwin, &uwout);
          }
          chain = prev;
        }
      }
      upward_all = graph.event("eval.u2u");
      if (chain != kNoNode) graph.edge(chain, upward_all);
    }

    // --- V-list ---
    if (use_fft) {
      PKIFMM_CHECK(vol % kFreqChunk == 0);
      const std::size_t nchunks = vol / kFreqChunk;
      lane_line_.assign(std::size_t(pool_->lanes()) * vol, fft::Complex(0, 0));
      slot_of_.assign(nn, -1);
      std::vector<std::tuple<int, std::int32_t, std::int32_t>> pairs;
      for (int level = min_level_; level <= max_level_; ++level) {
        LevelDag& L = lv[level];
        std::vector<std::int32_t> srcs;  // first-reference order
        for (auto i : level_nodes_[level]) {
          if (!let_.nodes[i].target) continue;
          const auto list = let_.v.of(i);
          if (list.empty()) continue;
          L.vtgt.push_back(i);
          for (auto si : list)
            if (slot_of_[si] < 0) {
              slot_of_[si] = 0;
              srcs.push_back(si);
            }
        }
        if (L.vtgt.empty()) continue;
        // Local (never ghost-written) slots first so the ghost-gated
        // forward-FFT chunks cover a contiguous tail. Determinism-safe:
        // the pair sort below orders on (offset, target) which is
        // unique per pair, so slot renumbering cannot reorder MACs.
        for (auto si : srcs)
          if (!shared_node[si]) L.vsrc.push_back(si);
        L.n_local_src = L.vsrc.size();
        for (auto si : srcs)
          if (shared_node[si]) L.vsrc.push_back(si);
        for (std::size_t sl = 0; sl < L.vsrc.size(); ++sl)
          slot_of_[L.vsrc[sl]] = static_cast<std::int32_t>(sl);

        const std::size_t nsrc = L.vsrc.size();
        const std::size_t ntgt = L.vtgt.size();
        const std::size_t nsc = nsrc * sd;
        const std::size_t ntc = ntgt * td;
        L.spectra.assign(nsc * vol, fft::Complex(0, 0));
        L.acc.assign(ntc * vol, fft::Complex(0, 0));
        scratch_bytes +=
            static_cast<double>((nsc + ntc) * vol) * sizeof(fft::Complex);
        LevelDag* Lp = &L;

        // Forward FFTs: chunks of local slots release on up_final
        // alone; chunks touching shared slots additionally wait for
        // the level's ghost latch — the incremental release that lets
        // local V-work start while the reduction is in flight.
        const NodeId fwd_done = graph.event("eval.vli");
        for (std::size_t b = 0; b < nsrc; b += kFftSlotGrain) {
          const std::size_t e = std::min(nsrc, b + kFftSlotGrain);
          const NodeId t = graph.node(
              "eval.vli",
              [this, Lp, b, e, sd, m, vol, elen, nchunks, &phf](int lane) {
                const auto& embed = tables_.embed_index();
                const std::span<fft::Complex> line(
                    lane_line_.data() + std::size_t(lane) * vol, vol);
                const std::size_t nsc2 = Lp->vsrc.size() * std::size_t(sd);
                std::uint64_t local = 0;
                for (std::size_t sl = b; sl < e; ++sl) {
                  const double* usrc =
                      u_.data() + std::size_t(Lp->vsrc[sl]) * elen;
                  for (int c = 0; c < sd; ++c) {
                    std::fill(line.begin(), line.end(), fft::Complex(0, 0));
                    for (int k = 0; k < m; ++k)
                      line[embed[k]] = usrc[k * sd + c];
                    tables_.fft().forward(line);
                    const std::size_t comp = sl * sd + c;
                    for (std::size_t fc = 0; fc < nchunks; ++fc) {
                      fft::Complex* dst =
                          Lp->spectra.data() + (fc * nsc2 + comp) * kFreqChunk;
                      const fft::Complex* sp = line.data() + fc * kFreqChunk;
                      for (std::size_t q = 0; q < kFreqChunk; ++q)
                        dst[q] = sp[q];
                    }
                  }
                  local += sd * tables_.fft().transform_flops();
                }
                phf[kPhVli].counted.fetch_add(local,
                                              std::memory_order_relaxed);
              });
          graph.edge(L.up_final, t);
          if (e > L.n_local_src) graph.edge(L.ghost_done, t);
          graph.edge(t, fwd_done);
        }

        // (target, source) pairs sorted by offset; operator fetches are
        // sequential here at build time (the m2l spectra cache is lazy
        // and not thread-safe).
        pairs.clear();
        for (std::size_t bj = 0; bj < ntgt; ++bj) {
          const std::int32_t i = L.vtgt[bj];
          const LetNode& node = let_.nodes[i];
          for (auto si : let_.v.of(i))
            pairs.emplace_back(pair_offset_index(node, let_.nodes[si]),
                               static_cast<std::int32_t>(bj), slot_of_[si]);
        }
        std::sort(pairs.begin(), pairs.end());
        for (std::size_t r0 = 0; r0 < pairs.size();) {
          const int off = std::get<0>(pairs[r0]);
          std::size_t r1 = r0;
          while (r1 < pairs.size() && std::get<0>(pairs[r1]) == off) ++r1;
          const std::size_t run = r1 - r0;
          const auto g = tables_.m2l_spectra(level, off);
          for (int ti = 0; ti < td; ++ti)
            for (int sc = 0; sc < sd; ++sc) {
              const std::size_t e0 = L.fidx.size();
              for (std::size_t p = 0; p < run; ++p) {
                const auto& pr = pairs[r0 + p];
                L.fidx.push_back(std::get<2>(pr) * sd + sc);
                L.aidx.push_back(std::get<1>(pr) * td + ti);
              }
              L.groups.push_back({g.data() + std::size_t(ti * sd + sc) * vol,
                                  e0, L.fidx.size()});
            }
          phf[kPhVli].planned += 8ull * td * sd * vol * run;
          r0 = r1;
        }

        // Frequency-chunk MACs, then per-target inverse transforms.
        const NodeId mac_done = graph.event("eval.vli");
        for (std::size_t cb = 0; cb < nchunks; cb += kFreqChunkGrain) {
          const std::size_t ce = std::min(nchunks, cb + kFreqChunkGrain);
          const NodeId t = graph.node("eval.vli", [Lp, cb, ce, sd, td](int) {
            const std::size_t nsc2 = Lp->vsrc.size() * std::size_t(sd);
            const std::size_t ntc2 = Lp->vtgt.size() * std::size_t(td);
            const std::span<const std::int32_t> fidx_all(Lp->fidx);
            const std::span<const std::int32_t> aidx_all(Lp->aidx);
            for (std::size_t fc = cb; fc < ce; ++fc) {
              const fft::Complex* fb =
                  Lp->spectra.data() + fc * nsc2 * kFreqChunk;
              fft::Complex* ab = Lp->acc.data() + fc * ntc2 * kFreqChunk;
              const std::size_t q0 = fc * kFreqChunk;
              for (const RunGroup& grp : Lp->groups)
                fft::pointwise_mac_chunked(
                    grp.g + q0, kFreqChunk, fb, ab,
                    fidx_all.subspan(grp.e0, grp.e1 - grp.e0),
                    aidx_all.subspan(grp.e0, grp.e1 - grp.e0));
            }
          });
          graph.edge(fwd_done, t);
          graph.edge(t, mac_done);
        }

        const LevelOps ops = tables_.at(level);
        const double m2l_scale = ops.m2l_scale;
        const NodeId extract_done = graph.event("eval.vli");
        for (std::size_t b = 0; b < ntgt; b += kFftSlotGrain) {
          const std::size_t e = std::min(ntgt, b + kFftSlotGrain);
          const NodeId t = graph.node(
              "eval.vli", [this, Lp, b, e, td, m, vol, clen, nchunks,
                           m2l_scale, &phf](int lane) {
                const auto& embed = tables_.embed_index();
                const std::span<fft::Complex> line(
                    lane_line_.data() + std::size_t(lane) * vol, vol);
                const std::size_t ntc2 = Lp->vtgt.size() * std::size_t(td);
                std::uint64_t local = 0;
                for (std::size_t bj = b; bj < e; ++bj) {
                  double* out =
                      checkpot_.data() + std::size_t(Lp->vtgt[bj]) * clen;
                  for (int ti = 0; ti < td; ++ti) {
                    const std::size_t comp = bj * td + ti;
                    for (std::size_t fc = 0; fc < nchunks; ++fc) {
                      const fft::Complex* sp =
                          Lp->acc.data() + (fc * ntc2 + comp) * kFreqChunk;
                      fft::Complex* dst = line.data() + fc * kFreqChunk;
                      for (std::size_t q = 0; q < kFreqChunk; ++q)
                        dst[q] = sp[q];
                    }
                    tables_.fft().inverse(line);
                    for (int k = 0; k < m; ++k)
                      out[k * td + ti] += m2l_scale * line[embed[k]].real();
                  }
                  local += td * tables_.fft().transform_flops();
                }
                phf[kPhVli].counted.fetch_add(local,
                                              std::memory_order_relaxed);
              });
          graph.edge(mac_done, t);
          graph.edge(t, extract_done);
        }
        // Free the level's volumes once consumed: per-level footprints
        // decay geometrically with depth, but releasing early keeps
        // several levels in flight cheap.
        const NodeId freed = graph.node("eval.vli", [Lp](int) {
          std::vector<fft::Complex>().swap(Lp->spectra);
          std::vector<fft::Complex>().swap(Lp->acc);
        });
        graph.edge(extract_done, freed);
        L.vli_done = extract_done;
        for (auto si : L.vsrc) slot_of_[si] = -1;  // reset for next level
      }
    } else {
      // Dense M2L: one chained gemm_stage per (level, offset) run,
      // entered once the level's upward densities AND ghosts landed.
      std::vector<std::tuple<int, std::int32_t, std::int32_t>> pairs;
      for (int level = min_level_; level <= max_level_; ++level) {
        LevelDag& L = lv[level];
        pairs.clear();
        for (auto i : level_nodes_[level]) {
          const LetNode& node = let_.nodes[i];
          if (!node.target) continue;
          for (auto si : let_.v.of(i))
            pairs.emplace_back(pair_offset_index(node, let_.nodes[si]), i, si);
        }
        if (pairs.empty()) continue;
        std::sort(pairs.begin(), pairs.end());
        const NodeId entry = graph.event("eval.vli");
        graph.edge(L.up_final, entry);
        graph.edge(L.ghost_done, entry);
        const LevelOps ops = tables_.at(level);
        NodeId prev = entry;
        for (std::size_t r0 = 0; r0 < pairs.size();) {
          const int off = std::get<0>(pairs[r0]);
          std::size_t r1 = r0;
          std::vector<std::int32_t> srcs, tgts;
          for (; r1 < pairs.size() && std::get<0>(pairs[r1]) == off; ++r1) {
            tgts.push_back(std::get<1>(pairs[r1]));
            srcs.push_back(std::get<2>(pairs[r1]));
          }
          prev = gemm_stage(prev, kPhVli, "eval.vli",
                            tables_.m2l_dense(level, off), ops.m2l_scale,
                            std::move(srcs), &u_, elen, std::move(tgts),
                            &checkpot_, clen, &L.gin, &L.gout);
          r0 = r1;
        }
        L.vli_done = prev;
      }
    }

    // --- X-list: per-level chunks, after the level's V-work so each
    // checkpot_ row accumulates V then X exactly as in bulk mode.
    for (int level = min_level_; level <= max_level_; ++level) {
      LevelDag& L = lv[level];
      for (auto i : level_nodes_[level])
        if (let_.nodes[i].target && !let_.x.of(i).empty())
          L.xnodes.push_back(i);
      if (L.xnodes.empty()) continue;
      LevelDag* Lp = &L;
      const NodeId done = graph.event("eval.xli");
      for (std::size_t b = 0; b < L.xnodes.size(); b += kNodeGrain) {
        const std::size_t e = std::min(L.xnodes.size(), b + kNodeGrain);
        const NodeId t = graph.node(
            "eval.xli", [this, Lp, b, e, clen, &kern, &phf](int lane) {
              std::uint64_t local = 0;
              for (std::size_t j = b; j < e; ++j) {
                const std::int32_t i = Lp->xnodes[j];
                const auto dc = box_surf(tables_.options().down_check_radius,
                                         let_.nodes[i].key, lane);
                std::span<double> out(
                    checkpot_.data() + std::size_t(i) * clen, clen);
                for (auto si : let_.x.of(i))
                  local += kern.direct(dc, leaf_source_positions(si),
                                       leaf_source_densities(si), out);
              }
              phf[kPhXli].counted.fetch_add(local, std::memory_order_relaxed);
            });
        if (L.vli_done != kNoNode) graph.edge(L.vli_done, t);
        graph.edge(t, done);
      }
      L.xli_done = done;
    }

    // --- Downward: coarsest level first; L2L child indices 0..7 then
    // the level's dc2de, all chained (shared dwin/dwout; the chain is
    // the bulk engine's own level order).
    {
      NodeId down_prev = kNoNode;
      for (int level = min_level_; level <= max_level_; ++level) {
        LevelDag& L = lv[level];
        if (level_nodes_[level].empty()) {
          L.down_done = down_prev;
          continue;
        }
        const NodeId entry = graph.event("eval.down");
        if (down_prev != kNoNode) graph.edge(down_prev, entry);
        if (L.vli_done != kNoNode) graph.edge(L.vli_done, entry);
        if (L.xli_done != kNoNode) graph.edge(L.xli_done, entry);
        NodeId prev = entry;
        if (level > min_level_) {
          const LevelOps pair_ops = tables_.at(level - 1);
          for (int ci = 0; ci < 8; ++ci) {
            std::vector<std::int32_t> parents, children;
            for (auto i : level_nodes_[level]) {
              const LetNode& node = let_.nodes[i];
              if (!node.target || node.parent < 0) continue;
              if (!let_.nodes[node.parent].target) continue;
              if (morton::child_index(node.key) != ci) continue;
              parents.push_back(node.parent);
              children.push_back(i);
            }
            if (parents.empty()) continue;
            prev = gemm_stage(prev, kPhDown, "eval.down", (*pair_ops.l2l)[ci],
                              pair_ops.l2l_scale, std::move(parents), &d_,
                              elen, std::move(children), &checkpot_, clen,
                              &dwin, &dwout);
          }
        }
        std::vector<std::int32_t> tgts;
        for (auto i : level_nodes_[level])
          if (let_.nodes[i].target) tgts.push_back(i);
        if (!tgts.empty()) {
          const LevelOps ops = tables_.at(level);
          prev = gemm_stage(prev, kPhDown, "eval.down", *ops.dc2de,
                            ops.dc2de_scale, tgts, &checkpot_, clen, tgts,
                            &d_, elen, &dwin, &dwout);
        }
        L.down_done = prev;
        down_prev = prev;
      }
    }

    // --- W-list then D2T, the bulk engine's global node chunks. A
    // chunk's W task needs every source density (upward + ghosts); its
    // D2T task additionally needs the downward chain to have finalized
    // d_ at each level its leaves live on, and runs after the W task so
    // each leaf's f_ row accumulates W then D2T as in bulk mode.
    for (std::size_t b = 0; b < nn; b += kNodeGrain) {
      const std::size_t e = std::min(nn, b + kNodeGrain);
      bool has_leaf = false, has_w = false;
      std::vector<int> levels;
      for (std::size_t i = b; i < e; ++i) {
        const LetNode& node = let_.nodes[i];
        if (!(node.owned && node.global_leaf) || node.target_count == 0)
          continue;
        has_leaf = true;
        if (!let_.w.of(i).empty()) has_w = true;
        const int l = node.key.level;
        if (std::find(levels.begin(), levels.end(), l) == levels.end())
          levels.push_back(l);
      }
      if (!has_leaf) continue;
      NodeId wt = kNoNode;
      if (has_w) {
        wt = graph.node(
            "eval.wli", [this, b, e, elen, &kern, &phf](int lane) {
              std::uint64_t local = 0;
              for (std::size_t i = b; i < e; ++i) {
                const LetNode& node = let_.nodes[i];
                if (!(node.owned && node.global_leaf) ||
                    node.target_count == 0)
                  continue;
                const auto list = let_.w.of(i);
                if (list.empty()) continue;
                const auto trg = leaf_target_positions(node);
                auto out = leaf_target_potential(node);
                for (auto si : list) {
                  const auto ue =
                      box_surf(tables_.options().upward_equiv_radius,
                               let_.nodes[si].key, lane);
                  local += kern.direct(
                      trg, ue,
                      std::span<const double>(
                          u_.data() + std::size_t(si) * elen, elen),
                      out);
                }
              }
              phf[kPhWli].counted.fetch_add(local, std::memory_order_relaxed);
            });
        graph.edge(upward_all, wt);
        graph.edge(ghosts_all, wt);
      }
      const NodeId dt = graph.node(
          "eval.d2t", [this, b, e, elen, &kern, &phf](int lane) {
            std::uint64_t local = 0;
            for (std::size_t i = b; i < e; ++i) {
              const LetNode& node = let_.nodes[i];
              if (!(node.owned && node.global_leaf) || node.target_count == 0)
                continue;
              const auto de = box_surf(tables_.options().down_equiv_radius,
                                       node.key, lane);
              local += kern.direct(
                  leaf_target_positions(node), de,
                  std::span<const double>(d_.data() + i * elen, elen),
                  leaf_target_potential(node));
            }
            phf[kPhD2t].counted.fetch_add(local, std::memory_order_relaxed);
          });
      if (wt != kNoNode) graph.edge(wt, dt);
      for (int l : levels)
        if (lv[l].down_done != kNoNode) graph.edge(lv[l].down_done, dt);
    }

    // --- ULI: dependency-free roots — just another set of DAG nodes
    // that fill worker idle time anywhere in the schedule. Merged into
    // f_ after the graph drains, exactly as uli_join() does.
    f_uli_.assign(f_.size(), 0.0);
    uli_flops_.store(0, std::memory_order_relaxed);
    uli_w0_ = obs::wall_seconds();
    for (std::size_t b = 0; b < nn; b += kNodeGrain) {
      const std::size_t e = std::min(nn, b + kNodeGrain);
      graph.node("eval.uli",
                 [this, b, e](int lane) { uli_chunk(b, e, lane); });
    }

    graph.launch();
  }

  // Help the workers until the local upward pass is done — the reduce
  // below needs every shared node's partial density final.
  {
    auto ut = ctx_.timer.scope("eval.dag.up");
    graph.wait_node(upward_all);
  }

  // The reduce, with the per-node write-back callback forwarding each
  // arrival to its level's latch. Predicted-but-unreached shared nodes
  // are flushed afterwards — including on the exception path, where the
  // graph must still be able to drain for safe unwinding.
  {
    auto ct = ctx_.timer.scope("eval.comm");
    ctx_.comm.cost().set_phase("eval.comm");
    NodeFinalFn on_final;
    if (ctx_.size() > 1)
      on_final = [this, &lv, &graph](std::int32_t ni) {
        LevelDag& L = lv[let_.nodes[static_cast<std::size_t>(ni)].key.level];
        if (L.ghost_signaled < L.ghost_expected) {
          ++L.ghost_signaled;
          graph.signal(L.ghost_done);
        }
      };
    auto flush_ghosts = [&lv, &graph] {
      for (LevelDag& L : lv)
        while (L.ghost_signaled < L.ghost_expected) {
          ++L.ghost_signaled;
          graph.signal(L.ghost_done);
        }
    };
    try {
      reduce_upward_densities(ctx_.comm, let_, tables_.eq_len(), u_,
                              opts.reduce, on_final);
    } catch (...) {
      flush_ghosts();
      throw;
    }
    flush_ghosts();
  }

  // Drain the rest of the graph, then fold flops (bulk phase order) and
  // merge the ULI buffer (still last, so f_'s summation order matches
  // uli_join()).
  {
    auto rt = ctx_.timer.scope("eval.dag.run");
    graph.wait();
    for (const PhaseFlops& pf : phf)
      ctx_.flops.add(pf.name,
                     pf.planned + pf.counted.load(std::memory_order_relaxed));
    ctx_.flops.add("eval.uli", uli_flops_.load(std::memory_order_relaxed));
    for (std::size_t k = 0; k < f_.size(); ++k) f_[k] += f_uli_[k];
  }

  // No phase boundaries exist in DAG mode, so the health sentinels run
  // back to back after the drain (see evaluator.hpp).
  health_post_s2u();
  health_post_reduce();
  health_post_run();

  // ULI overlap accounting: there is no join window in DAG mode — every
  // ULI burst executes interleaved with the rest of the graph, so
  // overlap == busy by construction. Must precede fold_stats (which
  // resets the burst log).
  const double inf = std::numeric_limits<double>::infinity();
  const double uli_busy = pool_->busy_overlap("eval.uli", uli_w0_, inf);
  ctx_.rec.counter_add("sched.uli.busy_seconds", uli_busy);
  ctx_.rec.counter_add("sched.uli.overlap_seconds", uli_busy);

  graph.fold_stats(ctx_.rec);
  pool_->fold_stats(ctx_.rec);
  publish_mem_gauges();
  auto cap = [](const auto& v) {
    return static_cast<double>(
        v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type));
  };
  scratch_bytes += cap(uwin) + cap(uwout) + cap(dwin) + cap(dwout);
  for (const LevelDag& L : lv)
    scratch_bytes += cap(L.gin) + cap(L.gout) + cap(L.s2u_tmp) +
                     cap(L.fidx) + cap(L.aidx);
  ctx_.rec.gauge_set("mem.eval.dag_scratch_bytes", scratch_bytes);
}

/// Publishes the evaluator's scratch footprint as `mem.eval.*` byte
/// gauges. Capacities only grow across phases, so sampling once after
/// the pipeline captures each buffer's high-water mark for this run.
void Evaluator::publish_mem_gauges() {
  auto cap = [](const auto& v) {
    return static_cast<double>(
        v.capacity() *
        sizeof(typename std::decay_t<decltype(v)>::value_type));
  };
  obs::Recorder& rec = ctx_.rec;
  rec.gauge_set("mem.eval.state_bytes",
                cap(u_) + cap(checkpot_) + cap(d_) + cap(f_) + cap(f_uli_) +
                    cap(pos_) + cap(src_pos_) + cap(src_den_) +
                    cap(src_offset_));
  rec.gauge_set("mem.eval.surface_bytes",
                static_cast<double>(surf_.bytes()) + cap(surf_scratch_));
  rec.gauge_set("mem.eval.lane_scratch_bytes",
                cap(lane_surf_) + cap(lane_line_));
  rec.gauge_set("mem.eval.batch_bytes",
                cap(batch_in_) + cap(batch_out_) + cap(batch_tmp_) +
                    cap(slots_a_) + cap(slots_b_) + cap(slot_of_));
  rec.gauge_set("mem.eval.fft_chunk_bytes", cap(spectra_) + cap(fft_acc_));
}

namespace {

/// Moment-invariant tolerance: the upward equivalent density's total
/// "charge" matches the leaf's summed source densities only to the
/// surface discretization accuracy, which is loose at surface_n = 3-4
/// (the invariant is a corruption tripwire, not an accuracy bound —
/// corruption flips sign bits or exponents and misses by orders of
/// magnitude). Clean-run sweeps across kernels x distributions pin
/// this headroom in tests/test_health.cpp.
constexpr double kMomentTol = 0.05;

}  // namespace

void Evaluator::health_post_s2u() {
  const FmmOptions& opts = tables_.options();
  if (!opts.health) return;
  auto t = ctx_.timer.scope("health.check");
  obs::Recorder& rec = ctx_.rec;
  const std::size_t elen = tables_.eq_len();
  const int sd = tables_.sdim();
  const auto& kern = tables_.kernel();
  // The monopole term of a 1/r-class kernel is the total source
  // density, so the equivalent density must conserve it per component.
  const bool moment =
      kern.homogeneous() && kern.homogeneity_degree() == -1.0;

  double digest = 0.0;
  double moment_max = 0.0;
  std::size_t bad = 0, violations = 0;
  bool injected = false;
  for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
    const LetNode& node = let_.nodes[i];
    if (!(node.owned && node.global_leaf)) continue;
    std::span<double> chunk(u_.data() + i * elen, elen);
    // Corrupt the FIRST owned leaf (not the root: a top-level chunk can
    // have no V/W consumers, leaving outputs untouched) so the fault
    // both lands in this digest and propagates downstream.
    if (!injected &&
        obs::maybe_inject(obs::InjectPhase::kS2u, ctx_.rank(), chunk)) {
      injected = true;
      rec.counter_add("health.injected");
    }
    digest += obs::chunk_digest(chunk, morton::KeyHash{}(node.key));
    bad += obs::nonfinite_count(chunk);
    if (moment && !leaf_source_densities(i).empty()) {
      const std::span<const double> den = leaf_source_densities(i);
      double diff = 0.0, ref = 0.0;
      const std::size_t npts = elen / sd;
      const std::size_t nsrc = den.size() / sd;
      for (int c = 0; c < sd; ++c) {
        double su = 0.0, sq = 0.0;
        for (std::size_t pt = 0; pt < npts; ++pt) su += chunk[pt * sd + c];
        for (std::size_t s = 0; s < nsrc; ++s) sq += den[s * sd + c];
        diff += std::abs(su - sq);
        ref += std::abs(sq);
      }
      const double rel = diff / std::max(ref, 1e-300);
      moment_max = std::max(moment_max, rel);
      if (rel > kMomentTol) ++violations;
    }
  }
  rec.counter_add("health.digest.u", digest);
  if (bad > 0)
    rec.counter_add("health.s2u.nonfinite", static_cast<double>(bad));
  if (violations > 0)
    rec.counter_add("health.moment.violations",
                    static_cast<double>(violations));
  // Running max as a counter (only counters cross the summary).
  rec.counter_add("health.moment.max_rel",
                  std::max(0.0, moment_max - rec.counter("health.moment.max_rel")));
  PKIFMM_CHECK_MSG(!opts.health_fatal || bad == 0,
                   "health: non-finite upward densities after S2U");
  PKIFMM_CHECK_MSG(!opts.health_fatal || violations == 0,
                   "health: moment invariant violated after S2U");
}

void Evaluator::health_post_reduce() {
  const FmmOptions& opts = tables_.options();
  if (!opts.health) return;
  auto t = ctx_.timer.scope("health.check");
  obs::Recorder& rec = ctx_.rec;
  const std::size_t elen = tables_.eq_len();

  double digest = 0.0;
  std::size_t bad = 0;
  bool injected = false;
  for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
    const LetNode& node = let_.nodes[i];
    if (!node.owned) continue;
    std::span<double> chunk(u_.data() + i * elen, elen);
    if (!injected && node.global_leaf &&
        obs::maybe_inject(obs::InjectPhase::kReduce, ctx_.rank(), chunk)) {
      injected = true;
      rec.counter_add("health.injected");
    }
    digest += obs::chunk_digest(chunk, morton::KeyHash{}(node.key));
    bad += obs::nonfinite_count(chunk);
  }
  rec.counter_add("health.digest.reduce", digest);
  if (bad > 0)
    rec.counter_add("health.reduce.nonfinite", static_cast<double>(bad));
  PKIFMM_CHECK_MSG(!opts.health_fatal || bad == 0,
                   "health: non-finite upward densities after reduce");
}

void Evaluator::health_post_run() {
  const FmmOptions& opts = tables_.options();
  if (!opts.health) return;
  auto t = ctx_.timer.scope("health.check");
  obs::Recorder& rec = ctx_.rec;

  double digest = 0.0;
  std::size_t bad = 0;
  bool injected = false;
  for (const LetNode& node : let_.nodes) {
    if (!(node.owned && node.global_leaf) || node.target_count == 0) continue;
    std::span<double> chunk = leaf_target_potential(node);
    if (!injected &&
        obs::maybe_inject(obs::InjectPhase::kD2t, ctx_.rank(), chunk)) {
      injected = true;
      rec.counter_add("health.injected");
    }
    digest += obs::chunk_digest(chunk, morton::KeyHash{}(node.key));
    bad += obs::nonfinite_count(chunk);
  }
  rec.counter_add("health.digest.pot", digest);
  if (bad > 0)
    rec.counter_add("health.d2t.nonfinite", static_cast<double>(bad));
  PKIFMM_CHECK_MSG(!opts.health_fatal || bad == 0,
                   "health: non-finite potentials after D2T");
}

void Evaluator::s2u() { batched() ? s2u_batched() : s2u_scalar(); }

void Evaluator::s2u_scalar() {
  const auto& kern = tables_.kernel();
  std::vector<double> check(tables_.check_len());
  for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
    const LetNode& node = let_.nodes[i];
    if (!(node.owned && node.global_leaf)) continue;
    if (leaf_source_positions(i).empty()) continue;
    const auto uc =
        box_surf(tables_.options().upward_check_radius, node.key);
    std::fill(check.begin(), check.end(), 0.0);
    ctx_.flops.add("eval.s2u", kern.direct(uc, leaf_source_positions(i),
                                           leaf_source_densities(i), check));
    const LevelOps ops = tables_.at(node.key.level);
    la::gemv_acc(*ops.uc2ue, check,
                 std::span<double>(u_.data() + i * tables_.eq_len(),
                                   tables_.eq_len()),
                 ops.uc2ue_scale);
    ctx_.flops.add("eval.s2u", la::gemv_flops(*ops.uc2ue));
  }
}

void Evaluator::s2u_batched() {
  const auto& kern = tables_.kernel();
  const std::size_t clen = tables_.check_len();
  const std::size_t elen = tables_.eq_len();
  for (int level = min_level_; level <= max_level_; ++level) {
    // Contributing leaves at this level.
    slots_a_.clear();
    for (auto i : level_nodes_[level]) {
      const LetNode& node = let_.nodes[i];
      if (!(node.owned && node.global_leaf)) continue;
      if (leaf_source_positions(i).empty()) continue;
      slots_a_.push_back(i);
    }
    if (slots_a_.empty()) continue;
    const std::size_t nb = slots_a_.size();

    // Per-leaf upward-check potentials into node-major scratch, chunks
    // writing disjoint rows...
    batch_tmp_.assign(nb * clen, 0.0);
    std::atomic<std::uint64_t> flops{0};
    pool_->parallel_for(
        nb, kNodeGrain,
        [&](std::size_t b, std::size_t e, int lane) {
          std::uint64_t local = 0;
          for (std::size_t j = b; j < e; ++j) {
            const std::int32_t i = slots_a_[j];
            const auto uc = box_surf(tables_.options().upward_check_radius,
                                     let_.nodes[i].key, lane);
            local += kern.direct(
                uc, leaf_source_positions(i), leaf_source_densities(i),
                std::span<double>(batch_tmp_.data() + j * clen, clen));
          }
          flops.fetch_add(local, std::memory_order_relaxed);
        },
        "eval.s2u");
    ctx_.flops.add("eval.s2u", flops.load(std::memory_order_relaxed));

    // ...transposed to batch columns, then ONE uc2ue application for
    // the whole level (column-windowed over the pool).
    slots_b_.resize(nb);
    std::iota(slots_b_.begin(), slots_b_.end(), 0);
    batch_in_.resize(clen * nb);
    la::gather_columns(batch_tmp_, slots_b_, clen, batch_in_);
    const LevelOps ops = tables_.at(level);
    batch_out_.assign(elen * nb, 0.0);
    gemm_batched(*ops.uc2ue, nb, ops.uc2ue_scale, "eval.s2u");
    la::scatter_columns_acc(batch_out_, slots_a_, elen, u_);
  }
}

void Evaluator::u2u() { batched() ? u2u_batched() : u2u_scalar(); }

void Evaluator::u2u_scalar() {
  // Reverse preorder = children before parents.
  for (std::size_t ri = let_.nodes.size(); ri-- > 0;) {
    const LetNode& node = let_.nodes[ri];
    if (!node.target || node.parent < 0) continue;
    if (!let_.nodes[node.parent].target) continue;
    const LevelOps ops = tables_.at(node.key.level - 1);
    const la::Matrix& m = (*ops.m2m)[morton::child_index(node.key)];
    la::gemv_acc(m,
                 std::span<const double>(u_.data() + ri * tables_.eq_len(),
                                         tables_.eq_len()),
                 std::span<double>(u_.data() +
                                       std::size_t(node.parent) *
                                           tables_.eq_len(),
                                   tables_.eq_len()));
    ctx_.flops.add("eval.u2u", la::gemv_flops(m));
  }
}

void Evaluator::u2u_batched() {
  // Deepest level first so every child's density is final before it is
  // lifted; within a level, one GEMM per child index (the eight M2M
  // operators of the paper's Table I). Child indices run high-to-low
  // to add into each parent in the same order as the scalar engine's
  // reverse-preorder sweep, so u2u rounds identically in both modes.
  const std::size_t elen = tables_.eq_len();
  for (int level = max_level_; level > min_level_; --level) {
    if (level_nodes_[level].empty()) continue;
    const LevelOps ops = tables_.at(level - 1);
    for (int ci = 7; ci >= 0; --ci) {
      slots_a_.clear();  // children
      slots_b_.clear();  // parents
      for (auto i : level_nodes_[level]) {
        const LetNode& node = let_.nodes[i];
        if (!node.target || node.parent < 0) continue;
        if (!let_.nodes[node.parent].target) continue;
        if (morton::child_index(node.key) != ci) continue;
        slots_a_.push_back(i);
        slots_b_.push_back(node.parent);
      }
      if (slots_a_.empty()) continue;
      const std::size_t nb = slots_a_.size();
      const la::Matrix& m = (*ops.m2m)[ci];
      batch_in_.resize(elen * nb);
      la::gather_columns(u_, slots_a_, elen, batch_in_);
      batch_out_.assign(elen * nb, 0.0);
      gemm_batched(m, nb, 1.0, "eval.u2u");
      la::scatter_columns_acc(batch_out_, slots_b_, elen, u_);
    }
  }
}

void Evaluator::comm_reduce() {
  ctx_.comm.cost().set_phase("eval.comm");
  reduce_upward_densities(ctx_.comm, let_, tables_.eq_len(), u_,
                          tables_.options().reduce);
}

void Evaluator::vli() {
  if (tables_.options().m2l == M2lMode::kDense) {
    batched() ? vli_dense_batched() : vli_dense_scalar();
  } else {
    batched() ? vli_fft_batched() : vli_fft_scalar();
  }
}

void Evaluator::vli_dense_scalar() {
  // Dense baseline: one gemv per (target, source) pair.
  for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
    const LetNode& node = let_.nodes[i];
    if (!node.target) continue;
    const auto list = let_.v.of(i);
    if (list.empty()) continue;
    const LevelOps ops = tables_.at(node.key.level);
    for (auto si : list) {
      const la::Matrix& m = tables_.m2l_dense(
          node.key.level, pair_offset_index(node, let_.nodes[si]));
      la::gemv_acc(m,
                   std::span<const double>(
                       u_.data() + std::size_t(si) * tables_.eq_len(),
                       tables_.eq_len()),
                   std::span<double>(
                       checkpot_.data() + i * tables_.check_len(),
                       tables_.check_len()),
                   ops.m2l_scale);
      ctx_.flops.add("eval.vli", la::gemv_flops(m));
    }
  }
}

void Evaluator::vli_dense_batched() {
  // Pairs sorted by translation offset: one GEMM per (level, offset).
  const std::size_t elen = tables_.eq_len();
  const std::size_t clen = tables_.check_len();
  std::vector<std::tuple<int, std::int32_t, std::int32_t>> pairs;
  for (int level = min_level_; level <= max_level_; ++level) {
    pairs.clear();
    for (auto i : level_nodes_[level]) {
      const LetNode& node = let_.nodes[i];
      if (!node.target) continue;
      for (auto si : let_.v.of(i))
        pairs.emplace_back(pair_offset_index(node, let_.nodes[si]), i, si);
    }
    if (pairs.empty()) continue;
    std::sort(pairs.begin(), pairs.end());
    const LevelOps ops = tables_.at(level);
    for (std::size_t r0 = 0; r0 < pairs.size();) {
      const int off = std::get<0>(pairs[r0]);
      std::size_t r1 = r0;
      slots_a_.clear();  // sources
      slots_b_.clear();  // targets
      for (; r1 < pairs.size() && std::get<0>(pairs[r1]) == off; ++r1) {
        slots_b_.push_back(std::get<1>(pairs[r1]));
        slots_a_.push_back(std::get<2>(pairs[r1]));
      }
      const std::size_t nb = r1 - r0;
      const la::Matrix& m = tables_.m2l_dense(level, off);
      batch_in_.resize(elen * nb);
      la::gather_columns(u_, slots_a_, elen, batch_in_);
      batch_out_.assign(clen * nb, 0.0);
      gemm_batched(m, nb, ops.m2l_scale, "eval.vli");
      la::scatter_columns_acc(batch_out_, slots_b_, clen, checkpot_);
      r0 = r1;
    }
  }
}

void Evaluator::vli_fft_scalar() {
  // FFT-diagonal translation, batched by level so per-octant spectra are
  // kept only for the level being processed.
  const int sd = tables_.sdim();
  const int td = tables_.tdim();
  const std::size_t vol = tables_.fft_volume();
  const auto& embed = tables_.embed_index();
  const int m = tables_.m();

  std::vector<fft::Complex> acc(static_cast<std::size_t>(td) * vol);
  for (int level = min_level_; level <= max_level_; ++level) {
    // Sources used by some target's V-list at this level.
    std::unordered_map<std::int32_t, std::vector<fft::Complex>> spectra;
    for (auto i : level_nodes_[level]) {
      if (!let_.nodes[i].target) continue;
      for (auto si : let_.v.of(i)) spectra.try_emplace(si);
    }
    if (spectra.empty()) continue;

    // Per-octant forward FFTs of the padded equivalent densities.
    for (auto& [si, spec] : spectra) {
      spec.assign(static_cast<std::size_t>(sd) * vol, fft::Complex(0, 0));
      const double* usrc = u_.data() + std::size_t(si) * tables_.eq_len();
      for (int k = 0; k < m; ++k)
        for (int c = 0; c < sd; ++c)
          spec[static_cast<std::size_t>(c) * vol + embed[k]] =
              usrc[k * sd + c];
      for (int c = 0; c < sd; ++c)
        tables_.fft().forward(
            std::span<fft::Complex>(spec.data() + std::size_t(c) * vol, vol));
      ctx_.flops.add("eval.vli", sd * tables_.fft().transform_flops());
    }

    // Diagonal translation + inverse FFT per target.
    const LevelOps ops = tables_.at(level);
    for (auto i : level_nodes_[level]) {
      const LetNode& node = let_.nodes[i];
      if (!node.target) continue;
      const auto list = let_.v.of(i);
      if (list.empty()) continue;

      std::fill(acc.begin(), acc.end(), fft::Complex(0, 0));
      for (auto si : list) {
        const auto g = tables_.m2l_spectra(
            level, pair_offset_index(node, let_.nodes[si]));
        const auto& spec = spectra.at(si);
        for (int ti = 0; ti < td; ++ti)
          for (int si_c = 0; si_c < sd; ++si_c)
            fft::pointwise_mac(
                g.subspan(std::size_t(ti * sd + si_c) * vol, vol),
                std::span<const fft::Complex>(
                    spec.data() + std::size_t(si_c) * vol, vol),
                std::span<fft::Complex>(acc.data() + std::size_t(ti) * vol,
                                        vol));
        ctx_.flops.add("eval.vli", 8ull * td * sd * vol);
      }
      for (int ti = 0; ti < td; ++ti)
        tables_.fft().inverse(
            std::span<fft::Complex>(acc.data() + std::size_t(ti) * vol, vol));
      ctx_.flops.add("eval.vli", td * tables_.fft().transform_flops());

      double* out = checkpot_.data() + std::size_t(i) * tables_.check_len();
      for (int k = 0; k < m; ++k)
        for (int ti = 0; ti < td; ++ti)
          out[k * td + ti] +=
              ops.m2l_scale *
              acc[static_cast<std::size_t>(ti) * vol + embed[k]].real();
    }
  }
}


void Evaluator::vli_fft_batched() {
  // Same math as the scalar FFT path with three structural changes:
  //  - spectra live in ONE flat buffer indexed by level-sorted source
  //    slots (slot_of_) instead of an unordered_map of vectors,
  //  - (target, source) pairs are sorted by translation-offset index so
  //    each m2l_spectra operator is fetched once per run,
  //  - spectra and accumulators are stored CHUNK-MAJOR (all slots'
  //    values for one kFreqChunk-frequency chunk contiguous) and the
  //    diagonal multiply sweeps the frequency axis in the outer loop:
  //    each chunk's working set (one chunk of every live slot) fits L2,
  //    so the MAC is compute-bound instead of re-streaming full 3-D
  //    volumes from memory for every pair.
  // Flop accounting is per-source/per-pair/per-target exactly as in the
  // scalar path, so totals are identical.
  const int sd = tables_.sdim();
  const int td = tables_.tdim();
  const std::size_t vol = tables_.fft_volume();
  const auto& embed = tables_.embed_index();
  const int m = tables_.m();
  const std::size_t elen = tables_.eq_len();
  const std::size_t clen = tables_.check_len();

  // Chunk-major addressing: value (slot_comp, q) lives at
  // buf[(q / kFreqChunk) * ncomp * kFreqChunk + slot_comp * kFreqChunk
  //     + q % kFreqChunk].
  constexpr std::size_t kFreqChunk = 16;
  PKIFMM_CHECK(vol % kFreqChunk == 0);
  const std::size_t nchunks = vol / kFreqChunk;

  slot_of_.assign(let_.nodes.size(), -1);

  std::vector<std::tuple<int, std::int32_t, std::int32_t>> pairs;
  // A run group applies one td x sd component of one offset's spectrum
  // to entries [e0, e1) of the flat fidx/aidx arrays.
  struct RunGroup {
    const fft::Complex* g;
    std::size_t e0, e1;
  };
  std::vector<RunGroup> groups;
  std::vector<std::int32_t> fidx, aidx;
  // One embed/extract-order volume per pool lane: the forward and
  // inverse transform chunks each use their executing lane's line.
  lane_line_.assign(std::size_t(pool_->lanes()) * vol, fft::Complex(0, 0));

  for (int level = min_level_; level <= max_level_; ++level) {
    // Targets with V-interactions at this level, and the flat slot
    // index of the unique sources they reference.
    slots_b_.clear();  // target node indices
    slots_a_.clear();  // source node index per slot
    for (auto i : level_nodes_[level]) {
      if (!let_.nodes[i].target) continue;
      const auto list = let_.v.of(i);
      if (list.empty()) continue;
      slots_b_.push_back(i);
      for (auto si : list)
        if (slot_of_[si] < 0) {
          slot_of_[si] = static_cast<std::int32_t>(slots_a_.size());
          slots_a_.push_back(si);
        }
    }
    if (slots_b_.empty()) continue;

    const std::size_t nsrc = slots_a_.size();
    const std::size_t ntgt = slots_b_.size();
    const std::size_t nsc = nsrc * sd;  // source slot components
    const std::size_t ntc = ntgt * td;  // target slot components

    // Forward FFT of each unique source's padded equivalent densities
    // into a contiguous volume, scattered to chunk-major slots. Each
    // chunk of slots owns disjoint spectra_ components.
    spectra_.resize(nsc * vol);
    std::atomic<std::uint64_t> fwd_flops{0};
    pool_->parallel_for(
        nsrc, kFftSlotGrain,
        [&](std::size_t b, std::size_t e, int lane) {
          const std::span<fft::Complex> line(
              lane_line_.data() + std::size_t(lane) * vol, vol);
          std::uint64_t local = 0;
          for (std::size_t sl = b; sl < e; ++sl) {
            const double* usrc = u_.data() + std::size_t(slots_a_[sl]) * elen;
            for (int c = 0; c < sd; ++c) {
              std::fill(line.begin(), line.end(), fft::Complex(0, 0));
              for (int k = 0; k < m; ++k) line[embed[k]] = usrc[k * sd + c];
              tables_.fft().forward(line);
              const std::size_t comp = sl * sd + c;
              for (std::size_t ci = 0; ci < nchunks; ++ci) {
                fft::Complex* dst =
                    spectra_.data() + (ci * nsc + comp) * kFreqChunk;
                const fft::Complex* src = line.data() + ci * kFreqChunk;
                for (std::size_t q = 0; q < kFreqChunk; ++q) dst[q] = src[q];
              }
            }
            local += sd * tables_.fft().transform_flops();
          }
          fwd_flops.fetch_add(local, std::memory_order_relaxed);
        },
        "eval.vli");
    ctx_.flops.add("eval.vli", fwd_flops.load(std::memory_order_relaxed));

    // All (target, source) pairs of the level, sorted by offset index.
    pairs.clear();
    for (std::size_t bj = 0; bj < ntgt; ++bj) {
      const std::int32_t i = slots_b_[bj];
      const LetNode& node = let_.nodes[i];
      for (auto si : let_.v.of(i))
        pairs.emplace_back(pair_offset_index(node, let_.nodes[si]),
                           static_cast<std::int32_t>(bj), slot_of_[si]);
    }
    std::sort(pairs.begin(), pairs.end());

    // One operator fetch per offset run; each td x sd component of a
    // run becomes an entry group sharing one spectrum component.
    groups.clear();
    fidx.clear();
    aidx.clear();
    for (std::size_t r0 = 0; r0 < pairs.size();) {
      const int off = std::get<0>(pairs[r0]);
      std::size_t r1 = r0;
      while (r1 < pairs.size() && std::get<0>(pairs[r1]) == off) ++r1;
      const std::size_t run = r1 - r0;
      const auto g = tables_.m2l_spectra(level, off);
      for (int ti = 0; ti < td; ++ti)
        for (int sc = 0; sc < sd; ++sc) {
          const std::size_t e0 = fidx.size();
          for (std::size_t p = 0; p < run; ++p) {
            const auto& pr = pairs[r0 + p];
            fidx.push_back(std::get<2>(pr) * sd + sc);
            aidx.push_back(std::get<1>(pr) * td + ti);
          }
          groups.push_back(
              {g.data() + std::size_t(ti * sd + sc) * vol, e0, fidx.size()});
        }
      ctx_.flops.add("eval.vli", 8ull * td * sd * vol * run);
      r0 = r1;
    }

    // Chunk-major diagonal-translation sweep. The operator slices are
    // read straight from the volume-major m2l table (a contiguous
    // kFreqChunk window per group per chunk).
    fft_acc_.assign(ntc * vol, fft::Complex(0, 0));
    const std::span<const std::int32_t> fidx_all(fidx);
    const std::span<const std::int32_t> aidx_all(aidx);
    // Frequency chunks write disjoint fft_acc_ windows, so the chunk
    // axis parallelizes with no change to per-element MAC order.
    pool_->parallel_for(
        nchunks, kFreqChunkGrain,
        [&](std::size_t cb, std::size_t ce, int) {
          for (std::size_t ci = cb; ci < ce; ++ci) {
            const fft::Complex* fb = spectra_.data() + ci * nsc * kFreqChunk;
            fft::Complex* ab = fft_acc_.data() + ci * ntc * kFreqChunk;
            const std::size_t q0 = ci * kFreqChunk;
            for (const RunGroup& grp : groups)
              fft::pointwise_mac_chunked(
                  grp.g + q0, kFreqChunk, fb, ab,
                  fidx_all.subspan(grp.e0, grp.e1 - grp.e0),
                  aidx_all.subspan(grp.e0, grp.e1 - grp.e0));
          }
        },
        "eval.vli");

    // Per-target gather back to volume order, inverse transform, and
    // surface extraction; each chunk of targets owns disjoint
    // checkpot_ rows.
    const LevelOps ops = tables_.at(level);
    std::atomic<std::uint64_t> inv_flops{0};
    pool_->parallel_for(
        ntgt, kFftSlotGrain,
        [&](std::size_t b, std::size_t e, int lane) {
          const std::span<fft::Complex> line(
              lane_line_.data() + std::size_t(lane) * vol, vol);
          std::uint64_t local = 0;
          for (std::size_t bj = b; bj < e; ++bj) {
            double* out = checkpot_.data() + std::size_t(slots_b_[bj]) * clen;
            for (int ti = 0; ti < td; ++ti) {
              const std::size_t comp = bj * td + ti;
              for (std::size_t ci = 0; ci < nchunks; ++ci) {
                const fft::Complex* src =
                    fft_acc_.data() + (ci * ntc + comp) * kFreqChunk;
                fft::Complex* dst = line.data() + ci * kFreqChunk;
                for (std::size_t q = 0; q < kFreqChunk; ++q) dst[q] = src[q];
              }
              tables_.fft().inverse(line);
              for (int k = 0; k < m; ++k)
                out[k * td + ti] += ops.m2l_scale * line[embed[k]].real();
            }
            local += td * tables_.fft().transform_flops();
          }
          inv_flops.fetch_add(local, std::memory_order_relaxed);
        },
        "eval.vli");
    ctx_.flops.add("eval.vli", inv_flops.load(std::memory_order_relaxed));

    for (auto si : slots_a_) slot_of_[si] = -1;  // reset for next level
  }
}

void Evaluator::xli(bool include_leaves) {
  const auto& kern = tables_.kernel();
  const std::size_t clen = tables_.check_len();
  std::atomic<std::uint64_t> flops{0};
  pool_->parallel_for(
      let_.nodes.size(), kNodeGrain,
      [&](std::size_t b, std::size_t e, int lane) {
        std::uint64_t local = 0;
        for (std::size_t i = b; i < e; ++i) {
          const LetNode& node = let_.nodes[i];
          if (!node.target) continue;
          if (!include_leaves && node.global_leaf) continue;
          const auto list = let_.x.of(i);
          if (list.empty()) continue;
          const auto dc =
              box_surf(tables_.options().down_check_radius, node.key, lane);
          std::span<double> out(checkpot_.data() + i * clen, clen);
          for (auto si : list)
            local += kern.direct(dc, leaf_source_positions(si),
                                 leaf_source_densities(si), out);
        }
        flops.fetch_add(local, std::memory_order_relaxed);
      },
      "eval.xli");
  ctx_.flops.add("eval.xli", flops.load(std::memory_order_relaxed));
}

void Evaluator::downward() { batched() ? downward_batched() : downward_scalar(); }

void Evaluator::downward_scalar() {
  // Preorder: parents are finalized before their children read them.
  for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
    const LetNode& node = let_.nodes[i];
    if (!node.target) continue;
    std::span<double> check(checkpot_.data() + i * tables_.check_len(),
                            tables_.check_len());
    if (node.parent >= 0 && let_.nodes[node.parent].target) {
      const LevelOps pair_ops = tables_.at(node.key.level - 1);
      const la::Matrix& l2l = (*pair_ops.l2l)[morton::child_index(node.key)];
      la::gemv_acc(l2l,
                   std::span<const double>(
                       d_.data() + std::size_t(node.parent) * tables_.eq_len(),
                       tables_.eq_len()),
                   check, pair_ops.l2l_scale);
      ctx_.flops.add("eval.down", la::gemv_flops(l2l));
    }
    const LevelOps ops = tables_.at(node.key.level);
    la::gemv_acc(*ops.dc2de, check,
                 std::span<double>(d_.data() + i * tables_.eq_len(),
                                   tables_.eq_len()),
                 ops.dc2de_scale);
    ctx_.flops.add("eval.down", la::gemv_flops(*ops.dc2de));
  }
}

void Evaluator::downward_batched() {
  // Coarsest level first: a level's check potentials receive L2L from
  // already-finalized parent densities (one GEMM per child index), then
  // ONE dc2de conversion finalizes the level's own densities.
  const std::size_t elen = tables_.eq_len();
  const std::size_t clen = tables_.check_len();
  for (int level = min_level_; level <= max_level_; ++level) {
    if (level_nodes_[level].empty()) continue;
    if (level > min_level_) {
      const LevelOps pair_ops = tables_.at(level - 1);
      for (int ci = 0; ci < 8; ++ci) {
        slots_a_.clear();  // parents
        slots_b_.clear();  // children
        for (auto i : level_nodes_[level]) {
          const LetNode& node = let_.nodes[i];
          if (!node.target || node.parent < 0) continue;
          if (!let_.nodes[node.parent].target) continue;
          if (morton::child_index(node.key) != ci) continue;
          slots_a_.push_back(node.parent);
          slots_b_.push_back(i);
        }
        if (slots_a_.empty()) continue;
        const std::size_t nb = slots_a_.size();
        const la::Matrix& l2l = (*pair_ops.l2l)[ci];
        batch_in_.resize(elen * nb);
        la::gather_columns(d_, slots_a_, elen, batch_in_);
        batch_out_.assign(clen * nb, 0.0);
        gemm_batched(l2l, nb, pair_ops.l2l_scale, "eval.down");
        la::scatter_columns_acc(batch_out_, slots_b_, clen, checkpot_);
      }
    }

    slots_a_.clear();
    for (auto i : level_nodes_[level])
      if (let_.nodes[i].target) slots_a_.push_back(i);
    if (slots_a_.empty()) continue;
    const std::size_t nb = slots_a_.size();
    const LevelOps ops = tables_.at(level);
    batch_in_.resize(clen * nb);
    la::gather_columns(checkpot_, slots_a_, clen, batch_in_);
    batch_out_.assign(elen * nb, 0.0);
    gemm_batched(*ops.dc2de, nb, ops.dc2de_scale, "eval.down");
    la::scatter_columns_acc(batch_out_, slots_a_, elen, d_);
  }
}

void Evaluator::wli() {
  const auto& kern = tables_.kernel();
  const std::size_t elen = tables_.eq_len();
  std::atomic<std::uint64_t> flops{0};
  pool_->parallel_for(
      let_.nodes.size(), kNodeGrain,
      [&](std::size_t b, std::size_t e, int lane) {
        std::uint64_t local = 0;
        for (std::size_t i = b; i < e; ++i) {
          const LetNode& node = let_.nodes[i];
          if (!(node.owned && node.global_leaf) || node.target_count == 0)
            continue;
          const auto list = let_.w.of(i);
          if (list.empty()) continue;
          const auto trg = leaf_target_positions(node);
          auto out = leaf_target_potential(node);
          for (auto si : list) {
            const auto ue = box_surf(tables_.options().upward_equiv_radius,
                                     let_.nodes[si].key, lane);
            local += kern.direct(
                trg, ue,
                std::span<const double>(u_.data() + std::size_t(si) * elen,
                                        elen),
                out);
          }
        }
        flops.fetch_add(local, std::memory_order_relaxed);
      },
      "eval.wli");
  ctx_.flops.add("eval.wli", flops.load(std::memory_order_relaxed));
}

void Evaluator::d2t() {
  const auto& kern = tables_.kernel();
  const std::size_t elen = tables_.eq_len();
  std::atomic<std::uint64_t> flops{0};
  pool_->parallel_for(
      let_.nodes.size(), kNodeGrain,
      [&](std::size_t b, std::size_t e, int lane) {
        std::uint64_t local = 0;
        for (std::size_t i = b; i < e; ++i) {
          const LetNode& node = let_.nodes[i];
          if (!(node.owned && node.global_leaf) || node.target_count == 0)
            continue;
          const auto de =
              box_surf(tables_.options().down_equiv_radius, node.key, lane);
          local += kern.direct(
              leaf_target_positions(node), de,
              std::span<const double>(d_.data() + i * elen, elen),
              leaf_target_potential(node));
        }
        flops.fetch_add(local, std::memory_order_relaxed);
      },
      "eval.d2t");
  ctx_.flops.add("eval.d2t", flops.load(std::memory_order_relaxed));
}

void Evaluator::uli() {
  if (!uli_started_) uli_start();
  uli_join();
}

void Evaluator::uli_start() {
  PKIFMM_CHECK(!uli_started_);
  uli_started_ = true;
  f_uli_.assign(f_.size(), 0.0);
  uli_flops_.store(0, std::memory_order_relaxed);
  uli_w0_ = obs::wall_seconds();
  const std::size_t n = let_.nodes.size();
  for (std::size_t b = 0; b < n; b += kNodeGrain) {
    const std::size_t e = std::min(n, b + kNodeGrain);
    pool_->submit(uli_group_, "eval.uli",
                  [this, b, e](int lane) { uli_chunk(b, e, lane); });
  }
}

void Evaluator::uli_chunk(std::size_t b, std::size_t e, int /*lane*/) {
  const auto& kern = tables_.kernel();
  const int td = tables_.tdim();
  std::uint64_t local = 0;
  for (std::size_t i = b; i < e; ++i) {
    const LetNode& node = let_.nodes[i];
    if (!(node.owned && node.global_leaf) || node.target_count == 0) continue;
    const auto trg = leaf_target_positions(node);
    std::span<double> out(f_uli_.data() + std::size_t(node.point_begin) * td,
                          std::size_t(node.target_count) * td);
    for (auto si : let_.u.of(i))
      local += kern.direct(trg, leaf_source_positions(si),
                           leaf_source_densities(si), out);
  }
  uli_flops_.fetch_add(local, std::memory_order_relaxed);
}

void Evaluator::uli_join() {
  PKIFMM_CHECK(uli_started_);
  const double join0 = obs::wall_seconds();
  pool_->wait(uli_group_);
  uli_started_ = false;
  ctx_.flops.add("eval.uli", uli_flops_.load(std::memory_order_relaxed));
  // Deterministic merge: ULI contributions were summed per target in
  // the serial per-node order inside f_uli_ regardless of which lane
  // ran which chunk, so f_ is identical for any worker count.
  for (std::size_t k = 0; k < f_.size(); ++k) f_[k] += f_uli_[k];
  // Overlap accounting: busy = total ULI execution time on any lane
  // since submission; overlap = the part that ran before the join
  // started, i.e. concurrently with the far-field pipeline.
  const double inf = std::numeric_limits<double>::infinity();
  const double busy = pool_->busy_overlap("eval.uli", uli_w0_, inf);
  const double overlap = pool_->busy_overlap("eval.uli", uli_w0_, join0);
  ctx_.rec.counter_add("sched.uli.busy_seconds", busy);
  ctx_.rec.counter_add("sched.uli.overlap_seconds", overlap);
}

std::vector<double> Evaluator::target_gradient() {
  const auto grad = tables_.kernel().gradient();
  PKIFMM_CHECK_MSG(grad != nullptr,
                   "kernel '" << tables_.kernel().name()
                              << "' has no gradient companion");
  const int gd = grad->target_dim();
  std::vector<double> g(let_.points.size() * gd, 0.0);

  for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
    const LetNode& node = let_.nodes[i];
    if (!(node.owned && node.global_leaf) || node.target_count == 0) continue;
    const auto trg = leaf_target_positions(node);
    std::span<double> out(g.data() + std::size_t(node.point_begin) * gd,
                          std::size_t(node.target_count) * gd);

    // Direct (U-list) gradients.
    for (auto si : let_.u.of(i)) {
      ctx_.flops.add("grad.uli",
                     grad->direct(trg, leaf_source_positions(si),
                                  leaf_source_densities(si), out));
    }
    // W-list: gradients of the members' upward equivalent fields.
    for (auto si : let_.w.of(i)) {
      const auto ue = box_surf(tables_.options().upward_equiv_radius,
                               let_.nodes[si].key);
      ctx_.flops.add(
          "grad.wli",
          grad->direct(trg, ue,
                       std::span<const double>(
                           u_.data() + std::size_t(si) * tables_.eq_len(),
                           tables_.eq_len()),
                       out));
    }
    // Far field (V + X + coarser levels) through the box's downward
    // equivalent density.
    const auto de =
        box_surf(tables_.options().down_equiv_radius, node.key);
    ctx_.flops.add(
        "grad.d2t",
        grad->direct(trg, de,
                     std::span<const double>(d_.data() + i * tables_.eq_len(),
                                             tables_.eq_len()),
                     out));
  }
  return g;
}

std::vector<double> leaf_work_estimates(const Tables& tables,
                                        const octree::Let& let) {
  const std::uint64_t kflops = tables.kernel().flops_per_interaction();
  const int m = tables.m();
  const double tf = static_cast<double>(tables.fft().transform_flops());

  // Source counts per node (targets and sources may differ per point).
  std::vector<double> nsrc(let.nodes.size(), 0.0);
  for (std::size_t i = 0; i < let.nodes.size(); ++i)
    for (const octree::PointRec& pt : let.points_of(let.nodes[i]))
      if (pt.is_source()) nsrc[i] += 1.0;

  std::vector<double> weights;
  for (std::size_t i = 0; i < let.nodes.size(); ++i) {
    const octree::LetNode& node = let.nodes[i];
    if (!(node.owned && node.global_leaf)) continue;
    const double ntrg = node.target_count;
    double w = 0.0;
    for (auto si : let.u.of(i)) w += ntrg * nsrc[si] * kflops;
    // V: per-pair diagonal multiply on the padded grid, plus one
    // inverse FFT on the target side and one forward FFT on the source
    // side. The forward-FFT charge is deliberately a function of the
    // leaf alone (not of how many targets consume its spectrum): the
    // weights must be identical no matter which rank currently owns
    // which leaf, so that the weighted partition is a pure function of
    // the global tree — the incremental setup path maintains that
    // partition step by step and relies on reproducing it exactly.
    const auto vlist = let.v.of(i);
    w += double(vlist.size()) * 8.0 * tables.fft_volume() *
         tables.sdim() * tables.tdim();
    if (!vlist.empty()) w += (tables.tdim() + tables.sdim()) * tf;
    w += double(let.w.of(i).size()) * ntrg * m * kflops;
    for (auto si : let.x.of(i)) w += nsrc[si] * m * kflops;
    // S2U + D2T per-leaf work.
    w += (nsrc[i] + ntrg) * m * kflops;
    weights.push_back(w);
  }
  return weights;
}

}  // namespace pkifmm::core
