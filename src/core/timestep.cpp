#include "core/timestep.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace pkifmm::core {

namespace {

/// splitmix64 — the selection hash. Mixing (gid, step) through it gives
/// a per-step pseudo-random subset that every rank agrees on without
/// communication.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Periodic wrap into [0, 1). The fold can round to exactly 1.0 for
/// tiny negative inputs; map that back to 0 (the same cube corner).
double wrap01(double x) {
  x -= std::floor(x);
  if (!(x >= 0.0) || x >= 1.0) x = 0.0;
  return x;
}

}  // namespace

TimeStepper::TimeStepper(ParallelFmm& fmm, VelocityFn velocity,
                         TimeStepOptions opts)
    : fmm_(fmm), velocity_(std::move(velocity)), opts_(opts),
      drift_(fmm.tables().options().health_drift_ratio) {
  PKIFMM_CHECK(opts_.dt > 0.0);
  PKIFMM_CHECK(opts_.move_fraction >= 0.0 && opts_.move_fraction <= 1.0);
}

void TimeStepper::health_drift_check() {
  const FmmOptions& fopts = fmm_.tables().options();
  if (!fopts.health || fopts.health_sample_rate <= 0.0) return;
  // Cumulative cross-rank sample sums from the last evaluate()'s
  // summary (null before the first evaluate — nothing to diff yet).
  const obs::Json& s = fmm_.summary();
  if (s.type() != obs::Json::Type::kObject || !s.contains("metrics")) return;
  const obs::Json& m = s.at("metrics");
  auto metric_sum = [&m](const char* name) -> double {
    if (m.type() != obs::Json::Type::kObject || !m.contains(name)) return 0.0;
    const obs::Json& e = m.at(name);
    if (e.type() != obs::Json::Type::kObject || !e.contains("sum"))
      return 0.0;
    return e.at("sum").as_double();
  };
  const double cnt = metric_sum("health.sample.count");
  const double err2 = metric_sum("health.sample.err2");
  const double ref2 = metric_sum("health.sample.ref2");
  const double d_cnt = cnt - prev_cnt_;
  const double d_err2 = err2 - prev_err2_;
  const double d_ref2 = ref2 - prev_ref2_;
  prev_cnt_ = cnt;
  prev_err2_ = err2;
  prev_ref2_ = ref2;
  if (d_cnt <= 0.0 || d_ref2 <= 0.0) return;

  const double err = std::sqrt(std::max(d_err2, 0.0) / d_ref2);
  obs::Recorder& rec = fmm_.recorder();
  rec.counter_add("health.drift.steps");
  if (drift_.observe(err)) rec.counter_add("health.drift.warnings");
  rec.counter_add("health.drift.err_max",
                  std::max(0.0, err - rec.counter("health.drift.err_max")));
}

std::size_t TimeStepper::step() {
  health_drift_check();
  // Selection threshold on the 64-bit hash value: hash < frac * 2^64.
  const double frac = opts_.move_fraction;
  const std::uint64_t threshold =
      frac >= 1.0 ? ~0ULL
                  : static_cast<std::uint64_t>(
                        frac * 18446744073709551616.0 /* 2^64 */);

  std::vector<octree::PointMove> moves;
  const octree::Let& let = fmm_.let();
  for (const octree::LetNode& node : let.nodes) {
    if (!(node.owned && node.global_leaf)) continue;
    for (const octree::PointRec& pt : let.points_of(node)) {
      if (frac < 1.0 && mix64(pt.gid ^ mix64(steps_ + 1)) >= threshold)
        continue;
      const std::array<double, 3> x{pt.pos[0], pt.pos[1], pt.pos[2]};
      const std::array<double, 3> v = velocity_(pt.gid, x, t_);
      octree::PointMove m;
      m.gid = pt.gid;
      for (int c = 0; c < 3; ++c)
        m.pos[c] = wrap01(x[c] + opts_.dt * v[c]);
      moves.push_back(m);
    }
  }

  fmm_.update_points(moves);
  t_ += opts_.dt;
  ++steps_;
  return moves.size();
}

}  // namespace pkifmm::core
