#include "core/timestep.hpp"

#include <cmath>
#include <utility>

#include "util/check.hpp"

namespace pkifmm::core {

namespace {

/// splitmix64 — the selection hash. Mixing (gid, step) through it gives
/// a per-step pseudo-random subset that every rank agrees on without
/// communication.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Periodic wrap into [0, 1). The fold can round to exactly 1.0 for
/// tiny negative inputs; map that back to 0 (the same cube corner).
double wrap01(double x) {
  x -= std::floor(x);
  if (!(x >= 0.0) || x >= 1.0) x = 0.0;
  return x;
}

}  // namespace

TimeStepper::TimeStepper(ParallelFmm& fmm, VelocityFn velocity,
                         TimeStepOptions opts)
    : fmm_(fmm), velocity_(std::move(velocity)), opts_(opts) {
  PKIFMM_CHECK(opts_.dt > 0.0);
  PKIFMM_CHECK(opts_.move_fraction >= 0.0 && opts_.move_fraction <= 1.0);
}

std::size_t TimeStepper::step() {
  // Selection threshold on the 64-bit hash value: hash < frac * 2^64.
  const double frac = opts_.move_fraction;
  const std::uint64_t threshold =
      frac >= 1.0 ? ~0ULL
                  : static_cast<std::uint64_t>(
                        frac * 18446744073709551616.0 /* 2^64 */);

  std::vector<octree::PointMove> moves;
  const octree::Let& let = fmm_.let();
  for (const octree::LetNode& node : let.nodes) {
    if (!(node.owned && node.global_leaf)) continue;
    for (const octree::PointRec& pt : let.points_of(node)) {
      if (frac < 1.0 && mix64(pt.gid ^ mix64(steps_ + 1)) >= threshold)
        continue;
      const std::array<double, 3> x{pt.pos[0], pt.pos[1], pt.pos[2]};
      const std::array<double, 3> v = velocity_(pt.gid, x, t_);
      octree::PointMove m;
      m.gid = pt.gid;
      for (int c = 0; c < 3; ++c)
        m.pos[c] = wrap01(x[c] + opts_.dt * v[c]);
      moves.push_back(m);
    }
  }

  fmm_.update_points(moves);
  t_ += opts_.dt;
  ++steps_;
  return moves.size();
}

}  // namespace pkifmm::core
