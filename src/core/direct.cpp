#include "core/direct.hpp"

namespace pkifmm::core {

std::vector<double> direct_local(const kernels::Kernel& kernel,
                                 std::span<const octree::PointRec> targets,
                                 std::span<const octree::PointRec> sources) {
  const int sd = kernel.source_dim();
  const int td = kernel.target_dim();
  std::vector<double> tpos, spos, sden;
  tpos.reserve(targets.size() * 3);
  for (const auto& t : targets)
    tpos.insert(tpos.end(), t.pos, t.pos + 3);
  spos.reserve(sources.size() * 3);
  sden.reserve(sources.size() * sd);
  for (const auto& s : sources) {
    if (!s.is_source()) continue;  // target-only points carry no density
    spos.insert(spos.end(), s.pos, s.pos + 3);
    sden.insert(sden.end(), s.den, s.den + sd);
  }
  std::vector<double> pot(targets.size() * td, 0.0);
  kernel.direct(tpos, spos, sden, pot);
  return pot;
}

std::vector<double> direct_reference(
    comm::Comm& c, const kernels::Kernel& kernel,
    std::span<const octree::PointRec> targets) {
  auto all = c.allgatherv_concat(targets);
  // NOTE: every rank must pass its full local point set for the global
  // gather to cover all sources; `targets` double as this rank's source
  // contribution.
  return direct_local(kernel, targets, all);
}

}  // namespace pkifmm::core
