#include "core/tables.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>

#include "core/surface.hpp"
#include "la/svd.hpp"
#include "util/check.hpp"

namespace pkifmm::core {

int offset_index(int dx, int dy, int dz) {
  PKIFMM_DCHECK(dx >= -3 && dx <= 3 && dy >= -3 && dy <= 3 && dz >= -3 &&
                dz <= 3);
  return ((dx + 3) * 7 + (dy + 3)) * 7 + (dz + 3);
}

bool is_vlist_offset(int dx, int dy, int dz) {
  const int c = std::max({std::abs(dx), std::abs(dy), std::abs(dz)});
  return c >= 2 && c <= 3;
}

namespace {

/// Child-center displacement signs for Morton child index i
/// (bit 0 = x, bit 1 = y, bit 2 = z, matching morton::child).
std::array<double, 3> child_center(int i, double parent_half) {
  const double q = 0.5 * parent_half;
  return {(i & 1) ? q : -q, (i & 2) ? q : -q, (i & 4) ? q : -q};
}

void decode_offset(int off, int& dx, int& dy, int& dz) {
  dz = off % 7 - 3;
  dy = (off / 7) % 7 - 3;
  dx = off / 49 - 3;
}

/// Non-geometry option validation, shared by the Tables ctor and
/// with_options so an invalid configuration is rejected wherever a
/// usable FmmOptions enters the system (mirrors the set_densities
/// rejection style).
void validate_options(const FmmOptions& opts) {
  PKIFMM_CHECK_MSG(std::isfinite(opts.health_sample_rate) &&
                       opts.health_sample_rate >= 0.0 &&
                       opts.health_sample_rate <= 1.0,
                   "health_sample_rate must be a finite fraction in [0, 1]");
  PKIFMM_CHECK_MSG(!opts.health_fatal || opts.health,
                   "health_fatal requires health");
  PKIFMM_CHECK_MSG(
      std::isfinite(opts.health_drift_ratio) && opts.health_drift_ratio > 1.0,
      "health_drift_ratio must be finite and > 1");
}

}  // namespace

Tables Tables::with_options(const FmmOptions& opts) const {
  PKIFMM_CHECK_MSG(
      opts.surface_n == opts_.surface_n &&
          opts.upward_equiv_radius == opts_.upward_equiv_radius &&
          opts.upward_check_radius == opts_.upward_check_radius &&
          opts.down_equiv_radius == opts_.down_equiv_radius &&
          opts.down_check_radius == opts_.down_check_radius &&
          opts.pinv_cutoff == opts_.pinv_cutoff,
      "with_options may not change geometry-affecting fields");
  validate_options(opts);
  Tables t = *this;
  t.opts_ = opts;
  return t;
}

Tables::Tables(const kernels::Kernel& kernel, const FmmOptions& opts)
    : kernel_(kernel), opts_(opts) {
  PKIFMM_CHECK(opts.surface_n >= 3);
  validate_options(opts);
  m_ = surface_point_count(opts.surface_n);
  sdim_ = kernel.source_dim();
  tdim_ = kernel.target_dim();
  cache_ = std::make_shared<Cache>();

  const std::size_t grid =
      fft::next_pow2(2 * static_cast<std::size_t>(opts.surface_n) - 1);
  fft_ = std::make_shared<fft::Fft3d>(grid);

  const auto& lattice = surface_lattice(opts.surface_n);
  embed_.reserve(lattice.size());
  for (const auto& ijk : lattice)
    embed_.push_back(static_cast<int>(
        (static_cast<std::size_t>(ijk[2]) * grid + ijk[1]) * grid + ijk[0]));

  // Eagerly build the reference level so concurrent ranks never race on
  // the most commonly used entry.
  level_tables(0);
}

std::unique_ptr<Tables::LevelTables> Tables::build_level(int level) const {
  const double half = 0.5 * std::pow(2.0, -level);
  const std::array<double, 3> origin = {0.0, 0.0, 0.0};
  const int n = opts_.surface_n;

  const auto ue = surface_points(n, opts_.upward_equiv_radius, origin, half);
  const auto uc = surface_points(n, opts_.upward_check_radius, origin, half);
  const auto de = surface_points(n, opts_.down_equiv_radius, origin, half);
  const auto dc = surface_points(n, opts_.down_check_radius, origin, half);

  auto t = std::make_unique<LevelTables>();
  t->uc2ue = la::pinv(kernel_.assemble(uc, ue), opts_.pinv_cutoff);
  t->dc2de = la::pinv(kernel_.assemble(dc, de), opts_.pinv_cutoff);

  const double child_half = 0.5 * half;
  for (int i = 0; i < 8; ++i) {
    const auto cc = child_center(i, half);
    const auto ue_child =
        surface_points(n, opts_.upward_equiv_radius, cc, child_half);
    t->m2m[i] = la::gemm(t->uc2ue, kernel_.assemble(uc, ue_child));
    const auto dc_child =
        surface_points(n, opts_.down_check_radius, cc, child_half);
    t->l2l[i] = kernel_.assemble(dc_child, de);
  }
  return t;
}

const Tables::LevelTables& Tables::level_tables(int level) const {
  const int key = kernel_.homogeneous() ? 0 : level;
  std::lock_guard<std::mutex> lock(cache_->mu);
  auto it = cache_->levels.find(key);
  if (it == cache_->levels.end())
    it = cache_->levels.emplace(key, build_level(key)).first;
  return *it->second;
}

LevelOps Tables::at(int level) const {
  const LevelTables& t = level_tables(level);
  LevelOps ops;
  ops.uc2ue = &t.uc2ue;
  ops.dc2de = &t.dc2de;
  ops.m2m = &t.m2m;
  ops.l2l = &t.l2l;
  if (kernel_.homogeneous()) {
    const double deg = kernel_.homogeneity_degree();
    ops.uc2ue_scale = std::pow(2.0, level * deg);
    ops.dc2de_scale = ops.uc2ue_scale;
    ops.m2l_scale = std::pow(2.0, -level * deg);
    ops.l2l_scale = ops.m2l_scale;
  } else {
    ops.uc2ue_scale = ops.dc2de_scale = 1.0;
    ops.m2l_scale = ops.l2l_scale = 1.0;
  }
  return ops;
}

std::vector<fft::Complex> Tables::build_spectra(int level,
                                                int off_index) const {
  int dx, dy, dz;
  decode_offset(off_index, dx, dy, dz);
  PKIFMM_CHECK_MSG(is_vlist_offset(dx, dy, dz),
                   "not a V-list offset: " << dx << "," << dy << "," << dz);

  const int n = opts_.surface_n;
  const double half = 0.5 * std::pow(2.0, -level);
  const double h = surface_spacing(n, opts_.upward_equiv_radius, half);
  PKIFMM_CHECK(opts_.upward_equiv_radius == opts_.down_check_radius);
  const double box = 2.0 * half;

  const std::size_t grid = fft_n();
  const std::size_t vol = fft_volume();
  std::vector<fft::Complex> out(static_cast<std::size_t>(tdim_) * sdim_ * vol,
                                fft::Complex(0, 0));

  // K(t_phys + d*h) for lattice displacements d in [-(n-1), n-1]^3,
  // wrapped circularly into the N^3 grid.
  double blk[9];
  for (int ddz = -(n - 1); ddz <= n - 1; ++ddz)
    for (int ddy = -(n - 1); ddy <= n - 1; ++ddy)
      for (int ddx = -(n - 1); ddx <= n - 1; ++ddx) {
        const double d[3] = {dx * box + ddx * h, dy * box + ddy * h,
                             dz * box + ddz * h};
        kernel_.block(d, blk);
        const std::size_t ix = (ddx + grid) % grid;
        const std::size_t iy = (ddy + grid) % grid;
        const std::size_t iz = (ddz + grid) % grid;
        const std::size_t cell = (iz * grid + iy) * grid + ix;
        for (int c = 0; c < tdim_ * sdim_; ++c)
          out[c * vol + cell] = blk[c];
      }

  for (int c = 0; c < tdim_ * sdim_; ++c)
    fft_->forward(std::span<fft::Complex>(out.data() + c * vol, vol));
  return out;
}

std::span<const fft::Complex> Tables::m2l_spectra(int level,
                                                  int off_index) const {
  const int key = kernel_.homogeneous() ? 0 : level;
  std::lock_guard<std::mutex> lock(cache_->mu);
  auto it = cache_->spectra.find({key, off_index});
  if (it == cache_->spectra.end())
    it = cache_->spectra
             .emplace(std::make_pair(key, off_index),
                      build_spectra(key, off_index))
             .first;
  return it->second;
}

la::Matrix Tables::build_dense(int level, int off_index) const {
  int dx, dy, dz;
  decode_offset(off_index, dx, dy, dz);
  PKIFMM_CHECK(is_vlist_offset(dx, dy, dz));
  const int n = opts_.surface_n;
  const double half = 0.5 * std::pow(2.0, -level);
  const double box = 2.0 * half;
  const std::array<double, 3> src_center = {0, 0, 0};
  const std::array<double, 3> trg_center = {dx * box, dy * box, dz * box};
  const auto ue = surface_points(n, opts_.upward_equiv_radius, src_center, half);
  const auto dc = surface_points(n, opts_.down_check_radius, trg_center, half);
  return kernel_.assemble(dc, ue);
}

namespace {

constexpr std::uint64_t kCacheMagic = 0x706b69666d6d5442ull;  // "pkifmmTB"

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool get(std::istream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  return bool(is);
}

void put_matrix(std::ostream& os, const la::Matrix& m) {
  put(os, static_cast<std::uint64_t>(m.rows()));
  put(os, static_cast<std::uint64_t>(m.cols()));
  os.write(reinterpret_cast<const char*>(m.data()),
           std::streamsize(m.rows() * m.cols() * sizeof(double)));
}

bool get_matrix(std::istream& is, la::Matrix& m) {
  std::uint64_t r = 0, c = 0;
  if (!get(is, r) || !get(is, c)) return false;
  if (r > (1u << 20) || c > (1u << 20)) return false;  // sanity bound
  m = la::Matrix(r, c);
  is.read(reinterpret_cast<char*>(m.data()),
          std::streamsize(r * c * sizeof(double)));
  return bool(is);
}

}  // namespace

std::size_t Tables::save_cache(const std::string& path) const {
  std::lock_guard<std::mutex> lock(cache_->mu);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  PKIFMM_CHECK_MSG(os.good(), "cannot open '" << path << "' for writing");

  put(os, kCacheMagic);
  const std::string kname = kernel_.name();
  put(os, static_cast<std::uint32_t>(kname.size()));
  os.write(kname.data(), std::streamsize(kname.size()));
  put(os, static_cast<std::int32_t>(opts_.surface_n));
  put(os, opts_.upward_equiv_radius);
  put(os, opts_.upward_check_radius);
  put(os, opts_.down_equiv_radius);
  put(os, opts_.down_check_radius);
  put(os, opts_.pinv_cutoff);

  put(os, static_cast<std::uint64_t>(cache_->levels.size()));
  for (const auto& [level, t] : cache_->levels) {
    put(os, static_cast<std::int32_t>(level));
    put_matrix(os, t->uc2ue);
    put_matrix(os, t->dc2de);
    for (const auto& m : t->m2m) put_matrix(os, m);
    for (const auto& m : t->l2l) put_matrix(os, m);
  }
  put(os, static_cast<std::uint64_t>(cache_->spectra.size()));
  for (const auto& [key, spec] : cache_->spectra) {
    put(os, static_cast<std::int32_t>(key.first));
    put(os, static_cast<std::int32_t>(key.second));
    put(os, static_cast<std::uint64_t>(spec.size()));
    os.write(reinterpret_cast<const char*>(spec.data()),
             std::streamsize(spec.size() * sizeof(fft::Complex)));
  }
  PKIFMM_CHECK_MSG(os.good(), "write to '" << path << "' failed");
  return static_cast<std::size_t>(os.tellp());
}

bool Tables::load_cache(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;

  std::uint64_t magic = 0;
  if (!get(is, magic) || magic != kCacheMagic) return false;
  std::uint32_t klen = 0;
  if (!get(is, klen) || klen > 64) return false;
  std::string kname(klen, '\0');
  is.read(kname.data(), klen);
  std::int32_t sn = 0;
  double r1, r2, r3, r4, cutoff;
  if (!get(is, sn) || !get(is, r1) || !get(is, r2) || !get(is, r3) ||
      !get(is, r4) || !get(is, cutoff))
    return false;
  if (kname != kernel_.name() || sn != opts_.surface_n ||
      r1 != opts_.upward_equiv_radius || r2 != opts_.upward_check_radius ||
      r3 != opts_.down_equiv_radius || r4 != opts_.down_check_radius ||
      cutoff != opts_.pinv_cutoff)
    return false;

  // Stage everything, then commit under the lock.
  std::map<int, std::unique_ptr<LevelTables>> levels;
  std::uint64_t nlevels = 0;
  if (!get(is, nlevels) || nlevels > 1024) return false;
  for (std::uint64_t i = 0; i < nlevels; ++i) {
    std::int32_t level = 0;
    if (!get(is, level)) return false;
    auto t = std::make_unique<LevelTables>();
    if (!get_matrix(is, t->uc2ue) || !get_matrix(is, t->dc2de)) return false;
    for (auto& m : t->m2m)
      if (!get_matrix(is, m)) return false;
    for (auto& m : t->l2l)
      if (!get_matrix(is, m)) return false;
    levels.emplace(level, std::move(t));
  }
  std::map<std::pair<int, int>, std::vector<fft::Complex>> spectra;
  std::uint64_t nspec = 0;
  if (!get(is, nspec) || nspec > (1u << 20)) return false;
  for (std::uint64_t i = 0; i < nspec; ++i) {
    std::int32_t level = 0, off = 0;
    std::uint64_t count = 0;
    if (!get(is, level) || !get(is, off) || !get(is, count) ||
        count > (1u << 24))
      return false;
    std::vector<fft::Complex> spec(count);
    is.read(reinterpret_cast<char*>(spec.data()),
            std::streamsize(count * sizeof(fft::Complex)));
    if (!is) return false;
    spectra.emplace(std::make_pair(level, off), std::move(spec));
  }

  std::lock_guard<std::mutex> lock(cache_->mu);
  cache_->levels = std::move(levels);
  cache_->spectra = std::move(spectra);
  return true;
}

const la::Matrix& Tables::m2l_dense(int level, int off_index) const {
  const int key = kernel_.homogeneous() ? 0 : level;
  std::lock_guard<std::mutex> lock(cache_->mu);
  auto it = cache_->dense.find({key, off_index});
  if (it == cache_->dense.end())
    it = cache_->dense
             .emplace(std::make_pair(key, off_index),
                      std::make_unique<la::Matrix>(build_dense(key, off_index)))
             .first;
  return *it->second;
}

}  // namespace pkifmm::core
