#include "core/reduce.hpp"

#include <algorithm>
#include <functional>
#include <map>

namespace pkifmm::core {

using morton::Bits;
using morton::Key;

namespace {

bool is_power_of_two(int p) { return p > 0 && (p & (p - 1)) == 0; }

/// Key-space interval of ranks [lo, hi]: [splitters[lo], end(hi)).
bool range_overlaps(Bits begin, Bits end, const std::vector<Bits>& splitters,
                    int lo, int hi) {
  const Bits s_lo = splitters[lo];
  const Bits s_hi = hi + 1 < static_cast<int>(splitters.size())
                        ? splitters[hi + 1]
                        : morton::range_end(morton::root());
  return begin < s_hi && s_lo < end;
}

}  // namespace

bool interest_overlaps(const Key& beta, const std::vector<Bits>& splitters,
                       int rank_lo, int rank_hi) {
  if (rank_lo > rank_hi) return false;
  if (beta.level == 0) return true;  // root's users are everyone
  for (const Key& kappa : morton::neighborhood(morton::parent(beta))) {
    if (range_overlaps(morton::range_begin(kappa), morton::range_end(kappa),
                       splitters, rank_lo, rank_hi))
      return true;
  }
  return false;
}

bool is_shared(const Key& beta, const std::vector<Bits>& splitters, int self) {
  const int p = static_cast<int>(splitters.size());
  return interest_overlaps(beta, splitters, 0, self - 1) ||
         interest_overlaps(beta, splitters, self + 1, p - 1);
}

namespace {

using Pool = std::map<Key, std::vector<double>>;

/// Serializes pool entries selected by `want` into one payload.
comm::Bytes pack_entries(const Pool& pool, [[maybe_unused]] int eq_len,
                         const std::function<bool(const Key&)>& want) {
  comm::Bytes out;
  std::uint64_t count = 0;
  for (const auto& [key, val] : pool)
    if (want(key)) ++count;
  comm::pack(out, count);
  for (const auto& [key, val] : pool) {
    if (!want(key)) continue;
    comm::pack(out, key.bits);
    comm::pack(out, key.level);
    PKIFMM_DCHECK(static_cast<int>(val.size()) == eq_len);
    for (double v : val) comm::pack(out, v);
  }
  return out;
}

/// Merges a payload into the pool, summing duplicate octants (paper
/// Algorithm 3 steps 8-10).
void merge_entries(Pool& pool, int eq_len, const comm::Bytes& payload) {
  comm::Reader r(payload);
  const auto count = r.read<std::uint64_t>();
  for (std::uint64_t e = 0; e < count; ++e) {
    Key key;
    key.bits = r.read<Bits>();
    key.level = r.read<std::uint8_t>();
    auto [it, inserted] = pool.try_emplace(key);
    if (inserted) it->second.assign(eq_len, 0.0);
    for (int i = 0; i < eq_len; ++i) it->second[i] += r.read<double>();
  }
  PKIFMM_CHECK(r.done());
}

/// Copies the complete sums back into the node array, deepest levels
/// first (deep octants gate the most downstream work, so DAG execution
/// wants their on_final signals earliest), reporting each written node
/// through `on_final` when set. The order only affects callback timing
/// — the copies land in disjoint rows.
void write_back(const Pool& pool, const octree::Let& let, int eq_len,
                std::span<double> u, const NodeFinalFn& on_final) {
  std::vector<std::pair<std::int32_t, const std::vector<double>*>> hits;
  hits.reserve(pool.size());
  for (const auto& [key, val] : pool) {
    const std::int32_t ni = let.find(key);
    if (ni >= 0) hits.emplace_back(ni, &val);
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [&](const auto& a, const auto& b) {
                     return let.nodes[static_cast<std::size_t>(a.first)]
                                .key.level >
                            let.nodes[static_cast<std::size_t>(b.first)]
                                .key.level;
                   });
  for (const auto& [ni, val] : hits) {
    std::copy(val->begin(), val->end(),
              u.begin() + std::size_t(ni) * eq_len);
    if (on_final) on_final(ni);
  }
}

/// Paper Algorithm 3: combined reduce-and-scatter over the hypercube.
void reduce_hypercube(comm::Comm& c, const octree::Let& let, int eq_len,
                      std::span<double> u, Pool pool,
                      const NodeFinalFn& on_final) {
  const int p = c.size();
  const int r = c.rank();
  PKIFMM_CHECK_MSG(is_power_of_two(p),
                   "hypercube reduce requires power-of-two ranks, got " << p);
  int d = 0;
  while ((1 << d) < p) ++d;

  // Algorithm 3 exchanges exactly one message per hypercube dimension.
  auto cs = c.cost().collective("reduce_scatter",
                                static_cast<std::uint64_t>(d));
  const int tag = 777;
  for (int i = d - 1; i >= 0; --i) {
    const int s = r ^ (1 << i);
    // Ranks reachable from the partner in the remaining rounds.
    const int us = s & ((1 << d) - (1 << i));
    const int ue = s | ((1 << i) - 1);
    comm::Bytes payload =
        pack_entries(pool, eq_len, [&](const Key& beta) {
          return interest_overlaps(beta, let.splitters, us, ue);
        });

    // Ranks still reachable from us: drop octants nobody here needs.
    const int qs = r & ((1 << d) - (1 << i));
    const int qe = r | ((1 << i) - 1);
    for (auto it = pool.begin(); it != pool.end();) {
      if (!interest_overlaps(it->first, let.splitters, qs, qe))
        it = pool.erase(it);
      else
        ++it;
    }

    c.send_bytes(s, tag + i, std::move(payload));
    merge_entries(pool, eq_len, c.recv_bytes(s, tag + i));
  }

  // Write the complete sums back into the node array.
  write_back(pool, let, eq_len, u, on_final);
}

/// The paper's previous scheme: per-octant owner reduction + broadcast.
void reduce_owner(comm::Comm& c, const octree::Let& let, int eq_len,
                  std::span<double> u, Pool pool,
                  const NodeFinalFn& on_final) {
  const int p = c.size();
  // Two alltoallv exchanges: contributors -> owner, owner -> users.
  auto cs = c.cost().collective("owner_reduce", 2);

  // Owner of an octant: the first rank whose region it overlaps.
  auto owner_of = [&](const Key& beta) {
    return octree::overlapping_ranks(beta, let.splitters).first;
  };

  // Phase 1: contributors -> owner.
  std::vector<comm::Bytes> to_owner(p);
  {
    std::vector<std::vector<std::pair<const Key*, const std::vector<double>*>>>
        grouped(p);
    for (const auto& [key, val] : pool)
      grouped[owner_of(key)].emplace_back(&key, &val);
    for (int k = 0; k < p; ++k) {
      comm::pack(to_owner[k], static_cast<std::uint64_t>(grouped[k].size()));
      for (const auto& [key, val] : grouped[k]) {
        comm::pack(to_owner[k], key->bits);
        comm::pack(to_owner[k], key->level);
        for (double v : *val) comm::pack(to_owner[k], v);
      }
    }
  }
  Pool owned;
  {
    std::vector<std::vector<std::byte>> out(p);
    for (int k = 0; k < p; ++k) out[k] = std::move(to_owner[k]);
    auto in = c.alltoallv(std::move(out));
    for (int k = 0; k < p; ++k) merge_entries(owned, eq_len, in[k]);
  }

  // Phase 2: owner -> users (broadcast of complete sums).
  {
    std::vector<std::uint64_t> counts(p, 0);
    std::vector<comm::Bytes> bodies(p);
    for (const auto& [key, val] : owned) {
      for (int k = 0; k < p; ++k) {
        if (!interest_overlaps(key, let.splitters, k, k)) continue;
        ++counts[k];
        comm::pack(bodies[k], key.bits);
        comm::pack(bodies[k], key.level);
        for (double v : val) comm::pack(bodies[k], v);
      }
    }
    std::vector<std::vector<std::byte>> out(p);
    for (int k = 0; k < p; ++k) {
      comm::Bytes b;
      comm::pack(b, counts[k]);
      b.insert(b.end(), bodies[k].begin(), bodies[k].end());
      out[k] = std::move(b);
    }
    auto in = c.alltoallv(std::move(out));
    Pool complete;
    for (int k = 0; k < p; ++k) merge_entries(complete, eq_len, in[k]);
    write_back(complete, let, eq_len, u, on_final);
  }
}

}  // namespace

void reduce_upward_densities(comm::Comm& c, const octree::Let& let,
                             int eq_len, std::span<double> u,
                             ReduceMode mode,
                             const NodeFinalFn& on_final) {
  PKIFMM_CHECK(u.size() == let.nodes.size() * static_cast<std::size_t>(eq_len));
  if (c.size() == 1) return;

  // Seed the pool with this rank's partial contributions to shared
  // octants (non-shared octants are already complete locally).
  Pool pool;
  for (std::size_t i = 0; i < let.nodes.size(); ++i) {
    const octree::LetNode& node = let.nodes[i];
    if (!node.target) continue;
    if (!is_shared(node.key, let.splitters, c.rank())) continue;
    pool.emplace(node.key,
                 std::vector<double>(u.begin() + i * eq_len,
                                     u.begin() + (i + 1) * eq_len));
  }

  switch (mode) {
    case ReduceMode::kHypercube:
      reduce_hypercube(c, let, eq_len, u, std::move(pool), on_final);
      break;
    case ReduceMode::kOwner:
      reduce_owner(c, let, eq_len, u, std::move(pool), on_final);
      break;
  }
}

}  // namespace pkifmm::core
