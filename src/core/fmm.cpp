#include "core/fmm.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "obs/aggregate.hpp"
#include "obs/flow.hpp"
#include "obs/health.hpp"
#include "octree/balance.hpp"

namespace pkifmm::core {

ParallelFmm::ParallelFmm(comm::RankCtx& ctx, const Tables& tables)
    : ctx_(ctx), tables_(tables) {
  const FmmOptions& opts = tables_.options();
  // Respect an already-bound flow recorder (a caller instrumenting a
  // wider scope than one ParallelFmm, e.g. tests); otherwise bind our
  // own for this object's lifetime.
  if (opts.flow_trace && ctx_.comm.cost().flow() == nullptr) {
    flow_ = std::make_unique<obs::FlowRecorder>(
        static_cast<std::size_t>(std::max(opts.flow_capacity, 1)),
        ctx_.rec.epoch());
    ctx_.comm.cost().bind_flow(flow_.get());
  }
  // Same respect-an-outer-binding pattern for the payload-transit
  // digests of the health layer.
  if (opts.health && !ctx_.comm.cost().payload_digests_enabled()) {
    ctx_.comm.cost().enable_payload_digests(true);
    payload_digests_bound_ = true;
  }
}

ParallelFmm::~ParallelFmm() {
  if (payload_digests_bound_) ctx_.comm.cost().enable_payload_digests(false);
  if (flow_ == nullptr) return;
  ctx_.comm.cost().bind_flow(nullptr);
  flow_->publish(ctx_.rec);
}

void ParallelFmm::set_let_gauges() {
  // Memory telemetry: what Algorithm 2's ghost exchange replicated on
  // this rank versus the whole LET (the current one — setup and each
  // incremental repair both refresh these).
  ctx_.rec.gauge_set("mem.let.ghost_bytes",
                     static_cast<double>(let_->ghost_bytes()));
  ctx_.rec.gauge_set("mem.let.total_bytes",
                     static_cast<double>(let_->total_bytes()));
}

void ParallelFmm::setup(std::vector<octree::PointRec> points) {
  const FmmOptions& opts = tables_.options();
  octree::BuildParams bp;
  bp.max_points_per_leaf = opts.max_points_per_leaf;
  bp.max_level = opts.max_level;

  // Root span only: the flat phase map keeps leaf phases disjoint so
  // prefix sums ("setup.") never double-count.
  auto root = ctx_.rec.span("setup");

  ctx_.comm.cost().set_phase("setup.tree");
  octree::OwnedTree tree;
  {
    auto t = ctx_.timer.scope("setup.tree");
    tree = octree::build_distributed_tree(ctx_.comm, std::move(points), bp);
  }

  if (opts.balance_2to1) {
    ctx_.comm.cost().set_phase("setup.b21");
    auto t = ctx_.timer.scope("setup.b21");
    (void)octree::balance_2to1(ctx_.comm, tree);
  }

  ctx_.comm.cost().set_phase("setup.let");
  {
    auto t = ctx_.timer.scope("setup.let");
    let_ = std::make_unique<octree::Let>(let_sync_.build(ctx_.comm, tree));
    octree::build_interaction_lists(*let_);
  }

  if (opts.load_balance && ctx_.comm.size() > 1) {
    ctx_.comm.cost().set_phase("setup.balance");
    auto t = ctx_.timer.scope("setup.balance");
    const auto weights = leaf_work_estimates(tables_, *let_);
    tree = octree::load_balance(ctx_.comm, std::move(tree), weights);
    let_ = std::make_unique<octree::Let>(let_sync_.build(ctx_.comm, tree));
    octree::build_interaction_lists(*let_);
  }

  // Retain the owned tree: update_points repairs it in place instead
  // of rebuilding from the point cloud.
  tree_ = std::move(tree);
  over_threshold_steps_ = 0;
  update_stats_ = {};
  set_let_gauges();
}

void ParallelFmm::set_densities(const std::vector<std::uint64_t>& gids,
                                const std::vector<double>& densities) {
  PKIFMM_CHECK(let_ != nullptr);
  const int sd = tables_.sdim();
  PKIFMM_CHECK(densities.size() == gids.size() * static_cast<std::size_t>(sd));
  std::unordered_map<std::uint64_t, std::size_t> by_gid;
  by_gid.reserve(gids.size());
  for (std::size_t i = 0; i < gids.size(); ++i) {
    const bool inserted = by_gid.emplace(gids[i], i).second;
    PKIFMM_CHECK_MSG(inserted, "set_densities: duplicate gid " << gids[i]);
  }

  std::size_t matched = 0;
  for (octree::LetNode& node : let_->nodes) {
    if (!node.owned) continue;
    for (octree::PointRec& pt : let_->points_of(node)) {
      auto it = by_gid.find(pt.gid);
      PKIFMM_CHECK_MSG(it != by_gid.end(),
                       "set_densities missing gid " << pt.gid);
      for (int c = 0; c < sd; ++c)
        pt.den[c] = densities[it->second * sd + c];
      ++matched;
    }
  }
  // Every owned point consumed one distinct map entry, so a surplus
  // entry is a gid this rank does not own.
  PKIFMM_CHECK_MSG(matched == by_gid.size(),
                   "set_densities: " << (by_gid.size() - matched)
                                     << " gid(s) not owned by this rank");

  // The retained tree is density-authoritative for the incremental
  // path: repair and the LET delta exchange re-ship leaf buckets from
  // tree_.points, so the current densities must live there too.
  for (octree::PointRec& pt : tree_.points) {
    auto it = by_gid.find(pt.gid);
    PKIFMM_CHECK_MSG(it != by_gid.end(),
                     "set_densities missing gid " << pt.gid);
    for (int c = 0; c < sd; ++c)
      pt.den[c] = densities[it->second * sd + c];
  }
  densities_dirty_ = true;
}

double ParallelFmm::evaluate_imbalance() const {
  if (summary_.type() != obs::Json::Type::kObject) return 0.0;
  if (!summary_.contains("phases")) return 0.0;
  const obs::Json& phases = summary_.at("phases");
  if (phases.type() != obs::Json::Type::kObject || !phases.contains("eval"))
    return 0.0;
  const obs::Json& eval = phases.at("eval");
  if (eval.type() != obs::Json::Type::kObject || !eval.contains("cpu"))
    return 0.0;
  const obs::Json& cpu = eval.at("cpu");
  if (cpu.type() != obs::Json::Type::kObject || !cpu.contains("imbalance"))
    return 0.0;
  return cpu.at("imbalance").as_double();
}

void ParallelFmm::full_rebuild_with(
    const std::vector<octree::PointMove>& moves) {
  // Same input validation as the incremental path, so the escape hatch
  // and the repair agree on what a malformed call is.
  {
    std::vector<std::uint64_t> gids;
    gids.reserve(moves.size());
    for (const octree::PointMove& m : moves) gids.push_back(m.gid);
    std::sort(gids.begin(), gids.end());
    PKIFMM_CHECK_MSG(
        std::adjacent_find(gids.begin(), gids.end()) == gids.end(),
        "update_points: duplicate gid in moves");
  }
  std::unordered_map<std::uint64_t, std::size_t> by_gid;
  by_gid.reserve(tree_.points.size());
  for (std::size_t i = 0; i < tree_.points.size(); ++i)
    by_gid.emplace(tree_.points[i].gid, i);
  for (const octree::PointMove& m : moves) {
    auto it = by_gid.find(m.gid);
    PKIFMM_CHECK_MSG(it != by_gid.end(), "update_points: gid "
                                             << m.gid
                                             << " is not owned by this rank");
    octree::PointRec& pt = tree_.points[it->second];
    for (int c = 0; c < 3; ++c) pt.pos[c] = m.pos[c];
  }

  ctx_.rec.counter_add("setup.incr.full_rebuilds", 1.0);
  std::vector<octree::PointRec> pts = std::move(tree_.points);
  tree_ = {};
  setup(std::move(pts));
  update_stats_ = {};
  update_stats_.full_rebuild = true;
  update_stats_.moved_points = moves.size();
  densities_dirty_ = true;
}

void ParallelFmm::update_points(const std::vector<octree::PointMove>& moves) {
  PKIFMM_CHECK_MSG(let_ != nullptr, "setup() must run before update_points()");
  const FmmOptions& opts = tables_.options();

  // Threshold mode coasts on the current partition until the measured
  // evaluate imbalance has stayed at or above the threshold for
  // repart_hysteresis consecutive calls, then re-canonicalizes with one
  // full rebuild. The imbalance comes from the cross-rank summary,
  // which is identical on every rank, so the decision is collectively
  // consistent without extra communication.
  const bool threshold_mode =
      opts.load_balance && opts.repart_imbalance_threshold > 1.0;
  // repair_tree reproduces the canonical (unbalanced) leaf set; with
  // 2:1 refinement on, only a full rebuild preserves the parity
  // contract.
  bool force_full = !opts.incremental_setup || opts.balance_2to1;
  if (!force_full && threshold_mode) {
    if (evaluate_imbalance() >= opts.repart_imbalance_threshold) {
      if (++over_threshold_steps_ >= std::max(opts.repart_hysteresis, 1)) {
        force_full = true;
        over_threshold_steps_ = 0;
      }
    } else {
      over_threshold_steps_ = 0;
    }
  }
  if (force_full) {
    full_rebuild_with(moves);
    return;
  }

  octree::BuildParams bp;
  bp.max_points_per_leaf = opts.max_points_per_leaf;
  bp.max_level = opts.max_level;

  update_stats_ = {};
  update_stats_.moved_points = moves.size();

  auto root = ctx_.rec.span("setup");

  ctx_.comm.cost().set_phase("setup.incr.tree");
  octree::RepairResult rep;
  {
    auto t = ctx_.timer.scope("setup.incr.tree");
    rep = octree::repair_tree(ctx_.comm, tree_,
                              std::span<const octree::PointMove>(moves), bp);
  }
  update_stats_.migrated_points = rep.stats.migrated_points;
  update_stats_.dirty_leaves = rep.stats.dirty_leaves;
  update_stats_.kept_leaves = rep.stats.kept_leaves;

  ctx_.comm.cost().set_phase("setup.incr.let");
  {
    auto t = ctx_.timer.scope("setup.incr.let");
    octree::LetSyncStats ls;
    octree::ListRepairStats lr;
    auto next = std::make_unique<octree::Let>(
        let_sync_.update(ctx_.comm, tree_, rep.dirty_leaves, &ls));
    octree::repair_interaction_lists(*let_, *next, &lr);
    let_ = std::move(next);
    update_stats_.ghost_octants_sent += ls.octants_sent + ls.removes_sent;
    update_stats_.ghost_ranks += ls.ranks_touched;
    update_stats_.lists_rebuilt += lr.rebuilt_targets;
    update_stats_.lists_kept += lr.kept_targets;
  }

  // Track mode (the default): re-derive the canonical work-weighted
  // destinations every step and migrate as soon as any leaf's
  // destination changed. The weights are a pure per-leaf function of
  // the global tree (ownership-independent) and the prefix scan runs
  // over the allgathered global vector, so the partition never drifts
  // from what a from-scratch setup() would choose — which is what
  // keeps the bitwise-parity contract at any rank count.
  if (opts.load_balance && !threshold_mode && ctx_.comm.size() > 1) {
    ctx_.comm.cost().set_phase("setup.incr.balance");
    auto t = ctx_.timer.scope("setup.incr.balance");
    const auto weights = leaf_work_estimates(tables_, *let_);
    const auto dest = octree::weighted_destinations(ctx_.comm, weights);
    std::uint64_t local_moves = 0;
    for (std::size_t i = 0; i < dest.size(); ++i)
      if (dest[i] != ctx_.comm.rank()) ++local_moves;
    const std::uint64_t global_moves = ctx_.comm.allreduce_sum(local_moves);
    if (global_moves > 0) {
      update_stats_.repartitioned = true;
      update_stats_.leaf_migrations = static_cast<std::size_t>(local_moves);
      tree_ = octree::migrate_leaves(ctx_.comm, std::move(tree_), dest);
      // Migration changes ownership, not bucket content: the LetSync
      // diff of the new own-key set against the retained staging is
      // the whole delta, so no leaves are dirty.
      octree::LetSyncStats ls;
      octree::ListRepairStats lr;
      auto next = std::make_unique<octree::Let>(
          let_sync_.update(ctx_.comm, tree_, {}, &ls));
      octree::repair_interaction_lists(*let_, *next, &lr);
      let_ = std::move(next);
      update_stats_.ghost_octants_sent += ls.octants_sent + ls.removes_sent;
      update_stats_.ghost_ranks += ls.ranks_touched;
      update_stats_.lists_rebuilt += lr.rebuilt_targets;
      update_stats_.lists_kept += lr.kept_targets;
    }
  }

  ctx_.rec.counter_add("setup.incr.steps", 1.0);
  ctx_.rec.counter_add("setup.incr.moved_points",
                       static_cast<double>(update_stats_.moved_points));
  ctx_.rec.counter_add("setup.incr.migrated_points",
                       static_cast<double>(update_stats_.migrated_points));
  ctx_.rec.counter_add("setup.incr.dirty_leaves",
                       static_cast<double>(update_stats_.dirty_leaves));
  ctx_.rec.counter_add("setup.incr.kept_leaves",
                       static_cast<double>(update_stats_.kept_leaves));
  ctx_.rec.counter_add("setup.incr.ghost_octants",
                       static_cast<double>(update_stats_.ghost_octants_sent));
  ctx_.rec.counter_add("setup.incr.ghost_ranks",
                       static_cast<double>(update_stats_.ghost_ranks));
  ctx_.rec.counter_add("setup.incr.lists_rebuilt",
                       static_cast<double>(update_stats_.lists_rebuilt));
  ctx_.rec.counter_add("setup.incr.lists_kept",
                       static_cast<double>(update_stats_.lists_kept));
  ctx_.rec.counter_add("setup.incr.leaf_migrations",
                       static_cast<double>(update_stats_.leaf_migrations));
  if (update_stats_.repartitioned)
    ctx_.rec.counter_add("setup.incr.repartitions", 1.0);

  set_let_gauges();
  // The delta assembly restores unchanged ghosts from staging captured
  // at SET time; the refresh at the next evaluate() re-ships current
  // densities, restoring exact agreement with a from-scratch build.
  densities_dirty_ = true;
}

ParallelFmm::Result ParallelFmm::evaluate(bool with_gradient) {
  PKIFMM_CHECK_MSG(let_ != nullptr, "setup() must run before evaluate()");
  const FmmOptions& opts = tables_.options();
  if (opts.health) {
    ++eval_count_;
    ctx_.rec.counter_add("health.steps");
  }
  Result out;
  {
    auto root = ctx_.rec.span("eval");
    ctx_.comm.cost().set_phase("eval.comm");
    if (densities_dirty_) {
      auto t = ctx_.timer.scope("eval.comm");
      octree::refresh_ghost_densities(ctx_.comm, *let_);
      densities_dirty_ = false;
    }
    if (opts.health) health_ghost_checks();

    Evaluator eval(tables_, *let_, ctx_);
    eval.run();

    std::vector<double> grad;
    if (with_gradient) {
      auto t = ctx_.timer.scope("eval.grad");
      grad = eval.target_gradient();
    }

    const int td = tables_.tdim();
    const auto f = eval.potential();
    for (const octree::LetNode& node : let_->nodes) {
      if (!(node.owned && node.global_leaf)) continue;
      const auto pts = let_->points_of(node);
      // Potentials exist only for the leading target points of each
      // leaf.
      for (std::size_t k = 0; k < node.target_count; ++k) {
        out.gids.push_back(pts[k].gid);
        const std::size_t base = (node.point_begin + k) * td;
        for (int c = 0; c < td; ++c) out.potentials.push_back(f[base + c]);
        if (with_gradient) {
          const std::size_t gbase = (node.point_begin + k) * 3;
          for (int c = 0; c < 3; ++c)
            out.gradients.push_back(grad[gbase + c]);
        }
      }
    }
  }

  // Accuracy sampling runs outside the "eval" span so a health-enabled
  // run's eval.* phase times stay comparable to a health-off run; the
  // sample's collectives and flops get their own health.sample phase.
  if (opts.health && opts.health_sample_rate > 0.0) health_sample(out);

  // Cross-rank observability gather (outside the "eval" span, charged
  // to its own phase): snapshot the flat metric table first so the
  // gather's own traffic never appears in the summary it produces,
  // then allgather the snapshots and aggregate on every rank.
  ctx_.comm.cost().set_phase("obs.gather");
  const obs::RankMetrics mine = comm::snapshot_with_counters(ctx_);
  {
    auto t = ctx_.timer.scope("obs.gather");
    summary_ = obs::summarize_metrics(obs::gather_metrics(ctx_.comm, mine));
  }
  return out;
}

void ParallelFmm::health_ghost_checks() {
  auto t = ctx_.timer.scope("health.check");
  obs::Recorder& rec = ctx_.rec;

  // Consumer side: one digest per non-owned global leaf with points —
  // exactly the ghost copies this rank received. Injection corrupts
  // the first ghost's density copy *before* digesting, so the fault is
  // both visible to this digest and consumed by the evaluation.
  bool injected = false;
  double ghost_digest = 0.0;
  for (octree::LetNode& node : let_->nodes) {
    if (node.owned || !node.global_leaf || node.point_count == 0) continue;
    auto pts = let_->points_of(node);
    if (!injected) {
      std::span<double> first_den(pts[0].den, octree::kMaxDensityDim);
      if (obs::maybe_inject(obs::InjectPhase::kGhost, ctx_.rank(),
                            first_den)) {
        injected = true;
        rec.counter_add("health.injected");
      }
    }
    obs::ChunkDigest d(morton::KeyHash{}(node.key));
    for (const octree::PointRec& pt : pts)
      for (int c = 0; c < octree::kMaxDensityDim; ++c) d.add(pt.den[c]);
    ghost_digest += d.finish();
  }

  // Owner side: one digest per ghost subscription, over the exact
  // payload refresh_ghost_densities ships (every point's den array in
  // bucket order) — a leaf consumed by two ranks contributes twice.
  // Cross-rank, Σ health.digest.den == Σ health.digest.ghost in a
  // clean run; the summary compares the two sums.
  double den_digest = 0.0;
  for (const auto& [ni, dest] : let_->ghost_subscriptions) {
    const octree::LetNode& node = let_->nodes[ni];
    obs::ChunkDigest d(morton::KeyHash{}(node.key));
    for (const octree::PointRec& pt : let_->points_of(node))
      for (int c = 0; c < octree::kMaxDensityDim; ++c) d.add(pt.den[c]);
    den_digest += d.finish();
  }
  rec.counter_add("health.digest.den", den_digest);
  rec.counter_add("health.digest.ghost", ghost_digest);
}

void ParallelFmm::health_sample(const Result& out) {
  const FmmOptions& opts = tables_.options();
  ctx_.comm.cost().set_phase("health.sample");
  auto t = ctx_.timer.scope("health.sample");
  obs::Recorder& rec = ctx_.rec;
  const int sd = tables_.sdim();
  const int td = tables_.tdim();

  // Sampled owned targets: positions plus the FMM potentials, walked
  // in the same leaf/point order evaluate() harvested Result in, so
  // `idx` indexes out.potentials directly. Membership depends only on
  // (gid, seed, step) — identical for any rank/thread count.
  std::vector<double> my_pos, my_fmm;
  double gid_digest = 0.0;
  std::size_t idx = 0;
  for (const octree::LetNode& node : let_->nodes) {
    if (!(node.owned && node.global_leaf)) continue;
    const auto pts = let_->points_of(node);
    for (std::size_t k = 0; k < node.target_count; ++k, ++idx) {
      const octree::PointRec& pt = pts[k];
      if (!obs::health_sampled(static_cast<std::int64_t>(pt.gid),
                               opts.health_seed, eval_count_,
                               opts.health_sample_rate))
        continue;
      my_pos.insert(my_pos.end(), pt.pos, pt.pos + 3);
      for (int c = 0; c < td; ++c)
        my_fmm.push_back(out.potentials[idx * td + c]);
      gid_digest += static_cast<double>(obs::health_mix64(pt.gid) >> 32);
    }
  }

  // Everyone learns every sampled position; each rank adds its own
  // sources' contribution to every one of them; an elementwise
  // sum-reduce then yields the exact all-source direct reference.
  const auto per_rank =
      ctx_.comm.allgatherv(std::span<const double>(my_pos));
  std::vector<std::size_t> offset(per_rank.size() + 1, 0);
  std::vector<double> all_pos;
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    offset[r + 1] = offset[r] + per_rank[r].size();
    all_pos.insert(all_pos.end(), per_rank[r].begin(), per_rank[r].end());
  }

  // This rank's owned sources, flattened (cold path — the sample runs
  // once per evaluate at a small rate, so allocation is fine here).
  std::vector<double> src_pos, src_den;
  for (const octree::LetNode& node : let_->nodes) {
    if (!(node.owned && node.global_leaf)) continue;
    for (const octree::PointRec& pt : let_->points_of(node)) {
      if (!pt.is_source()) continue;
      src_pos.insert(src_pos.end(), pt.pos, pt.pos + 3);
      src_den.insert(src_den.end(), pt.den, pt.den + sd);
    }
  }

  std::vector<double> ref((all_pos.size() / 3) * td, 0.0);
  ctx_.flops.add("health.sample", tables_.kernel().direct_sample(
                                      all_pos, src_pos, src_den, ref));
  const std::vector<double> ref_sum = ctx_.comm.allreduce(
      std::span<const double>(ref),
      [](double a, double b) { return a + b; });

  // Compare this rank's slice of the reduced reference against its FMM
  // values. err2/ref2 sum across ranks, so the summary-level
  // sqrt(Σerr2 / Σref2) is the exact sampled relative L2 error.
  const std::size_t base = offset[static_cast<std::size_t>(ctx_.rank())] / 3 *
                           static_cast<std::size_t>(td);
  double err2 = 0.0, ref2 = 0.0;
  for (std::size_t j = 0; j < my_fmm.size(); ++j) {
    const double r = ref_sum[base + j];
    const double diff = my_fmm[j] - r;
    err2 += diff * diff;
    ref2 += r * r;
  }
  rec.counter_add("health.sample.count",
                  static_cast<double>(my_pos.size() / 3));
  rec.counter_add("health.sample.err2", err2);
  rec.counter_add("health.sample.ref2", ref2);
  rec.counter_add("health.sample.gid_digest", gid_digest);
}

}  // namespace pkifmm::core
