#include "core/fmm.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/aggregate.hpp"
#include "obs/flow.hpp"
#include "octree/balance.hpp"

namespace pkifmm::core {

ParallelFmm::ParallelFmm(comm::RankCtx& ctx, const Tables& tables)
    : ctx_(ctx), tables_(tables) {
  const FmmOptions& opts = tables_.options();
  // Respect an already-bound flow recorder (a caller instrumenting a
  // wider scope than one ParallelFmm, e.g. tests); otherwise bind our
  // own for this object's lifetime.
  if (opts.flow_trace && ctx_.comm.cost().flow() == nullptr) {
    flow_ = std::make_unique<obs::FlowRecorder>(
        static_cast<std::size_t>(std::max(opts.flow_capacity, 1)),
        ctx_.rec.epoch());
    ctx_.comm.cost().bind_flow(flow_.get());
  }
}

ParallelFmm::~ParallelFmm() {
  if (flow_ == nullptr) return;
  ctx_.comm.cost().bind_flow(nullptr);
  flow_->publish(ctx_.rec);
}

void ParallelFmm::setup(std::vector<octree::PointRec> points) {
  const FmmOptions& opts = tables_.options();
  octree::BuildParams bp;
  bp.max_points_per_leaf = opts.max_points_per_leaf;
  bp.max_level = opts.max_level;

  // Root span only: the flat phase map keeps leaf phases disjoint so
  // prefix sums ("setup.") never double-count.
  auto root = ctx_.rec.span("setup");

  ctx_.comm.cost().set_phase("setup.tree");
  octree::OwnedTree tree;
  {
    auto t = ctx_.timer.scope("setup.tree");
    tree = octree::build_distributed_tree(ctx_.comm, std::move(points), bp);
  }

  if (opts.balance_2to1) {
    ctx_.comm.cost().set_phase("setup.b21");
    auto t = ctx_.timer.scope("setup.b21");
    (void)octree::balance_2to1(ctx_.comm, tree);
  }

  ctx_.comm.cost().set_phase("setup.let");
  {
    auto t = ctx_.timer.scope("setup.let");
    let_ = std::make_unique<octree::Let>(octree::build_let(ctx_.comm, tree));
    octree::build_interaction_lists(*let_);
  }

  if (opts.load_balance && ctx_.comm.size() > 1) {
    ctx_.comm.cost().set_phase("setup.balance");
    auto t = ctx_.timer.scope("setup.balance");
    const auto weights = leaf_work_estimates(tables_, *let_);
    tree = octree::load_balance(ctx_.comm, std::move(tree), weights);
    let_ = std::make_unique<octree::Let>(octree::build_let(ctx_.comm, tree));
    octree::build_interaction_lists(*let_);
  }

  // Memory telemetry: what Algorithm 2's ghost exchange replicated on
  // this rank versus the whole LET (the final one if load balancing
  // rebuilt it).
  ctx_.rec.gauge_set("mem.let.ghost_bytes",
                     static_cast<double>(let_->ghost_bytes()));
  ctx_.rec.gauge_set("mem.let.total_bytes",
                     static_cast<double>(let_->total_bytes()));
}

void ParallelFmm::set_densities(const std::vector<std::uint64_t>& gids,
                                const std::vector<double>& densities) {
  PKIFMM_CHECK(let_ != nullptr);
  const int sd = tables_.sdim();
  PKIFMM_CHECK(densities.size() == gids.size() * static_cast<std::size_t>(sd));
  std::unordered_map<std::uint64_t, std::size_t> by_gid;
  by_gid.reserve(gids.size());
  for (std::size_t i = 0; i < gids.size(); ++i) by_gid.emplace(gids[i], i);

  for (octree::LetNode& node : let_->nodes) {
    if (!node.owned) continue;
    for (octree::PointRec& pt : let_->points_of(node)) {
      auto it = by_gid.find(pt.gid);
      PKIFMM_CHECK_MSG(it != by_gid.end(),
                       "set_densities missing gid " << pt.gid);
      for (int c = 0; c < sd; ++c)
        pt.den[c] = densities[it->second * sd + c];
    }
  }
  densities_dirty_ = true;
}

ParallelFmm::Result ParallelFmm::evaluate(bool with_gradient) {
  PKIFMM_CHECK_MSG(let_ != nullptr, "setup() must run before evaluate()");
  Result out;
  {
    auto root = ctx_.rec.span("eval");
    ctx_.comm.cost().set_phase("eval.comm");
    if (densities_dirty_) {
      auto t = ctx_.timer.scope("eval.comm");
      octree::refresh_ghost_densities(ctx_.comm, *let_);
      densities_dirty_ = false;
    }

    Evaluator eval(tables_, *let_, ctx_);
    eval.run();

    std::vector<double> grad;
    if (with_gradient) {
      auto t = ctx_.timer.scope("eval.grad");
      grad = eval.target_gradient();
    }

    const int td = tables_.tdim();
    const auto f = eval.potential();
    for (const octree::LetNode& node : let_->nodes) {
      if (!(node.owned && node.global_leaf)) continue;
      const auto pts = let_->points_of(node);
      // Potentials exist only for the leading target points of each
      // leaf.
      for (std::size_t k = 0; k < node.target_count; ++k) {
        out.gids.push_back(pts[k].gid);
        const std::size_t base = (node.point_begin + k) * td;
        for (int c = 0; c < td; ++c) out.potentials.push_back(f[base + c]);
        if (with_gradient) {
          const std::size_t gbase = (node.point_begin + k) * 3;
          for (int c = 0; c < 3; ++c)
            out.gradients.push_back(grad[gbase + c]);
        }
      }
    }
  }

  // Cross-rank observability gather (outside the "eval" span, charged
  // to its own phase): snapshot the flat metric table first so the
  // gather's own traffic never appears in the summary it produces,
  // then allgather the snapshots and aggregate on every rank.
  ctx_.comm.cost().set_phase("obs.gather");
  const obs::RankMetrics mine = comm::snapshot_with_counters(ctx_);
  {
    auto t = ctx_.timer.scope("obs.gather");
    summary_ = obs::summarize_metrics(obs::gather_metrics(ctx_.comm, mine));
  }
  return out;
}

}  // namespace pkifmm::core
