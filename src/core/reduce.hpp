#pragma once
/// \file reduce.hpp
/// \brief Assembling complete upward densities across ranks.
///
/// After the local upward pass, the u vector of an octant only contains
/// the contribution of this rank's points. Octants whose
/// contributor/user set spans several ranks ("shared" octants) must be
/// summed across contributors and delivered to all users. Two schemes:
///
///  - kHypercube: paper Algorithm 3 — d = log2(p) rounds; in round i the
///    partner is rank XOR 2^i; octants are forwarded only if some rank
///    in the partner's reachable half uses them, and dropped once no
///    rank in our own reachable half does. Communication volume is
///    O(m (3 sqrt(p) - 2)) per rank.
///  - kOwner: the paper's *previous* scheme — every octant has an owner
///    rank that collects partials, sums, and sends the result to every
///    user. Near-root octants have O(p) users, which is exactly why
///    this collapsed at 64K processes; kept as the ablation baseline.
///
/// Both schemes block the rank thread on point-to-point receives. With
/// threads_per_rank > 1 that wait is not idle: the Evaluator submits
/// the U-list to its util::TaskPool before the upward pass, so pool
/// workers execute direct interactions throughout the reduction rounds
/// (DESIGN.md §5d — the paper hides the same latency behind its async
/// GPU ULI kernels).

#include <cstdint>
#include <functional>
#include <span>

#include "comm/comm.hpp"
#include "core/options.hpp"
#include "octree/let.hpp"

namespace pkifmm::core {

/// Per-node completion callback for reduce_upward_densities: invoked
/// with the LET node index right after that node's complete density was
/// written back into `u`. Runs on the calling (rank) thread.
using NodeFinalFn = std::function<void(std::int32_t)>;

/// Sums partial upward densities over contributors and delivers the
/// complete values to users. `u` is the per-node density array
/// (nodes * eq_len, node-major); on entry target nodes hold this rank's
/// partials, on exit every node this rank uses holds the global sum.
/// When `on_final` is set it fires once per written-back node, deepest
/// levels first — the DAG executor uses it to release dependent V-list
/// work incrementally instead of waiting for the whole reduction
/// (FmmOptions::exec_mode = kDag). Every node it reports lies in the
/// is_shared() set; nodes is_shared() predicts but no contribution
/// reached are NOT reported (the caller flushes those after return).
void reduce_upward_densities(comm::Comm& c, const octree::Let& let,
                             int eq_len, std::span<double> u,
                             ReduceMode mode,
                             const NodeFinalFn& on_final = {});

/// True iff some rank in [rank_lo, rank_hi] uses octant beta, i.e. the
/// neighborhood of beta's parent overlaps that key-space range. Exposed
/// for tests and for the GPU driver.
bool interest_overlaps(const morton::Key& beta,
                       const std::vector<morton::Bits>& splitters,
                       int rank_lo, int rank_hi);

/// True iff beta is "shared": some rank other than `self` contributes
/// to or uses beta.
bool is_shared(const morton::Key& beta,
               const std::vector<morton::Bits>& splitters, int self);

}  // namespace pkifmm::core
