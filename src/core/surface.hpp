#pragma once
/// \file surface.hpp
/// \brief Equivalent/check surface discretization.
///
/// KIFMM represents far-field (u) and local-field (d) information as
/// single-layer densities on cube surfaces around each octant. pkifmm
/// discretizes a surface as the boundary points of an n x n x n lattice
/// scaled to half-width radius_scale * r around the box center. The
/// lattice structure (rather than, say, Gauss points) is what makes the
/// V-list translation a lattice convolution and hence FFT-diagonal.

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace pkifmm::core {

/// Number of surface points of the n^3 lattice: n^3 - (n-2)^3.
int surface_point_count(int n);

/// Lattice coordinates (i,j,k) in [0,n)^3 of each surface point, in a
/// fixed deterministic order shared by all surface functions.
const std::vector<std::array<int, 3>>& surface_lattice(int n);

/// xyz-interleaved physical coordinates of the surface points for a box
/// with the given center and half-width: point p sits at
///   center + radius_scale * half_width * (-1 + 2 i_p / (n-1)).
std::vector<double> surface_points(int n, double radius_scale,
                                   const std::array<double, 3>& center,
                                   double half_width);

/// Lattice spacing of that surface: 2 * radius_scale * half_width / (n-1).
double surface_spacing(int n, double radius_scale, double half_width);

/// Allocation-free surface materialization: precomputes the unit surface
/// template (the box-independent factor of surface_points) once, then
/// writes per-box surfaces by scale+shift into caller-owned scratch.
/// materialize() produces bitwise the same coordinates as
/// surface_points(n, radius_scale, center, half_width).
class SurfaceCache {
 public:
  explicit SurfaceCache(int n);

  int count() const { return count_; }

  /// Resident bytes of the cached unit-surface template (memory
  /// telemetry: the `mem.eval.surface_bytes` gauge).
  std::size_t bytes() const { return unit_.capacity() * sizeof(double); }

  /// Writes the 3*count() xyz-interleaved coordinates of the surface of
  /// a box with the given center/half-width into out (must be sized
  /// exactly 3*count()).
  void materialize(double radius_scale, const std::array<double, 3>& center,
                   double half_width, std::span<double> out) const;

 private:
  int count_;
  std::vector<double> unit_;  ///< 3*count() values of -1 + 2 i/(n-1)
};

}  // namespace pkifmm::core
