#pragma once
/// \file timestep.hpp
/// \brief Velocity-integration time-stepping driver over ParallelFmm.
///
/// The paper's target applications advance particles through a flow
/// field and call the FMM every step on the slowly changing set. This
/// driver owns that loop: each step() forward-Euler integrates a
/// user-supplied velocity field over a (deterministically chosen)
/// subset of the owned points, wraps the positions back into the unit
/// cube, and hands the moves to ParallelFmm::update_points — so the
/// per-step setup cost tracks the churn, not N (see
/// FmmOptions::incremental_setup).
///
///   core::TimeStepper ts(fmm, [](std::uint64_t, const auto& x, double) {
///     return std::array<double, 3>{-x[1] + 0.5, x[0] - 0.5, 0.0};
///   });
///   for (int s = 0; s < steps; ++s) {
///     ts.step();                 // move points, repair tree + LET
///     auto result = fmm.evaluate();
///   }

#include <array>
#include <cstdint>
#include <functional>

#include "core/fmm.hpp"
#include "obs/health.hpp"

namespace pkifmm::core {

/// Particle velocity at (position, time). Must be a pure function of
/// its arguments (rank-independent) so every rank integrates the same
/// trajectory for a given particle regardless of which rank owns it.
using VelocityFn = std::function<std::array<double, 3>(
    std::uint64_t gid, const std::array<double, 3>& pos, double t)>;

struct TimeStepOptions {
  double dt = 1e-2;
  /// Fraction of points advanced per step — the churn knob of the
  /// amortization bench. Points are selected by a deterministic hash
  /// of (gid, step index), so the moving subset varies step to step
  /// but is identical for any rank count and any ownership. 1 moves
  /// everything.
  double move_fraction = 1.0;
};

class TimeStepper {
 public:
  TimeStepper(ParallelFmm& fmm, VelocityFn velocity,
              TimeStepOptions opts = {});

  /// Advances one step: for each selected owned point,
  /// x <- wrap(x + dt * velocity(gid, x, t)), then a collective
  /// ParallelFmm::update_points with this rank's moves. Returns how
  /// many points this rank moved.
  ///
  /// With FmmOptions::health and a positive sample rate, each step()
  /// first folds the sampled error accumulated by the evaluate()s
  /// since the previous step into the drift monitor: the per-interval
  /// error sqrt(Δerr2 / Δref2) is baselined over a short warmup, and
  /// an interval exceeding health_drift_ratio × baseline raises a
  /// `health.drift.warnings` count (`health.drift.steps` observed
  /// intervals, `health.drift.err_max` worst interval error) — the
  /// online tripwire for incremental-repair divergence.
  std::size_t step();

  double time() const { return t_; }
  std::uint64_t steps_taken() const { return steps_; }

 private:
  /// Diffs the cumulative health.sample.{count,err2,ref2} sums in the
  /// last summary against the previous step's values and feeds the
  /// interval error to drift_. The summary is identical on every rank,
  /// so the warning decision is collectively consistent.
  void health_drift_check();

  ParallelFmm& fmm_;
  VelocityFn velocity_;
  TimeStepOptions opts_;
  double t_ = 0.0;
  std::uint64_t steps_ = 0;
  obs::DriftMonitor drift_;
  double prev_cnt_ = 0.0, prev_err2_ = 0.0, prev_ref2_ = 0.0;
};

}  // namespace pkifmm::core
