#pragma once
/// \file evaluator.hpp
/// \brief The per-rank FMM evaluation engine (paper Algorithm 1 over
/// the local essential tree).
///
/// Pipeline (dependencies as in §II-A of the paper):
///   S2U -> U2U -> [reduce/scatter comm] -> {VLI, XLI} -> D2D+convert
///   -> {WLI, D2T};  ULI (direct interactions) is independent.
///
/// State vectors, all node-major and point-major within a node:
///   u        — upward equivalent densities   (nodes x m*sdim)
///   checkpot — downward check potentials     (nodes x m*tdim)
///   d        — downward equivalent densities (nodes x m*sdim)
///   f        — target potentials, aligned with Let::points
///              (points x tdim; valid for owned leaves)
///
/// The V-list translation is either FFT-diagonal (per-octant forward
/// FFTs batched by level, pointwise multiply per pair, inverse FFT per
/// target — the paper's scheme) or dense (ablation baseline).

#include <vector>

#include "comm/comm.hpp"
#include "core/reduce.hpp"
#include "core/tables.hpp"
#include "octree/let.hpp"

namespace pkifmm::core {

class Evaluator {
 public:
  Evaluator(const Tables& tables, const octree::Let& let, comm::RankCtx& ctx);

  /// Runs the full pipeline with per-phase timing/flop accounting.
  void run();

  /// Target potentials aligned with Let::points (tdim per point).
  std::span<const double> potential() const { return f_; }

  /// Gradient of the potential at the owned targets (3 values per
  /// point, aligned with Let::points), evaluated AFTER run() by
  /// re-applying the direct-type operators with the kernel's gradient
  /// companion: grad f = sum_U grad-K s + sum_W grad-K u + grad-K(de) d.
  /// The V/X far-field contributions are already folded into d. Only
  /// kernels with a gradient() companion support this (Laplace,
  /// Yukawa). This is an extension beyond the paper, which evaluates
  /// potentials only.
  std::vector<double> target_gradient();

  // Individual phases, public for focused tests and for the GPU engine
  // which substitutes some of them.
  void s2u();
  void u2u();
  void comm_reduce();
  void vli();
  /// X-list accumulation. include_leaves=false restricts to non-leaf
  /// targets (used by the GPU engine, which handles leaf targets on the
  /// device).
  void xli(bool include_leaves = true);
  void downward();
  void wli();
  void d2t();
  void uli();

  std::span<const double> u() const { return u_; }
  std::span<double> u_mutable() { return u_; }
  std::span<const double> checkpot() const { return checkpot_; }
  std::span<double> checkpot_mutable() { return checkpot_; }
  std::span<const double> d() const { return d_; }
  std::span<double> potential_mutable() { return f_; }

 private:
  /// Source points/densities of a node (points with the kSource role).
  std::span<const double> leaf_source_positions(std::size_t node) const;
  std::span<const double> leaf_source_densities(std::size_t node) const;
  /// Target points of a node (the leading target_count points).
  std::span<const double> leaf_target_positions(const octree::LetNode& n) const;
  std::span<double> leaf_target_potential(const octree::LetNode& n);

  const Tables& tables_;
  const octree::Let& let_;
  comm::RankCtx& ctx_;

  std::vector<double> u_, checkpot_, d_, f_;
  std::vector<double> pos_;                 ///< flattened Let::points coords
  std::vector<double> src_pos_, src_den_;   ///< per-node filtered sources
  std::vector<std::size_t> src_offset_;     ///< nodes+1, into src_pos_/3
};

/// Per-owned-leaf work estimates in model flops (paper §III-B: weights
/// from the U/V/W/X lists), aligned with the Morton order of owned
/// leaves. Used to drive load_balance().
std::vector<double> leaf_work_estimates(const Tables& tables,
                                        const octree::Let& let);

}  // namespace pkifmm::core
