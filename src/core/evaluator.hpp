#pragma once
/// \file evaluator.hpp
/// \brief The per-rank FMM evaluation engine (paper Algorithm 1 over
/// the local essential tree).
///
/// Pipeline (dependencies as in §II-A of the paper):
///   S2U -> U2U -> [reduce/scatter comm] -> {VLI, XLI} -> D2D+convert
///   -> {WLI, D2T};  ULI (direct interactions) is independent.
///
/// State vectors, all node-major and point-major within a node:
///   u        — upward equivalent densities   (nodes x m*sdim)
///   checkpot — downward check potentials     (nodes x m*tdim)
///   d        — downward equivalent densities (nodes x m*sdim)
///   f        — target potentials, aligned with Let::points
///              (points x tdim; valid for owned leaves)
///
/// Each translation phase exists in two executions selected by
/// FmmOptions::eval_mode (see DESIGN.md "Batched evaluation engine"):
///   kScalar  — one gemv / pointwise_mac per octant or pair (reference)
///   kBatched — level- and operator-blocked batches: U2U/L2L as one GEMM
///              per (level, child index), uc2ue/dc2de as one GEMM per
///              level, dense M2L as one GEMM per (level, offset), and
///              the FFT V-list with flat level-sorted source spectra and
///              (target, source) pairs sorted by translation offset so
///              each operator spectrum is streamed over a contiguous run.
/// Both modes account identical model flops into the same eval.* phases
/// and agree on the outputs to rounding.
///
/// The V-list translation is either FFT-diagonal (per-octant forward
/// FFTs batched by level, pointwise multiply per pair, inverse FFT per
/// target — the paper's scheme) or dense (ablation baseline).
///
/// Intra-rank parallelism (paper §V's per-node concurrency, on CPU
/// workers): every batched hot loop — per-leaf kernel evaluations,
/// batch-GEMM column windows, per-frequency-chunk V-list MACs, per-node
/// direct phases (ULI/XLI/WLI/D2T) — runs as util::TaskPool chunks over
/// pre-assigned disjoint output ranges, so results are identical for
/// any FmmOptions::threads_per_rank (see the pool's determinism
/// contract and tests/test_eval_threads.cpp). run() additionally
/// exploits Algorithm 1's phase independence: the U-list direct
/// interactions start as background tasks before S2U and execute on
/// the workers concurrently with the whole far-field pipeline —
/// including the reduce-scatter's communication wait — accumulating
/// into a private buffer that is merged into f right before the run
/// ends ("eval.uli" then measures only join + merge).

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "comm/comm.hpp"
#include "core/reduce.hpp"
#include "core/surface.hpp"
#include "core/tables.hpp"
#include "octree/let.hpp"
#include "util/task_pool.hpp"

namespace pkifmm::core {

class Evaluator {
 public:
  Evaluator(const Tables& tables, const octree::Let& let, comm::RankCtx& ctx);
  /// Joins any still-pending background ULI tasks (exception unwind
  /// path) so no task outlives the buffers it writes.
  ~Evaluator();

  /// Runs the full pipeline with per-phase timing/flop accounting.
  /// Dispatches on FmmOptions::exec_mode: kBulkSync executes the
  /// phases in sequence with a barrier between each; kDag (with the
  /// batched engine) executes them as one dependency-counted
  /// util::TaskGraph via run_dag(). Both produce bitwise-identical
  /// potentials and exact flop equality for any thread count.
  void run();

  /// Target potentials aligned with Let::points (tdim per point).
  std::span<const double> potential() const { return f_; }

  /// Gradient of the potential at the owned targets (3 values per
  /// point, aligned with Let::points), evaluated AFTER run() by
  /// re-applying the direct-type operators with the kernel's gradient
  /// companion: grad f = sum_U grad-K s + sum_W grad-K u + grad-K(de) d.
  /// The V/X far-field contributions are already folded into d. Only
  /// kernels with a gradient() companion support this (Laplace,
  /// Yukawa). This is an extension beyond the paper, which evaluates
  /// potentials only.
  std::vector<double> target_gradient();

  // Individual phases, public for focused tests and for the GPU engine
  // which substitutes some of them. Each dispatches on eval_mode.
  void s2u();
  void u2u();
  void comm_reduce();
  void vli();
  /// X-list accumulation. include_leaves=false restricts to non-leaf
  /// targets (used by the GPU engine, which handles leaf targets on the
  /// device).
  void xli(bool include_leaves = true);
  void downward();
  void wli();
  void d2t();
  void uli();

  std::span<const double> u() const { return u_; }
  std::span<double> u_mutable() { return u_; }
  std::span<const double> checkpot() const { return checkpot_; }
  std::span<double> checkpot_mutable() { return checkpot_; }
  std::span<const double> d() const { return d_; }
  std::span<double> potential_mutable() { return f_; }

 private:
  /// Source points/densities of a node (points with the kSource role).
  std::span<const double> leaf_source_positions(std::size_t node) const;
  std::span<const double> leaf_source_densities(std::size_t node) const;
  /// Target points of a node (the leading target_count points).
  std::span<const double> leaf_target_positions(const octree::LetNode& n) const;
  std::span<double> leaf_target_potential(const octree::LetNode& n);

  /// Materializes the surface of radius_scale around node's box into
  /// surf_scratch_ (invalidated by the next call) — the allocation-free
  /// replacement for building a surface vector per kernel call.
  std::span<const double> box_surf(double radius_scale, const morton::Key& k);
  /// Same, into lane-private scratch — the variant every TaskPool chunk
  /// uses so concurrent chunks never share a surface buffer.
  std::span<const double> box_surf(double radius_scale, const morton::Key& k,
                                   int lane);

  /// V-list translation offset index of a (target, source) node pair.
  int pair_offset_index(const octree::LetNode& tnode,
                        const octree::LetNode& snode) const;

  bool batched() const {
    return tables_.options().eval_mode == EvalMode::kBatched;
  }

  // Per-octant reference implementations.
  void s2u_scalar();
  void u2u_scalar();
  void vli_dense_scalar();
  void vli_fft_scalar();
  void downward_scalar();

  // Level/operator-blocked implementations (identical flop accounting).
  void s2u_batched();
  void u2u_batched();
  void vli_dense_batched();
  void vli_fft_batched();
  void downward_batched();

  /// Data-driven execution of the whole batched pipeline as one
  /// util::TaskGraph (FmmOptions::exec_mode = kDag): the bulk engine's
  /// chunks become DAG nodes, edges exist only where a chunk reads
  /// another chunk's output, and the Algorithm 3 reduce releases
  /// ghost-gated V-list work incrementally per level as complete
  /// densities arrive. See DESIGN.md "DAG executor".
  void run_dag();

  // ULI ‖ far-field overlap: uli_start() submits the per-node-range
  // U-list chunks as background pool tasks writing f_uli_; uli_join()
  // waits, folds the flops, merges f_ += f_uli_, and records the
  // overlap metrics. The public uli() is start-then-join (inline when
  // the pool has no workers).
  void uli_start();
  void uli_join();
  void uli_chunk(std::size_t b, std::size_t e, int lane);

  /// One gemm_acc over `ncols` batch columns, split into disjoint
  /// column windows over the pool (bitwise identical to the unsplit
  /// call; see la::gemm_acc_cols).
  void gemm_batched(const la::Matrix& m, std::size_t ncols, double scale,
                    const char* phase);

  /// Publishes scratch-buffer capacities as `mem.eval.*` byte gauges
  /// (run() calls this after the pipeline; see DESIGN.md §5b).
  void publish_mem_gauges();

  // Health-layer phase-boundary sentinels (FmmOptions::health,
  // DESIGN.md §5g): NaN/Inf scans, the moment invariant, and
  // order-independent state digests, recorded as `health.*` counters
  // (hard failures under health_fatal). No-ops when health is off. In
  // bulk-sync mode each runs at its phase boundary; run_dag has no
  // boundaries, so all three run post-drain (injected corruption is
  // still caught by the digests, just not mid-pipeline).
  void health_post_s2u();    ///< owned-leaf upward densities
  void health_post_reduce(); ///< reduced upward densities (all owned)
  void health_post_run();    ///< final potentials (owned leaf targets)

  const Tables& tables_;
  const octree::Let& let_;
  comm::RankCtx& ctx_;

  std::vector<double> u_, checkpot_, d_, f_;
  std::vector<double> pos_;                 ///< flattened Let::points coords
  std::vector<double> src_pos_, src_den_;   ///< per-node filtered sources
  std::vector<std::size_t> src_offset_;     ///< nodes+1, into src_pos_/3

  SurfaceCache surf_;                       ///< unit surface template
  std::vector<double> surf_scratch_;        ///< one materialized surface

  /// Node indices grouped by octree level (node order within a level),
  /// the grouping key of every batched phase.
  int min_level_ = 0, max_level_ = -1;
  std::vector<std::vector<std::int32_t>> level_nodes_;

  // Batch scratch, reused across phases/levels (kept allocated).
  std::vector<double> batch_in_, batch_out_, batch_tmp_;
  std::vector<std::int32_t> slots_a_, slots_b_;
  std::vector<fft::Complex> spectra_, fft_acc_;
  std::vector<std::int32_t> slot_of_;       ///< node -> level source slot

  // Intra-rank scheduling. pool_ is ctx.pool when the Runtime provided
  // one, else owned_pool_ sized from FmmOptions::threads_per_rank.
  // Chunk grains are constants so the chunk decomposition — and with it
  // the output — never depends on the worker count.
  static constexpr std::size_t kNodeGrain = 16;  ///< nodes per direct chunk
  static constexpr std::size_t kColGrain = 64;   ///< GEMM columns per chunk
  static constexpr std::size_t kFftSlotGrain = 4;   ///< fwd/inv FFTs per chunk
  static constexpr std::size_t kFreqChunkGrain = 2; ///< V-list chunks per task
  std::unique_ptr<util::TaskPool> owned_pool_;
  util::TaskPool* pool_ = nullptr;
  std::vector<double> lane_surf_;        ///< lanes x 3*surf count
  std::vector<fft::Complex> lane_line_;  ///< lanes x fft volume

  // Background-ULI state (see uli_start/uli_join).
  std::vector<double> f_uli_;            ///< ULI-only potentials
  util::TaskPool::Group uli_group_;
  std::atomic<std::uint64_t> uli_flops_{0};
  bool uli_started_ = false;
  double uli_w0_ = 0.0;                  ///< overlap window start
};

/// Per-owned-leaf work estimates in model flops (paper §III-B: weights
/// from the U/V/W/X lists), aligned with the Morton order of owned
/// leaves. Used to drive load_balance().
std::vector<double> leaf_work_estimates(const Tables& tables,
                                        const octree::Let& let);

}  // namespace pkifmm::core
