#include "gpu/device.hpp"

#include <algorithm>

namespace pkifmm::gpu {

void StreamDevice::launch(const std::string& name, std::size_t grid,
                          int block_size,
                          const std::function<void(BlockCtx&)>& fn) {
  PKIFMM_CHECK(block_size > 0);
  std::uint64_t flops = 0, bytes = 0;
  BlockCtx ctx(0, block_size);
  ctx.penalty_ = spec_.uncoalesced_penalty;
  for (std::size_t b = 0; b < grid; ++b) {
    ctx.block_ = b;
    fn(ctx);
  }
  flops = ctx.recorded_flops();
  bytes = ctx.recorded_bytes();

  KernelStats& ks = kernels_[name];
  ++ks.launches;
  ks.flops += flops;
  ks.gmem_bytes += bytes;
  ks.modeled_seconds +=
      spec_.kernel_launch_s +
      std::max(static_cast<double>(flops) / spec_.flop_rate,
               static_cast<double>(bytes) / spec_.gmem_bandwidth);
}

double StreamDevice::modeled_seconds() const {
  double total = transfer_seconds_;
  for (const auto& [name, ks] : kernels_) total += ks.modeled_seconds;
  return total;
}

void StreamDevice::reset_stats() {
  kernels_.clear();
  transfer_bytes_ = 0;
  transfer_seconds_ = 0.0;
}

}  // namespace pkifmm::gpu
