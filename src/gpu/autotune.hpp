#pragma once
/// \file autotune.hpp
/// \brief Points-per-box autotuning (paper §V, Table III: "This
/// resembles the tuning phase and can be part of an autotuning
/// algorithm").
///
/// The optimal q trades the U-list (GPU-friendly, grows with q) against
/// the V-list and per-box overheads (shrink with q). autotune_q runs a
/// pilot evaluation on a sample of the points for each candidate q and
/// returns the one with the smallest modeled evaluation time (device
/// roofline + host work at the CostModel CPU rate).
///
/// Call it *outside* any SPMD region; it spawns its own single-rank
/// runtime per candidate.

#include <map>
#include <span>

#include "comm/cost.hpp"
#include "core/tables.hpp"
#include "gpu/device.hpp"
#include "octree/points.hpp"

namespace pkifmm::gpu {

struct AutotuneResult {
  int best_q = 0;
  /// Modeled evaluation seconds per candidate (on the pilot sample).
  std::map<int, double> modeled_seconds;
};

/// Evaluates each candidate q on `sample` (a representative subset of
/// the real points; densities are ignored) and returns the best. The
/// base tables supply kernel/accuracy geometry; candidates must be
/// positive. `spec`/`model` configure the device and CPU rates.
AutotuneResult autotune_q(const core::Tables& base_tables,
                          std::span<const octree::PointRec> sample,
                          std::span<const int> candidates,
                          const DeviceSpec& spec = {},
                          const comm::CostModel& model = {});

}  // namespace pkifmm::gpu
