#include "gpu/kernels.hpp"

#include <cmath>
#include <numbers>

namespace pkifmm::gpu {

namespace {
constexpr float kOneOver4Pi = static_cast<float>(1.0 / (4.0 * std::numbers::pi));

/// The paper's self-interaction trick (§IV): for r = 0 the reciprocal
/// square root is +inf; x + (x - x) turns inf into NaN, and IEEE
/// max(NaN, 0) = 0 removes the contribution without a branch.
inline float laplace_kernel_value(float r2) {
  const float inv = 1.0f / std::sqrt(r2);
  const float cleaned = inv + (inv - inv);
  return std::fmax(cleaned, 0.0f);
}
}  // namespace

Workspace make_workspace(StreamDevice& dev, const GpuLet& g) {
  Workspace ws;
  ws.sx = dev.to_device(std::span<const float>(g.sx));
  ws.sy = dev.to_device(std::span<const float>(g.sy));
  ws.sz = dev.to_device(std::span<const float>(g.sz));
  ws.sq = dev.to_device(std::span<const float>(g.sq));
  ws.tx = dev.to_device(std::span<const float>(g.tx));
  ws.ty = dev.to_device(std::span<const float>(g.ty));
  ws.tz = dev.to_device(std::span<const float>(g.tz));
  ws.f = dev.alloc<float>(g.padded_targets(), 0.0f);
  return ws;
}

std::uint64_t run_uli(StreamDevice& dev, const GpuLet& g, Workspace& ws) {
  const int b = g.block;
  std::uint64_t total_flops = 0;
  std::vector<float> acc(b);

  dev.launch("uli", g.chunks(), b, [&](BlockCtx& ctx) {
    const std::size_t blk = ctx.block_index();
    const GpuLet::Box& box = g.boxes[g.chunk_box[blk]];
    const std::int32_t t0 = g.chunk_trg[blk];

    // Each thread loads its target point (coalesced).
    ctx.load_global(3 * sizeof(float) * b);
    std::fill(acc.begin(), acc.end(), 0.0f);

    auto tile = ctx.shared(4 * static_cast<std::size_t>(b));
    for (std::int32_t seg = box.seg_begin; seg < box.seg_end; ++seg) {
      const std::int32_t sb = g.seg_src_begin[seg];
      const std::int32_t sc = g.seg_src_count[seg];
      for (std::int32_t base = 0; base < sc; base += b) {
        const int tn = std::min<std::int32_t>(b, sc - base);
        // Cooperative tile load into shared memory; the U-list is
        // sparse so tiles may be partial (the paper's coalescing
        // caveat) — model short tiles as uncoalesced.
        for (int j = 0; j < tn; ++j) {
          tile[4 * j + 0] = ws.sx.data()[sb + base + j];
          tile[4 * j + 1] = ws.sy.data()[sb + base + j];
          tile[4 * j + 2] = ws.sz.data()[sb + base + j];
          tile[4 * j + 3] = ws.sq.data()[sb + base + j];
        }
        ctx.load_global(4 * sizeof(float) * tn, /*coalesced=*/tn == b);
        // __syncthreads();
        for (int tid = 0; tid < b; ++tid) {
          const float px = ws.tx.data()[t0 + tid];
          const float py = ws.ty.data()[t0 + tid];
          const float pz = ws.tz.data()[t0 + tid];
          float a = acc[tid];
          for (int j = 0; j < tn; ++j) {
            const float dx = px - tile[4 * j + 0];
            const float dy = py - tile[4 * j + 1];
            const float dz = pz - tile[4 * j + 2];
            const float r2 = dx * dx + dy * dy + dz * dz;
            a += tile[4 * j + 3] * laplace_kernel_value(r2);
          }
          acc[tid] = a;
        }
        ctx.flops(10ull * b * tn);
        // __syncthreads();
      }
    }
    // Write back only the valid targets of this chunk.
    const int valid =
        std::min<std::int32_t>(b, box.count - (t0 - box.trg_begin));
    for (int tid = 0; tid < valid; ++tid)
      ws.f.data()[t0 + tid] += kOneOver4Pi * acc[tid];
    ctx.store_global(sizeof(float) * std::max(valid, 0));
    total_flops = ctx.recorded_flops();
  });
  return total_flops;
}

std::vector<float> run_s2u_check(StreamDevice& dev, const GpuLet& g,
                                 const std::vector<float>& unit,
                                 float radius, std::uint64_t* flops) {
  const int b = g.block;
  const int m = g.m;
  PKIFMM_CHECK(static_cast<int>(unit.size()) == 3 * m);
  auto check = dev.alloc<float>(g.boxes.size() * static_cast<std::size_t>(m),
                                0.0f);
  std::vector<float> acc(m);

  dev.launch("s2u", g.boxes.size(), b, [&](BlockCtx& ctx) {
    const GpuLet::Box& box = g.boxes[ctx.block_index()];
    const float r = radius * box.hw;
    std::fill(acc.begin(), acc.end(), 0.0f);
    auto tile = ctx.shared(4 * static_cast<std::size_t>(b));

    for (std::int32_t base = 0; base < box.src_count; base += b) {
      const int tn = std::min<std::int32_t>(b, box.src_count - base);
      for (int j = 0; j < tn; ++j) {
        tile[4 * j + 0] = g.sx[box.src_begin + base + j];
        tile[4 * j + 1] = g.sy[box.src_begin + base + j];
        tile[4 * j + 2] = g.sz[box.src_begin + base + j];
        tile[4 * j + 3] = g.sq[box.src_begin + base + j];
      }
      ctx.load_global(4 * sizeof(float) * tn, tn == b);
      // Check-point coordinates come from the constant unit lattice
      // (paper: "permanently resident in the shared memory of the
      // blocks... minimizes memory fetches").
      for (int k = 0; k < m; ++k) {
        const float px = box.cx + r * unit[3 * k + 0];
        const float py = box.cy + r * unit[3 * k + 1];
        const float pz = box.cz + r * unit[3 * k + 2];
        float a = acc[k];
        for (int j = 0; j < tn; ++j) {
          const float dx = px - tile[4 * j + 0];
          const float dy = py - tile[4 * j + 1];
          const float dz = pz - tile[4 * j + 2];
          a += tile[4 * j + 3] *
               laplace_kernel_value(dx * dx + dy * dy + dz * dz);
        }
        acc[k] = a;
      }
      ctx.flops(10ull * m * tn);
    }
    float* out = check.data() + ctx.block_index() * m;
    for (int k = 0; k < m; ++k) out[k] = kOneOver4Pi * acc[k];
    ctx.store_global(sizeof(float) * m);
    if (flops) *flops = ctx.recorded_flops();
  });
  return dev.to_host(check);
}

std::uint64_t run_d2t(StreamDevice& dev, const GpuLet& g,
                      const std::vector<float>& unit, float radius,
                      const std::vector<float>& d_per_box, Workspace& ws) {
  const int b = g.block;
  const int m = g.m;
  PKIFMM_CHECK(d_per_box.size() == g.boxes.size() * static_cast<std::size_t>(m));
  auto dd = dev.to_device(std::span<const float>(d_per_box));
  std::uint64_t total_flops = 0;

  dev.launch("d2t", g.chunks(), b, [&](BlockCtx& ctx) {
    const std::size_t blk = ctx.block_index();
    const std::int32_t bi = g.chunk_box[blk];
    const GpuLet::Box& box = g.boxes[bi];
    const std::int32_t t0 = g.chunk_trg[blk];
    const float r = radius * box.hw;

    // Densities of this box into shared memory.
    auto dsh = ctx.shared(m);
    for (int k = 0; k < m; ++k) dsh[k] = dd.data()[bi * m + k];
    ctx.load_global(sizeof(float) * m);
    ctx.load_global(3 * sizeof(float) * b);  // targets

    const int valid =
        std::min<std::int32_t>(b, box.count - (t0 - box.trg_begin));
    for (int tid = 0; tid < valid; ++tid) {
      const float px = ws.tx.data()[t0 + tid];
      const float py = ws.ty.data()[t0 + tid];
      const float pz = ws.tz.data()[t0 + tid];
      float a = 0.0f;
      for (int k = 0; k < m; ++k) {
        const float dx = px - (box.cx + r * unit[3 * k + 0]);
        const float dy = py - (box.cy + r * unit[3 * k + 1]);
        const float dz = pz - (box.cz + r * unit[3 * k + 2]);
        a += dsh[k] * laplace_kernel_value(dx * dx + dy * dy + dz * dz);
      }
      ws.f.data()[t0 + tid] += kOneOver4Pi * a;
    }
    ctx.flops(10ull * std::max(valid, 0) * m);
    ctx.store_global(sizeof(float) * std::max(valid, 0));
    total_flops = ctx.recorded_flops();
  });
  return total_flops;
}

std::vector<std::complex<float>> run_vli_diag(StreamDevice& dev,
                                              const VliBatch& batch,
                                              std::uint64_t* flops) {
  const std::size_t vol = batch.vol;
  const std::size_t ntargets = batch.target_offset.size() - 1;
  auto src = dev.to_device(std::span<const std::complex<float>>(
      batch.src_spectra));
  auto gsp = dev.to_device(std::span<const std::complex<float>>(
      batch.g_spectra));
  auto out = dev.alloc<std::complex<float>>(ntargets * vol,
                                            std::complex<float>(0, 0));

  dev.launch("vli", ntargets, 128, [&](BlockCtx& ctx) {
    const std::size_t t = ctx.block_index();
    std::complex<float>* acc = out.data() + t * vol;
    for (std::int32_t p = batch.target_offset[t];
         p < batch.target_offset[t + 1]; ++p) {
      const std::complex<float>* s =
          src.data() + static_cast<std::size_t>(batch.pair_src[p]) * vol;
      const std::complex<float>* gg =
          gsp.data() + static_cast<std::size_t>(batch.pair_g[p]) * vol;
      for (std::size_t i = 0; i < vol; ++i) acc[i] += gg[i] * s[i];
      // Low arithmetic intensity: 8 flops per 16 loaded bytes — this is
      // why the paper calls VLI "the least efficient in the GPU".
      ctx.load_global(2 * vol * sizeof(std::complex<float>));
      ctx.flops(8ull * vol);
    }
    ctx.store_global(vol * sizeof(std::complex<float>));
    if (flops) *flops = ctx.recorded_flops();
  });
  return dev.to_host(out);
}

std::uint64_t run_wli(StreamDevice& dev, const GpuLet& g,
                      const std::vector<float>& unit, float radius,
                      const std::vector<float>& u_per_slot, Workspace& ws) {
  const int b = g.block;
  const int m = g.m;
  PKIFMM_CHECK(u_per_slot.size() == g.wsrc_node.size() * std::size_t(m));
  auto uu = dev.to_device(std::span<const float>(u_per_slot));
  std::uint64_t total_flops = 0;

  dev.launch("wli", g.chunks(), b, [&](BlockCtx& ctx) {
    const std::size_t blk = ctx.block_index();
    const GpuLet::Box& box = g.boxes[g.chunk_box[blk]];
    if (box.wseg_begin == box.wseg_end) return;
    const std::int32_t t0 = g.chunk_trg[blk];
    ctx.load_global(3 * sizeof(float) * b);  // targets

    const int valid =
        std::min<std::int32_t>(b, box.count - (t0 - box.trg_begin));
    auto dsh = ctx.shared(m);
    for (std::int32_t s = box.wseg_begin; s < box.wseg_end; ++s) {
      const std::int32_t slot = g.wseg_slot[s];
      // Source equivalent densities into shared memory; positions come
      // from the constant unit lattice scaled by the W-member geometry.
      for (int k = 0; k < m; ++k) dsh[k] = uu.data()[slot * m + k];
      ctx.load_global(sizeof(float) * m);
      const float r = radius * g.wsrc_hw[slot];
      const float cx = g.wsrc_cx[slot], cy = g.wsrc_cy[slot],
                  cz = g.wsrc_cz[slot];
      for (int tid = 0; tid < valid; ++tid) {
        const float px = ws.tx.data()[t0 + tid];
        const float py = ws.ty.data()[t0 + tid];
        const float pz = ws.tz.data()[t0 + tid];
        float a = 0.0f;
        for (int k = 0; k < m; ++k) {
          const float dx = px - (cx + r * unit[3 * k + 0]);
          const float dy = py - (cy + r * unit[3 * k + 1]);
          const float dz = pz - (cz + r * unit[3 * k + 2]);
          a += dsh[k] * laplace_kernel_value(dx * dx + dy * dy + dz * dz);
        }
        ws.f.data()[t0 + tid] += kOneOver4Pi * a;
      }
      ctx.flops(10ull * std::max(valid, 0) * m);
    }
    ctx.store_global(sizeof(float) * std::max(valid, 0));
    total_flops = ctx.recorded_flops();
  });
  return total_flops;
}

std::vector<float> run_xli(StreamDevice& dev, const GpuLet& g,
                           const std::vector<float>& unit, float radius,
                           std::uint64_t* flops) {
  const int b = g.block;
  const int m = g.m;
  auto check = dev.alloc<float>(g.boxes.size() * static_cast<std::size_t>(m),
                                0.0f);
  std::vector<float> acc(m);

  dev.launch("xli", g.boxes.size(), b, [&](BlockCtx& ctx) {
    const GpuLet::Box& box = g.boxes[ctx.block_index()];
    if (box.xseg_begin == box.xseg_end) {
      if (flops) *flops = ctx.recorded_flops();
      return;
    }
    const float r = radius * box.hw;
    std::fill(acc.begin(), acc.end(), 0.0f);
    auto tile = ctx.shared(4 * static_cast<std::size_t>(b));

    for (std::int32_t seg = box.xseg_begin; seg < box.xseg_end; ++seg) {
      const std::int32_t sb = g.xseg_src_begin[seg];
      const std::int32_t sc = g.xseg_src_count[seg];
      for (std::int32_t base = 0; base < sc; base += b) {
        const int tn = std::min<std::int32_t>(b, sc - base);
        for (int j = 0; j < tn; ++j) {
          tile[4 * j + 0] = g.sx[sb + base + j];
          tile[4 * j + 1] = g.sy[sb + base + j];
          tile[4 * j + 2] = g.sz[sb + base + j];
          tile[4 * j + 3] = g.sq[sb + base + j];
        }
        ctx.load_global(4 * sizeof(float) * tn, tn == b);
        for (int k = 0; k < m; ++k) {
          const float px = box.cx + r * unit[3 * k + 0];
          const float py = box.cy + r * unit[3 * k + 1];
          const float pz = box.cz + r * unit[3 * k + 2];
          float a = acc[k];
          for (int j = 0; j < tn; ++j) {
            const float dx = px - tile[4 * j + 0];
            const float dy = py - tile[4 * j + 1];
            const float dz = pz - tile[4 * j + 2];
            a += tile[4 * j + 3] *
                 laplace_kernel_value(dx * dx + dy * dy + dz * dz);
          }
          acc[k] = a;
        }
        ctx.flops(10ull * m * tn);
      }
    }
    float* out = check.data() + ctx.block_index() * m;
    for (int k = 0; k < m; ++k) out[k] = kOneOver4Pi * acc[k];
    ctx.store_global(sizeof(float) * m);
    if (flops) *flops = ctx.recorded_flops();
  });
  return dev.to_host(check);
}

void scatter_potentials(StreamDevice& dev, const GpuLet& g,
                        const Workspace& ws, std::span<double> f_out) {
  const auto f = dev.to_host(ws.f);
  for (const GpuLet::Box& box : g.boxes) {
    for (std::int32_t k = 0; k < box.count; ++k)
      f_out[box.let_point_begin + k] +=
          static_cast<double>(f[box.trg_begin + k]);
  }
}

}  // namespace pkifmm::gpu
