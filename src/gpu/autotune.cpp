#include "gpu/autotune.hpp"

#include "comm/comm.hpp"
#include "core/fmm.hpp"
#include "gpu/evaluator.hpp"

namespace pkifmm::gpu {

AutotuneResult autotune_q(const core::Tables& base_tables,
                          std::span<const octree::PointRec> sample,
                          std::span<const int> candidates,
                          const DeviceSpec& spec,
                          const comm::CostModel& model) {
  PKIFMM_CHECK(!candidates.empty());
  PKIFMM_CHECK(!sample.empty());

  AutotuneResult result;
  double best = 0.0;
  for (int q : candidates) {
    PKIFMM_CHECK(q >= 1);
    core::FmmOptions opts = base_tables.options();
    opts.max_points_per_leaf = q;
    opts.load_balance = false;
    const core::Tables tables = base_tables.with_options(opts);

    double modeled = 0.0;
    std::vector<octree::PointRec> pts(sample.begin(), sample.end());
    comm::Runtime::run(1, [&](comm::RankCtx& ctx) {
      core::ParallelFmm fmm(ctx, tables);
      fmm.setup(std::move(pts));
      StreamDevice dev(spec);
      GpuEvaluator eval(tables, fmm.let(), ctx, dev, 64);
      eval.run();

      // Host-resident phases at the model CPU rate; device phases from
      // the roofline model.
      std::uint64_t host_flops = 0;
      for (const auto& [name, f] : ctx.flops.phases()) {
        const bool on_device = name == "eval.uli" || name == "eval.s2u" ||
                               name == "eval.d2t" || name == "eval.vli";
        if (!on_device) host_flops += f;
      }
      modeled = model.compute_time(host_flops) + dev.modeled_seconds();
    });
    result.modeled_seconds[q] = modeled;
    if (result.best_q == 0 || modeled < best) {
      best = modeled;
      result.best_q = q;
    }
  }
  return result;
}

}  // namespace pkifmm::gpu
