#include "gpu/soa.hpp"

#include <unordered_map>

namespace pkifmm::gpu {

std::size_t GpuLet::footprint_bytes() const {
  std::size_t total = 0;
  total += (sx.size() + sy.size() + sz.size() + sq.size()) * sizeof(float);
  total += (tx.size() + ty.size() + tz.size()) * sizeof(float);
  total += boxes.size() * sizeof(Box);
  total += (chunk_box.size() + chunk_trg.size()) * sizeof(std::int32_t);
  total += (seg_src_begin.size() + seg_src_count.size()) * sizeof(std::int32_t);
  total +=
      (xseg_src_begin.size() + xseg_src_count.size()) * sizeof(std::int32_t);
  total += (wseg_slot.size() + wsrc_node.size()) * sizeof(std::int32_t);
  total += (wsrc_cx.size() + wsrc_cy.size() + wsrc_cz.size() +
            wsrc_hw.size()) * sizeof(float);
  return total;
}

GpuLet build_gpu_let(const core::Tables& tables, const octree::Let& let,
                     int block) {
  PKIFMM_CHECK_MSG(tables.sdim() == 1 && tables.tdim() == 1,
                   "GPU path supports scalar kernels only (paper §V uses "
                   "Laplace on the GPU)");
  PKIFMM_CHECK(block > 0);

  GpuLet g;
  g.block = block;
  g.m = tables.m();
  std::unordered_map<std::int32_t, std::int32_t> wslot_of;

  // Flat source arrays: every global leaf's source points once, in
  // node order (target-only points carry no density and are skipped).
  std::unordered_map<std::int32_t, std::pair<std::int32_t, std::int32_t>>
      src_span_of;  // node -> (begin, count)
  for (std::size_t i = 0; i < let.nodes.size(); ++i) {
    const octree::LetNode& n = let.nodes[i];
    if (!n.global_leaf || n.point_count == 0) continue;
    const auto begin = static_cast<std::int32_t>(g.sx.size());
    for (const octree::PointRec& pt : let.points_of(n)) {
      if (!pt.is_source()) continue;
      g.sx.push_back(static_cast<float>(pt.pos[0]));
      g.sy.push_back(static_cast<float>(pt.pos[1]));
      g.sz.push_back(static_cast<float>(pt.pos[2]));
      g.sq.push_back(static_cast<float>(pt.den[0]));
    }
    src_span_of[static_cast<std::int32_t>(i)] = {
        begin, static_cast<std::int32_t>(g.sx.size()) - begin};
  }

  // Target boxes: owned leaves, padded to multiples of the block size.
  // Source-only leaves still get a box (with no target chunks) so the
  // S2U kernel covers them.
  for (std::size_t i = 0; i < let.nodes.size(); ++i) {
    const octree::LetNode& n = let.nodes[i];
    if (!(n.owned && n.global_leaf) || n.point_count == 0) continue;
    GpuLet::Box box;
    box.let_node = static_cast<std::int32_t>(i);
    box.trg_begin = static_cast<std::int32_t>(g.tx.size());
    box.count = static_cast<std::int32_t>(n.target_count);
    box.let_point_begin = n.point_begin;
    const auto geom = morton::box_geometry(n.key);
    box.cx = static_cast<float>(geom.center[0]);
    box.cy = static_cast<float>(geom.center[1]);
    box.cz = static_cast<float>(geom.center[2]);
    box.hw = static_cast<float>(geom.half_width);
    const auto [sb, sc] = src_span_of.at(box.let_node);
    box.src_begin = sb;
    box.src_count = sc;

    const auto pts = let.points_of(n);
    const int padded = (box.count + block - 1) / block * block;
    for (int k = 0; k < padded; ++k) {
      // Pad with the first target so pad lanes stay harmless.
      const octree::PointRec& pt =
          pts[std::min<std::size_t>(k, box.count - 1)];
      g.tx.push_back(static_cast<float>(pt.pos[0]));
      g.ty.push_back(static_cast<float>(pt.pos[1]));
      g.tz.push_back(static_cast<float>(pt.pos[2]));
    }
    for (int c = 0; c < padded / block; ++c) {
      g.chunk_box.push_back(static_cast<std::int32_t>(g.boxes.size()));
      g.chunk_trg.push_back(box.trg_begin + c * block);
    }

    box.seg_begin = static_cast<std::int32_t>(g.seg_src_begin.size());
    for (auto ui : let.u.of(i)) {
      const auto [usb, usc] = src_span_of.at(ui);
      if (usc == 0) continue;
      g.seg_src_begin.push_back(usb);
      g.seg_src_count.push_back(usc);
    }
    box.seg_end = static_cast<std::int32_t>(g.seg_src_begin.size());

    // X-list: source leaves whose points act on this box's
    // downward-check surface.
    box.xseg_begin = static_cast<std::int32_t>(g.xseg_src_begin.size());
    for (auto xi : let.x.of(i)) {
      const auto [xsb, xsc] = src_span_of.at(xi);
      if (xsc == 0) continue;
      g.xseg_src_begin.push_back(xsb);
      g.xseg_src_count.push_back(xsc);
    }
    box.xseg_end = static_cast<std::int32_t>(g.xseg_src_begin.size());

    // W-list: octants whose upward equivalent densities act directly on
    // this box's targets (deduplicated into slots).
    box.wseg_begin = static_cast<std::int32_t>(g.wseg_slot.size());
    for (auto wi : let.w.of(i)) {
      auto [it, inserted] =
          wslot_of.try_emplace(wi, static_cast<std::int32_t>(g.wsrc_node.size()));
      if (inserted) {
        g.wsrc_node.push_back(wi);
        const auto geom = morton::box_geometry(let.nodes[wi].key);
        g.wsrc_cx.push_back(static_cast<float>(geom.center[0]));
        g.wsrc_cy.push_back(static_cast<float>(geom.center[1]));
        g.wsrc_cz.push_back(static_cast<float>(geom.center[2]));
        g.wsrc_hw.push_back(static_cast<float>(geom.half_width));
      }
      g.wseg_slot.push_back(it->second);
    }
    box.wseg_end = static_cast<std::int32_t>(g.wseg_slot.size());

    g.boxes.push_back(box);
  }
  return g;
}

}  // namespace pkifmm::gpu
