#include "gpu/evaluator.hpp"

#include <unordered_map>

#include "core/surface.hpp"

namespace pkifmm::gpu {

using octree::LetNode;

GpuEvaluator::GpuEvaluator(const core::Tables& tables,
                           const octree::Let& let, comm::RankCtx& ctx,
                           StreamDevice& dev, int block, bool offload_wx)
    : tables_(tables), let_(let), ctx_(ctx), dev_(dev),
      cpu_(tables, let, ctx), offload_wx_(offload_wx) {
  PKIFMM_CHECK_MSG(tables.kernel().name() == "laplace",
                   "the GPU path implements the Laplace kernel (the "
                   "paper's GPU configuration)");
  auto t = ctx_.timer.scope("gpu.translate");
  gpu_let_ = build_gpu_let(tables_, let_, block);
  ws_ = make_workspace(dev_, gpu_let_);

  // Unit surface lattice, shared by all boxes ("constant memory").
  const int n = tables_.n();
  unit_.reserve(3 * tables_.m());
  for (const auto& ijk : core::surface_lattice(n))
    for (int d = 0; d < 3; ++d)
      unit_.push_back(
          static_cast<float>(-1.0 + 2.0 * ijk[d] / double(n - 1)));
}

void GpuEvaluator::run() {
  auto root = ctx_.rec.span("eval");
  {
    auto t = ctx_.timer.scope("eval.s2u");
    s2u_gpu();
  }
  {
    auto t = ctx_.timer.scope("eval.u2u");
    cpu_.u2u();
  }
  {
    auto t = ctx_.timer.scope("eval.comm");
    cpu_.comm_reduce();
  }
  {
    auto t = ctx_.timer.scope("eval.vli");
    vli_gpu();
  }
  {
    auto t = ctx_.timer.scope("eval.xli");
    if (offload_wx_)
      xli_gpu();
    else
      cpu_.xli();
  }
  {
    auto t = ctx_.timer.scope("eval.down");
    cpu_.downward();
  }
  {
    auto t = ctx_.timer.scope("eval.wli");
    if (offload_wx_)
      wli_gpu();
    else
      cpu_.wli();
  }
  {
    auto t = ctx_.timer.scope("eval.d2t");
    d2t_gpu();
  }
  {
    auto t = ctx_.timer.scope("eval.uli");
    uli_gpu();
  }
  {
    auto t = ctx_.timer.scope("gpu.translate");
    scatter_potentials(dev_, gpu_let_, ws_, cpu_.potential_mutable());
  }
}

void GpuEvaluator::s2u_gpu() {
  std::uint64_t kflops = 0;
  const auto check = run_s2u_check(
      dev_, gpu_let_, unit_,
      static_cast<float>(tables_.options().upward_check_radius), &kflops);
  ctx_.flops.add("eval.s2u", kflops);

  // CPU: convert check potentials to equivalent densities (small gemv).
  const int m = tables_.m();
  std::vector<double> cp(m);
  auto u = cpu_.u_mutable();
  for (std::size_t bi = 0; bi < gpu_let_.boxes.size(); ++bi) {
    const GpuLet::Box& box = gpu_let_.boxes[bi];
    for (int k = 0; k < m; ++k) cp[k] = check[bi * m + k];
    const LetNode& node = let_.nodes[box.let_node];
    const core::LevelOps ops = tables_.at(node.key.level);
    la::gemv_acc(*ops.uc2ue, cp,
                 u.subspan(std::size_t(box.let_node) * tables_.eq_len(),
                           tables_.eq_len()),
                 ops.uc2ue_scale);
    // ".host" suffix separates CPU-side work from device flops so the
    // benches can model them at different rates.
    ctx_.flops.add("eval.s2u.host", la::gemv_flops(*ops.uc2ue));
  }
}

void GpuEvaluator::vli_gpu() {
  const std::size_t vol = tables_.fft_volume();
  const auto& embed = tables_.embed_index();
  const int m = tables_.m();
  const auto u = cpu_.u();
  auto checkpot = cpu_.checkpot_mutable();

  int min_level = morton::kMaxDepth + 1, max_level = -1;
  for (const LetNode& n : let_.nodes) {
    min_level = std::min(min_level, static_cast<int>(n.key.level));
    max_level = std::max(max_level, static_cast<int>(n.key.level));
  }

  std::vector<fft::Complex> work(vol);
  for (int level = min_level; level <= max_level; ++level) {
    // Collect targets and used sources at this level.
    std::vector<std::int32_t> targets;
    std::unordered_map<std::int32_t, std::int32_t> src_slot;
    std::unordered_map<int, std::int32_t> g_slot;
    VliBatch batch;
    batch.vol = vol;
    batch.target_offset.push_back(0);

    for (std::size_t i = 0; i < let_.nodes.size(); ++i) {
      const LetNode& node = let_.nodes[i];
      if (!node.target || node.key.level != level) continue;
      if (let_.v.of(i).empty()) continue;
      targets.push_back(static_cast<std::int32_t>(i));
    }
    if (targets.empty()) continue;

    for (auto ti : targets) {
      const auto ta = morton::anchor(let_.nodes[ti].key);
      const auto side = morton::cell_side(let_.nodes[ti].key);
      for (auto si : let_.v.of(ti)) {
        auto [sit, snew] = src_slot.try_emplace(
            si, static_cast<std::int32_t>(src_slot.size()));
        (void)snew;
        const auto sa = morton::anchor(let_.nodes[si].key);
        const int dx = (static_cast<std::int64_t>(ta[0]) - sa[0]) / side;
        const int dy = (static_cast<std::int64_t>(ta[1]) - sa[1]) / side;
        const int dz = (static_cast<std::int64_t>(ta[2]) - sa[2]) / side;
        const int off = core::offset_index(dx, dy, dz);
        auto [git, gnew] =
            g_slot.try_emplace(off, static_cast<std::int32_t>(g_slot.size()));
        (void)gnew;
        batch.pair_src.push_back(sit->second);
        batch.pair_g.push_back(git->second);
      }
      batch.target_offset.push_back(
          static_cast<std::int32_t>(batch.pair_src.size()));
    }

    // CPU: forward FFTs of the used sources (paper: per-octant FFTs on
    // the CPU), downconverted to single precision for the device.
    batch.src_spectra.assign(src_slot.size() * vol, {0, 0});
    for (const auto& [si, slot] : src_slot) {
      std::fill(work.begin(), work.end(), fft::Complex(0, 0));
      const double* usrc = u.data() + std::size_t(si) * tables_.eq_len();
      for (int k = 0; k < m; ++k) work[embed[k]] = usrc[k];
      tables_.fft().forward(work);
      ctx_.flops.add("eval.vli.host", tables_.fft().transform_flops());
      for (std::size_t i = 0; i < vol; ++i)
        batch.src_spectra[std::size_t(slot) * vol + i] =
            std::complex<float>(static_cast<float>(work[i].real()),
                                static_cast<float>(work[i].imag()));
    }
    batch.g_spectra.assign(g_slot.size() * vol, {0, 0});
    for (const auto& [off, slot] : g_slot) {
      const auto gd = tables_.m2l_spectra(level, off);
      for (std::size_t i = 0; i < vol; ++i)
        batch.g_spectra[std::size_t(slot) * vol + i] =
            std::complex<float>(static_cast<float>(gd[i].real()),
                                static_cast<float>(gd[i].imag()));
    }

    std::uint64_t kflops = 0;
    const auto acc = run_vli_diag(dev_, batch, &kflops);
    ctx_.flops.add("eval.vli", kflops);

    // CPU: inverse FFT per target and surface extraction.
    const core::LevelOps ops = tables_.at(level);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      for (std::size_t i = 0; i < vol; ++i)
        work[i] = fft::Complex(acc[t * vol + i].real(),
                               acc[t * vol + i].imag());
      tables_.fft().inverse(work);
      ctx_.flops.add("eval.vli.host", tables_.fft().transform_flops());
      double* out =
          checkpot.data() + std::size_t(targets[t]) * tables_.check_len();
      for (int k = 0; k < m; ++k)
        out[k] += ops.m2l_scale * work[embed[k]].real();
    }
  }
}

void GpuEvaluator::d2t_gpu() {
  // Gather each box's downward equivalent density into box order.
  const int m = tables_.m();
  std::vector<float> d_per_box(gpu_let_.boxes.size() * std::size_t(m));
  const auto d = cpu_.d();
  for (std::size_t bi = 0; bi < gpu_let_.boxes.size(); ++bi) {
    const GpuLet::Box& box = gpu_let_.boxes[bi];
    const double* src = d.data() + std::size_t(box.let_node) * tables_.eq_len();
    for (int k = 0; k < m; ++k)
      d_per_box[bi * m + k] = static_cast<float>(src[k]);
  }
  const std::uint64_t kflops = run_d2t(
      dev_, gpu_let_, unit_,
      static_cast<float>(tables_.options().down_equiv_radius), d_per_box,
      ws_);
  ctx_.flops.add("eval.d2t", kflops);
}

void GpuEvaluator::uli_gpu() {
  ctx_.flops.add("eval.uli", run_uli(dev_, gpu_let_, ws_));
}

void GpuEvaluator::wli_gpu() {
  // Gather the upward equivalent densities of the W-source slots.
  const int m = tables_.m();
  const auto u = cpu_.u();
  std::vector<float> u_per_slot(gpu_let_.wsrc_node.size() * std::size_t(m));
  for (std::size_t slot = 0; slot < gpu_let_.wsrc_node.size(); ++slot) {
    const double* src =
        u.data() + std::size_t(gpu_let_.wsrc_node[slot]) * tables_.eq_len();
    for (int k = 0; k < m; ++k)
      u_per_slot[slot * m + k] = static_cast<float>(src[k]);
  }
  ctx_.flops.add(
      "eval.wli",
      run_wli(dev_, gpu_let_, unit_,
              static_cast<float>(tables_.options().upward_equiv_radius),
              u_per_slot, ws_));
}

void GpuEvaluator::xli_gpu() {
  // Leaf targets on the device; non-leaf targets (no padded target
  // array on the device) stay on the CPU.
  cpu_.xli(/*include_leaves=*/false);
  std::uint64_t kflops = 0;
  const auto check = run_xli(
      dev_, gpu_let_, unit_,
      static_cast<float>(tables_.options().down_check_radius), &kflops);
  ctx_.flops.add("eval.xli", kflops);

  // Accumulate into the (double) check potentials before the downward
  // pass converts them.
  const int m = tables_.m();
  auto checkpot = cpu_.checkpot_mutable();
  for (std::size_t bi = 0; bi < gpu_let_.boxes.size(); ++bi) {
    const GpuLet::Box& box = gpu_let_.boxes[bi];
    if (box.xseg_begin == box.xseg_end) continue;
    double* out =
        checkpot.data() + std::size_t(box.let_node) * tables_.check_len();
    for (int k = 0; k < m; ++k) out[k] += check[bi * m + k];
  }
}

}  // namespace pkifmm::gpu
