#pragma once
/// \file soa.hpp
/// \brief LET -> streaming data-structure translation (paper §IV).
///
/// The evaluation phase uses three representations: linear arrays for
/// tree construction, pointers for the LET, and a streaming-friendly
/// SoA layout for the GPU. This file implements the third: target
/// boxes are padded to the next multiple of the thread-block size b and
/// cut into one-chunk-per-block pieces; leaf source points are laid out
/// once in flat x/y/z/density arrays; each target box carries the
/// (begin, count) segments of its U-list sources. The translation cost
/// is measured by the caller — the paper's claim is that it is minor.

#include <cstdint>
#include <vector>

#include "core/tables.hpp"
#include "octree/let.hpp"

namespace pkifmm::gpu {

struct GpuLet {
  int block = 64;   ///< thread-block size b
  int m = 0;        ///< surface point count

  // --- Sources: every global-leaf point once, single precision SoA.
  std::vector<float> sx, sy, sz, sq;

  // --- Target boxes (owned leaves).
  struct Box {
    std::int32_t let_node;        ///< index into Let::nodes
    std::int32_t trg_begin;       ///< first padded target slot
    std::int32_t count;           ///< real target count
    std::uint32_t let_point_begin;///< for scatter-back into Let order
    float cx, cy, cz, hw;         ///< geometry for S2U/D2T
    std::int32_t src_begin;       ///< own sources in the source arrays
    std::int32_t src_count;       ///< own source count (S2U loop bound)
    std::int32_t seg_begin, seg_end;  ///< U-list segments (CSR)
    std::int32_t xseg_begin = 0, xseg_end = 0;  ///< X-list segments (CSR)
    std::int32_t wseg_begin = 0, wseg_end = 0;  ///< W-list slots (CSR)
  };
  std::vector<Box> boxes;

  // --- Padded targets (concatenated over boxes; pad slots repeat the
  // box's first point so they do no harm and stay coalesced).
  std::vector<float> tx, ty, tz;

  // --- One chunk of `block` targets per device block.
  std::vector<std::int32_t> chunk_box;  ///< chunk -> box index
  std::vector<std::int32_t> chunk_trg;  ///< chunk -> first padded target slot

  // --- U-list source segments.
  std::vector<std::int32_t> seg_src_begin, seg_src_count;

  // --- X-list source segments (the paper's "ongoing work": W/X on the
  // GPU). Same layout as the U segments; the interaction targets are
  // the downward-check surface points instead of the box's particles.
  std::vector<std::int32_t> xseg_src_begin, xseg_src_count;

  // --- W-list sources: deduplicated W-member octants. Per slot: the
  // LET node (for fetching its upward density) and its geometry (the
  // equivalent-surface points are synthesized from the constant unit
  // lattice, as in S2U/D2T).
  std::vector<std::int32_t> wseg_slot;   ///< per-box CSR of slots
  std::vector<std::int32_t> wsrc_node;   ///< slot -> LET node
  std::vector<float> wsrc_cx, wsrc_cy, wsrc_cz, wsrc_hw;

  std::size_t padded_targets() const { return tx.size(); }
  std::size_t chunks() const { return chunk_box.size(); }

  /// Host-side memory footprint of the translated structure in bytes
  /// (the paper notes the translation has "a somewhat high memory
  /// footprint").
  std::size_t footprint_bytes() const;
};

/// Builds the streaming layout from the LET. Only scalar kernels are
/// supported on the GPU path (the paper's GPU experiments use the
/// Laplace kernel).
GpuLet build_gpu_let(const core::Tables& tables, const octree::Let& let,
                     int block);

}  // namespace pkifmm::gpu
