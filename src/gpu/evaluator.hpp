#pragma once
/// \file evaluator.hpp
/// \brief GPU-accelerated FMM evaluation (paper §IV).
///
/// Mirrors core::Evaluator but offloads the phases the paper
/// accelerates — S2U, ULI, D2T and the diagonal V-list translation —
/// to the streaming device; U2U, D2D, WLI, XLI and the per-octant FFTs
/// stay on the CPU, exactly as in the paper ("the U2U and D2D
/// traversals and XLI, WLI remain sequential"; "the per-octant FFTs are
/// done in the CPU and the diagonal translation ... in the GPU").
/// The LET -> SoA translation is timed under "gpu.translate" so the
/// paper's "translation cost is minor" claim can be checked.

#include "core/evaluator.hpp"
#include "gpu/device.hpp"
#include "gpu/kernels.hpp"
#include "gpu/soa.hpp"

namespace pkifmm::gpu {

class GpuEvaluator {
 public:
  /// `block` is the CUDA thread-block size b of Algorithm 4.
  /// `offload_wx` additionally runs the W- and X-list interactions on
  /// the device — the extension the paper lists as ongoing work ("our
  /// ongoing work includes transferring the W,X-lists on the GPU");
  /// off by default to mirror the published configuration.
  GpuEvaluator(const core::Tables& tables, const octree::Let& let,
               comm::RankCtx& ctx, StreamDevice& dev, int block = 64,
               bool offload_wx = false);

  void run();

  std::span<const double> potential() const { return cpu_.potential(); }
  const GpuLet& gpu_let() const { return gpu_let_; }

 private:
  void s2u_gpu();
  void vli_gpu();
  void d2t_gpu();
  void uli_gpu();
  void wli_gpu();
  void xli_gpu();

  const core::Tables& tables_;
  const octree::Let& let_;
  comm::RankCtx& ctx_;
  StreamDevice& dev_;
  core::Evaluator cpu_;
  GpuLet gpu_let_;
  Workspace ws_;
  std::vector<float> unit_;  ///< unit surface lattice (3m floats)
  bool offload_wx_;
};

}  // namespace pkifmm::gpu
