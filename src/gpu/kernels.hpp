#pragma once
/// \file kernels.hpp
/// \brief FMM device kernels for the streaming emulator (paper §IV).
///
/// Implemented in single precision for the Laplace kernel (the paper's
/// GPU configuration): ULI (Algorithm 4: tiled direct interactions with
/// the IEEE NaN/max self-interaction trick), S2U check-potential
/// evaluation and D2T (both exploit the regular surface-lattice
/// positions held in constant/shared memory, the paper's ">50x"
/// kernels), and the diagonal (frequency-space) V-list translation.

#include <complex>

#include "core/tables.hpp"
#include "gpu/device.hpp"
#include "gpu/soa.hpp"

namespace pkifmm::gpu {

/// Device-resident state shared by the per-phase kernels; building it
/// performs the host->device uploads once per evaluation.
struct Workspace {
  DeviceBuffer<float> sx, sy, sz, sq;  ///< sources
  DeviceBuffer<float> tx, ty, tz;      ///< padded targets
  DeviceBuffer<float> f;               ///< padded target potentials
};

Workspace make_workspace(StreamDevice& dev, const GpuLet& g);

/// Algorithm 4: per-chunk tiled U-list direct evaluation, accumulating
/// into ws.f. Returns total device flops (for the science-flop ledger).
std::uint64_t run_uli(StreamDevice& dev, const GpuLet& g, Workspace& ws);

/// Upward-check potentials for every target box: m values per box,
/// returned host-side (device->host transfer charged). `unit` is the
/// unit surface lattice (3m floats, treated as constant memory);
/// `radius` the surface radius scale.
std::vector<float> run_s2u_check(StreamDevice& dev, const GpuLet& g,
                                 const std::vector<float>& unit,
                                 float radius, std::uint64_t* flops);

/// D2T: evaluates each box's downward equivalent density (m values per
/// box, in box order) at the box's padded targets, accumulating into
/// ws.f.
std::uint64_t run_d2t(StreamDevice& dev, const GpuLet& g,
                      const std::vector<float>& unit, float radius,
                      const std::vector<float>& d_per_box, Workspace& ws);

/// Diagonal V-list translation batch: per-target accumulation of
/// pointwise products of source spectra with translation spectra.
struct VliBatch {
  std::size_t vol = 0;  ///< padded FFT volume (complex elements)
  std::vector<std::complex<float>> src_spectra;  ///< nsrc x vol
  std::vector<std::complex<float>> g_spectra;    ///< noffsets x vol
  /// CSR pair lists per target: pairs [target_offset[t], target_offset[t+1]).
  std::vector<std::int32_t> pair_src, pair_g;
  std::vector<std::int32_t> target_offset;
};

/// Returns ntargets x vol accumulated spectra (host side; transfers
/// charged in both directions). Also reports device flops.
std::vector<std::complex<float>> run_vli_diag(StreamDevice& dev,
                                              const VliBatch& batch,
                                              std::uint64_t* flops);

/// Downloads ws.f and scatter-adds the valid entries into the
/// double-precision potential array aligned with Let::points.
void scatter_potentials(StreamDevice& dev, const GpuLet& g,
                        const Workspace& ws, std::span<double> f_out);

/// W-list on the device (the paper's stated "ongoing work", §IV): for
/// each target box, evaluates the upward equivalent densities of its
/// W-list members directly at the box's padded targets, accumulating
/// into ws.f. `u_per_slot` holds m single-precision equivalent
/// densities per W-source slot (GpuLet::wsrc_* order); `unit` is the
/// unit equivalent-surface lattice and `radius` its scale.
std::uint64_t run_wli(StreamDevice& dev, const GpuLet& g,
                      const std::vector<float>& unit, float radius,
                      const std::vector<float>& u_per_slot, Workspace& ws);

/// X-list on the device: for each target box, evaluates the X-list
/// members' source points at the box's downward-check surface points
/// (synthesized from the unit lattice at `radius`); returns m check
/// values per box, host side.
std::vector<float> run_xli(StreamDevice& dev, const GpuLet& g,
                           const std::vector<float>& unit, float radius,
                           std::uint64_t* flops);

}  // namespace pkifmm::gpu
