#pragma once
/// \file device.hpp
/// \brief The streaming-device emulator (the CUDA/Tesla substitute).
///
/// No physical GPU is available, so pkifmm ships a faithful *execution
/// model* instead: kernels are written block-synchronously against a
/// BlockCtx that exposes CUDA's concepts — block/thread indices,
/// per-block shared memory, cooperative tiled loads — and all
/// arithmetic is single precision (the paper's GPU limitation, §I).
/// Numerical results are therefore real and testable against the CPU
/// path, while a device cost model (sustained flop rate, global-memory
/// bandwidth with a coalescing penalty, PCIe transfer cost, launch
/// overhead) converts the recorded work into modeled seconds with the
/// roofline rule t = overhead + max(flops/rate, bytes/bandwidth). That
/// is the mechanism behind the paper's own analysis of why the U-list
/// loves the GPU (O(b^2) flops per O(b) loads) while the diagonal
/// V-list translation does not (§IV).

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace pkifmm::gpu {

/// Device model constants; defaults are Tesla S1070-class (the paper's
/// Lincoln accelerators): ~30 GFlop/s sustained on these kernels (the
/// paper reports "over 30 GFlops/s" for S2U/D2T), ~70 GB/s device
/// memory, PCIe-gen1 x16 host link.
struct DeviceSpec {
  double flop_rate = 30e9;
  double gmem_bandwidth = 70e9;
  double pcie_bandwidth = 2.5e9;
  double kernel_launch_s = 10e-6;
  double uncoalesced_penalty = 4.0;  ///< extra traffic factor
};

/// Accounting for one kernel (accumulated over launches).
struct KernelStats {
  std::uint64_t launches = 0;
  std::uint64_t flops = 0;
  std::uint64_t gmem_bytes = 0;  ///< effective (post-penalty) traffic
  double modeled_seconds = 0.0;
};

/// Per-block view handed to a device kernel.
class BlockCtx {
 public:
  BlockCtx(std::size_t block_index, int block_size)
      : block_(block_index), bsize_(block_size) {}

  std::size_t block_index() const { return block_; }
  int block_size() const { return bsize_; }

  /// Per-block shared-memory arena of floats (zero-initialized).
  /// Accesses are free in the cost model, as on hardware.
  std::span<float> shared(std::size_t count) {
    if (shared_.size() < count) shared_.resize(count);
    return {shared_.data(), count};
  }

  /// Records a global-memory read/write. Uncoalesced accesses cost
  /// uncoalesced_penalty times the bytes.
  void load_global(std::size_t bytes, bool coalesced = true) {
    bytes_ += coalesced ? bytes
                        : static_cast<std::size_t>(bytes * penalty_);
  }
  void store_global(std::size_t bytes, bool coalesced = true) {
    load_global(bytes, coalesced);
  }

  /// Records arithmetic work.
  void flops(std::uint64_t n) { flops_ += n; }

  std::uint64_t recorded_flops() const { return flops_; }
  std::uint64_t recorded_bytes() const { return bytes_; }

 private:
  friend class StreamDevice;
  std::size_t block_;
  int bsize_;
  double penalty_ = 4.0;
  std::uint64_t flops_ = 0;
  std::uint64_t bytes_ = 0;
  std::vector<float> shared_;
};

/// Host-visible handle to "device" data. The storage lives in host
/// memory (we are emulating), but every crossing of the host/device
/// boundary must go through StreamDevice::to_device / to_host so the
/// PCIe model sees it.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  std::size_t size() const { return data_.size(); }
  std::span<T> span() { return data_; }
  std::span<const T> span() const { return data_; }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

 private:
  friend class StreamDevice;
  explicit DeviceBuffer(std::vector<T> v) : data_(std::move(v)) {}
  std::vector<T> data_;
};

class StreamDevice {
 public:
  explicit StreamDevice(DeviceSpec spec = {}) : spec_(spec) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Host -> device copy (charged to the PCIe model).
  template <typename T>
  DeviceBuffer<T> to_device(std::span<const T> host) {
    charge_transfer(host.size_bytes());
    return DeviceBuffer<T>(std::vector<T>(host.begin(), host.end()));
  }

  /// Allocation without transfer (like cudaMalloc + no memcpy).
  template <typename T>
  DeviceBuffer<T> alloc(std::size_t count, T fill = T{}) {
    return DeviceBuffer<T>(std::vector<T>(count, fill));
  }

  /// Device -> host copy (charged to the PCIe model).
  template <typename T>
  std::vector<T> to_host(const DeviceBuffer<T>& buf) {
    charge_transfer(buf.size() * sizeof(T));
    return std::vector<T>(buf.span().begin(), buf.span().end());
  }

  /// Launches `grid` blocks of `block_size` threads. The functor runs
  /// once per block and performs the whole block's work (thread loops
  /// are explicit inside, mirroring Algorithm 4's structure).
  void launch(const std::string& name, std::size_t grid, int block_size,
              const std::function<void(BlockCtx&)>& fn);

  const std::map<std::string, KernelStats>& kernels() const {
    return kernels_;
  }
  std::uint64_t transfer_bytes() const { return transfer_bytes_; }
  double transfer_seconds() const { return transfer_seconds_; }

  /// Total modeled device time: kernels + transfers.
  double modeled_seconds() const;

  void reset_stats();

 private:
  void charge_transfer(std::size_t bytes) {
    transfer_bytes_ += bytes;
    transfer_seconds_ += static_cast<double>(bytes) / spec_.pcie_bandwidth;
  }

  DeviceSpec spec_;
  std::map<std::string, KernelStats> kernels_;
  std::uint64_t transfer_bytes_ = 0;
  double transfer_seconds_ = 0.0;
};

}  // namespace pkifmm::gpu
