#pragma once
/// \file fft.hpp
/// \brief Radix-2 FFTs and 3-D circular convolution.
///
/// The paper's V-list translation is diagonalized by FFT: equivalent
/// densities live on the surface points of a regular lattice, so the
/// check-potential evaluation is a lattice convolution. pkifmm pads the
/// lattice to the next power of two >= 2n-1 (making the circular
/// convolution exact) and uses an iterative radix-2 transform; FFTW is
/// deliberately not a dependency (unavailable substrate, see DESIGN.md).

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace pkifmm::fft {

using Complex = std::complex<double>;

/// In-place power-of-two complex FFT. inverse=true applies the inverse
/// transform including the 1/n normalization.
void fft_inplace(std::span<Complex> a, bool inverse);

/// Plan-like object for n x n x n complex transforms (n a power of two).
/// Precomputes twiddle factors; forward/inverse operate in place on a
/// volume stored as v[(z*n + y)*n + x].
///
/// Thread-safety contract: after construction a plan is immutable —
/// forward/inverse only read the twiddle/bit-reversal tables and write
/// the caller's volume. core::Evaluator relies on this to run FFT slots
/// on util::TaskPool lanes concurrently against ONE shared plan (each
/// lane transforming its own scratch volume).
class Fft3d {
 public:
  explicit Fft3d(std::size_t n);

  std::size_t n() const { return n_; }
  std::size_t volume() const { return n_ * n_ * n_; }

  void forward(std::span<Complex> vol) const;
  /// Inverse including the 1/n^3 normalization.
  void inverse(std::span<Complex> vol) const;

  /// Flops of one 3-D transform (5 n log2 n per 1-D transform, the
  /// standard complex-FFT flop model).
  std::uint64_t transform_flops() const;

 private:
  void transform(std::span<Complex> vol, bool inverse) const;
  /// One contiguous n-element line, using the precomputed twiddle and
  /// bit-reversal tables (raw re/im butterflies — no libcall-per-
  /// multiply complex arithmetic).
  void line_fft(Complex* a, bool inverse) const;

  std::size_t n_;
  int log2n_;
  std::vector<double> tw_;          ///< per-stage twiddles (forward sign)
  std::vector<std::uint32_t> rev_;  ///< bit-reversal permutation
};

/// Smallest power of two >= x. Throws CheckFailure if x exceeds the
/// largest size_t power of two (no silent wraparound).
std::size_t next_pow2(std::size_t x);

/// Pointwise multiply-accumulate in frequency space:
/// acc[i] += g[i] * f[i]. This is the "diagonal translation" the paper
/// runs on the GPU.
void pointwise_mac(std::span<const Complex> g, std::span<const Complex> f,
                   std::span<Complex> acc);

/// Applies ONE translation spectrum g to MANY source/accumulator pairs:
/// accs[p][i] += g[i] * fs[p][i] for every pair p and every frequency
/// index i in [begin, end). Equivalent to fs.size() calls of
/// pointwise_mac with the same g, but blocked so each chunk of g is
/// loaded once per block of pairs — the batched form of the paper's
/// diagonal translation (V-list pairs sorted by offset share their
/// operator). The window parameters let a caller sweep the frequency
/// axis OUTSIDE a loop over many such groups, keeping every volume's
/// active chunk cache-resident across the groups (see
/// core::Evaluator::vli_fft_batched). end defaults to the npos
/// sentinel, meaning g.size(); any other value must satisfy
/// begin <= end <= g.size() or the call throws CheckFailure (a window
/// past the spectrum is an indexing bug, not something to clamp).
/// fs and accs must have equal length; every volume must have g.size()
/// elements.
void pointwise_mac_many(std::span<const Complex> g,
                        std::span<const Complex* const> fs,
                        std::span<Complex* const> accs,
                        std::size_t begin = 0,
                        std::size_t end = std::size_t(-1));

/// One frequency chunk of the chunk-major V-list sweep: entry e does
/// acc_base[aidx[e]*c + i] += g[i] * f_base[fidx[e]*c + i] for
/// i in [0, c). Callers store spectra and accumulators chunk-major
/// (all slots' values for one c-frequency chunk contiguous), so a
/// sweep with the chunk loop OUTSIDE the entry loop touches only
/// c complex values per referenced slot — the whole level's diagonal
/// translation runs out of L2 instead of re-streaming full volumes
/// per pair (see core::Evaluator::vli_fft_batched). fidx and aidx
/// must have equal length.
void pointwise_mac_chunked(const Complex* g, std::size_t c,
                           const Complex* f_base, Complex* acc_base,
                           std::span<const std::int32_t> fidx,
                           std::span<const std::int32_t> aidx);

}  // namespace pkifmm::fft
