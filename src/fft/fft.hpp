#pragma once
/// \file fft.hpp
/// \brief Radix-2 FFTs and 3-D circular convolution.
///
/// The paper's V-list translation is diagonalized by FFT: equivalent
/// densities live on the surface points of a regular lattice, so the
/// check-potential evaluation is a lattice convolution. pkifmm pads the
/// lattice to the next power of two >= 2n-1 (making the circular
/// convolution exact) and uses an iterative radix-2 transform; FFTW is
/// deliberately not a dependency (unavailable substrate, see DESIGN.md).

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace pkifmm::fft {

using Complex = std::complex<double>;

/// In-place power-of-two complex FFT. inverse=true applies the inverse
/// transform including the 1/n normalization.
void fft_inplace(std::span<Complex> a, bool inverse);

/// Plan-like object for n x n x n complex transforms (n a power of two).
/// Precomputes twiddle factors; forward/inverse operate in place on a
/// volume stored as v[(z*n + y)*n + x].
class Fft3d {
 public:
  explicit Fft3d(std::size_t n);

  std::size_t n() const { return n_; }
  std::size_t volume() const { return n_ * n_ * n_; }

  void forward(std::span<Complex> vol) const;
  /// Inverse including the 1/n^3 normalization.
  void inverse(std::span<Complex> vol) const;

  /// Flops of one 3-D transform (5 n log2 n per 1-D transform, the
  /// standard complex-FFT flop model).
  std::uint64_t transform_flops() const;

 private:
  void transform(std::span<Complex> vol, bool inverse) const;

  std::size_t n_;
  int log2n_;
};

/// Smallest power of two >= x.
std::size_t next_pow2(std::size_t x);

/// Pointwise multiply-accumulate in frequency space:
/// acc[i] += g[i] * f[i]. This is the "diagonal translation" the paper
/// runs on the GPU.
void pointwise_mac(std::span<const Complex> g, std::span<const Complex> f,
                   std::span<Complex> acc);

}  // namespace pkifmm::fft
