#include "fft/fft.hpp"

#include <bit>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace pkifmm::fft {

namespace {

bool is_pow2(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

void fft_inplace(std::span<Complex> a, bool inverse) {
  const std::size_t n = a.size();
  PKIFMM_CHECK_MSG(is_pow2(n), "FFT size must be a power of two, got " << n);
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  // Iterative Cooley-Tukey butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& x : a) x *= inv;
  }
}

Fft3d::Fft3d(std::size_t n) : n_(n) {
  PKIFMM_CHECK_MSG(is_pow2(n), "Fft3d size must be a power of two, got " << n);
  log2n_ = std::countr_zero(n);
}

void Fft3d::transform(std::span<Complex> vol, bool inverse) const {
  PKIFMM_CHECK(vol.size() == volume());
  const std::size_t n = n_;
  std::vector<Complex> line(n);

  // x-lines are contiguous.
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      fft_inplace(vol.subspan((z * n + y) * n, n), inverse);

  // y-lines: stride n.
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t x = 0; x < n; ++x) {
      for (std::size_t y = 0; y < n; ++y) line[y] = vol[(z * n + y) * n + x];
      fft_inplace(line, inverse);
      for (std::size_t y = 0; y < n; ++y) vol[(z * n + y) * n + x] = line[y];
    }

  // z-lines: stride n^2.
  for (std::size_t y = 0; y < n; ++y)
    for (std::size_t x = 0; x < n; ++x) {
      for (std::size_t z = 0; z < n; ++z) line[z] = vol[(z * n + y) * n + x];
      fft_inplace(line, inverse);
      for (std::size_t z = 0; z < n; ++z) vol[(z * n + y) * n + x] = line[z];
    }
}

void Fft3d::forward(std::span<Complex> vol) const { transform(vol, false); }

void Fft3d::inverse(std::span<Complex> vol) const { transform(vol, true); }

std::uint64_t Fft3d::transform_flops() const {
  // 3 passes of n^2 one-dimensional transforms, 5 n log2 n flops each.
  const std::uint64_t one_d = 5ull * n_ * static_cast<std::uint64_t>(log2n_);
  return 3ull * n_ * n_ * one_d;
}

std::size_t next_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

void pointwise_mac(std::span<const Complex> g, std::span<const Complex> f,
                   std::span<Complex> acc) {
  PKIFMM_CHECK(g.size() == f.size() && f.size() == acc.size());
  for (std::size_t i = 0; i < g.size(); ++i) acc[i] += g[i] * f[i];
}

}  // namespace pkifmm::fft
