#include "fft/fft.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numbers>

#include "simd/simd.hpp"
#include "util/check.hpp"

namespace pkifmm::fft {

namespace {

bool is_pow2(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

void fft_inplace(std::span<Complex> a, bool inverse) {
  const std::size_t n = a.size();
  PKIFMM_CHECK_MSG(is_pow2(n), "FFT size must be a power of two, got " << n);
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  // Iterative Cooley-Tukey butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (auto& x : a) x *= inv;
  }
}

Fft3d::Fft3d(std::size_t n) : n_(n) {
  PKIFMM_CHECK_MSG(is_pow2(n), "Fft3d size must be a power of two, got " << n);
  log2n_ = std::countr_zero(n);

  // Twiddle table, one block of len/2 factors per butterfly stage
  // (forward sign; the inverse conjugates on the fly).
  tw_.reserve(2 * (n > 1 ? n - 1 : 0));
  for (std::size_t len = 2; len <= n; len <<= 1)
    for (std::size_t j = 0; j < len / 2; ++j) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(j) / static_cast<double>(len);
      tw_.push_back(std::cos(ang));
      tw_.push_back(std::sin(ang));
    }

  rev_.resize(n);
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    rev_[i] = static_cast<std::uint32_t>(j);
  }
}

void Fft3d::line_fft(Complex* a, bool inverse) const {
  const std::size_t n = n_;
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = rev_[i];
    if (i < j) std::swap(a[i], a[j]);
  }

  // Butterflies on raw re/im pairs with table twiddles: no dependent
  // w *= wlen chain and no Annex-G complex-multiply library calls.
  // Each (stage, block) is one simd fft_bfly call over `half` complex
  // values — both halves and the twiddles are contiguous, so the op
  // vectorizes the j loop; blocks are processed in the same order on
  // every call, keeping line_fft bitwise deterministic within a tier.
  const simd::Ops& ops = simd::ops();
  double* ad = reinterpret_cast<double*>(a);
  const double sgn = inverse ? -1.0 : 1.0;
  std::size_t toff = 0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len / 2;
    const double* tw = tw_.data() + 2 * toff;
    for (std::size_t i = 0; i < n; i += len)
      ops.fft_bfly(ad + 2 * i, ad + 2 * (i + half), tw, sgn, half);
    toff += half;
  }

  if (inverse) {
    const double inv = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < 2 * n; ++i) ad[i] *= inv;
  }
}

void Fft3d::transform(std::span<Complex> vol, bool inverse) const {
  PKIFMM_CHECK(vol.size() == volume());
  const std::size_t n = n_;
  std::vector<Complex> line(n);

  // x-lines are contiguous.
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t y = 0; y < n; ++y)
      line_fft(vol.data() + (z * n + y) * n, inverse);

  // y-lines: stride n.
  for (std::size_t z = 0; z < n; ++z)
    for (std::size_t x = 0; x < n; ++x) {
      for (std::size_t y = 0; y < n; ++y) line[y] = vol[(z * n + y) * n + x];
      line_fft(line.data(), inverse);
      for (std::size_t y = 0; y < n; ++y) vol[(z * n + y) * n + x] = line[y];
    }

  // z-lines: stride n^2.
  for (std::size_t y = 0; y < n; ++y)
    for (std::size_t x = 0; x < n; ++x) {
      for (std::size_t z = 0; z < n; ++z) line[z] = vol[(z * n + y) * n + x];
      line_fft(line.data(), inverse);
      for (std::size_t z = 0; z < n; ++z) vol[(z * n + y) * n + x] = line[z];
    }
}

void Fft3d::forward(std::span<Complex> vol) const { transform(vol, false); }

void Fft3d::inverse(std::span<Complex> vol) const { transform(vol, true); }

std::uint64_t Fft3d::transform_flops() const {
  // 3 passes of n^2 one-dimensional transforms, 5 n log2 n flops each.
  const std::uint64_t one_d = 5ull * n_ * static_cast<std::uint64_t>(log2n_);
  return 3ull * n_ * n_ * one_d;
}

std::size_t next_pow2(std::size_t x) {
  // Largest representable power of two; beyond it the doubling loop
  // would shift p to zero and spin forever.
  constexpr std::size_t kMaxPow2 =
      std::numeric_limits<std::size_t>::max() / 2 + 1;
  PKIFMM_CHECK_MSG(x <= kMaxPow2,
                   "next_pow2: " << x << " exceeds the largest size_t power "
                                 << "of two (" << kMaxPow2 << ")");
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

// The complex MACs below route through the runtime-dispatched SIMD
// tiers (src/simd/). The scalar tier keeps the hand-rolled 4-mul/4-add
// form (no __muldc3 Annex-G call); the vector tiers use the interleaved
// fmaddsub idiom on the same [re, im] layout. Within a tier the
// accumulation per frequency index is a single two-product update, so
// any chunking of the index range gives bitwise-identical results.

void pointwise_mac(std::span<const Complex> g, std::span<const Complex> f,
                   std::span<Complex> acc) {
  PKIFMM_CHECK(g.size() == f.size() && f.size() == acc.size());
  simd::ops().cmac(reinterpret_cast<const double*>(g.data()),
                   reinterpret_cast<const double*>(f.data()),
                   reinterpret_cast<double*>(acc.data()), g.size());
}

void pointwise_mac_many(std::span<const Complex> g,
                        std::span<const Complex* const> fs,
                        std::span<Complex* const> accs,
                        std::size_t begin, std::size_t end) {
  PKIFMM_CHECK(fs.size() == accs.size());
  if (end == std::size_t(-1)) end = g.size();  // default: full spectrum
  // A window reaching past the spectrum is a caller indexing bug; the
  // old code silently clamped it to g.size() and made short volumes
  // "work" with truncated products.
  PKIFMM_CHECK_MSG(begin <= end && end <= g.size(),
                   "pointwise_mac_many: window [" << begin << ", " << end
                                                  << ") outside spectrum of "
                                                  << g.size());
  const std::size_t npairs = fs.size();
  // Chunk the window so the g slice stays resident across the pair loop.
  constexpr std::size_t kChunk = 1024;
  const simd::Ops& ops = simd::ops();
  const double* gd = reinterpret_cast<const double*>(g.data());
  for (std::size_t i0 = begin; i0 < end; i0 += kChunk) {
    const std::size_t i1 = std::min(end, i0 + kChunk);
    for (std::size_t p = 0; p < npairs; ++p) {
      const double* fd = reinterpret_cast<const double*>(fs[p]);
      double* ad = reinterpret_cast<double*>(accs[p]);
      ops.cmac(gd + 2 * i0, fd + 2 * i0, ad + 2 * i0, i1 - i0);
    }
  }
}

void pointwise_mac_chunked(const Complex* g, std::size_t c,
                           const Complex* f_base, Complex* acc_base,
                           std::span<const std::int32_t> fidx,
                           std::span<const std::int32_t> aidx) {
  PKIFMM_CHECK(fidx.size() == aidx.size());
  const simd::Ops& ops = simd::ops();
  const double* gd = reinterpret_cast<const double*>(g);
  for (std::size_t e = 0; e < fidx.size(); ++e) {
    const double* fd =
        reinterpret_cast<const double*>(f_base + std::size_t(fidx[e]) * c);
    double* ad =
        reinterpret_cast<double*>(acc_base + std::size_t(aidx[e]) * c);
    ops.cmac(gd, fd, ad, c);
  }
}

}  // namespace pkifmm::fft
