#include "comm/fabric.hpp"

namespace pkifmm::comm {

void Fabric::send(int source, int dest, int tag, Bytes payload) {
  Mailbox& mb = box(dest);
  {
    std::lock_guard<std::mutex> lock(mb.mu);
    mb.queues[{source, tag}].push_back(std::move(payload));
  }
  mb.cv.notify_all();
}

Bytes Fabric::recv(int self, int source, int tag, bool* blocked) {
  Mailbox& mb = box(self);
  std::unique_lock<std::mutex> lock(mb.mu);
  auto& q = mb.queues[{source, tag}];
  if (blocked != nullptr) *blocked = q.empty();
  mb.cv.wait(lock, [&] { return !q.empty() || poisoned_.load(); });
  if (q.empty()) throw FabricPoisoned();
  Bytes payload = std::move(q.front());
  q.pop_front();
  return payload;
}

bool Fabric::probe(int self, int source, int tag) {
  Mailbox& mb = box(self);
  std::lock_guard<std::mutex> lock(mb.mu);
  auto it = mb.queues.find({source, tag});
  return it != mb.queues.end() && !it->second.empty();
}

void Fabric::poison() {
  poisoned_.store(true);
  for (int r = 0; r < size(); ++r) {
    // Acquire each mailbox lock so waiters can't miss the wakeup.
    std::lock_guard<std::mutex> lock(boxes_[r].mu);
    boxes_[r].cv.notify_all();
  }
}

}  // namespace pkifmm::comm
