#pragma once
/// \file cost.hpp
/// \brief Communication accounting and the interconnect cost model.
///
/// The physical interconnect (Kraken's SeaStar torus / Lincoln's IB) is
/// unavailable, so the runtime records every message exactly (count and
/// bytes, keyed by a caller-set phase label) and a latency/bandwidth
/// model converts those counts into modeled seconds:
///     t(msg) = t_s + bytes * t_w
/// which is the same alpha-beta model the paper uses to analyze
/// Algorithm 3 ("t_s and t_w are the latency and bandwidth constants").

#include <cstdint>
#include <map>
#include <string>

#include "obs/flow.hpp"
#include "obs/metrics.hpp"

namespace pkifmm::comm {

/// Per-phase message/byte counters for one rank. Sends are charged to
/// the sender; receives are tracked separately (useful to audit volume
/// symmetry) but not double-charged by the default model.
///
/// With a bound obs::Recorder every send also feeds the span tracer
/// (so spans carry msgs/bytes deltas) and a per-phase message-size
/// histogram ("comm.msg_bytes.<phase>"). Collectives report their
/// calls/rounds/msgs/bytes through collective() scopes, which is the
/// accounting behind the paper's hypercube reduce-scatter claim
/// (Algorithm 3's O(log p) rounds vs the owner scheme's O(p) messages).
class CostTracker {
 public:
  void set_phase(std::string phase) {
    phase_ = std::move(phase);
    msg_hist_ = rec_ != nullptr
                    ? rec_->histogram("comm.msg_bytes." + phase_)
                    : nullptr;
    if (flow_ != nullptr) flow_->set_phase(phase_);
  }
  const std::string& phase() const { return phase_; }

  /// Binds the per-rank recorder for span/histogram reporting.
  void bind(obs::Recorder* rec) {
    rec_ = rec;
    msg_hist_ = rec_ != nullptr
                    ? rec_->histogram("comm.msg_bytes." + phase_)
                    : nullptr;
  }

  /// Binds the per-rank flow recorder (owned by the caller — see the
  /// lifetime contract in obs/flow.hpp: the binder must publish() and
  /// unbind before the rank function returns). While bound, Comm
  /// reports every point-to-point message and probe into it, and
  /// set_phase() keeps its phase in sync with this tracker's.
  void bind_flow(obs::FlowRecorder* flow) {
    flow_ = flow;
    if (flow_ != nullptr) flow_->set_phase(phase_);
  }
  obs::FlowRecorder* flow() const { return flow_; }

  /// Payload-transit digests (health layer, obs/health.hpp): while
  /// enabled, Comm hashes every point-to-point payload at send and at
  /// receive into two per-rank accumulators. Messages are matched
  /// within their phase, so globally Σ sent digests == Σ recv digests
  /// across ranks — any mismatch means bytes changed in transit (or a
  /// payload was injected/corrupted between enqueue and dequeue).
  void enable_payload_digests(bool on) { payload_digests_ = on; }
  bool payload_digests_enabled() const { return payload_digests_; }
  void add_payload_sent_digest(double d) { payload_sent_ += d; }
  void add_payload_recv_digest(double d) { payload_recv_ += d; }
  double payload_sent_digest() const { return payload_sent_; }
  double payload_recv_digest() const { return payload_recv_; }

  void on_send(int dest, std::size_t bytes) {
    auto& c = phases_[phase_];
    ++c.msgs_sent;
    c.bytes_sent += bytes;
    auto& p = peer_sends_[phase_][dest];
    ++p.msgs;
    p.bytes += bytes;
    ++total_msgs_sent_;
    total_bytes_sent_ += bytes;
    if (rec_ != nullptr) rec_->add_sent(1, bytes);
    if (msg_hist_ != nullptr) msg_hist_->observe(static_cast<double>(bytes));
  }
  void on_recv(std::size_t bytes) {
    auto& c = phases_[phase_];
    ++c.msgs_recv;
    c.bytes_recv += bytes;
  }

  struct Counters {
    std::uint64_t msgs_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t msgs_recv = 0;
    std::uint64_t bytes_recv = 0;
  };

  /// Messages/bytes this rank sent to one destination within one phase
  /// — the (src, dst, phase) attribution behind the cross-rank traffic
  /// matrix (src is implicitly the owning rank). Row r of the matrix
  /// assembled by obs::summarize_metrics is rank r's peer_sends(); the
  /// per-phase row sums therefore equal the Counters sent totals by
  /// construction, which the tests pin.
  struct PeerCounters {
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
  };

  /// Per-collective accounting: number of invocations, point-to-point
  /// rounds, and the messages/bytes sent while the collective ran.
  struct CollStats {
    std::uint64_t calls = 0;
    std::uint64_t rounds = 0;
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
  };

  /// RAII scope a collective opens around its message exchange; on
  /// close, the sends that happened inside are charged to `name`.
  /// Nested scopes (e.g. an owner-reduce built on alltoallv) attribute
  /// the same sends to every open collective, by design.
  class CollectiveScope {
   public:
    CollectiveScope(CostTracker& t, std::string name, std::uint64_t rounds)
        : t_(t), name_(std::move(name)), rounds_(rounds),
          msgs0_(t.total_msgs_sent_), bytes0_(t.total_bytes_sent_) {}
    ~CollectiveScope() {
      CollStats& s = t_.collectives_[name_];
      ++s.calls;
      s.rounds += rounds_;
      s.msgs += t_.total_msgs_sent_ - msgs0_;
      s.bytes += t_.total_bytes_sent_ - bytes0_;
    }
    CollectiveScope(const CollectiveScope&) = delete;
    CollectiveScope& operator=(const CollectiveScope&) = delete;

   private:
    CostTracker& t_;
    std::string name_;
    std::uint64_t rounds_;
    std::uint64_t msgs0_, bytes0_;
  };

  CollectiveScope collective(std::string name, std::uint64_t rounds) {
    return CollectiveScope(*this, std::move(name), rounds);
  }

  const std::map<std::string, CollStats>& collectives() const {
    return collectives_;
  }

  Counters get(const std::string& phase) const {
    auto it = phases_.find(phase);
    return it == phases_.end() ? Counters{} : it->second;
  }

  Counters total() const {
    Counters t;
    for (const auto& [name, c] : phases_) {
      t.msgs_sent += c.msgs_sent;
      t.bytes_sent += c.bytes_sent;
      t.msgs_recv += c.msgs_recv;
      t.bytes_recv += c.bytes_recv;
    }
    return t;
  }

  const std::map<std::string, Counters>& phases() const { return phases_; }

  /// phase -> destination rank -> sends charged to that (dst, phase).
  const std::map<std::string, std::map<int, PeerCounters>>& peer_sends()
      const {
    return peer_sends_;
  }

  void clear() {
    phases_.clear();
    peer_sends_.clear();
    collectives_.clear();
    total_msgs_sent_ = 0;
    total_bytes_sent_ = 0;
    payload_sent_ = 0.0;
    payload_recv_ = 0.0;
  }

 private:
  std::string phase_ = "default";
  std::map<std::string, Counters> phases_;
  std::map<std::string, std::map<int, PeerCounters>> peer_sends_;
  std::map<std::string, CollStats> collectives_;
  std::uint64_t total_msgs_sent_ = 0;
  std::uint64_t total_bytes_sent_ = 0;
  obs::Recorder* rec_ = nullptr;
  obs::Histogram* msg_hist_ = nullptr;
  obs::FlowRecorder* flow_ = nullptr;
  bool payload_digests_ = false;
  double payload_sent_ = 0.0;
  double payload_recv_ = 0.0;
};

/// Alpha-beta interconnect model plus a sustained per-core compute rate.
/// Defaults are calibrated to the paper's platform class: the paper
/// reports ~500 MFlop/s sustained per CPU core on the evaluation phase;
/// t_s = 5 us and 2 GB/s per-link bandwidth are typical for the Cray
/// XT5 generation.
struct CostModel {
  double latency_s = 5e-6;         ///< t_s
  double inv_bandwidth_s = 0.5e-9; ///< t_w, seconds per byte (2 GB/s)
  double cpu_flops = 500e6;        ///< sustained flops/s per core

  /// Modeled communication time for a message set.
  double comm_time(std::uint64_t msgs, std::uint64_t bytes) const {
    return static_cast<double>(msgs) * latency_s +
           static_cast<double>(bytes) * inv_bandwidth_s;
  }

  double comm_time(const CostTracker::Counters& c) const {
    return comm_time(c.msgs_sent, c.bytes_sent);
  }

  /// Modeled compute time for a flop count at the CPU rate.
  double compute_time(std::uint64_t flops) const {
    return static_cast<double>(flops) / cpu_flops;
  }
};

}  // namespace pkifmm::comm
