#pragma once
/// \file fabric.hpp
/// \brief The in-process interconnect: per-rank mailboxes.
///
/// Each simulated rank owns a mailbox of (source, tag)-keyed message
/// queues guarded by a mutex/condvar. send() enqueues into the
/// destination's mailbox and never blocks (buffered/eager semantics,
/// like small-message MPI); recv() blocks until a matching message is
/// present. Messages between a fixed (source, destination, tag) triple
/// are delivered in send order, matching MPI's non-overtaking rule.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "comm/bytes.hpp"

namespace pkifmm::comm {

/// Thrown out of recv() when the fabric has been poisoned because some
/// other rank failed; lets blocked ranks unwind instead of deadlocking.
class FabricPoisoned : public std::runtime_error {
 public:
  FabricPoisoned() : std::runtime_error("comm fabric poisoned") {}
};

/// Message-passing fabric shared by all ranks of one Runtime::run.
class Fabric {
 public:
  explicit Fabric(int nranks) : boxes_(nranks) {}

  int size() const { return static_cast<int>(boxes_.size()); }

  /// Enqueues payload into dest's mailbox; never blocks.
  void send(int source, int dest, int tag, Bytes payload);

  /// Blocks until a message from (source, tag) is available and pops it.
  /// Throws FabricPoisoned if poison() is called while waiting. When
  /// `blocked` is non-null it is set to whether the matching queue was
  /// empty on entry (the call actually waited) — the signal behind the
  /// flow tracer's late-sender / late-receiver classification.
  Bytes recv(int self, int source, int tag, bool* blocked = nullptr);

  /// True if a matching message is queued (non-blocking probe).
  bool probe(int self, int source, int tag);

  /// Wakes every blocked recv() with FabricPoisoned. Called by the
  /// Runtime when a rank throws, so its peers unwind too.
  void poison();

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::map<std::pair<int, int>, std::deque<Bytes>> queues;
  };

  Mailbox& box(int rank) {
    PKIFMM_CHECK(rank >= 0 && rank < size());
    return boxes_[rank];
  }

  std::vector<Mailbox> boxes_;
  std::atomic<bool> poisoned_{false};
};

}  // namespace pkifmm::comm
