#pragma once
/// \file comm.hpp
/// \brief Rank-level communication API (the MPI stand-in) and the
/// Runtime that executes SPMD functions over simulated ranks.
///
/// Comm mirrors the slice of MPI the paper's algorithms use:
/// point-to-point send/recv, barrier, allgather/allgatherv (tree
/// construction exchanges the geometric partition this way, §III-A),
/// alltoallv (point migration), allreduce and exclusive scan (work
/// partitioning). Collectives are implemented *on top of* point-to-point
/// messages with textbook algorithms (ring allgather, dissemination
/// barrier), so the message/byte accounting reflects a real
/// implementation rather than magic shared memory.
///
/// Every rank runs as a thread of one process; Runtime::run launches
/// them and collects per-rank reports (time phases, flop phases,
/// communication counters) that the benches aggregate exactly the way
/// the paper reports "Max."/"Avg." across processes.

#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "comm/bytes.hpp"
#include "comm/cost.hpp"
#include "comm/fabric.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "util/flops.hpp"
#include "util/timer.hpp"

namespace pkifmm::util {
class TaskPool;
}  // namespace pkifmm::util

namespace pkifmm::comm {

/// Communicator bound to one rank of a Runtime::run invocation.
class Comm {
 public:
  Comm(Fabric& fabric, int rank, int nranks, CostTracker& cost)
      : fabric_(fabric), rank_(rank), size_(nranks), cost_(cost) {}

  int rank() const { return rank_; }
  int size() const { return size_; }
  CostTracker& cost() { return cost_; }

  /// Point-to-point, user tags must be < kCollectiveTagBase.
  void send_bytes(int dest, int tag, Bytes payload) {
    PKIFMM_DCHECK(tag >= 0 && tag < kCollectiveTagBase);
    raw_send(dest, tag, std::move(payload));
  }
  Bytes recv_bytes(int source, int tag) {
    PKIFMM_DCHECK(tag >= 0 && tag < kCollectiveTagBase);
    return raw_recv(source, tag);
  }

  template <Pod T>
  void send(int dest, int tag, std::span<const T> v) {
    send_bytes(dest, tag, to_bytes(v));
  }

  template <Pod T>
  std::vector<T> recv(int source, int tag) {
    return from_bytes<T>(recv_bytes(source, tag));
  }

  /// Non-blocking probe: true if a message from (source, tag) is
  /// already queued. Counted by the flow tracer when bound.
  bool probe(int source, int tag) {
    PKIFMM_DCHECK(tag >= 0 && tag < kCollectiveTagBase);
    if (obs::FlowRecorder* f = cost_.flow()) f->on_probe();
    return fabric_.probe(rank_, source, tag);
  }

  /// Dissemination barrier: ceil(log2 p) rounds, works for any p.
  void barrier();

  /// Every rank contributes one value; returns all p values by rank.
  /// Ring algorithm (p-1 rounds).
  template <Pod T>
  std::vector<T> allgather(const T& v) {
    auto per_rank = allgatherv(std::span<const T>(&v, 1));
    std::vector<T> out;
    out.reserve(size_);
    for (auto& r : per_rank) {
      PKIFMM_CHECK(r.size() == 1);
      out.push_back(r.front());
    }
    return out;
  }

  /// Variable-size allgather; out[k] is rank k's contribution.
  template <Pod T>
  std::vector<std::vector<T>> allgatherv(std::span<const T> mine) {
    std::vector<std::vector<T>> out(size_);
    out[rank_].assign(mine.begin(), mine.end());
    if (size_ == 1) return out;
    auto cs = cost_.collective("allgatherv",
                               static_cast<std::uint64_t>(size_ - 1));
    const int base = next_collective_tags(size_);
    const int right = (rank_ + 1) % size_;
    const int left = (rank_ - 1 + size_) % size_;
    // Ring: in round i, forward the block that originated at rank
    // (rank - i) mod p.
    for (int i = 0; i < size_ - 1; ++i) {
      const int origin_out = (rank_ - i + size_) % size_;
      const int origin_in = (rank_ - i - 1 + 2 * size_) % size_;
      raw_send(right, base + i, to_bytes(std::span<const T>(out[origin_out])));
      out[origin_in] = from_bytes<T>(raw_recv(left, base + i));
    }
    return out;
  }

  /// Concatenation of allgatherv in rank order.
  template <Pod T>
  std::vector<T> allgatherv_concat(std::span<const T> mine) {
    auto per_rank = allgatherv(mine);
    std::vector<T> out;
    std::size_t total = 0;
    for (const auto& r : per_rank) total += r.size();
    out.reserve(total);
    for (const auto& r : per_rank) out.insert(out.end(), r.begin(), r.end());
    return out;
  }

  /// Personalized all-to-all: outgoing[k] goes to rank k; returns
  /// incoming[k] = what rank k sent here. outgoing[rank()] is returned
  /// untouched (self-delivery is free).
  template <Pod T>
  std::vector<std::vector<T>> alltoallv(std::vector<std::vector<T>> outgoing) {
    PKIFMM_CHECK(static_cast<int>(outgoing.size()) == size_);
    std::vector<std::vector<T>> incoming(size_);
    incoming[rank_] = std::move(outgoing[rank_]);
    if (size_ == 1) return incoming;
    auto cs = cost_.collective("alltoallv", 1);
    const int tag = next_collective_tags(1);
    for (int k = 0; k < size_; ++k) {
      if (k == rank_) continue;
      raw_send(k, tag, to_bytes(std::span<const T>(outgoing[k])));
    }
    for (int k = 0; k < size_; ++k) {
      if (k == rank_) continue;
      incoming[k] = from_bytes<T>(raw_recv(k, tag));
    }
    return incoming;
  }

  /// Elementwise allreduce of equal-length vectors.
  template <Pod T, class Op>
  std::vector<T> allreduce(std::span<const T> mine, Op op) {
    auto per_rank = allgatherv(mine);
    std::vector<T> out(per_rank[0].begin(), per_rank[0].end());
    for (int k = 1; k < size_; ++k) {
      PKIFMM_CHECK(per_rank[k].size() == out.size());
      for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = op(out[i], per_rank[k][i]);
    }
    return out;
  }

  template <Pod T, class Op>
  T allreduce_one(const T& v, Op op) {
    return allreduce(std::span<const T>(&v, 1), op).front();
  }

  template <Pod T>
  T allreduce_sum(const T& v) {
    return allreduce_one(v, [](T a, T b) { return a + b; });
  }

  template <Pod T>
  T allreduce_max(const T& v) {
    return allreduce_one(v, [](T a, T b) { return a > b ? a : b; });
  }

  /// Exclusive prefix sum over ranks (rank 0 gets T{}).
  template <Pod T>
  T exscan_sum(const T& v) {
    auto all = allgather(v);
    T acc{};
    for (int k = 0; k < rank_; ++k) acc = acc + all[k];
    return acc;
  }

 private:
  static constexpr int kCollectiveTagBase = 1 << 20;

  /// Reserves `count` consecutive collective tags. All ranks execute
  /// collectives in the same order, so the per-rank counter stays in
  /// lockstep across ranks without coordination.
  int next_collective_tags(int count) {
    const int tag = kCollectiveTagBase + collective_seq_;
    collective_seq_ += count;
    return tag;
  }

  void raw_send(int dest, int tag, Bytes payload) {
    cost_.on_send(dest, payload.size());
    if (cost_.payload_digests_enabled())
      cost_.add_payload_sent_digest(
          obs::bytes_digest(payload.data(), payload.size()));
    // Stamp before the enqueue so the matched receive's dequeue time is
    // never earlier (non-negative latency after epoch alignment).
    if (obs::FlowRecorder* f = cost_.flow())
      f->on_send(dest, tag, static_cast<std::int64_t>(payload.size()));
    fabric_.send(rank_, dest, tag, std::move(payload));
  }

  Bytes raw_recv(int source, int tag) {
    obs::FlowRecorder* f = cost_.flow();
    if (f == nullptr) {
      Bytes payload = fabric_.recv(rank_, source, tag);
      cost_.on_recv(payload.size());
      if (cost_.payload_digests_enabled())
        cost_.add_payload_recv_digest(
            obs::bytes_digest(payload.data(), payload.size()));
      return payload;
    }
    const double t0 = f->now();
    bool blocked = false;
    Bytes payload = fabric_.recv(rank_, source, tag, &blocked);
    f->on_recv(source, tag, static_cast<std::int64_t>(payload.size()), t0,
               f->now(), blocked);
    cost_.on_recv(payload.size());
    if (cost_.payload_digests_enabled())
      cost_.add_payload_recv_digest(
          obs::bytes_digest(payload.data(), payload.size()));
    return payload;
  }

  Fabric& fabric_;
  int rank_;
  int size_;
  CostTracker& cost_;
  int collective_seq_ = 0;
};

/// Everything a rank's SPMD function can use: the communicator plus
/// rank-local time/flop accounting and the obs recorder the timer,
/// flop counter and cost tracker all report into.
struct RankCtx {
  Comm& comm;
  PhaseTimer& timer;
  FlopCounter& flops;
  obs::Recorder& rec;
  /// Intra-rank worker pool, set by the Runtime::run overload that
  /// takes a threads_per_rank. Null when the caller did not ask for
  /// intra-rank parallelism; core::Evaluator then sizes its own pool
  /// from FmmOptions::threads_per_rank.
  util::TaskPool* pool = nullptr;

  int rank() const { return comm.rank(); }
  int size() const { return comm.size(); }
};

/// Per-rank measurement snapshot returned by Runtime::run. The legacy
/// flat maps remain for existing aggregation code; `obs` carries the
/// same data (and the span trace) in canonical counter form — see
/// obs/export.hpp for the naming scheme.
struct RankReport {
  CostTracker cost;
  std::map<std::string, double> time_phases;      ///< wall seconds
  std::map<std::string, double> cpu_phases;       ///< thread-CPU seconds
  std::map<std::string, std::uint64_t> flop_phases;
  std::uint64_t total_flops = 0;
  obs::RankMetrics obs;                           ///< spans + counters
};

/// Copy of ctx.rec's snapshot with the flat timer/flop/cost tables
/// folded in as the canonical `time.*` / `flops.*` / `comm.*` /
/// `commx.*` / `coll.*` counters and the `obs.epoch` gauge — exactly
/// what Runtime::run publishes into RankReport::obs at the end of the
/// run, but available mid-run (core::ParallelFmm gathers it across
/// ranks at the end of evaluate() to build the cross-rank summary).
obs::RankMetrics snapshot_with_counters(const RankCtx& ctx);

/// Launches p simulated ranks (threads) running fn and returns their
/// reports. If any rank throws, the fabric is poisoned so the remaining
/// ranks unblock, and the first exception is rethrown.
class Runtime {
 public:
  static std::vector<RankReport> run(int nranks,
                                     const std::function<void(RankCtx&)>& fn);

  /// Same, but also gives every rank a util::TaskPool with
  /// `threads_per_rank - 1` worker threads (the rank thread itself is
  /// the pool's lane 0), exposed as RankCtx::pool. The request is
  /// clamped against hardware_concurrency() unless `clamp = false`
  /// (see util::recommended_workers). Pool scheduler statistics are
  /// folded into each rank's recorder before reports are built.
  static std::vector<RankReport> run(int nranks, int threads_per_rank,
                                     bool clamp,
                                     const std::function<void(RankCtx&)>& fn);
};

}  // namespace pkifmm::comm
