#include "comm/comm.hpp"

#include <exception>
#include <mutex>
#include <thread>

namespace pkifmm::comm {

void Comm::barrier() {
  if (size_ == 1) return;
  const int rounds = [&] {
    int r = 0;
    for (int k = 1; k < size_; k <<= 1) ++r;
    return r;
  }();
  const int base = next_collective_tags(rounds);
  // Dissemination barrier: in round i, signal rank (r + 2^i) mod p and
  // wait for rank (r - 2^i) mod p.
  for (int i = 0, step = 1; step < size_; ++i, step <<= 1) {
    const int to = (rank_ + step) % size_;
    const int from = (rank_ - step % size_ + size_) % size_;
    raw_send(to, base + i, Bytes{});
    raw_recv(from, base + i);
  }
}

std::vector<RankReport> Runtime::run(
    int nranks, const std::function<void(RankCtx&)>& fn) {
  PKIFMM_CHECK(nranks >= 1);
  Fabric fabric(nranks);
  std::vector<RankReport> reports(nranks);

  std::mutex err_mu;
  std::exception_ptr first_error;

  auto body = [&](int rank) {
    CostTracker cost;
    PhaseTimer timer;
    FlopCounter flops;
    Comm comm(fabric, rank, nranks, cost);
    RankCtx ctx{comm, timer, flops};
    try {
      fn(ctx);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      fabric.poison();
    }
    RankReport& rep = reports[rank];
    rep.cost = std::move(cost);
    rep.time_phases = timer.phases();
    rep.cpu_phases = timer.cpu_phases();
    rep.flop_phases = flops.phases();
    rep.total_flops = flops.total();
  };

  if (nranks == 1) {
    body(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(nranks);
    for (int r = 0; r < nranks; ++r) threads.emplace_back(body, r);
    for (auto& t : threads) t.join();
  }

  if (first_error) {
    // Suppress FabricPoisoned in favor of the root-cause exception.
    std::rethrow_exception(first_error);
  }
  return reports;
}

}  // namespace pkifmm::comm
