#include "comm/comm.hpp"

#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "util/task_pool.hpp"

namespace pkifmm::comm {

void Comm::barrier() {
  if (size_ == 1) return;
  const int rounds = [&] {
    int r = 0;
    for (int k = 1; k < size_; k <<= 1) ++r;
    return r;
  }();
  auto cs = cost_.collective("barrier", static_cast<std::uint64_t>(rounds));
  const int base = next_collective_tags(rounds);
  // Dissemination barrier: in round i, signal rank (r + 2^i) mod p and
  // wait for rank (r - 2^i) mod p.
  for (int i = 0, step = 1; step < size_; ++i, step <<= 1) {
    const int to = (rank_ + step) % size_;
    const int from = (rank_ - step % size_ + size_) % size_;
    raw_send(to, base + i, Bytes{});
    raw_recv(from, base + i);
  }
}

namespace {

/// Folds the flat per-phase tables into `m.counters` under the
/// canonical names documented in obs/export.hpp. Shared by the
/// Runtime::run epilogue and snapshot_with_counters so a mid-run
/// snapshot and the final report can never use different spellings.
void fold_flat_counters(obs::RankMetrics& m, const PhaseTimer& timer,
                        const FlopCounter& flops, const CostTracker& cost) {
  for (const auto& [name, v] : timer.phases())
    m.counters["time." + name + ".wall"] += v;
  for (const auto& [name, v] : timer.cpu_phases())
    m.counters["time." + name + ".cpu"] += v;
  for (const auto& [name, v] : flops.phases())
    m.counters["flops." + name] += static_cast<double>(v);
  for (const auto& [name, c] : cost.phases()) {
    m.counters["comm." + name + ".msgs_sent"] +=
        static_cast<double>(c.msgs_sent);
    m.counters["comm." + name + ".bytes_sent"] +=
        static_cast<double>(c.bytes_sent);
    m.counters["comm." + name + ".msgs_recv"] +=
        static_cast<double>(c.msgs_recv);
    m.counters["comm." + name + ".bytes_recv"] +=
        static_cast<double>(c.bytes_recv);
  }
  // Per-destination sends: one counter pair per (phase, dst) actually
  // used, parsed back into the dense per-phase traffic matrix by
  // obs::summarize_metrics.
  for (const auto& [phase, peers] : cost.peer_sends()) {
    for (const auto& [dst, p] : peers) {
      const std::string stem = "commx." + phase + ".dst" + std::to_string(dst);
      m.counters[stem + ".msgs"] += static_cast<double>(p.msgs);
      m.counters[stem + ".bytes"] += static_cast<double>(p.bytes);
    }
  }
  for (const auto& [name, s] : cost.collectives()) {
    m.counters["coll." + name + ".calls"] += static_cast<double>(s.calls);
    m.counters["coll." + name + ".rounds"] += static_cast<double>(s.rounds);
    m.counters["coll." + name + ".msgs"] += static_cast<double>(s.msgs);
    m.counters["coll." + name + ".bytes"] += static_cast<double>(s.bytes);
  }
  // Payload-transit digests (health layer): every message is matched
  // within the run, so across ranks Σ sent == Σ recv — the summary
  // compares the two sums as a transit-integrity sentinel. The owner
  // (ParallelFmm) may have unbound digesting by the time the epilogue
  // folds, so accumulated values count even when no longer enabled.
  if (cost.payload_digests_enabled() || cost.payload_sent_digest() != 0.0 ||
      cost.payload_recv_digest() != 0.0) {
    m.counters["health.comm.payload_sent"] += cost.payload_sent_digest();
    m.counters["health.comm.payload_recv"] += cost.payload_recv_digest();
  }
}

}  // namespace

obs::RankMetrics snapshot_with_counters(const RankCtx& ctx) {
  obs::RankMetrics m = ctx.rec.snapshot();
  m.gauges["obs.epoch"] = ctx.rec.epoch();
  fold_flat_counters(m, ctx.timer, ctx.flops, ctx.comm.cost());
  // A still-bound flow recorder hasn't published into ctx.rec yet; fold
  // it into this copy so mid-run snapshots carry the flow data too.
  // (Once published, the events live in the recorder snapshot already.)
  const obs::FlowRecorder* f = ctx.comm.cost().flow();
  if (f != nullptr && !f->published()) f->fold_into(m);
  return m;
}

namespace {

/// Shared SPMD driver; pool_workers < 0 means "no per-rank pool".
std::vector<RankReport> run_impl(int nranks, int pool_workers,
                                 const std::function<void(RankCtx&)>& fn) {
  PKIFMM_CHECK(nranks >= 1);
  Fabric fabric(nranks);
  obs::Registry registry;  // per-run, per-rank scoped recorders
  std::vector<RankReport> reports(nranks);

  std::mutex err_mu;
  std::exception_ptr first_error;

  auto body = [&](int rank) {
    CostTracker cost;
    PhaseTimer timer;
    FlopCounter flops;
    obs::Recorder& rec = registry.recorder(rank);
    cost.bind(&rec);
    timer.bind(&rec);
    flops.bind(&rec);
    // Thread-scoped hardware counters: constructed HERE, on the rank
    // thread, so the perf fds count this rank's execution. Falls back
    // to rusage-only sampling where perf_event_open is denied.
    obs::HwCounters hw;
    rec.bind_hw(&hw);
    Comm comm(fabric, rank, nranks, cost);
    RankCtx ctx{comm, timer, flops, rec};
    std::unique_ptr<util::TaskPool> pool;
    if (pool_workers >= 0) {
      pool = std::make_unique<util::TaskPool>(pool_workers);
      ctx.pool = pool.get();
    }
    try {
      fn(ctx);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      fabric.poison();
    }
    // Publish the flat maps as canonical obs counters (naming scheme
    // documented in obs/export.hpp) so one snapshot carries everything.
    if (pool) pool->fold_stats(rec);  // any scheduler residue since the
                                      // evaluator's own fold
    RankReport& rep = reports[rank];
    rec.gauge_set("mem.peak_rss_bytes",
                  static_cast<double>(obs::peak_rss_bytes()));
    rep.obs = rec.snapshot();
    rep.obs.gauges["obs.epoch"] = rec.epoch();
    fold_flat_counters(rep.obs, timer, flops, cost);
    rec.bind_hw(nullptr);  // hw dies with this scope
    cost.bind(nullptr);    // the recorder dies with this run
    rep.cost = std::move(cost);
    rep.time_phases = timer.phases();
    rep.cpu_phases = timer.cpu_phases();
    rep.flop_phases = flops.phases();
    rep.total_flops = flops.total();
  };

  if (nranks == 1) {
    body(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(nranks);
    for (int r = 0; r < nranks; ++r) threads.emplace_back(body, r);
    for (auto& t : threads) t.join();
  }

  if (first_error) {
    // Suppress FabricPoisoned in favor of the root-cause exception.
    std::rethrow_exception(first_error);
  }
  return reports;
}

}  // namespace

std::vector<RankReport> Runtime::run(
    int nranks, const std::function<void(RankCtx&)>& fn) {
  return run_impl(nranks, /*pool_workers=*/-1, fn);
}

std::vector<RankReport> Runtime::run(
    int nranks, int threads_per_rank, bool clamp,
    const std::function<void(RankCtx&)>& fn) {
  const int workers =
      util::recommended_workers(threads_per_rank, nranks, clamp) - 1;
  return run_impl(nranks, workers, fn);
}

}  // namespace pkifmm::comm
