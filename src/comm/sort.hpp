#pragma once
/// \file sort.hpp
/// \brief Distributed sorting and repartitioning primitives.
///
/// The paper's setup phase is dominated by the parallel sort of the
/// input points into Morton order ("the main communication cost is
/// associated with the parallel sort", §III-D, complexity
/// O(n/p log n/p + p log p), a combination of sample sort and bitonic
/// sort). This header implements the sample-sort component plus the two
/// repartitioning helpers the tree construction and load balancing use:
/// splitter-directed repartition and order-preserving rebalancing.

#include <algorithm>
#include <cstdint>

#include "comm/comm.hpp"

namespace pkifmm::comm {

/// Distributed bitonic sort of equal-size chunks over a power-of-two
/// communicator (the "bitonic" half of the paper's sort, after [5]).
/// Each rank holds exactly `chunk` elements; on return the
/// concatenation over ranks is globally sorted. Used to sort the
/// splitter samples inside sample_sort; also usable standalone.
template <Pod T, class Less>
void bitonic_sort_equal(Comm& c, std::vector<T>& data, Less less) {
  const int p = c.size();
  PKIFMM_CHECK_MSG((p & (p - 1)) == 0,
                   "bitonic sort requires power-of-two ranks");
  const std::size_t chunk = data.size();
  {
    // All chunks must be the same size.
    const auto sizes = c.allgather(static_cast<std::uint64_t>(chunk));
    for (auto s : sizes) PKIFMM_CHECK(s == chunk);
  }
  std::sort(data.begin(), data.end(), less);
  if (p == 1 || chunk == 0) return;

  const int r = c.rank();
  const int tag = 4242;
  // Bitonic network over ranks: stage k merges bitonic sequences of
  // length 2^(k+1); within a stage, substage j exchanges with the
  // partner at distance 2^j.
  for (int k = 1; k < p; k <<= 1) {
    for (int j = k; j >= 1; j >>= 1) {
      const int partner = r ^ j;
      const bool ascending = ((r & (k << 1)) == 0);
      const bool keep_low = (r < partner) == ascending;

      c.send(partner, tag, std::span<const T>(data));
      auto theirs = c.recv<T>(partner, tag);

      // Merge the two sorted runs and keep our half.
      std::vector<T> merged;
      merged.reserve(2 * chunk);
      std::merge(data.begin(), data.end(), theirs.begin(), theirs.end(),
                 std::back_inserter(merged), less);
      if (keep_low)
        data.assign(merged.begin(), merged.begin() + chunk);
      else
        data.assign(merged.end() - chunk, merged.end());
    }
  }
}

/// Globally sorts `data` (an arbitrary per-rank chunk) so that after the
/// call each rank holds a contiguous, locally sorted slice of the global
/// order: every element on rank k compares <= every element on rank k+1.
/// Sample sort: local sort, p regular samples per rank, splitter
/// selection on the sorted samples (sorted with the distributed bitonic
/// network when p is a power of two, as in the paper's
/// sample+bitonic combination), alltoallv redistribution, local merge.
template <Pod T, class Less>
void sample_sort(Comm& c, std::vector<T>& data, Less less) {
  std::sort(data.begin(), data.end(), less);
  const int p = c.size();
  if (p == 1) return;

  // Regular samples of the local run.
  std::vector<T> samples;
  const std::size_t n = data.size();
  const std::size_t want = std::min<std::size_t>(p, n);
  samples.reserve(want);
  for (std::size_t i = 0; i < want; ++i)
    samples.push_back(data[i * n / want]);

  std::vector<T> all;
  if ((p & (p - 1)) == 0 && samples.size() == static_cast<std::size_t>(p)) {
    // Equal chunks on a power-of-two communicator: sort the samples
    // with the bitonic network, then gather the sorted sequence.
    bitonic_sort_equal(c, samples, less);
    all = c.allgatherv_concat(std::span<const T>(samples));
  } else {
    all = c.allgatherv_concat(std::span<const T>(samples));
    std::sort(all.begin(), all.end(), less);
  }

  // p-1 splitters at regular positions of the sample set.
  std::vector<T> splitters;
  splitters.reserve(p - 1);
  if (!all.empty()) {
    for (int k = 1; k < p; ++k)
      splitters.push_back(all[std::min(all.size() - 1, k * all.size() / p)]);
  }

  std::vector<std::vector<T>> outgoing(p);
  if (splitters.empty()) {
    outgoing[0] = std::move(data);
  } else {
    std::size_t begin = 0;
    for (int k = 0; k < p; ++k) {
      const std::size_t end =
          k + 1 < p
              ? static_cast<std::size_t>(
                    std::lower_bound(data.begin() + begin, data.end(),
                                     splitters[k], less) -
                    data.begin())
              : data.size();
      outgoing[k].assign(data.begin() + begin, data.begin() + end);
      begin = end;
    }
  }

  auto incoming = c.alltoallv(std::move(outgoing));
  data.clear();
  for (auto& run : incoming)
    data.insert(data.end(), run.begin(), run.end());
  // Received runs are sorted individually; a final sort merges them.
  std::sort(data.begin(), data.end(), less);
}

/// Redistributes locally sorted data so rank k receives exactly the
/// elements x with splitters[k] <= key(x) < splitters[k+1] (elements
/// below splitters[0]... splitters[0] is conventionally the global
/// minimum and everything below it also lands on rank 0). `splitters`
/// must be identical on all ranks, have size() == comm size, and be
/// non-decreasing. Global sortedness is preserved.
template <Pod T, class K, class KeyFn, class KeyLess>
void repartition_by_splitters(Comm& c, std::vector<T>& data,
                              const std::vector<K>& splitters, KeyFn key,
                              KeyLess kless) {
  const int p = c.size();
  PKIFMM_CHECK(static_cast<int>(splitters.size()) == p);
  std::vector<std::vector<T>> outgoing(p);
  std::size_t begin = 0;
  for (int k = 0; k < p; ++k) {
    // End of rank k's slice: first element with key >= splitters[k+1].
    std::size_t end = data.size();
    if (k + 1 < p) {
      auto it = std::lower_bound(
          data.begin() + begin, data.end(), splitters[k + 1],
          [&](const T& a, const K& s) { return kless(key(a), s); });
      end = static_cast<std::size_t>(it - data.begin());
    }
    outgoing[k].assign(data.begin() + begin, data.begin() + end);
    begin = end;
  }
  auto incoming = c.alltoallv(std::move(outgoing));
  data.clear();
  for (auto& run : incoming) data.insert(data.end(), run.begin(), run.end());
}

/// Order-preserving rebalance: after the call every rank holds
/// floor/ceil(total/p) consecutive elements of the global order. This is
/// the "each process owns a contiguous chunk of the sorted array" step.
template <Pod T>
void rebalance_equal(Comm& c, std::vector<T>& data) {
  const int p = c.size();
  if (p == 1) return;
  const auto mine = static_cast<std::uint64_t>(data.size());
  const std::uint64_t before = c.exscan_sum(mine);
  const std::uint64_t total = c.allreduce_sum(mine);

  auto target_begin = [&](int k) {
    return static_cast<std::uint64_t>(k) * total / p;
  };

  std::vector<std::vector<T>> outgoing(p);
  for (int k = 0; k < p; ++k) {
    const std::uint64_t lo = std::max<std::uint64_t>(target_begin(k), before);
    const std::uint64_t hi =
        std::min<std::uint64_t>(k + 1 < p ? target_begin(k + 1) : total,
                                before + mine);
    if (lo < hi)
      outgoing[k].assign(data.begin() + (lo - before),
                         data.begin() + (hi - before));
  }
  auto incoming = c.alltoallv(std::move(outgoing));
  data.clear();
  for (auto& run : incoming) data.insert(data.end(), run.begin(), run.end());
}

/// Generic weighted partition of a globally ordered array (Algorithm 1
/// of Sundar et al. [16], which the paper uses for work-based leaf
/// repartitioning, §III-B): element i (global order) is assigned to rank
/// floor(p * prefix_weight(i) / total_weight), i.e. each rank ends up
/// with approximately equal total weight while the order is preserved.
/// `weight` maps an element to its (non-negative) work estimate.
template <Pod T, class WeightFn>
void weighted_partition(Comm& c, std::vector<T>& data, WeightFn weight) {
  const int p = c.size();
  if (p == 1) return;

  double local_w = 0.0;
  for (const T& x : data) local_w += static_cast<double>(weight(x));
  const double before = c.exscan_sum(local_w);
  const double total = c.allreduce_sum(local_w);
  if (total <= 0.0) {
    rebalance_equal(c, data);
    return;
  }

  std::vector<std::vector<T>> outgoing(p);
  double prefix = before;
  for (const T& x : data) {
    const double w = static_cast<double>(weight(x));
    // Assign by the midpoint of the element's weight interval so that
    // heavy elements land where most of their mass lies.
    const double mid = prefix + 0.5 * w;
    int dest = static_cast<int>(mid / total * p);
    dest = std::clamp(dest, 0, p - 1);
    outgoing[dest].push_back(x);
    prefix += w;
  }
  auto incoming = c.alltoallv(std::move(outgoing));
  data.clear();
  for (auto& run : incoming) data.insert(data.end(), run.begin(), run.end());
}

}  // namespace pkifmm::comm
