#pragma once
/// \file bytes.hpp
/// \brief Serialization of trivially copyable values into byte payloads.
///
/// Messages on the simulated interconnect are opaque byte vectors, like
/// MPI buffers. These helpers pack/unpack PODs and vectors of PODs; all
/// "ranks" live in one process and one architecture, so raw memcpy is a
/// faithful stand-in for MPI datatypes.

#include <cstddef>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace pkifmm::comm {

using Bytes = std::vector<std::byte>;

template <typename T>
concept Pod = std::is_trivially_copyable_v<T>;

/// Appends the raw bytes of v.
template <Pod T>
void pack(Bytes& out, const T& v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

/// Appends a length-prefixed vector.
template <Pod T>
void pack(Bytes& out, const std::vector<T>& v) {
  pack(out, static_cast<std::uint64_t>(v.size()));
  const auto* p = reinterpret_cast<const std::byte*>(v.data());
  out.insert(out.end(), p, p + v.size() * sizeof(T));
}

/// Cursor-based reader matching the pack() layout.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  template <Pod T>
  T read() {
    PKIFMM_CHECK_MSG(pos_ + sizeof(T) <= data_.size(), "payload underrun");
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <Pod T>
  std::vector<T> read_vector() {
    const auto n = read<std::uint64_t>();
    PKIFMM_CHECK_MSG(pos_ + n * sizeof(T) <= data_.size(), "payload underrun");
    std::vector<T> v(n);
    std::memcpy(v.data(), data_.data() + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return v;
  }

  bool done() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Packs a bare vector (no length prefix) as the whole payload.
template <Pod T>
Bytes to_bytes(std::span<const T> v) {
  Bytes out(v.size() * sizeof(T));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

/// Inverse of to_bytes.
template <Pod T>
std::vector<T> from_bytes(std::span<const std::byte> b) {
  PKIFMM_CHECK(b.size() % sizeof(T) == 0);
  std::vector<T> v(b.size() / sizeof(T));
  std::memcpy(v.data(), b.data(), b.size());
  return v;
}

}  // namespace pkifmm::comm
