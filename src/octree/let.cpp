#include "octree/let.hpp"

#include <algorithm>
#include <map>

namespace pkifmm::octree {

using morton::Bits;
using morton::Key;

namespace {

/// Ghost-octant message header; point payloads travel in a parallel
/// stream in the same per-destination order.
struct OctMsg {
  Bits bits;
  std::uint8_t level;
  std::uint8_t global_leaf;
  std::uint32_t npoints;
};
static_assert(std::is_trivially_copyable_v<OctMsg>);

/// Density-refresh message header (see refresh_ghost_densities).
struct DenMsg {
  Bits bits;
  std::uint8_t level;
  std::uint32_t npoints;
};
static_assert(std::is_trivially_copyable_v<DenMsg>);

/// Staging entry for one octant while the LET is being merged.
struct Staged {
  bool global_leaf = false;
  bool owned = false;
  std::vector<PointRec> pts;
};

/// Destination ranks for octant beta: every rank whose ownership region
/// overlaps the neighborhood of beta's parent (colleagues of P(beta)
/// plus P(beta) itself — the "user" rule of §III-A). Root octants go to
/// everyone.
void user_ranks(const Key& beta, const std::vector<Bits>& splitters,
                std::vector<char>& mark) {
  std::fill(mark.begin(), mark.end(), 0);
  const int p = static_cast<int>(mark.size());
  if (beta.level == 0) {
    std::fill(mark.begin(), mark.end(), 1);
    return;
  }
  for (const Key& kappa : morton::neighborhood(morton::parent(beta))) {
    const auto [lo, hi] = overlapping_ranks(kappa, splitters);
    for (int r = std::max(lo, 0); r <= std::min(hi, p - 1); ++r) mark[r] = 1;
  }
}

}  // namespace

int Let::max_leaf_level() const {
  int m = 0;
  for (const LetNode& n : nodes)
    if (n.global_leaf) m = std::max(m, static_cast<int>(n.key.level));
  return m;
}

int Let::min_leaf_level() const {
  int m = morton::kMaxDepth;
  for (const LetNode& n : nodes)
    if (n.global_leaf) m = std::min(m, static_cast<int>(n.key.level));
  return m;
}

std::size_t Let::ghost_bytes() const {
  std::size_t b = 0;
  for (const LetNode& n : nodes)
    if (n.global_leaf && !n.owned)
      b += sizeof(LetNode) +
           static_cast<std::size_t>(n.point_count) * sizeof(PointRec);
  return b;
}

std::size_t Let::total_bytes() const {
  auto cap = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::
                                     value_type);
  };
  std::size_t b = cap(nodes) + cap(points) + cap(splitters) +
                  cap(ghost_subscriptions);
  for (const ListSet* ls : {&u, &v, &w, &x})
    b += cap(ls->offset) + cap(ls->items);
  // Hash index: entries plus a per-bucket pointer (implementation
  // detail, but the right order of magnitude on every libstdc++).
  b += index_.size() * (sizeof(morton::Key) + sizeof(std::int32_t) +
                        2 * sizeof(void*)) +
       index_.bucket_count() * sizeof(void*);
  return b;
}

Let build_let(comm::Comm& c, const OwnedTree& tree) {
  const int p = c.size();
  std::unordered_map<Key, Staged, morton::KeyHash> staged;

  // B_k: owned leaves with their points, plus all ancestors.
  for (std::size_t i = 0; i < tree.leaves.size(); ++i) {
    Staged& s = staged[tree.leaves[i]];
    s.global_leaf = true;
    s.owned = true;
    s.pts.assign(tree.points.begin() + tree.leaf_point_offset[i],
                 tree.points.begin() + tree.leaf_point_offset[i + 1]);
  }
  for (const Key& leaf : tree.leaves) {
    Key k = leaf;
    while (k.level > 0) {
      k = morton::parent(k);
      auto [it, inserted] = staged.try_emplace(k);
      (void)it;
      if (!inserted) break;  // ancestors above are already present
    }
  }

  // Ghost exchange (Algorithm 2 steps 3-4).
  std::vector<std::vector<OctMsg>> msg_out(p);
  std::vector<std::vector<PointRec>> pts_out(p);
  std::map<Key, std::vector<std::int32_t>> leaf_consumers;  // for refresh
  std::vector<char> mark(p);
  for (const auto& [key, s] : staged) {
    user_ranks(key, tree.splitters, mark);
    for (int dest = 0; dest < p; ++dest) {
      if (dest == c.rank() || !mark[dest]) continue;
      msg_out[dest].push_back(OctMsg{key.bits, key.level,
                                     static_cast<std::uint8_t>(s.global_leaf),
                                     static_cast<std::uint32_t>(s.pts.size())});
      pts_out[dest].insert(pts_out[dest].end(), s.pts.begin(), s.pts.end());
      if (s.owned && s.global_leaf) leaf_consumers[key].push_back(dest);
    }
  }
  auto msg_in = c.alltoallv(std::move(msg_out));
  auto pts_in = c.alltoallv(std::move(pts_out));

  for (int r = 0; r < p; ++r) {
    if (r == c.rank()) continue;
    std::size_t cursor = 0;
    for (const OctMsg& m : msg_in[r]) {
      const Key k{m.bits, m.level};
      Staged& s = staged[k];
      if (m.global_leaf) {
        PKIFMM_CHECK_MSG(!s.owned, "owned leaf received as ghost");
        s.global_leaf = true;
        PKIFMM_CHECK(cursor + m.npoints <= pts_in[r].size());
        s.pts.assign(pts_in[r].begin() + cursor,
                     pts_in[r].begin() + cursor + m.npoints);
      }
      cursor += m.npoints;
    }
    PKIFMM_CHECK_MSG(cursor == pts_in[r].size(),
                     "ghost point stream out of sync with headers");
  }

  // Ancestor closure: every node's parent chain must exist so the list
  // construction can descend through the tree.
  {
    std::vector<Key> keys;
    keys.reserve(staged.size());
    for (const auto& [key, s] : staged) keys.push_back(key);
    for (const Key& k0 : keys) {
      Key k = k0;
      while (k.level > 0) {
        k = morton::parent(k);
        auto [it, inserted] = staged.try_emplace(k);
        (void)it;
        if (!inserted) break;
      }
    }
  }

  // Assemble the node array in Morton (preorder) order.
  Let let;
  let.splitters = tree.splitters;
  std::vector<Key> keys;
  keys.reserve(staged.size());
  for (const auto& [key, s] : staged) keys.push_back(key);
  std::sort(keys.begin(), keys.end());

  let.nodes.resize(keys.size());
  let.index_.reserve(keys.size());
  std::size_t npts = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const Staged& s = staged[keys[i]];
    LetNode& n = let.nodes[i];
    n.key = keys[i];
    n.global_leaf = s.global_leaf;
    n.owned = s.owned;
    npts += s.pts.size();
    let.index_.emplace(keys[i], static_cast<std::int32_t>(i));
  }

  // Parent/child links.
  for (std::size_t i = 0; i < let.nodes.size(); ++i) {
    LetNode& n = let.nodes[i];
    if (n.key.level == 0) continue;
    const std::int32_t pi = let.find(morton::parent(n.key));
    PKIFMM_CHECK_MSG(pi >= 0, "ancestor closure violated");
    n.parent = pi;
    let.nodes[pi].child[morton::child_index(n.key)] =
        static_cast<std::int32_t>(i);
  }

  // Targets: owned leaves and their ancestors.
  for (std::size_t i = 0; i < let.nodes.size(); ++i) {
    if (!let.nodes[i].owned) continue;
    std::int32_t j = static_cast<std::int32_t>(i);
    while (j >= 0 && !let.nodes[j].target) {
      let.nodes[j].target = true;
      j = let.nodes[j].parent;
    }
  }

  // Point layout: grouped by leaf, in node order, targets before
  // source-only points (so target potentials are contiguous per leaf).
  let.points.reserve(npts);
  for (std::size_t i = 0; i < let.nodes.size(); ++i) {
    LetNode& n = let.nodes[i];
    Staged& s = staged[n.key];
    std::stable_partition(s.pts.begin(), s.pts.end(),
                          [](const PointRec& p) { return p.is_target(); });
    n.point_begin = static_cast<std::uint32_t>(let.points.size());
    n.point_count = static_cast<std::uint32_t>(s.pts.size());
    n.target_count = static_cast<std::uint32_t>(
        std::count_if(s.pts.begin(), s.pts.end(),
                      [](const PointRec& p) { return p.is_target(); }));
    let.points.insert(let.points.end(), s.pts.begin(), s.pts.end());
  }

  // Ghost-density subscriptions, now that node indices exist.
  for (const auto& [key, dests] : leaf_consumers) {
    const std::int32_t ni = let.find(key);
    PKIFMM_CHECK(ni >= 0);
    for (std::int32_t dest : dests) let.ghost_subscriptions.emplace_back(ni, dest);
  }
  return let;
}

namespace {

/// Deepest LET node whose region contains the probe octant (searching
/// from the probe's level upward). -1 if no ancestor-or-self exists.
std::int32_t find_containing(const Let& let, const Key& probe) {
  for (int l = probe.level; l >= 0; --l) {
    const std::int32_t idx = let.find(morton::ancestor_at(probe, l));
    if (idx >= 0) return idx;
  }
  return -1;
}

/// Collects U members (adjacent leaves) and W members (non-adjacent
/// children of adjacent octants) below gamma. Invariant: gamma's region
/// is adjacent to beta.
void descend_uw(const Let& let, const Key& beta, std::int32_t gamma,
                std::vector<std::int32_t>& u, std::vector<std::int32_t>& w) {
  for (std::int32_t ci : let.nodes[gamma].child) {
    if (ci < 0) continue;
    const LetNode& cn = let.nodes[ci];
    if (morton::adjacent(cn.key, beta)) {
      if (cn.global_leaf)
        u.push_back(ci);
      else
        descend_uw(let, beta, ci, u, w);
    } else {
      // Parent adjacent, child not: the child (leaf or not) is in W.
      w.push_back(ci);
    }
  }
}

void sort_unique(std::vector<std::int32_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

ListSet compress(const std::vector<std::vector<std::int32_t>>& per_node) {
  ListSet out;
  out.offset.resize(per_node.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < per_node.size(); ++i) {
    out.offset[i] = static_cast<std::int32_t>(total);
    total += per_node[i].size();
  }
  out.offset[per_node.size()] = static_cast<std::int32_t>(total);
  out.items.reserve(total);
  for (const auto& v : per_node)
    out.items.insert(out.items.end(), v.begin(), v.end());
  return out;
}

}  // namespace

void build_interaction_lists(Let& let) {
  const std::size_t n = let.nodes.size();
  std::vector<std::vector<std::int32_t>> u(n), v(n), w(n), x(n);

  for (std::size_t i = 0; i < n; ++i) {
    const LetNode& node = let.nodes[i];
    if (!node.target) continue;
    const Key beta = node.key;

    // --- U and W lists (owned leaves only) ---
    if (node.owned && node.global_leaf) {
      u[i].push_back(static_cast<std::int32_t>(i));  // beta is in U(beta)
      for (int dx = -1; dx <= 1; ++dx)
        for (int dy = -1; dy <= 1; ++dy)
          for (int dz = -1; dz <= 1; ++dz) {
            if (dx == 0 && dy == 0 && dz == 0) continue;
            const auto nb = morton::neighbor(beta, dx, dy, dz);
            if (!nb) continue;
            const std::int32_t found = find_containing(let, *nb);
            if (found < 0) continue;
            const LetNode& fn = let.nodes[found];
            if (fn.global_leaf) {
              if (morton::adjacent(fn.key, beta))
                u[i].push_back(found);
            } else if (fn.key.level == beta.level) {
              // The colleague itself exists and is refined: descend for
              // finer adjacent leaves (U) and their non-adjacent
              // siblings (W).
              descend_uw(let, beta, found, u[i], w[i]);
            }
            // Internal node coarser than beta: nothing interacts here
            // (its relevant descendants would have forced finer LET
            // nodes via the ancestor closure).
          }
      sort_unique(u[i]);
      sort_unique(w[i]);
    }

    if (beta.level == 0) continue;
    const Key par = morton::parent(beta);

    // --- V list: children of parent's colleagues not adjacent to beta.
    for (const Key& kappa : morton::colleagues(par)) {
      const std::int32_t ki = let.find(kappa);
      if (ki < 0) continue;
      for (std::int32_t ci : let.nodes[ki].child) {
        if (ci < 0) continue;
        if (!morton::adjacent(let.nodes[ci].key, beta)) v[i].push_back(ci);
      }
    }

    // --- X list: leaves coarser than beta, adjacent to P(beta) but not
    // to beta (the duals of W).
    for (int dx = -1; dx <= 1; ++dx)
      for (int dy = -1; dy <= 1; ++dy)
        for (int dz = -1; dz <= 1; ++dz) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          const auto nb = morton::neighbor(par, dx, dy, dz);
          if (!nb) continue;
          const std::int32_t found = find_containing(let, *nb);
          if (found < 0) continue;
          const LetNode& fn = let.nodes[found];
          if (fn.global_leaf && morton::adjacent(fn.key, par) &&
              !morton::adjacent(fn.key, beta))
            x[i].push_back(found);
        }
    sort_unique(x[i]);
  }

  let.u = compress(u);
  let.v = compress(v);
  let.w = compress(w);
  let.x = compress(x);
}

void refresh_ghost_densities(comm::Comm& c, Let& let) {
  const int p = c.size();
  std::vector<std::vector<DenMsg>> hdr_out(p);
  std::vector<std::vector<double>> den_out(p);
  for (const auto& [ni, dest] : let.ghost_subscriptions) {
    const LetNode& n = let.nodes[ni];
    hdr_out[dest].push_back(DenMsg{n.key.bits, n.key.level, n.point_count});
    for (const PointRec& pt : let.points_of(n))
      den_out[dest].insert(den_out[dest].end(), pt.den,
                           pt.den + kMaxDensityDim);
  }
  auto hdr_in = c.alltoallv(std::move(hdr_out));
  auto den_in = c.alltoallv(std::move(den_out));

  for (int r = 0; r < p; ++r) {
    if (r == c.rank()) continue;
    std::size_t cursor = 0;
    for (const DenMsg& m : hdr_in[r]) {
      const std::int32_t ni = let.find(Key{m.bits, m.level});
      PKIFMM_CHECK_MSG(ni >= 0, "density refresh for unknown ghost leaf");
      LetNode& n = let.nodes[ni];
      PKIFMM_CHECK(n.point_count == m.npoints);
      for (PointRec& pt : let.points_of(n)) {
        for (int d = 0; d < kMaxDensityDim; ++d)
          pt.den[d] = den_in[r][cursor + d];
        cursor += kMaxDensityDim;
      }
    }
    PKIFMM_CHECK(cursor == den_in[r].size());
  }
}

}  // namespace pkifmm::octree
