#include "octree/let.hpp"

#include <algorithm>
#include <map>

namespace pkifmm::octree {

using morton::Bits;
using morton::Key;

namespace {

/// Ghost-octant delta message; SET-leaf point payloads travel in a
/// parallel stream in the same per-destination order.
struct UpdMsg {
  Bits bits;
  std::uint8_t level;
  std::uint8_t op;
  std::uint32_t npoints;
};
static_assert(std::is_trivially_copyable_v<UpdMsg>);

inline constexpr std::uint8_t kSetNode = 0;  ///< add/keep an internal octant
inline constexpr std::uint8_t kSetLeaf = 1;  ///< add/replace a leaf + points
inline constexpr std::uint8_t kRemove = 2;   ///< withdraw a contribution

/// Density-refresh message header (see refresh_ghost_densities).
struct DenMsg {
  Bits bits;
  std::uint8_t level;
  std::uint32_t npoints;
};
static_assert(std::is_trivially_copyable_v<DenMsg>);

/// Destination ranks for octant beta: every rank whose ownership region
/// overlaps the neighborhood of beta's parent (colleagues of P(beta)
/// plus P(beta) itself — the "user" rule of §III-A). Root octants go to
/// everyone.
void user_ranks(const Key& beta, const std::vector<Bits>& splitters,
                std::vector<char>& mark) {
  std::fill(mark.begin(), mark.end(), 0);
  const int p = static_cast<int>(mark.size());
  if (beta.level == 0) {
    std::fill(mark.begin(), mark.end(), 1);
    return;
  }
  for (const Key& kappa : morton::neighborhood(morton::parent(beta))) {
    const auto [lo, hi] = overlapping_ranks(kappa, splitters);
    for (int r = std::max(lo, 0); r <= std::min(hi, p - 1); ++r) mark[r] = 1;
  }
}

bool same_key(const Key& a, const Key& b) {
  return a.bits == b.bits && a.level == b.level;
}

}  // namespace

int Let::max_leaf_level() const {
  int m = 0;
  for (const LetNode& n : nodes)
    if (n.global_leaf) m = std::max(m, static_cast<int>(n.key.level));
  return m;
}

int Let::min_leaf_level() const {
  int m = morton::kMaxDepth;
  for (const LetNode& n : nodes)
    if (n.global_leaf) m = std::min(m, static_cast<int>(n.key.level));
  return m;
}

std::size_t Let::ghost_bytes() const {
  std::size_t b = 0;
  for (const LetNode& n : nodes)
    if (n.global_leaf && !n.owned)
      b += sizeof(LetNode) +
           static_cast<std::size_t>(n.point_count) * sizeof(PointRec);
  return b;
}

std::size_t Let::total_bytes() const {
  auto cap = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::
                                     value_type);
  };
  std::size_t b = cap(nodes) + cap(points) + cap(splitters) +
                  cap(ghost_subscriptions);
  for (const ListSet* ls : {&u, &v, &w, &x})
    b += cap(ls->offset) + cap(ls->items);
  // Hash index: entries plus a per-bucket pointer (implementation
  // detail, but the right order of magnitude on every libstdc++).
  b += index_.size() * (sizeof(morton::Key) + sizeof(std::int32_t) +
                        2 * sizeof(void*)) +
       index_.bucket_count() * sizeof(void*);
  return b;
}

Let LetSync::build(comm::Comm& c, const OwnedTree& tree) {
  // A full build is the delta against empty state: every contribution
  // is new, so the update path sends complete SETs everywhere.
  own_.clear();
  ghost_.clear();
  return update(c, tree, {}, nullptr);
}

Let LetSync::update(comm::Comm& c, const OwnedTree& tree,
                    std::span<const morton::Key> dirty_leaves,
                    LetSyncStats* stats) {
  const int p = c.size();

  // B_k now: owned leaves plus all their ancestors.
  std::map<Key, bool> now;  // key -> is_leaf
  for (const Key& leaf : tree.leaves) now.emplace(leaf, true);
  for (const Key& leaf : tree.leaves) {
    Key k = leaf;
    while (k.level > 0) {
      k = morton::parent(k);
      if (!now.emplace(k, false).second) break;  // ancestors present above
    }
  }

  std::vector<Key> dirty(dirty_leaves.begin(), dirty_leaves.end());
  std::sort(dirty.begin(), dirty.end());
  std::unordered_map<Key, std::size_t, morton::KeyHash> leaf_at;
  leaf_at.reserve(tree.leaves.size());
  for (std::size_t i = 0; i < tree.leaves.size(); ++i)
    leaf_at.emplace(tree.leaves[i], i);

  // Sender-side diff: what each destination must learn relative to
  // what we last sent it.
  std::vector<std::vector<UpdMsg>> msg_out(p);
  std::vector<std::vector<PointRec>> pts_out(p);
  LetSyncStats st;
  auto emit_set = [&](const Key& k, bool leaf, std::int32_t dest) {
    std::uint32_t npts = 0;
    if (leaf) {
      const std::size_t li = leaf_at.at(k);
      npts = static_cast<std::uint32_t>(tree.leaf_point_offset[li + 1] -
                                        tree.leaf_point_offset[li]);
      pts_out[dest].insert(pts_out[dest].end(),
                           tree.points.begin() + tree.leaf_point_offset[li],
                           tree.points.begin() +
                               tree.leaf_point_offset[li + 1]);
      st.ghost_points_sent += npts;
    }
    msg_out[dest].push_back(UpdMsg{
        k.bits, k.level,
        leaf ? kSetLeaf : kSetNode, npts});
    ++st.octants_sent;
  };
  auto emit_remove = [&](const Key& k, std::int32_t dest) {
    msg_out[dest].push_back(UpdMsg{k.bits, k.level, kRemove, 0});
    ++st.removes_sent;
  };

  std::map<Key, OwnEntry> own_new;
  std::vector<char> mark(p);
  auto old_it = own_.begin();
  for (const auto& [k, leaf] : now) {
    while (old_it != own_.end() && old_it->first < k) {
      for (std::int32_t d : old_it->second.dests) emit_remove(old_it->first, d);
      ++old_it;
    }
    user_ranks(k, tree.splitters, mark);
    std::vector<std::int32_t> dests;
    for (int d = 0; d < p; ++d)
      if (d != c.rank() && mark[d]) dests.push_back(d);

    if (old_it != own_.end() && same_key(old_it->first, k)) {
      const OwnEntry& old = old_it->second;
      const bool content_changed =
          old.leaf != leaf ||
          (leaf && std::binary_search(dirty.begin(), dirty.end(), k));
      if (content_changed) {
        for (std::int32_t d : dests) emit_set(k, leaf, d);
      } else {
        std::vector<std::int32_t> added;
        std::set_difference(dests.begin(), dests.end(), old.dests.begin(),
                            old.dests.end(), std::back_inserter(added));
        for (std::int32_t d : added) emit_set(k, leaf, d);
      }
      std::vector<std::int32_t> dropped;
      std::set_difference(old.dests.begin(), old.dests.end(), dests.begin(),
                          dests.end(), std::back_inserter(dropped));
      for (std::int32_t d : dropped) emit_remove(k, d);
      ++old_it;
    } else {
      for (std::int32_t d : dests) emit_set(k, leaf, d);
    }
    own_new.emplace(k, OwnEntry{leaf, std::move(dests)});
  }
  for (; old_it != own_.end(); ++old_it)
    for (std::int32_t d : old_it->second.dests)
      emit_remove(old_it->first, d);
  own_ = std::move(own_new);

  for (int d = 0; d < p; ++d)
    if (!msg_out[d].empty()) ++st.ranks_touched;

  auto msg_in = c.alltoallv(std::move(msg_out));
  auto pts_in = c.alltoallv(std::move(pts_out));

  // Receiver side. Removes first, then sets: a leaf that migrated
  // between two contributors in one step arrives as a REMOVE from the
  // old owner and a SET from the new one, in either rank order.
  for (int r = 0; r < p; ++r) {
    if (r == c.rank()) continue;
    for (const UpdMsg& m : msg_in[r]) {
      if (m.op != kRemove) continue;
      ++st.removes_recv;
      const Key k{m.bits, m.level};
      auto it = ghost_.find(k);
      PKIFMM_CHECK_MSG(it != ghost_.end(), "ghost REMOVE for unknown octant");
      GhostEntry& g = it->second;
      auto ct = std::lower_bound(g.contributors.begin(), g.contributors.end(),
                                 r);
      PKIFMM_CHECK_MSG(ct != g.contributors.end() && *ct == r,
                       "ghost REMOVE from a non-contributor");
      g.contributors.erase(ct);
      if (g.leaf_from == r) {
        g.leaf_from = -1;
        g.pts.clear();
      }
      if (g.contributors.empty()) ghost_.erase(it);
    }
  }
  for (int r = 0; r < p; ++r) {
    if (r == c.rank()) continue;
    std::size_t cursor = 0;
    for (const UpdMsg& m : msg_in[r]) {
      if (m.op == kRemove) continue;
      ++st.octants_recv;
      const Key k{m.bits, m.level};
      GhostEntry& g = ghost_[k];
      auto ct = std::lower_bound(g.contributors.begin(), g.contributors.end(),
                                 r);
      if (ct == g.contributors.end() || *ct != r)
        g.contributors.insert(ct, r);
      if (m.op == kSetLeaf) {
        PKIFMM_CHECK_MSG(g.leaf_from < 0 || g.leaf_from == r,
                         "two ranks claim the same ghost leaf");
        g.leaf_from = r;
        PKIFMM_CHECK(cursor + m.npoints <= pts_in[r].size());
        g.pts.assign(pts_in[r].begin() + cursor,
                     pts_in[r].begin() + cursor + m.npoints);
        cursor += m.npoints;
      } else if (g.leaf_from == r) {
        g.leaf_from = -1;  // the sender's octant was refined
        g.pts.clear();
      }
    }
    PKIFMM_CHECK_MSG(cursor == pts_in[r].size(),
                     "ghost point stream out of sync with headers");
  }

  if (stats) *stats = st;
  return assemble(tree);
}

Let LetSync::assemble(const OwnedTree& tree) const {
  Let let;
  let.splitters = tree.splitters;

  // Node key set: own contribution, ghosts, and the ancestor closure
  // (every node's parent chain must exist so the list-construction
  // descents are complete).
  std::vector<Key> keys;
  keys.reserve(own_.size() + ghost_.size());
  std::unordered_map<Key, char, morton::KeyHash> present;
  present.reserve(own_.size() + ghost_.size());
  for (const auto& [k, e] : own_)
    if (present.emplace(k, 1).second) keys.push_back(k);
  for (const auto& [k, g] : ghost_)
    if (present.emplace(k, 1).second) keys.push_back(k);
  for (std::size_t i = 0, n = keys.size(); i < n; ++i) {
    Key k = keys[i];
    while (k.level > 0) {
      k = morton::parent(k);
      if (!present.emplace(k, 1).second) break;
      keys.push_back(k);
    }
  }
  std::sort(keys.begin(), keys.end());

  std::unordered_map<Key, std::size_t, morton::KeyHash> leaf_at;
  leaf_at.reserve(tree.leaves.size());
  for (std::size_t i = 0; i < tree.leaves.size(); ++i)
    leaf_at.emplace(tree.leaves[i], i);

  let.nodes.resize(keys.size());
  let.index_.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    LetNode& n = let.nodes[i];
    n.key = keys[i];
    auto oit = own_.find(keys[i]);
    auto git = ghost_.find(keys[i]);
    const bool own_leaf = oit != own_.end() && oit->second.leaf;
    const bool ghost_leaf = git != ghost_.end() && git->second.leaf_from >= 0;
    PKIFMM_CHECK_MSG(!(own_leaf && ghost_leaf),
                     "owned leaf received as ghost");
    n.global_leaf = own_leaf || ghost_leaf;
    n.owned = own_leaf;
    let.index_.emplace(keys[i], static_cast<std::int32_t>(i));
  }

  // Parent/child links.
  for (std::size_t i = 0; i < let.nodes.size(); ++i) {
    LetNode& n = let.nodes[i];
    if (n.key.level == 0) continue;
    const std::int32_t pi = let.find(morton::parent(n.key));
    PKIFMM_CHECK_MSG(pi >= 0, "ancestor closure violated");
    n.parent = pi;
    let.nodes[pi].child[morton::child_index(n.key)] =
        static_cast<std::int32_t>(i);
  }

  // Targets: owned leaves and their ancestors.
  for (std::size_t i = 0; i < let.nodes.size(); ++i) {
    if (!let.nodes[i].owned) continue;
    std::int32_t j = static_cast<std::int32_t>(i);
    while (j >= 0 && !let.nodes[j].target) {
      let.nodes[j].target = true;
      j = let.nodes[j].parent;
    }
  }

  // Point layout: grouped by leaf, in node order, targets before
  // source-only points (so target potentials are contiguous per leaf).
  // Owned leaves read from the tree, ghosts from the retained staging;
  // the partition happens on a scratch copy — the staging keeps the
  // sender's canonical order so future diffs compare like with like.
  std::vector<PointRec> scratch;
  for (std::size_t i = 0; i < let.nodes.size(); ++i) {
    LetNode& n = let.nodes[i];
    scratch.clear();
    if (n.owned) {
      const std::size_t li = leaf_at.at(n.key);
      scratch.assign(tree.points.begin() + tree.leaf_point_offset[li],
                     tree.points.begin() + tree.leaf_point_offset[li + 1]);
    } else if (n.global_leaf) {
      const GhostEntry& g = ghost_.find(n.key)->second;
      scratch.assign(g.pts.begin(), g.pts.end());
    }
    std::stable_partition(scratch.begin(), scratch.end(),
                          [](const PointRec& p) { return p.is_target(); });
    n.point_begin = static_cast<std::uint32_t>(let.points.size());
    n.point_count = static_cast<std::uint32_t>(scratch.size());
    n.target_count = static_cast<std::uint32_t>(
        std::count_if(scratch.begin(), scratch.end(),
                      [](const PointRec& p) { return p.is_target(); }));
    let.points.insert(let.points.end(), scratch.begin(), scratch.end());
  }

  // Ghost-density subscriptions, now that node indices exist.
  for (const auto& [key, e] : own_) {
    if (!e.leaf || e.dests.empty()) continue;
    const std::int32_t ni = let.find(key);
    PKIFMM_CHECK(ni >= 0);
    for (std::int32_t dest : e.dests)
      let.ghost_subscriptions.emplace_back(ni, dest);
  }
  return let;
}

Let build_let(comm::Comm& c, const OwnedTree& tree) {
  LetSync sync;
  return sync.build(c, tree);
}

namespace {

/// Deepest LET node whose region contains the probe octant (searching
/// from the probe's level upward). -1 if no ancestor-or-self exists.
std::int32_t find_containing(const Let& let, const Key& probe) {
  for (int l = probe.level; l >= 0; --l) {
    const std::int32_t idx = let.find(morton::ancestor_at(probe, l));
    if (idx >= 0) return idx;
  }
  return -1;
}

/// Collects U members (adjacent leaves) and W members (non-adjacent
/// children of adjacent octants) below gamma. Invariant: gamma's region
/// is adjacent to beta.
void descend_uw(const Let& let, const Key& beta, std::int32_t gamma,
                std::vector<std::int32_t>& u, std::vector<std::int32_t>& w) {
  for (std::int32_t ci : let.nodes[gamma].child) {
    if (ci < 0) continue;
    const LetNode& cn = let.nodes[ci];
    if (morton::adjacent(cn.key, beta)) {
      if (cn.global_leaf)
        u.push_back(ci);
      else
        descend_uw(let, beta, ci, u, w);
    } else {
      // Parent adjacent, child not: the child (leaf or not) is in W.
      w.push_back(ci);
    }
  }
}

void sort_unique(std::vector<std::int32_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

ListSet compress(const std::vector<std::vector<std::int32_t>>& per_node) {
  ListSet out;
  out.offset.resize(per_node.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < per_node.size(); ++i) {
    out.offset[i] = static_cast<std::int32_t>(total);
    total += per_node[i].size();
  }
  out.offset[per_node.size()] = static_cast<std::int32_t>(total);
  out.items.reserve(total);
  for (const auto& v : per_node)
    out.items.insert(out.items.end(), v.begin(), v.end());
  return out;
}

/// U/V/W/X construction for one target node, per Table I of the paper.
void lists_for_node(const Let& let, std::size_t i,
                    std::vector<std::int32_t>& u, std::vector<std::int32_t>& v,
                    std::vector<std::int32_t>& w,
                    std::vector<std::int32_t>& x) {
  const LetNode& node = let.nodes[i];
  const Key beta = node.key;

  // --- U and W lists (owned leaves only) ---
  if (node.owned && node.global_leaf) {
    u.push_back(static_cast<std::int32_t>(i));  // beta is in U(beta)
    for (int dx = -1; dx <= 1; ++dx)
      for (int dy = -1; dy <= 1; ++dy)
        for (int dz = -1; dz <= 1; ++dz) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          const auto nb = morton::neighbor(beta, dx, dy, dz);
          if (!nb) continue;
          const std::int32_t found = find_containing(let, *nb);
          if (found < 0) continue;
          const LetNode& fn = let.nodes[found];
          if (fn.global_leaf) {
            if (morton::adjacent(fn.key, beta))
              u.push_back(found);
          } else if (fn.key.level == beta.level) {
            // The colleague itself exists and is refined: descend for
            // finer adjacent leaves (U) and their non-adjacent
            // siblings (W).
            descend_uw(let, beta, found, u, w);
          }
          // Internal node coarser than beta: nothing interacts here
          // (its relevant descendants would have forced finer LET
          // nodes via the ancestor closure).
        }
    sort_unique(u);
    sort_unique(w);
  }

  if (beta.level == 0) return;
  const Key par = morton::parent(beta);

  // --- V list: children of parent's colleagues not adjacent to beta.
  for (const Key& kappa : morton::colleagues(par)) {
    const std::int32_t ki = let.find(kappa);
    if (ki < 0) continue;
    for (std::int32_t ci : let.nodes[ki].child) {
      if (ci < 0) continue;
      if (!morton::adjacent(let.nodes[ci].key, beta)) v.push_back(ci);
    }
  }

  // --- X list: leaves coarser than beta, adjacent to P(beta) but not
  // to beta (the duals of W).
  for (int dx = -1; dx <= 1; ++dx)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dz = -1; dz <= 1; ++dz) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const auto nb = morton::neighbor(par, dx, dy, dz);
        if (!nb) continue;
        const std::int32_t found = find_containing(let, *nb);
        if (found < 0) continue;
        const LetNode& fn = let.nodes[found];
        if (fn.global_leaf && morton::adjacent(fn.key, par) &&
            !morton::adjacent(fn.key, beta))
          x.push_back(found);
      }
  sort_unique(x);
}

}  // namespace

void build_interaction_lists(Let& let) {
  const std::size_t n = let.nodes.size();
  std::vector<std::vector<std::int32_t>> u(n), v(n), w(n), x(n);

  for (std::size_t i = 0; i < n; ++i) {
    if (!let.nodes[i].target) continue;
    lists_for_node(let, i, u[i], v[i], w[i], x[i]);
  }

  let.u = compress(u);
  let.v = compress(v);
  let.w = compress(w);
  let.x = compress(x);
}

void repair_interaction_lists(const Let& prior, Let& let,
                              ListRepairStats* stats) {
  // Structural diff of the two (Morton-sorted) node arrays: octants
  // added or removed, or whose role flags flipped. Everything else kept
  // its key and its flags, so only targets whose parent-neighborhood
  // region a dirty octant's range overlaps can see different lists.
  std::vector<std::int32_t> old2new(prior.nodes.size(), -1);
  std::vector<std::int32_t> new2old(let.nodes.size(), -1);
  std::vector<std::pair<Bits, Bits>> dirty;  // [begin, end) key ranges
  std::vector<char> dirty_self(let.nodes.size(), 0);
  {
    std::size_t j = 0;
    for (std::size_t i = 0; i < let.nodes.size(); ++i) {
      const Key& k = let.nodes[i].key;
      while (j < prior.nodes.size() && prior.nodes[j].key < k) {
        dirty.emplace_back(morton::range_begin(prior.nodes[j].key),
                           morton::range_end(prior.nodes[j].key));
        ++j;
      }
      if (j < prior.nodes.size() && same_key(prior.nodes[j].key, k)) {
        old2new[j] = static_cast<std::int32_t>(i);
        new2old[i] = static_cast<std::int32_t>(j);
        const LetNode& a = prior.nodes[j];
        const LetNode& b = let.nodes[i];
        if (a.global_leaf != b.global_leaf || a.owned != b.owned ||
            a.target != b.target) {
          dirty.emplace_back(morton::range_begin(k), morton::range_end(k));
          dirty_self[i] = 1;
        }
        ++j;
      } else {
        dirty.emplace_back(morton::range_begin(k), morton::range_end(k));
        dirty_self[i] = 1;
      }
    }
    for (; j < prior.nodes.size(); ++j)
      dirty.emplace_back(morton::range_begin(prior.nodes[j].key),
                         morton::range_end(prior.nodes[j].key));
  }
  std::sort(dirty.begin(), dirty.end());
  // Prefix maximum of range ends, for interval-stabbing queries (dirty
  // ranges nest when an octant and its ancestor both changed).
  std::vector<Bits> max_end(dirty.size());
  {
    Bits m = 0;
    for (std::size_t i = 0; i < dirty.size(); ++i) {
      m = std::max(m, dirty[i].second);
      max_end[i] = m;
    }
  }
  auto overlaps_dirty = [&](Bits b, Bits e) {
    auto it = std::lower_bound(
        dirty.begin(), dirty.end(), e,
        [](const std::pair<Bits, Bits>& d, Bits v) { return d.first < v; });
    const std::size_t n = static_cast<std::size_t>(it - dirty.begin());
    return n > 0 && max_end[n - 1] > b;
  };

  const std::size_t n = let.nodes.size();
  std::vector<std::vector<std::int32_t>> u(n), v(n), w(n), x(n);
  ListRepairStats st;
  for (std::size_t i = 0; i < n; ++i) {
    const LetNode& node = let.nodes[i];
    if (!node.target) continue;
    bool recompute = dirty_self[i] != 0;
    if (!recompute) {
      if (node.key.level == 0) {
        recompute = !dirty.empty();
      } else {
        for (const Key& kappa :
             morton::neighborhood(morton::parent(node.key))) {
          if (overlaps_dirty(morton::range_begin(kappa),
                             morton::range_end(kappa))) {
            recompute = true;
            break;
          }
        }
      }
    }
    if (recompute) {
      lists_for_node(let, i, u[i], v[i], w[i], x[i]);
      ++st.rebuilt_targets;
      continue;
    }
    const std::int32_t j = new2old[i];
    PKIFMM_CHECK(j >= 0 && prior.nodes[static_cast<std::size_t>(j)].target);
    auto remap = [&](const ListSet& from, std::vector<std::int32_t>& to) {
      for (std::int32_t item : from.of(static_cast<std::size_t>(j))) {
        const std::int32_t ni = old2new[static_cast<std::size_t>(item)];
        PKIFMM_CHECK_MSG(ni >= 0, "clean target references a removed octant");
        to.push_back(ni);
      }
    };
    remap(prior.u, u[i]);
    remap(prior.v, v[i]);
    remap(prior.w, w[i]);
    remap(prior.x, x[i]);
    ++st.kept_targets;
  }

  let.u = compress(u);
  let.v = compress(v);
  let.w = compress(w);
  let.x = compress(x);
  if (stats) *stats = st;
}

void refresh_ghost_densities(comm::Comm& c, Let& let) {
  const int p = c.size();
  std::vector<std::vector<DenMsg>> hdr_out(p);
  std::vector<std::vector<double>> den_out(p);
  for (const auto& [ni, dest] : let.ghost_subscriptions) {
    const LetNode& n = let.nodes[ni];
    hdr_out[dest].push_back(DenMsg{n.key.bits, n.key.level, n.point_count});
    for (const PointRec& pt : let.points_of(n))
      den_out[dest].insert(den_out[dest].end(), pt.den,
                           pt.den + kMaxDensityDim);
  }
  auto hdr_in = c.alltoallv(std::move(hdr_out));
  auto den_in = c.alltoallv(std::move(den_out));

  for (int r = 0; r < p; ++r) {
    if (r == c.rank()) continue;
    std::size_t cursor = 0;
    for (const DenMsg& m : hdr_in[r]) {
      const std::int32_t ni = let.find(Key{m.bits, m.level});
      PKIFMM_CHECK_MSG(ni >= 0, "density refresh for unknown ghost leaf");
      LetNode& n = let.nodes[ni];
      PKIFMM_CHECK(n.point_count == m.npoints);
      for (PointRec& pt : let.points_of(n)) {
        for (int d = 0; d < kMaxDensityDim; ++d)
          pt.den[d] = den_in[r][cursor + d];
        cursor += kMaxDensityDim;
      }
    }
    PKIFMM_CHECK(cursor == den_in[r].size());
  }
}

}  // namespace pkifmm::octree
