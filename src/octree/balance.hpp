#pragma once
/// \file balance.hpp
/// \brief Distributed 2:1 balance refinement of the linear octree.
///
/// This is the other half of the DENDRO substrate the paper builds on
/// (its reference [16], Sundar et al., "Bottom-up construction and 2:1
/// balance refinement of linear octrees in parallel"). The KIFMM
/// itself tolerates arbitrary level contrast between adjacent leaves
/// (the paper's 65K run spans levels 2..27), so balancing is optional
/// for pkifmm — but it bounds the U/W/X list sizes and is required by
/// hybrid FMM/finite-element pipelines, so the substrate ships it.
///
/// Algorithm: iterated demand/ripple. Each round, every leaf issues
/// "must be at least level L-1" demands for its 26 same-level neighbor
/// regions; demands are routed to the ranks owning those regions
/// (alltoallv over the key-space splitters); receiving ranks split any
/// leaf that is >=2 levels coarser than a demand (recursively toward
/// the demand cell), redistributing its points among the children.
/// Rounds repeat until a global allreduce reports no splits. Splits
/// create empty leaves (a balanced tree must cover space at bounded
/// granularity), which the rest of pkifmm handles as zero-point leaves.

#include "octree/build.hpp"

namespace pkifmm::octree {

/// Enforces the 2:1 condition: any two adjacent leaves differ by at
/// most one level. Leaf ownership intervals are unchanged (children
/// stay on their parent's rank); splitters are preserved. Returns the
/// number of splits performed globally.
std::uint64_t balance_2to1(comm::Comm& c, OwnedTree& tree);

/// True iff the given (global, gathered) leaf set satisfies 2:1. Test
/// helper; O(n * 26 * log n).
bool is_2to1_balanced(const std::vector<morton::Key>& leaves);

}  // namespace pkifmm::octree
