#include "octree/partition.hpp"

#include <algorithm>

namespace pkifmm::octree {

using morton::Bits;
using morton::Key;

namespace {

/// Leaf header accompanying the migrated point stream.
struct LeafMsg {
  Bits bits;
  std::uint8_t level;
  std::uint32_t npoints;
};
static_assert(std::is_trivially_copyable_v<LeafMsg>);

}  // namespace

OwnedTree load_balance(comm::Comm& c, OwnedTree tree,
                       const std::vector<double>& leaf_weights) {
  const int p = c.size();
  PKIFMM_CHECK(leaf_weights.size() == tree.leaves.size());

  double local_w = 0.0;
  for (double w : leaf_weights) local_w += w;
  const double before = c.exscan_sum(local_w);
  const double total = c.allreduce_sum(local_w);

  // Degenerate all-zero weights: fall back to equal leaf counts.
  const auto count_before =
      c.exscan_sum(static_cast<std::uint64_t>(tree.leaves.size()));
  const auto count_total =
      c.allreduce_sum(static_cast<std::uint64_t>(tree.leaves.size()));

  std::vector<std::vector<LeafMsg>> leaf_out(p);
  std::vector<std::vector<PointRec>> pts_out(p);
  double prefix = before;
  for (std::size_t i = 0; i < tree.leaves.size(); ++i) {
    const double w = leaf_weights[i];
    int dest;
    if (total > 0.0) {
      // Assign by the midpoint of the leaf's weight interval, as in the
      // generic weighted partition.
      dest = static_cast<int>((prefix + 0.5 * w) / total * p);
    } else {
      dest = static_cast<int>((count_before + i) * p / count_total);
    }
    dest = std::clamp(dest, 0, p - 1);
    prefix += w;
    const std::uint32_t npts = static_cast<std::uint32_t>(
        tree.leaf_point_offset[i + 1] - tree.leaf_point_offset[i]);
    leaf_out[dest].push_back(
        LeafMsg{morton::range_begin(tree.leaves[i]),
                static_cast<std::uint8_t>(tree.leaves[i].level), npts});
    pts_out[dest].insert(pts_out[dest].end(),
                         tree.points.begin() + tree.leaf_point_offset[i],
                         tree.points.begin() + tree.leaf_point_offset[i + 1]);
  }

  auto leaf_in = c.alltoallv(std::move(leaf_out));
  auto pts_in = c.alltoallv(std::move(pts_out));

  OwnedTree out;
  // Rank-ordered concatenation preserves the global Morton order
  // because destinations are monotone in the leaf order.
  for (int r = 0; r < p; ++r) {
    for (const LeafMsg& m : leaf_in[r])
      out.leaves.push_back(Key{m.bits, m.level});
    out.points.insert(out.points.end(), pts_in[r].begin(), pts_in[r].end());
  }
  PKIFMM_CHECK_MSG(
      std::is_sorted(out.leaves.begin(), out.leaves.end()),
      "migrated leaves are not in Morton order");

  out.leaf_point_offset = build_leaf_csr(out.leaves, out.points);
  out.splitters = recompute_splitters(c, out.leaves);
  return out;
}

}  // namespace pkifmm::octree
