#include "octree/partition.hpp"

#include <algorithm>

namespace pkifmm::octree {

using morton::Bits;
using morton::Key;

namespace {

/// Leaf header accompanying the migrated point stream.
struct LeafMsg {
  Bits bits;
  std::uint8_t level;
  std::uint32_t npoints;
};
static_assert(std::is_trivially_copyable_v<LeafMsg>);

}  // namespace

std::vector<int> weighted_destinations(comm::Comm& c,
                                       std::span<const double> leaf_weights) {
  const int p = c.size();
  auto per_rank = c.allgatherv(leaf_weights);

  // Every rank scans the same global vector in the same order, so the
  // floating-point prefix sums (and therefore the destinations) agree
  // exactly regardless of the current leaf distribution.
  double total = 0.0;
  std::uint64_t count_total = 0;
  for (const auto& v : per_rank) {
    for (double w : v) total += w;
    count_total += v.size();
  }

  std::vector<int> dest;
  dest.reserve(leaf_weights.size());
  double prefix = 0.0;
  std::uint64_t idx = 0;
  for (int r = 0; r < p; ++r) {
    for (double w : per_rank[r]) {
      int d;
      if (total > 0.0) {
        // Assign by the midpoint of the leaf's weight interval, as in
        // the generic weighted partition.
        d = static_cast<int>((prefix + 0.5 * w) / total * p);
      } else {
        d = static_cast<int>(idx * p / count_total);
      }
      d = std::clamp(d, 0, p - 1);
      if (r == c.rank()) dest.push_back(d);
      prefix += w;
      ++idx;
    }
  }
  return dest;
}

OwnedTree migrate_leaves(comm::Comm& c, OwnedTree tree,
                         std::span<const int> dest) {
  const int p = c.size();
  PKIFMM_CHECK(dest.size() == tree.leaves.size());

  std::vector<std::vector<LeafMsg>> leaf_out(p);
  std::vector<std::vector<PointRec>> pts_out(p);
  for (std::size_t i = 0; i < tree.leaves.size(); ++i) {
    const int d = dest[i];
    PKIFMM_CHECK(d >= 0 && d < p);
    const std::uint32_t npts = static_cast<std::uint32_t>(
        tree.leaf_point_offset[i + 1] - tree.leaf_point_offset[i]);
    leaf_out[d].push_back(
        LeafMsg{morton::range_begin(tree.leaves[i]),
                static_cast<std::uint8_t>(tree.leaves[i].level), npts});
    pts_out[d].insert(pts_out[d].end(),
                      tree.points.begin() + tree.leaf_point_offset[i],
                      tree.points.begin() + tree.leaf_point_offset[i + 1]);
  }

  auto leaf_in = c.alltoallv(std::move(leaf_out));
  auto pts_in = c.alltoallv(std::move(pts_out));

  OwnedTree out;
  // Rank-ordered concatenation preserves the global Morton order
  // because destinations are monotone in the leaf order.
  for (int r = 0; r < p; ++r) {
    for (const LeafMsg& m : leaf_in[r])
      out.leaves.push_back(Key{m.bits, m.level});
    out.points.insert(out.points.end(), pts_in[r].begin(), pts_in[r].end());
  }
  PKIFMM_CHECK_MSG(
      std::is_sorted(out.leaves.begin(), out.leaves.end()),
      "migrated leaves are not in Morton order");

  out.leaf_point_offset = build_leaf_csr(out.leaves, out.points);
  out.splitters = recompute_splitters(c, out.leaves);
  return out;
}

OwnedTree load_balance(comm::Comm& c, OwnedTree tree,
                       const std::vector<double>& leaf_weights) {
  PKIFMM_CHECK(leaf_weights.size() == tree.leaves.size());
  const auto dest = weighted_destinations(c, leaf_weights);
  return migrate_leaves(c, std::move(tree), dest);
}

}  // namespace pkifmm::octree
