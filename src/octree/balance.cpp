#include "octree/balance.hpp"

#include <algorithm>
#include <map>

namespace pkifmm::octree {

using morton::Bits;
using morton::Key;

namespace {

/// A balance demand: the leaf covering `cell` must have level >=
/// `level` - 1 (issued by a level-`level` leaf for its neighbor
/// region anchored at `cell`).
struct Demand {
  Bits cell;
  std::uint8_t level;
};
static_assert(std::is_trivially_copyable_v<Demand>);

/// Index of the local leaf containing the given kMaxDepth cell id, or
/// -1 if none covers it.
std::int64_t find_covering_leaf(const std::vector<Key>& leaves, Bits cell) {
  // Last leaf with range_begin <= cell.
  auto it = std::upper_bound(
      leaves.begin(), leaves.end(), cell,
      [](Bits c, const Key& k) { return c < morton::range_begin(k); });
  if (it == leaves.begin()) return -1;
  --it;
  if (cell < morton::range_end(*it)) return it - leaves.begin();
  return -1;
}

/// Recursively splits `leaf` (with its point range) until no demand in
/// [dlo, dhi) requires a deeper covering leaf; appends the resulting
/// leaves and points to the output arrays.
void split_to_satisfy(const Key& leaf, std::span<const PointRec> pts,
                      std::span<const Demand> demands,
                      std::vector<Key>& out_leaves,
                      std::vector<PointRec>& out_points,
                      std::uint64_t& splits) {
  int required = leaf.level;
  for (const Demand& d : demands)
    required = std::max(required, static_cast<int>(d.level) - 1);
  if (required <= leaf.level || leaf.level >= morton::kMaxDepth) {
    out_leaves.push_back(leaf);
    out_points.insert(out_points.end(), pts.begin(), pts.end());
    return;
  }
  ++splits;
  std::size_t pbegin = 0;
  for (int ci = 0; ci < 8; ++ci) {
    const Key child = morton::child(leaf, ci);
    const Bits end = morton::range_end(child);
    std::size_t pend = pbegin;
    while (pend < pts.size() && pts[pend].key_bits < end) ++pend;
    // Demands whose cell falls inside this child.
    std::vector<Demand> mine;
    for (const Demand& d : demands)
      if (d.cell >= morton::range_begin(child) && d.cell < end)
        mine.push_back(d);
    split_to_satisfy(child, pts.subspan(pbegin, pend - pbegin), mine,
                     out_leaves, out_points, splits);
    pbegin = pend;
  }
}

}  // namespace

std::uint64_t balance_2to1(comm::Comm& c, OwnedTree& tree) {
  const int p = c.size();
  std::uint64_t total_splits = 0;

  for (int round = 0;; ++round) {
    PKIFMM_CHECK_MSG(round < 2 * morton::kMaxDepth,
                     "2:1 balance failed to converge");

    // 1. Issue demands for every leaf's 26 same-level neighbor regions.
    std::vector<std::vector<Demand>> outgoing(p);
    for (const Key& leaf : tree.leaves) {
      if (leaf.level < 2) continue;  // nothing can be 2+ levels coarser
      for (const Key& kappa : morton::colleagues(leaf)) {
        const Bits cell = morton::range_begin(kappa);
        auto it = std::upper_bound(tree.splitters.begin(),
                                   tree.splitters.end(), cell);
        const int dest = static_cast<int>(it - tree.splitters.begin()) - 1;
        outgoing[dest].push_back(Demand{cell, leaf.level});
      }
    }
    for (auto& v : outgoing) {
      std::sort(v.begin(), v.end(), [](const Demand& a, const Demand& b) {
        return a.cell != b.cell ? a.cell < b.cell : a.level > b.level;
      });
      // Keep only the strongest demand per cell.
      v.erase(std::unique(v.begin(), v.end(),
                          [](const Demand& a, const Demand& b) {
                            return a.cell == b.cell;
                          }),
              v.end());
    }
    auto incoming = c.alltoallv(std::move(outgoing));

    // 2. Group demands by the covering local leaf.
    std::map<std::size_t, std::vector<Demand>> by_leaf;
    for (const auto& run : incoming) {
      for (const Demand& d : run) {
        const std::int64_t li = find_covering_leaf(tree.leaves, d.cell);
        if (li < 0) continue;  // empty space: nothing to balance
        if (static_cast<int>(d.level) - 1 <= tree.leaves[li].level) continue;
        by_leaf[static_cast<std::size_t>(li)].push_back(d);
      }
    }

    // 3. Rebuild the leaf/point arrays with the required splits.
    std::uint64_t splits = 0;
    if (!by_leaf.empty()) {
      std::vector<Key> new_leaves;
      std::vector<PointRec> new_points;
      new_leaves.reserve(tree.leaves.size() + 8 * by_leaf.size());
      new_points.reserve(tree.points.size());
      for (std::size_t i = 0; i < tree.leaves.size(); ++i) {
        const std::span<const PointRec> pts(
            tree.points.data() + tree.leaf_point_offset[i],
            tree.leaf_point_offset[i + 1] - tree.leaf_point_offset[i]);
        auto it = by_leaf.find(i);
        if (it == by_leaf.end()) {
          new_leaves.push_back(tree.leaves[i]);
          new_points.insert(new_points.end(), pts.begin(), pts.end());
        } else {
          split_to_satisfy(tree.leaves[i], pts, it->second, new_leaves,
                           new_points, splits);
        }
      }
      tree.leaves = std::move(new_leaves);
      tree.points = std::move(new_points);
      // Empty leaves are legal after balancing; rebuild the CSR by
      // range scan (build_leaf_csr allows zero-point leaves).
      tree.leaf_point_offset = build_leaf_csr(tree.leaves, tree.points);
    }

    const std::uint64_t global_splits = c.allreduce_sum(splits);
    total_splits += global_splits;
    if (global_splits == 0) break;
  }
  return total_splits;
}

bool is_2to1_balanced(const std::vector<Key>& leaves) {
  std::vector<Key> sorted = leaves;
  std::sort(sorted.begin(), sorted.end());
  for (const Key& leaf : sorted) {
    for (const Key& kappa : morton::colleagues(leaf)) {
      const std::int64_t li =
          find_covering_leaf(sorted, morton::range_begin(kappa));
      if (li < 0) continue;
      if (sorted[li].level < static_cast<int>(leaf.level) - 1) return false;
    }
  }
  return true;
}

}  // namespace pkifmm::octree
