#pragma once
/// \file let.hpp
/// \brief Local Essential Tree construction (paper Algorithm 2) and
/// U/V/W/X interaction-list construction (paper Table I).
///
/// The LET of rank k is the union of the interaction lists of all owned
/// leaves and their ancestors. It is built by exchanging "ghost"
/// octants: rank k sends octant beta to every rank whose ownership
/// region overlaps the neighborhood of beta's parent (the
/// contributor/user rule of §III-A); ghost leaves travel with their
/// points so U- and X-list (direct-type) interactions can be evaluated
/// locally. After the exchange the node set is closed under parents,
/// which makes the list-construction descents complete.

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "comm/comm.hpp"
#include "morton/key.hpp"
#include "octree/build.hpp"
#include "octree/points.hpp"

namespace pkifmm::octree {

/// One octant of the local essential tree.
struct LetNode {
  morton::Key key;
  std::int32_t parent = -1;          ///< index into Let::nodes, -1 for root
  std::array<std::int32_t, 8> child; ///< -1 where absent from the LET
  bool global_leaf = false;          ///< leaf of the *global* FMM tree
  bool owned = false;                ///< this rank owns (evaluates) this leaf
  bool target = false;               ///< owned leaf or ancestor of one
  std::uint32_t point_begin = 0;     ///< into Let::points (leaves only)
  std::uint32_t point_count = 0;
  /// Leading points_of(n) entries that are evaluation targets (the
  /// point layout puts targets first). Equals point_count when sources
  /// and targets coincide (the paper's assumption).
  std::uint32_t target_count = 0;

  LetNode() { child.fill(-1); }
};

/// CSR adjacency: per-node spans of LET node indices.
struct ListSet {
  std::vector<std::int32_t> offset;  ///< size nodes+1
  std::vector<std::int32_t> items;

  std::span<const std::int32_t> of(std::size_t node) const {
    return {items.data() + offset[node],
            static_cast<std::size_t>(offset[node + 1] - offset[node])};
  }
  std::size_t total() const { return items.size(); }
};

/// The local essential tree plus interaction lists.
struct Let {
  std::vector<LetNode> nodes;   ///< Morton/preorder sorted
  std::vector<PointRec> points; ///< owned + ghost, grouped per leaf
  std::vector<morton::Bits> splitters;

  /// U (direct), V (far-field same level), W, X lists. U and W are only
  /// populated for owned leaves; V and X for all target octants.
  ListSet u, v, w, x;

  /// For the evaluation-time density refresh: (owned leaf node, ghost
  /// consumer rank) subscriptions established during the LET exchange.
  std::vector<std::pair<std::int32_t, std::int32_t>> ghost_subscriptions;

  /// Node index by key, -1 if absent.
  std::int32_t find(const morton::Key& k) const {
    auto it = index_.find(k);
    return it == index_.end() ? -1 : it->second;
  }

  std::span<const PointRec> points_of(const LetNode& n) const {
    return {points.data() + n.point_begin, n.point_count};
  }
  std::span<PointRec> points_of(const LetNode& n) {
    return {points.data() + n.point_begin, n.point_count};
  }

  /// Tree depth statistics (min/max level over global leaves).
  int max_leaf_level() const;
  int min_leaf_level() const;

  /// Memory telemetry (the `mem.let.*` gauges): bytes of the ghost
  /// side of the LET — non-owned global leaves plus their replicated
  /// points, i.e. what Algorithm 2's exchange materialized locally —
  /// and of the whole structure (nodes, points, splitters,
  /// interaction lists, subscriptions, key index).
  std::size_t ghost_bytes() const;
  std::size_t total_bytes() const;

  std::unordered_map<morton::Key, std::int32_t, morton::KeyHash> index_;
};

/// Paper Algorithm 2: exchanges ghost octants and assembles the LET.
/// Does NOT build the interaction lists; call build_interaction_lists.
Let build_let(comm::Comm& c, const OwnedTree& tree);

/// Builds U/V/W/X lists for every target node of the LET, per the
/// definitions in Table I of the paper.
void build_interaction_lists(Let& let);

/// Re-sends the densities of owned leaves whose ghosts live on other
/// ranks (the paper's first evaluation communication step). Call before
/// each evaluation if densities changed since the LET was built.
void refresh_ghost_densities(comm::Comm& c, Let& let);

}  // namespace pkifmm::octree
