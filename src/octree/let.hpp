#pragma once
/// \file let.hpp
/// \brief Local Essential Tree construction (paper Algorithm 2) and
/// U/V/W/X interaction-list construction (paper Table I).
///
/// The LET of rank k is the union of the interaction lists of all owned
/// leaves and their ancestors. It is built by exchanging "ghost"
/// octants: rank k sends octant beta to every rank whose ownership
/// region overlaps the neighborhood of beta's parent (the
/// contributor/user rule of §III-A); ghost leaves travel with their
/// points so U- and X-list (direct-type) interactions can be evaluated
/// locally. After the exchange the node set is closed under parents,
/// which makes the list-construction descents complete.

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "comm/comm.hpp"
#include "morton/key.hpp"
#include "octree/build.hpp"
#include "octree/points.hpp"

namespace pkifmm::octree {

/// One octant of the local essential tree.
struct LetNode {
  morton::Key key;
  std::int32_t parent = -1;          ///< index into Let::nodes, -1 for root
  std::array<std::int32_t, 8> child; ///< -1 where absent from the LET
  bool global_leaf = false;          ///< leaf of the *global* FMM tree
  bool owned = false;                ///< this rank owns (evaluates) this leaf
  bool target = false;               ///< owned leaf or ancestor of one
  std::uint32_t point_begin = 0;     ///< into Let::points (leaves only)
  std::uint32_t point_count = 0;
  /// Leading points_of(n) entries that are evaluation targets (the
  /// point layout puts targets first). Equals point_count when sources
  /// and targets coincide (the paper's assumption).
  std::uint32_t target_count = 0;

  LetNode() { child.fill(-1); }
};

/// CSR adjacency: per-node spans of LET node indices.
struct ListSet {
  std::vector<std::int32_t> offset;  ///< size nodes+1
  std::vector<std::int32_t> items;

  std::span<const std::int32_t> of(std::size_t node) const {
    return {items.data() + offset[node],
            static_cast<std::size_t>(offset[node + 1] - offset[node])};
  }
  std::size_t total() const { return items.size(); }
};

/// The local essential tree plus interaction lists.
struct Let {
  std::vector<LetNode> nodes;   ///< Morton/preorder sorted
  std::vector<PointRec> points; ///< owned + ghost, grouped per leaf
  std::vector<morton::Bits> splitters;

  /// U (direct), V (far-field same level), W, X lists. U and W are only
  /// populated for owned leaves; V and X for all target octants.
  ListSet u, v, w, x;

  /// For the evaluation-time density refresh: (owned leaf node, ghost
  /// consumer rank) subscriptions established during the LET exchange.
  std::vector<std::pair<std::int32_t, std::int32_t>> ghost_subscriptions;

  /// Node index by key, -1 if absent.
  std::int32_t find(const morton::Key& k) const {
    auto it = index_.find(k);
    return it == index_.end() ? -1 : it->second;
  }

  std::span<const PointRec> points_of(const LetNode& n) const {
    return {points.data() + n.point_begin, n.point_count};
  }
  std::span<PointRec> points_of(const LetNode& n) {
    return {points.data() + n.point_begin, n.point_count};
  }

  /// Tree depth statistics (min/max level over global leaves).
  int max_leaf_level() const;
  int min_leaf_level() const;

  /// Memory telemetry (the `mem.let.*` gauges): bytes of the ghost
  /// side of the LET — non-owned global leaves plus their replicated
  /// points, i.e. what Algorithm 2's exchange materialized locally —
  /// and of the whole structure (nodes, points, splitters,
  /// interaction lists, subscriptions, key index).
  std::size_t ghost_bytes() const;
  std::size_t total_bytes() const;

  std::unordered_map<morton::Key, std::int32_t, morton::KeyHash> index_;
};

/// What one LetSync exchange moved (feeds the `setup.incr.*` metrics).
struct LetSyncStats {
  std::size_t octants_sent = 0;     ///< SET messages (add or replace)
  std::size_t removes_sent = 0;     ///< REMOVE messages
  std::size_t ghost_points_sent = 0;
  std::size_t octants_recv = 0;
  std::size_t removes_recv = 0;
  std::size_t ranks_touched = 0;    ///< destinations with a nonempty delta
};

/// Persistent ghost-octant synchronisation (paper Algorithm 2, made
/// incremental). The full build and the incremental update run the
/// same protocol: each rank diffs what it must contribute (its leaves
/// and ancestors, addressed to every user rank) against what it last
/// sent, ships only SET/REMOVE deltas, and reassembles the LET from
/// the retained staging. A full build is simply the delta against
/// empty state — so the two paths share every line of exchange and
/// assembly code, and an update on a tree is bitwise identical to a
/// from-scratch build on the same tree.
class LetSync {
 public:
  /// Full Algorithm-2 exchange; (re)initializes the retained state.
  Let build(comm::Comm& c, const OwnedTree& tree);

  /// Incremental exchange. `dirty_leaves` are the owned leaves whose
  /// point buckets changed since the previous build/update (from
  /// repair_tree); added/removed/migrated octants are discovered by
  /// diffing against the retained state. Collective.
  Let update(comm::Comm& c, const OwnedTree& tree,
             std::span<const morton::Key> dirty_leaves,
             LetSyncStats* stats = nullptr);

 private:
  /// My contribution as of the last exchange: owned leaves and their
  /// ancestors, with the destination ranks each was sent to.
  struct OwnEntry {
    bool leaf = false;
    std::vector<std::int32_t> dests;  ///< sorted, excludes self
  };
  /// Ghost octants other ranks contributed, with the contributor set
  /// (the entry lives while any contributor still stages it) and the
  /// leaf payload in the sender's canonical point order.
  struct GhostEntry {
    std::vector<std::int32_t> contributors;  ///< sorted
    std::int32_t leaf_from = -1;
    std::vector<PointRec> pts;
  };

  Let assemble(const OwnedTree& tree) const;

  std::map<morton::Key, OwnEntry> own_;
  std::map<morton::Key, GhostEntry> ghost_;
};

/// Paper Algorithm 2: exchanges ghost octants and assembles the LET
/// (one-shot LetSync::build). Does NOT build the interaction lists;
/// call build_interaction_lists.
Let build_let(comm::Comm& c, const OwnedTree& tree);

/// Builds U/V/W/X lists for every target node of the LET, per the
/// definitions in Table I of the paper.
void build_interaction_lists(Let& let);

struct ListRepairStats {
  std::size_t rebuilt_targets = 0;
  std::size_t kept_targets = 0;
};

/// Rebuilds `let`'s interaction lists reusing `prior`'s where possible:
/// a target's lists are recomputed only if the structural diff between
/// the two node arrays (added/removed octants, flag flips) touches the
/// neighborhood of its parent — every U/V/W/X member lives inside (or
/// overlaps) that region — otherwise the prior lists are index-remapped.
/// The result is identical to build_interaction_lists(let).
void repair_interaction_lists(const Let& prior, Let& let,
                              ListRepairStats* stats = nullptr);

/// Re-sends the densities of owned leaves whose ghosts live on other
/// ranks (the paper's first evaluation communication step). Call before
/// each evaluation if densities changed since the LET was built.
void refresh_ghost_densities(comm::Comm& c, Let& let);

}  // namespace pkifmm::octree
