#include "octree/points.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace pkifmm::octree {

Distribution distribution_from_name(const std::string& name) {
  if (name == "uniform") return Distribution::kUniform;
  if (name == "ellipsoid" || name == "nonuniform")
    return Distribution::kEllipsoid;
  if (name == "cluster") return Distribution::kCluster;
  PKIFMM_CHECK_MSG(false, "unknown distribution '" << name << "'");
  return Distribution::kUniform;
}

namespace {

/// Point on the surface of a 1:1:4 ellipsoid, angles uniform in
/// spherical coordinates (the paper's nonuniform distribution, §V).
/// Uniform (theta, phi) sampling concentrates points near the poles of
/// the long axis, producing strongly adaptive octrees. The ellipsoid is
/// scaled/centered to fit inside the unit cube.
void ellipsoid_point(Rng& rng, double out[3]) {
  const double theta = rng.uniform() * std::numbers::pi;         // polar
  const double phi = rng.uniform() * 2.0 * std::numbers::pi;     // azimuth
  // Semi-axes 1:1:4 scaled into the cube: long axis along z.
  const double a = 0.115, c = 0.46;
  out[0] = 0.5 + a * std::sin(theta) * std::cos(phi);
  out[1] = 0.5 + a * std::sin(theta) * std::sin(phi);
  out[2] = 0.5 + c * std::cos(theta);
}

/// Clamped Box-Muller Gaussian around `center` with width sigma.
void cluster_point(Rng& rng, std::uint64_t gid, double out[3]) {
  if (gid % 20 == 0) {  // 5% uniform background
    for (int d = 0; d < 3; ++d) out[d] = rng.uniform();
    return;
  }
  const double center[3] = {0.3, 0.3, 0.3};
  const double sigma = 0.02;
  for (int d = 0; d < 3; ++d) {
    const double u1 = std::max(rng.uniform(), 1e-12);
    const double u2 = rng.uniform();
    const double g =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
    out[d] = std::clamp(center[d] + sigma * g, 0.0, 1.0 - 1e-12);
  }
}

}  // namespace

std::vector<PointRec> generate_points(Distribution dist,
                                      std::uint64_t n_global, int rank,
                                      int nranks, int density_dim,
                                      std::uint64_t seed) {
  PKIFMM_CHECK(density_dim >= 1 && density_dim <= kMaxDensityDim);
  const std::uint64_t begin = n_global * rank / nranks;
  const std::uint64_t end = n_global * (rank + 1) / nranks;

  std::vector<PointRec> pts;
  pts.reserve(end - begin);
  for (std::uint64_t g = begin; g < end; ++g) {
    // Each point is a pure function of (seed, gid) so the *global* set
    // is identical no matter how it is sliced across ranks — required
    // for cross-p comparisons (e.g. strong-scaling benches and the
    // distributed-vs-sequential tree equivalence tests).
    Rng rng(seed ^ (0xd1342543de82ef95ULL * (g + 1)));
    PointRec r{};
    switch (dist) {
      case Distribution::kUniform:
        for (double& c : r.pos) c = rng.uniform();
        break;
      case Distribution::kEllipsoid:
        ellipsoid_point(rng, r.pos);
        break;
      case Distribution::kCluster:
        cluster_point(rng, g, r.pos);
        break;
    }
    for (int d = 0; d < density_dim; ++d) r.den[d] = rng.uniform(-1.0, 1.0);
    r.gid = g;
    pts.push_back(r);
  }
  assign_morton_ids(pts);
  return pts;
}

void assign_morton_ids(std::vector<PointRec>& pts) {
  for (PointRec& r : pts)
    r.key_bits = morton::cell_of_point(r.pos[0], r.pos[1], r.pos[2]).bits;
}

}  // namespace pkifmm::octree
