#pragma once
/// \file update.hpp
/// \brief Incremental repair of the distributed octree for
/// time-stepping workloads (ROADMAP item 3).
///
/// A full build_distributed_tree re-runs the sample sort, the straddler
/// census and the top-down refinement from scratch — O(N) work and
/// several collective exchanges regardless of how little the points
/// moved. repair_tree instead takes the previous step's OwnedTree and a
/// set of point moves and produces the *identical* canonical tree (the
/// global leaf set is a pure function of the global point multiset —
/// split an octant iff its global count exceeds q) while touching only
/// the octants whose counts actually changed:
///
///  1. moves are applied in place and the affected points re-keyed;
///     points whose Morton id left this rank's ownership interval
///     migrate to the interval owner (one alltoallv);
///  2. a census of the splitter-straddling ancestors (the same octant
///     set build_distributed_tree exchanges) refreshes the global
///     counts that local information cannot provide;
///  3. a top-down visit recomputes the decomposition only where a
///     "dirty" Morton cell (the old or new cell of a moved point) or a
///     straddler lies underneath; clean subtrees copy the previous
///     leaves through untouched.
///
/// The repaired tree is bitwise identical — leaves, point order and
/// splitters — to what build_distributed_tree would return on the
/// union of every rank's updated points (tests/test_incremental.cpp
/// pins this across churn rates, distributions and rank counts).

#include <cstdint>
#include <span>
#include <vector>

#include "comm/comm.hpp"
#include "morton/key.hpp"
#include "octree/build.hpp"
#include "octree/points.hpp"

namespace pkifmm::octree {

/// One point relocation: the point identified by gid (which must be
/// owned by the calling rank) moves to pos. Densities are unaffected
/// (use ParallelFmm::set_densities).
struct PointMove {
  std::uint64_t gid;
  double pos[3];
};

/// What one repair_tree call did (feeds the `setup.incr.*` metrics).
struct RepairStats {
  std::size_t moved_points = 0;     ///< moves applied on this rank
  std::size_t migrated_points = 0;  ///< points sent to another rank
  std::size_t dirty_leaves = 0;     ///< leaves rebuilt (content changed)
  std::size_t kept_leaves = 0;      ///< leaves copied through untouched
};

struct RepairResult {
  /// Keys of leaves in the repaired tree whose point bucket differs
  /// from the previous tree (new leaves, re-bucketed leaves). Leaves of
  /// the previous tree that no longer exist are *not* listed — the
  /// caller diffs its own retained key set for removals.
  std::vector<morton::Key> dirty_leaves;
  RepairStats stats;
};

/// Applies `moves` to `tree` (in place) and repairs the leaf set, the
/// point array, the CSR and the splitters to the canonical tree of the
/// updated global point multiset. Collective: every rank must call it
/// (with possibly empty moves). Ownership intervals are preserved up to
/// boundary merges: a leaf that after repair straddles the previous
/// splitter goes to the lowest contributing rank, exactly like the full
/// build, and the splitters are recomputed from the repaired leaves.
RepairResult repair_tree(comm::Comm& c, OwnedTree& tree,
                         std::span<const PointMove> moves,
                         const BuildParams& params);

}  // namespace pkifmm::octree
