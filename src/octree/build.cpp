#include "octree/build.hpp"

#include <algorithm>
#include <unordered_map>

#include "comm/sort.hpp"

namespace pkifmm::octree {

using morton::Bits;
using morton::Key;

namespace {

/// One past the largest Morton id (the end of the root's key range).
Bits key_space_end() { return morton::range_end(morton::root()); }

/// First local point index with key >= bits.
std::size_t lower_index(const std::vector<PointRec>& pts, Bits bits) {
  return static_cast<std::size_t>(
      std::lower_bound(pts.begin(), pts.end(), bits,
                       [](const PointRec& a, Bits b) { return a.key_bits < b; }) -
      pts.begin());
}

struct RankSpan {
  std::uint8_t has;
  Bits first;
  Bits last;
};
static_assert(std::is_trivially_copyable_v<RankSpan>);

/// Ensures no kMaxDepth cell's points span a rank boundary: each rank's
/// leading run of duplicate keys is donated to the lowest rank that
/// holds that key. Needed so the straddler logic below can reason at
/// cell granularity even with heavily duplicated points.
void close_key_runs(comm::Comm& c, std::vector<PointRec>& pts) {
  const int p = c.size();
  if (p == 1) return;
  RankSpan mine{static_cast<std::uint8_t>(!pts.empty()),
                pts.empty() ? Bits{0} : pts.front().key_bits,
                pts.empty() ? Bits{0} : pts.back().key_bits};
  auto spans = c.allgather(mine);

  std::vector<std::vector<PointRec>> outgoing(p);
  if (!pts.empty()) {
    const Bits k = pts.front().key_bits;
    int owner = c.rank();
    for (int r = 0; r < c.rank(); ++r) {
      if (spans[r].has && spans[r].last == k) {
        owner = r;
        break;
      }
    }
    if (owner != c.rank()) {
      const std::size_t run_end = lower_index(pts, k + 1);
      outgoing[owner].assign(pts.begin(), pts.begin() + run_end);
      pts.erase(pts.begin(), pts.begin() + run_end);
    }
  }
  auto incoming = c.alltoallv(std::move(outgoing));
  bool merged = false;
  for (int r = 0; r < p; ++r) {
    if (r == c.rank() || incoming[r].empty()) continue;
    pts.insert(pts.end(), incoming[r].begin(), incoming[r].end());
    merged = true;
  }
  if (merged) std::sort(pts.begin(), pts.end());
}

/// Point-space splitters: rank k's points lie in [s_k, s_{k+1}).
/// Empty ranks get a degenerate interval (backfilled from the right).
std::vector<Bits> point_splitters(comm::Comm& c,
                                  const std::vector<PointRec>& pts) {
  const int p = c.size();
  RankSpan mine{static_cast<std::uint8_t>(!pts.empty()),
                pts.empty() ? Bits{0} : pts.front().key_bits, Bits{0}};
  auto spans = c.allgather(mine);
  std::vector<Bits> s(p, 0);
  Bits next = key_space_end();
  for (int k = p - 1; k >= 1; --k) {
    s[k] = spans[k].has ? spans[k].first : next;
    next = s[k];
  }
  s[0] = 0;
  for (int k = 0; k + 1 < p; ++k) PKIFMM_CHECK(s[k] <= s[k + 1]);
  return s;
}

}  // namespace

StraddlerTable build_straddler_table(comm::Comm& c,
                                     const std::vector<PointRec>& pts,
                                     const std::vector<Bits>& splitters,
                                     int max_level) {
  StraddlerTable table;
  const int p = c.size();

  std::vector<Key> keys;
  for (int k = 1; k < p; ++k) {
    if (splitters[k] == 0 || splitters[k] >= key_space_end()) continue;
    const Key cell{splitters[k], morton::kMaxDepth};
    for (int l = 0; l <= max_level; ++l) {
      const Key a = morton::ancestor_at(cell, l);
      if (!table.index.count(a)) {
        table.index.emplace(a, keys.size());
        keys.push_back(a);
      }
    }
  }

  std::vector<std::uint64_t> local(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i)
    local[i] = lower_index(pts, morton::range_end(keys[i])) -
               lower_index(pts, morton::range_begin(keys[i]));

  auto per_rank = c.allgatherv(std::span<const std::uint64_t>(local));
  table.global_count.assign(keys.size(), 0);
  table.first_contributor.assign(keys.size(), 0);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    int first = -1;
    std::uint64_t sum = 0;
    for (int r = 0; r < p; ++r) {
      PKIFMM_CHECK(per_rank[r].size() == keys.size());
      sum += per_rank[r][i];
      if (first < 0 && per_rank[r][i] > 0) first = r;
    }
    table.global_count[i] = sum;
    table.first_contributor[i] = first < 0 ? 0 : first;
  }
  return table;
}

namespace {

/// Top-down refinement of the local point range. Straddling octants use
/// the exchanged global census so every overlapped rank takes the same
/// split decision; straddling leaves are emitted only by their owner
/// (the first contributing rank), others queue their points for
/// migration.
class LocalBuilder {
 public:
  LocalBuilder(const std::vector<PointRec>& pts, const StraddlerTable& table,
               const BuildParams& params, int my_rank, int nranks)
      : pts_(pts), table_(table), params_(params), my_rank_(my_rank) {
    migrate_to_.resize(nranks);
  }

  void run() { visit(morton::root(), 0, pts_.size()); }

  std::vector<Key> leaves;
  std::vector<std::pair<std::size_t, std::size_t>> kept_ranges;
  std::vector<std::vector<PointRec>> migrate_to_;

 private:
  void visit(const Key& k, std::size_t lo, std::size_t hi) {
    std::uint64_t global = hi - lo;
    int owner = my_rank_;
    if (auto it = table_.index.find(k); it != table_.index.end()) {
      global = table_.global_count[it->second];
      owner = table_.first_contributor[it->second];
    }
    if (global <= static_cast<std::uint64_t>(params_.max_points_per_leaf) ||
        k.level >= params_.max_level) {
      if (hi == lo) return;  // no local points: some other rank emits it
      if (owner == my_rank_) {
        leaves.push_back(k);
        kept_ranges.emplace_back(lo, hi);
      } else {
        auto& out = migrate_to_[owner];
        out.insert(out.end(), pts_.begin() + lo, pts_.begin() + hi);
      }
      return;
    }
    // Split: children are contiguous in the sorted point array.
    std::size_t begin = lo;
    for (int i = 0; i < 8; ++i) {
      const Key ch = morton::child(k, i);
      const std::size_t end =
          i + 1 < 8 ? lower_index_in(begin, hi, morton::range_end(ch)) : hi;
      if (end > begin || table_.index.count(ch)) visit(ch, begin, end);
      begin = end;
    }
  }

  std::size_t lower_index_in(std::size_t lo, std::size_t hi, Bits bits) const {
    return static_cast<std::size_t>(
        std::lower_bound(pts_.begin() + lo, pts_.begin() + hi, bits,
                         [](const PointRec& a, Bits b) {
                           return a.key_bits < b;
                         }) -
        pts_.begin());
  }

  const std::vector<PointRec>& pts_;
  const StraddlerTable& table_;
  const BuildParams& params_;
  int my_rank_;
};

}  // namespace

std::vector<std::size_t> build_leaf_csr(const std::vector<morton::Key>& leaves,
                                        const std::vector<PointRec>& points) {
  std::vector<std::size_t> offset(leaves.size() + 1, 0);
  std::size_t pos = 0;
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    offset[i] = pos;
    const Bits end = morton::range_end(leaves[i]);
    PKIFMM_CHECK_MSG(pos == points.size() ||
                         points[pos].key_bits >= morton::range_begin(leaves[i]),
                     "point before its leaf: leaf "
                         << morton::to_string(leaves[i]));
    while (pos < points.size() && points[pos].key_bits < end) ++pos;
  }
  offset[leaves.size()] = pos;
  PKIFMM_CHECK_MSG(pos == points.size(),
                   "points not covered by leaves: " << points.size() - pos
                                                    << " stragglers");
  return offset;
}

std::vector<Bits> recompute_splitters(comm::Comm& c,
                                      const std::vector<morton::Key>& leaves) {
  const int p = c.size();
  RankSpan mine{static_cast<std::uint8_t>(!leaves.empty()),
                leaves.empty() ? Bits{0} : morton::range_begin(leaves.front()),
                Bits{0}};
  auto spans = c.allgather(mine);
  std::vector<Bits> s(p, 0);
  Bits next = key_space_end();
  for (int k = p - 1; k >= 1; --k) {
    s[k] = spans[k].has ? spans[k].first : next;
    next = s[k];
  }
  s[0] = 0;
  for (int k = 0; k + 1 < p; ++k)
    PKIFMM_CHECK_MSG(s[k] <= s[k + 1], "leaf splitters not monotone");
  return s;
}

std::pair<int, int> overlapping_ranks(const Key& k,
                                      const std::vector<Bits>& splitters) {
  const Bits begin = morton::range_begin(k);
  const Bits last = morton::range_end(k) - 1;
  auto rank_of = [&](Bits b) {
    auto it = std::upper_bound(splitters.begin(), splitters.end(), b);
    return static_cast<int>(it - splitters.begin()) - 1;
  };
  return {rank_of(begin), rank_of(last)};
}

OwnedTree build_distributed_tree(comm::Comm& c, std::vector<PointRec> points,
                                 const BuildParams& params) {
  PKIFMM_CHECK(params.max_points_per_leaf >= 1);
  PKIFMM_CHECK(params.max_level >= 1 && params.max_level <= morton::kMaxDepth);

  assign_morton_ids(points);
  comm::sample_sort(c, points, std::less<PointRec>{});
  comm::rebalance_equal(c, points);
  close_key_runs(c, points);

  const auto splitters = point_splitters(c, points);
  const auto table =
      build_straddler_table(c, points, splitters, params.max_level);

  LocalBuilder builder(points, table, params, c.rank(), c.size());
  builder.run();

  // Migrate points of straddling leaves to the leaf owner.
  auto incoming = c.alltoallv(std::move(builder.migrate_to_));

  OwnedTree tree;
  tree.leaves = std::move(builder.leaves);
  for (const auto& [lo, hi] : builder.kept_ranges)
    tree.points.insert(tree.points.end(), points.begin() + lo,
                       points.begin() + hi);
  bool merged = false;
  for (auto& run : incoming) {
    if (run.empty()) continue;
    tree.points.insert(tree.points.end(), run.begin(), run.end());
    merged = true;
  }
  if (merged) std::sort(tree.points.begin(), tree.points.end());

  tree.leaf_point_offset = build_leaf_csr(tree.leaves, tree.points);
  tree.splitters = recompute_splitters(c, tree.leaves);

  // Global structural sanity: leaf ranges must be disjoint and sorted
  // across ranks.
  RankSpan mine{static_cast<std::uint8_t>(!tree.leaves.empty()),
                tree.leaves.empty() ? Bits{0}
                                    : morton::range_begin(tree.leaves.front()),
                tree.leaves.empty() ? Bits{0}
                                    : morton::range_end(tree.leaves.back())};
  auto spans = c.allgather(mine);
  Bits prev_end = 0;
  for (const auto& s : spans) {
    if (!s.has) continue;
    PKIFMM_CHECK_MSG(s.first >= prev_end, "leaf ranges overlap across ranks");
    prev_end = s.last;
  }
  return tree;
}

}  // namespace pkifmm::octree
