#include "octree/update.hpp"

#include <algorithm>
#include <unordered_map>

namespace pkifmm::octree {

using morton::Bits;
using morton::Key;

namespace {

/// Rank owning Morton id `b` under the leaf-aligned splitters.
int rank_of(const std::vector<Bits>& splitters, Bits b) {
  auto it = std::upper_bound(splitters.begin(), splitters.end(), b);
  return static_cast<int>(it - splitters.begin()) - 1;
}

/// Top-down repair visit: identical split/ownership decisions to
/// build.cpp's LocalBuilder, except that a clean subtree — no dirty
/// Morton cell underneath and no splitter straddling — reuses the
/// previous step's leaves instead of re-deriving them. The reuse is
/// exact: under a clean octant the point multiset is unchanged, so the
/// canonical decomposition (split iff global count > q) is the previous
/// one.
class RepairBuilder {
 public:
  RepairBuilder(const std::vector<PointRec>& pts, const StraddlerTable& table,
                const BuildParams& params, int my_rank, int nranks,
                const std::vector<Bits>& dirty_bits,
                const std::vector<Key>& prior_leaves,
                const std::vector<std::size_t>& prior_csr)
      : pts_(pts), table_(table), params_(params), my_rank_(my_rank),
        dirty_(dirty_bits), prior_leaves_(prior_leaves),
        prior_csr_(prior_csr) {
    migrate_to_.resize(nranks);
  }

  void run() { visit(morton::root(), 0, pts_.size()); }

  std::vector<Key> leaves;
  std::vector<char> from_copy;  ///< aligned with leaves: reused verbatim
  std::vector<std::pair<std::size_t, std::size_t>> kept_ranges;
  std::vector<std::vector<PointRec>> migrate_to_;

 private:
  bool clean(const Key& k) const {
    auto it = std::lower_bound(dirty_.begin(), dirty_.end(),
                               morton::range_begin(k));
    return it == dirty_.end() || *it >= morton::range_end(k);
  }

  /// Reuses the previous leaves tiling range(k) when they provably
  /// still are the canonical decomposition: the subtree is clean, the
  /// first prior leaf in range is at or below k's level (a prior leaf
  /// *above* k would mean the shape changed around k), and the prior
  /// leaves account for exactly the current points of k.
  bool try_copy(const Key& k, std::size_t lo, std::size_t hi) {
    if (!clean(k)) return false;
    const Bits rb = morton::range_begin(k);
    const Bits re = morton::range_end(k);
    auto first = std::lower_bound(
        prior_leaves_.begin(), prior_leaves_.end(), rb,
        [](const Key& l, Bits b) { return morton::range_begin(l) < b; });
    auto last = std::lower_bound(
        first, prior_leaves_.end(), re,
        [](const Key& l, Bits b) { return morton::range_begin(l) < b; });
    if (first == last) return false;
    if (first->level < k.level) return false;
    const std::size_t a =
        static_cast<std::size_t>(first - prior_leaves_.begin());
    const std::size_t b =
        static_cast<std::size_t>(last - prior_leaves_.begin());
    if (prior_csr_[b] - prior_csr_[a] != hi - lo) return false;
    leaves.insert(leaves.end(), first, last);
    from_copy.insert(from_copy.end(), b - a, 1);
    kept_ranges.emplace_back(lo, hi);
    return true;
  }

  void visit(const Key& k, std::size_t lo, std::size_t hi) {
    std::uint64_t global = hi - lo;
    int owner = my_rank_;
    bool in_census = false;
    if (auto it = table_.index.find(k); it != table_.index.end()) {
      global = table_.global_count[it->second];
      owner = table_.first_contributor[it->second];
      in_census = true;
    }
    if (!in_census && try_copy(k, lo, hi)) return;
    if (global <= static_cast<std::uint64_t>(params_.max_points_per_leaf) ||
        k.level >= params_.max_level) {
      if (hi == lo) return;  // no local points: some other rank emits it
      if (owner == my_rank_) {
        leaves.push_back(k);
        from_copy.push_back(0);
        kept_ranges.emplace_back(lo, hi);
      } else {
        auto& out = migrate_to_[owner];
        out.insert(out.end(), pts_.begin() + lo, pts_.begin() + hi);
      }
      return;
    }
    std::size_t begin = lo;
    for (int i = 0; i < 8; ++i) {
      const Key ch = morton::child(k, i);
      const std::size_t end =
          i + 1 < 8 ? lower_index_in(begin, hi, morton::range_end(ch)) : hi;
      if (end > begin || table_.index.count(ch)) visit(ch, begin, end);
      begin = end;
    }
  }

  std::size_t lower_index_in(std::size_t lo, std::size_t hi, Bits bits) const {
    return static_cast<std::size_t>(
        std::lower_bound(pts_.begin() + lo, pts_.begin() + hi, bits,
                         [](const PointRec& a, Bits b) {
                           return a.key_bits < b;
                         }) -
        pts_.begin());
  }

  const std::vector<PointRec>& pts_;
  const StraddlerTable& table_;
  const BuildParams& params_;
  int my_rank_;
  const std::vector<Bits>& dirty_;
  const std::vector<Key>& prior_leaves_;
  const std::vector<std::size_t>& prior_csr_;
};

struct SpanChk {
  std::uint8_t has;
  Bits first;
  Bits last;
};
static_assert(std::is_trivially_copyable_v<SpanChk>);

}  // namespace

RepairResult repair_tree(comm::Comm& c, OwnedTree& tree,
                         std::span<const PointMove> moves,
                         const BuildParams& params) {
  const int p = c.size();
  RepairResult res;
  res.stats.moved_points = moves.size();

  // Zero global churn: the tree is already canonical for these points.
  const auto global_moves =
      c.allreduce_sum(static_cast<std::uint64_t>(moves.size()));
  if (global_moves == 0) {
    res.stats.kept_leaves = tree.leaves.size();
    return res;
  }

  // Apply the moves in place; remember both the vacated and the entered
  // kMaxDepth cells — those are where split decisions can change.
  {
    std::vector<std::uint64_t> gids;
    gids.reserve(moves.size());
    for (const auto& m : moves) gids.push_back(m.gid);
    std::sort(gids.begin(), gids.end());
    PKIFMM_CHECK_MSG(
        std::adjacent_find(gids.begin(), gids.end()) == gids.end(),
        "update_points: duplicate gid in moves");
  }
  std::unordered_map<std::uint64_t, std::size_t> by_gid;
  by_gid.reserve(tree.points.size());
  for (std::size_t i = 0; i < tree.points.size(); ++i)
    by_gid.emplace(tree.points[i].gid, i);

  std::vector<Bits> dirty_bits;
  dirty_bits.reserve(2 * moves.size());
  std::vector<char> touched(tree.points.size(), 0);
  for (const auto& m : moves) {
    auto it = by_gid.find(m.gid);
    PKIFMM_CHECK_MSG(it != by_gid.end(),
                     "update_points: gid " << m.gid
                                           << " is not owned by this rank");
    PointRec& pt = tree.points[it->second];
    dirty_bits.push_back(pt.key_bits);
    pt.pos[0] = m.pos[0];
    pt.pos[1] = m.pos[1];
    pt.pos[2] = m.pos[2];
    pt.key_bits = morton::cell_of_point(m.pos[0], m.pos[1], m.pos[2]).bits;
    dirty_bits.push_back(pt.key_bits);
    touched[it->second] = 1;
  }

  // Interval migration: points whose new cell left this rank's
  // ownership interval go to the interval owner.
  std::vector<std::vector<PointRec>> outgoing(p);
  std::vector<char> departed(tree.points.size(), 0);
  for (std::size_t i = 0; i < tree.points.size(); ++i) {
    if (!touched[i]) continue;
    const int dest = rank_of(tree.splitters, tree.points[i].key_bits);
    if (dest == c.rank()) continue;
    outgoing[dest].push_back(tree.points[i]);
    departed[i] = 1;
    ++res.stats.migrated_points;
  }
  auto incoming = c.alltoallv(std::move(outgoing));

  // Merge: the untouched points are still sorted; sort only the churn.
  std::vector<PointRec> moved_pts;
  std::vector<PointRec> base;
  base.reserve(tree.points.size());
  for (std::size_t i = 0; i < tree.points.size(); ++i) {
    if (departed[i]) continue;
    (touched[i] ? moved_pts : base).push_back(tree.points[i]);
  }
  for (int r = 0; r < p; ++r) {
    for (const PointRec& pt : incoming[r]) {
      moved_pts.push_back(pt);
      dirty_bits.push_back(pt.key_bits);
    }
  }
  std::sort(moved_pts.begin(), moved_pts.end());
  std::vector<PointRec> merged(base.size() + moved_pts.size());
  std::merge(base.begin(), base.end(), moved_pts.begin(), moved_pts.end(),
             merged.begin());

  std::sort(dirty_bits.begin(), dirty_bits.end());
  dirty_bits.erase(std::unique(dirty_bits.begin(), dirty_bits.end()),
                   dirty_bits.end());

  // Straddler census on the updated points: remote count changes can
  // only alter decisions inside these octants, so together with the
  // dirty cells they bound everything the repair must revisit.
  const auto table =
      build_straddler_table(c, merged, tree.splitters, params.max_level);

  const std::vector<Key> prior_leaves = std::move(tree.leaves);
  const std::vector<std::size_t> prior_csr = std::move(tree.leaf_point_offset);

  RepairBuilder builder(merged, table, params, c.rank(), p, dirty_bits,
                        prior_leaves, prior_csr);
  builder.run();

  // Migrate points of straddling leaves to the leaf owner.
  for (const auto& out : builder.migrate_to_)
    res.stats.migrated_points += out.size();
  auto straddler_in = c.alltoallv(std::move(builder.migrate_to_));

  tree.leaves = std::move(builder.leaves);
  tree.points.clear();
  for (const auto& [lo, hi] : builder.kept_ranges)
    tree.points.insert(tree.points.end(), merged.begin() + lo,
                       merged.begin() + hi);
  bool merged_in = false;
  for (auto& run : straddler_in) {
    if (run.empty()) continue;
    tree.points.insert(tree.points.end(), run.begin(), run.end());
    // Straddler buckets carry another rank's churn this rank never saw
    // (that rank's moves were applied remotely), so their cells join
    // the dirty set for the report below.
    for (const PointRec& pt : run) dirty_bits.push_back(pt.key_bits);
    merged_in = true;
  }
  if (merged_in) {
    std::sort(tree.points.begin(), tree.points.end());
    std::sort(dirty_bits.begin(), dirty_bits.end());
  }

  tree.leaf_point_offset = build_leaf_csr(tree.leaves, tree.points);
  tree.splitters = recompute_splitters(c, tree.leaves);

  // Dirty-leaf report for the LET delta: a leaf's bucket can only have
  // changed if the leaf is new to this rank, its population changed, or
  // a dirty Morton cell — the vacated or entered cell of some changed
  // point — lies inside its range. (The in-place move application above
  // makes a direct old-vs-new bucket comparison impossible, and
  // unnecessary: the dirty cells are exactly where buckets changed.)
  auto prior_of = [&](const Key& k) -> std::ptrdiff_t {
    auto it = std::lower_bound(prior_leaves.begin(), prior_leaves.end(), k);
    if (it == prior_leaves.end() || it->bits != k.bits ||
        it->level != k.level)
      return -1;
    return it - prior_leaves.begin();
  };
  auto dirty_in_range = [&](const Key& k) {
    auto it = std::lower_bound(dirty_bits.begin(), dirty_bits.end(),
                               morton::range_begin(k));
    return it != dirty_bits.end() && *it < morton::range_end(k);
  };
  for (std::size_t i = 0; i < tree.leaves.size(); ++i) {
    if (builder.from_copy[i]) {
      ++res.stats.kept_leaves;
      continue;
    }
    const std::ptrdiff_t j = prior_of(tree.leaves[i]);
    bool same = j >= 0;
    if (same) {
      const std::size_t n = tree.leaf_point_offset[i + 1] -
                            tree.leaf_point_offset[i];
      const std::size_t jn = static_cast<std::size_t>(j);
      same = n == prior_csr[jn + 1] - prior_csr[jn] &&
             !dirty_in_range(tree.leaves[i]);
    }
    if (same) {
      ++res.stats.kept_leaves;
    } else {
      res.dirty_leaves.push_back(tree.leaves[i]);
      ++res.stats.dirty_leaves;
    }
  }

  // Global structural sanity, as in the from-scratch build.
  SpanChk mine{static_cast<std::uint8_t>(!tree.leaves.empty()),
               tree.leaves.empty() ? Bits{0}
                                   : morton::range_begin(tree.leaves.front()),
               tree.leaves.empty() ? Bits{0}
                                   : morton::range_end(tree.leaves.back())};
  auto spans = c.allgather(mine);
  Bits prev_end = 0;
  for (const auto& s : spans) {
    if (!s.has) continue;
    PKIFMM_CHECK_MSG(s.first >= prev_end,
                     "repaired leaf ranges overlap across ranks");
    prev_end = s.last;
  }
  return res;
}

}  // namespace pkifmm::octree
