#pragma once
/// \file partition.hpp
/// \brief Work-weighted leaf repartitioning (paper §III-B).
///
/// After the interaction lists are built, each leaf gets a weight equal
/// to its estimated interaction work; leaves are then repartitioned so
/// every rank holds a contiguous Morton range of approximately equal
/// total weight (Algorithm 1 of Sundar et al.). Leaves migrate together
/// with their points; the caller rebuilds the LET and lists afterwards,
/// exactly as the paper does.

#include <span>
#include <vector>

#include "comm/comm.hpp"
#include "octree/build.hpp"

namespace pkifmm::octree {

/// Work-weighted destinations: the global Morton-ordered weight vector
/// is allgathered and prefix-summed left-to-right identically on every
/// rank, so a leaf's destination is a pure function of the global
/// weight vector — independent of which rank currently holds which
/// leaf. (The incremental setup path relies on this: maintaining the
/// canonical partition step by step then reproduces bit for bit what a
/// from-scratch build would choose.) Returns one destination per local
/// leaf; destinations are nondecreasing across the global leaf order.
/// All-zero weights fall back to equal leaf counts.
std::vector<int> weighted_destinations(comm::Comm& c,
                                       std::span<const double> leaf_weights);

/// Migrates leaves (and their points) to `dest` (aligned with
/// tree.leaves, nondecreasing across ranks in global leaf order), then
/// rebuilds the CSR and recomputes the splitters. The global Morton
/// order of leaves is preserved.
OwnedTree migrate_leaves(comm::Comm& c, OwnedTree tree,
                         std::span<const int> dest);

/// Repartitions leaves (and their points) by weight — a composition of
/// weighted_destinations and migrate_leaves. `leaf_weights` is aligned
/// with tree.leaves.
OwnedTree load_balance(comm::Comm& c, OwnedTree tree,
                       const std::vector<double>& leaf_weights);

}  // namespace pkifmm::octree
