#pragma once
/// \file partition.hpp
/// \brief Work-weighted leaf repartitioning (paper §III-B).
///
/// After the interaction lists are built, each leaf gets a weight equal
/// to its estimated interaction work; leaves are then repartitioned so
/// every rank holds a contiguous Morton range of approximately equal
/// total weight (Algorithm 1 of Sundar et al.). Leaves migrate together
/// with their points; the caller rebuilds the LET and lists afterwards,
/// exactly as the paper does.

#include <vector>

#include "comm/comm.hpp"
#include "octree/build.hpp"

namespace pkifmm::octree {

/// Repartitions leaves (and their points) by weight. `leaf_weights` is
/// aligned with tree.leaves. Returns the migrated tree with fresh
/// splitters and CSR. Order (global Morton order of leaves) is
/// preserved.
OwnedTree load_balance(comm::Comm& c, OwnedTree tree,
                       const std::vector<double>& leaf_weights);

}  // namespace pkifmm::octree
