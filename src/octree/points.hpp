#pragma once
/// \file points.hpp
/// \brief Particle records and the paper's test distributions.
///
/// A PointRec is the unit of migration: position, source density (up to
/// 3 components — the Stokes kernel's maximum), the original global
/// index (so computed potentials can be returned to whoever generated
/// the point), and the cached Morton id of the containing kMaxDepth
/// cell. The two distributions match §V of the paper: uniform random in
/// the unit cube, and points on the surface of a 1:1:4 ellipsoid with
/// uniform angular spacing (which concentrates points at the poles and
/// produces the 20+-level adaptive trees the paper highlights).

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "morton/key.hpp"
#include "util/rng.hpp"

namespace pkifmm::octree {

/// Maximum density components carried per point (Stokes needs 3).
inline constexpr int kMaxDensityDim = 3;

/// Point roles. The paper assumes sources and targets coincide "for
/// simplicity"; pkifmm supports disjoint or overlapping sets — e.g. a
/// measurement grid (targets only) immersed in a charge cloud (sources
/// only).
inline constexpr std::uint8_t kSource = 1;
inline constexpr std::uint8_t kTarget = 2;
inline constexpr std::uint8_t kBoth = kSource | kTarget;

/// One particle; trivially copyable so it can migrate over the fabric.
struct PointRec {
  double pos[3];
  double den[kMaxDensityDim];
  std::uint64_t gid;        ///< global index at generation time
  morton::Bits key_bits;    ///< Morton id of the kMaxDepth cell
  std::uint8_t kind = kBoth;

  bool is_source() const { return kind & kSource; }
  bool is_target() const { return kind & kTarget; }

  /// Linear-octree point order: by Morton id, gid as tie-break so the
  /// order is total and deterministic under duplicates.
  friend bool operator<(const PointRec& a, const PointRec& b) {
    return a.key_bits != b.key_bits ? a.key_bits < b.key_bits
                                    : a.gid < b.gid;
  }
};

static_assert(std::is_trivially_copyable_v<PointRec>);

enum class Distribution {
  kUniform,    ///< uniform density over the unit cube
  kEllipsoid,  ///< surface of a 1:1:4 ellipsoid, uniform angular spacing
  /// 95% of the points in a tight Gaussian cluster, 5% uniform
  /// background — a load-balancing stress case with extreme leaf
  /// population contrast (not from the paper; used by the ablations).
  kCluster,
};

Distribution distribution_from_name(const std::string& name);

/// Generates this rank's share of a global distribution of `n_global`
/// points (points are "equi-distributed in an arbitrary way across MPI
/// processes" per the paper; we give each rank a contiguous gid block).
/// Densities are filled with uniform [-1, 1) values in the first
/// `density_dim` slots, zero elsewhere.
std::vector<PointRec> generate_points(Distribution dist,
                                      std::uint64_t n_global, int rank,
                                      int nranks, int density_dim,
                                      std::uint64_t seed);

/// Recomputes key_bits from pos for every record.
void assign_morton_ids(std::vector<PointRec>& pts);

}  // namespace pkifmm::octree
