#pragma once
/// \file build.hpp
/// \brief Distributed linear-octree construction (paper §III-A, the
/// DENDRO-style "Points2Octree" stand-in).
///
/// Input: each rank holds an arbitrary chunk of the global point set.
/// Output: a distributed, globally Morton-sorted, non-overlapping set of
/// leaf octants, each with <= q points (unless forced by max_level),
/// leaves and their points co-located per rank, plus the key-space
/// ownership splitters that define the geometric partition Omega_k.
///
/// The construction is bottom-up in spirit: points are sample-sorted by
/// Morton id, each rank refines its contiguous key interval top-down,
/// and octants that straddle rank boundaries are resolved exactly by
/// exchanging per-rank point counts for the (few) ancestors of the
/// boundary cells; straddling leaves are assigned to the lowest
/// contributing rank and the other ranks migrate their points there.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "comm/comm.hpp"
#include "morton/key.hpp"
#include "octree/points.hpp"

namespace pkifmm::octree {

struct BuildParams {
  int max_points_per_leaf = 100;     ///< q in the paper
  int max_level = morton::kMaxDepth; ///< refinement cap (duplicate safety)
};

/// A rank's share of the global leaf array with its points.
struct OwnedTree {
  /// Owned leaves, Morton-sorted, globally non-overlapping.
  std::vector<morton::Key> leaves;
  /// Owned points, sorted, grouped by leaf via the CSR below.
  std::vector<PointRec> points;
  /// leaf_point_offset[i]..leaf_point_offset[i+1] indexes points of leaf i.
  std::vector<std::size_t> leaf_point_offset;
  /// Key-space ownership splitters: rank k controls
  /// [splitters[k], splitters[k+1]) (last interval open-ended). Identical
  /// on every rank. splitters[0] == 0.
  std::vector<morton::Bits> splitters;
};

/// Builds the distributed tree. `points` is consumed.
OwnedTree build_distributed_tree(comm::Comm& c, std::vector<PointRec> points,
                                 const BuildParams& params);

/// Recomputes ownership splitters from each rank's first leaf (used
/// after leaves migrate during load balancing). Collective.
std::vector<morton::Bits> recompute_splitters(
    comm::Comm& c, const std::vector<morton::Key>& leaves);

/// Rebuilds the leaf->points CSR for Morton-sorted leaves and points.
/// Checks that every point falls in exactly one leaf.
std::vector<std::size_t> build_leaf_csr(const std::vector<morton::Key>& leaves,
                                        const std::vector<PointRec>& points);

/// The ranks whose ownership interval intersects [range_begin(k),
/// range_end(k)), as a closed rank interval [first, last]. Requires the
/// splitters array from OwnedTree.
std::pair<int, int> overlapping_ranks(const morton::Key& k,
                                      const std::vector<morton::Bits>& splitters);

/// Per-octant global census for octants that may straddle rank
/// boundaries: ancestors (and self) of every boundary cell. Local
/// information cannot decide the split of these octants, so their
/// global counts (and the lowest contributing rank — the owner if the
/// octant becomes a leaf) are exchanged explicitly. Shared between the
/// from-scratch build and the incremental repair (update.hpp).
struct StraddlerTable {
  std::unordered_map<morton::Key, std::size_t, morton::KeyHash> index;
  std::vector<std::uint64_t> global_count;
  std::vector<int> first_contributor;
};

/// Builds the census for `splitters`' boundary cells from the locally
/// held (Morton-sorted) points. Collective.
StraddlerTable build_straddler_table(comm::Comm& c,
                                     const std::vector<PointRec>& pts,
                                     const std::vector<morton::Bits>& splitters,
                                     int max_level);

}  // namespace pkifmm::octree
