#pragma once
/// \file key.hpp
/// \brief Morton (Z-order) keys for linear octrees.
///
/// The paper's nonuniform runs span tree levels 2..27, which exceeds the
/// 21-level limit of 64-bit Morton keys, so pkifmm uses 128-bit keys:
/// the three anchor coordinates (at kMaxDepth resolution) are
/// bit-interleaved into an unsigned __int128. A Key is the pair
/// (interleaved anchor, level); ordering by (bits, level) yields the
/// standard linear-octree order in which an ancestor precedes all of its
/// descendants (DENDRO's convention), which the distributed tree
/// construction and LET exchange rely on.

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace pkifmm::morton {

/// Maximum refinement level supported by the key encoding.
inline constexpr int kMaxDepth = 30;

/// Integer anchor coordinate at kMaxDepth resolution, in [0, 2^kMaxDepth).
using Coord = std::uint32_t;

/// Number of cells per side at kMaxDepth resolution.
inline constexpr Coord kGridSize = Coord{1} << kMaxDepth;

using Bits = unsigned __int128;

/// Interleaves the low kMaxDepth bits of (x, y, z): bit i of x lands at
/// bit 3i, y at 3i+1, z at 3i+2.
Bits interleave(Coord x, Coord y, Coord z);

/// Inverse of interleave().
void deinterleave(Bits bits, Coord& x, Coord& y, Coord& z);

/// An octant of the unit cube, identified by its Morton-interleaved
/// anchor (the min-corner cell at kMaxDepth resolution) and its level.
/// Level 0 is the root (the whole unit cube).
struct Key {
  Bits bits = 0;    ///< interleaved anchor at kMaxDepth resolution
  std::uint8_t level = 0;

  friend bool operator==(const Key& a, const Key& b) {
    return a.bits == b.bits && a.level == b.level;
  }
  friend bool operator!=(const Key& a, const Key& b) { return !(a == b); }

  /// Linear-octree order: ancestors sort immediately before their first
  /// descendant chain.
  friend bool operator<(const Key& a, const Key& b) {
    return a.bits != b.bits ? a.bits < b.bits : a.level < b.level;
  }
  friend bool operator<=(const Key& a, const Key& b) { return !(b < a); }
  friend bool operator>(const Key& a, const Key& b) { return b < a; }
  friend bool operator>=(const Key& a, const Key& b) { return !(a < b); }
};

/// The root octant (the unit cube).
inline Key root() { return Key{0, 0}; }

/// Builds a key from anchor coordinates and level. The anchor must be
/// aligned to the octant grid of that level.
Key make_key(Coord x, Coord y, Coord z, int level);

/// Anchor coordinates of a key.
std::array<Coord, 3> anchor(const Key& k);

/// Side length of the octant in anchor cells: 2^(kMaxDepth - level).
inline Coord cell_side(const Key& k) {
  return Coord{1} << (kMaxDepth - k.level);
}

/// Number of kMaxDepth-level cells covered: cell_side^3 as 128-bit.
inline Bits cell_volume(const Key& k) {
  return Bits{1} << (3 * (kMaxDepth - k.level));
}

/// First kMaxDepth-resolution Morton id covered by this octant.
inline Bits range_begin(const Key& k) { return k.bits; }

/// One past the last kMaxDepth-resolution Morton id covered.
inline Bits range_end(const Key& k) { return k.bits + cell_volume(k); }

/// Parent octant; the root has no parent.
Key parent(const Key& k);

/// The i-th child (Morton order, i in [0,8)).
Key child(const Key& k, int i);

/// All eight children in Morton order.
std::array<Key, 8> children(const Key& k);

/// Which child of its parent this octant is (in [0,8)).
int child_index(const Key& k);

/// Ancestor at the given (coarser or equal) level.
Key ancestor_at(const Key& k, int level);

/// All strict ancestors, from level k.level-1 up to the root.
std::vector<Key> ancestors(const Key& k);

/// True iff a is a strict ancestor of b.
bool is_ancestor(const Key& a, const Key& b);

/// True iff a == b or a is an ancestor of b (i.e. a's region contains b's).
inline bool contains(const Key& a, const Key& b) {
  return a.level <= b.level && ancestor_at(b, a.level) == a;
}

/// True iff the two octants' regions overlap (one contains the other).
inline bool overlaps(const Key& a, const Key& b) {
  return contains(a, b) || contains(b, a);
}

/// Key of the kMaxDepth-level cell containing a point of the unit cube.
/// Coordinates are clamped into [0, 1).
Key cell_of_point(double x, double y, double z);

/// Same-level neighbor displaced by (dx, dy, dz) in {-1,0,1}^3; nullopt
/// if it would fall outside the unit cube.
std::optional<Key> neighbor(const Key& k, int dx, int dy, int dz);

/// Colleagues: the up-to-26 same-level adjacent octants (excluding k).
std::vector<Key> colleagues(const Key& k);

/// Colleagues plus k itself (the full 3x3x3 same-level neighborhood that
/// exists within the unit cube).
std::vector<Key> neighborhood(const Key& k);

/// True iff the closed regions of a and b touch (share a face, edge or
/// vertex) while their interiors are disjoint. Works across levels.
/// Note an octant is NOT adjacent to itself or to its ancestors.
bool adjacent(const Key& a, const Key& b);

/// True iff closed regions intersect (adjacency or overlap). This is the
/// "adjacent or equal/nested" predicate used when collecting J(beta).
bool closed_regions_intersect(const Key& a, const Key& b);

/// Physical geometry of an octant within the unit cube.
struct BoxGeometry {
  std::array<double, 3> center;
  double half_width;  ///< half the octant side length
};

BoxGeometry box_geometry(const Key& k);

/// Debug rendering, e.g. "L3:(2,5,7)".
std::string to_string(const Key& k);

/// Hash functor so Key can be used in unordered containers.
struct KeyHash {
  std::size_t operator()(const Key& k) const {
    const auto lo = static_cast<std::uint64_t>(k.bits);
    const auto hi = static_cast<std::uint64_t>(k.bits >> 64);
    std::uint64_t h = lo * 0x9e3779b97f4a7c15ULL;
    h ^= (hi + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    h ^= k.level * 0xbf58476d1ce4e5b9ULL;
    return static_cast<std::size_t>(h);
  }
};

}  // namespace pkifmm::morton
