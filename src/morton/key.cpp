#include "morton/key.hpp"

#include <cmath>
#include <sstream>

namespace pkifmm::morton {

namespace {

/// Byte -> 24-bit spread table: bit i of the byte lands at bit 3i.
struct SpreadTable {
  std::array<std::uint32_t, 256> t{};
  constexpr SpreadTable() {
    for (std::uint32_t b = 0; b < 256; ++b) {
      std::uint32_t v = 0;
      for (int i = 0; i < 8; ++i)
        if (b & (1u << i)) v |= 1u << (3 * i);
      t[b] = v;
    }
  }
};

constexpr SpreadTable kSpread;

Bits spread(Coord c) {
  // 32-bit coordinate, 4 bytes, each byte expands to 24 bits.
  Bits out = 0;
  out |= static_cast<Bits>(kSpread.t[c & 0xff]);
  out |= static_cast<Bits>(kSpread.t[(c >> 8) & 0xff]) << 24;
  out |= static_cast<Bits>(kSpread.t[(c >> 16) & 0xff]) << 48;
  out |= static_cast<Bits>(kSpread.t[(c >> 24) & 0xff]) << 72;
  return out;
}

Coord compact(Bits bits) {
  // Collect every third bit, starting at bit 0.
  Coord c = 0;
  for (int i = 0; i < kMaxDepth; ++i)
    if ((bits >> (3 * i)) & 1) c |= Coord{1} << i;
  return c;
}

}  // namespace

Bits interleave(Coord x, Coord y, Coord z) {
  PKIFMM_DCHECK(x < kGridSize && y < kGridSize && z < kGridSize);
  return spread(x) | (spread(y) << 1) | (spread(z) << 2);
}

void deinterleave(Bits bits, Coord& x, Coord& y, Coord& z) {
  x = compact(bits);
  y = compact(bits >> 1);
  z = compact(bits >> 2);
}

Key make_key(Coord x, Coord y, Coord z, int level) {
  PKIFMM_CHECK(level >= 0 && level <= kMaxDepth);
  const Coord mask = (level == kMaxDepth) ? 0 : ((Coord{1} << (kMaxDepth - level)) - 1);
  PKIFMM_CHECK_MSG((x & mask) == 0 && (y & mask) == 0 && (z & mask) == 0,
                   "anchor not aligned to level " << level);
  return Key{interleave(x, y, z), static_cast<std::uint8_t>(level)};
}

std::array<Coord, 3> anchor(const Key& k) {
  std::array<Coord, 3> a;
  deinterleave(k.bits, a[0], a[1], a[2]);
  return a;
}

Key parent(const Key& k) {
  PKIFMM_CHECK_MSG(k.level > 0, "root has no parent");
  const int shift = 3 * (kMaxDepth - k.level + 1);
  const Bits mask = ~((Bits{1} << shift) - 1);
  return Key{k.bits & mask, static_cast<std::uint8_t>(k.level - 1)};
}

Key child(const Key& k, int i) {
  PKIFMM_CHECK(i >= 0 && i < 8);
  PKIFMM_CHECK_MSG(k.level < kMaxDepth, "cannot refine below kMaxDepth");
  const int shift = 3 * (kMaxDepth - k.level - 1);
  return Key{k.bits | (static_cast<Bits>(i) << shift),
             static_cast<std::uint8_t>(k.level + 1)};
}

std::array<Key, 8> children(const Key& k) {
  std::array<Key, 8> out;
  for (int i = 0; i < 8; ++i) out[i] = child(k, i);
  return out;
}

int child_index(const Key& k) {
  PKIFMM_CHECK(k.level > 0);
  const int shift = 3 * (kMaxDepth - k.level);
  return static_cast<int>((k.bits >> shift) & 7);
}

Key ancestor_at(const Key& k, int level) {
  PKIFMM_CHECK(level >= 0 && level <= k.level);
  const int shift = 3 * (kMaxDepth - level);
  const Bits mask = shift >= 3 * kMaxDepth ? Bits{0} : ~((Bits{1} << shift) - 1);
  return Key{k.bits & mask, static_cast<std::uint8_t>(level)};
}

std::vector<Key> ancestors(const Key& k) {
  std::vector<Key> out;
  out.reserve(k.level);
  for (int l = k.level - 1; l >= 0; --l) out.push_back(ancestor_at(k, l));
  return out;
}

bool is_ancestor(const Key& a, const Key& b) {
  return a.level < b.level && ancestor_at(b, a.level) == a;
}

Key cell_of_point(double x, double y, double z) {
  auto to_coord = [](double v) {
    double scaled = v * static_cast<double>(kGridSize);
    if (scaled < 0.0) scaled = 0.0;
    const auto max_cell = static_cast<double>(kGridSize - 1);
    if (scaled > max_cell) scaled = max_cell;
    return static_cast<Coord>(scaled);
  };
  return Key{interleave(to_coord(x), to_coord(y), to_coord(z)), kMaxDepth};
}

std::optional<Key> neighbor(const Key& k, int dx, int dy, int dz) {
  const auto a = anchor(k);
  const auto side = static_cast<std::int64_t>(cell_side(k));
  const std::int64_t limit = static_cast<std::int64_t>(kGridSize);
  const std::int64_t nx = static_cast<std::int64_t>(a[0]) + dx * side;
  const std::int64_t ny = static_cast<std::int64_t>(a[1]) + dy * side;
  const std::int64_t nz = static_cast<std::int64_t>(a[2]) + dz * side;
  if (nx < 0 || ny < 0 || nz < 0 || nx >= limit || ny >= limit || nz >= limit)
    return std::nullopt;
  return make_key(static_cast<Coord>(nx), static_cast<Coord>(ny),
                  static_cast<Coord>(nz), k.level);
}

std::vector<Key> colleagues(const Key& k) {
  std::vector<Key> out;
  out.reserve(26);
  for (int dx = -1; dx <= 1; ++dx)
    for (int dy = -1; dy <= 1; ++dy)
      for (int dz = -1; dz <= 1; ++dz) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        if (auto n = neighbor(k, dx, dy, dz)) out.push_back(*n);
      }
  return out;
}

std::vector<Key> neighborhood(const Key& k) {
  std::vector<Key> out = colleagues(k);
  out.push_back(k);
  return out;
}

namespace {

/// Closed-interval extents per axis, in anchor cells: [lo, lo+side].
struct Extent {
  std::int64_t lo[3];
  std::int64_t hi[3];
};

Extent extent_of(const Key& k) {
  const auto a = anchor(k);
  const auto side = static_cast<std::int64_t>(cell_side(k));
  Extent e;
  for (int d = 0; d < 3; ++d) {
    e.lo[d] = static_cast<std::int64_t>(a[d]);
    e.hi[d] = e.lo[d] + side;
  }
  return e;
}

}  // namespace

bool adjacent(const Key& a, const Key& b) {
  const Extent ea = extent_of(a), eb = extent_of(b);
  bool touching = false;
  for (int d = 0; d < 3; ++d) {
    const std::int64_t lo = std::max(ea.lo[d], eb.lo[d]);
    const std::int64_t hi = std::min(ea.hi[d], eb.hi[d]);
    if (lo > hi) return false;  // separated along this axis
    if (lo == hi) touching = true;  // boundaries meet along this axis
  }
  return touching;  // interiors overlap in all axes otherwise
}

bool closed_regions_intersect(const Key& a, const Key& b) {
  const Extent ea = extent_of(a), eb = extent_of(b);
  for (int d = 0; d < 3; ++d) {
    if (std::max(ea.lo[d], eb.lo[d]) > std::min(ea.hi[d], eb.hi[d]))
      return false;
  }
  return true;
}

BoxGeometry box_geometry(const Key& k) {
  const auto a = anchor(k);
  const double inv = 1.0 / static_cast<double>(kGridSize);
  const double side = static_cast<double>(cell_side(k)) * inv;
  BoxGeometry g;
  g.half_width = 0.5 * side;
  for (int d = 0; d < 3; ++d)
    g.center[d] = static_cast<double>(a[d]) * inv + g.half_width;
  return g;
}

std::string to_string(const Key& k) {
  const auto a = anchor(k);
  const int shift = kMaxDepth - k.level;
  std::ostringstream os;
  os << "L" << static_cast<int>(k.level) << ":(" << (a[0] >> shift) << ","
     << (a[1] >> shift) << "," << (a[2] >> shift) << ")";
  return os.str();
}

}  // namespace pkifmm::morton
