#include "obs/flow.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace pkifmm::obs {

FlowRecorder::FlowRecorder(std::size_t capacity, double epoch)
    : epoch_(epoch), capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
  // Matches CostTracker's initial phase so events recorded before the
  // first set_phase() land somewhere sensible.
  phases_.emplace_back("default");
  waits_.emplace_back();
}

void FlowRecorder::set_phase(const std::string& name) {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i] == name) {
      cur_phase_ = static_cast<std::int32_t>(i);
      return;
    }
  }
  cur_phase_ = static_cast<std::int32_t>(phases_.size());
  phases_.push_back(name);
  waits_.emplace_back();
}

void FlowRecorder::on_send(int dest, int tag, std::int64_t bytes) {
  ++sends_;
  if (ring_.size() == capacity_) {
    ++dropped_;
    return;
  }
  FlowEvent e;
  e.kind = FlowEvent::kSend;
  e.peer = dest;
  e.tag = tag;
  e.phase = cur_phase_;
  e.bytes = bytes;
  e.t0 = e.t1 = now();
  ring_.push_back(e);
}

void FlowRecorder::on_recv(int source, int tag, std::int64_t bytes,
                           double t_block_begin, double t_done,
                           bool blocked) {
  ++recvs_;
  WaitAccum& w = waits_[static_cast<std::size_t>(cur_phase_)];
  ++w.recvs;
  if (blocked) {
    ++w.blocked;
    const double dt = t_done - t_block_begin;
    w.seconds += dt;
    if (dt > w.max_seconds) w.max_seconds = dt;
  }
  if (ring_.size() == capacity_) {
    ++dropped_;
    return;
  }
  FlowEvent e;
  e.kind = blocked ? FlowEvent::kRecvBlocked : FlowEvent::kRecv;
  e.peer = source;
  e.tag = tag;
  e.phase = cur_phase_;
  e.bytes = bytes;
  e.t0 = t_block_begin;
  e.t1 = t_done;
  ring_.push_back(e);
}

std::vector<FlowEvent> FlowRecorder::with_seq() const {
  std::vector<FlowEvent> out = ring_;
  // Occurrence counting in record order: the fabric is FIFO per
  // (src, dst, tag), so the k-th send to (peer, tag) is the k-th
  // message of that stream — and on the peer, the k-th receive from
  // (us, tag) dequeues it. Sends and receives count independently.
  std::map<std::tuple<int, int, int>, std::int32_t> next;
  for (FlowEvent& e : out) {
    const int dir = e.kind == FlowEvent::kSend ? 0 : 1;
    e.seq = next[{dir, e.peer, e.tag}]++;
  }
  return out;
}

template <class AddFn, class MaxFn>
void FlowRecorder::fold_counters(AddFn&& add, MaxFn&& maxi) const {
  add("flow.events", static_cast<double>(ring_.size()));
  add("flow.dropped", static_cast<double>(dropped_));
  add("flow.probes", static_cast<double>(probes_));
  add("flow.sends", static_cast<double>(sends_));
  add("flow.recvs", static_cast<double>(recvs_));
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const WaitAccum& w = waits_[i];
    if (w.recvs == 0) continue;
    const std::string stem = "wait." + phases_[i];
    add(stem + ".seconds", w.seconds);
    add(stem + ".recvs", static_cast<double>(w.recvs));
    add(stem + ".blocked", static_cast<double>(w.blocked));
    maxi(stem + ".max_seconds", w.max_seconds);
  }
}

void FlowRecorder::fold_into(RankMetrics& m) const {
  fold_counters(
      [&](const std::string& name, double v) { m.counters[name] += v; },
      [&](const std::string& name, double v) {
        double& c = m.counters[name];
        c = std::max(c, v);
      });
  // Remap this recorder's phase ids onto the snapshot's interning table
  // (several producers may fold into one rank).
  std::vector<std::int32_t> remap(phases_.size());
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    auto it =
        std::find(m.flow_phases.begin(), m.flow_phases.end(), phases_[i]);
    if (it == m.flow_phases.end()) {
      remap[i] = static_cast<std::int32_t>(m.flow_phases.size());
      m.flow_phases.push_back(phases_[i]);
    } else {
      remap[i] =
          static_cast<std::int32_t>(it - m.flow_phases.begin());
    }
  }
  for (FlowEvent e : with_seq()) {
    e.phase = remap[static_cast<std::size_t>(e.phase)];
    m.flows.push_back(e);
  }
}

void FlowRecorder::publish(Recorder& rec) {
  PKIFMM_CHECK_MSG(!published_, "FlowRecorder published twice");
  fold_counters(
      [&](const std::string& name, double v) { rec.counter_add(name, v); },
      [&](const std::string& name, double v) {
        const double cur = rec.counter(name);
        if (v > cur) rec.counter_add(name, v - cur);
      });
  rec.record_flows(with_seq(), phases_);
  published_ = true;
}

}  // namespace pkifmm::obs
