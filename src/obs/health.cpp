#include "obs/health.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <mutex>

namespace pkifmm::obs {

double bytes_digest(const void* data, std::size_t n) {
  // FNV-1a over bytes, then the same 32-bits-as-double finalization as
  // ChunkDigest so per-message digests sum exactly as counters.
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h = (h ^ p[i]) * 0x100000001b3ULL;
  }
  return static_cast<double>(health_mix64(h) >> 32);
}

std::size_t nonfinite_count(std::span<const double> v) {
  std::size_t n = 0;
  for (double x : v) {
    if (!std::isfinite(x)) ++n;
  }
  return n;
}

// ---------------------------------------------------- fault injection

std::optional<Injection> parse_injection(const std::string& spec) {
  const std::size_t c1 = spec.find(':');
  if (c1 == std::string::npos) return std::nullopt;
  const std::size_t c2 = spec.find(':', c1 + 1);
  if (c2 == std::string::npos) return std::nullopt;

  const std::string phase = spec.substr(0, c1);
  const std::string rank_s = spec.substr(c1 + 1, c2 - c1 - 1);
  const std::string what = spec.substr(c2 + 1);

  Injection inj;
  if (phase == "s2u") {
    inj.phase = InjectPhase::kS2u;
  } else if (phase == "reduce") {
    inj.phase = InjectPhase::kReduce;
  } else if (phase == "d2t") {
    inj.phase = InjectPhase::kD2t;
  } else if (phase == "ghost") {
    inj.phase = InjectPhase::kGhost;
  } else {
    return std::nullopt;
  }

  if (rank_s.empty()) return std::nullopt;
  int rank = 0;
  for (char ch : rank_s) {
    if (ch < '0' || ch > '9') return std::nullopt;
    rank = rank * 10 + (ch - '0');
  }
  inj.rank = rank;

  if (what == "nan") {
    inj.bit = -1;
  } else {
    if (what.empty()) return std::nullopt;
    int bit = 0;
    for (char ch : what) {
      if (ch < '0' || ch > '9') return std::nullopt;
      bit = bit * 10 + (ch - '0');
    }
    if (bit > 63) return std::nullopt;
    inj.bit = bit;
  }
  return inj;
}

namespace {

std::mutex g_inj_mutex;
bool g_inj_env_read = false;
std::optional<Injection> g_injection;

}  // namespace

void set_injection(std::optional<Injection> inj) {
  std::lock_guard<std::mutex> lk(g_inj_mutex);
  g_injection = inj;
  g_inj_env_read = true;  // tests own the slot; skip the env from now on
}

std::optional<Injection> current_injection() {
  std::lock_guard<std::mutex> lk(g_inj_mutex);
  if (!g_inj_env_read) {
    g_inj_env_read = true;
    if (const char* env = std::getenv("PKIFMM_INJECT_CORRUPTION")) {
      g_injection = parse_injection(env);
    }
  }
  return g_injection;
}

bool maybe_inject(InjectPhase phase, int rank, std::span<double> chunk) {
  if (chunk.empty()) return false;
  const std::optional<Injection> inj = current_injection();
  if (!inj || inj->phase != phase || inj->rank != rank) return false;
  double& v = chunk[0];
  if (inj->bit < 0) {
    v = std::numeric_limits<double>::quiet_NaN();
  } else {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    bits ^= (1ULL << inj->bit);
    std::memcpy(&v, &bits, sizeof(v));
  }
  return true;
}

}  // namespace pkifmm::obs
