#include "obs/json.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace pkifmm::obs {

void Json::set(const std::string& key, Json v) {
  PKIFMM_CHECK(type_ == Type::kObject);
  auto [it, inserted] = fields_.insert_or_assign(key, std::move(v));
  (void)it;
  if (inserted) keys_.push_back(key);
}

bool Json::contains(const std::string& key) const {
  PKIFMM_CHECK(type_ == Type::kObject);
  return fields_.count(key) != 0;
}

const Json& Json::at(const std::string& key) const {
  PKIFMM_CHECK(type_ == Type::kObject);
  auto it = fields_.find(key);
  PKIFMM_CHECK_MSG(it != fields_.end(), "missing JSON key '" << key << "'");
  return it->second;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  PKIFMM_CHECK_MSG(std::isfinite(v), "JSON cannot represent " << v);
  // Round-trip-exact for doubles; trims to the shortest %.17g form that
  // still parses back bit-identically.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  if (back == v) {
    for (int prec = 1; prec < 17; ++prec) {
      char shorter[32];
      std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
      std::sscanf(shorter, "%lf", &back);
      if (back == v) {
        std::copy(shorter, shorter + sizeof(shorter), buf);
        break;
      }
    }
  }
  out += buf;
  // Keep a marker so the value parses back as a double, not an int.
  if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
      std::string::npos)
    out += ".0";
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? "\n" + std::string(std::size_t(indent) * (depth + 1), ' ') : "";
  const std::string close_pad = indent > 0 ? "\n" + std::string(std::size_t(indent) * depth, ' ') : "";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kInt: out += std::to_string(int_); break;
    case Type::kDouble: append_double(out, double_); break;
    case Type::kString: append_escaped(out, str_); break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += indent > 0 ? "," : ",";
        out += pad;
        items_[i].dump_to(out, indent, depth + 1);
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (keys_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (i) out += ",";
        out += pad;
        append_escaped(out, keys_[i]);
        out += indent > 0 ? ": " : ":";
        fields_.at(keys_[i]).dump_to(out, indent, depth + 1);
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    PKIFMM_CHECK_MSG(pos_ == s_.size(),
                     "trailing JSON content at offset " << pos_);
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  char peek() {
    skip_ws();
    PKIFMM_CHECK_MSG(pos_ < s_.size(), "unexpected end of JSON input");
    return s_[pos_];
  }

  void expect(char c) {
    PKIFMM_CHECK_MSG(peek() == c, "expected '" << c << "' at offset " << pos_
                                               << ", got '" << s_[pos_] << "'");
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Json parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': literal("true"); return Json(true);
      case 'f': literal("false"); return Json(false);
      case 'n': literal("null"); return Json();
      default: return parse_number();
    }
  }

  void literal(const char* word) {
    skip_ws();
    for (const char* p = word; *p; ++p, ++pos_)
      PKIFMM_CHECK_MSG(pos_ < s_.size() && s_[pos_] == *p,
                       "bad JSON literal at offset " << pos_);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      PKIFMM_CHECK_MSG(pos_ < s_.size(), "unterminated JSON string");
      char c = s_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      PKIFMM_CHECK_MSG(pos_ < s_.size(), "unterminated JSON escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          PKIFMM_CHECK_MSG(pos_ + 4 <= s_.size(), "bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') code += unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += unsigned(h - 'A' + 10);
            else PKIFMM_CHECK_MSG(false, "bad \\u escape digit");
          }
          // Exports only escape control characters, so non-ASCII code
          // points are out of scope here.
          PKIFMM_CHECK_MSG(code < 0x80, "non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: PKIFMM_CHECK_MSG(false, "bad JSON escape '\\" << e << "'");
      }
    }
    return out;
  }

  Json parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string tok = s_.substr(start, pos_ - start);
    PKIFMM_CHECK_MSG(!tok.empty() && tok != "-",
                     "bad JSON number at offset " << start);
    if (!is_double) {
      try {
        return Json(static_cast<std::int64_t>(std::stoll(tok)));
      } catch (const std::out_of_range&) {
        is_double = true;  // fall through: magnitude exceeds int64
      }
    }
    return Json(std::stod(tok));
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    if (consume(']')) return arr;
    while (true) {
      arr.push_back(parse_value());
      if (consume(']')) return arr;
      expect(',');
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    if (consume('}')) return obj;
    while (true) {
      std::string key = parse_string();
      expect(':');
      obj.set(key, parse_value());
      if (consume('}')) return obj;
      expect(',');
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

bool Json::operator==(const Json& other) const {
  if (is_number() && other.is_number()) {
    if (type_ == Type::kInt && other.type_ == Type::kInt)
      return int_ == other.int_;
    return as_double() == other.as_double();
  }
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kInt:
    case Type::kDouble: return true;  // handled above
    case Type::kString: return str_ == other.str_;
    case Type::kArray: return items_ == other.items_;
    case Type::kObject:
      return keys_ == other.keys_ && fields_ == other.fields_;
  }
  return false;
}

void write_json_file(const std::string& path, const Json& j, int indent) {
  std::ofstream out(path);
  PKIFMM_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << j.dump(indent) << '\n';
  out.close();
  PKIFMM_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

Json read_json_file(const std::string& path) {
  std::ifstream in(path);
  PKIFMM_CHECK_MSG(in.good(), "cannot open '" << path << "' for reading");
  std::ostringstream ss;
  ss << in.rdbuf();
  return Json::parse(ss.str());
}

}  // namespace pkifmm::obs
